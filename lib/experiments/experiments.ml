module Table = Revmax_prelude.Table
module Log = Revmax_prelude.Metrics.Log
module Util = Revmax_prelude.Util
module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Local_greedy = Revmax.Local_greedy
module Exact = Revmax.Exact
module Local_search = Revmax.Local_search
module Random_price = Revmax.Random_price
module Rolling = Revmax.Rolling
module Algorithms = Revmax.Algorithms
module Pipeline = Revmax_datagen.Pipeline
module Scalability = Revmax_datagen.Scalability
module Valuation = Revmax_datagen.Valuation

(* ----- Table 1 ----- *)

let table1 (cfg : Config.t) =
  Runner.section "Table 1: data statistics";
  let t =
    Table.create
      ~columns:
        [
          "dataset"; "#Users"; "#Items"; "#Ratings"; "#Triples q>0"; "#Classes"; "Largest";
          "Smallest"; "Median";
        ]
  in
  List.iter (fun p -> Table.add_row t (Pipeline.stats_row p)) (Datasets.both cfg);
  let synth =
    Scalability.with_users (Config.fig6_base cfg) (List.hd (Config.fig6_user_counts cfg))
  in
  Table.add_row t (Scalability.table1_row synth ~seed:cfg.Config.seed);
  Table.print t

(* ----- Figures 1-3: revenue comparisons ----- *)

let revenue_table cfg ~rows =
  let t = Table.create ~columns:("setting" :: Runner.header) in
  List.iter
    (fun (label, inst) ->
      let results =
        Runner.run_suite ~rlg_permutations:cfg.Config.rlg_permutations ~seed:cfg.Config.seed inst
      in
      Runner.report_failures results;
      Table.add_row t (label :: Runner.revenue_row results))
    rows;
  Table.print t

let fig1 (cfg : Config.t) =
  Runner.section "Figure 1: revenue, beta ~ U[0,1], capacity distributions";
  List.iter
    (fun singleton ->
      List.iter
        (fun prepared ->
          let users = prepared.Pipeline.num_users in
          Log.out "\n[%s%s]\n" prepared.Pipeline.name
            (if singleton then ", class size 1" else "");
          let rows =
            List.map
              (fun (label, spec) ->
                ( label,
                  Datasets.instance cfg prepared ~capacity:spec ~beta:Pipeline.Beta_uniform
                    ~singleton_classes:singleton () ))
              [
                ("normal", Config.cap_gaussian cfg ~users);
                ("power", Config.cap_power cfg ~users);
                ("uniform", Config.cap_uniform cfg ~users);
              ]
          in
          revenue_table cfg ~rows)
        (Datasets.both cfg))
    [ false; true ]

let fig23 (cfg : Config.t) ~singleton =
  List.iter
    (fun prepared ->
      let users = prepared.Pipeline.num_users in
      List.iter
        (fun (cap_label, spec) ->
          Log.out "\n[%s (%s)%s]\n" prepared.Pipeline.name cap_label
            (if singleton then ", class size 1" else "");
          let rows =
            List.map
              (fun beta ->
                ( Printf.sprintf "beta=%.1f" beta,
                  Datasets.instance cfg prepared ~capacity:spec
                    ~beta:(Pipeline.Beta_fixed beta) ~singleton_classes:singleton () ))
              [ 0.1; 0.5; 0.9 ]
          in
          revenue_table cfg ~rows)
        [
          ("Gaussian", Config.cap_gaussian cfg ~users);
          ("Exponential", Config.cap_exponential cfg ~users);
        ])
    (Datasets.both cfg)

let fig2 (cfg : Config.t) =
  Runner.section "Figure 2: revenue vs saturation strength, class size > 1";
  fig23 cfg ~singleton:false

let fig3 (cfg : Config.t) =
  Runner.section "Figure 3: revenue vs saturation strength, class size = 1";
  fig23 cfg ~singleton:true

(* ----- Figure 4: revenue growth curves ----- *)

let downsample points n =
  let arr = Array.of_list (List.rev points) in
  let len = Array.length arr in
  if len <= n then Array.to_list arr
  else
    List.init n (fun j ->
        let idx = (j + 1) * len / n - 1 in
        arr.(idx))

let fig4 (cfg : Config.t) =
  Runner.section "Figure 4: revenue vs strategy size (Gaussian capacities, beta ~ U[0,1])";
  List.iter
    (fun prepared ->
      let users = prepared.Pipeline.num_users in
      let inst =
        Datasets.instance cfg prepared ~capacity:(Config.cap_gaussian cfg ~users)
          ~beta:Pipeline.Beta_uniform ()
      in
      let capture f =
        let points = ref [] in
        let trace (pt : Greedy.trace_point) = points := (pt.size, pt.revenue) :: !points in
        ignore (f ~trace);
        !points
      in
      let gg = capture (fun ~trace -> Greedy.run ~trace inst) in
      let slg = capture (fun ~trace -> Local_greedy.sl_greedy ~trace inst) in
      (* one representative non-chronological order stands in for RLG's best
         run (its curve has the same "segments" structure) *)
      let horizon = Instance.horizon inst in
      let rlg_order =
        List.init horizon (fun idx -> horizon - idx) (* reverse chronological *)
      in
      let rlg = capture (fun ~trace -> Local_greedy.greedy_in_order ~trace inst ~order:rlg_order) in
      Log.out "\n[%s]  (|S|, expected revenue) checkpoints\n" prepared.Pipeline.name;
      let t = Table.create ~columns:[ "series"; "points" ] in
      List.iter
        (fun (name, points) ->
          let cells =
            downsample points 12
            |> List.map (fun (size, total) -> Printf.sprintf "(%d, %.0f)" size total)
            |> String.concat " "
          in
          Table.add_row t [ name; cells ])
        [ ("GG", gg); ("RLG", rlg); ("SLG", slg) ];
      Table.print t)
    (Datasets.both cfg)

(* ----- Figure 5: repeat-recommendation histograms ----- *)

let fig5 (cfg : Config.t) =
  Runner.section "Figure 5: repeats per (user,item) pair under G-Greedy";
  List.iter
    (fun prepared ->
      let users = prepared.Pipeline.num_users in
      let t =
        Table.create
          ~columns:
            ("beta"
            :: List.init 7 (fun r -> Printf.sprintf "%d repeat%s" (r + 1) (if r = 0 then "" else "s"))
            )
      in
      List.iter
        (fun beta ->
          let inst =
            Datasets.instance cfg prepared ~capacity:(Config.cap_gaussian cfg ~users)
              ~beta:(Pipeline.Beta_fixed beta) ()
          in
          let s, _ = Greedy.run inst in
          let hist = Strategy.repeat_histogram s in
          let total = Array.fold_left ( + ) 0 hist in
          let cells =
            List.init 7 (fun r ->
                if r < Array.length hist && total > 0 then
                  Printf.sprintf "%.1f%%" (100.0 *. float_of_int hist.(r) /. float_of_int total)
                else "-")
          in
          Table.add_row t (Printf.sprintf "%.1f" beta :: cells))
        [ 0.1; 0.5; 0.9 ];
      Log.out "\n[%s]\n" prepared.Pipeline.name;
      Table.print t)
    (Datasets.both cfg)

(* ----- Table 2: running time ----- *)

let table2 (cfg : Config.t) =
  Runner.section "Table 2: planning time in seconds (beta ~ U[0,1], Gaussian capacities)";
  let t = Table.create ~columns:("dataset" :: Runner.header) in
  List.iter
    (fun prepared ->
      let users = prepared.Pipeline.num_users in
      let inst =
        Datasets.instance cfg prepared ~capacity:(Config.cap_gaussian cfg ~users)
          ~beta:Pipeline.Beta_uniform ()
      in
      let results =
        Runner.run_suite ~rlg_permutations:cfg.Config.rlg_permutations ~seed:cfg.Config.seed inst
      in
      Runner.report_failures results;
      Table.add_row t (prepared.Pipeline.name :: Runner.time_row results))
    (Datasets.both cfg);
  Table.print t

(* ----- Figure 6: scalability of G-Greedy ----- *)

let fig6 (cfg : Config.t) =
  Runner.section "Figure 6: G-Greedy runtime vs number of candidate triples";
  let t =
    Table.create ~columns:[ "#users"; "#candidate triples"; "GG seconds"; "us per triple" ]
  in
  List.iter
    (fun users ->
      let config = Scalability.with_users (Config.fig6_base cfg) users in
      let inst = Scalability.generate config ~seed:cfg.Config.seed in
      let triples = Instance.num_candidate_triples inst in
      let (_s, _stats), seconds = Util.time_it (fun () -> Greedy.run inst) in
      Table.add_row t
        [
          string_of_int users;
          string_of_int triples;
          Printf.sprintf "%.2f" seconds;
          Printf.sprintf "%.3f" (1e6 *. seconds /. float_of_int triples);
        ])
    (Config.fig6_user_counts cfg);
  Table.print t;
  Log.out "(near-constant us/triple = the near-linear growth of Figure 6)\n"

(* ----- Figure 7: gradual price availability ----- *)

let fig7 (cfg : Config.t) =
  Runner.section "Figure 7: revenue with prices arriving in two sub-horizons (beta = 0.5)";
  let rlg_algo = Rolling.rl_greedy ~permutations:cfg.Config.rlg_permutations ~seed:cfg.Config.seed () in
  List.iter
    (fun prepared ->
      let users = prepared.Pipeline.num_users in
      List.iter
        (fun (cap_label, spec) ->
          let inst =
            Datasets.instance cfg prepared ~capacity:spec ~beta:(Pipeline.Beta_fixed 0.5) ()
          in
          let horizon = Instance.horizon inst in
          let cutoffs = List.filter (fun c -> c < horizon) [ 2; 4; 5 ] in
          let t = Table.create ~columns:[ "algorithm"; "revenue" ] in
          let add label v = Table.add_row t [ label; Printf.sprintf "%.1f" v ] in
          let run_rolling algo cuts = Revenue.total (Rolling.run algo inst ~cutoffs:cuts) in
          add "GG" (run_rolling Rolling.g_greedy []);
          List.iter
            (fun c -> add (Printf.sprintf "GG_%d" c) (run_rolling Rolling.g_greedy [ c ]))
            cutoffs;
          add "SLG" (Revenue.total (fst (Local_greedy.sl_greedy inst)));
          add "RLG" (run_rolling rlg_algo []);
          List.iter
            (fun c -> add (Printf.sprintf "RLG_%d" c) (run_rolling rlg_algo [ c ]))
            cutoffs;
          Log.out "\n[%s (%s)]\n" prepared.Pipeline.name cap_label;
          Table.print t)
        [
          ("Gaussian", Config.cap_gaussian cfg ~users);
          ("power-law", Config.cap_power cfg ~users);
        ])
    (Datasets.both cfg)

(* ----- §7 extension: random prices ----- *)

let ext_taylor (cfg : Config.t) =
  Runner.section "Extension (s7): random prices - mean-price heuristic vs Taylor vs Monte-Carlo";
  let prepared = Datasets.amazon cfg in
  let users = prepared.Pipeline.num_users in
  let inst =
    Datasets.instance cfg prepared ~capacity:(Config.cap_gaussian cfg ~users)
      ~beta:(Pipeline.Beta_fixed 0.5) ()
  in
  (* price-to-probability link through the dataset's valuation distributions
     and predicted ratings, exactly as the pipeline computed q in the first
     place *)
  let rating_of = Hashtbl.create 1024 in
  List.iter (fun (u, i, r) -> Hashtbl.replace rating_of ((u * prepared.Pipeline.num_items) + i) r)
    prepared.Pipeline.ratings_pred;
  let q_of_price ~u ~i ~price =
    match Hashtbl.find_opt rating_of ((u * prepared.Pipeline.num_items) + i) with
    | None -> 0.0
    | Some rating ->
        Valuation.adoption_probability ~valuation:prepared.Pipeline.valuation.(i) ~rating
          ~r_max:5.0 ~price
  in
  let t =
    Table.create
      ~columns:[ "price noise"; "mean-price (order 1)"; "Taylor order 2"; "Monte-Carlo"; "MC stderr" ]
  in
  List.iter
    (fun noise_frac ->
      let model =
        {
          Random_price.mean = (fun ~i ~time -> Instance.price inst ~i ~time);
          sigma = (fun ~i ~time -> noise_frac *. Instance.price inst ~i ~time);
          corr = 0.2;
          q_of_price;
        }
      in
      (* plan against mean prices with G-Greedy, then score under the model.
         The revenue is additive over users, so for tractability the
         three-way comparison is evaluated on a fixed sub-panel of users
         (the Taylor Hessian is cubic in the chain length). *)
      let plan_inst = Random_price.mean_instance inst model in
      let s_full, _ = Greedy.run plan_inst in
      let panel = min 250 (Instance.num_users inst) in
      let s =
        Strategy.of_list inst
          (List.filter
             (fun (z : Revmax.Triple.t) -> z.u < panel)
             (Strategy.to_list s_full))
      in
      let order1 = Random_price.taylor_revenue ~order:`One inst model s in
      let order2 = Random_price.taylor_revenue ~order:`Two inst model s in
      let samples = match cfg.Config.scale with Config.Quick -> 300 | _ -> 1000 in
      let mc = Random_price.mc_revenue inst model s ~samples (Rng.create cfg.Config.seed) in
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (100.0 *. noise_frac);
          Printf.sprintf "%.1f" order1;
          Printf.sprintf "%.1f" order2;
          Printf.sprintf "%.1f" mc.Revmax_stats.Mc.mean;
          Printf.sprintf "%.1f" mc.Revmax_stats.Mc.std_error;
        ])
    [ 0.05; 0.1; 0.2 ];
  Table.print t

(* ----- Greedy-throughput benchmarks ----- *)

(* Shared synthetic generator for the greedy benchmarks: few classes, long
   horizon, mild adoption probabilities and saturation, so greedy keeps
   finding positive marginals and grows (user, class) chains tens of
   triples deep — the long-chain regime the incremental evaluator is built
   for (the Scalability generator's near-1 probabilities make competition
   truncate its chains after a handful of picks). *)
let greedy_bench_synth (cfg : Config.t) ~users ~items ~classes ~horizon ~k =
  let rng = Rng.create cfg.Config.seed in
  let adoption = ref [] in
  for u = 0 to users - 1 do
    for i = 0 to items - 1 do
      if Rng.bernoulli rng 0.8 then
        adoption :=
          (u, i, Array.init horizon (fun _ -> Rng.uniform_in rng 0.02 0.10)) :: !adoption
    done
  done;
  Instance.create ~num_users:users ~num_items:items ~horizon ~display_limit:k
    ~class_of:(Array.init items (fun i -> i mod classes))
    ~capacity:(Array.make items users)
    ~saturation:(Array.init items (fun _ -> Rng.uniform_in rng 0.7 1.0))
    ~price:(Array.init items (fun _ -> Array.init horizon (fun _ -> Rng.uniform_in rng 1.0 10.0)))
    ~adoption:!adoption ()

(* row sizes gated by REVMAX_SCALE *)
let greedy_bench_rows (cfg : Config.t) =
  let synth = greedy_bench_synth cfg in
  let small = ("small", fun () -> synth ~users:100 ~items:24 ~classes:2 ~horizon:10 ~k:3) in
  let medium = ("medium", fun () -> synth ~users:150 ~items:40 ~classes:2 ~horizon:15 ~k:5) in
  let large = ("large", fun () -> synth ~users:400 ~items:40 ~classes:2 ~horizon:15 ~k:5) in
  match cfg.Config.scale with
  | Config.Quick -> [ small ]
  | Config.Default -> [ small; medium ]
  | Config.Full -> [ small; medium; large ]

let bench_greedy (cfg : Config.t) =
  Runner.section "Benchmark: G-Greedy throughput, naive vs incremental marginal evaluator";
  let rows = greedy_bench_rows cfg in
  let t =
    Table.create
      ~columns:
        [
          "dataset"; "#triples"; "avg chain"; "naive s"; "incr s"; "speedup";
          "naive evals/s"; "incr evals/s"; "rel dRev";
        ]
  in
  List.iter
    (fun (label, make) ->
      let inst = make () in
      let triples = Instance.num_candidate_triples inst in
      let (s_n, st_n), sec_n = Util.time_it (fun () -> Greedy.run ~evaluator:`Naive inst) in
      let (s_i, st_i), sec_i =
        Util.time_it (fun () -> Greedy.run ~evaluator:`Incremental inst)
      in
      let vn = Revenue.total s_n and vi = Revenue.total s_i in
      let rel = Float.abs (vn -. vi) /. Float.max 1.0 (Float.abs vn) in
      if rel > 1e-9 then
        failwith
          (Printf.sprintf "bench-greedy %s: evaluators disagree (%.12g vs %.12g)" label vn vi);
      let rate evals sec = float_of_int evals /. Float.max 1e-9 sec in
      let chains = ref 0 and chained = ref 0 in
      Strategy.iter_chains s_i (fun c ->
          incr chains;
          chained := !chained + Revmax.Chain.length c);
      Table.add_row t
        [
          label;
          string_of_int triples;
          Printf.sprintf "%.1f" (float_of_int !chained /. float_of_int (max 1 !chains));
          Printf.sprintf "%.3f" sec_n;
          Printf.sprintf "%.3f" sec_i;
          Printf.sprintf "%.1fx" (sec_n /. Float.max 1e-9 sec_i);
          Printf.sprintf "%.0f" (rate st_n.Greedy.marginal_evaluations sec_n);
          Printf.sprintf "%.0f" (rate st_i.Greedy.marginal_evaluations sec_i);
          Printf.sprintf "%.1e" rel;
        ])
    rows;
  Table.print t;
  Log.out
    "(identical selections by construction — rel dRev is the accumulated float drift;\n\
    \ speedup grows with chain length: naive marginals are O(L^2), incremental O(L))\n"

(* ----- SoA hot-path benchmark: CELF lazy policy, identity + allocation gates ----- *)

let bench_greedy_soa (cfg : Config.t) =
  Runner.section "Benchmark: SoA hot path, CELF vs refresh-pair lazy policy";
  let rows = greedy_bench_rows cfg in
  let t =
    Table.create
      ~columns:
        [
          "dataset"; "#triples"; "selected"; "celf s"; "refresh s"; "speedup"; "celf evals";
          "refresh evals"; "celf ns/eval"; "words/sel";
        ]
  in
  List.iter
    (fun (label, make) ->
      let inst = make () in
      let triples = Instance.num_candidate_triples inst in
      (* per lazy policy: one untraced timed run (the wall-time column must
         measure the hot path, not the trace callback's per-selection
         allocation) and one traced run recording every accepted triple in
         selection order with the running revenue, for the identity gate *)
      let run_policy lazy_policy =
        let _, sec = Util.time_it (fun () -> Greedy.run ~lazy_policy inst) in
        let picks = ref [] in
        let trace (p : Greedy.trace_point) = picks := (p.Greedy.z, p.Greedy.revenue) :: !picks in
        let r = Greedy.run ~lazy_policy ~trace inst in
        (r, sec, List.rev !picks)
      in
      let (_, st_c), sec_c, picks_c = run_policy `Celf in
      let (_, st_r), sec_r, picks_r = run_policy `Refresh_pair in
      (* bit-identity across lazy policies: same triples, same order, and
         byte-identical running revenues (exact float equality — CELF must
         not merely agree within tolerance, it must make the same
         selections from the same marginals) *)
      if
        not
          (List.equal
             (fun (z1, (r1 : float)) (z2, r2) -> Revmax.Triple.equal z1 z2 && r1 = r2)
             picks_c picks_r)
      then failwith (Printf.sprintf "bench-greedy-soa %s: lazy policies diverge" label);
      (* sharded identity grid: every (shards, jobs, policy) combination
         must pick the same triple set for a given shard count, and the
         shards=1 runs must reproduce the unsharded selection exactly *)
      let sorted l = List.sort Revmax.Triple.compare l in
      let unsharded = sorted (List.map fst picks_c) in
      List.iter
        (fun shards ->
          let grid =
            List.concat_map
              (fun jobs ->
                List.map
                  (fun lp ->
                    let s, _ = Revmax.Shard_greedy.solve ~shards ~jobs ~lazy_policy:lp inst in
                    sorted (Strategy.to_list s))
                  [ `Celf; `Refresh_pair ])
              [ 1; 4 ]
          in
          List.iteri
            (fun idx sel ->
              if not (List.equal Revmax.Triple.equal sel (List.hd grid)) then
                failwith
                  (Printf.sprintf "bench-greedy-soa %s: shards=%d grid entry %d diverges" label
                     shards idx);
              if shards = 1 && not (List.equal Revmax.Triple.equal sel unsharded) then
                failwith
                  (Printf.sprintf "bench-greedy-soa %s: shards=1 differs from plain greedy" label))
            grid)
        [ 1; 4 ];
      (* allocation gate: the steady-state selection loop must allocate
         O(1) minor-heap words per accepted triple, independent of the
         evaluation count. The build phase (candidate registration and
         initial keys) is isolated with a budget that stops after the
         first selection; the loop's delta beyond it, divided by the
         remaining selections, is all accept-path output construction
         (strategy hashtable entries, amortized chain-array doubling) —
         evaluations themselves allocate nothing (DESIGN.md §5b). *)
      let words_of f =
        let w0 = Gc.minor_words () in
        let r = f () in
        (r, Gc.minor_words () -. w0)
      in
      let budget = Revmax_prelude.Budget.create ~max_evaluations:1 () in
      let (_, st1), w_build = words_of (fun () -> Greedy.run ~budget inst) in
      let (_, st2), w_full = words_of (fun () -> Greedy.run inst) in
      let per_sel =
        (w_full -. w_build) /. float_of_int (max 1 (st2.Greedy.selected - st1.Greedy.selected))
      in
      if Sys.backend_type = Sys.Native && per_sel > 128.0 then
        failwith
          (Printf.sprintf
             "bench-greedy-soa %s: %.1f minor words per selection exceeds the O(1) gate (128)"
             label per_sel);
      let ns_per_eval =
        1e9 *. sec_c /. float_of_int (max 1 st_c.Greedy.marginal_evaluations)
      in
      Table.add_row t
        [
          label;
          string_of_int triples;
          string_of_int st_c.Greedy.selected;
          Printf.sprintf "%.3f" sec_c;
          Printf.sprintf "%.3f" sec_r;
          Printf.sprintf "%.1fx" (sec_r /. Float.max 1e-9 sec_c);
          string_of_int st_c.Greedy.marginal_evaluations;
          string_of_int st_r.Greedy.marginal_evaluations;
          Printf.sprintf "%.0f" ns_per_eval;
          Printf.sprintf "%.1f" per_sel;
        ])
    rows;
  Table.print t;
  Log.out
    "(selections are bit-identical across lazy policies, shard counts and job counts — the\n\
    \ gates above fail the run otherwise. The CELF stamp-skip is exact, not the classic\n\
    \ stale-keys-as-upper-bounds rule: REVMAX marginals can increase as chains grow, so\n\
    \ that rule selects a different strategy here. Under the paper's (user, item) pair\n\
    \ grouping the skip never fires and both policies do identical work — the wall-time\n\
    \ win comes from the allocation-free SoA oracle, not from skipped evaluations.)\n"

(* ----- Shard-scaling benchmark: Shard_greedy vs plain greedy ----- *)

let bench_shards (cfg : Config.t) =
  Runner.section "Benchmark: user-sharded greedy, revenue ratio and wall time vs shards";
  (* the same long-chain synthetic regime as bench-greedy, but with
     capacities tight enough (about a third of the users) that the
     water-filling budgets genuinely overlap and the reconciliation round
     has real contention to resolve *)
  let synth ~users ~items ~classes ~horizon ~k =
    let rng = Rng.create cfg.Config.seed in
    let adoption = ref [] in
    for u = 0 to users - 1 do
      for i = 0 to items - 1 do
        if Rng.bernoulli rng 0.8 then
          adoption :=
            (u, i, Array.init horizon (fun _ -> Rng.uniform_in rng 0.02 0.10)) :: !adoption
      done
    done;
    Instance.create ~num_users:users ~num_items:items ~horizon ~display_limit:k
      ~class_of:(Array.init items (fun i -> i mod classes))
      ~capacity:(Array.make items (max 1 (users / 3)))
      ~saturation:(Array.init items (fun _ -> Rng.uniform_in rng 0.7 1.0))
      ~price:
        (Array.init items (fun _ -> Array.init horizon (fun _ -> Rng.uniform_in rng 1.0 10.0)))
      ~adoption:!adoption ()
  in
  let inst =
    match cfg.Config.scale with
    | Config.Quick -> synth ~users:60 ~items:16 ~classes:2 ~horizon:8 ~k:3
    | Config.Default -> synth ~users:150 ~items:32 ~classes:2 ~horizon:12 ~k:4
    | Config.Full -> synth ~users:400 ~items:40 ~classes:2 ~horizon:15 ~k:5
  in
  let (s_ref, _), sec_ref = Util.time_it (fun () -> Greedy.run inst) in
  let v_ref = Revenue.total s_ref in
  let t =
    Table.create
      ~columns:
        [
          "shards"; "revenue"; "ratio"; "wall s"; "speedup"; "rounds"; "released"; "replanned";
        ]
  in
  List.iter
    (fun shards ->
      let (s, st), sec = Util.time_it (fun () -> Revmax.Shard_greedy.solve ~shards inst) in
      (match Strategy.validate s with
      | Ok () -> ()
      | Error e ->
          failwith
            (Printf.sprintf "bench-shards: invalid strategy at shards=%d: %s" shards
               (Revmax_prelude.Err.message e)));
      let v = Revenue.total s in
      if shards = 1 && not (Revmax_prelude.Util.float_equal ~eps:1e-12 v v_ref) then
        failwith
          (Printf.sprintf "bench-shards: shards=1 drifted from plain greedy (%.12g vs %.12g)" v
             v_ref);
      Table.add_row t
        [
          string_of_int shards;
          Printf.sprintf "%.1f" v;
          Printf.sprintf "%.4f" (v /. Float.max 1e-9 v_ref);
          Printf.sprintf "%.3f" sec;
          Printf.sprintf "%.1fx" (sec_ref /. Float.max 1e-9 sec);
          string_of_int st.Revmax.Shard_greedy.reconciliation_rounds;
          string_of_int st.Revmax.Shard_greedy.released_pairs;
          string_of_int st.Revmax.Shard_greedy.replanned;
        ])
    [ 1; 2; 4 ];
  Table.print t;
  Log.out
    "(ratio is sharded/unsharded expected revenue — honest accounting of what the\n\
    \ shard cut costs; shards=1 is bit-identical to plain greedy and must ratio 1)\n"

(* ----- Benchmark: ad slates and quantity budgets vs the unordered-k baseline ----- *)

let bench_slate (cfg : Config.t) =
  Runner.section "Benchmark: ad slates (position decay) and quantity budgets vs unordered-k";
  (* the bench-shards synthetic regime: dense candidate rows and moderate
     competition, so position decay and the global cap both genuinely bind *)
  let synth ~users ~items ~classes ~horizon ~k =
    let rng = Rng.create cfg.Config.seed in
    let adoption = ref [] in
    for u = 0 to users - 1 do
      for i = 0 to items - 1 do
        if Rng.bernoulli rng 0.8 then
          adoption :=
            (u, i, Array.init horizon (fun _ -> Rng.uniform_in rng 0.02 0.10)) :: !adoption
      done
    done;
    Instance.create ~num_users:users ~num_items:items ~horizon ~display_limit:k
      ~class_of:(Array.init items (fun i -> i mod classes))
      ~capacity:(Array.make items (max 1 (users / 3)))
      ~saturation:(Array.init items (fun _ -> Rng.uniform_in rng 0.7 1.0))
      ~price:
        (Array.init items (fun _ -> Array.init horizon (fun _ -> Rng.uniform_in rng 1.0 10.0)))
      ~adoption:!adoption ()
  in
  let inst, k =
    match cfg.Config.scale with
    | Config.Quick -> (synth ~users:60 ~items:16 ~classes:2 ~horizon:8 ~k:3, 3)
    | Config.Default -> (synth ~users:150 ~items:32 ~classes:2 ~horizon:12 ~k:4, 4)
    | Config.Full -> (synth ~users:400 ~items:40 ~classes:2 ~horizon:15 ~k:5, 5)
  in
  let (s_plain, _), sec_plain = Util.time_it (fun () -> Greedy.run inst) in
  let v_plain = Revenue.total s_plain in
  (* degenerate gate: all-1.0 multipliers rank every slot of a display
     identically, so the slate planner must reproduce the unordered-k
     selection triple for triple, and its revenue to the last bit *)
  let all_ones = Instance.with_slate inst (Array.make k 1.0) in
  let s_ones, _ = Greedy.run all_ones in
  if not (List.equal Revmax.Triple.equal (Strategy.to_list s_ones) (Strategy.to_list s_plain)) then
    failwith "bench-slate: all-1.0 slate drifted from the unordered-k baseline";
  if Revenue.total s_ones <> v_plain then
    failwith "bench-slate: all-1.0 slate revenue is not bit-identical to plain greedy";
  let t = Table.create ~columns:[ "decay"; "selected"; "revenue"; "ratio"; "sharded"; "wall s" ] in
  List.iter
    (fun decay ->
      let slate =
        Instance.with_slate inst (Pipeline.position_curve ~decay:(`Geometric decay) k)
      in
      let (s, _), sec = Util.time_it (fun () -> Greedy.run slate) in
      (match Strategy.validate s with
      | Ok () -> ()
      | Error e ->
          failwith
            (Printf.sprintf "bench-slate: invalid slate strategy at decay %.2f: %s" decay
               (Revmax_prelude.Err.message e)));
      let v = Revenue.total s in
      (* the sharded planner must agree with the flat one on validity, and
         bit-identically on the selection whenever it runs with one shard;
         REVMAX_SHARDS steers this leg in the CI matrix *)
      let shards = Revmax.Shard_greedy.default_shards () in
      let s_sh, _ = Revmax.Shard_greedy.solve ~shards slate in
      (match Strategy.validate s_sh with
      | Ok () -> ()
      | Error e ->
          failwith
            (Printf.sprintf "bench-slate: invalid sharded slate strategy at decay %.2f: %s" decay
               (Revmax_prelude.Err.message e)));
      if
        shards = 1
        && not (List.equal Revmax.Triple.equal (Strategy.to_list s_sh) (Strategy.to_list s))
      then failwith "bench-slate: shards=1 slate plan drifted from flat greedy";
      Table.add_row t
        [
          Printf.sprintf "%.2f" decay;
          string_of_int (Strategy.size s);
          Printf.sprintf "%.1f" v;
          Printf.sprintf "%.4f" (v /. Float.max 1e-9 v_plain);
          Printf.sprintf "%d ok" shards;
          Printf.sprintf "%.3f" sec;
        ])
    [ 1.0; 0.9; 0.7; 0.5 ];
  Table.print t;
  (* quantity budgets: the cap as a fraction of the unconstrained plan.
     A cap at exactly |S_plain| never fires mid-run, so the plan must be
     bit-identical to the unconstrained one — the quantity stop only
     changes behaviour when it binds. *)
  let full = Strategy.size s_plain in
  let tq = Table.create ~columns:[ "cap"; "selected"; "revenue"; "ratio" ] in
  List.iter
    (fun frac ->
      let cap = max 1 (int_of_float (Float.round (frac *. float_of_int full))) in
      let capped = Instance.with_max_total inst cap in
      let s, _ = Greedy.run capped in
      if Strategy.size s > cap then
        failwith (Printf.sprintf "bench-slate: quantity cap %d exceeded (%d)" cap (Strategy.size s));
      (match Strategy.validate s with
      | Ok () -> ()
      | Error e ->
          failwith
            (Printf.sprintf "bench-slate: invalid capped strategy at cap %d: %s" cap
               (Revmax_prelude.Err.message e)));
      if
        frac = 1.0
        && not (List.equal Revmax.Triple.equal (Strategy.to_list s) (Strategy.to_list s_plain))
      then failwith "bench-slate: non-binding quantity cap changed the plan";
      let v = Revenue.total s in
      Table.add_row tq
        [
          string_of_int cap;
          string_of_int (Strategy.size s);
          Printf.sprintf "%.1f" v;
          Printf.sprintf "%.4f" (v /. Float.max 1e-9 v_plain);
        ])
    [ 1.0; 0.5; 0.25 ];
  Table.print tq;
  Log.out
    "(plain greedy: %d selected, %.1f revenue, %.3fs. Ratios are against the unordered-k\n\
    \ baseline; decay=1.00 and cap=|S| are gated bit-identical to it, so any drift fails\n\
    \ the cell rather than shifting a ratio)\n"
    (Strategy.size s_plain) v_plain sec_plain

(* ----- Benchmark: out-of-core scale (pack + mmap + hierarchical shards) ----- *)

(* peak resident set (VmHWM) in kB from /proc/self/status; 0 when the
   file is unavailable (non-Linux), which disables the RSS ceiling gate *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0
            | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" -> (
                try Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB" Fun.id
                with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0)
            | _ -> scan ()
          in
          scan ())

let bench_scale (cfg : Config.t) =
  Runner.section "Benchmark: out-of-core scale (pack + mmap + hierarchical shards)";
  let users, items, classes =
    match cfg.Config.scale with
    | Config.Quick -> (2_000, 400, 50)
    | Config.Default -> (50_000, 2_000, 200)
    | Config.Full -> (1_000_000, 10_000, 500)
  in
  (* the §6 synthetic family, thinned to 10 candidate items per user and
     T = 4 so the full cell is 10^6 users × 10^4 items = 10^7 candidate
     pairs (4×10^7 triples); capacities keep the paper's user ratio *)
  let scfg =
    Scalability.with_users
      {
        Scalability.default_config with
        num_items = items;
        num_classes = classes;
        items_per_user = 10;
        horizon = 4;
        display_limit = 3;
      }
      users
  in
  let seed = cfg.Config.seed in
  let heap_gate = cfg.Config.scale <> Config.Full in
  let rss_ceiling_kb =
    match cfg.Config.scale with
    | Config.Quick -> 2_000_000
    | Config.Default -> 8_000_000
    | Config.Full -> 64_000_000
  in
  let pack_dir =
    Option.value (Sys.getenv_opt "REVMAX_PACK_DIR") ~default:(Filename.get_temp_dir_name ())
  in
  let pack_path = Filename.temp_file ~temp_dir:pack_dir "revmax_scale" ".pack" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove pack_path with Sys_error _ -> ())
  @@ fun () ->
  let (), write_s = Util.time_it (fun () -> Scalability.generate_pack scfg ~seed ~path:pack_path) in
  let pack_bytes = (Unix.stat pack_path).Unix.st_size in
  let inst, open_s = Util.time_it (fun () -> Instance.of_mmap pack_path) in
  Log.out "pack: %d users x %d items, %d pairs, %.1f MB (wrote %.1fs, mapped %.2fs)\n" users items
    (Instance.pair_count inst)
    (float_of_int pack_bytes /. 1e6)
    write_s open_s;
  (* a compact order-independent fingerprint of a strategy: size, the
     exact revenue double, and an integer fold over the sorted selection.
     Bit-identical plans (the invariance contract) fingerprint equally;
     Hashtbl.hash is deliberately avoided — it samples a prefix. *)
  let fingerprint s =
    let h =
      List.fold_left
        (fun h (z : Revmax.Triple.t) ->
          let mix h v = ((h * 1_000_003) lxor v) land max_int in
          mix (mix (mix h z.u) z.i) z.t)
        0
        (List.sort Revmax.Triple.compare (Strategy.to_list s))
    in
    (Strategy.size s, Revenue.total s, h)
  in
  let t =
    Table.create ~columns:[ "run"; "selected"; "revenue"; "wall s"; "released"; "rounds" ]
  in
  let row label (s, wall) ~released ~rounds =
    let size, v, h = fingerprint s in
    Table.add_row t
      [
        label;
        string_of_int size;
        Printf.sprintf "%.1f" v;
        Printf.sprintf "%.2f" wall;
        string_of_int released;
        string_of_int rounds;
      ];
    (label, size, v, h, wall)
  in
  (* the hierarchical run must come first: once any run spawns a domain,
     OCaml 5.1 refuses fork and Hier_greedy degrades to in-process *)
  let (hs, hst), hier_wall =
    Util.time_it (fun () -> Revmax_hier.Hier_greedy.solve ~procs:2 ~shards_per_proc:2 ~jobs:1 inst)
  in
  let hier =
    row "hier procs=2 spp=2" (hs, hier_wall)
      ~released:hst.Revmax_hier.Hier_greedy.released_pairs
      ~rounds:hst.Revmax_hier.Hier_greedy.reconciliation_rounds
  in
  if hst.Revmax_hier.Hier_greedy.degraded then
    Log.out
      "(hier run degraded to in-process planning: fork unavailable after a domain spawn — the\n\
      \ invariance gate below still holds by construction, run bench-scale alone to exercise it)\n";
  (* heap ≡ mmap: build the same instance on the OCaml heap and demand the
     identical greedy trace. At full scale the heap build is skipped — not
     holding the instance in the heap is the point of the cell. *)
  let heap_status =
    if not heap_gate then "skipped (full scale plans from the mapping only)"
    else begin
      let heap_inst = Scalability.generate scfg ~seed in
      let traced i =
        let order = ref [] in
        let s, _ = Greedy.run ~trace:(fun (pt : Greedy.trace_point) -> order := pt.z :: !order) i in
        (Revenue.total s, List.rev !order)
      in
      let vh, th = traced heap_inst and vm, tm = traced inst in
      if vh <> vm || th <> tm then
        failwith "bench-scale: mmap-backed greedy diverged from the heap instance";
      Printf.sprintf "identical (%d-step trace, revenue %.12g)" (List.length th) vh
    end
  in
  (* jobs × shards invariance grid on the mapped instance *)
  let grid =
    List.map
      (fun shards ->
        ( shards,
          List.map
            (fun jobs ->
              let (s, st), wall =
                Util.time_it (fun () -> Revmax.Shard_greedy.solve ~shards ~jobs inst)
              in
              row
                (Printf.sprintf "flat shards=%d jobs=%d" shards jobs)
                (s, wall) ~released:st.Revmax.Shard_greedy.released_pairs
                ~rounds:st.Revmax.Shard_greedy.reconciliation_rounds)
            [ 1; 4 ] ))
      [ 1; 4 ]
  in
  Table.print t;
  let fp (_, size, v, h, _) = (size, v, h) in
  List.iter
    (fun (shards, runs) ->
      match runs with
      | first :: rest ->
          List.iter
            (fun r ->
              if fp r <> fp first then
                failwith (Printf.sprintf "bench-scale: shards=%d plan depends on jobs" shards))
            rest
      | [] -> failwith "bench-scale: empty invariance group")
    grid;
  let flat4 = List.hd (List.assoc 4 grid) in
  if fp hier <> fp flat4 then
    failwith "bench-scale: hierarchical plan diverged from flat shards=4";
  let rss_kb = peak_rss_kb () in
  let gc = Gc.stat () in
  Log.out "equivalence: heap/mmap %s; hier ≡ flat shards=4; jobs-invariant at shards 1 and 4\n"
    heap_status;
  Log.out "memory: peak RSS %.1f MB (ceiling %.1f MB), OCaml top heap %.1f MB\n"
    (float_of_int rss_kb /. 1e3)
    (float_of_int rss_ceiling_kb /. 1e3)
    (float_of_int (gc.Gc.top_heap_words * (Sys.word_size / 8)) /. 1e6);
  if rss_kb > 0 && rss_kb > rss_ceiling_kb then
    failwith
      (Printf.sprintf "bench-scale: peak RSS %d kB exceeds the %d kB ceiling" rss_kb rss_ceiling_kb);
  (* machine-readable cell, consumed by CI (artifact + gates) *)
  let out =
    Option.value (Sys.getenv_opt "REVMAX_BENCH_OUT") ~default:"BENCH_scale.json"
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"experiment\": \"bench-scale\",\n";
  add "  \"description\": \"out-of-core planning: packed mmap instance, flat and hierarchical shards\",\n";
  add "  \"scale\": \"%s\",\n"
    (match cfg.Config.scale with
    | Config.Quick -> "quick"
    | Config.Default -> "default"
    | Config.Full -> "full");
  add "  \"config\": { \"users\": %d, \"items\": %d, \"classes\": %d, \"items_per_user\": 10, \"horizon\": 4, \"display_limit\": 3, \"seed\": %d },\n"
    users items classes seed;
  add "  \"pack\": { \"bytes\": %d, \"pairs\": %d, \"write_seconds\": %.3f, \"open_seconds\": %.3f },\n"
    pack_bytes (Instance.pair_count inst) write_s open_s;
  add "  \"equivalence\": {\n";
  add "    \"heap_mmap\": \"%s\",\n" heap_status;
  add "    \"hier_vs_flat_shards4\": \"identical\",\n";
  add "    \"jobs_invariant\": true,\n";
  add "    \"hier_degraded\": %b\n" hst.Revmax_hier.Hier_greedy.degraded;
  add "  },\n";
  add "  \"runs\": [\n";
  let all_runs = hier :: List.concat_map snd grid in
  List.iteri
    (fun idx (label, size, v, h, wall) ->
      add "    { \"label\": \"%s\", \"selected\": %d, \"revenue\": %.12g, \"fingerprint\": %d, \"wall_seconds\": %.3f }%s\n"
        label size v h wall
        (if idx = List.length all_runs - 1 then "" else ","))
    all_runs;
  add "  ],\n";
  add "  \"memory\": { \"peak_rss_kb\": %d, \"rss_ceiling_kb\": %d, \"ocaml_top_heap_words\": %d }\n"
    rss_kb rss_ceiling_kb gc.Gc.top_heap_words;
  add "}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Log.out "wrote %s\n" out

(* ----- Ablations ----- *)

let abl_heap (cfg : Config.t) =
  Runner.section "Ablation (s5.1): heap structure and lazy forward in G-Greedy";
  let prepared = Datasets.amazon cfg in
  let users = prepared.Pipeline.num_users in
  let inst =
    Datasets.instance cfg prepared ~capacity:(Config.cap_gaussian cfg ~users)
      ~beta:Pipeline.Beta_uniform ()
  in
  let t =
    Table.create ~columns:[ "variant"; "seconds"; "marginal evals"; "revenue" ]
  in
  List.iter
    (fun (label, heap, lazy_forward) ->
      let (s, stats), seconds = Util.time_it (fun () -> Greedy.run ~heap ~lazy_forward inst) in
      Table.add_row t
        [
          label;
          Printf.sprintf "%.2f" seconds;
          string_of_int stats.Greedy.marginal_evaluations;
          Printf.sprintf "%.1f" (Revenue.total s);
        ])
    [
      ("two-level + lazy", `Two_level, true);
      ("giant + lazy", `Giant, true);
      ("two-level + eager", `Two_level, false);
    ];
  Table.print t

let abl_exact (cfg : Config.t) =
  Runner.section "Ablation (s3.2/s4): greedy vs exact optimum and R-REVMAX local search";
  let rng = Rng.create cfg.Config.seed in
  (* micro instances where brute force is feasible *)
  let ratios = ref [] in
  let micro rng =
    let num_users = 1 + Rng.int rng 2 and num_items = 1 + Rng.int rng 2 in
    let horizon = 1 + Rng.int rng 2 in
    let adoption = ref [] in
    for u = 0 to num_users - 1 do
      for i = 0 to num_items - 1 do
        if Rng.bernoulli rng 0.8 then
          adoption := (u, i, Array.init horizon (fun _ -> Rng.unit_float rng)) :: !adoption
      done
    done;
    Instance.create ~num_users ~num_items ~horizon ~display_limit:1
      ~class_of:(Array.init num_items (fun i -> i mod 2))
      ~capacity:(Array.make num_items 1)
      ~saturation:(Array.init num_items (fun _ -> Rng.unit_float rng))
      ~price:(Array.init num_items (fun _ -> Array.init horizon (fun _ -> Rng.uniform_in rng 1.0 10.0)))
      ~adoption:!adoption ()
  in
  let trials = match cfg.Config.scale with Config.Quick -> 10 | _ -> 40 in
  for _ = 1 to trials do
    let inst = micro rng in
    if Instance.num_candidate_triples inst <= 10 && Instance.num_candidate_triples inst > 0 then begin
      let _, opt = Exact.brute_force inst in
      if opt > 1e-9 then begin
        let s, _ = Greedy.run inst in
        ratios := (Revenue.total s /. opt) :: !ratios
      end
    end
  done;
  let arr = Array.of_list !ratios in
  if Array.length arr > 0 then begin
    let summary = Revmax_prelude.Summary.of_array arr in
    Log.out "G-Greedy / OPT over %d micro instances: mean %.3f, min %.3f\n"
      summary.Revmax_prelude.Summary.count summary.Revmax_prelude.Summary.mean
      summary.Revmax_prelude.Summary.min
  end;
  (* T = 1: Max-DCS exact vs greedy on a singleton-class instance *)
  let t1_rng = Rng.create (cfg.Config.seed + 1) in
  let num_users = 30 and num_items = 12 in
  let adoption = ref [] in
  for u = 0 to num_users - 1 do
    for i = 0 to num_items - 1 do
      if Rng.bernoulli t1_rng 0.5 then adoption := (u, i, [| Rng.unit_float t1_rng |]) :: !adoption
    done
  done;
  let t1_inst =
    Instance.create ~num_users ~num_items ~horizon:1 ~display_limit:2
      ~class_of:(Array.init num_items (fun i -> i))
      ~capacity:(Array.make num_items 6)
      ~saturation:(Array.make num_items 1.0)
      ~price:(Array.init num_items (fun _ -> [| Rng.uniform_in t1_rng 1.0 20.0 |]))
      ~adoption:!adoption ()
  in
  let _, v_exact = Exact.solve_t1 t1_inst in
  let s_gg, _ = Greedy.run t1_inst in
  Log.out "T=1 (PTIME case): Max-DCS optimum %.2f, G-Greedy %.2f (ratio %.4f)\n" v_exact
    (Revenue.total s_gg)
    (Revenue.total s_gg /. v_exact);
  (* R-REVMAX local search on a micro instance: value and oracle cost *)
  let ls_inst = micro (Rng.create (cfg.Config.seed + 2)) in
  if Instance.num_candidate_triples ls_inst > 0 then begin
    let r = Local_search.solve ~eps:0.3 ls_inst in
    let gg, _ = Greedy.run ls_inst in
    Log.out
      "R-REVMAX local search: value %.3f with %d oracle calls; G-Greedy (strict) %.3f with %d triples\n"
      r.Local_search.value r.Local_search.oracle_calls (Revenue.total gg)
      (Instance.num_candidate_triples ls_inst)
  end

let abl_rs (cfg : Config.t) =
  Runner.section
    "Ablation (s1/s2): recommender-agnosticism - MF vs kNN vs content-based pipelines";
  (* rebuild the Amazon-like candidates from the same ratings through the
     memory-based kNN substrate, then run the suite on both instances *)
  let prepared = Datasets.amazon cfg in
  let users = prepared.Pipeline.num_users in
  let top_n =
    (* candidates per user used by the prepared dataset *)
    List.length prepared.Pipeline.adoption / max 1 users
  in
  let rebuild name top_n_of =
    let adoption, ratings_pred =
      Pipeline.build_candidates_with ~num_users:users ~top_n_of
        ~valuation:prepared.Pipeline.valuation ~price:prepared.Pipeline.price ~r_max:5.0
    in
    { prepared with Pipeline.name; adoption; ratings_pred }
  in
  let knn = Revmax_mf.Knn.train prepared.Pipeline.source_ratings in
  let knn_prepared =
    rebuild "Amazon/kNN" (fun u -> Revmax_mf.Knn.top_n knn ~user:u ~n:top_n ())
  in
  let content =
    Revmax_mf.Content_based.train
      ~item_features:(Pipeline.item_features prepared)
      prepared.Pipeline.source_ratings
  in
  let content_prepared =
    rebuild "Amazon/content" (fun u -> Revmax_mf.Content_based.top_n content ~user:u ~n:top_n ())
  in
  let t = Table.create ~columns:("substrate" :: Runner.header) in
  List.iter
    (fun p ->
      let inst =
        Datasets.instance cfg p ~capacity:(Config.cap_gaussian cfg ~users)
          ~beta:(Pipeline.Beta_fixed 0.5) ()
      in
      let results =
        Runner.run_suite ~rlg_permutations:cfg.Config.rlg_permutations ~seed:cfg.Config.seed inst
      in
      Runner.report_failures results;
      Table.add_row t (p.Pipeline.name :: Runner.revenue_row results))
    [ prepared; knn_prepared; content_prepared ];
  Table.print t;
  Log.out
    "(the algorithm hierarchy is the framework's claim; which substrate earns more depends on\n\
    \ its rating accuracy - REVMAX consumes any of the three families of s2: model-based MF,\n\
    \ memory-based kNN, content-based)\n"

(* ----- Registry ----- *)

let all =
  [
    ("table1", "Table 1: dataset statistics", table1);
    ("fig1", "Figure 1: revenue under capacity distributions", fig1);
    ("fig2", "Figure 2: revenue vs saturation, class size > 1", fig2);
    ("fig3", "Figure 3: revenue vs saturation, class size = 1", fig3);
    ("fig4", "Figure 4: revenue vs strategy size", fig4);
    ("fig5", "Figure 5: repeat-recommendation histograms", fig5);
    ("table2", "Table 2: planning time", table2);
    ("fig6", "Figure 6: G-Greedy scalability", fig6);
    ("fig7", "Figure 7: gradual price availability", fig7);
    ("ext-taylor", "s7 extension: random prices (Taylor)", ext_taylor);
    ("bench-greedy", "Benchmark: greedy throughput, naive vs incremental", bench_greedy);
    ( "bench-greedy-soa",
      "Benchmark: SoA hot path, CELF vs refresh-pair; identity + allocation gates",
      bench_greedy_soa );
    ("bench-shards", "Benchmark: user-sharded greedy vs unsharded (ratio, wall time)", bench_shards);
    ( "bench-slate",
      "Benchmark: ad slates (position decay) and quantity budgets vs unordered-k; identity gates",
      bench_slate );
    ( "bench-scale",
      "Benchmark: out-of-core scale — packed mmap instance, hierarchical shards, RSS gate",
      bench_scale );
    ("abl-heap", "Ablation: heaps and lazy forward", abl_heap);
    ("abl-exact", "Ablation: greedy vs exact optima", abl_exact);
    ("abl-rs", "Ablation: MF vs kNN vs content-based substrate", abl_rs);
  ]

let run_by_id id cfg =
  match List.find_opt (fun (eid, _, _) -> eid = id) all with
  | Some (_, _, f) ->
      f cfg;
      true
  | None -> false
