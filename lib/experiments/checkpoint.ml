module Err = Revmax_prelude.Err
module Io = Revmax.Io
module Metrics = Revmax_prelude.Metrics
module Log = Revmax_prelude.Metrics.Log

type t = { dir : string; resume : bool }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir ~resume =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    Err.raise_ (Err.Io_error { path = dir; msg = "checkpoint path is not a directory" });
  { dir; resume }

let sanitize id =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c | _ -> '_')
    id

let record_path t id = Filename.concat t.dir (sanitize id ^ ".json")

(* ----- minimal JSON (strings and string-valued objects only) ----- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_record oc ~id ~meta ?metrics ~output () =
  Printf.fprintf oc "{\"id\": \"%s\",\n \"meta\": {" (escape id);
  List.iteri
    (fun idx (k, v) ->
      Printf.fprintf oc "%s\"%s\": \"%s\"" (if idx = 0 then "" else ", ") (escape k) (escape v))
    meta;
  Printf.fprintf oc "},\n";
  (* the metrics member exists only when the cell ran with metrics enabled,
     so disabled-path records are byte-identical to the pre-metrics format *)
  (match metrics with
  | Some m -> Printf.fprintf oc " \"metrics\": \"%s\",\n" (escape m)
  | None -> ());
  Printf.fprintf oc " \"output\": \"%s\"}\n" (escape output)

exception Bad_json of string

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad_json (Printf.sprintf "expected '%c', found '%c' at %d" ch x c.pos))
  | None -> raise (Bad_json (Printf.sprintf "expected '%c', found end of input" ch))

let parse_string c =
  expect c '"';
  let b = Buffer.create 32 in
  let rec go () =
    match peek c with
    | None -> raise (Bad_json "unterminated string")
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> raise (Bad_json "unterminated escape")
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.text then raise (Bad_json "truncated \\u escape");
                let hex = String.sub c.text c.pos 4 in
                c.pos <- c.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> v
                  | None -> raise (Bad_json ("bad \\u escape " ^ hex))
                in
                (* records only ever escape control bytes, so \u00XX suffices *)
                if code > 0xff then raise (Bad_json "unsupported \\u escape above 0xff");
                Buffer.add_char b (Char.chr code)
            | e -> raise (Bad_json (Printf.sprintf "bad escape '\\%c'" e)));
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_string_object c =
  expect c '{';
  let fields = ref [] in
  skip_ws c;
  if peek c = Some '}' then advance c
  else begin
    let rec fields_loop () =
      skip_ws c;
      let k = parse_string c in
      expect c ':';
      skip_ws c;
      let v = parse_string c in
      fields := (k, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
          advance c;
          fields_loop ()
      | _ -> expect c '}'
    in
    fields_loop ()
  end;
  List.rev !fields

(* parse {"id": <string>, "meta": <string object>, ["metrics": <string>,]
   "output": <string>}; the metrics member is optional so records written
   before (or without) metrics parse unchanged *)
let parse_record text =
  let c = { text; pos = 0 } in
  expect c '{';
  let id = ref None and meta = ref None and output = ref None and metrics = ref None in
  let rec members () =
    skip_ws c;
    let k = parse_string c in
    expect c ':';
    skip_ws c;
    (match k with
    | "id" -> id := Some (parse_string c)
    | "meta" -> meta := Some (parse_string_object c)
    | "metrics" -> metrics := Some (parse_string c)
    | "output" -> output := Some (parse_string c)
    | other -> raise (Bad_json ("unknown record member " ^ other)));
    skip_ws c;
    match peek c with
    | Some ',' ->
        advance c;
        members ()
    | _ -> expect c '}'
  in
  members ();
  match (!id, !meta, !output) with
  | Some id, Some meta, Some output -> (id, meta, output, !metrics)
  | _ -> raise (Bad_json "record is missing id, meta, or output")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_record t ~id =
  let path = record_path t id in
  if not (Sys.file_exists path) then None
  else
    match parse_record (read_file path) with
    | rid, meta, output, _metrics ->
        if rid <> id then
          Some (Result.Error (Err.Parse_error { file = path; line = 1; col = 0; msg = "record id mismatch: " ^ rid }))
        else Some (Ok (meta, output))
    | exception Bad_json msg ->
        Some (Result.Error (Err.Parse_error { file = path; line = 1; col = 0; msg }))
    | exception Sys_error msg -> Some (Result.Error (Err.Io_error { path; msg }))

let load_metrics t ~id =
  let path = record_path t id in
  if not (Sys.file_exists path) then None
  else
    match parse_record (read_file path) with
    | _, _, _, metrics -> metrics
    | exception Bad_json _ -> None
    | exception Sys_error _ -> None

let save_record t ~id ~meta ?metrics ~output () =
  Io.save_atomic (record_path t id) (fun oc -> write_record oc ~id ~meta ?metrics ~output ())

(* Run [f] with fd 1 redirected into a temp file inside the checkpoint
   directory; returns the captured bytes. Capturing at the fd level also
   collects output written by subprocesses or through other channels. *)
let capture_stdout t f =
  let capture_path = Filename.temp_file ~temp_dir:t.dir ".capture" ".tmp" in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  let fd = Unix.openfile capture_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  Fun.protect ~finally:restore f;
  let bytes = read_file capture_path in
  Sys.remove capture_path;
  bytes

let meta_equal a b =
  let norm l = List.sort compare l in
  norm a = norm b

(* The recorded output to replay for a cell, or [None] when the cell must
   run. Raises on a metadata mismatch; reports and ignores corrupt records. *)
let replay_output t ~id ~meta =
  if not t.resume then None
  else
    match load_record t ~id with
    | None -> None
    | Some (Ok (rmeta, output)) ->
        if meta_equal rmeta meta then Some output
        else
          Err.raise_
            (Err.Unexpected
               {
                 context = "checkpoint " ^ record_path t id;
                 msg =
                   Printf.sprintf
                     "metadata mismatch (recorded: %s; current: %s) - delete the record or \
                      the checkpoint directory to rerun"
                     (String.concat ", "
                        (List.map (fun (k, v) -> k ^ "=" ^ v) rmeta))
                     (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) meta));
               })
    | Some (Result.Error e) ->
        (* self-heal: a record corrupted by a crash or disk fault is
           reported and the cell simply reruns *)
        Log.warn "[checkpoint] corrupt record ignored (%s); rerunning %s\n" (Err.message e) id;
        None

(* Run [f] and, when metrics are enabled, return the JSON profile of just
   this cell's activity (the diff of the global registry around [f]). *)
let with_cell_metrics f =
  if not (Metrics.enabled ()) then begin
    f ();
    None
  end
  else begin
    let before = Metrics.snapshot () in
    f ();
    Some (Metrics.to_json (Metrics.diff ~before ~after:(Metrics.snapshot ())))
  end

let run_cell cp ~id ~meta f =
  match cp with
  | None ->
      f ();
      `Ran
  | Some t -> (
      match replay_output t ~id ~meta with
      | Some output ->
          Log.out_str output;
          `Replayed
      | None ->
          let metrics = ref None in
          let output = capture_stdout t (fun () -> metrics := with_cell_metrics f) in
          Log.out_str output;
          save_record t ~id ~meta ?metrics:!metrics ~output ();
          `Ran)

(* ----- parallel grid execution ----- *)

(* A fresh cell runs in a forked child with fd 1 redirected into its own
   capture file; the parent emits outputs and saves records strictly in
   cell order, so at any instant the records on disk cover a prefix of the
   emitted cells — the same crash/resume contract as the sequential loop,
   and the assembled stdout is byte-identical for every [jobs] value. *)
type plan = Replay of string | Fresh of (unit -> unit)

let wait_any () =
  let rec go () =
    try Unix.waitpid [] (-1) with Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait_pid pid =
  let rec go () =
    try ignore (Unix.waitpid [] pid)
    with Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let run_cells cp ?jobs ?on_done cells =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> Revmax_prelude.Pool.default_jobs ())
  in
  let notify ~id ~status ~seconds =
    match on_done with Some g -> g ~id ~status ~seconds | None -> ()
  in
  let run_seq () =
    List.map
      (fun (id, meta, f) ->
        let t0 = Unix.gettimeofday () in
        let status = run_cell cp ~id ~meta f in
        notify ~id ~status ~seconds:(Unix.gettimeofday () -. t0);
        status)
      cells
  in
  let can_fork () =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        wait_pid pid;
        true
    | exception Failure _ -> false
  in
  if jobs <= 1 || List.length cells <= 1 then run_seq ()
  else if
    (Revmax_prelude.Pool.quiesce ();
     not (can_fork ()))
  then begin
    Log.warn
      "[checkpoint] process-parallel grid unavailable (this OCaml runtime refuses fork once \
       domains were spawned); running cells sequentially\n";
    run_seq ()
  end
  else begin
    let cells = Array.of_list cells in
    let n = Array.length cells in
    (* upfront replay detection: metadata mismatches surface before any fork *)
    let plan =
      Array.map
        (fun (id, meta, f) ->
          match cp with
          | None -> Fresh f
          | Some t -> (
              match replay_output t ~id ~meta with
              | Some output -> Replay output
              | None -> Fresh f))
        cells
    in
    (* OCaml 5: forking while sibling domains are live can hang the child at
       the next stop-the-world section, so join the pool's workers first.
       The 5.1 runtime goes further and refuses Unix.fork outright once any
       domain has ever been spawned in the process — probe for that and
       degrade to the sequential loop rather than crash mid-grid. *)
    Revmax_prelude.Pool.quiesce ();
    let temp_dir =
      match cp with Some t -> t.dir | None -> Filename.get_temp_dir_name ()
    in
    let capture = Array.make n "" in
    let started = Array.make n 0.0 in
    let elapsed = Array.make n 0.0 in
    let idx_of_pid = Hashtbl.create 16 in
    let finished = Hashtbl.create 16 (* idx -> process failed? *) in
    let running = ref 0 in
    let cursor = ref 0 in
    let spawn idx f =
      let path = Filename.temp_file ~temp_dir ".capture" ".tmp" in
      capture.(idx) <- path;
      started.(idx) <- Unix.gettimeofday ();
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          (* child: stdout goes to the capture file; the cell's metrics
             profile goes to a sidecar next to it for the parent to merge
             into the record; _exit skips at_exit (no double metric dump) *)
          let code =
            try
              let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
              Unix.dup2 fd Unix.stdout;
              Unix.close fd;
              (match with_cell_metrics f with
              | None -> ()
              | Some m ->
                  let oc = open_out (path ^ ".metrics") in
                  output_string oc m;
                  close_out oc);
              flush stdout;
              0
            with e ->
              let id, _, _ = cells.(idx) in
              Log.err "[checkpoint] cell %s raised: %s\n" id (Printexc.to_string e);
              1
          in
          Unix._exit code
      | pid ->
          Hashtbl.replace idx_of_pid pid idx;
          incr running
    in
    let rec spawn_more () =
      if !running < jobs && !cursor < n then begin
        let idx = !cursor in
        incr cursor;
        (match plan.(idx) with Replay _ -> () | Fresh f -> spawn idx f);
        spawn_more ()
      end
    in
    let reap_one () =
      let pid, status = wait_any () in
      match Hashtbl.find_opt idx_of_pid pid with
      | None -> () (* not one of ours *)
      | Some idx ->
          Hashtbl.remove idx_of_pid pid;
          decr running;
          elapsed.(idx) <- Unix.gettimeofday () -. started.(idx);
          Hashtbl.replace finished idx (status <> Unix.WEXITED 0)
    in
    let abort_remaining () =
      Hashtbl.iter (fun pid _ -> try Unix.kill pid Sys.sigkill with _ -> ()) idx_of_pid;
      while !running > 0 do
        reap_one ()
      done;
      Array.iter
        (fun path ->
          if path <> "" then
            List.iter
              (fun p -> if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
              [ path; path ^ ".metrics" ])
        capture
    in
    let statuses = ref [] in
    (try
       spawn_more ();
       for idx = 0 to n - 1 do
         let id, meta, _ = cells.(idx) in
         match plan.(idx) with
         | Replay output ->
             Log.out_str output;
             notify ~id ~status:`Replayed ~seconds:0.0;
             statuses := `Replayed :: !statuses
         | Fresh _ ->
             while not (Hashtbl.mem finished idx) do
               reap_one ();
               spawn_more ()
             done;
             if Hashtbl.find finished idx then
               Err.raise_
                 (Err.Unexpected
                    {
                      context = "parallel cell " ^ id;
                      msg = "cell process failed (see stderr); records before it are kept";
                    });
             let output = read_file capture.(idx) in
             let mpath = capture.(idx) ^ ".metrics" in
             let metrics =
               if Sys.file_exists mpath then begin
                 let m = read_file mpath in
                 Sys.remove mpath;
                 Some m
               end
               else None
             in
             Sys.remove capture.(idx);
             capture.(idx) <- "";
             Log.out_str output;
             (match cp with Some t -> save_record t ~id ~meta ?metrics ~output () | None -> ());
             notify ~id ~status:`Ran ~seconds:elapsed.(idx);
             statuses := `Ran :: !statuses
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       abort_remaining ();
       Printexc.raise_with_backtrace e bt);
    List.rev !statuses
  end
