(** Shared machinery for running the §6 algorithm suite and reporting.

    The runner degrades gracefully: each algorithm runs inside a guard that
    converts uncaught exceptions and invalid output strategies into a
    structured {!Revmax_prelude.Err.t}, so one broken algorithm cannot take
    down a whole experiment sweep — its cell renders as ["FAIL"] and the
    remaining algorithms still run and are timed. *)

type timed_result = {
  algo : Revmax.Algorithms.t;
  revenue : float;  (** expected total revenue of the returned strategy *)
  seconds : float;  (** wall-clock planning time *)
  strategy_size : int;
  truncated : bool;  (** the run was cut short by an expired budget *)
}

type outcome =
  | Completed of timed_result
  | Failed of { algo : Revmax.Algorithms.t; seconds : float; error : Revmax_prelude.Err.t }
      (** The algorithm raised, or returned a strategy violating Problem 1's
          constraints ({!Revmax.Strategy.validate} names the constraint and
          the offending user/time or item). [seconds] is the time spent
          before the failure surfaced. *)

val run_suite :
  ?suite:Revmax.Algorithms.t list ->
  ?budget:Revmax_prelude.Budget.t ->
  ?jobs:int ->
  ?shards:int ->
  rlg_permutations:int ->
  seed:int ->
  Revmax.Instance.t ->
  outcome list
(** Run the (default: paper's six-algorithm) suite on one instance. The
    RL-Greedy entry's permutation count is overridden by
    [rlg_permutations]. Every returned strategy is checked with
    {!Revmax.Strategy.validate}; a violation — or any exception the
    algorithm raises — yields a [Failed] cell naming the violated
    constraint, and the remaining algorithms still run. [budget] is shared
    by the whole suite (see {!Revmax_prelude.Budget}).

    The suite runs on up to [jobs] domains (default
    {!Revmax_prelude.Pool.default_jobs}); outcomes are returned in suite
    order and — apart from the wall-clock [seconds] fields and
    budget-truncation points — are identical for every [jobs] value.

    [shards] overrides the shard count of any
    {!Revmax.Algorithms.Sharded_greedy} entry in the suite, as
    [rlg_permutations] does for RL-Greedy (the default suite carries no
    sharded entry, so figures stay byte-identical to earlier releases). *)

val guarded : algo:Revmax.Algorithms.t -> (unit -> Revmax.Strategy.t * bool) -> outcome
(** Run one strategy-producing thunk (returning the strategy and its
    truncation flag) under the suite's guard: exceptions are converted via
    {!Revmax_prelude.Err.of_exn}, the output is validated, and wall-clock
    time is recorded either way. Exposed for fault-injection tests. *)

val completed : outcome list -> timed_result list
(** The successfully completed cells, in suite order. *)

val header : string list
(** Column labels in paper legend order: GG, GG-No, RLG, SLG, TopRev,
    TopRat. *)

val revenue_row : outcome list -> string list
(** Revenues formatted for a table row, suite order; failed cells render as
    ["FAIL"]. *)

val time_row : outcome list -> string list
(** Planning times (seconds) formatted for a table row; failed cells render
    as ["FAIL"]. *)

val report_failures : outcome list -> unit
(** Log one error-level diagnostic line per failed cell via
    {!Revmax_prelude.Metrics.Log.err} (no-op when all completed, silent at
    [REVMAX_LOG=quiet]). *)

val section : string -> unit
(** Print a section banner for an experiment through the content sink
    ({!Revmax_prelude.Metrics.Log.out}). *)
