(** One function per table/figure of the paper's evaluation (§6, §6.3, §7)
    plus the ablations DESIGN.md calls out. Each function prints the rows or
    series the corresponding paper artifact reports; EXPERIMENTS.md records
    paper-vs-measured values.

    All functions are deterministic given the configuration. *)

val table1 : Config.t -> unit
(** Table 1 — dataset statistics for Amazon-like, Epinions-like and the
    synthetic scalability set. *)

val fig1 : Config.t -> unit
(** Figure 1 — expected total revenue of the six algorithms under
    {normal, power, uniform} capacities, β ~ U\[0,1\], for both datasets and
    both class regimes (panels a–d). *)

val fig2 : Config.t -> unit
(** Figure 2 — revenue under uniform β ∈ {0.1, 0.5, 0.9}, class size > 1,
    Gaussian and exponential capacities (panels a–d). *)

val fig3 : Config.t -> unit
(** Figure 3 — as Figure 2 with every item in its own class. *)

val fig4 : Config.t -> unit
(** Figure 4 — revenue as a function of the strategy size while GG, RLG and
    SLG grow their solutions (the submodularity / "segments" curves). *)

val fig5 : Config.t -> unit
(** Figure 5 — histograms of the number of repeated recommendations per
    (user, item) pair made by G-Greedy for β ∈ {0.1, 0.5, 0.9}. *)

val table2 : Config.t -> unit
(** Table 2 — planning time of the suite on both datasets (uniform-random
    β, Gaussian capacities). *)

val fig6 : Config.t -> unit
(** Figure 6 — G-Greedy runtime versus the number of candidate triples on
    the synthetic sweep. *)

val fig7 : Config.t -> unit
(** Figure 7 — revenue with prices arriving in two sub-horizons (cut-offs
    2, 4, 5) for GG and RLG, against full information and SLG; β = 0.5,
    Gaussian and power-law capacities. *)

val ext_taylor : Config.t -> unit
(** §7 extension — expected revenue under random prices: mean-price
    heuristic (order-1) vs Taylor order-2 vs Monte-Carlo truth, for several
    price-noise levels. *)

val bench_greedy : Config.t -> unit
(** Greedy-throughput benchmark — {!Revmax.Greedy.run} timed end-to-end with
    the naive O(L²) marginal oracle versus the incremental O(L) engine on
    synthetic long-chain datasets: wall time, marginal evaluations per
    second, speedup, and the (tiny) relative revenue drift between the two.
    Aborts if the evaluators' revenues differ by more than 1e-9 relative. *)

val bench_shards : Config.t -> unit
(** Shard-scaling benchmark — {!Revmax.Shard_greedy.solve} at
    shards ∈ {1, 2, 4} against plain {!Revmax.Greedy.run}: revenue ratio
    (sharded/unsharded), wall time, and reconciliation work (rounds,
    released pairs, re-planned users). Aborts if shards=1 is not
    bit-identical to the unsharded run. *)

val abl_heap : Config.t -> unit
(** §5.1 ablation — two-level vs giant heap, lazy-forward on vs off:
    planning time and number of marginal-revenue evaluations. *)

val abl_exact : Config.t -> unit
(** §3.2/§4 sanity — greedy-vs-optimal revenue ratios on micro instances
    (brute force and the T=1 Max-DCS solver), and the R-REVMAX local
    search's value and oracle cost. *)

val abl_rs : Config.t -> unit
(** §1/§2 recommender-agnosticism — rebuild the candidate set from the same
    ratings through the memory-based kNN and the content-based substrates
    instead of MF, and run the suite on all three instances. *)

val all : (string * string * (Config.t -> unit)) list
(** [(id, description, run)] for every experiment, in paper order. *)

val run_by_id : string -> Config.t -> bool
(** Run one experiment by id ("table1", "fig3", …); false if unknown. *)
