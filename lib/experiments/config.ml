module Amazon_like = Revmax_datagen.Amazon_like
module Epinions_like = Revmax_datagen.Epinions_like
module Pipeline = Revmax_datagen.Pipeline
module Scalability = Revmax_datagen.Scalability

type scale = Quick | Default | Full

type t = { scale : scale; seed : int; rlg_permutations : int }

let scale_name = function Quick -> "quick" | Default -> "default" | Full -> "full"

let of_scale ?(seed = 20140901) scale =
  { scale; seed; rlg_permutations = (match scale with Quick -> 5 | Default | Full -> 20) }

let load () =
  let scale =
    match Option.map String.lowercase_ascii (Sys.getenv_opt "REVMAX_SCALE") with
    | Some "quick" -> Quick
    | Some "full" -> Full
    | Some "default" | None -> Default
    | Some other ->
        Revmax_prelude.Metrics.Log.warn "REVMAX_SCALE=%s not recognized; using default\n" other;
        Default
  in
  let seed =
    match Option.bind (Sys.getenv_opt "REVMAX_SEED") int_of_string_opt with
    | Some s -> s
    | None -> 20140901
  in
  of_scale ~seed scale

let amazon_scale t =
  match t.scale with
  | Quick ->
      {
        Amazon_like.num_users = 120;
        num_items = 60;
        num_classes = 12;
        top_n = 15;
        horizon = 7;
        crawl_days = 30;
        ratings_per_user = 10.0;
      }
  | Default ->
      {
        Amazon_like.num_users = 1500;
        num_items = 420;
        num_classes = 94;
        top_n = 40;
        horizon = 7;
        crawl_days = 62;
        ratings_per_user = 30.0;
      }
  | Full -> Amazon_like.paper_scale

let epinions_scale t =
  match t.scale with
  | Quick ->
      {
        Epinions_like.num_users = 110;
        num_items = 40;
        num_classes = 10;
        top_n = 15;
        horizon = 7;
        reports_min = 10;
        reports_max = 25;
        ratings_per_user = 1.6;
      }
  | Default ->
      {
        Epinions_like.num_users = 1400;
        num_items = 110;
        num_classes = 43;
        top_n = 40;
        horizon = 7;
        reports_min = 10;
        reports_max = 50;
        ratings_per_user = 1.6;
      }
  | Full -> Epinions_like.paper_scale

let capacity_mean ~users = Float.max 4.0 (0.22 *. float_of_int users)

let cap_gaussian _t ~users =
  let mean = capacity_mean ~users in
  Pipeline.Cap_gaussian { mean; sigma = 0.06 *. mean }

let cap_exponential _t ~users = Pipeline.Cap_exponential { mean = capacity_mean ~users }

let cap_power _t ~users =
  (* Pareto with alpha 2 has mean 2·x_min; match the Gaussian mean *)
  Pipeline.Cap_power { alpha = 2.0; x_min = 0.5 *. capacity_mean ~users }

let cap_uniform _t ~users =
  let mean = capacity_mean ~users in
  Pipeline.Cap_uniform
    { lo = max 1 (int_of_float (0.5 *. mean)); hi = max 2 (int_of_float (1.5 *. mean)) }

let fig6_user_counts t =
  match t.scale with
  | Quick -> [ 200; 400; 600 ]
  | Default -> [ 2_000; 4_000; 6_000; 8_000; 10_000 ]
  | Full -> [ 100_000; 200_000; 300_000; 400_000; 500_000 ]

let fig6_base t =
  match t.scale with
  | Quick ->
      {
        Scalability.default_config with
        Scalability.num_items = 400;
        num_classes = 40;
        items_per_user = 20;
      }
  | Default ->
      {
        Scalability.default_config with
        Scalability.num_items = 4_000;
        num_classes = 200;
        items_per_user = 50;
      }
  | Full ->
      {
        Scalability.default_config with
        Scalability.num_items = 20_000;
        num_classes = 500;
        items_per_user = 100;
      }
