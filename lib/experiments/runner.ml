module Algorithms = Revmax.Algorithms
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Util = Revmax_prelude.Util
module Err = Revmax_prelude.Err
module Metrics = Revmax_prelude.Metrics
module Log = Revmax_prelude.Metrics.Log

let c_suites = Metrics.counter "runner.suites"

let c_algos = Metrics.counter "runner.algorithms"

let c_failures = Metrics.counter "runner.failures"

let t_algo = Metrics.timer "runner.algorithm"

type timed_result = {
  algo : Algorithms.t;
  revenue : float;
  seconds : float;
  strategy_size : int;
  truncated : bool;
}

type outcome =
  | Completed of timed_result
  | Failed of { algo : Algorithms.t; seconds : float; error : Err.t }

let resolve_suite ?shards ~rlg_permutations suite =
  let base =
    match suite with
    | Some s -> s
    | None ->
        List.map
          (function Algorithms.Rl_greedy _ -> Algorithms.Rl_greedy rlg_permutations | a -> a)
          Algorithms.default_suite
  in
  (* the shard count, like the permutation count, is a run-wide knob: any
     sharded entry in the suite picks up the caller's value *)
  match shards with
  | None -> base
  | Some n -> List.map (function Algorithms.Sharded_greedy _ -> Algorithms.Sharded_greedy n | a -> a) base

let guarded ~algo run =
  Metrics.incr c_algos;
  let context = Printf.sprintf "algorithm %s" (Algorithms.name algo) in
  let outcome, seconds =
    Util.time_it (fun () ->
        Metrics.span_t t_algo @@ fun () ->
        match Err.protect ~context run with
        | Result.Error e -> Result.Error e
        | Ok (s, truncated) -> (
            match Strategy.validate s with
            | Result.Error e -> Result.Error e
            | Ok () ->
                Ok
                  ( Revenue.total s,
                    Strategy.size s,
                    truncated )))
  in
  match outcome with
  | Ok (revenue, strategy_size, truncated) ->
      Completed { algo; revenue; seconds; strategy_size; truncated }
  | Result.Error error ->
      Metrics.incr c_failures;
      Failed { algo; seconds; error }

(* Each algorithm reads only the (immutable) instance and derives its RNG
   from [seed], so the suite fans out across domains; outcomes land in
   suite order regardless of completion order. [seconds] are wall-clock and
   shift under contention, but the revenues, strategies and sizes are
   jobs-invariant (budgeted runs are timing-dependent, as always). *)
let run_suite ?suite ?budget ?jobs ?shards ~rlg_permutations ~seed inst =
  Metrics.incr c_suites;
  let algos = Array.of_list (resolve_suite ?shards ~rlg_permutations suite) in
  Array.to_list
    (Revmax_prelude.Pool.parallel_map ?jobs algos ~f:(fun algo ->
         guarded ~algo (fun () -> Algorithms.run_anytime ?budget algo inst ~seed)))

let completed outcomes =
  List.filter_map (function Completed r -> Some r | Failed _ -> None) outcomes

let header = List.map Algorithms.name Algorithms.default_suite

let outcome_cell f = function Completed r -> f r | Failed _ -> "FAIL"

let revenue_row outcomes =
  List.map (outcome_cell (fun r -> Printf.sprintf "%.1f" r.revenue)) outcomes

let time_row outcomes = List.map (outcome_cell (fun r -> Printf.sprintf "%.2f" r.seconds)) outcomes

let report_failures outcomes =
  List.iter
    (function
      | Completed _ -> ()
      | Failed { algo; error; _ } ->
          Log.err "[runner] %s failed: %s\n" (Algorithms.name algo) (Err.message error))
    outcomes

let section title = Log.out "\n=== %s ===\n" title
