(** Checkpoint/resume for long experiment sweeps.

    A bench run is a sequence of {e cells} (one experiment at one scale).
    With a checkpoint directory attached, each completed cell's stdout is
    recorded as one small JSON file ([<id>.json], written atomically via
    {!Revmax.Io.save_atomic}), so a run killed halfway can be resumed: cells
    with a valid record are {e replayed} byte-for-byte from the record
    instead of recomputed, and execution picks up at the first missing cell.
    A resumed run therefore produces output bit-identical to an
    uninterrupted one for deterministic cells.

    Record format — a flat JSON object with string values only:
    {v {"id": "<cell id>",
 "meta": {"scale": "quick", "seed": "42", ...},
 "output": "<captured stdout, JSON-escaped>"} v}

    Failure handling: a record that fails to parse (e.g. truncated by a
    crash predating the atomic rename, or corrupted on disk) is reported on
    [stderr] and its cell reruns — corruption can cost recomputation, never
    wrong output. A record whose [meta] disagrees with the current run's
    (different scale or seed) raises a structured
    {!Revmax_prelude.Err.Unexpected} instead of silently splicing
    incompatible output into the report. *)

type t

val create : dir:string -> resume:bool -> t
(** Create (mkdir -p) or attach to a checkpoint directory. With
    [resume = false], existing records are ignored and overwritten as cells
    complete; with [resume = true] they are replayed. Raises
    [Revmax_prelude.Err.Error (Io_error _)] if [dir] exists and is not a
    directory. *)

val run_cell :
  t option -> id:string -> meta:(string * string) list -> (unit -> unit) -> [ `Ran | `Replayed ]
(** [run_cell cp ~id ~meta f] is the checkpointing wrapper around one cell:

    - [cp = None]: run [f] directly (checkpointing disabled);
    - resuming with a valid matching record: print the recorded stdout and
      skip [f];
    - otherwise: run [f] with stdout captured (at the file-descriptor
      level, into a temp file inside the checkpoint directory), forward the
      captured bytes to the real stdout, and atomically persist the record.

    [meta] is compared key-set-insensitively to the recorded metadata on
    resume; a mismatch raises (see module docs). *)

val record_path : t -> string -> string
(** Path of the record file a cell id maps to (the id is sanitized to a
    filesystem-safe name). Exposed for tests and tooling. *)

val load_record :
  t -> id:string -> ((string * string) list * string, Revmax_prelude.Err.t) result option
(** Read and parse a cell's record: [None] when absent, [Some (Ok (meta,
    output))] when valid, [Some (Error _)] when unreadable or corrupt.
    Exposed for tests and tooling. *)
