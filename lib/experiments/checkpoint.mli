(** Checkpoint/resume for long experiment sweeps.

    A bench run is a sequence of {e cells} (one experiment at one scale).
    With a checkpoint directory attached, each completed cell's stdout is
    recorded as one small JSON file ([<id>.json], written atomically via
    {!Revmax.Io.save_atomic}), so a run killed halfway can be resumed: cells
    with a valid record are {e replayed} byte-for-byte from the record
    instead of recomputed, and execution picks up at the first missing cell.
    A resumed run therefore produces output bit-identical to an
    uninterrupted one for deterministic cells.

    Record format — a flat JSON object with string values only:
    {v {"id": "<cell id>",
 "meta": {"scale": "quick", "seed": "42", ...},
 "metrics": "<JSON metrics profile>",   (only when metrics were enabled)
 "output": "<captured stdout, JSON-escaped>"} v}

    When {!Revmax_prelude.Metrics} is enabled, each fresh cell's record
    carries the JSON profile of just that cell's activity (the diff of the
    metrics registry around the cell body) in an optional ["metrics"]
    member; with metrics disabled the member is absent and records are
    byte-identical to ones written by a build without metrics. Old records
    (without the member) still parse.

    Failure handling: a record that fails to parse (e.g. truncated by a
    crash predating the atomic rename, or corrupted on disk) is reported on
    [stderr] and its cell reruns — corruption can cost recomputation, never
    wrong output. A record whose [meta] disagrees with the current run's
    (different scale or seed) raises a structured
    {!Revmax_prelude.Err.Unexpected} instead of silently splicing
    incompatible output into the report. *)

type t

val create : dir:string -> resume:bool -> t
(** Create (mkdir -p) or attach to a checkpoint directory. With
    [resume = false], existing records are ignored and overwritten as cells
    complete; with [resume = true] they are replayed. Raises
    [Revmax_prelude.Err.Error (Io_error _)] if [dir] exists and is not a
    directory. *)

val run_cell :
  t option -> id:string -> meta:(string * string) list -> (unit -> unit) -> [ `Ran | `Replayed ]
(** [run_cell cp ~id ~meta f] is the checkpointing wrapper around one cell:

    - [cp = None]: run [f] directly (checkpointing disabled);
    - resuming with a valid matching record: print the recorded stdout and
      skip [f];
    - otherwise: run [f] with stdout captured (at the file-descriptor
      level, into a temp file inside the checkpoint directory), forward the
      captured bytes to the real stdout, and atomically persist the record.

    [meta] is compared key-set-insensitively to the recorded metadata on
    resume; a mismatch raises (see module docs). *)

val run_cells :
  t option ->
  ?jobs:int ->
  ?on_done:(id:string -> status:[ `Ran | `Replayed ] -> seconds:float -> unit) ->
  (string * (string * string) list * (unit -> unit)) list ->
  [ `Ran | `Replayed ] list
(** Run a whole grid of cells, up to [jobs] (default
    {!Revmax_prelude.Pool.default_jobs}) at a time. With [jobs = 1] (or a
    single cell) this is exactly the sequential {!run_cell} loop.

    With [jobs > 1] each fresh cell runs in a {e forked child process} with
    its stdout captured to a private file (stdout capture is
    file-descriptor-level, hence process-global — domains cannot provide
    it), while the parent emits outputs, saves records and calls [on_done]
    strictly in cell order. Consequences:

    - the assembled stdout and every record's bytes are identical for every
      [jobs] value (cells must not depend on shared mutable state — the
      bench experiments only read their config);
    - records on disk always cover a prefix of the cells already emitted,
      so a run killed mid-grid resumes exactly like a sequential one, and
      resuming under a different [jobs] is byte-identical;
    - a cell whose process exits nonzero (or is killed) raises a structured
      {!Revmax_prelude.Err.Unexpected} after the cells before it have been
      emitted and saved; the remaining children are killed and reaped.

    The domain pool is {!Revmax_prelude.Pool.quiesce}d before forking
    (forking with live sibling domains can hang the child); children reset
    the inherited pool state on first use, so cells may themselves use
    parallel algorithms.

    [on_done ~id ~status ~seconds] fires after each cell's output is
    emitted ([seconds] is 0 for replays); use it for progress lines on
    stderr. *)

val record_path : t -> string -> string
(** Path of the record file a cell id maps to (the id is sanitized to a
    filesystem-safe name). Exposed for tests and tooling. *)

val load_record :
  t -> id:string -> ((string * string) list * string, Revmax_prelude.Err.t) result option
(** Read and parse a cell's record: [None] when absent, [Some (Ok (meta,
    output))] when valid, [Some (Error _)] when unreadable or corrupt.
    Exposed for tests and tooling. *)

val load_metrics : t -> id:string -> string option
(** The JSON metrics profile recorded for a cell, if its record exists,
    parses, and carries one (cells run with metrics disabled record none).
    Exposed for tests and tooling. *)
