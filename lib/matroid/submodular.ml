type stats = { oracle_calls : int; moves : int; truncated : bool }

(* Memoised oracle over sorted-list keys. *)
let memoise f =
  let cache = Hashtbl.create 1024 in
  let calls = ref 0 in
  let eval s =
    let key = List.sort compare s in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        incr calls;
        let v = f key in
        Hashtbl.add cache key v;
        v
  in
  (eval, calls)

(* One pass of Lee et al. local search restricted to [allowed] elements.
   [halt] is polled between rounds of moves; the current local iterate is
   always a valid independent set, so stopping early is safe. *)
let local_search_pass ~eps ~matroid ~eval ~moves ~allowed ~halt =
  let n = max 1 (List.length allowed) in
  let nf = float_of_int n in
  let threshold = 1.0 +. (eps /. (nf *. nf *. nf *. nf)) in
  (* best singleton start *)
  let best_single =
    List.fold_left
      (fun acc e ->
        if Matroid.can_add matroid [] e then begin
          let v = eval [ e ] in
          match acc with Some (_, bv) when bv >= v -> acc | _ -> Some (e, v)
        end
        else acc)
      None allowed
  in
  match best_single with
  | None -> ([], 0.0)
  | Some (e0, v0) ->
      let s = ref [ e0 ] and v = ref v0 in
      let improved = ref true in
      while !improved && not (halt ()) do
        improved := false;
        (* delete moves *)
        List.iter
          (fun e ->
            if not !improved then begin
              let s' = List.filter (fun x -> x <> e) !s in
              let v' = eval s' in
              if v' > threshold *. !v then begin
                s := s';
                v := v';
                incr moves;
                improved := true
              end
            end)
          !s;
        (* add moves *)
        if not !improved then
          List.iter
            (fun e ->
              if (not !improved) && (not (List.mem e !s)) && Matroid.can_add matroid !s e then begin
                let v' = eval (e :: !s) in
                if v' > threshold *. !v then begin
                  s := e :: !s;
                  v := v';
                  incr moves;
                  improved := true
                end
              end)
            allowed;
        (* swap moves: exchange one inside element for one outside element *)
        if not !improved then
          List.iter
            (fun e_out ->
              if (not !improved) && not (List.mem e_out !s) then
                List.iter
                  (fun e_in ->
                    if not !improved then begin
                      let s_minus = List.filter (fun x -> x <> e_in) !s in
                      if Matroid.can_add matroid s_minus e_out then begin
                        let v' = eval (e_out :: s_minus) in
                        if v' > threshold *. !v then begin
                          s := e_out :: s_minus;
                          v := v';
                          incr moves;
                          improved := true
                        end
                      end
                    end)
                  !s)
            allowed
      done;
      (!s, !v)

let local_search ?(eps = 0.5) ?stop ~matroid ~f () =
  if eps <= 0.0 then invalid_arg "Submodular.local_search: eps must be positive";
  let eval, calls = memoise f in
  let moves = ref 0 in
  let truncated = ref false in
  let halt () =
    match stop with
    | Some g when g ~evaluations:!calls ->
        truncated := true;
        true
    | _ -> false
  in
  let n = Matroid.ground_size matroid in
  let all = List.init n (fun i -> i) in
  let s1, v1 = local_search_pass ~eps ~matroid ~eval ~moves ~allowed:all ~halt in
  (* second pass on the complement of the first local optimum, skipped when
     the first pass was cut short *)
  let s, v =
    if halt () then (s1, v1)
    else begin
      let rest = List.filter (fun e -> not (List.mem e s1)) all in
      let s2, v2 = local_search_pass ~eps ~matroid ~eval ~moves ~allowed:rest ~halt in
      if v1 >= v2 then (s1, v1) else (s2, v2)
    end
  in
  (List.sort compare s, v, { oracle_calls = !calls; moves = !moves; truncated = !truncated })

let lazy_greedy ~matroid ~f () =
  let eval, calls = memoise f in
  let moves = ref 0 in
  let n = Matroid.ground_size matroid in
  let s = ref [] and v = ref (eval []) in
  (* cached upper bounds on marginal gains; valid by submodularity *)
  let bound = Array.make n Float.infinity in
  let fresh = Array.make n false in
  let active = Array.make n true in
  let continue_loop = ref (n > 0) in
  while !continue_loop do
    (* invalidate freshness from the previous round *)
    Array.fill fresh 0 n false;
    let rec pick () =
      (* choose the active element with the largest cached bound *)
      let best = ref (-1) and best_v = ref 0.0 in
      for e = 0 to n - 1 do
        if active.(e) && (!best < 0 || bound.(e) > !best_v) then begin
          best := e;
          best_v := bound.(e)
        end
      done;
      if !best < 0 then None
      else begin
        let e = !best in
        if not (Matroid.can_add matroid !s e) then begin
          active.(e) <- false;
          pick ()
        end
        else if fresh.(e) then
          if bound.(e) > 0.0 then Some e
          else None (* freshest maximum non-positive: stop *)
        else begin
          let gain = eval (e :: !s) -. !v in
          bound.(e) <- gain;
          fresh.(e) <- true;
          pick ()
        end
      end
    in
    match pick () with
    | None -> continue_loop := false
    | Some e ->
        s := e :: !s;
        v := eval !s;
        active.(e) <- false;
        incr moves
  done;
  (List.sort compare !s, !v, { oracle_calls = !calls; moves = !moves; truncated = false })
