module Pool = Revmax_prelude.Pool
module Metrics = Revmax_prelude.Metrics

(* NOTE: oracle_calls and cache_hits are *not* jobs-invariant — batched
   candidate scans may evaluate past the accepted move, and two domains can
   race to evaluate the same fresh key (see [memoise]). The jobs-invariance
   suite therefore excludes submodular.* counters. *)
let c_oracle_calls = Metrics.counter "submodular.oracle_calls"

let c_cache_hits = Metrics.counter "submodular.cache_hits"

let c_moves = Metrics.counter "submodular.moves"

type stats = { oracle_calls : int; moves : int; truncated : bool }

(* Memoised oracle over sorted-list keys. The cache is shared by parallel
   candidate scans, so lookups and inserts take a mutex; the oracle itself
   runs outside the lock (two domains may race to evaluate the same fresh
   key — both evaluations are counted, which only affects [oracle_calls],
   never values). *)
let memoise f =
  let cache = Hashtbl.create 1024 in
  let calls = ref 0 in
  let lock = Mutex.create () in
  let eval s =
    let key = List.sort compare s in
    let cached =
      Mutex.lock lock;
      let c = Hashtbl.find_opt cache key in
      Mutex.unlock lock;
      c
    in
    match cached with
    | Some v ->
        Metrics.incr c_cache_hits;
        v
    | None ->
        let v = f key in
        Metrics.incr c_oracle_calls;
        Mutex.lock lock;
        if not (Hashtbl.mem cache key) then begin
          incr calls;
          Hashtbl.add cache key v
        end;
        Mutex.unlock lock;
        v
  in
  (eval, calls)

(* First candidate (in scan order) whose value passes [accepts], evaluating
   in batches of [4·jobs] on the domain pool. Any batch size yields the same
   accepted candidate, so results are jobs-invariant; with jobs = 1 the
   batch size is 1 and this is exactly the sequential one-at-a-time scan,
   including its oracle-call count. *)
let first_improving ~jobs ~eval ~accepts cands =
  let n = Array.length cands in
  let batch = if jobs <= 1 then 1 else 4 * jobs in
  let rec go start =
    if start >= n then None
    else begin
      let stop = min n (start + batch) in
      let vals =
        Pool.parallel_map ~jobs (Array.sub cands start (stop - start)) ~f:(fun (_, set) ->
            eval set)
      in
      let rec pick i =
        if i >= Array.length vals then None
        else if accepts vals.(i) then Some (fst cands.(start + i), snd cands.(start + i), vals.(i))
        else pick (i + 1)
      in
      match pick 0 with Some r -> Some r | None -> go stop
    end
  in
  go 0

(* One pass of Lee et al. local search restricted to [allowed] elements.
   [halt] is polled between rounds of moves; the current local iterate is
   always a valid independent set, so stopping early is safe.

   The candidate scans (singleton start, add moves, swap moves) batch their
   oracle evaluations through [first_improving], so they fan out across the
   domain pool while still accepting the first improving move in scan order
   — the accepted-move sequence, final set and value are identical for every
   [jobs] value. Only [oracle_calls] can differ at jobs > 1 (a batch may
   evaluate candidates past the accepted one). *)
let local_search_pass ~jobs ~eps ~matroid ~eval ~moves ~allowed ~halt =
  let n = max 1 (List.length allowed) in
  let nf = float_of_int n in
  let threshold = 1.0 +. (eps /. (nf *. nf *. nf *. nf)) in
  (* best singleton start: every feasible singleton is evaluated (also
     sequentially), so here the fan-out is a plain parallel map with a
     keep-first-maximum reduction in scan order *)
  let singles =
    Array.of_list
      (List.filter_map
         (fun e -> if Matroid.can_add matroid [] e then Some (e, [ e ]) else None)
         allowed)
  in
  let single_vals = Pool.parallel_map ~jobs singles ~f:(fun (_, set) -> eval set) in
  let best_single =
    let acc = ref None in
    Array.iteri
      (fun idx v ->
        match !acc with
        | Some (_, bv) when bv >= v -> ()
        | _ -> acc := Some (fst singles.(idx), v))
      single_vals;
    !acc
  in
  match best_single with
  | None -> ([], 0.0)
  | Some (e0, v0) ->
      let s = ref [ e0 ] and v = ref v0 in
      let improved = ref true in
      let accept set v' =
        s := set;
        v := v';
        incr moves;
        Metrics.incr c_moves;
        improved := true
      in
      while !improved && not (halt ()) do
        improved := false;
        (* delete moves: the iterate stays small, scan sequentially *)
        List.iter
          (fun e ->
            if not !improved then begin
              let s' = List.filter (fun x -> x <> e) !s in
              let v' = eval s' in
              if v' > threshold *. !v then accept s' v'
            end)
          !s;
        (* add moves *)
        if not !improved then begin
          let cands =
            Array.of_list
              (List.filter_map
                 (fun e ->
                   if (not (List.mem e !s)) && Matroid.can_add matroid !s e then
                     Some (e, e :: !s)
                   else None)
                 allowed)
          in
          match
            first_improving ~jobs ~eval ~accepts:(fun v' -> v' > threshold *. !v) cands
          with
          | Some (_, set, v') -> accept set v'
          | None -> ()
        end;
        (* swap moves: exchange one inside element for one outside element *)
        if not !improved then begin
          let cands =
            List.concat_map
              (fun e_out ->
                if List.mem e_out !s then []
                else
                  List.filter_map
                    (fun e_in ->
                      let s_minus = List.filter (fun x -> x <> e_in) !s in
                      if Matroid.can_add matroid s_minus e_out then
                        Some ((e_out, e_in), e_out :: s_minus)
                      else None)
                    !s)
              allowed
          in
          match
            first_improving ~jobs ~eval
              ~accepts:(fun v' -> v' > threshold *. !v)
              (Array.of_list cands)
          with
          | Some (_, set, v') -> accept set v'
          | None -> ()
        end
      done;
      (!s, !v)

let local_search ?(eps = 0.5) ?stop ?jobs ~matroid ~f () =
  if eps <= 0.0 then invalid_arg "Submodular.local_search: eps must be positive";
  let jobs = max 1 (match jobs with Some j -> j | None -> Pool.default_jobs ()) in
  let eval, calls = memoise f in
  let moves = ref 0 in
  let truncated = ref false in
  let halt () =
    match stop with
    | Some g when g ~evaluations:!calls ->
        truncated := true;
        true
    | _ -> false
  in
  let n = Matroid.ground_size matroid in
  let all = List.init n (fun i -> i) in
  let s1, v1 = local_search_pass ~jobs ~eps ~matroid ~eval ~moves ~allowed:all ~halt in
  (* second pass on the complement of the first local optimum, skipped when
     the first pass was cut short *)
  let s, v =
    if halt () then (s1, v1)
    else begin
      let rest = List.filter (fun e -> not (List.mem e s1)) all in
      let s2, v2 = local_search_pass ~jobs ~eps ~matroid ~eval ~moves ~allowed:rest ~halt in
      if v1 >= v2 then (s1, v1) else (s2, v2)
    end
  in
  (List.sort compare s, v, { oracle_calls = !calls; moves = !moves; truncated = !truncated })

let lazy_greedy ~matroid ~f () =
  let eval, calls = memoise f in
  let moves = ref 0 in
  let n = Matroid.ground_size matroid in
  let s = ref [] and v = ref (eval []) in
  (* cached upper bounds on marginal gains; valid by submodularity *)
  let bound = Array.make n Float.infinity in
  let fresh = Array.make n false in
  let active = Array.make n true in
  let continue_loop = ref (n > 0) in
  while !continue_loop do
    (* invalidate freshness from the previous round *)
    Array.fill fresh 0 n false;
    let rec pick () =
      (* choose the active element with the largest cached bound *)
      let best = ref (-1) and best_v = ref 0.0 in
      for e = 0 to n - 1 do
        if active.(e) && (!best < 0 || bound.(e) > !best_v) then begin
          best := e;
          best_v := bound.(e)
        end
      done;
      if !best < 0 then None
      else begin
        let e = !best in
        if not (Matroid.can_add matroid !s e) then begin
          active.(e) <- false;
          pick ()
        end
        else if fresh.(e) then
          if bound.(e) > 0.0 then Some e
          else None (* freshest maximum non-positive: stop *)
        else begin
          let gain = eval (e :: !s) -. !v in
          bound.(e) <- gain;
          fresh.(e) <- true;
          pick ()
        end
      end
    in
    match pick () with
    | None -> continue_loop := false
    | Some e ->
        s := e :: !s;
        v := eval !s;
        active.(e) <- false;
        incr moves;
        Metrics.incr c_moves
  done;
  (List.sort compare !s, !v, { oracle_calls = !calls; moves = !moves; truncated = false })
