(** Maximization of non-negative (possibly non-monotone) submodular set
    functions subject to a matroid constraint.

    [local_search] implements the algorithm of Lee, Mirrokni, Nagarajan and
    Sviridenko ("Maximizing nonmonotone submodular functions under matroid or
    knapsack constraints", SIAM J. Discrete Math. 23(4), 2010) specialised to
    a single matroid, which §4.2 of the paper invokes to approximate
    R-REVMAX to a factor 1/(4+ε): start from a best singleton; apply delete,
    add, and swap moves while they improve the value by more than a factor
    (1 + ε/n⁴); then repeat the search on the ground set minus the first
    local optimum and return the better of the two solutions.

    The value oracle is memoised per run, and the number of oracle calls is
    reported so that benchmarks can exhibit the O(n⁴ log n / ε) cost that
    motivates the paper's greedy heuristics.

    [lazy_greedy] is the classic accelerated greedy (Minoux) under the same
    matroid, provided for comparison; it carries guarantees only for monotone
    objectives but is the natural fast baseline. *)

type stats = {
  oracle_calls : int;  (** objective evaluations performed *)
  moves : int;  (** accepted local moves *)
  truncated : bool;  (** the search was stopped early by [stop] *)
}

val local_search :
  ?eps:float ->
  ?stop:(evaluations:int -> bool) ->
  ?jobs:int ->
  matroid:Matroid.t ->
  f:(int list -> float) ->
  unit ->
  int list * float * stats
(** [local_search ~eps ~matroid ~f ()] returns an approximately optimal
    independent set, its value, and search statistics. [f] must be
    non-negative on independent sets; [eps] (default 0.5) controls the
    improvement threshold (larger = faster, looser).

    [stop] is an anytime hook: it is polled with the cumulative oracle-call
    count between rounds of moves and between the two passes. When it
    returns [true] the current local iterate — always a valid independent
    set, found after at least the singleton-start round — is returned with
    [truncated = true].

    The candidate scans (singleton start, add moves, swap moves) evaluate
    [f] on up to [jobs] domains (default
    {!Revmax_prelude.Pool.default_jobs}) in batches, still accepting the
    first improving move in scan order — the accepted-move sequence, final
    set, value and [moves] count are identical for every [jobs] value. [f]
    must therefore be safe to call from multiple domains on disjoint
    argument lists. Only [oracle_calls] may differ at [jobs > 1]: a batch
    can evaluate candidates past the accepted one (which also means a [stop]
    based on that count can trip at slightly different points). *)

val lazy_greedy :
  matroid:Matroid.t ->
  f:(int list -> float) ->
  unit ->
  int list * float * stats
(** Accelerated greedy: repeatedly add the feasible element of largest
    positive marginal gain, with stale upper bounds refreshed lazily
    (soundness from submodularity, §5.1 of the paper). *)
