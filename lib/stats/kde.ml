module Rng = Revmax_prelude.Rng
module Util = Revmax_prelude.Util

type t = { points : float array; h : float }

let sample_std xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = Util.mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    sqrt (!acc /. float_of_int (n - 1))
  end

let silverman_bandwidth xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Kde.silverman_bandwidth: empty sample";
  let sigma = sample_std xs in
  if sigma <= 0.0 then begin
    (* degenerate (constant) sample: fall back to a scale-relative bandwidth so
       the density is proper instead of a Dirac spike.  The floor is 1% of the
       largest sample magnitude — not an absolute 1e-3, which would dwarf
       tiny-magnitude data — shrunk by the Silverman n^(-1/5) rate so the
       kernel still tightens with more evidence.  All-zero samples keep a
       small absolute floor since they carry no scale at all. *)
    let mag = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs in
    let base = if mag > 0.0 then 0.01 *. mag else 1e-3 in
    base *. (float_of_int n ** -0.2)
  end
  else (4.0 *. (sigma ** 5.0) /. (3.0 *. float_of_int n)) ** 0.2

let fit ?bandwidth xs =
  if Array.length xs = 0 then invalid_arg "Kde.fit: empty sample";
  let h = match bandwidth with Some h -> h | None -> silverman_bandwidth xs in
  if h <= 0.0 then invalid_arg "Kde.fit: bandwidth must be positive";
  { points = Array.copy xs; h }

let bandwidth t = t.h

let sample_points t = Array.copy t.points

let pdf t x =
  let n = Array.length t.points in
  let acc = ref 0.0 in
  Array.iter (fun p -> acc := !acc +. Special.gaussian_pdf ~mean:p ~sigma:t.h x) t.points;
  !acc /. float_of_int n

let cdf t x =
  let n = Array.length t.points in
  let acc = ref 0.0 in
  Array.iter (fun p -> acc := !acc +. Special.gaussian_cdf ~mean:p ~sigma:t.h x) t.points;
  !acc /. float_of_int n

let sf t x = 1.0 -. cdf t x

let draw t rng =
  let p = Rng.choose rng t.points in
  Rng.gaussian_mv rng ~mean:p ~sigma:t.h

let draw_n t rng n = Array.init n (fun _ -> draw t rng)

let mean t = Util.mean t.points

let variance t =
  let n = Array.length t.points in
  let m = mean t in
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      let d = x -. m in
      acc := !acc +. (d *. d))
    t.points;
  (!acc /. float_of_int n) +. (t.h *. t.h)

let gaussian_proxy t =
  Distribution.Gaussian { mean = mean t; sigma = sqrt (variance t) }
