module Rng = Revmax_prelude.Rng
module Pool = Revmax_prelude.Pool
module Metrics = Revmax_prelude.Metrics

let c_estimates = Metrics.counter "mc.estimates"

let c_samples = Metrics.counter "mc.samples"

let t_estimate = Metrics.timer "mc.estimate"

type estimate = { mean : float; std_error : float; samples : int }

(* Every sample draws from its own stream split off the caller's generator
   before fan-out, and the moment accumulation runs sequentially in sample
   order afterwards — so the estimate is bit-identical for every [jobs]
   value (float addition is not associative; per-chunk partial sums would
   depend on the chunking). *)
let estimate ?jobs ~samples rng f =
  if samples <= 0 then invalid_arg "Mc.estimate: samples must be positive";
  Metrics.span_t t_estimate @@ fun () ->
  Metrics.incr c_estimates;
  Metrics.incr c_samples ~by:samples;
  let streams = Rng.split_n rng samples in
  let values = Pool.parallel_map ?jobs streams ~f in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  Array.iter
    (fun v ->
      acc := !acc +. v;
      acc2 := !acc2 +. (v *. v))
    values;
  let n = float_of_int samples in
  let mean = !acc /. n in
  let var = Float.max 0.0 ((!acc2 /. n) -. (mean *. mean)) in
  let std_error = if samples > 1 then sqrt (var /. (n -. 1.0)) else Float.infinity in
  { mean; std_error; samples }

let ci95 e = (e.mean -. (1.96 *. e.std_error), e.mean +. (1.96 *. e.std_error))

(* 4 sigma + epsilon, deliberately wider than ci95's 1.96 sigma: see .mli *)
let within_ci e x = Float.abs (x -. e.mean) <= 4.0 *. e.std_error +. 1e-12
