(** Monte-Carlo estimation helpers. *)

type estimate = {
  mean : float;
  std_error : float;
  samples : int;
}

val estimate :
  ?jobs:int ->
  samples:int ->
  Revmax_prelude.Rng.t ->
  (Revmax_prelude.Rng.t -> float) ->
  estimate
(** [estimate ~samples rng f] averages [samples] evaluations of [f]. The
    standard error is the sample standard deviation divided by √samples.

    Each sample is evaluated on its own generator, split off [rng] with
    {!Revmax_prelude.Rng.split_n} before any work starts, and the moments
    are accumulated sequentially in sample order — so the estimate depends
    only on [rng]'s state and [samples], and is {e bit-identical} for every
    [jobs] value (default {!Revmax_prelude.Pool.default_jobs}; samples are
    fanned out across that many domains). [f] must not touch shared mutable
    state beyond its own generator. *)

val ci95 : estimate -> float * float
(** 95% normal confidence interval [(lo, hi)]:
    [mean ± 1.96 · std_error]. *)

val within_ci : estimate -> float -> bool
(** Whether a reference value lies inside a {e widened} interval
    [mean ± (4 · std_error + 1e-12)] — deliberately {b not} the 1.96σ
    interval of {!ci95}. The 4σ widening (plus an epsilon absorbing float
    noise when [std_error] is 0) brings the false-alarm probability of a
    correct stochastic test below 1e-4 per check, the flakiness target of
    the test suite; a genuinely wrong mean still fails because estimator
    error shrinks as √samples while a real discrepancy does not. The exact
    widths of both intervals are pinned by a unit test so this comment
    cannot drift from the code. *)
