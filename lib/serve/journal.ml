module Metrics = Revmax_prelude.Metrics

type event =
  | Adopt of { u : int; i : int; t : int }
  | Click of { u : int; i : int; t : int }
  | Cap of { i : int; delta : int }
  | Repair

let pp_event ppf = function
  | Adopt { u; i; t } -> Format.fprintf ppf "adopt(u=%d,i=%d,t=%d)" u i t
  | Click { u; i; t } -> Format.fprintf ppf "click(u=%d,i=%d,t=%d)" u i t
  | Cap { i; delta } -> Format.fprintf ppf "cap(i=%d,delta=%d)" i delta
  | Repair -> Format.fprintf ppf "repair"

type t = {
  path : string;
  fd : Unix.file_descr;
  sync_every : int;
  mutable unsynced : int;
  mutable offset : int; (* end-of-file append position *)
  mutable closed : bool;
}

let c_appends = Metrics.counter "journal.appends"
let c_syncs = Metrics.counter "journal.syncs"
let c_healed_bytes = Metrics.counter "journal.healed_bytes"
let c_healed_records = Metrics.counter "journal.dropped_corrupt_records"

let crc32 = Revmax_prelude.Util.crc32

(* ------------------------------------------------------------------ *)
(* Record codec                                                        *)
(* ------------------------------------------------------------------ *)

(* payloads are tiny; anything larger than this in a length prefix is
   corruption, not a record *)
let max_payload = 1 lsl 16

let tag_of = function Adopt _ -> 1 | Click _ -> 2 | Cap _ -> 3 | Repair -> 4

let encode_payload ~seq ev =
  let ints = match ev with
    | Adopt { u; i; t } | Click { u; i; t } -> [| u; i; t |]
    | Cap { i; delta } -> [| i; delta |]
    | Repair -> [||]
  in
  let b = Bytes.create (9 + (4 * Array.length ints)) in
  Bytes.set_uint8 b 0 (tag_of ev);
  Bytes.set_int64_le b 1 seq;
  Array.iteri (fun k v -> Bytes.set_int32_le b (9 + (4 * k)) (Int32.of_int v)) ints;
  b

let decode_payload b =
  let len = Bytes.length b in
  if len < 9 then None
  else
    let seq = Bytes.get_int64_le b 1 in
    let i32 k = Int32.to_int (Bytes.get_int32_le b (9 + (4 * k))) in
    let need n = len = 9 + (4 * n) in
    match Bytes.get_uint8 b 0 with
    | 1 when need 3 -> Some (seq, Adopt { u = i32 0; i = i32 1; t = i32 2 })
    | 2 when need 3 -> Some (seq, Click { u = i32 0; i = i32 1; t = i32 2 })
    | 3 when need 2 -> Some (seq, Cap { i = i32 0; delta = i32 1 })
    | 4 when need 0 -> Some (seq, Repair)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Scan + self-heal                                                    *)
(* ------------------------------------------------------------------ *)

(* Walk the raw bytes of a journal; returns the surviving records in file
   order and the offset of the first invalid byte (= file length when the
   whole file is clean). *)
let scan_bytes data =
  let len = Bytes.length data in
  let records = ref [] in
  let rec walk off =
    if off + 8 > len then off
    else
      let plen = Int32.to_int (Bytes.get_int32_le data off) in
      if plen < 9 || plen > max_payload then off
      else if off + 8 + plen > len then off (* truncated tail *)
      else
        let crc = Int32.to_int (Bytes.get_int32_le data (off + 4)) land 0xFFFFFFFF in
        if crc32 data (off + 8) plen <> crc then off
        else
          match decode_payload (Bytes.sub data (off + 8) plen) with
          | None -> off
          | Some r ->
              records := r :: !records;
              walk (off + 8 + plen)
  in
  let valid_end = walk 0 in
  (List.rev !records, valid_end)

let read_all path =
  if not (Sys.file_exists path) then Bytes.create 0
  else In_channel.with_open_bin path (fun ic -> Bytes.of_string (In_channel.input_all ic))

let events path =
  let records, _ = scan_bytes (read_all path) in
  records

let openw ?(sync_every = 1) path =
  let data = read_all path in
  let records, valid_end = scan_bytes data in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  if valid_end < Bytes.length data then begin
    let dropped = Bytes.length data - valid_end in
    Metrics.incr c_healed_bytes ~by:dropped;
    Metrics.incr c_healed_records;
    Metrics.Log.warn "journal %s: dropping %d invalid tail bytes (self-heal at offset %d)\n" path
      dropped valid_end;
    Unix.ftruncate fd valid_end;
    (* the healed tail must be durable before new records land after it *)
    Unix.fsync fd
  end;
  ignore (Unix.lseek fd valid_end Unix.SEEK_SET);
  ({ path; fd; sync_every; unsynced = 0; offset = valid_end; closed = false }, records)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

let write_all fd b off len =
  let written = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd b !written !remaining in
    written := !written + n;
    remaining := !remaining - n
  done

let sync j =
  Chaos.point "journal.sync";
  Unix.fsync j.fd;
  j.unsynced <- 0;
  Metrics.incr c_syncs

let pending j = j.unsynced

let append j ~seq ev =
  if j.closed then invalid_arg "Journal.append: closed journal";
  Chaos.point "journal.append";
  let payload = encode_payload ~seq ev in
  let plen = Bytes.length payload in
  let record = Bytes.create (8 + plen) in
  Bytes.set_int32_le record 0 (Int32.of_int plen);
  Bytes.set_int32_le record 4 (Int32.of_int (crc32 payload 0 plen));
  Bytes.blit payload 0 record 8 plen;
  let start = j.offset in
  let unsynced_before = j.unsynced in
  let rollback () =
    (* tear-proofing: a failed (or partial) write — including a failed
       fsync of this record — is rolled back to the record boundary so a
       supervised retry appends cleanly, never duplicating the sequence
       number or leaving mid-garbage *)
    j.offset <- start;
    j.unsynced <- unsynced_before;
    try
      Unix.ftruncate j.fd start;
      ignore (Unix.lseek j.fd start Unix.SEEK_SET)
    with Unix.Unix_error _ -> ()
  in
  (try
     (* two halves with a chaos crash point in between: a seeded
        crash-on-write kills the process with a torn record on disk,
        which openw's self-heal must recover from *)
     let half = (8 + plen) / 2 in
     write_all j.fd record 0 half;
     Chaos.point "journal.mid_write";
     write_all j.fd record half (8 + plen - half);
     j.offset <- start + 8 + plen;
     j.unsynced <- j.unsynced + 1;
     if j.sync_every > 0 && j.unsynced >= j.sync_every then sync j
   with e ->
     rollback ();
     raise e);
  Metrics.incr c_appends

let rotate j =
  Chaos.point "journal.rotate";
  Unix.ftruncate j.fd 0;
  ignore (Unix.lseek j.fd 0 Unix.SEEK_SET);
  j.offset <- 0;
  j.unsynced <- 0;
  Unix.fsync j.fd

let size_bytes j = j.offset

let close j =
  if not j.closed then begin
    j.closed <- true;
    (try Unix.fsync j.fd with Unix.Unix_error _ -> ());
    Unix.close j.fd
  end
