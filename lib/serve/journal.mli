(** Crash-safe write-ahead log of serving events.

    The journal is an append-only file of length-prefixed, CRC-guarded
    binary records; together with the atomic snapshots written by
    {!Server} it makes the serving state machine recoverable: state =
    snapshot ⊕ replay of every journaled event with a higher sequence
    number. Design invariants (DESIGN.md §12):

    - {b Write-ahead}: {!Server} journals an event before applying it, so
      an applied event is always recoverable.
    - {b Tear-proof appends}: a record is written with a single [write];
      if the write fails (injected IO fault, [ENOSPC]) the file is rolled
      back to the previous record boundary before the error propagates,
      so a retried append never leaves garbage between records.
    - {b Self-healing tail}: {!openw} scans the file, verifies each
      record's length sanity and CRC-32, and truncates everything from
      the first invalid byte — a tail torn by a crash mid-write, or a
      record corrupted by a flipped bit, is dropped (with a warning and a
      metrics count) rather than wedging recovery. Corruption is detected
      at the {e first} bad record; later records are dropped too, because
      record boundaries after a corrupt length prefix cannot be trusted.
    - {b Batched durability}: appends [fsync] every [sync_every] records
      (1 = every append); {!sync} forces the tail down. After a crash the
      journal is guaranteed to contain a prefix of the appended records —
      exactly the acked-and-fsynced ones when [sync_every = 1].

    Record wire format: [u32 LE payload length | u32 LE CRC-32(payload) |
    payload], payload = [u8 tag | i64 LE seq | tag-specific i32 LE
    fields]. *)

type event =
  | Adopt of { u : int; i : int; t : int }
      (** User [u] adopted item [i] at time [t] — consumes one unit of
          the item's capacity and triggers replanning of [u]. *)
  | Click of { u : int; i : int; t : int }
      (** Attribution-only engagement signal; no planner state change. *)
  | Cap of { i : int; delta : int }
      (** External inventory adjustment: [delta > 0] consumes stock,
          [delta < 0] restores it. *)
  | Repair
      (** Operator/driver checkpoint: fully replan every user whose last
          replan was truncated by the per-event work cap. *)

val pp_event : Format.formatter -> event -> unit

type t

val openw : ?sync_every:int -> string -> t * (int64 * event) list
(** [openw path] opens (creating if missing) the journal for appending:
    scans existing records, self-heals the tail (see above), and returns
    the handle positioned after the last valid record together with the
    surviving [(seq, event)] records in file order. [sync_every] (default
    [1]) batches [fsync]: every [n]-th append syncs; [0] disables
    implicit syncs entirely (callers must {!sync}). *)

val append : t -> seq:int64 -> event -> unit
(** Append one record (tear-proof, see above) and count it toward the
    batched fsync. Chaos points: [journal.append] (before the write),
    [journal.mid_write] (between the two halves of the record — a crash
    here leaves a torn tail for {!openw} to heal), [journal.sync]. *)

val sync : t -> unit
(** Force buffered records to stable storage ([fsync]). *)

val pending : t -> int
(** Appends since the last fsync (for tests and monitoring). *)

val rotate : t -> unit
(** Truncate the journal to empty and [fsync] — called by {!Server} {e
    after} a snapshot covering every journaled event has been atomically
    written, so the dropped records are all redundant. A crash between
    snapshot and rotation is safe: recovery skips records whose seq is
    covered by the snapshot. *)

val size_bytes : t -> int
(** Current end-of-file offset. *)

val close : t -> unit

val events : string -> (int64 * event) list
(** Read-only scan of a journal file (same validation as {!openw}, but
    the file is not modified — a torn tail is ignored, not truncated).
    Returns [[]] when the file does not exist. *)
