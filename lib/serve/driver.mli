(** Traffic generation and crash-replay harness for the serving layer.

    The driver plays a deterministic synthetic event stream against a
    {!Server} in two ways:

    - {!reference}: in-process, fault-free — one [Server.create] + a
      sequential [Server.apply] fold in a scratch directory. This is the
      ground truth the chaos runs are compared against.
    - {!run_replay}: the server runs in a forked child behind a
      socketpair speaking {!Server.Wire}; the parent drives events and
      [Topk] probes, measures per-request latency, and — when the child
      dies (seeded chaos crash, or the parent's own [kill_every]
      SIGKILL schedule) — restarts it against the same data directory,
      asks [Stats] for the recovered sequence number, and resends the
      event suffix. A run "passes" when the surviving server's final
      strategy, sequence number and realized revenue are identical to the
      reference — crash-recovery identity, end to end.

    Everything is deterministic given (instance, workload seed, chaos
    spec, kill schedule): reruns produce byte-identical final state. *)

type workload = Journal.event list

val synth_workload :
  Revmax.Instance.t -> seed:int -> events:int -> workload
(** A deterministic stream of [events] events: times walk the horizon
    left to right; ~60% clicks, ~30% adoptions, ~8% capacity shocks
    (±1), ~2% repair requests. Users and items are drawn uniformly, so
    both planned and organic adoptions occur. *)

type percentiles = { p50 : float; p95 : float; p99 : float; max : float }

val percentiles_of : float list -> percentiles
(** Nearest-rank percentiles; all zero for the empty list. *)

type outcome = {
  seq : int64;
  triples : (int * int * int) list;  (** sorted (u, i, t) strategy dump *)
  realized : float;
  stale : bool;
}

val outcome_of_server : Server.t -> outcome
(** Snapshot a live in-process server's observable state. *)

val reference : Server.config -> Revmax.Instance.t -> workload -> outcome
(** The fault-free in-process fold (chaos disarmed for its duration). *)

type report = {
  expected : outcome;  (** the {!reference} outcome *)
  actual : outcome;  (** the surviving child's final state *)
  identical : bool;  (** strategy, seq and realized revenue all match *)
  events_sent : int;  (** includes resends after restarts *)
  events_refused : int;  (** [Err_r] answers to event frames *)
  probes : int;
  stale_probes : int;
  restarts : int;  (** child deaths survived (chaos or kill schedule) *)
  event_latency : percentiles;
  probe_latency : percentiles;
}

val run_replay :
  ?kill_every:int ->
  ?chaos:string ->
  ?probe_every:int ->
  ?k:int ->
  Server.config ->
  Revmax.Instance.t ->
  workload ->
  report
(** Fork/kill/restart replay. [kill_every] (0 = never, default) SIGKILLs
    the child after every n-th acknowledged event — on top of whatever
    [chaos] (a {!Chaos.configure} spec applied in the child, e.g.
    ["seed=5;fail=journal.sync:0.2;crash=journal.mid_write:40"]) does on
    its own. Every [probe_every]-th event (default 10) is followed by a
    [Topk] probe for that event's user at its time. The reference run
    uses a separate scratch directory derived from [config.data_dir]. *)

val pp_report : Format.formatter -> report -> unit
