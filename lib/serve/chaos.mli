(** Deterministic fault injection for the serving layer.

    The serving stack (journal, supervisor, server) threads named {e
    injection points} through its IO paths; when chaos is armed, each hit
    of a point may — per the configured spec, from a seeded per-site
    random stream — raise an injected [Sys_error], sleep, or SIGKILL the
    process. Disarmed (the default), a point is a single branch.

    Determinism: every site owns an independent SplitMix64 stream derived
    from the global chaos seed and a stable hash of the site name, plus a
    hit counter. Two processes configured with the same spec therefore
    inject the {e same} faults at the {e same} hits regardless of
    registration order — chaos runs are replayable, which is what lets
    the recovery-identity suite assert exact outcomes under injected
    faults.

    Spec syntax (also accepted from [REVMAX_CHAOS]):
    {v seed=42;fail=journal.sync:0.25;delay=journal.append:0.5:0.002;crash=journal.mid_write:40 v}
    - [seed=N] — global seed for the per-site streams (default 0);
    - [fail=SITE:P] — each hit of [SITE] raises [Sys_error] with
      probability [P];
    - [delay=SITE:P:SECONDS] — each hit sleeps [SECONDS] with
      probability [P];
    - [crash=SITE:N] — the [N]-th hit of [SITE] SIGKILLs the process
      (simulating a crash mid-operation, e.g. a torn journal write).

    Multiple clauses may target one site; they are applied in spec order.

    Sites currently wired: [journal.append], [journal.mid_write],
    [journal.sync], [journal.rotate], [snapshot.write], [server.handle]. *)

val configure : string -> unit
(** Parse a spec and arm chaos. Replaces any previous configuration.
    Raises [Invalid_argument] on a malformed spec. *)

val configure_from_env : unit -> unit
(** [configure] from [REVMAX_CHAOS] when set and non-empty; otherwise a
    no-op. Entry points call this; libraries never do. *)

val active : unit -> bool
(** Whether chaos is armed. *)

val disarm : unit -> unit
(** Drop the configuration and all per-site state. *)

val point : string -> unit
(** Hit the named injection point: disarmed or unconfigured sites are one
    branch; configured sites count the hit and apply their clauses (raise
    [Sys_error], sleep, or SIGKILL the process). *)

val hits : string -> int
(** Number of times the named point fired since configuration (0 for
    unknown sites). For tests. *)
