(** The online serving layer: a crash-safe, supervised event loop that
    turns the batch planner into a long-running recommendation service.

    {2 State machine}

    The server's planning state is a deterministic fold over the journaled
    event sequence, starting from the initial strategy (a full
    {!Revmax.Greedy} run at first boot):

    - [Adopt (u, i, t)] — the pair [(u, i)] is marked adopted, every
      planned [(u, i, _)] triple leaves the strategy, one unit of item
      [i]'s capacity is consumed for the rest of the horizon (whether or
      not the adopter was a planned recipient), over-subscribed holders
      are released exactly as in {!Revmax.Shard_greedy}'s reconciliation
      (lowest removal-loss first, ties to the lower user id) and each
      affected user is {e incrementally replanned} via
      [Greedy.run ~allowed ~base] — selection restricted to the user's
      future ([t > now]) slots against the committed remainder of the
      strategy. Realized revenue [p(i, t)] is attributed, split into
      recommended vs organic adoptions.
    - [Click (u, i, t)] — attribution only (served→clicked→adopted
      pipeline counters); no planner state change.
    - [Cap (i, delta)] — external inventory adjustment: positive [delta]
      consumes stock (possibly forcing releases + replans as above),
      negative restores it; clamped so consumed stock stays in
      [0, capacity_i].
    - [Repair] — every user whose last replan was truncated by the
      per-event work cap is replanned without a cap, clearing the
      degraded flag.

    Replanning work per event is bounded by [replan_evals] (a
    deterministic {!Revmax_prelude.Budget} evaluation cap — wall-clock
    caps would make live execution and replay diverge): under overload
    the replan truncates to a valid prefix, answers are served with a
    [stale] flag, and the user queues for the next [Repair]. This is the
    degraded mode — the server never dies because planning fell behind.

    {2 Crash safety}

    Every state-changing event is appended to the {!Journal} {e before}
    it is applied (write-ahead); every [snapshot_every] events the full
    state is written via [Io.save_atomic] (fsynced) and the journal is
    rotated. Recovery = load snapshot (if any; otherwise re-derive the
    initial plan, which is deterministic) + replay journaled events with
    [seq >] snapshot seq. Both journal append and snapshot writes run
    under the {!Supervisor}: transient IO faults are retried with
    backoff, persistent ones degrade (events are refused with a typed
    error / snapshots are skipped until the next interval) — the loop
    continues. Applying an event, in contrast, is never retried: it is
    deterministic, and a failure there is a bug that must fail replay
    identically, so it is fatal by design (crash-only: the process dies,
    recovery replays, a deterministic failure surfaces to the operator).

    {2 Serving}

    Requests arrive as length-prefixed binary frames (see {!Wire}) over
    an arbitrary fd pair ({!serve}) or a Unix-domain socket accept loop
    ({!serve_unix}). SIGPIPE is ignored for the duration of the loop: a
    client vanishing mid-response surfaces as a typed
    [Err.Io_error]/[EPIPE], the connection is dropped, and the loop
    continues. *)

module Err = Revmax_prelude.Err

type config = {
  data_dir : string;  (** journal + snapshot directory; created if missing *)
  snapshot_every : int;  (** events between snapshots; 0 = only at boot/shutdown *)
  sync_every : int;  (** journal fsync batching (1 = every append) *)
  replan_evals : int option;  (** per-event replan evaluation cap; None = unbounded *)
  retry : Supervisor.policy;  (** IO supervision policy *)
  seed : int;  (** supervisor jitter seed *)
}

val default_config : data_dir:string -> config
(** [snapshot_every = 64], [sync_every = 1], unbounded replans,
    {!Supervisor.default_policy}, seed 0. *)

type t

val create : config -> Revmax.Instance.t -> t
(** Boot-or-recover: loads [data_dir]'s snapshot when present (raising
    [Err.Error] if it is unreadable — snapshots are written atomically
    and fsynced, so corruption is bitrot, not a crash artifact), plans
    the initial strategy otherwise, heals and replays the journal, and
    writes a fresh snapshot so later recoveries are cheap. *)

(** {1 State observation (tests, driver)} *)

val strategy : t -> Revmax.Strategy.t
val seq : t -> int64
(** Events applied so far; event [n] (1-based) carries seq [n]. *)

val now : t -> int
(** Largest event time seen (replans only touch later slots). *)

val stale_users : t -> int list
(** Users whose last replan was truncated (sorted); non-empty = degraded. *)

val realized_revenue : t -> float

val organic_consumed : t -> int -> int
(** Capacity units of an item consumed outside the strategy (adoptions +
    external [Cap] events). *)

(** {1 Event application} *)

val apply : t -> Journal.event -> (int64, Err.t) result
(** Journal (write-ahead, supervised) then apply one event; returns the
    event's sequence number. [Error] means the event was refused — not
    journaled, not applied (degraded IO) — and can be retried by the
    client. May write a snapshot per [snapshot_every]. *)

val topk : t -> u:int -> time:int -> k:int -> (int * float) list * bool
(** The planned recommendations for user [u] at [time] (at most [k],
    highest expected marginal revenue first, ties by item id) and the
    stale flag — [true] when any user's replan is pending repair, so
    answers may be running on a degraded plan. *)

val save_snapshot : t -> (unit, Err.t) result
(** Force a snapshot + journal rotation (supervised). *)

val close : t -> unit
(** Final snapshot (best-effort) and journal close. *)

(** {1 Wire protocol} *)

module Wire : sig
  (** Length-prefixed binary frames: [u32 LE length | payload]. All
      integers little-endian. Shared by the server loop, the traffic
      driver and the CLI client. *)

  type request =
    | Topk of { u : int; time : int; k : int }
    | Event of Journal.event
    | Stats
    | Snapshot
    | Dump  (** full strategy, for identity checks *)
    | Shutdown

  type response =
    | Items of { stale : bool; items : (int * float) list }
    | Ack of { seq : int64; stale : bool }
    | Stats_r of { seq : int64; size : int; stale : bool; realized : float; now : int }
    | Dump_r of (int * int * int) list
    | Err_r of string

  val write_frame : Unix.file_descr -> Bytes.t -> unit
  val read_frame : Unix.file_descr -> Bytes.t option
  (** [None] on EOF (including EOF mid-frame). *)

  val encode_request : request -> Bytes.t
  val decode_request : Bytes.t -> (request, string) result
  val encode_response : response -> Bytes.t
  val decode_response : Bytes.t -> (response, string) result
end

(** {1 Serving loops} *)

val serve : t -> in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> unit
(** Answer frames until EOF or [Shutdown]. Ignores SIGPIPE (restoring the
    previous disposition on exit); a write failure ends the loop with a
    logged typed error, never an unhandled signal. *)

val serve_unix : t -> path:string -> unit
(** Accept loop on a Unix-domain socket (the path is replaced if it
    exists): clients are served sequentially with {!serve}'s per-
    connection semantics; a client crashing mid-request drops only that
    connection. Returns after a [Shutdown] request. *)

val topk_of_strategy :
  Revmax.Instance.t -> Revmax.Strategy.t -> u:int -> time:int -> k:int -> (int * float) list
(** The pure scoring behind {!topk} (for reference checks). *)
