module Err = Revmax_prelude.Err
module Rng = Revmax_prelude.Rng
module Metrics = Revmax_prelude.Metrics
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Triple = Revmax.Triple

type workload = Journal.event list

let synth_workload inst ~seed ~events =
  let rng = Rng.create seed in
  let nu = Instance.num_users inst in
  let ni = Instance.num_items inst in
  let h = Instance.horizon inst in
  let rec gen k acc =
    if k >= events then List.rev acc
    else
      let t = min h (max 1 (1 + (k * h / max 1 events))) in
      let u = Rng.int rng nu in
      let i = Rng.int rng ni in
      let r = Rng.unit_float rng in
      let ev =
        if r < 0.60 then Journal.Click { u; i; t }
        else if r < 0.90 then Journal.Adopt { u; i; t }
        else if r < 0.98 then Journal.Cap { i; delta = (if Rng.bool rng then 1 else -1) }
        else Journal.Repair
      in
      gen (k + 1) (ev :: acc)
  in
  gen 0 []

type percentiles = { p50 : float; p95 : float; p99 : float; max : float }

let percentiles_of xs =
  match List.sort compare xs with
  | [] -> { p50 = 0.0; p95 = 0.0; p99 = 0.0; max = 0.0 }
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      (* nearest-rank: index ⌈pct·n/100⌉ − 1, in exact integer arithmetic.
         The former float form — ceil (p *. float n) — is only correct when
         the double for p sits at or below the exact rational: 0.50, 0.95
         and 0.99 all round down, so the product never crosses the next
         integer from below, but e.g. 0.55 rounds up and overshoots the
         rank by one whenever 0.55·n is integral (p55 of 100 samples read
         index 55, not 54). The integer form is exact for every pct. *)
      let pick pct = a.(max 0 (min (n - 1) (((pct * n) + 99) / 100 - 1))) in
      { p50 = pick 50; p95 = pick 95; p99 = pick 99; max = a.(n - 1) }

type outcome = { seq : int64; triples : (int * int * int) list; realized : float; stale : bool }

let outcome_of_server st =
  {
    seq = Server.seq st;
    triples =
      List.sort compare
        (List.map (fun (z : Triple.t) -> (z.u, z.i, z.t)) (Strategy.to_list (Server.strategy st)));
    realized = Server.realized_revenue st;
    stale = Server.stale_users st <> [];
  }

(* only our own state files — never a recursive delete *)
let clean_state_files dir =
  List.iter
    (fun f ->
      let p = Filename.concat dir f in
      if Sys.file_exists p then Sys.remove p)
    [ "snapshot.revmax"; "journal.wal" ]

let reference (cfg : Server.config) inst wl =
  Chaos.disarm ();
  clean_state_files cfg.data_dir;
  let st = Server.create cfg inst in
  List.iter
    (fun ev ->
      match Server.apply st ev with Ok _ -> () | Error e -> Err.raise_ e)
    wl;
  let o = outcome_of_server st in
  Server.close st;
  o

type report = {
  expected : outcome;
  actual : outcome;
  identical : bool;
  events_sent : int;
  events_refused : int;
  probes : int;
  stale_probes : int;
  restarts : int;
  event_latency : percentiles;
  probe_latency : percentiles;
}

exception Too_many_restarts

let run_replay ?(kill_every = 0) ?(chaos = "") ?(probe_every = 10) ?(k = 3)
    (cfg : Server.config) inst wl =
  let ref_cfg = { cfg with data_dir = cfg.data_dir ^ ".ref" } in
  let expected = reference ref_cfg inst wl in
  clean_state_files cfg.data_dir;
  let events = Array.of_list wl in
  let n = Array.length events in
  let max_restarts = 1000 + (4 * n) in
  let restarts = ref 0 in
  let events_sent = ref 0 in
  let refused = ref 0 in
  let probes = ref 0 in
  let stale_probes = ref 0 in
  let ev_lat = ref [] in
  let probe_lat = ref [] in
  let acked = ref 0 in
  let next_idx = ref 0 in
  (* (pid, socket) of the live child, if any *)
  let child : (int * Unix.file_descr) option ref = ref None in
  let spawn () =
    flush stdout;
    flush stderr;
    let parent_sock, child_sock = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.fork () with
    | 0 ->
        Unix.close parent_sock;
        let code =
          try
            if chaos <> "" then Chaos.configure chaos;
            let st = Server.create cfg inst in
            Server.serve st ~in_fd:child_sock ~out_fd:child_sock;
            Server.close st;
            0
          with _ -> 1
        in
        Stdlib.exit code
    | pid ->
        Unix.close child_sock;
        (pid, parent_sock)
  in
  let reap (pid, fd) =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let child_died c =
    reap c;
    child := None;
    incr restarts;
    if !restarts > max_restarts then raise Too_many_restarts
  in
  let rpc_once fd req =
    try
      Server.Wire.write_frame fd (Server.Wire.encode_request req);
      match Server.Wire.read_frame fd with
      | None -> None
      | Some b -> (
          match Server.Wire.decode_response b with
          | Ok r -> Some r
          | Error msg -> failwith ("driver: undecodable response: " ^ msg))
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> None
  in
  (* spawn-or-reuse, resyncing next_idx from the child's recovered seq:
     events carry seq 1..n in order, so a recovered seq of s means events
     0..s-1 (0-based) are applied and durable — resend from index s *)
  let rec ensure_child () =
    match !child with
    | Some c -> c
    | None -> (
        let c = spawn () in
        child := Some c;
        match rpc_once (snd c) Server.Wire.Stats with
        | Some (Server.Wire.Stats_r s) ->
            next_idx := Int64.to_int s.seq;
            c
        | Some _ -> failwith "driver: unexpected response to Stats"
        | None ->
            (* died during boot (e.g. seeded crash in the boot snapshot) *)
            child_died c;
            ensure_child ())
  in
  let probe fd ev =
    match ev with
    | Journal.Adopt { u; t; _ } | Journal.Click { u; t; _ } -> (
        let t0 = Unix.gettimeofday () in
        match rpc_once fd (Server.Wire.Topk { u; time = t; k }) with
        | Some (Server.Wire.Items { stale; _ }) ->
            probe_lat := (Unix.gettimeofday () -. t0) :: !probe_lat;
            incr probes;
            if stale then incr stale_probes;
            true
        | Some _ -> true
        | None -> false)
    | _ -> true
  in
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      (match !child with Some c -> reap c | None -> ());
      match old_sigpipe with Some b -> Sys.set_signal Sys.sigpipe b | None -> ())
    (fun () ->
      while !next_idx < n do
        let ((pid, fd) as c) = ensure_child () in
        let idx = !next_idx in
        let t0 = Unix.gettimeofday () in
        match rpc_once fd (Server.Wire.Event events.(idx)) with
        | None -> child_died c
        | Some resp -> (
            ev_lat := (Unix.gettimeofday () -. t0) :: !ev_lat;
            incr events_sent;
            match resp with
            | Server.Wire.Ack _ ->
                next_idx := idx + 1;
                incr acked;
                let alive =
                  if probe_every > 0 && (idx + 1) mod probe_every = 0 then probe fd events.(idx)
                  else true
                in
                if not alive then child_died c
                else if kill_every > 0 && !acked mod kill_every = 0 then begin
                  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                  child_died c
                end
            | Server.Wire.Err_r _ ->
                (* refused = not journaled, not applied: retry the same
                   event; a quarantined journal recovers via probe calls *)
                incr refused;
                if !refused > 100 * max 1 n then
                  failwith "driver: event refused too many times; journal never recovered"
            | _ -> failwith "driver: unexpected response to Event")
      done;
      (* final state, surviving any further child deaths *)
      let rec finalize () =
        let ((_, fd) as c) = ensure_child () in
        match (rpc_once fd Server.Wire.Stats, rpc_once fd Server.Wire.Dump) with
        | Some (Server.Wire.Stats_r s), Some (Server.Wire.Dump_r triples) ->
            ignore (rpc_once fd Server.Wire.Shutdown);
            reap c;
            child := None;
            {
              seq = s.seq;
              triples = List.sort compare triples;
              realized = s.realized;
              stale = s.stale;
            }
        | None, _ | _, None ->
            child_died c;
            finalize ()
        | _ -> failwith "driver: unexpected finalize responses"
      in
      let actual = finalize () in
      let identical =
        Int64.equal expected.seq actual.seq
        && expected.triples = actual.triples
        && Float.equal expected.realized actual.realized
        && Bool.equal expected.stale actual.stale
      in
      {
        expected;
        actual;
        identical;
        events_sent = !events_sent;
        events_refused = !refused;
        probes = !probes;
        stale_probes = !stale_probes;
        restarts = !restarts;
        event_latency = percentiles_of !ev_lat;
        probe_latency = percentiles_of !probe_lat;
      })

let pp_percentiles ppf p =
  Format.fprintf ppf "p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms" (1e3 *. p.p50)
    (1e3 *. p.p95) (1e3 *. p.p99) (1e3 *. p.max)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>replay: %s@,\
     events sent %d (refused %d), probes %d (stale %d), restarts %d@,\
     final: seq %Ld, %d triples, realized %.6f%s@,\
     event latency: %a@,\
     probe latency: %a@]"
    (if r.identical then "IDENTICAL" else "DIVERGED")
    r.events_sent r.events_refused r.probes r.stale_probes r.restarts r.actual.seq
    (List.length r.actual.triples)
    r.actual.realized
    (if r.actual.stale then " (stale)" else "")
    pp_percentiles r.event_latency pp_percentiles r.probe_latency
