(** Typed retry/backoff supervision for the serving layer's IO operations.

    A {!policy} bounds how hard the server fights a failing operation
    (journal append, fsync, snapshot write) before degrading: up to
    [max_attempts] tries, exponential backoff with {e deterministic}
    jitter (each operation name owns a SplitMix64 stream derived from the
    supervisor seed, so two supervisors with equal seeds sleep the exact
    same schedule), an optional per-attempt wall-clock timeout delivered
    to the operation as a {!Revmax_prelude.Budget} (on the monotonic
    deadline scale), and quarantine: after [quarantine_after] consecutive
    exhausted-retry failures the operation is short-circuited to an error
    without being attempted, so a persistently broken dependency cannot
    stall the event loop with full retry storms on every event. A later
    {!reset} (or a successful probe, every [probe_every]-th call while
    quarantined) lifts the quarantine.

    Planner {e state} transitions are deliberately outside supervision:
    replanning is deterministic and must fail identically in live
    execution and WAL replay, so it is never retried — only IO, whose
    success or failure does not change the state fold, is. *)

type policy = {
  max_attempts : int;  (** total attempts per call, >= 1 *)
  base_delay : float;  (** seconds before the second attempt *)
  multiplier : float;  (** exponential backoff factor *)
  max_delay : float;  (** backoff ceiling, seconds *)
  jitter : float;  (** +/- fraction of the delay drawn uniformly, in [0,1) *)
  timeout : float option;  (** per-attempt wall budget handed to the op *)
  quarantine_after : int;  (** consecutive failures before quarantine; 0 = never *)
  probe_every : int;  (** while quarantined, attempt every n-th call (0 = never probe) *)
}

val default_policy : policy
(** 3 attempts, 1 ms base delay doubling to a 100 ms ceiling, 25% jitter,
    no timeout, quarantine after 5 consecutive failures, probe every 16th
    quarantined call. *)

type t

val create : ?policy:policy -> seed:int -> unit -> t

val backoff_delay : policy -> rng:Revmax_prelude.Rng.t -> attempt:int -> float
(** The sleep before attempt [attempt + 1] (so [attempt] counts completed
    failures, from 1): [min max_delay (base_delay * multiplier^(attempt-1))]
    with the jitter drawn from [rng]. Pure given the generator state —
    exposed for determinism tests. *)

val run : t -> name:string -> (Revmax_prelude.Budget.t option -> 'a) -> ('a, Revmax_prelude.Err.t) result
(** Run the operation under the policy. The argument is the per-attempt
    timeout budget ([None] when the policy has no timeout); long
    operations should poll [Budget.exhausted] and abort. Exceptions are
    mapped through {!Revmax_prelude.Err.of_exn}; the last attempt's error
    is returned. Each failure of the full retry loop counts toward
    quarantine; any success resets the count. *)

val quarantined : t -> string -> bool

val consecutive_failures : t -> string -> int

val reset : t -> string -> unit
(** Lift quarantine and zero the failure count for the operation. *)
