module Rng = Revmax_prelude.Rng
module Metrics = Revmax_prelude.Metrics

type clause =
  | Fail of float
  | Delay of float * float
  | Crash of int

type site = {
  clauses : clause list; (* in spec order *)
  rng : Rng.t;
  mutable hit_count : int;
}

let sites : (string, site) Hashtbl.t = Hashtbl.create 16
let armed = ref false

let c_injected = Metrics.counter "chaos.injected_failures"
let c_delays = Metrics.counter "chaos.injected_delays"

let active () = !armed

let disarm () =
  armed := false;
  Hashtbl.reset sites

(* stable site-name hash (djb2, masked positive) so a site's stream depends
   only on (seed, name), never on registration or hit order of other sites *)
let hash_name s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFFFFFF) s;
  !h

let bad spec msg = invalid_arg (Printf.sprintf "Chaos.configure: %s in %S" msg spec)

let parse_clauses spec =
  let seed = ref 0 and clauses = ref [] in
  String.split_on_char ';' spec
  |> List.iter (fun part ->
         let part = String.trim part in
         if part <> "" then
           match String.index_opt part '=' with
           | None -> bad spec ("missing `=' in clause " ^ part)
           | Some eq -> (
               let key = String.sub part 0 eq in
               let value = String.sub part (eq + 1) (String.length part - eq - 1) in
               let fields = String.split_on_char ':' value in
               let floatf s =
                 match float_of_string_opt s with
                 | Some v -> v
                 | None -> bad spec ("bad number " ^ s)
               in
               let intf s =
                 match int_of_string_opt s with Some v -> v | None -> bad spec ("bad count " ^ s)
               in
               match (key, fields) with
               | "seed", [ s ] -> seed := intf s
               | "fail", [ site; p ] -> clauses := (site, Fail (floatf p)) :: !clauses
               | "delay", [ site; p; d ] -> clauses := (site, Delay (floatf p, floatf d)) :: !clauses
               | "crash", [ site; n ] -> clauses := (site, Crash (intf n)) :: !clauses
               | _ -> bad spec ("unknown clause " ^ part)))
  |> ignore;
  (!seed, List.rev !clauses)

let configure spec =
  let seed, clauses = parse_clauses spec in
  Hashtbl.reset sites;
  List.iter
    (fun (name, clause) ->
      match Hashtbl.find_opt sites name with
      | Some s -> Hashtbl.replace sites name { s with clauses = s.clauses @ [ clause ] }
      | None ->
          Hashtbl.add sites name
            { clauses = [ clause ]; rng = Rng.create (seed lxor hash_name name); hit_count = 0 })
    clauses;
  armed := true

let configure_from_env () =
  match Sys.getenv_opt "REVMAX_CHAOS" with
  | None -> ()
  | Some "" -> ()
  | Some spec -> configure spec

let hits name =
  match Hashtbl.find_opt sites name with Some s -> s.hit_count | None -> 0

let point name =
  if !armed then
    match Hashtbl.find_opt sites name with
    | None -> ()
    | Some s ->
        s.hit_count <- s.hit_count + 1;
        List.iter
          (function
            | Crash n ->
                if s.hit_count = n then begin
                  (* simulate power loss: no flushing, no at_exit hooks *)
                  Metrics.Log.warn "chaos: crashing process at %s (hit %d)\n" name n;
                  Unix.kill (Unix.getpid ()) Sys.sigkill
                end
            | Delay (p, d) ->
                if Rng.bernoulli s.rng p then begin
                  Metrics.incr c_delays;
                  Unix.sleepf d
                end
            | Fail p ->
                if Rng.bernoulli s.rng p then begin
                  Metrics.incr c_injected;
                  raise
                    (Sys_error (Printf.sprintf "chaos: injected fault at %s (hit %d)" name s.hit_count))
                end)
          s.clauses
