module Budget = Revmax_prelude.Budget
module Err = Revmax_prelude.Err
module Metrics = Revmax_prelude.Metrics
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Triple = Revmax.Triple
module Greedy = Revmax.Greedy
module Revenue = Revmax.Revenue
module Io = Revmax.Io

type config = {
  data_dir : string;
  snapshot_every : int;
  sync_every : int;
  replan_evals : int option;
  retry : Supervisor.policy;
  seed : int;
}

let default_config ~data_dir =
  {
    data_dir;
    snapshot_every = 64;
    sync_every = 1;
    replan_evals = None;
    retry = Supervisor.default_policy;
    seed = 0;
  }

type t = {
  cfg : config;
  inst : Instance.t;
  mutable strategy_ : Strategy.t;
  adopted : (int * int, unit) Hashtbl.t;
  organic : int array; (* per-item capacity units consumed outside the plan *)
  stale : (int, unit) Hashtbl.t; (* users whose last replan was truncated *)
  mutable now_ : int; (* largest event time seen *)
  mutable seq_ : int64; (* events applied *)
  mutable realized_rec : float; (* revenue from recommended adoptions *)
  mutable realized_org : float; (* revenue from organic adoptions *)
  journal : Journal.t;
  sup : Supervisor.t;
  mutable events_since_snapshot : int;
}

let c_requests = Metrics.counter "serve.requests"
let c_events = Metrics.counter "serve.events"
let c_adopt_rec = Metrics.counter "serve.adoptions_recommended"
let c_adopt_org = Metrics.counter "serve.adoptions_organic"
let c_clicks = Metrics.counter "serve.clicks"
let c_clicks_served = Metrics.counter "serve.clicks_on_served"
let c_replans = Metrics.counter "serve.replans"
let c_replan_trunc = Metrics.counter "serve.replans_truncated"
let c_released = Metrics.counter "serve.released_pairs"
let c_snapshots = Metrics.counter "serve.snapshots"
let c_recovered = Metrics.counter "serve.recovered_events"
let c_refused = Metrics.counter "serve.events_refused"
let c_stale_answers = Metrics.counter "serve.stale_answers"
let c_dropped_conns = Metrics.counter "serve.dropped_connections"
let t_request = Metrics.timer "serve.request_seconds"
let t_replan = Metrics.timer "serve.replan_seconds"
let t_snapshot = Metrics.timer "serve.snapshot_seconds"

let snapshot_path cfg = Filename.concat cfg.data_dir "snapshot.revmax"
let journal_path cfg = Filename.concat cfg.data_dir "journal.wal"

(* ------------------------------------------------------------------ *)
(* State observation                                                   *)
(* ------------------------------------------------------------------ *)

let strategy st = st.strategy_
let seq st = st.seq_
let now st = st.now_
let realized_revenue st = st.realized_rec +. st.realized_org
let organic_consumed st i = st.organic.(i)

let stale_users st =
  Hashtbl.fold (fun u () acc -> u :: acc) st.stale [] |> List.sort compare

let is_degraded st = Hashtbl.length st.stale > 0

(* ------------------------------------------------------------------ *)
(* Planning-state transitions (the deterministic fold)                 *)
(* ------------------------------------------------------------------ *)

let effective_capacity st i = max 0 (Instance.capacity st.inst i - st.organic.(i))

(* remove every planned triple of the (u, i) pair *)
let remove_pair st u i =
  List.iter
    (fun (z : Triple.t) -> if z.u = u && z.i = i then Strategy.remove st.strategy_ z)
    (Strategy.to_list st.strategy_)

(* Replan one user against the committed remainder of the strategy: the
   PR 5 repair path. Selection is restricted to the user's future slots;
   adopted pairs are out, and a new (user, item) pair must fit the item's
   *effective* capacity (instance capacity minus externally consumed
   units). Because exactly one user is replanned per call, checking the
   pair-count against the pre-replan strategy is exact. The work cap is a
   deterministic evaluation budget — wall-clock caps would make live
   execution and WAL replay diverge; a truncated replan leaves a valid
   prefix and flags the user for the next Repair event (degraded mode). *)
let replan_user st ~capped u =
  let budget =
    if capped then Option.map (fun n -> Budget.create ~max_evaluations:n ()) st.cfg.replan_evals
    else None
  in
  let base = st.strategy_ in
  let allowed (z : Triple.t) =
    z.u = u && z.t > st.now_
    && (not (Hashtbl.mem st.adopted (z.u, z.i)))
    && (Strategy.item_has_user base ~i:z.i ~u:z.u
       || Strategy.item_user_count base z.i < effective_capacity st z.i)
  in
  let s', (gstats : Greedy.stats) =
    Metrics.span_t t_replan (fun () -> Greedy.run ?budget ~allowed ~base st.inst)
  in
  st.strategy_ <- s';
  Metrics.incr c_replans;
  if gstats.truncated then begin
    Hashtbl.replace st.stale u ();
    Metrics.incr c_replan_trunc
  end
  else Hashtbl.remove st.stale u

(* removal loss as in Shard_greedy's reconciliation: the chain-revenue
   delta of dropping the (u, i) pair from the user's affected chain *)
let removal_loss st ~u ~i =
  let cls = Instance.class_of st.inst i in
  let chain = Strategy.chain st.strategy_ ~u ~cls in
  let keep = List.filter (fun (z : Triple.t) -> z.i <> i) chain in
  Revenue.chain_revenue st.inst chain -. Revenue.chain_revenue st.inst keep

(* When consumed stock pushes an item's effective capacity below its
   current holder count, release the holders of globally lowest removal
   loss (ties to the lower user id) and replan each — the same
   deterministic reconciliation contract as the sharded planner's. *)
let reconcile_item st i =
  let holders =
    List.sort_uniq compare
      (List.filter_map
         (fun (z : Triple.t) -> if z.i = i then Some z.u else None)
         (Strategy.to_list st.strategy_))
  in
  let excess = List.length holders - effective_capacity st i in
  if excess > 0 then begin
    let ranked = List.sort compare (List.map (fun u -> (removal_loss st ~u ~i, u)) holders) in
    let released =
      List.filteri (fun rank _ -> rank < excess) ranked |> List.map snd |> List.sort compare
    in
    List.iter (fun u -> remove_pair st u i) released;
    Metrics.incr c_released ~by:excess;
    List.iter (fun u -> replan_user st ~capped:true u) released
  end

let apply_state st (ev : Journal.event) =
  Metrics.incr c_events;
  match ev with
  | Click { u; i; t } ->
      st.now_ <- max st.now_ t;
      Metrics.incr c_clicks;
      if Strategy.item_has_user st.strategy_ ~i ~u then Metrics.incr c_clicks_served
  | Adopt { u; i; t } ->
      st.now_ <- max st.now_ t;
      if not (Hashtbl.mem st.adopted (u, i)) then begin
        Hashtbl.replace st.adopted (u, i) ();
        let price = Instance.price st.inst ~i ~time:t in
        if Strategy.item_has_user st.strategy_ ~i ~u then begin
          Metrics.incr c_adopt_rec;
          st.realized_rec <- st.realized_rec +. price
        end
        else begin
          Metrics.incr c_adopt_org;
          st.realized_org <- st.realized_org +. price
        end;
        (* the adopter consumes one capacity unit for the rest of the
           horizon whether or not the plan had reached them; their planned
           recommendations of the item are now worthless *)
        st.organic.(i) <- min (Instance.capacity st.inst i) (st.organic.(i) + 1);
        remove_pair st u i;
        reconcile_item st i;
        replan_user st ~capped:true u
      end
  | Cap { i; delta } ->
      let before = st.organic.(i) in
      st.organic.(i) <- max 0 (min (Instance.capacity st.inst i) (before + delta));
      if st.organic.(i) > before then reconcile_item st i
  | Repair ->
      let users = stale_users st in
      List.iter (fun u -> replan_user st ~capped:false u) users

let validate_event st (ev : Journal.event) =
  let err msg = Error (Err.Unexpected { context = "serve.event"; msg }) in
  let check_uit u i t =
    if u < 0 || u >= Instance.num_users st.inst then err (Printf.sprintf "user %d out of range" u)
    else if i < 0 || i >= Instance.num_items st.inst then
      err (Printf.sprintf "item %d out of range" i)
    else if t < 1 || t > Instance.horizon st.inst then err (Printf.sprintf "time %d out of range" t)
    else Ok ()
  in
  match ev with
  | Journal.Adopt { u; i; t } | Journal.Click { u; i; t } -> check_uit u i t
  | Journal.Cap { i; _ } ->
      if i < 0 || i >= Instance.num_items st.inst then err (Printf.sprintf "item %d out of range" i)
      else Ok ()
  | Journal.Repair -> Ok ()

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let write_snapshot st oc =
  Chaos.point "snapshot.write";
  let fp fmt = Printf.fprintf oc fmt in
  fp "revmax-serve-snapshot 1\n";
  fp "seq %Ld\n" st.seq_;
  fp "now %d\n" st.now_;
  fp "realized %.17g %.17g\n" st.realized_rec st.realized_org;
  List.iter (fun (u, i) -> fp "adopted %d %d\n" u i)
    (Hashtbl.fold (fun k () acc -> k :: acc) st.adopted [] |> List.sort compare);
  Array.iteri (fun i n -> if n > 0 then fp "organic %d %d\n" i n) st.organic;
  List.iter (fun u -> fp "stale %d\n" u) (stale_users st);
  List.iter (fun (z : Triple.t) -> fp "triple %d %d %d\n" z.u z.i z.t)
    (Strategy.to_list st.strategy_);
  fp "end\n"

type snapshot = {
  s_seq : int64;
  s_now : int;
  s_realized_rec : float;
  s_realized_org : float;
  s_adopted : (int * int) list;
  s_organic : (int * int) list;
  s_stale : int list;
  s_triples : Triple.t list;
}

let load_snapshot path =
  if not (Sys.file_exists path) then None
  else
    In_channel.with_open_text path @@ fun ic ->
    let line_no = ref 0 in
    let fail msg = Err.raise_ (Err.Parse_error { file = path; line = !line_no; col = 0; msg }) in
    let next () =
      match In_channel.input_line ic with
      | None -> fail "unexpected end of snapshot"
      | Some l ->
          incr line_no;
          String.split_on_char ' ' (String.trim l) |> List.filter (fun s -> s <> "")
    in
    let int_f s = match int_of_string_opt s with Some v -> v | None -> fail ("bad integer " ^ s) in
    let i64_f s =
      match Int64.of_string_opt s with Some v -> v | None -> fail ("bad sequence " ^ s)
    in
    let float_f s =
      match float_of_string_opt s with Some v -> v | None -> fail ("bad float " ^ s)
    in
    (match next () with
    | [ "revmax-serve-snapshot"; "1" ] -> ()
    | _ -> fail "expected header: revmax-serve-snapshot 1");
    let s_seq = match next () with [ "seq"; v ] -> i64_f v | _ -> fail "expected: seq <n>" in
    let s_now = match next () with [ "now"; v ] -> int_f v | _ -> fail "expected: now <t>" in
    let s_realized_rec, s_realized_org =
      match next () with
      | [ "realized"; a; b ] -> (float_f a, float_f b)
      | _ -> fail "expected: realized <rec> <org>"
    in
    let adopted = ref [] and organic = ref [] and stale = ref [] and triples = ref [] in
    let finished = ref false in
    while not !finished do
      match next () with
      | [ "end" ] -> finished := true
      | [ "adopted"; u; i ] -> adopted := (int_f u, int_f i) :: !adopted
      | [ "organic"; i; n ] -> organic := (int_f i, int_f n) :: !organic
      | [ "stale"; u ] -> stale := int_f u :: !stale
      | [ "triple"; u; i; t ] ->
          triples := Triple.make ~u:(int_f u) ~i:(int_f i) ~t:(int_f t) :: !triples
      | tag :: _ -> fail ("unknown snapshot record " ^ tag)
      | [] -> ()
    done;
    Some
      {
        s_seq;
        s_now;
        s_realized_rec;
        s_realized_org;
        s_adopted = List.rev !adopted;
        s_organic = List.rev !organic;
        s_stale = List.rev !stale;
        s_triples = List.rev !triples;
      }

let save_snapshot st =
  let r =
    Supervisor.run st.sup ~name:"snapshot.write" (fun _budget ->
        Metrics.span_t t_snapshot (fun () ->
            Io.save_atomic (snapshot_path st.cfg) (fun oc -> write_snapshot st oc)))
  in
  match r with
  | Ok () ->
      Metrics.incr c_snapshots;
      st.events_since_snapshot <- 0;
      (* every journaled event is now covered by the snapshot; dropping
         them is safe, and failure to drop them is harmless (replay skips
         records whose seq the snapshot covers) *)
      (match Supervisor.run st.sup ~name:"journal.rotate" (fun _ -> Journal.rotate st.journal) with
      | Ok () -> ()
      | Error e -> Metrics.Log.warn "serve: journal rotation failed (%s); continuing\n" (Err.message e));
      Ok ()
  | Error e ->
      Metrics.Log.warn "serve: snapshot failed (%s); will retry next interval\n" (Err.message e);
      Error e

(* ------------------------------------------------------------------ *)
(* Boot / recovery                                                     *)
(* ------------------------------------------------------------------ *)

let rec mkdirs dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create cfg inst =
  mkdirs cfg.data_dir;
  let snap = load_snapshot (snapshot_path cfg) in
  let journal, records = Journal.openw ~sync_every:cfg.sync_every (journal_path cfg) in
  let sup = Supervisor.create ~policy:cfg.retry ~seed:cfg.seed () in
  let st =
    match snap with
    | Some s ->
        let strategy_ = Strategy.of_list inst s.s_triples in
        let adopted = Hashtbl.create 64 in
        List.iter (fun p -> Hashtbl.replace adopted p ()) s.s_adopted;
        let organic = Array.make (Instance.num_items inst) 0 in
        List.iter (fun (i, n) -> organic.(i) <- n) s.s_organic;
        let stale = Hashtbl.create 8 in
        List.iter (fun u -> Hashtbl.replace stale u ()) s.s_stale;
        {
          cfg;
          inst;
          strategy_;
          adopted;
          organic;
          stale;
          now_ = s.s_now;
          seq_ = s.s_seq;
          realized_rec = s.s_realized_rec;
          realized_org = s.s_realized_org;
          journal;
          sup;
          events_since_snapshot = 0;
        }
    | None ->
        (* first boot (or crash before the boot snapshot landed): the
           initial plan is a deterministic full greedy run, so re-deriving
           it reproduces exactly the state the journal's events expect *)
        let strategy_, _ = Greedy.run inst in
        {
          cfg;
          inst;
          strategy_;
          adopted = Hashtbl.create 64;
          organic = Array.make (Instance.num_items inst) 0;
          stale = Hashtbl.create 8;
          now_ = 0;
          seq_ = 0L;
          realized_rec = 0.0;
          realized_org = 0.0;
          journal;
          sup;
          events_since_snapshot = 0;
        }
  in
  (* replay the journal suffix the snapshot does not cover *)
  List.iter
    (fun (seq, ev) ->
      if Int64.compare seq st.seq_ > 0 then begin
        apply_state st ev;
        st.seq_ <- seq;
        Metrics.incr c_recovered
      end)
    records;
  (* write-through boot snapshot: makes the next recovery cheap and means
     a crash loop cannot re-pay the initial planning cost forever *)
  (match save_snapshot st with
  | Ok () -> ()
  | Error e -> Metrics.Log.warn "serve: boot snapshot failed (%s)\n" (Err.message e));
  st

let close st =
  (match save_snapshot st with
  | Ok () -> ()
  | Error e -> Metrics.Log.warn "serve: final snapshot failed (%s)\n" (Err.message e));
  Journal.close st.journal

(* ------------------------------------------------------------------ *)
(* Live event path                                                     *)
(* ------------------------------------------------------------------ *)

let apply st ev =
  match validate_event st ev with
  | Error e ->
      Metrics.incr c_refused;
      Error e
  | Ok () -> (
      let next = Int64.succ st.seq_ in
      (* write-ahead: the event is durable (per the sync_every contract)
         before any state changes; a refused append leaves state and
         journal both untouched, so the client can safely retry *)
      match Supervisor.run st.sup ~name:"journal.append" (fun _budget ->
                Journal.append st.journal ~seq:next ev)
      with
      | Error e ->
          Metrics.incr c_refused;
          Error e
      | Ok () ->
          apply_state st ev;
          st.seq_ <- next;
          st.events_since_snapshot <- st.events_since_snapshot + 1;
          if st.cfg.snapshot_every > 0 && st.events_since_snapshot >= st.cfg.snapshot_every then
            ignore (save_snapshot st : (unit, Err.t) result);
          Ok next)

let topk_of_strategy inst s ~u ~time ~k =
  let scored =
    List.filter_map
      (fun (z : Triple.t) ->
        if z.u = u && z.t = time then
          Some (z.i, Instance.price inst ~i:z.i ~time *. Revenue.dynamic_probability_in s z)
        else None)
      (Strategy.to_list s)
  in
  let sorted =
    List.sort (fun (i1, s1) (i2, s2) -> if s1 <> s2 then compare s2 s1 else compare i1 i2) scored
  in
  List.filteri (fun rank _ -> rank < k) sorted

let topk st ~u ~time ~k =
  let stale = is_degraded st in
  if stale then Metrics.incr c_stale_answers;
  (topk_of_strategy st.inst st.strategy_ ~u ~time ~k, stale)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

module Wire = struct
  type request =
    | Topk of { u : int; time : int; k : int }
    | Event of Journal.event
    | Stats
    | Snapshot
    | Dump
    | Shutdown

  type response =
    | Items of { stale : bool; items : (int * float) list }
    | Ack of { seq : int64; stale : bool }
    | Stats_r of { seq : int64; size : int; stale : bool; realized : float; now : int }
    | Dump_r of (int * int * int) list
    | Err_r of string

  let max_frame = 1 lsl 24

  let rec read_retry fd b off len =
    try Unix.read fd b off len with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd b off len

  let read_exact fd b off len =
    let off = ref off and remaining = ref len in
    let eof = ref false in
    while !remaining > 0 && not !eof do
      match read_retry fd b !off !remaining with
      | 0 -> eof := true
      | n ->
          off := !off + n;
          remaining := !remaining - n
    done;
    !remaining = 0

  let write_all fd b =
    let off = ref 0 and remaining = ref (Bytes.length b) in
    while !remaining > 0 do
      let n =
        try Unix.write fd b !off !remaining
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      off := !off + n;
      remaining := !remaining - n
    done

  let write_frame fd payload =
    let n = Bytes.length payload in
    let framed = Bytes.create (4 + n) in
    Bytes.set_int32_le framed 0 (Int32.of_int n);
    Bytes.blit payload 0 framed 4 n;
    write_all fd framed

  let read_frame fd =
    let hdr = Bytes.create 4 in
    if not (read_exact fd hdr 0 4) then None
    else
      let n = Int32.to_int (Bytes.get_int32_le hdr 0) in
      if n < 1 || n > max_frame then None
      else
        let payload = Bytes.create n in
        if read_exact fd payload 0 n then Some payload else None

  (* little builder: tag byte + i32/i64/f64 fields *)
  let buf_i32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let buf_i64 b v = Buffer.add_int64_le b v
  let buf_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

  let event_tag = function
    | Journal.Adopt _ -> 1
    | Journal.Click _ -> 2
    | Journal.Cap _ -> 3
    | Journal.Repair -> 4

  let encode_request req =
    let b = Buffer.create 32 in
    (match req with
    | Topk { u; time; k } ->
        Buffer.add_uint8 b 1;
        buf_i32 b u;
        buf_i32 b time;
        buf_i32 b k
    | Event ev -> (
        Buffer.add_uint8 b 2;
        Buffer.add_uint8 b (event_tag ev);
        match ev with
        | Journal.Adopt { u; i; t } | Journal.Click { u; i; t } ->
            buf_i32 b u;
            buf_i32 b i;
            buf_i32 b t
        | Journal.Cap { i; delta } ->
            buf_i32 b i;
            buf_i32 b delta
        | Journal.Repair -> ())
    | Stats -> Buffer.add_uint8 b 3
    | Snapshot -> Buffer.add_uint8 b 4
    | Dump -> Buffer.add_uint8 b 5
    | Shutdown -> Buffer.add_uint8 b 6);
    Buffer.to_bytes b

  let get_i32 p off = Int32.to_int (Bytes.get_int32_le p off)

  let decode_request p =
    let len = Bytes.length p in
    if len < 1 then Error "empty request"
    else
      match Bytes.get_uint8 p 0 with
      | 1 when len = 13 -> Ok (Topk { u = get_i32 p 1; time = get_i32 p 5; k = get_i32 p 9 })
      | 2 when len >= 2 -> (
          match Bytes.get_uint8 p 1 with
          | 1 when len = 14 ->
              Ok (Event (Journal.Adopt { u = get_i32 p 2; i = get_i32 p 6; t = get_i32 p 10 }))
          | 2 when len = 14 ->
              Ok (Event (Journal.Click { u = get_i32 p 2; i = get_i32 p 6; t = get_i32 p 10 }))
          | 3 when len = 10 -> Ok (Event (Journal.Cap { i = get_i32 p 2; delta = get_i32 p 6 }))
          | 4 when len = 2 -> Ok (Event Journal.Repair)
          | tag -> Error (Printf.sprintf "bad event tag %d (len %d)" tag len))
      | 3 when len = 1 -> Ok Stats
      | 4 when len = 1 -> Ok Snapshot
      | 5 when len = 1 -> Ok Dump
      | 6 when len = 1 -> Ok Shutdown
      | tag -> Error (Printf.sprintf "bad request tag %d (len %d)" tag len)

  let encode_response resp =
    let b = Buffer.create 64 in
    (match resp with
    | Items { stale; items } ->
        Buffer.add_uint8 b 101;
        Buffer.add_uint8 b (if stale then 1 else 0);
        buf_i32 b (List.length items);
        List.iter
          (fun (i, score) ->
            buf_i32 b i;
            buf_f64 b score)
          items
    | Ack { seq; stale } ->
        Buffer.add_uint8 b 102;
        buf_i64 b seq;
        Buffer.add_uint8 b (if stale then 1 else 0)
    | Stats_r { seq; size; stale; realized; now } ->
        Buffer.add_uint8 b 103;
        buf_i64 b seq;
        buf_i32 b size;
        Buffer.add_uint8 b (if stale then 1 else 0);
        buf_f64 b realized;
        buf_i32 b now
    | Dump_r triples ->
        Buffer.add_uint8 b 104;
        buf_i32 b (List.length triples);
        List.iter
          (fun (u, i, t) ->
            buf_i32 b u;
            buf_i32 b i;
            buf_i32 b t)
          triples
    | Err_r msg ->
        Buffer.add_uint8 b 105;
        Buffer.add_string b msg);
    Buffer.to_bytes b

  let get_f64 p off = Int64.float_of_bits (Bytes.get_int64_le p off)

  let decode_response p =
    let len = Bytes.length p in
    if len < 1 then Error "empty response"
    else
      match Bytes.get_uint8 p 0 with
      | 101 when len >= 6 ->
          let n = get_i32 p 2 in
          if len <> 6 + (12 * n) then Error "bad items length"
          else
            Ok
              (Items
                 {
                   stale = Bytes.get_uint8 p 1 <> 0;
                   items =
                     List.init n (fun k -> (get_i32 p (6 + (12 * k)), get_f64 p (10 + (12 * k))));
                 })
      | 102 when len = 10 ->
          Ok (Ack { seq = Bytes.get_int64_le p 1; stale = Bytes.get_uint8 p 9 <> 0 })
      | 103 when len = 26 ->
          Ok
            (Stats_r
               {
                 seq = Bytes.get_int64_le p 1;
                 size = get_i32 p 9;
                 stale = Bytes.get_uint8 p 13 <> 0;
                 realized = get_f64 p 14;
                 now = get_i32 p 22;
               })
      | 104 when len >= 5 ->
          let n = get_i32 p 1 in
          if len <> 5 + (12 * n) then Error "bad dump length"
          else
            Ok
              (Dump_r
                 (List.init n (fun k ->
                      (get_i32 p (5 + (12 * k)), get_i32 p (9 + (12 * k)), get_i32 p (13 + (12 * k))))))
      | 105 -> Ok (Err_r (Bytes.sub_string p 1 (len - 1)))
      | tag -> Error (Printf.sprintf "bad response tag %d (len %d)" tag len)
end

(* ------------------------------------------------------------------ *)
(* Serving loops                                                       *)
(* ------------------------------------------------------------------ *)

let handle st (req : Wire.request) : Wire.response * [ `Continue | `Shutdown ] =
  match req with
  | Wire.Topk { u; time; k } ->
      if u < 0 || u >= Instance.num_users st.inst then
        (Wire.Err_r (Printf.sprintf "user %d out of range" u), `Continue)
      else
        let items, stale = topk st ~u ~time ~k in
        (Wire.Items { stale; items }, `Continue)
  | Wire.Event ev -> (
      match apply st ev with
      | Ok seq -> (Wire.Ack { seq; stale = is_degraded st }, `Continue)
      | Error e -> (Wire.Err_r (Err.message e), `Continue))
  | Wire.Stats ->
      ( Wire.Stats_r
          {
            seq = st.seq_;
            size = Strategy.size st.strategy_;
            stale = is_degraded st;
            realized = realized_revenue st;
            now = st.now_;
          },
        `Continue )
  | Wire.Snapshot -> (
      match save_snapshot st with
      | Ok () -> (Wire.Ack { seq = st.seq_; stale = is_degraded st }, `Continue)
      | Error e -> (Wire.Err_r (Err.message e), `Continue))
  | Wire.Dump ->
      ( Wire.Dump_r
          (List.map (fun (z : Triple.t) -> (z.u, z.i, z.t)) (Strategy.to_list st.strategy_)),
        `Continue )
  | Wire.Shutdown -> (Wire.Ack { seq = st.seq_; stale = is_degraded st }, `Shutdown)

(* One connection's request loop. A client disconnect mid-response (EPIPE
   with SIGPIPE ignored, or a reset) is a typed, logged event that drops
   only this connection — the satellite hardening contract. *)
let serve_conn st ~in_fd ~out_fd : [ `Eof | `Shutdown | `Dropped ] =
  let rec loop () =
    match Wire.read_frame in_fd with
    | None -> `Eof
    | Some payload -> (
        Metrics.incr c_requests;
        let resp, next =
          Metrics.span_t t_request (fun () ->
              match Wire.decode_request payload with
              | Error msg -> (Wire.Err_r ("bad request: " ^ msg), `Continue)
              | Ok req -> (
                  try
                    Chaos.point "server.handle";
                    handle st req
                  with
                  | Err.Error e -> (Wire.Err_r (Err.message e), `Continue)
                  | Sys_error msg -> (Wire.Err_r msg, `Continue)))
        in
        match Wire.write_frame out_fd (Wire.encode_response resp) with
        | () -> ( match next with `Shutdown -> `Shutdown | `Continue -> loop ())
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET) as code, _, _) ->
            Metrics.incr c_dropped_conns;
            Metrics.Log.warn "serve: %s\n"
              (Err.message
                 (Err.Io_error
                    {
                      path = "<client>";
                      msg =
                        Printf.sprintf "connection closed mid-response (%s); request dropped"
                          (Unix.error_message code);
                    }));
            `Dropped)
  in
  loop ()

let with_sigpipe_ignored f =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | old -> Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe old) f
  | exception (Invalid_argument _ | Sys_error _) -> f () (* no SIGPIPE on this platform *)

let serve st ~in_fd ~out_fd =
  with_sigpipe_ignored (fun () -> ignore (serve_conn st ~in_fd ~out_fd))

let serve_unix st ~path =
  with_sigpipe_ignored @@ fun () ->
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Metrics.Log.info "serve: listening on %s\n" path;
      let rec accept_loop () =
        let client, _ = Unix.accept sock in
        let outcome =
          Fun.protect
            ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
            (fun () ->
              try serve_conn st ~in_fd:client ~out_fd:client
              with Unix.Unix_error (code, _, _) ->
                Metrics.incr c_dropped_conns;
                Metrics.Log.warn "serve: connection error (%s); client dropped\n"
                  (Unix.error_message code);
                `Dropped)
        in
        match outcome with `Shutdown -> () | `Eof | `Dropped -> accept_loop ()
      in
      accept_loop ())
