module Budget = Revmax_prelude.Budget
module Err = Revmax_prelude.Err
module Rng = Revmax_prelude.Rng
module Metrics = Revmax_prelude.Metrics

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  timeout : float option;
  quarantine_after : int;
  probe_every : int;
}

let default_policy =
  {
    max_attempts = 3;
    base_delay = 0.001;
    multiplier = 2.0;
    max_delay = 0.1;
    jitter = 0.25;
    timeout = None;
    quarantine_after = 5;
    probe_every = 16;
  }

type op_state = {
  rng : Rng.t; (* jitter stream, derived from (seed, name) *)
  mutable consecutive : int; (* consecutive exhausted-retry failures *)
  mutable quarantined : bool;
  mutable quarantined_calls : int; (* calls short-circuited since quarantine *)
}

type t = { policy : policy; seed : int; ops : (string, op_state) Hashtbl.t }

let c_retries = Metrics.counter "supervisor.retries"
let c_failures = Metrics.counter "supervisor.failures"
let c_quarantined = Metrics.counter "supervisor.quarantined_calls"

let create ?(policy = default_policy) ~seed () =
  if policy.max_attempts < 1 then invalid_arg "Supervisor.create: max_attempts < 1";
  { policy; seed; ops = Hashtbl.create 8 }

(* same order-independent per-name stream derivation as Chaos *)
let hash_name s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFFFFFF) s;
  !h

let op t name =
  match Hashtbl.find_opt t.ops name with
  | Some s -> s
  | None ->
      let s =
        {
          rng = Rng.create (t.seed lxor hash_name name);
          consecutive = 0;
          quarantined = false;
          quarantined_calls = 0;
        }
      in
      Hashtbl.add t.ops name s;
      s

let backoff_delay policy ~rng ~attempt =
  let d = Float.min policy.max_delay (policy.base_delay *. (policy.multiplier ** float_of_int (attempt - 1))) in
  let j =
    if policy.jitter > 0.0 then d *. policy.jitter *. ((2.0 *. Rng.unit_float rng) -. 1.0) else 0.0
  in
  Float.max 0.0 (d +. j)

let quarantined t name = (op t name).quarantined

let consecutive_failures t name = (op t name).consecutive

let reset t name =
  let s = op t name in
  s.consecutive <- 0;
  s.quarantined <- false;
  s.quarantined_calls <- 0

let run t ~name f =
  let s = op t name in
  let probe =
    s.quarantined
    &&
    (s.quarantined_calls <- s.quarantined_calls + 1;
     t.policy.probe_every > 0 && s.quarantined_calls mod t.policy.probe_every = 0)
  in
  if s.quarantined && not probe then begin
    Metrics.incr c_quarantined;
    Error
      (Err.Unexpected
         {
           context = name;
           msg =
             Printf.sprintf "quarantined after %d consecutive failures (request dropped)"
               s.consecutive;
         })
  end
  else
    let rec attempt k =
      let budget = Option.map (fun sec -> Budget.create ~wall_seconds:sec ()) t.policy.timeout in
      match Err.protect ~context:name (fun () -> f budget) with
      | Ok v ->
          s.consecutive <- 0;
          s.quarantined <- false;
          s.quarantined_calls <- 0;
          Ok v
      | Error e ->
          if k >= t.policy.max_attempts then begin
            Metrics.incr c_failures;
            s.consecutive <- s.consecutive + 1;
            if t.policy.quarantine_after > 0 && s.consecutive >= t.policy.quarantine_after then begin
              if not s.quarantined then
                Metrics.Log.warn "supervisor: quarantining %s after %d consecutive failures\n" name
                  s.consecutive;
              s.quarantined <- true;
              s.quarantined_calls <- 0
            end;
            Error e
          end
          else begin
            Metrics.incr c_retries;
            Unix.sleepf (backoff_delay t.policy ~rng:s.rng ~attempt:k);
            attempt (k + 1)
          end
    in
    attempt 1
