(** The end-to-end dataset-preparation pipeline of §6.1 and the experiment
    parameterization of §6.1 ("Parameter Settings").

    A {!t} ("prepared dataset") holds everything that is fixed per dataset —
    prices over the horizon, the MF model's predicted ratings, the per-item
    valuation distributions, and the candidate adoption-probability vectors
    for each user's top-N predicted items. What the paper varies {e per
    experiment} — the capacity distribution, the saturation regime, the
    display limit, and whether classes are collapsed to singletons — is
    applied by {!instantiate}, which produces the immutable
    {!Revmax.Instance.t} the algorithms consume. *)

type t = {
  name : string;
  num_users : int;
  num_items : int;
  horizon : int;
  class_of : int array;
  price : float array array;  (** [num_items × horizon] *)
  adoption : (int * int * float array) list;
      (** candidate (user, item, q-vector) rows: the top-N pipeline output *)
  ratings_pred : (int * int * float) list;  (** r̂ per candidate pair *)
  valuation : Revmax_stats.Distribution.t array;  (** per item *)
  source_ratings : Revmax_mf.Ratings.t;  (** the observations MF trained on *)
  mf_model : Revmax_mf.Mf_model.t;
}

(** Capacity-value distributions used across Figures 1, 2 and 7:
    Gaussian and exponential (§6.1 "Parameter Settings"), power law and
    uniform (Figure 1/7 panels). Samples are rounded and clamped to ≥ 1. *)
type capacity_spec =
  | Cap_gaussian of { mean : float; sigma : float }
  | Cap_exponential of { mean : float }
  | Cap_power of { alpha : float; x_min : float }
  | Cap_uniform of { lo : int; hi : int }
  | Cap_fixed of int

(** Saturation regimes: [Beta_uniform] draws each β_i uniformly from [0,1]
    (Figure 1); [Beta_fixed] hard-wires a common value (Figures 2, 3, 5). *)
type beta_spec = Beta_uniform | Beta_fixed of float

val capacity_name : capacity_spec -> string
(** "normal", "exponential", "power", "uniform", "fixed" — the Figure 1
    x-axis labels. *)

val position_curve : ?decay:[ `Geometric of float | `Harmonic ] -> int -> float array
(** A length-[k] slate position-multiplier curve: slot 1 carries 1.0 and
    the curve decays non-increasingly into \[0,1\], satisfying
    [Instance.with_slate]'s requirements. [`Geometric r] (default
    [r = 0.7]) yields [r^(slot-1)]; [`Harmonic] yields [1/slot].
    Deterministic — attaching a curve never perturbs a generator's RNG
    draw order. *)

val instantiate :
  ?display_limit:int ->
  ?singleton_classes:bool ->
  ?slate:float array ->
  ?max_total:int ->
  capacity:capacity_spec ->
  beta:beta_spec ->
  seed:int ->
  t ->
  Revmax.Instance.t
(** Materialize an instance: sample capacities and saturation factors with
    the given seed, optionally collapse every item into its own class
    ("class size = 1"), and attach prices, candidates and predicted ratings
    from the prepared dataset. [display_limit] defaults to 5 (the paper's
    top-k display setting).

    [slate] attaches position multipliers (length [display_limit], e.g.
    {!position_curve}) and [max_total] a global quantity budget — both
    post-hoc via [Instance.with_slate] / [Instance.with_max_total], after
    all random draws, so instances with and without the knobs share every
    sampled capacity and saturation value. *)

val build_candidates :
  mf:Revmax_mf.Mf_model.t ->
  valuation:Revmax_stats.Distribution.t array ->
  price:float array array ->
  top_n:int ->
  r_max:float ->
  (int * int * float array) list * (int * int * float) list
(** The §6 candidate computation shared by the dataset builders: for every
    user, take the [top_n] items by predicted rating and turn each into a
    q-vector via the valuation formula. Returns (adoption rows, predicted
    ratings). *)

val build_candidates_with :
  num_users:int ->
  top_n_of:(int -> (int * float) array) ->
  valuation:Revmax_stats.Distribution.t array ->
  price:float array array ->
  r_max:float ->
  (int * int * float array) list * (int * int * float) list
(** Recommender-agnostic variant (the framework "allows any type of RS",
    §1/§2): [top_n_of u] returns the user's top items with predicted
    ratings from {e any} substrate — {!Revmax_mf.Mf_model.top_n},
    {!Revmax_mf.Knn.top_n}, or anything else. *)

val item_features : t -> float array array
(** Content features per item for the content-based recommender substrate:
    a one-hot competition-class block, the item's log mean price over the
    horizon, and its log rating-popularity. One row per item. *)

val stats_row : t -> string list
(** Name, #users, #items, #ratings, #positive-q triples, #classes and class
    size min/median/max — one Table 1 row. *)
