module Rng = Revmax_prelude.Rng
module Util = Revmax_prelude.Util
module Instance = Revmax.Instance

type config = {
  num_users : int;
  num_items : int;
  num_classes : int;
  items_per_user : int;
  horizon : int;
  capacity : Pipeline.capacity_spec;
  beta : Pipeline.beta_spec;
  display_limit : int;
  slate : float array option;
  max_total : int option;
}

let capacity_for_users n =
  (* the paper uses N(5000, 200–300) for ~21–23K users; keep the ratio *)
  let mean = Float.max 10.0 (0.22 *. float_of_int n) in
  Pipeline.Cap_gaussian { mean; sigma = 0.06 *. mean }

let default_config =
  {
    num_users = 10_000;
    num_items = 20_000;
    num_classes = 500;
    items_per_user = 100;
    horizon = 5;
    capacity = capacity_for_users 10_000;
    beta = Pipeline.Beta_uniform;
    display_limit = 5;
    slate = None;
    max_total = None;
  }

let with_users c n = { c with num_users = n; capacity = capacity_for_users n }

let with_slate c mult = { c with slate = Some mult }

(* quantity-budget tightness knob: the cap as a fraction of the universe's
   display volume |U|·T·k (frac = 1 is the loosest cap that can still
   bind — a strategy can never exceed the display volume anyway) *)
let with_quantity_fraction c frac =
  if frac <= 0.0 || frac > 1.0 then
    invalid_arg "Scalability.with_quantity_fraction: fraction must be in (0, 1]";
  let full = c.num_users * c.horizon * c.display_limit in
  { c with max_total = Some (max 1 (int_of_float (Float.round (frac *. float_of_int full)))) }

(* Item-level draws plus the positioned user-row generator, shared by the
   heap builder and the streaming pack writer. Both consume the RNG in
   exactly the same order, so for one seed they describe the same
   instance — the mmap ≡ heap equivalence gates rely on it. *)
type drawn = {
  class_of : int array;
  price : float array array;
  level : float array;
  capacity : int array;
  saturation : float array;
  adopt_rng : Rng.t;
}

let draw_items c ~seed =
  let rng = Rng.create seed in
  let class_of =
    Catalog.uniform_classes ~num_items:c.num_items ~num_classes:c.num_classes (Rng.split rng)
  in
  let price_rng = Rng.split rng in
  let price =
    Array.init c.num_items (fun _ ->
        let x = Rng.uniform_in price_rng 10.0 500.0 in
        (Price_model.uniform_series ~x ~days:c.horizon price_rng).daily)
  in
  (* per-item adoption level y_i *)
  let level = Array.init c.num_items (fun _ -> Rng.unit_float rng) in
  let cap_rng = Rng.split rng and beta_rng = Rng.split rng in
  let capacity =
    Array.init c.num_items (fun _ ->
        match c.capacity with
        | Pipeline.Cap_gaussian { mean; sigma } ->
            max 1 (int_of_float (Float.round (Rng.gaussian_mv cap_rng ~mean ~sigma)))
        | Pipeline.Cap_exponential { mean } ->
            max 1 (int_of_float (Float.round (Rng.exponential cap_rng ~rate:(1.0 /. mean))))
        | Pipeline.Cap_power { alpha; x_min } ->
            max 1 (int_of_float (Float.round (Rng.pareto cap_rng ~alpha ~x_min)))
        | Pipeline.Cap_uniform { lo; hi } -> lo + Rng.int cap_rng (hi - lo + 1)
        | Pipeline.Cap_fixed n -> n)
  in
  let saturation =
    Array.init c.num_items (fun _ ->
        match c.beta with
        | Pipeline.Beta_uniform -> Rng.unit_float beta_rng
        | Pipeline.Beta_fixed b -> b)
  in
  let adopt_rng = Rng.split rng in
  { class_of; price; level; capacity; saturation; adopt_rng }

(* one user's candidate row, in the sample's draw order (the caller sorts
   if it needs item-ascending rows) *)
let user_row c d =
  let items =
    Rng.sample_without_replacement d.adopt_rng c.num_items (min c.items_per_user c.num_items)
  in
  Array.map
    (fun i ->
      (* T probabilities around the item level, anti-monotone in price:
         the largest probability is matched to the cheapest time step *)
      let probs =
        Array.init c.horizon (fun _ ->
            Util.clamp_prob (Rng.gaussian_mv d.adopt_rng ~mean:d.level.(i) ~sigma:(sqrt 0.1)))
      in
      Array.sort compare probs;
      (* probs ascending *)
      let order = Util.with_index d.price.(i) in
      Array.sort (fun (_, p1) (_, p2) -> compare p2 p1) order;
      (* order: time indices from most expensive to cheapest *)
      let qs = Array.make c.horizon 0.0 in
      Array.iteri (fun pos (tidx, _) -> qs.(tidx) <- probs.(pos)) order;
      (i, qs))
    items

let generate c ~seed =
  let d = draw_items c ~seed in
  let adoption = ref [] in
  for u = 0 to c.num_users - 1 do
    Array.iter (fun (i, qs) -> adoption := (u, i, qs) :: !adoption) (user_row c d)
  done;
  let inst =
    Instance.create ~num_users:c.num_users ~num_items:c.num_items ~horizon:c.horizon
      ~display_limit:c.display_limit ~class_of:d.class_of ~capacity:d.capacity
      ~saturation:d.saturation ~price:d.price ~adoption:!adoption ()
  in
  (* constraint variants attach after every random draw, and the pack
     writer carries the same knobs in its header, so the mmap ≡ heap
     equivalence is knob-invariant *)
  let inst = match c.slate with None -> inst | Some m -> Instance.with_slate inst m in
  match c.max_total with None -> inst | Some cap -> Instance.with_max_total inst cap

let generate_pack c ~seed ~path =
  let d = draw_items c ~seed in
  let w =
    Instance.Pack.create_writer ~path ~num_users:c.num_users ~num_items:c.num_items
      ~horizon:c.horizon ~display_limit:c.display_limit ~class_of:d.class_of ~capacity:d.capacity
      ~saturation:d.saturation ~price:d.price ?slot_mult:c.slate ?max_total:c.max_total ()
  in
  for u = 0 to c.num_users - 1 do
    let row = user_row c d in
    (* the pack stores rows item-ascending (CSR order); the heap builder
       sorts the same rows the same way inside Instance.create *)
    Array.sort (fun (a, _) (b, _) -> compare (a : int) b) row;
    Instance.Pack.add_user w ~u row
  done;
  Instance.Pack.finish w

let table1_row c ~seed =
  let inst = generate c ~seed in
  let sizes = Array.init (Instance.num_classes inst) (Instance.class_size inst) in
  let sorted = Array.copy sizes in
  Array.sort compare sorted;
  let n = Array.length sorted in
  [
    "Synthetic";
    string_of_int c.num_users;
    string_of_int c.num_items;
    "n/a";
    string_of_int (Instance.num_candidate_triples inst);
    string_of_int n;
    string_of_int sorted.(n - 1);
    string_of_int sorted.(0);
    string_of_int sorted.(n / 2);
  ]
