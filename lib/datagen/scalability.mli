(** The §6 synthetic scalability datasets, generated exactly as the paper
    specifies (no MF pipeline — the ground truth is drawn directly):

    - |I| = 20K items; for each item a value [x_i ~ U\[10, 500\]] and prices
      [p(i,t) ~ U\[x_i, 2·x_i\]];
    - T = 5; each user has 100 items with non-zero adoption probability;
    - per item a level [y_i ~ U\[0,1\]]; each user–item pair draws its T
      probabilities from N(y_i, 0.1) (clamped into \[0,1\]) and the values
      are matched to the prices so that anti-monotonicity holds (largest
      probability at the cheapest time step);
    - 500 item classes.

    The input size is [100·T·|U|] candidate triples; the paper sweeps
    |U| ∈ {100K … 500K} (50M–250M triples) and we default to a 10×-reduced
    sweep with the full one behind a flag. *)

type config = {
  num_users : int;
  num_items : int;
  num_classes : int;
  items_per_user : int;
  horizon : int;
  capacity : Pipeline.capacity_spec;
  beta : Pipeline.beta_spec;
  display_limit : int;
  slate : float array option;
      (** position multipliers (length [display_limit]) attached to the
          generated instance; [None] (the default) generates a plain one *)
  max_total : int option;  (** global quantity budget; [None] = unbounded *)
}

val default_config : config
(** 10K users, 20K items, 500 classes, 100 items/user, T = 5, Gaussian
    capacities scaled to the user count, β ~ U\[0,1\], k = 5, no slate,
    no quantity budget. *)

val with_users : config -> int -> config
(** Same configuration at a different user count (capacity mean rescales
    proportionally). *)

val with_slate : config -> float array -> config
(** Attach slate position multipliers (e.g. {!Pipeline.position_curve}
    [config.display_limit]). Applied after all random draws, so the slate
    instance shares every sampled value with the plain one. *)

val with_quantity_fraction : config -> float -> config
(** Set the global quantity budget to the given fraction of the display
    volume [num_users · horizon · display_limit] (clamped to ≥ 1; the
    fraction must lie in (0, 1]). Like {!with_slate}, draw-order
    invariant. *)

val generate : config -> seed:int -> Revmax.Instance.t
(** Build the instance directly (no ratings/MF stage). Deterministic in
    [seed]. *)

val generate_pack : config -> seed:int -> path:string -> unit
(** Stream the same instance {!generate} would build straight into a pack
    file ({!Revmax.Instance.Pack}), one user row at a time — O(items +
    one row) live memory, so instances far beyond RAM can be produced.
    For equal [seed] and [config],
    [Revmax.Instance.of_mmap path] observes exactly the instance
    [generate] returns (same RNG consumption order; the equivalence is
    gated by the bench-scale cell and the [@scale] suite). *)

val table1_row : config -> seed:int -> string list
(** Dataset-statistics row for Table 1 without materializing algorithms. *)
