module Rng = Revmax_prelude.Rng
module Distribution = Revmax_stats.Distribution
module Mf_model = Revmax_mf.Mf_model
module Ratings = Revmax_mf.Ratings
module Instance = Revmax.Instance

type t = {
  name : string;
  num_users : int;
  num_items : int;
  horizon : int;
  class_of : int array;
  price : float array array;
  adoption : (int * int * float array) list;
  ratings_pred : (int * int * float) list;
  valuation : Distribution.t array;
  source_ratings : Ratings.t;
  mf_model : Mf_model.t;
}

type capacity_spec =
  | Cap_gaussian of { mean : float; sigma : float }
  | Cap_exponential of { mean : float }
  | Cap_power of { alpha : float; x_min : float }
  | Cap_uniform of { lo : int; hi : int }
  | Cap_fixed of int

type beta_spec = Beta_uniform | Beta_fixed of float

let capacity_name = function
  | Cap_gaussian _ -> "normal"
  | Cap_exponential _ -> "exponential"
  | Cap_power _ -> "power"
  | Cap_uniform _ -> "uniform"
  | Cap_fixed _ -> "fixed"

let sample_capacity spec rng =
  let v =
    match spec with
    | Cap_gaussian { mean; sigma } -> Rng.gaussian_mv rng ~mean ~sigma
    | Cap_exponential { mean } -> Rng.exponential rng ~rate:(1.0 /. mean)
    | Cap_power { alpha; x_min } -> Rng.pareto rng ~alpha ~x_min
    | Cap_uniform { lo; hi } -> Rng.uniform_in rng (float_of_int lo) (float_of_int (hi + 1))
    | Cap_fixed n -> float_of_int n
  in
  max 1 (int_of_float (Float.round v))

let sample_beta spec rng =
  match spec with
  | Beta_uniform -> Rng.unit_float rng
  | Beta_fixed b ->
      if b < 0.0 || b > 1.0 then invalid_arg "Pipeline: saturation must be in [0,1]";
      b

(* Position-multiplier curves for slate instances: slot 1 always carries
   multiplier 1.0 and the curve is non-increasing into [0,1] — the two
   shapes standard position-bias models use. Deterministic (no RNG), so
   attaching a curve never perturbs a generator's draw order. *)
let position_curve ?(decay = `Geometric 0.7) k =
  if k < 1 then invalid_arg "Pipeline.position_curve: need at least one slot";
  match decay with
  | `Geometric r ->
      if r <= 0.0 || r > 1.0 then
        invalid_arg "Pipeline.position_curve: geometric ratio must be in (0, 1]";
      Array.init k (fun j -> r ** float_of_int j)
  | `Harmonic -> Array.init k (fun j -> 1.0 /. float_of_int (j + 1))

let instantiate ?(display_limit = 5) ?(singleton_classes = false) ?slate ?max_total ~capacity
    ~beta ~seed t =
  let rng = Rng.create seed in
  let class_of =
    if singleton_classes then Catalog.singleton_classes ~num_items:t.num_items
    else Array.copy t.class_of
  in
  let cap = Array.init t.num_items (fun _ -> sample_capacity capacity rng) in
  let sat = Array.init t.num_items (fun _ -> sample_beta beta rng) in
  let inst =
    Instance.create ~num_users:t.num_users ~num_items:t.num_items ~horizon:t.horizon
      ~display_limit ~class_of ~capacity:cap ~saturation:sat ~price:t.price
      ~ratings:t.ratings_pred ~adoption:t.adoption ()
  in
  (* constraint variants attach post-hoc: the RNG consumption above is
     identical whether or not a knob is set *)
  let inst = match slate with None -> inst | Some m -> Instance.with_slate inst m in
  match max_total with None -> inst | Some cap -> Instance.with_max_total inst cap

let build_candidates_with ~num_users ~top_n_of ~valuation ~price ~r_max =
  let adoption = ref [] and preds = ref [] in
  for u = 0 to num_users - 1 do
    Array.iter
      (fun (i, rating) ->
        let qs =
          Valuation.q_vector ~valuation:valuation.(i) ~rating ~r_max ~prices:price.(i)
        in
        adoption := (u, i, qs) :: !adoption;
        preds := (u, i, rating) :: !preds)
      (top_n_of u)
  done;
  (!adoption, !preds)

let build_candidates ~mf ~valuation ~price ~top_n ~r_max =
  build_candidates_with ~num_users:(Mf_model.num_users mf)
    ~top_n_of:(fun u -> Mf_model.top_n mf ~user:u ~n:top_n ())
    ~valuation ~price ~r_max

let item_features t =
  let num_classes = Array.fold_left (fun m c -> max m (c + 1)) 0 t.class_of in
  let popularity = Array.make t.num_items 0 in
  Array.iter
    (fun (o : Ratings.observation) -> popularity.(o.item) <- popularity.(o.item) + 1)
    (Ratings.observations t.source_ratings);
  Array.init t.num_items (fun i ->
      let row = Array.make (num_classes + 2) 0.0 in
      row.(t.class_of.(i)) <- 1.0;
      let mean_price = Revmax_prelude.Util.mean t.price.(i) in
      row.(num_classes) <- log (1.0 +. Float.max 0.0 mean_price);
      row.(num_classes + 1) <- log (1.0 +. float_of_int popularity.(i));
      row)

let stats_row t =
  let positive =
    List.fold_left
      (fun acc (_, _, qs) -> acc + Array.fold_left (fun n q -> if q > 0.0 then n + 1 else n) 0 qs)
      0 t.adoption
  in
  let sizes = Catalog.class_sizes t.class_of in
  let sorted = Array.copy sizes in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let median = if n = 0 then 0 else sorted.(n / 2) in
  [
    t.name;
    string_of_int t.num_users;
    string_of_int t.num_items;
    string_of_int (Ratings.num_ratings t.source_ratings);
    string_of_int positive;
    string_of_int n;
    (if n = 0 then "0" else string_of_int sorted.(n - 1));
    (if n = 0 then "0" else string_of_int sorted.(0));
    string_of_int median;
  ]
