module Heap = Revmax_pqueue.Binary_heap
module Metrics = Revmax_prelude.Metrics

let c_solves = Metrics.counter "mcmf.solves"

let c_augmentations = Metrics.counter "mcmf.augmentations"

let c_bf_seeds = Metrics.counter "mcmf.bf_seeds"

type t = {
  n : int;
  (* forward and reverse arcs interleaved: arc i and i lxor 1 are partners *)
  mutable dst : int array;
  mutable cap : int array;
  mutable cost : float array;
  mutable arcs : int; (* number of arc slots in use *)
  adj : int list array; (* arc indices leaving each node, reversed order *)
  mutable ever_negative : bool; (* any edge ever added with cost < 0 *)
}

type edge = int

type result = { flow : int; cost : float }

let create n =
  {
    n;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    cost = Array.make 16 0.0;
    arcs = 0;
    adj = Array.make n [];
    ever_negative = false;
  }

let ensure_arc_capacity t =
  let cap = Array.length t.dst in
  if t.arcs + 2 > cap then begin
    let grow a zero =
      let b = Array.make (2 * cap) zero in
      Array.blit a 0 b 0 cap;
      b
    in
    t.dst <- grow t.dst 0;
    t.cap <- grow t.cap 0;
    t.cost <- grow t.cost 0.0
  end

let add_edge t ~src ~dst ~cap ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then invalid_arg "Mcmf.add_edge: node out of range";
  if cap < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
  ensure_arc_capacity t;
  let e = t.arcs in
  t.dst.(e) <- dst;
  t.cap.(e) <- cap;
  t.cost.(e) <- cost;
  t.dst.(e + 1) <- src;
  t.cap.(e + 1) <- 0;
  t.cost.(e + 1) <- -.cost;
  t.adj.(src) <- e :: t.adj.(src);
  t.adj.(dst) <- (e + 1) :: t.adj.(dst);
  t.arcs <- t.arcs + 2;
  if cost < 0.0 then t.ever_negative <- true;
  e

(* Bellman–Ford from [source] over residual arcs, to seed the potentials when
   the network carries negative costs. Nodes unreachable from the source keep
   an infinite potential and are skipped by Dijkstra afterwards. *)
let bellman_ford t source =
  let dist = Array.make t.n Float.infinity in
  dist.(source) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= t.n do
    changed := false;
    incr rounds;
    for e = 0 to t.arcs - 1 do
      if t.cap.(e) > 0 then begin
        let u = t.dst.(e lxor 1) and v = t.dst.(e) in
        if dist.(u) +. t.cost.(e) < dist.(v) -. 1e-12 then begin
          dist.(v) <- dist.(u) +. t.cost.(e);
          changed := true
        end
      end
    done
  done;
  if !changed then failwith "Mcmf: negative-cost cycle detected";
  dist

let solve ?(stop_when_unprofitable = false) t ~source ~sink =
  if source = sink then invalid_arg "Mcmf.solve: source = sink";
  Metrics.incr c_solves;
  (* Dijkstra-with-potentials is only sound when every residual arc has a
     non-negative reduced cost, which zero initial potentials guarantee only
     for an all-non-negative residual network. Scan *every* residual arc —
     reverse arcs included, since a re-solve after augmentation sees
     negative-cost reverse arcs of positive forward edges — and fall back to
     Bellman–Ford seeding whenever any negative residual cost exists. The
     [ever_negative] flag (set in [add_edge]) short-circuits the scan. *)
  let has_negative = ref t.ever_negative in
  let e = ref 0 in
  while (not !has_negative) && !e < t.arcs do
    if t.cap.(!e) > 0 && t.cost.(!e) < 0.0 then has_negative := true;
    incr e
  done;
  let pot =
    if !has_negative then begin
      Metrics.incr c_bf_seeds;
      bellman_ford t source
    end
    else Array.make t.n 0.0
  in
  let total_flow = ref 0 and total_cost = ref 0.0 in
  let dist = Array.make t.n Float.infinity in
  let pred = Array.make t.n (-1) in
  let continue_loop = ref true in
  while !continue_loop do
    (* Dijkstra on reduced costs *)
    Array.fill dist 0 t.n Float.infinity;
    Array.fill pred 0 t.n (-1);
    dist.(source) <- 0.0;
    let heap = Heap.create () in
    (* max-heap: negate distances *)
    ignore (Heap.insert heap ~key:0.0 source);
    let visited = Array.make t.n false in
    let rec run () =
      match Heap.delete_max heap with
      | None -> ()
      | Some (u, neg_d) ->
          let d = -.neg_d in
          if (not visited.(u)) && d <= dist.(u) +. 1e-12 then begin
            visited.(u) <- true;
            List.iter
              (fun e ->
                if t.cap.(e) > 0 then begin
                  let v = t.dst.(e) in
                  if Float.is_finite pot.(v) && Float.is_finite pot.(u) then begin
                    let rc = t.cost.(e) +. pot.(u) -. pot.(v) in
                    let rc = if rc < 0.0 then 0.0 (* numerical guard *) else rc in
                    if dist.(u) +. rc < dist.(v) -. 1e-12 then begin
                      dist.(v) <- dist.(u) +. rc;
                      pred.(v) <- e;
                      ignore (Heap.insert heap ~key:(-.dist.(v)) v)
                    end
                  end
                end)
              t.adj.(u)
          end;
          run ()
    in
    run ();
    if not (Float.is_finite dist.(sink)) then continue_loop := false
    else begin
      let true_dist = dist.(sink) +. pot.(sink) -. pot.(source) in
      if stop_when_unprofitable && true_dist >= -1e-12 then continue_loop := false
      else begin
        (* bottleneck along the path *)
        let bottleneck = ref max_int in
        let v = ref sink in
        while !v <> source do
          let e = pred.(!v) in
          if t.cap.(e) < !bottleneck then bottleneck := t.cap.(e);
          v := t.dst.(e lxor 1)
        done;
        (* augment *)
        let v = ref sink in
        while !v <> source do
          let e = pred.(!v) in
          t.cap.(e) <- t.cap.(e) - !bottleneck;
          t.cap.(e lxor 1) <- t.cap.(e lxor 1) + !bottleneck;
          v := t.dst.(e lxor 1)
        done;
        Metrics.incr c_augmentations;
        total_flow := !total_flow + !bottleneck;
        total_cost := !total_cost +. (float_of_int !bottleneck *. true_dist);
        (* potential update; unreached nodes keep their old potential *)
        for i = 0 to t.n - 1 do
          if Float.is_finite dist.(i) && Float.is_finite pot.(i) then pot.(i) <- pot.(i) +. dist.(i)
        done
      end
    end
  done;
  { flow = !total_flow; cost = !total_cost }

let flow_on t e =
  (* flow shipped on forward arc e = residual capacity of its partner *)
  t.cap.(e lxor 1)
