(** User-sharded global greedy with capacity reconciliation — the planner's
    scale-out lever.

    Problem 1 couples users only through the item capacities: the display
    limit [k] binds per (user, time), so a partition of the users splits
    the ground set into independent sub-problems except for [q_i].
    [solve] exploits that structure in three deterministic phases:

    + {b Shard-local greedy.} {!Instance.shard} cuts the users into
      contiguous zero-copy views, each carrying a capacity budget from the
      chosen {!Instance.split_policy}; {!Greedy.run} plans every view
      independently on the {!Revmax_prelude.Pool} (results are identical
      for every [jobs] value).
    + {b Merge.} Shard strategies are united in shard order. Shards
      partition the users, so display slots cannot overflow; only items
      may end up over-subscribed (and only under [`Water_filling], whose
      optimistic budgets overlap).
    + {b Capacity reconciliation.} While any item exceeds its global
      [q_i], the over-subscribed items release the (user, item) pairs of
      globally lowest removal loss (the chain-revenue delta of dropping
      the pair; ties to the lower user id) until each item is back at
      [q_i]; the released users then {e re-plan locally} — one
      {!Greedy.run} pass restricted to their triples with the merged
      strategy as base, whose [can_add] checks the true global
      constraints. A re-plan can never over-subscribe, so the fixed point
      is reached after at most one release round.
    + {b Quantity reconciliation.} On instances with a global
      [Instance.max_total] budget, [`Water_filling] hands every shard an
      optimistic [min cap shard-universe] quota, so the merged size may
      exceed the cap ([`Proportional] shares sum to the cap exactly and
      never trigger this phase). After capacities settle, the triple of
      globally lowest {!triple_removal_loss} (ties to the smaller triple)
      is released, one at a time with the ranking recomputed per step,
      until the strategy is back under the cap. Removals cannot violate
      any other constraint, so the result stays valid.

    On slate instances every phase is slot-aware: the merge preserves each
    shard's slot assignments (shards own whole (user, time) displays, so
    slots cannot collide), and both removal-loss ranking keys score chains
    at their members' slot-scaled effective probabilities.

    Proof obligations (enforced by the [@shard] qcheck suite and the
    golden fixtures):
    - the result is always a valid strategy w.r.t. {e all} of Problem 1's
      constraints — every [q_i] and every (user, time) display slot;
    - with [shards = 1] the selection is {e bit-identical} to a plain
      {!Greedy.run} (the single view is indistinguishable from the
      instance, the merge is the identity, and reconciliation never
      fires);
    - for a fixed (instance, policy, shards) the output is deterministic,
      independent of [jobs]. *)

type stats = {
  shards : int;  (** number of user shards planned *)
  policy : Instance.split_policy;
  per_shard_selected : int array;  (** triples selected by each shard's greedy *)
  marginal_evaluations : int;  (** summed over shards and re-planning *)
  pops : int;  (** heap roots examined, summed *)
  selected : int;  (** final strategy size after reconciliation *)
  reconciliation_rounds : int;  (** release/re-plan rounds until the fixed point *)
  released_pairs : int;  (** (user, item) pairs released by over-subscribed items *)
  replanned : int;  (** triples re-added by the losers' local re-planning *)
  truncated : bool;  (** some phase was cut short by an expired budget *)
}

val solve :
  ?policy:Instance.split_policy ->
  ?shards:int ->
  ?jobs:int ->
  ?with_saturation:bool ->
  ?lazy_policy:[ `Celf | `Refresh_pair ] ->
  ?budget:Revmax_prelude.Budget.t ->
  Instance.t ->
  Strategy.t * stats
(** [solve inst] plans with [shards] user shards (default
    {!default_shards}) under [policy] (default [`Water_filling]) on up to
    [jobs] domains (default {!Revmax_prelude.Pool.default_jobs}).

    [lazy_policy] (default [`Celf]) is forwarded to every {!Greedy.run}
    pass — the shard-local plans and the re-planning phase alike. The two
    policies select identically (a [@shard] qcheck obligation), so it only
    steers the work profile.

    [budget] is {!Revmax_prelude.Budget.split} across the shards
    (deterministic shares, shared deadline) and re-assembled afterwards;
    the re-planning phase charges the same budget. Truncation still
    yields a valid strategy — every shard returns a valid greedy prefix,
    the merge and reconciliation preserve validity — with
    [truncated = true] in the statistics. *)

val removal_loss : with_saturation:bool -> Instance.t -> Strategy.t -> u:int -> i:int -> float
(** The reconciliation ranking key: the revenue lost when user [u] gives
    up item [i] entirely — the chain-revenue delta of the one affected
    (user, class) chain. Chains are canonically ordered and per-user, so
    the value is bit-identical whether computed against the merged global
    strategy or against the user's shard-local strategy; {!Hier_greedy}
    relies on this to rank candidates child-side. *)

val triple_removal_loss : with_saturation:bool -> Instance.t -> Strategy.t -> Triple.t -> float
(** The quantity-trim ranking key: the revenue lost when one triple leaves
    the strategy — the chain-revenue delta of its own (user, class) chain.
    Shares {!removal_loss}'s locality: bit-identical whether computed
    against the merged global strategy or the owner's shard-local one. *)

val default_shards : unit -> int
(** The process-wide default shard count, used whenever [?shards] is
    omitted. Initialised from the [REVMAX_SHARDS] environment variable (a
    positive integer; unset, empty or unparsable means [1]); overridable
    with {!set_default_shards} (the CLI's [--shards] flag). *)

val set_default_shards : int -> unit
(** Override the default shard count. Values below 1 are clamped to 1. *)
