(** Plain-text serialization of instances and strategies.

    A downstream user needs to move problem instances between the generator,
    the planner and external tooling; this module defines a line-oriented,
    human-inspectable format (one logical record per line, `#` comments,
    whitespace-separated fields) with full round-tripping.

    Format (version header `revmax-instance 1`):
    {v
    revmax-instance 1
    dims <num_users> <num_items> <horizon> <display_limit>
    item <i> <class> <capacity> <saturation> <p(i,1)> ... <p(i,T)>   (per item)
    rating <u> <i> <r>                                               (optional)
    q <u> <i> <q(u,i,1)> ... <q(u,i,T)>                              (per candidate)
    end
    v}

    Strategies (`revmax-strategy 1`) are lists of `triple <u> <i> <t>` lines.
    Floats are printed with ["%.17g"] so round-trips are exact.

    Malformed input is reported as a structured
    {!Revmax_prelude.Err.Parse_error} carrying the file path, 1-based line
    number, and — for token-level problems such as a bad integer or float —
    the 1-based column of the offending token. The [_result] variants return
    it; the plain variants raise [Failure] with the rendered message. *)

val write_instance : out_channel -> Instance.t -> unit

val read_instance : ?file:string -> in_channel -> Instance.t
(** Raises [Failure] with a [file:line:col]-prefixed message on malformed
    input ([file] defaults to ["<channel>"]). *)

val read_instance_result : ?file:string -> in_channel -> (Instance.t, Revmax_prelude.Err.t) result
(** Like {!read_instance} but never raises: malformed input yields
    [Error (Parse_error _)]; a structurally well-formed file describing an
    invalid instance yields [Error (Invalid_instance _)]. *)

val save_instance : string -> Instance.t -> unit
(** Write to a file path. *)

val load_instance : string -> Instance.t

val load_instance_result : string -> (Instance.t, Revmax_prelude.Err.t) result
(** Like {!load_instance} but never raises: an unreadable path yields
    [Error (Io_error _)], malformed content [Error (Parse_error _)]. *)

val write_strategy : out_channel -> Strategy.t -> unit

val read_strategy : ?file:string -> Instance.t -> in_channel -> Strategy.t
(** Triples are validated against the instance's dimensions. *)

val read_strategy_result :
  ?file:string -> Instance.t -> in_channel -> (Strategy.t, Revmax_prelude.Err.t) result

val save_strategy : string -> Strategy.t -> unit
val load_strategy : Instance.t -> string -> Strategy.t
val load_strategy_result : Instance.t -> string -> (Strategy.t, Revmax_prelude.Err.t) result

(** {1 Atomic writes} *)

val save_atomic : string -> (out_channel -> unit) -> unit
(** [save_atomic path f] writes [f]'s output to a fresh temporary file in
    [path]'s directory, [fsync]s it, and renames it over [path], so readers
    never observe a partially-written file and a crash mid-write leaves any
    previous content intact. The data fsync happens {e before} the rename —
    without it a journaling filesystem may commit the rename ahead of the
    data blocks and power loss would reveal the new name with empty or
    truncated contents, the torn-checkpoint state this function exists to
    rule out. The parent directory is fsynced best-effort after the rename
    so the new name itself is durable. The temporary file is removed if [f]
    raises. *)
