(* Array-backed (user, class) chain with cached per-triple aggregates.

   The chain keeps its triples in a sorted dynamic array (time ascending,
   ties by item id — Triple.chain_before) together with, per triple z_j:

     q.(j)    primitive adoption probability q(u, i_j, t_j)
     price.(j) p(i_j, t_j)
     beta.(j) saturation factor of i_j
     mem.(j)  memory  M_j = Σ_{t_l < t_j} 1/(t_j − t_l)          (Equation 1)
     comp.(j) competition Π_{t_l < t_j ∨ (t_l = t_j ∧ l ≠ j)} (1 − q_l)
     prob.(j) dynamic adoption probability q_j · β_j^{M_j} · comp_j

   plus the two cached chain revenues Σ p_j·prob_j (with saturation) and
   Σ p_j·q_j·comp_j (the β = 1 variant used by GlobalNo planning).

   [insert] splices a triple in O(L): the new triple's memory and
   competition are accumulated in one pass, and each later (or same-time)
   triple's aggregates absorb the newcomer's 1/(Δt) memory term and (1 − q)
   competition factor in O(1). [remove] rebuilds the aggregates from
   scratch — removal only happens on the cold paths (brute force,
   hardness, local search) and a division-free rebuild stays exact even
   when some q = 1 makes the competition product unrecoverable by
   division. [marginal] computes an insertion's revenue delta in O(L)
   without mutating anything — the hot path of every greedy. *)

module Metrics = Revmax_prelude.Metrics

let c_inserts = Metrics.counter "chain.inserts"

let c_removes = Metrics.counter "chain.removes"

let c_recomputes = Metrics.counter "chain.recomputes"

let c_marginals = Metrics.counter "chain.marginals"

type t = {
  inst : Instance.t;
  mutable len : int;
  mutable zs : Triple.t array;
  mutable q : float array;
  mutable price : float array;
  mutable beta : float array;
  mutable mem : float array;
  mutable comp : float array;
  mutable prob : float array;
  mutable rev_sat : float;
  mutable rev_nosat : float;
}

let dummy = Triple.make ~u:0 ~i:0 ~t:0

let create inst =
  {
    inst;
    len = 0;
    zs = [||];
    q = [||];
    price = [||];
    beta = [||];
    mem = [||];
    comp = [||];
    prob = [||];
    rev_sat = 0.0;
    rev_nosat = 0.0;
  }

let length c = c.len

let to_list c = Array.to_list (Array.sub c.zs 0 c.len)

let iter c f =
  for j = 0 to c.len - 1 do
    f c.zs.(j)
  done

(* index of the (time, item) slot, or -1 *)
let find c (z : Triple.t) =
  let lo = ref 0 and hi = ref (c.len - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = c.zs.(mid) in
    let cmp = if x.t <> z.t then compare x.t z.t else compare x.i z.i in
    if cmp = 0 then begin
      res := mid;
      lo := !hi + 1
    end
    else if cmp < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem c z =
  let j = find c z in
  j >= 0 && Triple.equal c.zs.(j) z

let saturation_factor beta m = if m = 0.0 then 1.0 else beta ** m

let prob_at c j =
  if c.q.(j) <= 0.0 then 0.0
  else c.q.(j) *. saturation_factor c.beta.(j) c.mem.(j) *. c.comp.(j)

let refresh_revenues c =
  let rs = ref 0.0 and rn = ref 0.0 in
  for j = 0 to c.len - 1 do
    rs := !rs +. (c.price.(j) *. c.prob.(j));
    rn := !rn +. (c.price.(j) *. if c.q.(j) <= 0.0 then 0.0 else c.q.(j) *. c.comp.(j))
  done;
  c.rev_sat <- !rs;
  c.rev_nosat <- !rn

(* full rebuild of every cached aggregate, iterating in the same ascending
   order as the naive evaluator so the floating-point sums and products are
   reproduced exactly; O(L²) worst case but only used by [remove] *)
let recompute c =
  Metrics.incr c_recomputes;
  let j = ref 0 in
  let prefix = ref 1.0 in
  while !j < c.len do
    (* the group [!j, k) shares one time step *)
    let k = ref !j in
    while !k < c.len && c.zs.(!k).t = c.zs.(!j).t do incr k done;
    for a = !j to !k - 1 do
      let m = ref 0.0 in
      for l = 0 to !j - 1 do
        m := !m +. (1.0 /. float_of_int (c.zs.(a).t - c.zs.(l).t))
      done;
      c.mem.(a) <- !m;
      let g = ref !prefix in
      for b = !j to !k - 1 do
        if b <> a then g := !g *. (1.0 -. c.q.(b))
      done;
      c.comp.(a) <- !g;
      c.prob.(a) <- prob_at c a
    done;
    for b = !j to !k - 1 do
      prefix := !prefix *. (1.0 -. c.q.(b))
    done;
    j := !k
  done;
  refresh_revenues c

let ensure_capacity c n =
  if n > Array.length c.zs then begin
    let cap = max 4 (max n (2 * Array.length c.zs)) in
    let grow_t a = Array.init cap (fun j -> if j < c.len then a.(j) else dummy) in
    let grow_f a = Array.init cap (fun j -> if j < c.len then a.(j) else 0.0) in
    c.zs <- grow_t c.zs;
    c.q <- grow_f c.q;
    c.price <- grow_f c.price;
    c.beta <- grow_f c.beta;
    c.mem <- grow_f c.mem;
    c.comp <- grow_f c.comp;
    c.prob <- grow_f c.prob
  end

let insert c (z : Triple.t) =
  Metrics.incr c_inserts;
  ensure_capacity c (c.len + 1);
  (let j0 = find c z in
   if j0 >= 0 && Triple.equal c.zs.(j0) z then invalid_arg "Chain.insert: duplicate triple");
  let qz = Instance.q c.inst ~u:z.u ~i:z.i ~time:z.t in
  let one_minus_qz = 1.0 -. qz in
  (* splice z's effects into the existing aggregates and accumulate z's own
     memory / competition in the same O(L) pass *)
  let mz = ref 0.0 and compz = ref 1.0 in
  for j = 0 to c.len - 1 do
    let tj = c.zs.(j).t in
    if tj < z.t then begin
      mz := !mz +. (1.0 /. float_of_int (z.t - tj));
      compz := !compz *. (1.0 -. c.q.(j))
    end
    else if tj = z.t then begin
      compz := !compz *. (1.0 -. c.q.(j));
      c.comp.(j) <- c.comp.(j) *. one_minus_qz;
      c.prob.(j) <- prob_at c j
    end
    else begin
      c.mem.(j) <- c.mem.(j) +. (1.0 /. float_of_int (tj - z.t));
      c.comp.(j) <- c.comp.(j) *. one_minus_qz;
      c.prob.(j) <- prob_at c j
    end
  done;
  (* shift the tail and write the new slot *)
  let pos = ref c.len in
  (try
     for j = 0 to c.len - 1 do
       if not (Triple.chain_before c.zs.(j) z) then begin
         pos := j;
         raise Exit
       end
     done
   with Exit -> ());
  for j = c.len downto !pos + 1 do
    c.zs.(j) <- c.zs.(j - 1);
    c.q.(j) <- c.q.(j - 1);
    c.price.(j) <- c.price.(j - 1);
    c.beta.(j) <- c.beta.(j - 1);
    c.mem.(j) <- c.mem.(j - 1);
    c.comp.(j) <- c.comp.(j - 1);
    c.prob.(j) <- c.prob.(j - 1)
  done;
  let p = !pos in
  c.zs.(p) <- z;
  c.q.(p) <- qz;
  c.price.(p) <- Instance.price c.inst ~i:z.i ~time:z.t;
  c.beta.(p) <- Instance.saturation c.inst z.i;
  c.mem.(p) <- !mz;
  c.comp.(p) <- !compz;
  c.len <- c.len + 1;
  c.prob.(p) <- prob_at c p;
  refresh_revenues c

let remove c (z : Triple.t) =
  Metrics.incr c_removes;
  let j0 = find c z in
  if j0 < 0 || not (Triple.equal c.zs.(j0) z) then
    invalid_arg "Chain.remove: absent triple";
  for j = j0 to c.len - 2 do
    c.zs.(j) <- c.zs.(j + 1);
    c.q.(j) <- c.q.(j + 1);
    c.price.(j) <- c.price.(j + 1);
    c.beta.(j) <- c.beta.(j + 1)
  done;
  c.len <- c.len - 1;
  recompute c

let revenue ~with_saturation c = if with_saturation then c.rev_sat else c.rev_nosat

let prob ~with_saturation c (z : Triple.t) =
  let j = find c z in
  if j < 0 || not (Triple.equal c.zs.(j) z) then None
  else if with_saturation then Some c.prob.(j)
  else Some (if c.q.(j) <= 0.0 then 0.0 else c.q.(j) *. c.comp.(j))

let marginal ~with_saturation c (z : Triple.t) =
  Metrics.incr c_marginals;
  let qz = Instance.q c.inst ~u:z.u ~i:z.i ~time:z.t in
  let one_minus_qz = 1.0 -. qz in
  let mz = ref 0.0 and compz = ref 1.0 in
  let delta = ref 0.0 in
  for j = 0 to c.len - 1 do
    let tj = c.zs.(j).t in
    if tj < z.t then begin
      mz := !mz +. (1.0 /. float_of_int (z.t - tj));
      compz := !compz *. (1.0 -. c.q.(j))
    end
    else if tj = z.t then begin
      (* z's primitive probability joins the same-time competition *)
      compz := !compz *. (1.0 -. c.q.(j));
      let old_p =
        if c.q.(j) <= 0.0 then 0.0
        else if with_saturation then c.prob.(j)
        else c.q.(j) *. c.comp.(j)
      in
      delta := !delta -. (c.price.(j) *. old_p *. qz)
    end
    else begin
      (* later triple: its memory gains 1/(Δt), its competition gains
         (1 − q_z) *)
      let old_p, new_p =
        if c.q.(j) <= 0.0 then (0.0, 0.0)
        else if with_saturation then
          let m' = c.mem.(j) +. (1.0 /. float_of_int (tj - z.t)) in
          ( c.prob.(j),
            c.q.(j) *. saturation_factor c.beta.(j) m' *. c.comp.(j) *. one_minus_qz )
        else
          let p0 = c.q.(j) *. c.comp.(j) in
          (p0, p0 *. one_minus_qz)
      in
      delta := !delta +. (c.price.(j) *. (new_p -. old_p))
    end
  done;
  let gain =
    if qz <= 0.0 then 0.0
    else begin
      let sat =
        if with_saturation then saturation_factor (Instance.saturation c.inst z.i) !mz
        else 1.0
      in
      Instance.price c.inst ~i:z.i ~time:z.t *. qz *. sat *. !compz
    end
  in
  gain +. !delta
