(* Array-backed (user, class) chain with cached per-triple aggregates.

   The chain keeps its triples in a sorted dynamic array (time ascending,
   ties by item id — Triple.chain_before) together with, per triple z_j:

     q.(j)    primitive adoption probability q(u, i_j, t_j)
     price.(j) p(i_j, t_j)
     beta.(j) saturation factor of i_j
     mem.(j)  memory  M_j = Σ_{t_l < t_j} 1/(t_j − t_l)          (Equation 1)
     comp.(j) competition Π_{t_l < t_j ∨ (t_l = t_j ∧ l ≠ j)} (1 − q_l)
     prob.(j) dynamic adoption probability q_j · β_j^{M_j} · comp_j

   plus the two cached chain revenues Σ p_j·prob_j (with saturation) and
   Σ p_j·q_j·comp_j (the β = 1 variant used by GlobalNo planning).

   [insert] splices a triple in O(L): the new triple's memory and
   competition are accumulated in one pass, and each later (or same-time)
   triple's aggregates absorb the newcomer's 1/(Δt) memory term and (1 − q)
   competition factor in O(1). [remove] rebuilds the aggregates from
   scratch — removal only happens on the cold paths (brute force,
   hardness, local search) and a division-free rebuild stays exact even
   when some q = 1 makes the competition product unrecoverable by
   division. [marginal] computes an insertion's revenue delta in O(L)
   without mutating anything — the hot path of every greedy. *)

module Metrics = Revmax_prelude.Metrics

let c_inserts = Metrics.counter "chain.inserts"

let c_removes = Metrics.counter "chain.removes"

let c_recomputes = Metrics.counter "chain.recomputes"

let c_marginals = Metrics.counter "chain.marginals"

type t = {
  inst : Instance.t;
  mutable len : int;
  mutable zs : Triple.t array;
  mutable ts : int array; (* flat mirror of zs.(j).t, for deref-free walks *)
  mutable q : float array;
  mutable price : float array;
  mutable beta : float array;
  mutable mem : float array;
  mutable comp : float array;
  mutable prob : float array;
  mutable rev_sat : float;
  mutable rev_nosat : float;
  scratch : float array; (* unboxed oracle cells: 0-2 accumulators, 3-5 qz/price/beta inputs *)
  inv : float array; (* inv.(d) = 1/d for d in 1..horizon: memory terms are
                        always 1/Δt with Δt bounded by the horizon, and a
                        table load beats a float divide in the oracle walk;
                        the values are the same IEEE quotients *)
}

let dummy = Triple.make ~u:0 ~i:0 ~t:0

let create inst =
  {
    inst;
    len = 0;
    zs = [||];
    ts = [||];
    q = [||];
    price = [||];
    beta = [||];
    mem = [||];
    comp = [||];
    prob = [||];
    rev_sat = 0.0;
    rev_nosat = 0.0;
    scratch = Array.make 6 0.0;
    inv =
      Array.init (Instance.horizon inst + 1) (fun d ->
          if d = 0 then 0.0 else 1.0 /. float_of_int d);
  }

let length c = c.len

let to_list c = Array.to_list (Array.sub c.zs 0 c.len)

let iter c f =
  for j = 0 to c.len - 1 do
    f c.zs.(j)
  done

(* index of the (time, item) slot, or -1 *)
let find c (z : Triple.t) =
  let lo = ref 0 and hi = ref (c.len - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = c.zs.(mid) in
    let cmp = if x.t <> z.t then compare x.t z.t else compare x.i z.i in
    if cmp = 0 then begin
      res := mid;
      lo := !hi + 1
    end
    else if cmp < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem c z =
  let j = find c z in
  j >= 0 && Triple.equal c.zs.(j) z

let saturation_factor beta m = if m = 0.0 then 1.0 else beta ** m

(* recompute prob.(j) = q_j · β_j^{M_j} · comp_j in place, with no float
   crossing a call boundary: a [prob_at c j] helper returning the value
   would box its result (and [saturation_factor]'s arguments) on every
   chain element of every insert/remove *)
let set_prob c j =
  c.prob.(j) <-
    (if c.q.(j) <= 0.0 then 0.0
     else
       let m = c.mem.(j) in
       c.q.(j) *. (if m = 0.0 then 1.0 else c.beta.(j) ** m) *. c.comp.(j))

let refresh_revenues c =
  (* accumulate in scratch cells, not [float ref]s: without flambda every
     [:=] on a float ref stores a freshly boxed float, so the refs would
     allocate O(len) words on each insert — this runs once per accepted
     triple in the greedy steady state. Slots 0/1 are free here (they are
     the [marginal_cells] accumulators, and no marginal is in flight). *)
  let a = c.scratch in
  a.(0) <- 0.0;
  a.(1) <- 0.0;
  for j = 0 to c.len - 1 do
    a.(0) <- a.(0) +. (c.price.(j) *. c.prob.(j));
    a.(1) <- a.(1) +. (c.price.(j) *. if c.q.(j) <= 0.0 then 0.0 else c.q.(j) *. c.comp.(j))
  done;
  c.rev_sat <- a.(0);
  c.rev_nosat <- a.(1)

(* full rebuild of every cached aggregate, iterating in the same ascending
   order as the naive evaluator so the floating-point sums and products are
   reproduced exactly; O(L²) worst case but only used by [remove] *)
let recompute c =
  Metrics.incr c_recomputes;
  let j = ref 0 in
  let prefix = ref 1.0 in
  while !j < c.len do
    (* the group [!j, k) shares one time step *)
    let k = ref !j in
    while !k < c.len && c.zs.(!k).t = c.zs.(!j).t do incr k done;
    for a = !j to !k - 1 do
      let m = ref 0.0 in
      for l = 0 to !j - 1 do
        m := !m +. c.inv.(c.zs.(a).t - c.zs.(l).t)
      done;
      c.mem.(a) <- !m;
      let g = ref !prefix in
      for b = !j to !k - 1 do
        if b <> a then g := !g *. (1.0 -. c.q.(b))
      done;
      c.comp.(a) <- !g;
      set_prob c a
    done;
    for b = !j to !k - 1 do
      prefix := !prefix *. (1.0 -. c.q.(b))
    done;
    j := !k
  done;
  refresh_revenues c

let ensure_capacity c n =
  if n > Array.length c.zs then begin
    let cap = max 4 (max n (2 * Array.length c.zs)) in
    let zs = Array.make cap dummy in
    Array.blit c.zs 0 zs 0 c.len;
    c.zs <- zs;
    let ts = Array.make cap 0 in
    Array.blit c.ts 0 ts 0 c.len;
    c.ts <- ts;
    let grow_f a =
      let fresh = Array.make cap 0.0 in
      Array.blit a 0 fresh 0 c.len;
      fresh
    in
    c.q <- grow_f c.q;
    c.price <- grow_f c.price;
    c.beta <- grow_f c.beta;
    c.mem <- grow_f c.mem;
    c.comp <- grow_f c.comp;
    c.prob <- grow_f c.prob
  end

let insert ?qz c (z : Triple.t) =
  Metrics.incr c_inserts;
  ensure_capacity c (c.len + 1);
  (let j0 = find c z in
   if j0 >= 0 && Triple.equal c.zs.(j0) z then invalid_arg "Chain.insert: duplicate triple");
  let qz =
    match qz with Some q -> q | None -> Instance.q c.inst ~u:z.u ~i:z.i ~time:z.t
  in
  let one_minus_qz = 1.0 -. qz in
  (* splice z's effects into the existing aggregates and accumulate z's own
     memory / competition in the same O(L) pass. The accumulators live in
     scratch cells (slot 0: memory, slot 1: competition) for the same
     no-flambda reason as [refresh_revenues]: float refs would box on every
     loop iteration of every accept. *)
  let a = c.scratch in
  a.(0) <- 0.0;
  a.(1) <- 1.0;
  for j = 0 to c.len - 1 do
    let tj = c.zs.(j).t in
    if tj < z.t then begin
      a.(0) <- a.(0) +. c.inv.(z.t - tj);
      a.(1) <- a.(1) *. (1.0 -. c.q.(j))
    end
    else if tj = z.t then begin
      a.(1) <- a.(1) *. (1.0 -. c.q.(j));
      c.comp.(j) <- c.comp.(j) *. one_minus_qz;
      set_prob c j
    end
    else begin
      c.mem.(j) <- c.mem.(j) +. c.inv.(tj - z.t);
      c.comp.(j) <- c.comp.(j) *. one_minus_qz;
      set_prob c j
    end
  done;
  (* shift the tail and write the new slot *)
  let pos = ref c.len in
  (try
     for j = 0 to c.len - 1 do
       if not (Triple.chain_before c.zs.(j) z) then begin
         pos := j;
         raise Exit
       end
     done
   with Exit -> ());
  for j = c.len downto !pos + 1 do
    c.zs.(j) <- c.zs.(j - 1);
    c.ts.(j) <- c.ts.(j - 1);
    c.q.(j) <- c.q.(j - 1);
    c.price.(j) <- c.price.(j - 1);
    c.beta.(j) <- c.beta.(j - 1);
    c.mem.(j) <- c.mem.(j - 1);
    c.comp.(j) <- c.comp.(j - 1);
    c.prob.(j) <- c.prob.(j - 1)
  done;
  let p = !pos in
  c.zs.(p) <- z;
  c.ts.(p) <- z.t;
  c.q.(p) <- qz;
  c.price.(p) <- Instance.price c.inst ~i:z.i ~time:z.t;
  c.beta.(p) <- Instance.saturation c.inst z.i;
  c.mem.(p) <- a.(0);
  c.comp.(p) <- a.(1);
  c.len <- c.len + 1;
  set_prob c p;
  refresh_revenues c

let remove c (z : Triple.t) =
  Metrics.incr c_removes;
  let j0 = find c z in
  if j0 < 0 || not (Triple.equal c.zs.(j0) z) then
    invalid_arg "Chain.remove: absent triple";
  for j = j0 to c.len - 2 do
    c.zs.(j) <- c.zs.(j + 1);
    c.ts.(j) <- c.ts.(j + 1);
    c.q.(j) <- c.q.(j + 1);
    c.price.(j) <- c.price.(j + 1);
    c.beta.(j) <- c.beta.(j + 1)
  done;
  c.len <- c.len - 1;
  (* clear the vacated tail slot: a stale triple left beyond [len] could
     otherwise alias a future [find]/[iter] read after a re-insert at the
     old boundary *)
  c.zs.(c.len) <- dummy;
  c.ts.(c.len) <- 0;
  c.q.(c.len) <- 0.0;
  c.price.(c.len) <- 0.0;
  c.beta.(c.len) <- 0.0;
  c.mem.(c.len) <- 0.0;
  c.comp.(c.len) <- 0.0;
  c.prob.(c.len) <- 0.0;
  recompute c

let revenue ~with_saturation c = if with_saturation then c.rev_sat else c.rev_nosat

let prob ~with_saturation c (z : Triple.t) =
  let j = find c z in
  if j < 0 || not (Triple.equal c.zs.(j) z) then None
  else if with_saturation then Some c.prob.(j)
  else Some (if c.q.(j) <= 0.0 then 0.0 else c.q.(j) *. c.comp.(j))

(* Allocation-free kernel of [marginal]: every per-candidate instance fact
   (q, price, saturation base) arrives as an argument so the O(L) loop only
   touches the chain's flat float arrays. The saturation closed form is
   inlined by hand — without flambda a call to [saturation_factor] would
   box its float result on every later-triple iteration — and the loop body
   performs no tupling, no option construction and no hashtable lookups, so
   the per-element work allocates nothing. Floating-point operations are
   ordered exactly as the historical [marginal], keeping golden traces and
   the naive≈incremental properties bit-stable. *)
let oracle_cells c = c.scratch

(* The one oracle call of the steady-state selection loop, with a float-free
   signature: without flambda every float argument or result of a
   non-inlined call is boxed on the minor heap, so the caller passes qz,
   price and beta by storing them into [oracle_cells] slots 3..5 (unboxed
   float-array stores) and the marginal comes back through [res.(0)] — the
   call itself moves only immediates and pointers and allocates nothing.

   The three accumulators live in the same preallocated [scratch] array:
   a [ref] cell (or float arguments threaded through a local recursion,
   which the non-flambda compiler boxes) would allocate on every call.
   Each branch performs the same floating-point operations in the same
   order as the historical accumulate-in-refs loop, so results are
   bit-identical. The walk reads the [ts] time mirror, not [zs], to keep
   it free of pointer chasing. *)
let marginal_cells ~with_saturation c ~time ~res =
  Metrics.incr c_marginals;
  let a = c.scratch in
  let qz = a.(3) in
  let price = a.(4) in
  let beta = a.(5) in
  let one_minus_qz = 1.0 -. qz in
  let len = c.len in
  a.(0) <- 0.0 (* mz *);
  a.(1) <- 1.0 (* compz *);
  a.(2) <- 0.0 (* delta *);
  for j = 0 to len - 1 do
    let tj = c.ts.(j) in
    if tj < time then begin
      a.(0) <- a.(0) +. c.inv.(time - tj);
      a.(1) <- a.(1) *. (1.0 -. c.q.(j))
    end
    else if tj = time then begin
      (* z's primitive probability joins the same-time competition *)
      a.(1) <- a.(1) *. (1.0 -. c.q.(j));
      let old_p =
        if c.q.(j) <= 0.0 then 0.0
        else if with_saturation then c.prob.(j)
        else c.q.(j) *. c.comp.(j)
      in
      a.(2) <- a.(2) -. (c.price.(j) *. old_p *. qz)
    end
    else begin
      (* later triple: its memory gains 1/(Δt), its competition gains
         (1 − q_z) *)
      let d =
        if c.q.(j) <= 0.0 then 0.0
        else if with_saturation then begin
          let m' = c.mem.(j) +. c.inv.(tj - time) in
          let sat = if m' = 0.0 then 1.0 else c.beta.(j) ** m' in
          (c.q.(j) *. sat *. c.comp.(j) *. one_minus_qz) -. c.prob.(j)
        end
        else begin
          let p0 = c.q.(j) *. c.comp.(j) in
          (p0 *. one_minus_qz) -. p0
        end
      in
      a.(2) <- a.(2) +. (c.price.(j) *. d)
    end
  done;
  let gain =
    if qz <= 0.0 then 0.0
    else begin
      let sat = if with_saturation then (if a.(0) = 0.0 then 1.0 else beta ** a.(0)) else 1.0 in
      price *. qz *. sat *. a.(1)
    end
  in
  res.(0) <- gain +. a.(2)

(* boxed-float façade over [marginal_cells] — one implementation, so the
   two entry points cannot drift apart numerically. [res] reuses [scratch]:
   slot 0 (the mz accumulator) is dead by the time the result is stored. *)
let marginal_flat ~with_saturation c ~time ~qz ~price ~beta =
  let a = c.scratch in
  a.(3) <- qz;
  a.(4) <- price;
  a.(5) <- beta;
  marginal_cells ~with_saturation c ~time ~res:a;
  a.(0)

let marginal ~with_saturation c (z : Triple.t) =
  marginal_flat ~with_saturation c ~time:z.t
    ~qz:(Instance.q c.inst ~u:z.u ~i:z.i ~time:z.t)
    ~price:(Instance.price c.inst ~i:z.i ~time:z.t)
    ~beta:(Instance.saturation c.inst z.i)
