(** A user–item–time triple, the atoms of a recommendation strategy
    (§3.1: [(u, i, t) ∈ S] means item [i] is recommended to user [u] at
    time step [t]). Times run over [1 .. T]. *)

type t = { u : int; i : int; t : int }

val make : u:int -> i:int -> t:int -> t

val compare : t -> t -> int
(** Total order: by user, then time, then item. *)

val equal : t -> t -> bool

val chain_before : t -> t -> bool
(** The (user, class) chain order: ascending time, ties broken by ascending
    item id. [chain_before a b] iff [a] stays in front of [b] when [b] is
    inserted. This single definition is shared by every chain representation
    (the array-backed {!Chain} and the list-based naive revenue oracle) so
    the tie-break cannot drift between them. *)

val chain_insert : t list -> t -> t list
(** Ordered insert into a time-ascending chain, preserving {!chain_before}
    order. *)

val pp : Format.formatter -> t -> unit
(** Renders as [(u, i, t)]. *)

val to_string : t -> string
