module Pool = Revmax_prelude.Pool
module Budget = Revmax_prelude.Budget
module Metrics = Revmax_prelude.Metrics
module Err = Revmax_prelude.Err

(* bulk-added on exit from the run's own accumulators, as in Greedy: the
   hot paths carry no extra branches and every total is jobs-invariant
   (shard results are reduced in shard order) *)
let c_runs = Metrics.counter "shard_greedy.runs"

let c_released = Metrics.counter "shard_greedy.released_pairs"

let c_replanned = Metrics.counter "shard_greedy.replanned"

let c_trimmed = Metrics.counter "shard_greedy.quantity_trimmed"

(* count/sum/min/max of reconciliation rounds per run — the round
   "histogram" summary exposed through the Metrics registry *)
let t_rounds = Metrics.timer "shard_greedy.reconciliation_rounds"

let shard_counter idx what = Metrics.counter (Printf.sprintf "shard_greedy.shard%d.%s" idx what)

let env_shards () =
  match Sys.getenv_opt "REVMAX_SHARDS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let default = ref None (* None = not yet read from the environment *)

let default_shards () =
  match !default with
  | Some n -> n
  | None ->
      let n = env_shards () in
      default := Some n;
      n

let set_default_shards n = default := Some (max 1 n)

type stats = {
  shards : int;
  policy : Instance.split_policy;
  per_shard_selected : int array;
  marginal_evaluations : int;
  pops : int;
  selected : int;
  reconciliation_rounds : int;
  released_pairs : int;
  replanned : int;
  truncated : bool;
}

(* The revenue the strategy loses when user [u] gives up item [i] entirely
   (every triple of the pair, at all times): the delta of the one affected
   (user, class) chain, scored by the reference chain evaluator. Removing
   the pair also
   changes the memory/competition of the chain's surviving triples, which
   is exactly what re-scoring both variants of the chain accounts for. *)
let removal_loss ~with_saturation inst s ~u ~i =
  let cls = Instance.class_of inst i in
  let chain = Strategy.chain s ~u ~cls in
  let keep = List.filter (fun (z : Triple.t) -> z.i <> i) chain in
  let q_of = if Instance.is_slate inst then Some (Strategy.effective_q s) else None in
  Revenue.chain_revenue ~with_saturation ?q_of inst chain
  -. Revenue.chain_revenue ~with_saturation ?q_of inst keep

(* The quantity-trim ranking key: the revenue lost when one triple leaves
   the strategy — the delta of its own (user, class) chain. Like
   [removal_loss] it is computable child- or parent-side with identical
   bytes (chains are per-user and canonically ordered). *)
let triple_removal_loss ~with_saturation inst s (z : Triple.t) =
  let chain = Strategy.chain_of_triple s z in
  let keep = List.filter (fun z' -> not (Triple.equal z' z)) chain in
  let q_of = if Instance.is_slate inst then Some (Strategy.effective_q s) else None in
  Revenue.chain_revenue ~with_saturation ?q_of inst chain
  -. Revenue.chain_revenue ~with_saturation ?q_of inst keep

let solve ?(policy = `Water_filling) ?shards ?jobs ?(with_saturation = true)
    ?(lazy_policy = `Celf) ?budget inst =
  let shards = match shards with Some n -> max 1 n | None -> default_shards () in
  Metrics.span "shard_greedy.solve" @@ fun () ->
  let views = Instance.shard ~policy ~shards inst in
  (* each shard plans against its own deterministic slice of the budget;
     the charges flow back into the caller's budget afterwards *)
  let parts = Option.map (fun b -> Budget.split b shards) budget in
  let results =
    Pool.parallel_init ?jobs shards ~f:(fun idx ->
        Greedy.run ~with_saturation ~lazy_policy
          ?budget:(Option.map (fun a -> a.(idx)) parts)
          views.(idx))
  in
  (match (budget, parts) with Some b, Some a -> Budget.absorb b a | _ -> ());
  (* deterministic merge in shard order; shards partition the users, so no
     triple can collide and no display slot can overflow. On slate
     instances each triple keeps the slot its shard assigned it — shard
     displays are whole (user, time) displays, so slots cannot collide
     either. *)
  let s = Strategy.create inst in
  Array.iter
    (fun (sh, _) ->
      List.iter (fun z -> Strategy.add ?slot:(Strategy.slot_of sh z) s z) (Strategy.to_list sh))
    results;
  let evals = ref 0 and pops = ref 0 and truncated = ref false in
  Array.iter
    (fun (_, (st : Greedy.stats)) ->
      evals := !evals + st.marginal_evaluations;
      pops := !pops + st.pops;
      truncated := !truncated || st.truncated)
    results;
  let rounds = ref 0 and released_pairs = ref 0 and replanned = ref 0 in
  (* Capacity reconciliation. Under `Proportional the merge respects every
     q_i by construction and the loop exits immediately; under
     `Water_filling items may be over-subscribed. Each round releases, per
     over-subscribed item, the holders of globally lowest removal loss
     (ties to the lower user id) until the item is back at q_i, then the
     released users re-plan locally — one constrained greedy pass over the
     merged strategy, whose can_add checks the true global capacities. A
     re-plan can never over-subscribe, so the fixed point is reached after
     at most one release round; the loop form keeps the invariant obvious
     and guards the proof obligation at run time. *)
  let merged = ref s in
  let rec reconcile () =
    let over =
      List.filter_map
        (function Err.Capacity { item; _ } -> Some item | _ -> None)
        (Strategy.violations !merged)
    in
    if over <> [] then begin
      incr rounds;
      let losers = Hashtbl.create 16 in
      List.iter
        (fun i ->
          let cur = !merged in
          let holders =
            List.sort_uniq compare
              (List.filter_map
                 (fun (z : Triple.t) -> if z.i = i then Some z.u else None)
                 (Strategy.to_list cur))
          in
          let excess = List.length holders - Instance.capacity inst i in
          let ranked =
            List.sort compare
              (List.map (fun u -> (removal_loss ~with_saturation inst cur ~u ~i, u)) holders)
          in
          List.iteri
            (fun rank (_, u) ->
              if rank < excess then begin
                List.iter
                  (fun (z : Triple.t) -> if z.i = i && z.u = u then Strategy.remove cur z)
                  (Strategy.to_list cur);
                Hashtbl.replace losers u ();
                incr released_pairs
              end)
            ranked)
        over;
      (* losers re-plan against the reconciled global strategy: marginals,
         display slots and the true capacities are all checked w.r.t. the
         merged state, so the pass cannot reintroduce a violation *)
      let s', (st : Greedy.stats) =
        Greedy.run ~with_saturation ~lazy_policy
          ~allowed:(fun z -> Hashtbl.mem losers z.u)
          ~base:!merged ?budget inst
      in
      merged := s';
      evals := !evals + st.marginal_evaluations;
      pops := !pops + st.pops;
      replanned := !replanned + st.selected;
      truncated := !truncated || st.truncated;
      reconcile ()
    end
  in
  reconcile ();
  (* Quantity reconciliation, after capacities are settled. `Water_filling
     hands every shard an optimistic [min cap shard-universe] budget, so
     the merged size may exceed the global cap ([`Proportional] shares sum
     to the cap exactly and can never trigger this). Release the triple of
     globally lowest removal loss (ties to the smaller triple) one at a
     time — each removal changes its chain's aggregates, so the ranking is
     recomputed per step — until the strategy is back under the cap.
     Removals cannot violate any other constraint, so the result stays
     valid. *)
  let trimmed = ref 0 in
  (match Instance.max_total inst with
  | None -> ()
  | Some cap ->
      while Strategy.size !merged > cap do
        let cur = !merged in
        let best =
          List.fold_left
            (fun acc z ->
              let l = triple_removal_loss ~with_saturation inst cur z in
              match acc with Some (l0, _) when l0 <= l -> acc | _ -> Some (l, z))
            None (Strategy.to_list cur)
        in
        match best with
        | Some (_, z) ->
            Strategy.remove cur z;
            incr trimmed
        | None -> assert false (* size > cap ≥ 0 implies a non-empty strategy *)
      done);
  let per_shard_selected = Array.map (fun (_, (st : Greedy.stats)) -> st.selected) results in
  Metrics.incr c_runs;
  Metrics.incr c_trimmed ~by:!trimmed;
  Metrics.incr c_released ~by:!released_pairs;
  Metrics.incr c_replanned ~by:!replanned;
  Metrics.observe t_rounds (float_of_int !rounds);
  Array.iteri
    (fun idx (st : Greedy.stats) ->
      Metrics.incr (shard_counter idx "selected") ~by:st.selected;
      Metrics.incr (shard_counter idx "marginal_evaluations") ~by:st.marginal_evaluations)
    (Array.map snd results);
  ( !merged,
    {
      shards;
      policy;
      per_shard_selected;
      marginal_evaluations = !evals;
      pops = !pops;
      selected = Strategy.size !merged;
      reconciliation_rounds = !rounds;
      released_pairs = !released_pairs;
      replanned = !replanned;
      truncated = !truncated;
    } )
