(** The revenue model of §3.1: memory (Equation 1), dynamic adoption
    probability (Definition 1), the expected-revenue objective
    (Definition 2), and marginal revenue (Definition 3).

    Because a triple's dynamic adoption probability depends only on the
    same-user same-class triples at earlier-or-equal times, [Rev] decomposes
    over (user, class) chains; all functions below work on such chains. The
    hot path of every greedy algorithm is [marginal_incremental], which
    reads the chain's cached aggregates (see {!Chain}) and answers in O(m)
    for a chain of m ≤ kT triples; the naive [marginal] re-scores both
    chains in O(m²) and is kept as the reference oracle.

    All functions take [?with_saturation] (default [true]); [false] computes
    the β = 1 variant used by the GlobalNo baseline, which plans as though
    saturation did not exist. *)

val memory : chain:Triple.t list -> time:int -> float
(** [M_S(u,i,t)] (Equation 1): [Σ 1/(t−τ)] over chain triples with [τ < t].
    Note the memory is class-level — every same-class triple contributes,
    whichever item it recommends. *)

val dynamic_probability :
  ?with_saturation:bool ->
  ?q_of:(Triple.t -> float) ->
  Instance.t ->
  chain:Triple.t list ->
  Triple.t ->
  float
(** [dynamic_probability inst ~chain z] is [qS(z)] of Definition 1 where
    [chain] is the (user, class) chain of [z] in [S], {e including} [z]
    itself. The saturation exponent uses the chain's earlier triples; the
    competition products use primitive probabilities of earlier triples and
    of same-time triples recommending a different item. [q_of] overrides
    the primitive probability of every triple (default: [Instance.q]) —
    slate callers pass the strategy's slot-scaled effective q̃. *)

val chain_revenue :
  ?with_saturation:bool -> ?q_of:(Triple.t -> float) -> Instance.t -> Triple.t list -> float
(** Expected revenue contributed by one chain:
    [Σ_{z ∈ chain} p(z.i, z.t) · qS(z)]. *)

val total : ?with_saturation:bool -> Strategy.t -> float
(** [Rev(S)] (Definition 2). On slate instances the strategy's slot
    assignments determine each member's effective probability, so [total]
    is automatically slate-aware. *)

val dynamic_probability_in : ?with_saturation:bool -> Strategy.t -> Triple.t -> float
(** [qS(u,i,t)] for a triple of the strategy; 0 when [(u,i,t) ∉ S]
    (Definition 1's convention). Served from the chain's cached aggregates
    in O(log L). *)

val marginal : ?with_saturation:bool -> Strategy.t -> Triple.t -> float
(** [RevS(z) = Rev(S ∪ {z}) − Rev(S)] (Definition 3): the gain from [z]
    itself minus the loss it inflicts on later same-class triples of the
    same user. 0 if [z ∈ S]. Does not check validity.

    This is the naive reference oracle: both chains are re-scored from
    scratch in O(L²). The algorithms use {!marginal_incremental}; property
    tests pin the two against each other. *)

val marginal_incremental : ?with_saturation:bool -> Strategy.t -> Triple.t -> float
(** Same value as {!marginal} (up to floating-point rounding, ≤ 1e-9
    relative) computed in O(L) from the chain's cached aggregates: the
    candidate's saturation/competition effects are spliced into the cached
    memory and competition products instead of re-scoring both chains. The
    hot path of G-Greedy, SL/RL-Greedy, rolling and the exact solvers. *)

val total_incremental : ?with_saturation:bool -> Strategy.t -> float
(** [Rev(S)] from the cached per-chain revenues in O(#chains) — agrees with
    {!total} up to floating-point rounding. *)
