module Err = Revmax_prelude.Err

type t = {
  num_users : int;
  num_items : int;
  horizon : int;
  display_limit : int;
  class_of : int array;
  num_classes : int;
  class_sizes : int array;
  capacity : int array;
  saturation : float array;
  price : float array array;
  (* candidate adoption rows per user, item-ascending *)
  cands : (int * float array) array array;
  (* (u * num_items + i) -> probability vector, for O(1) lookup *)
  q_index : (int, float array) Hashtbl.t;
  ratings : (int, float) Hashtbl.t;
  num_candidate_triples : int;
  (* the view's user range [u_lo, u_hi); the full instance has [0, num_users).
     Views produced by [shard] share every array above except [capacity]
     (which holds the shard's capacity budget) — user ids stay global, so
     strategies planned on a view merge into the parent without renaming. *)
  u_lo : int;
  u_hi : int;
}

exception Bad_field of string * string

let create_checked ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity ~saturation
    ~price ?(ratings = []) ~adoption () =
  let fail field msg = raise (Bad_field (field, msg)) in
  try
    if num_users < 0 then fail "num_users" "negative number of users";
    if num_items < 0 then fail "num_items" "negative number of items";
    if horizon < 1 then fail "horizon" "horizon must be at least 1";
    if display_limit < 1 then fail "display_limit" "display_limit must be at least 1";
    if Array.length class_of <> num_items then
      fail "class_of"
        (Printf.sprintf "length %d differs from num_items %d" (Array.length class_of) num_items);
    if Array.length capacity <> num_items then
      fail "capacity"
        (Printf.sprintf "length %d differs from num_items %d" (Array.length capacity) num_items);
    if Array.length saturation <> num_items then
      fail "saturation"
        (Printf.sprintf "length %d differs from num_items %d" (Array.length saturation) num_items);
    if Array.length price <> num_items then
      fail "price"
        (Printf.sprintf "%d rows differ from num_items %d" (Array.length price) num_items);
    Array.iteri
      (fun i c ->
        if c < 0 then fail "class_of" (Printf.sprintf "item %d has negative class id %d" i c))
      class_of;
    Array.iteri
      (fun i c ->
        if c < 0 then fail "capacity" (Printf.sprintf "item %d has negative capacity %d" i c))
      capacity;
    Array.iteri
      (fun i b ->
        if b < 0.0 || b > 1.0 || Float.is_nan b then
          fail "saturation" (Printf.sprintf "item %d: %g outside [0,1]" i b))
      saturation;
    Array.iteri
      (fun i row ->
        if Array.length row <> horizon then
          fail "price"
            (Printf.sprintf "item %d: row length %d differs from horizon %d" i (Array.length row)
               horizon);
        Array.iter
          (fun p ->
            if (not (Float.is_finite p)) || p < 0.0 then
              fail "price" (Printf.sprintf "item %d: price %g not finite and non-negative" i p))
          row)
      price;
    let num_classes = Array.fold_left (fun m c -> max m (c + 1)) 0 class_of in
    let class_sizes = Array.make num_classes 0 in
    Array.iter (fun c -> class_sizes.(c) <- class_sizes.(c) + 1) class_of;
    let q_index = Hashtbl.create (max 16 (List.length adoption)) in
    let buckets = Array.make num_users [] in
    let triples = ref 0 in
    List.iter
      (fun (u, i, qs) ->
        if u < 0 || u >= num_users || i < 0 || i >= num_items then
          fail "adoption" (Printf.sprintf "pair (%d, %d) out of range" u i);
        if Array.length qs <> horizon then
          fail "adoption"
            (Printf.sprintf "pair (%d, %d): vector length %d differs from horizon %d" u i
               (Array.length qs) horizon);
        Array.iter
          (fun p ->
            if p < 0.0 || p > 1.0 || Float.is_nan p then
              fail "adoption" (Printf.sprintf "pair (%d, %d): probability %g outside [0,1]" u i p))
          qs;
        let key = (u * num_items) + i in
        if Hashtbl.mem q_index key then
          fail "adoption" (Printf.sprintf "duplicate (user, item) pair (%d, %d)" u i);
        let qs = Array.copy qs in
        Hashtbl.replace q_index key qs;
        buckets.(u) <- (i, qs) :: buckets.(u);
        Array.iter (fun p -> if p > 0.0 then incr triples) qs)
      adoption;
    let cands =
      Array.map
        (fun l ->
          let a = Array.of_list l in
          Array.sort (fun (i1, _) (i2, _) -> compare i1 i2) a;
          a)
        buckets
    in
    let rating_tbl = Hashtbl.create (max 16 (List.length ratings)) in
    List.iter
      (fun (u, i, r) ->
        if u < 0 || u >= num_users || i < 0 || i >= num_items then
          fail "ratings" (Printf.sprintf "pair (%d, %d) out of range" u i);
        Hashtbl.replace rating_tbl ((u * num_items) + i) r)
      ratings;
    Ok
      {
        num_users;
        num_items;
        horizon;
        display_limit;
        class_of = Array.copy class_of;
        num_classes;
        class_sizes;
        capacity = Array.copy capacity;
        saturation = Array.copy saturation;
        price = Array.map Array.copy price;
        cands;
        q_index;
        ratings = rating_tbl;
        num_candidate_triples = !triples;
        u_lo = 0;
        u_hi = num_users;
      }
  with Bad_field (field, msg) -> Error (Err.Invalid_instance { field; msg })

let create ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity ~saturation ~price
    ?ratings ~adoption () =
  match
    create_checked ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity ~saturation
      ~price ?ratings ~adoption ()
  with
  | Ok t -> t
  | Error e -> invalid_arg ("Instance.create: " ^ Err.message e)

let num_users t = t.num_users
let num_items t = t.num_items
let horizon t = t.horizon
let display_limit t = t.display_limit
let num_classes t = t.num_classes

let class_of t i = t.class_of.(i)
let class_size t c = t.class_sizes.(c)
let capacity t i = t.capacity.(i)
let saturation t i = t.saturation.(i)

let check_time t time =
  if time < 1 || time > t.horizon then invalid_arg "Instance: time step out of range"

let price t ~i ~time =
  check_time t time;
  t.price.(i).(time - 1)

let q t ~u ~i ~time =
  check_time t time;
  (* exception form instead of [find_opt]: no [Some] allocation on a hot
     oracle lookup *)
  match Hashtbl.find t.q_index ((u * t.num_items) + i) with
  | qs -> qs.(time - 1)
  | exception Not_found -> 0.0

let is_candidate t ~u ~i = Hashtbl.mem t.q_index ((u * t.num_items) + i)

let candidates t u = t.cands.(u)

let candidate_items_in_class t ~u ~cls =
  Array.fold_left
    (fun acc (i, _) -> if t.class_of.(i) = cls then i :: acc else acc)
    [] t.cands.(u)
  |> List.rev

let num_candidate_triples t = t.num_candidate_triples

let iter_candidate_triples t f =
  for u = t.u_lo to t.u_hi - 1 do
    Array.iter
      (fun (i, qs) ->
        Array.iteri (fun idx p -> if p > 0.0 then f (Triple.make ~u ~i ~t:(idx + 1)) p) qs)
      t.cands.(u)
  done

let rating t ~u ~i = Hashtbl.find_opt t.ratings ((u * t.num_items) + i)

let with_saturation_disabled t = { t with saturation = Array.make t.num_items 1.0 }

let with_prices t price =
  if Array.length price <> t.num_items then invalid_arg "Instance.with_prices: price rows";
  Array.iter
    (fun row ->
      if Array.length row <> t.horizon then invalid_arg "Instance.with_prices: price row length";
      Array.iter
        (fun p ->
          if (not (Float.is_finite p)) || p < 0.0 then
            invalid_arg "Instance.with_prices: prices must be finite and non-negative")
        row)
    price;
  { t with price = Array.map Array.copy price }

(* ----- user-sharded views ----- *)

type split_policy = [ `Proportional | `Water_filling ]

let user_range t = (t.u_lo, t.u_hi)

let view_triple_count t ~u_lo ~u_hi =
  let n = ref 0 in
  for u = u_lo to u_hi - 1 do
    Array.iter (fun (_, qs) -> Array.iter (fun p -> if p > 0.0 then incr n) qs) t.cands.(u)
  done;
  !n

(* Proportional split of one item's capacity across shard user counts:
   floor shares first, then the leftover units go to the shards of largest
   fractional remainder (ties to the lower shard index) — fully
   deterministic, and the shares always sum to the capacity. *)
let proportional_shares ~capacity ~user_counts ~num_users =
  let shards = Array.length user_counts in
  if num_users = 0 then Array.make shards capacity
  else begin
    let shares = Array.map (fun n_s -> capacity * n_s / num_users) user_counts in
    let leftover = capacity - Array.fold_left ( + ) 0 shares in
    let order = Array.init shards (fun s -> s) in
    (* descending remainder, ascending shard index on ties *)
    Array.sort
      (fun a b ->
        let ra = capacity * user_counts.(a) mod num_users
        and rb = capacity * user_counts.(b) mod num_users in
        if ra <> rb then compare rb ra else compare a b)
      order;
    for idx = 0 to min leftover shards - 1 do
      let s = order.(idx) in
      shares.(s) <- shares.(s) + 1
    done;
    shares
  end

let shard ?(policy = `Water_filling) ~shards t =
  if shards < 1 then invalid_arg "Instance.shard: need at least one shard";
  if t.u_lo <> 0 || t.u_hi <> t.num_users then
    invalid_arg "Instance.shard: cannot re-shard a shard view";
  let n = t.num_users in
  let base = n / shards and extra = n mod shards in
  let bounds =
    Array.init shards (fun s ->
        let lo = (s * base) + min s extra in
        let hi = lo + base + if s < extra then 1 else 0 in
        (lo, hi))
  in
  let user_counts = Array.map (fun (lo, hi) -> hi - lo) bounds in
  let budget_of_item =
    match policy with
    | `Water_filling ->
        (* optimistic: a shard may use an item up to min(q_i, shard users)
           — capacity counts distinct users, so no shard can exceed its
           user count anyway; global over-subscription is possible and is
           resolved by Shard_greedy's reconciliation round *)
        fun i -> Array.map (fun n_s -> min t.capacity.(i) n_s) user_counts
    | `Proportional ->
        (* conservative: shard budgets sum to exactly q_i, so the merged
           strategy can never over-subscribe (capacity may strand in
           shards that cannot use it) *)
        fun i -> proportional_shares ~capacity:t.capacity.(i) ~user_counts ~num_users:n
  in
  let budgets = Array.init t.num_items budget_of_item in
  Array.init shards (fun s ->
      let u_lo, u_hi = bounds.(s) in
      {
        t with
        capacity = Array.init t.num_items (fun i -> budgets.(i).(s));
        num_candidate_triples = view_triple_count t ~u_lo ~u_hi;
        u_lo;
        u_hi;
      })

let pp_stats ppf t =
  Format.fprintf ppf "users=%d items=%d classes=%d T=%d k=%d candidate-triples=%d" t.num_users
    t.num_items t.num_classes t.horizon t.display_limit t.num_candidate_triples
