module Err = Revmax_prelude.Err

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Candidate pairs live in one CSR structure shared by both storage
   backends: [row_off.(u) .. row_off.(u+1)) indexes user [u]'s candidate
   pairs (item-ascending), and a global {e pair id} [pid] addresses the
   per-pair facts. The heap backend keeps the adoption vectors as ordinary
   float arrays (plus the historical (u·num_items + i) hashtable for O(1)
   point lookups); the packed backend memory-maps them from a pack file,
   so a 10^6-user instance's O(users · degree · horizon) payload never
   enters the OCaml heap — only the O(num_items) item facts and the
   O(num_users) row offsets do. *)
type backend =
  | Heap_b of {
      items : int array; (* pid -> item id *)
      qs : float array array; (* pid -> adoption probabilities, length horizon *)
      q_index : (int, float array) Hashtbl.t; (* (u * num_items + i) -> probs *)
      ratings : (int, float) Hashtbl.t;
    }
  | Packed_b of {
      item : int_ba; (* pid -> item id *)
      q : float_ba; (* pid * horizon + (time - 1) -> probability *)
      rating : float_ba; (* pid -> rating, NaN = absent; length 0 = no ratings *)
    }

type t = {
  num_users : int;
  num_items : int;
  horizon : int;
  display_limit : int;
  class_of : int array;
  num_classes : int;
  class_sizes : int array;
  capacity : int array;
  saturation : float array;
  price : float array array;
  row_off : int array; (* num_users + 1 CSR offsets into the pair arrays *)
  backend : backend;
  num_candidate_triples : int;
  (* the view's user range [u_lo, u_hi); the full instance has [0, num_users).
     Views produced by [shard] share every array above except [capacity]
     (which holds the shard's capacity budget) — user ids stay global, so
     strategies planned on a view merge into the parent without renaming. *)
  u_lo : int;
  u_hi : int;
  (* constraint variants, sentinel-encoded so the plain REVMAX shape costs
     nothing: an empty [slot_mult] means unordered k-sets (no slates); a
     non-empty one has length [display_limit] and turns each (user,time)
     display into ordered slots, slot s scaling q(u,i,t) by
     [slot_mult.(s-1)]. [max_total = max_int] means no global quantity
     budget; anything else caps the total number of recommendations. *)
  slot_mult : float array;
  max_total : int;
}

exception Bad_field of string * string

let fail field msg = raise (Bad_field (field, msg))

(* shared between [create_checked] and the pack writer *)
let check_item_arrays ~num_items ~horizon ~class_of ~capacity ~saturation ~price =
  if Array.length class_of <> num_items then
    fail "class_of"
      (Printf.sprintf "length %d differs from num_items %d" (Array.length class_of) num_items);
  if Array.length capacity <> num_items then
    fail "capacity"
      (Printf.sprintf "length %d differs from num_items %d" (Array.length capacity) num_items);
  if Array.length saturation <> num_items then
    fail "saturation"
      (Printf.sprintf "length %d differs from num_items %d" (Array.length saturation) num_items);
  if Array.length price <> num_items then
    fail "price"
      (Printf.sprintf "%d rows differ from num_items %d" (Array.length price) num_items);
  Array.iteri
    (fun i c ->
      if c < 0 then fail "class_of" (Printf.sprintf "item %d has negative class id %d" i c))
    class_of;
  Array.iteri
    (fun i c ->
      if c < 0 then fail "capacity" (Printf.sprintf "item %d has negative capacity %d" i c))
    capacity;
  Array.iteri
    (fun i b ->
      if b < 0.0 || b > 1.0 || Float.is_nan b then
        fail "saturation" (Printf.sprintf "item %d: %g outside [0,1]" i b))
    saturation;
  Array.iteri
    (fun i row ->
      if Array.length row <> horizon then
        fail "price"
          (Printf.sprintf "item %d: row length %d differs from horizon %d" i (Array.length row)
             horizon);
      Array.iter
        (fun p ->
          if (not (Float.is_finite p)) || p < 0.0 then
            fail "price" (Printf.sprintf "item %d: price %g not finite and non-negative" i p))
        row)
    price

(* slate multipliers: one per ordered slot, finite, within [0,1] and
   non-increasing (position effects never help a lower slot — the shape
   the greedy slot auto-assignment and the Keerthi–Tomlin model assume) *)
let check_slot_mult ~display_limit mult =
  if Array.length mult <> display_limit then
    fail "slot_mult"
      (Printf.sprintf "length %d differs from display_limit %d" (Array.length mult) display_limit);
  Array.iteri
    (fun s m ->
      if (not (Float.is_finite m)) || m < 0.0 || m > 1.0 then
        fail "slot_mult" (Printf.sprintf "slot %d: multiplier %g outside [0,1]" (s + 1) m);
      if s > 0 && m > mult.(s - 1) then
        fail "slot_mult"
          (Printf.sprintf "slot %d: multiplier %g exceeds slot %d's %g (must be non-increasing)"
             (s + 1) m s mult.(s - 1)))
    mult

let check_max_total cap =
  if cap < 0 then fail "max_total" "quantity budget must be non-negative"

let create_checked ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity ~saturation
    ~price ?(ratings = []) ?slot_mult ?max_total ~adoption () =
  try
    if num_users < 0 then fail "num_users" "negative number of users";
    if num_items < 0 then fail "num_items" "negative number of items";
    if horizon < 1 then fail "horizon" "horizon must be at least 1";
    if display_limit < 1 then fail "display_limit" "display_limit must be at least 1";
    check_item_arrays ~num_items ~horizon ~class_of ~capacity ~saturation ~price;
    let slot_mult =
      match slot_mult with
      | None -> [||]
      | Some m ->
          check_slot_mult ~display_limit m;
          Array.copy m
    in
    let max_total =
      match max_total with
      | None -> max_int
      | Some cap ->
          check_max_total cap;
          cap
    in
    let num_classes = Array.fold_left (fun m c -> max m (c + 1)) 0 class_of in
    let class_sizes = Array.make num_classes 0 in
    Array.iter (fun c -> class_sizes.(c) <- class_sizes.(c) + 1) class_of;
    let q_index = Hashtbl.create (max 16 (List.length adoption)) in
    let buckets = Array.make num_users [] in
    let triples = ref 0 in
    List.iter
      (fun (u, i, qs) ->
        if u < 0 || u >= num_users || i < 0 || i >= num_items then
          fail "adoption" (Printf.sprintf "pair (%d, %d) out of range" u i);
        if Array.length qs <> horizon then
          fail "adoption"
            (Printf.sprintf "pair (%d, %d): vector length %d differs from horizon %d" u i
               (Array.length qs) horizon);
        Array.iter
          (fun p ->
            if p < 0.0 || p > 1.0 || Float.is_nan p then
              fail "adoption" (Printf.sprintf "pair (%d, %d): probability %g outside [0,1]" u i p))
          qs;
        let key = (u * num_items) + i in
        if Hashtbl.mem q_index key then
          fail "adoption" (Printf.sprintf "duplicate (user, item) pair (%d, %d)" u i);
        let qs = Array.copy qs in
        Hashtbl.replace q_index key qs;
        buckets.(u) <- (i, qs) :: buckets.(u);
        Array.iter (fun p -> if p > 0.0 then incr triples) qs)
      adoption;
    let rows =
      Array.map
        (fun l ->
          let a = Array.of_list l in
          Array.sort (fun (i1, _) (i2, _) -> compare i1 i2) a;
          a)
        buckets
    in
    let num_pairs = Array.fold_left (fun acc r -> acc + Array.length r) 0 rows in
    let row_off = Array.make (num_users + 1) 0 in
    let items = Array.make num_pairs 0 in
    let qs_arr = Array.make num_pairs [||] in
    let off = ref 0 in
    Array.iteri
      (fun u row ->
        row_off.(u) <- !off;
        Array.iter
          (fun (i, qv) ->
            items.(!off) <- i;
            qs_arr.(!off) <- qv;
            incr off)
          row)
      rows;
    row_off.(num_users) <- !off;
    let rating_tbl = Hashtbl.create (max 16 (List.length ratings)) in
    List.iter
      (fun (u, i, r) ->
        if u < 0 || u >= num_users || i < 0 || i >= num_items then
          fail "ratings" (Printf.sprintf "pair (%d, %d) out of range" u i);
        Hashtbl.replace rating_tbl ((u * num_items) + i) r)
      ratings;
    Ok
      {
        num_users;
        num_items;
        horizon;
        display_limit;
        class_of = Array.copy class_of;
        num_classes;
        class_sizes;
        capacity = Array.copy capacity;
        saturation = Array.copy saturation;
        price = Array.map Array.copy price;
        row_off;
        backend = Heap_b { items; qs = qs_arr; q_index; ratings = rating_tbl };
        num_candidate_triples = !triples;
        u_lo = 0;
        u_hi = num_users;
        slot_mult;
        max_total;
      }
  with Bad_field (field, msg) -> Error (Err.Invalid_instance { field; msg })

let create ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity ~saturation ~price
    ?ratings ?slot_mult ?max_total ~adoption () =
  match
    create_checked ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity ~saturation
      ~price ?ratings ?slot_mult ?max_total ~adoption ()
  with
  | Ok t -> t
  | Error e -> invalid_arg ("Instance.create: " ^ Err.message e)

let num_users t = t.num_users
let num_items t = t.num_items
let horizon t = t.horizon
let display_limit t = t.display_limit
let num_classes t = t.num_classes

let class_of t i = t.class_of.(i)
let class_size t c = t.class_sizes.(c)
let capacity t i = t.capacity.(i)
let saturation t i = t.saturation.(i)

let check_time t time =
  if time < 1 || time > t.horizon then invalid_arg "Instance: time step out of range"

let price t ~i ~time =
  check_time t time;
  t.price.(i).(time - 1)

let is_packed t = match t.backend with Heap_b _ -> false | Packed_b _ -> true

(* ----- pair-indexed access (the out-of-core hot path) ----- *)

let pair_count t = t.row_off.(t.num_users)

let pair_range t = (t.row_off.(t.u_lo), t.row_off.(t.u_hi))

let pair_item t pid =
  match t.backend with Heap_b h -> h.items.(pid) | Packed_b p -> p.item.{pid}

let pair_q t ~pid ~time =
  match t.backend with
  | Heap_b h -> h.qs.(pid).(time - 1)
  | Packed_b p -> p.q.{(pid * t.horizon) + time - 1}

(* binary search for item [i] inside user [u]'s item-ascending row *)
let pair_find t ~u ~i =
  let res = ref (-1) in
  let lo = ref t.row_off.(u) and hi = ref (t.row_off.(u + 1) - 1) in
  (match t.backend with
  | Heap_b h ->
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let x = h.items.(mid) in
        if x = i then begin
          res := mid;
          lo := !hi + 1
        end
        else if x < i then lo := mid + 1
        else hi := mid - 1
      done
  | Packed_b p ->
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let x = p.item.{mid} in
        if x = i then begin
          res := mid;
          lo := !hi + 1
        end
        else if x < i then lo := mid + 1
        else hi := mid - 1
      done);
  !res

(* largest u with row_off.(u) <= pid; pids are dense so this is total *)
let pair_user t pid =
  let lo = ref 0 and hi = ref (t.num_users - 1) and res = ref 0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.row_off.(mid) <= pid then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !res

let pair_row t u = (t.row_off.(u), t.row_off.(u + 1))

let iter_candidate_pairs t f =
  for u = t.u_lo to t.u_hi - 1 do
    for pid = t.row_off.(u) to t.row_off.(u + 1) - 1 do
      f ~u ~pid
    done
  done

let q t ~u ~i ~time =
  check_time t time;
  match t.backend with
  | Heap_b h -> (
      (* exception form instead of [find_opt]: no [Some] allocation on a hot
         oracle lookup *)
      match Hashtbl.find h.q_index ((u * t.num_items) + i) with
      | qs -> qs.(time - 1)
      | exception Not_found -> 0.0)
  | Packed_b p ->
      let pid = pair_find t ~u ~i in
      if pid < 0 then 0.0 else p.q.{(pid * t.horizon) + time - 1}

let is_candidate t ~u ~i =
  match t.backend with
  | Heap_b h -> Hashtbl.mem h.q_index ((u * t.num_items) + i)
  | Packed_b _ -> pair_find t ~u ~i >= 0

let candidates t u =
  let off = t.row_off.(u) in
  let n = t.row_off.(u + 1) - off in
  match t.backend with
  | Heap_b h -> Array.init n (fun k -> (h.items.(off + k), h.qs.(off + k)))
  | Packed_b p ->
      Array.init n (fun k ->
          let pid = off + k in
          (p.item.{pid}, Array.init t.horizon (fun d -> p.q.{(pid * t.horizon) + d})))

let candidate_items_in_class t ~u ~cls =
  let acc = ref [] in
  for pid = t.row_off.(u + 1) - 1 downto t.row_off.(u) do
    let i = pair_item t pid in
    if t.class_of.(i) = cls then acc := i :: !acc
  done;
  !acc

let num_candidate_triples t = t.num_candidate_triples

let iter_candidate_triples t f =
  for u = t.u_lo to t.u_hi - 1 do
    for pid = t.row_off.(u) to t.row_off.(u + 1) - 1 do
      let i = pair_item t pid in
      for time = 1 to t.horizon do
        let p = pair_q t ~pid ~time in
        if p > 0.0 then f (Triple.make ~u ~i ~t:time) p
      done
    done
  done

let rating t ~u ~i =
  match t.backend with
  | Heap_b h -> Hashtbl.find_opt h.ratings ((u * t.num_items) + i)
  | Packed_b p ->
      if Bigarray.Array1.dim p.rating = 0 then None
      else
        let pid = pair_find t ~u ~i in
        if pid < 0 then None
        else
          let r = p.rating.{pid} in
          if Float.is_nan r then None else Some r

(* ----- constraint variants: slates and quantity budgets ----- *)

let is_slate t = Array.length t.slot_mult > 0

let slot_multipliers t = if is_slate t then Some (Array.copy t.slot_mult) else None

(* position multiplier of 1-based [slot]; 1.0 on non-slate instances, so
   callers can fold it into q(u,i,t) unconditionally (q *. 1.0 is
   IEEE-exact, keeping the degenerate path bit-identical) *)
let slot_factor t ~slot =
  if not (is_slate t) then 1.0
  else begin
    if slot < 1 || slot > t.display_limit then invalid_arg "Instance.slot_factor: slot out of range";
    t.slot_mult.(slot - 1)
  end

let max_total t = if t.max_total = max_int then None else Some t.max_total

let max_total_cap t = t.max_total

let with_slate ?display_limit t mult =
  let display_limit = Option.value display_limit ~default:t.display_limit in
  (try
     if display_limit < 1 then fail "display_limit" "display_limit must be at least 1";
     check_slot_mult ~display_limit mult
   with Bad_field (field, msg) ->
     invalid_arg (Printf.sprintf "Instance.with_slate: %s: %s" field msg));
  { t with display_limit; slot_mult = Array.copy mult }

let with_max_total t cap =
  (try check_max_total cap
   with Bad_field (field, msg) ->
     invalid_arg (Printf.sprintf "Instance.with_max_total: %s: %s" field msg));
  { t with max_total = cap }

let without_quantity_budget t = { t with max_total = max_int }

let with_saturation_disabled t = { t with saturation = Array.make t.num_items 1.0 }

let with_prices t price =
  if Array.length price <> t.num_items then invalid_arg "Instance.with_prices: price rows";
  Array.iter
    (fun row ->
      if Array.length row <> t.horizon then invalid_arg "Instance.with_prices: price row length";
      Array.iter
        (fun p ->
          if (not (Float.is_finite p)) || p < 0.0 then
            invalid_arg "Instance.with_prices: prices must be finite and non-negative")
        row)
    price;
  { t with price = Array.map Array.copy price }

(* ----- user-sharded views ----- *)

type split_policy = [ `Proportional | `Water_filling ]

let user_range t = (t.u_lo, t.u_hi)

let view_triple_count t ~u_lo ~u_hi =
  let n = ref 0 in
  for u = u_lo to u_hi - 1 do
    for pid = t.row_off.(u) to t.row_off.(u + 1) - 1 do
      for time = 1 to t.horizon do
        if pair_q t ~pid ~time > 0.0 then incr n
      done
    done
  done;
  !n

(* Proportional split of one item's capacity across shard user counts:
   floor shares first, then the leftover units go to the shards of largest
   fractional remainder (ties to the lower shard index) — fully
   deterministic, and the shares always sum to the capacity. *)
let proportional_shares ~capacity ~user_counts ~num_users =
  let shards = Array.length user_counts in
  if num_users = 0 then
    (* all weights are zero, so largest-remainder degenerates; keep the
       exact-sum contract with an even split, remainder to the lower shard
       indices. (The old [Array.make shards capacity] handed every shard
       the full capacity — the shares summed to shards·q_i, not q_i.) *)
    Array.init shards (fun s ->
        (capacity / shards) + if s < capacity mod shards then 1 else 0)
  else begin
    let shares = Array.map (fun n_s -> capacity * n_s / num_users) user_counts in
    let leftover = capacity - Array.fold_left ( + ) 0 shares in
    let order = Array.init shards (fun s -> s) in
    (* descending remainder, ascending shard index on ties *)
    Array.sort
      (fun a b ->
        let ra = capacity * user_counts.(a) mod num_users
        and rb = capacity * user_counts.(b) mod num_users in
        if ra <> rb then compare rb ra else compare a b)
      order;
    for idx = 0 to min leftover shards - 1 do
      let s = order.(idx) in
      shares.(s) <- shares.(s) + 1
    done;
    shares
  end

let shard ?(policy = `Water_filling) ~shards t =
  if shards < 1 then invalid_arg "Instance.shard: need at least one shard";
  if t.u_lo <> 0 || t.u_hi <> t.num_users then
    invalid_arg "Instance.shard: cannot re-shard a shard view";
  let n = t.num_users in
  let base = n / shards and extra = n mod shards in
  let bounds =
    Array.init shards (fun s ->
        let lo = (s * base) + min s extra in
        let hi = lo + base + if s < extra then 1 else 0 in
        (lo, hi))
  in
  let user_counts = Array.map (fun (lo, hi) -> hi - lo) bounds in
  let budget_of_item =
    match policy with
    | `Water_filling ->
        (* optimistic: a shard may use an item up to min(q_i, shard users)
           — capacity counts distinct users, so no shard can exceed its
           user count anyway; global over-subscription is possible and is
           resolved by Shard_greedy's reconciliation round *)
        fun i -> Array.map (fun n_s -> min t.capacity.(i) n_s) user_counts
    | `Proportional ->
        (* conservative: shard budgets sum to exactly q_i, so the merged
           strategy can never over-subscribe (capacity may strand in
           shards that cannot use it) *)
        fun i -> proportional_shares ~capacity:t.capacity.(i) ~user_counts ~num_users:n
  in
  let budgets = Array.init t.num_items budget_of_item in
  (* the global quantity budget splits like an item capacity: water-filling
     hands each shard min(cap, its own selection ceiling) and lets the
     merge-time trim resolve over-subscription (the min is composition
     invariant, so hierarchical = flat splits see the same budgets);
     proportional shares sum to exactly the cap and never need a trim *)
  let quantity_budgets =
    if t.max_total = max_int then Array.make shards max_int
    else
      match policy with
      | `Water_filling ->
          Array.map
            (fun n_s -> min t.max_total (n_s * t.horizon * t.display_limit))
            user_counts
      | `Proportional -> proportional_shares ~capacity:t.max_total ~user_counts ~num_users:n
  in
  Array.init shards (fun s ->
      let u_lo, u_hi = bounds.(s) in
      {
        t with
        capacity = Array.init t.num_items (fun i -> budgets.(i).(s));
        num_candidate_triples = view_triple_count t ~u_lo ~u_hi;
        u_lo;
        u_hi;
        max_total = quantity_budgets.(s);
      })

(* ----- the pack file: an out-of-core instance representation -----

   Little-endian, 64-bit words. Layout:

     header        12 × i64 (see the slot list below)
     class_of      num_items × i64
     capacity      num_items × i64
     saturation    num_items × f64
     price         num_items · horizon × f64
     pair_q        num_pairs · horizon × f64     (streamed by the writer)
     pair_item     num_pairs × i64
     row_off       (num_users + 1) × i64
     pair_rating   num_pairs × f64               (only when has_ratings = 1)

   [of_mmap] reads the item-level sections and row offsets into ordinary
   heap arrays (they are O(num_items + num_users)) and memory-maps the
   three pair sections, which dominate the footprint. The endianness
   sentinel is verified through the same [Bigarray.int] mapped-read path
   the pair data uses, so a byte-order or word-size mismatch fails at open
   instead of corrupting silently. *)
module Pack = struct
  let magic = "REVMAXPK"
  let version = 1
  let sentinel = 0x0123456789ABCDEF

  (* header slots, i64 each; slot 0 holds the magic bytes *)
  let s_version = 1
  let s_sentinel = 2
  let s_num_users = 3
  let s_num_items = 4
  let s_horizon = 5
  let s_display_limit = 6
  let s_num_pairs = 7
  let s_num_triples = 8
  let s_has_ratings = 9

  (* constraint-variant slots (0 in packs written before they existed, which
     decodes as "no budget, no slate" — old packs stay readable): slot 10
     holds max_total + 1 (0 = unbounded); slot 11 flags a trailing
     display_limit × f64 slot-multiplier section. *)
  let s_max_total_plus1 = 10
  let s_has_slate = 11
  let header_words = 12
  let header_bytes = 8 * header_words

  type writer = {
    oc : out_channel;
    w_num_users : int;
    w_num_items : int;
    w_horizon : int;
    w_items : Buffer.t; (* pair item ids, i64, appended after the q stream *)
    w_ratings : Buffer.t; (* pair ratings, f64, NaN = absent *)
    w_row_off : int array;
    w_slot_mult : float array; (* empty = no slate section *)
    mutable w_next_user : int;
    mutable w_pairs : int;
    mutable w_triples : int;
    mutable w_has_ratings : bool;
    mutable w_closed : bool;
    b8 : Bytes.t;
  }

  let put_i64 w v =
    Bytes.set_int64_le w.b8 0 (Int64.of_int v);
    output_bytes w.oc w.b8

  let put_f64 w v =
    Bytes.set_int64_le w.b8 0 (Int64.bits_of_float v);
    output_bytes w.oc w.b8

  let buf_i64 buf b8 v =
    Bytes.set_int64_le b8 0 (Int64.of_int v);
    Buffer.add_bytes buf b8

  let buf_f64 buf b8 v =
    Bytes.set_int64_le b8 0 (Int64.bits_of_float v);
    Buffer.add_bytes buf b8

  let create_writer ~path ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity
      ~saturation ~price ?slot_mult ?max_total () =
    if num_users < 0 then invalid_arg "Instance.Pack.create_writer: negative number of users";
    if num_items < 0 then invalid_arg "Instance.Pack.create_writer: negative number of items";
    if horizon < 1 then invalid_arg "Instance.Pack.create_writer: horizon must be at least 1";
    if display_limit < 1 then
      invalid_arg "Instance.Pack.create_writer: display_limit must be at least 1";
    (try
       check_item_arrays ~num_items ~horizon ~class_of ~capacity ~saturation ~price;
       (match slot_mult with Some m -> check_slot_mult ~display_limit m | None -> ());
       match max_total with Some cap -> check_max_total cap | None -> ()
     with Bad_field (field, msg) ->
       invalid_arg (Printf.sprintf "Instance.Pack.create_writer: %s: %s" field msg));
    let oc = open_out_bin path in
    let w =
      {
        oc;
        w_num_users = num_users;
        w_num_items = num_items;
        w_horizon = horizon;
        w_items = Buffer.create 4096;
        w_ratings = Buffer.create 4096;
        w_row_off = Array.make (num_users + 1) 0;
        w_slot_mult = (match slot_mult with Some m -> Array.copy m | None -> [||]);
        w_next_user = 0;
        w_pairs = 0;
        w_triples = 0;
        w_has_ratings = false;
        w_closed = false;
        b8 = Bytes.create 8;
      }
    in
    output_string oc magic;
    put_i64 w version;
    put_i64 w sentinel;
    put_i64 w num_users;
    put_i64 w num_items;
    put_i64 w horizon;
    put_i64 w display_limit;
    (* num_pairs / num_triples / has_ratings patched by [finish] *)
    for _ = s_num_pairs to s_has_ratings do
      put_i64 w 0
    done;
    put_i64 w (match max_total with Some cap -> cap + 1 | None -> 0);
    put_i64 w (if Array.length w.w_slot_mult > 0 then 1 else 0);
    Array.iter (put_i64 w) class_of;
    Array.iter (put_i64 w) capacity;
    Array.iter (put_f64 w) saturation;
    Array.iter (fun row -> Array.iter (put_f64 w) row) price;
    w

  let add_user w ~u ?ratings row =
    if w.w_closed then invalid_arg "Instance.Pack.add_user: writer is closed";
    if u <> w.w_next_user then
      invalid_arg
        (Printf.sprintf "Instance.Pack.add_user: users must arrive in order (expected %d, got %d)"
           w.w_next_user u);
    (match ratings with
    | Some r when Array.length r <> Array.length row ->
        invalid_arg "Instance.Pack.add_user: ratings array must align with the candidate row"
    | _ -> ());
    let prev = ref (-1) in
    Array.iteri
      (fun k (i, qs) ->
        if i <= !prev || i < 0 || i >= w.w_num_items then
          invalid_arg
            (Printf.sprintf
               "Instance.Pack.add_user: user %d: items must be strictly ascending and in range" u);
        prev := i;
        if Array.length qs <> w.w_horizon then
          invalid_arg
            (Printf.sprintf "Instance.Pack.add_user: pair (%d, %d): vector length %d, horizon %d"
               u i (Array.length qs) w.w_horizon);
        Array.iter
          (fun p ->
            if p < 0.0 || p > 1.0 || Float.is_nan p then
              invalid_arg
                (Printf.sprintf "Instance.Pack.add_user: pair (%d, %d): probability outside [0,1]"
                   u i);
            if p > 0.0 then w.w_triples <- w.w_triples + 1;
            put_f64 w p)
          qs;
        buf_i64 w.w_items w.b8 i;
        (match ratings with
        | Some r -> (
            match r.(k) with
            | Some v ->
                w.w_has_ratings <- true;
                buf_f64 w.w_ratings w.b8 v
            | None -> buf_f64 w.w_ratings w.b8 Float.nan)
        | None -> buf_f64 w.w_ratings w.b8 Float.nan);
        w.w_pairs <- w.w_pairs + 1)
      row;
    w.w_next_user <- u + 1;
    w.w_row_off.(u + 1) <- w.w_pairs

  let finish w =
    if w.w_closed then invalid_arg "Instance.Pack.finish: writer is closed";
    if w.w_next_user <> w.w_num_users then
      invalid_arg
        (Printf.sprintf "Instance.Pack.finish: %d of %d users added" w.w_next_user w.w_num_users);
    w.w_closed <- true;
    Buffer.output_buffer w.oc w.w_items;
    Array.iter (put_i64 w) w.w_row_off;
    if w.w_has_ratings then Buffer.output_buffer w.oc w.w_ratings;
    Array.iter (put_f64 w) w.w_slot_mult;
    (* patch the deferred header slots *)
    seek_out w.oc (8 * s_num_pairs);
    put_i64 w w.w_pairs;
    put_i64 w w.w_triples;
    put_i64 w (if w.w_has_ratings then 1 else 0);
    close_out w.oc
end

let pack_to_file t path =
  if t.u_lo <> 0 || t.u_hi <> t.num_users then
    invalid_arg "Instance.pack_to_file: cannot pack a shard view";
  let w =
    Pack.create_writer ~path ~num_users:t.num_users ~num_items:t.num_items ~horizon:t.horizon
      ~display_limit:t.display_limit ~class_of:t.class_of ~capacity:t.capacity
      ~saturation:t.saturation ~price:t.price ?slot_mult:(slot_multipliers t)
      ?max_total:(max_total t) ()
  in
  for u = 0 to t.num_users - 1 do
    let row = candidates t u in
    let ratings = Array.map (fun (i, _) -> rating t ~u ~i) row in
    Pack.add_user w ~u ~ratings row
  done;
  Pack.finish w

let of_mmap_checked path =
  try
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    let file_size = (Unix.fstat fd).Unix.st_size in
    if file_size < Pack.header_bytes then fail "header" "file shorter than the pack header";
    let hdr = Bytes.create Pack.header_bytes in
    let rec really_read off len =
      if len > 0 then begin
        let k = Unix.read fd hdr off len in
        if k = 0 then fail "header" "unexpected end of file";
        really_read (off + k) (len - k)
      end
    in
    really_read 0 Pack.header_bytes;
    if Bytes.sub_string hdr 0 8 <> Pack.magic then fail "magic" "not a REVMAXPK pack file";
    let slot s = Int64.to_int (Bytes.get_int64_le hdr (8 * s)) in
    if slot Pack.s_version <> Pack.version then
      fail "version" (Printf.sprintf "unsupported pack version %d" (slot Pack.s_version));
    let num_users = slot Pack.s_num_users in
    let num_items = slot Pack.s_num_items in
    let horizon = slot Pack.s_horizon in
    let display_limit = slot Pack.s_display_limit in
    let num_pairs = slot Pack.s_num_pairs in
    let num_triples = slot Pack.s_num_triples in
    let has_ratings = slot Pack.s_has_ratings <> 0 in
    let max_total_plus1 = slot Pack.s_max_total_plus1 in
    let has_slate = slot Pack.s_has_slate <> 0 in
    if num_users < 0 || num_items < 0 || num_pairs < 0 || horizon < 1 || display_limit < 1 then
      fail "header" "dimensions out of range";
    if max_total_plus1 < 0 then fail "max_total" "quantity budget out of range";
    let expected_size =
      Pack.header_bytes
      + (8 * num_items * (3 + horizon))
      + (8 * num_pairs * (horizon + 1))
      + (8 * (num_users + 1))
      + (if has_ratings then 8 * num_pairs else 0)
      + if has_slate then 8 * display_limit else 0
    in
    if file_size <> expected_size then
      fail "size"
        (Printf.sprintf "file is %d bytes, header implies %d" file_size expected_size);
    let map_i64 pos dim : int_ba =
      if dim = 0 then Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0
      else
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout false [| dim |])
    in
    let map_f64 pos dim : float_ba =
      if dim = 0 then Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 0
      else
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.float64 Bigarray.c_layout false
             [| dim |])
    in
    (* verify the sentinel through the same mapped-int read path the pair
       data uses: catches byte-order and word-size mismatches at open *)
    let sent = map_i64 (8 * Pack.s_sentinel) 1 in
    if sent.{0} <> Pack.sentinel then
      fail "endianness" "pack file written with a different byte order or word size";
    let off_class = Pack.header_bytes in
    let off_cap = off_class + (8 * num_items) in
    let off_sat = off_cap + (8 * num_items) in
    let off_price = off_sat + (8 * num_items) in
    let off_q = off_price + (8 * num_items * horizon) in
    let off_item = off_q + (8 * num_pairs * horizon) in
    let off_row = off_item + (8 * num_pairs) in
    let off_rating = off_row + (8 * (num_users + 1)) in
    let off_slate = off_rating + if has_ratings then 8 * num_pairs else 0 in
    (* item-level facts and row offsets are O(items + users): copy them to
       heap arrays for ordinary array access *)
    let class_ba = map_i64 off_class num_items in
    let class_of = Array.init num_items (fun i -> class_ba.{i}) in
    let cap_ba = map_i64 off_cap num_items in
    let capacity = Array.init num_items (fun i -> cap_ba.{i}) in
    let sat_ba = map_f64 off_sat num_items in
    let saturation = Array.init num_items (fun i -> sat_ba.{i}) in
    let price_ba = map_f64 off_price (num_items * horizon) in
    let price =
      Array.init num_items (fun i -> Array.init horizon (fun d -> price_ba.{(i * horizon) + d}))
    in
    check_item_arrays ~num_items ~horizon ~class_of ~capacity ~saturation ~price;
    let row_ba = map_i64 off_row (num_users + 1) in
    let row_off = Array.init (num_users + 1) (fun u -> row_ba.{u}) in
    if row_off.(0) <> 0 then fail "row_off" "offsets must start at 0";
    for u = 0 to num_users - 1 do
      if row_off.(u + 1) < row_off.(u) then fail "row_off" "offsets must be non-decreasing"
    done;
    if row_off.(num_users) <> num_pairs then
      fail "row_off" "offsets must end at the pair count";
    let item = map_i64 off_item num_pairs in
    let q = map_f64 off_q (num_pairs * horizon) in
    let rating =
      if has_ratings then map_f64 off_rating num_pairs
      else Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 0
    in
    let slot_mult =
      if not has_slate then [||]
      else begin
        let ba = map_f64 off_slate display_limit in
        let m = Array.init display_limit (fun s -> ba.{s}) in
        check_slot_mult ~display_limit m;
        m
      end
    in
    (* one integrity pass over the mapped pair data: rows item-ascending
       and in range, probabilities in [0,1], and the triple count matches
       the header. Also pre-faults the pages the planner will touch. *)
    let triples = ref 0 in
    for u = 0 to num_users - 1 do
      let prev = ref (-1) in
      for pid = row_off.(u) to row_off.(u + 1) - 1 do
        let i = item.{pid} in
        if i <= !prev || i < 0 || i >= num_items then
          fail "pair_item" (Printf.sprintf "user %d: items not strictly ascending in range" u);
        prev := i;
        for d = 0 to horizon - 1 do
          let p = q.{(pid * horizon) + d} in
          if p < 0.0 || p > 1.0 || Float.is_nan p then
            fail "pair_q" (Printf.sprintf "pair (%d, %d): probability outside [0,1]" u i);
          if p > 0.0 then incr triples
        done
      done
    done;
    if !triples <> num_triples then
      fail "num_candidate_triples"
        (Printf.sprintf "header claims %d candidate triples, data holds %d" num_triples !triples);
    let num_classes = Array.fold_left (fun m c -> max m (c + 1)) 0 class_of in
    let class_sizes = Array.make num_classes 0 in
    Array.iter (fun c -> class_sizes.(c) <- class_sizes.(c) + 1) class_of;
    Ok
      {
        num_users;
        num_items;
        horizon;
        display_limit;
        class_of;
        num_classes;
        class_sizes;
        capacity;
        saturation;
        price;
        row_off;
        backend = Packed_b { item; q; rating };
        num_candidate_triples = num_triples;
        u_lo = 0;
        u_hi = num_users;
        slot_mult;
        max_total = (if max_total_plus1 = 0 then max_int else max_total_plus1 - 1);
      }
  with
  | Bad_field (field, msg) -> Error (Err.Invalid_instance { field; msg })
  | Unix.Unix_error (e, _, _) ->
      Error (Err.Invalid_instance { field = "file"; msg = Unix.error_message e })
  | Sys_error msg -> Error (Err.Invalid_instance { field = "file"; msg })

let of_mmap path =
  match of_mmap_checked path with
  | Ok t -> t
  | Error e -> invalid_arg ("Instance.of_mmap: " ^ Err.message e)

let pp_stats ppf t =
  Format.fprintf ppf "users=%d items=%d classes=%d T=%d k=%d candidate-triples=%d" t.num_users
    t.num_items t.num_classes t.horizon t.display_limit t.num_candidate_triples;
  if is_slate t then
    Format.fprintf ppf " slate=[%s]"
      (String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%g") t.slot_mult)));
  if t.max_total <> max_int then Format.fprintf ppf " max-total=%d" t.max_total
