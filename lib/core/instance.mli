(** A REVMAX problem instance (Problem 1 of the paper): users, items grouped
    into competition classes, a short discrete horizon [1..T], a display
    limit [k], per-item capacities and saturation factors, exogenous prices
    [p(i,t)], and sparse primitive adoption probabilities [q(u,i,t)].

    Only (user, item) pairs with a positive adoption probability at some time
    are *candidates*; everything else is implicitly zero and never enters any
    algorithm's ground set — the paper's "number of triples with positive q
    is the true input size" (§6). Optionally a predicted rating [r̂_ui] per
    candidate pair is carried for the TopRA baseline.

    Time steps are 1-based ([1..horizon]) throughout the public API, matching
    the paper's [\[T\] = {1, …, T}]. *)

type t

val create :
  num_users:int ->
  num_items:int ->
  horizon:int ->
  display_limit:int ->
  class_of:int array ->
  capacity:int array ->
  saturation:float array ->
  price:float array array ->
  ?ratings:(int * int * float) list ->
  ?slot_mult:float array ->
  ?max_total:int ->
  adoption:(int * int * float array) list ->
  unit ->
  t
(** [create] validates and freezes an instance.

    - [class_of], [capacity], [saturation] have length [num_items]; classes
      are dense ids starting at 0; [saturation.(i) ∈ [0,1]]; capacities are
      non-negative.
    - [price.(i)] has length [horizon] and holds [p(i, 1) … p(i, T)]; prices
      must be finite and non-negative.
    - [adoption] lists candidate pairs as [(u, i, qs)] with [qs] of length
      [horizon], [qs.(t-1) = q(u,i,t) ∈ [0,1]]; at most one entry per (u,i).
    - [ratings] optionally attaches predicted ratings to (u,i) pairs.
    - [slot_mult] turns each (user, time) display into an ordered ad
      {e slate}: length [display_limit], non-increasing, each in [[0,1]];
      a recommendation in slot [s] has its [q(u,i,t)] scaled by
      [slot_mult.(s-1)]. Omitted = the paper's unordered k-set.
    - [max_total] imposes a global {e quantity budget}: the strategy may
      hold at most this many recommendations in total. Omitted = unbounded.

    Raises [Invalid_argument] on any violation. *)

val create_checked :
  num_users:int ->
  num_items:int ->
  horizon:int ->
  display_limit:int ->
  class_of:int array ->
  capacity:int array ->
  saturation:float array ->
  price:float array array ->
  ?ratings:(int * int * float) list ->
  ?slot_mult:float array ->
  ?max_total:int ->
  adoption:(int * int * float array) list ->
  unit ->
  (t, Revmax_prelude.Err.t) result
(** Like {!create} but never raises: any violation yields
    [Error (Invalid_instance {field; msg})] naming the rejected field
    ([num_users], [horizon], [class_of], [price], [adoption], …) and a
    per-element diagnostic. *)

(** {1 Dimensions and parameters} *)

val num_users : t -> int
val num_items : t -> int

val horizon : t -> int
(** [T]; valid time steps are [1..T]. *)

val display_limit : t -> int
(** [k]: maximum number of items shown to a user per time step. *)

val num_classes : t -> int

val class_of : t -> int -> int
(** Competition class of an item. *)

val class_size : t -> int -> int
(** Number of items in a class. *)

val capacity : t -> int -> int
(** [q_i]: maximum number of distinct users the item may be recommended to. *)

val saturation : t -> int -> float
(** [β_i]: the item's saturation factor. *)

val price : t -> i:int -> time:int -> float
(** [p(i,t)] for [time ∈ 1..T]. *)

(** {1 Constraint variants}

    Two generalizations from the related work, both off by default:
    {e slates} (Keerthi–Tomlin: the (user, time) display is an ordered
    list of slots with position-dependent adoption multipliers) and a
    {e quantity budget} (Teng et al.: a global cap on the total number of
    recommendations — a uniform matroid intersected with the display
    partition matroid). Both are carried by the instance and enforced by
    [Strategy.validate]; {!shard} splits the quantity budget across views
    like an item capacity. *)

val is_slate : t -> bool
(** Whether the instance carries slate position multipliers. *)

val slot_multipliers : t -> float array option
(** The position multipliers, one per 1-based slot ([Array.length =
    display_limit]), non-increasing; [None] on plain instances. *)

val slot_factor : t -> slot:int -> float
(** Multiplier of 1-based [slot]; [1.0] on non-slate instances (so callers
    may fold it into [q] unconditionally). Raises [Invalid_argument] when
    the slot is out of range on a slate instance. *)

val max_total : t -> int option
(** The global quantity budget, if any. *)

val max_total_cap : t -> int
(** Sentinel form of {!max_total}: the cap, or [max_int] when unbounded —
    branch-free for hot-path comparisons against [Strategy.size]. *)

val with_slate : ?display_limit:int -> t -> float array -> t
(** A copy with slate position multipliers attached (shares the adoption
    data). [display_limit], when given, also replaces [k] — the
    multipliers must have that length. Same validation as {!create}'s
    [slot_mult]; raises [Invalid_argument] on violation. *)

val with_max_total : t -> int -> t
(** A copy with a global quantity budget attached (shares the adoption
    data). Raises [Invalid_argument] when negative. *)

val without_quantity_budget : t -> t
(** A copy with the quantity budget removed. *)

(** {1 Adoption probabilities} *)

val q : t -> u:int -> i:int -> time:int -> float
(** Primitive adoption probability [q(u,i,t)]; 0 for non-candidate pairs. *)

val is_candidate : t -> u:int -> i:int -> bool

val candidates : t -> int -> (int * float array) array
(** [candidates t u]: the user's candidate items with their per-time
    probability vectors (index [t-1] is time [t]). Do not mutate. *)

val candidate_items_in_class : t -> u:int -> cls:int -> int list
(** Candidate items of user [u] belonging to class [cls]. *)

val num_candidate_triples : t -> int
(** Number of triples with [q(u,i,t) > 0] — the input size of Table 1. *)

val iter_candidate_triples : t -> (Triple.t -> float -> unit) -> unit
(** Visit every positive-probability triple with its probability. *)

val rating : t -> u:int -> i:int -> float option
(** Predicted rating [r̂_ui] if attached. *)

(** {1 Pair-indexed access}

    Candidate (user, item) pairs are stored in one CSR structure: user
    [u]'s pairs occupy the dense {e pair id} range given by the row
    offsets, item-ascending within the row. Pair ids are global (stable
    across {!shard} views) and strictly increasing in (user, item)
    lexicographic order, which makes them usable as deterministic heap
    tie-breakers. The pair-indexed accessors below are the out-of-core
    hot path: they read flat storage directly — no hashtable, and for a
    memory-mapped instance no OCaml-heap data at all. *)

val pair_count : t -> int
(** Total number of candidate pairs of the full instance. *)

val pair_range : t -> int * int
(** The view's pair-id range [(lo, hi)) — [(0, pair_count t)] for a full
    instance. *)

val pair_item : t -> int -> int
(** The item of a pair id. *)

val pair_user : t -> int -> int
(** The user of a pair id (binary search over the row offsets; intended
    for cold paths — hot loops should carry the user alongside). *)

val pair_q : t -> pid:int -> time:int -> float
(** [q(u,i,t)] addressed by pair id — no bounds or candidacy check beyond
    the array access itself. *)

val pair_find : t -> u:int -> i:int -> int
(** The pair id of [(u, i)], or [-1] when the pair is not a candidate. *)

val pair_row : t -> int -> int * int
(** [pair_row t u]: the pair-id range [(lo, hi)) of user [u]'s candidate
    row. *)

val iter_candidate_pairs : t -> (u:int -> pid:int -> unit) -> unit
(** Visit the view's candidate pairs in pair-id order (users ascending,
    items ascending within a user). *)

val is_packed : t -> bool
(** Whether the instance is backed by a memory-mapped pack file. *)

(** {1 Out-of-core packs}

    A {e pack} is an on-disk instance representation (little-endian,
    64-bit words) whose pair-level payload — adoption vectors, pair item
    ids, optional ratings — is memory-mapped by {!of_mmap} instead of
    loaded: only the O(num_items) item facts and O(num_users) row offsets
    enter the OCaml heap, so a 10^6-user × 10^4-item instance plans
    without materializing gigabytes of boxed candidates. The mapped path
    yields bit-identical values to the heap path: the same IEEE doubles
    are stored and read back verbatim. *)

module Pack : sig
  type writer
  (** A streaming pack writer: candidate rows are written user by user,
      so the full instance never needs to exist in memory. *)

  val create_writer :
    path:string ->
    num_users:int ->
    num_items:int ->
    horizon:int ->
    display_limit:int ->
    class_of:int array ->
    capacity:int array ->
    saturation:float array ->
    price:float array array ->
    ?slot_mult:float array ->
    ?max_total:int ->
    unit ->
    writer
  (** Validates the item-level arrays (same checks as {!create}) and
      writes the pack header and item sections. [slot_mult] / [max_total]
      persist the constraint variants (packs written without them read
      back as plain instances, and old packs remain readable). Raises
      [Invalid_argument] on violation. *)

  val add_user : writer -> u:int -> ?ratings:float option array -> (int * float array) array -> unit
  (** [add_user w ~u row] appends user [u]'s candidate row — items
      strictly ascending, each with a length-[horizon] probability vector
      in [[0,1]] — streaming the probabilities straight to disk. Users
      must arrive exactly in order [0 .. num_users-1] (empty rows
      included). [ratings], when given, aligns with [row] and attaches
      predicted ratings per candidate pair. *)

  val finish : writer -> unit
  (** Writes the deferred trailer sections (pair items, row offsets,
      ratings), patches the header counts, and closes the file. Raises
      [Invalid_argument] unless every user was added. *)
end

val pack_to_file : t -> string -> unit
(** Serialize a (full, heap- or pack-backed) instance to a pack file.
    Raises [Invalid_argument] on a shard view. Ratings are carried per
    candidate pair; a rating attached to a non-candidate pair is not
    representable in the pack and is dropped. *)

val of_mmap : string -> t
(** Open a pack file as a memory-mapped instance. Validates the header,
    the byte order (through the same mapped-read path the planner uses),
    the row structure and every probability in one pass — which also
    pre-faults the pages — then maps the pair sections read-only.
    Raises [Invalid_argument] on any violation. *)

val of_mmap_checked : string -> (t, Revmax_prelude.Err.t) result
(** Like {!of_mmap} but never raises: violations yield
    [Error (Invalid_instance {field; msg})]. *)

(** {1 Derived views} *)

val with_saturation_disabled : t -> t
(** A copy whose saturation factors are all 1 (shares the underlying adoption
    data) — used by the GlobalNo variant, which plans as if there were no
    saturation. O(num_items). *)

val with_prices : t -> float array array -> t
(** A copy with a replaced price matrix (same shape checks as [create]) —
    used by the random-price extension to plan against mean prices. *)

(** {1 User-sharded views}

    The only coupling between users in Problem 1 is the capacity
    constraint: the display limit [k] binds per (user, time) while [q_i]
    is global. A {e shard view} therefore restricts an instance to a
    contiguous user range and equips it with a per-shard {e capacity
    budget}; planning on the views is embarrassingly parallel and only
    capacity needs global reconciliation (see {!Shard_greedy}). *)

type split_policy = [ `Proportional | `Water_filling ]
(** How the global capacities [q_i] are divided into per-shard budgets:

    - [`Water_filling] (the default): every shard may use an item up to
      [min q_i (shard user count)] — optimistic, since capacity counts
      distinct users and a shard can never need more than its user count.
      Budgets may over-subscribe [q_i] globally; {!Shard_greedy}'s
      reconciliation round resolves the contention.
    - [`Proportional]: [q_i] is split proportionally to shard user counts
      with deterministic largest-remainder rounding, so budgets sum to
      exactly [q_i] and the merged plan can never over-subscribe — at the
      cost of stranding capacity in shards that cannot use it. *)

val proportional_shares : capacity:int -> user_counts:int array -> num_users:int -> int array
(** The largest-remainder split behind [`Proportional]: floor shares
    first, then the leftover units go to the shards of largest fractional
    remainder, ties broken towards the lower shard index. Shares always
    sum to exactly [capacity]; with [num_users = 0] the split degenerates
    to an even division with the remainder on the lower shard indices.
    Exposed for tests and capacity diagnostics. *)

val shard : ?policy:split_policy -> shards:int -> t -> t array
(** [shard ~shards t] partitions the users into [shards] contiguous,
    near-equal views (earlier shards take the remainder). Views are
    zero-copy — they share every underlying array of [t] except the
    capacity vector, which holds the shard's budget under [policy] — and
    keep {e global} user ids, so strategies planned on a view merge into
    the parent instance without renaming. [iter_candidate_triples] and
    [num_candidate_triples] reflect only the view's users; point lookups
    ([q], [price], [candidates], …) remain valid for any user id.

    A quantity budget splits across views like an item capacity:
    [`Water_filling] hands each shard [min max_total (its selection
    ceiling)] — over-subscription is resolved by the planner's merge-time
    trim — while [`Proportional] shares sum to exactly the cap. Slate
    multipliers are global and shared by every view.

    With [shards = 1] the single view's behaviour is indistinguishable
    from [t] under both policies. Raises [Invalid_argument] when
    [shards < 1] or [t] is itself a shard view. *)

val user_range : t -> int * int
(** The view's user range [(lo, hi)) — [(0, num_users)] for a full
    instance. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line instance statistics (users/items/classes/triples). *)
