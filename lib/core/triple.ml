type t = { u : int; i : int; t : int }

let make ~u ~i ~t = { u; i; t }

let compare a b =
  let c = Int.compare a.u b.u in
  if c <> 0 then c
  else begin
    let c = Int.compare a.t b.t in
    if c <> 0 then c else Int.compare a.i b.i
  end

let equal a b = a.u = b.u && a.i = b.i && a.t = b.t

(* chains are kept sorted by (time, item) ascending; [chain_before a b] iff
   [a] stays in front when [b] is inserted after it *)
let chain_before a b = a.t < b.t || (a.t = b.t && a.i <= b.i)

let chain_insert l z =
  let rec go = function
    | [] -> [ z ]
    | x :: tl -> if chain_before x z then x :: go tl else z :: x :: tl
  in
  go l

let pp ppf z = Format.fprintf ppf "(%d, %d, %d)" z.u z.i z.t

let to_string z = Format.asprintf "%a" pp z
