(** The per-time-step ("local") greedy algorithms of §5.2.

    {b SL-Greedy} (Algorithm 2) finalizes all recommendations for time step
    1, then 2, …, then T: within each round a heap keyed by marginal revenue
    w.r.t. the global partial strategy is consumed with lazy-forward
    refreshes, exactly as in G-Greedy but restricted to one time step.

    {b RL-Greedy} samples N distinct permutations of [\[T\]] (chronological
    order is not always optimal — Example 4 of the paper), runs the same
    per-step greedy in each order, and keeps the strategy of largest
    expected revenue. The paper uses N = 20.

    All entry points accept [?budget] with the anytime semantics of
    {!Greedy.run}: consulted between selections (and between RL-Greedy
    permutations), at least one unit of progress guaranteed, best-so-far
    valid strategy returned with [truncated = true] on expiry. *)

type stats = Greedy.stats = {
  marginal_evaluations : int;
  pops : int;
  selected : int;
  truncated : bool;
}

val greedy_in_order :
  ?with_saturation:bool ->
  ?evaluator:[ `Incremental | `Naive ] ->
  ?allowed:(Triple.t -> bool) ->
  ?base:Strategy.t ->
  ?trace:(Greedy.trace_point -> unit) ->
  ?budget:Revmax_prelude.Budget.t ->
  Instance.t ->
  order:int list ->
  Strategy.t * stats
(** Run the per-time-step greedy over the time steps listed in [order]
    (each in [1..T], no duplicates). [allowed], [base], [trace], [budget]
    and [evaluator] behave as in {!Greedy.run}; the [trace] running revenue
    restarts from the base's revenue and increases by fresh marginals,
    showing the "segments" of Figure 4 at round switches. *)

val sl_greedy :
  ?with_saturation:bool ->
  ?evaluator:[ `Incremental | `Naive ] ->
  ?allowed:(Triple.t -> bool) ->
  ?base:Strategy.t ->
  ?trace:(Greedy.trace_point -> unit) ->
  ?budget:Revmax_prelude.Budget.t ->
  Instance.t ->
  Strategy.t * stats
(** [greedy_in_order] with the chronological order [1; 2; …; T]. *)

val rl_greedy :
  ?with_saturation:bool ->
  ?evaluator:[ `Incremental | `Naive ] ->
  ?permutations:int ->
  ?allowed:(Triple.t -> bool) ->
  ?base:Strategy.t ->
  ?budget:Revmax_prelude.Budget.t ->
  ?jobs:int ->
  Instance.t ->
  Revmax_prelude.Rng.t ->
  Strategy.t * stats
(** Randomized local greedy with [permutations] (default 20) distinct sampled
    orders of [\[T\]] — fewer when T! is smaller. Statistics are summed over
    all executions. The chronological order is always among the sampled ones,
    so RL-Greedy never returns less revenue than SL-Greedy on the same
    instance. The first permutation always runs to completion even under an
    expired [budget]; later permutations are budgeted and skipped once the
    shared budget is exhausted.

    The permutation sweep runs on up to [jobs] domains (default
    {!Revmax_prelude.Pool.default_jobs}): orders are sampled from [rng]
    before fan-out and the best-strategy / statistics reduction happens in
    permutation order, so without a budget the returned strategy and
    statistics are identical for every [jobs] value. With a shared [budget]
    and [jobs > 1], which late permutations get skipped is timing-dependent
    (the result is still a valid strategy, as under any wall-clock
    budget). *)
