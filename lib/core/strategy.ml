module Err = Revmax_prelude.Err

type t = {
  inst : Instance.t;
  triples : (Triple.t, unit) Hashtbl.t;
  (* (u * num_classes + cls) -> array-backed chain with cached aggregates.
     Deliberately a hashtable, not a flat array: [iter_chains] visits in
     table order and [Revenue.total] folds a float sum over that visit, so
     the container must preserve the historical iteration order exactly. *)
  chains : (int, Chain.t) Hashtbl.t;
  (* The feasibility bookkeeping lives in flat int arrays sized by the
     instance dimensions — these are probed on [add]/[can_add], which sit
     on the accept path of every greedy selection, and an array read
     replaces a hashtable probe (plus, for the per-item user sets, a
     second-level probe). *)
  display : int array; (* (u * (horizon+1)) + time -> #items displayed *)
  (* Per-pair repetition counts, keyed by the instance's CSR pair ids so
     the array is O(view candidate pairs), not O(num_items · num_users) —
     a dense (i, u) grid would be 80 GB at 10^6 users × 10^4 items. Pairs
     outside the view's pair-id range (a base strategy's out-of-view
     triples) or without a candidate pair at all spill into the overflow
     table, which stays empty on every planner path. *)
  pair_reps : int array; (* (pid - plo) -> #triples of this candidate (user, item) pair *)
  pair_overflow : (int, int) Hashtbl.t; (* (i * num_users) + u for out-of-range pairs *)
  plo : int;
  phi : int;
  item_distinct : int array; (* item -> #distinct users holding it *)
  (* slate bookkeeping, touched only when the instance carries position
     multipliers: the 1-based slot each member occupies, and per
     ((u * (horizon+1) + time) * (k+1) + slot) occupancy counts (sparse —
     O(members), not O(users · horizon · k)). On plain instances both
     tables stay empty and no [add]/[remove] path reads them. *)
  slot_of_tbl : (Triple.t, int) Hashtbl.t;
  slot_occ : (int, int) Hashtbl.t;
  mutable cardinality : int;
}

let create inst =
  let plo, phi = Instance.pair_range inst in
  {
    inst;
    triples = Hashtbl.create 256;
    chains = Hashtbl.create 256;
    display = Array.make (Instance.num_users inst * (Instance.horizon inst + 1)) 0;
    pair_reps = Array.make (phi - plo) 0;
    pair_overflow = Hashtbl.create 16;
    plo;
    phi;
    item_distinct = Array.make (Instance.num_items inst) 0;
    slot_of_tbl = Hashtbl.create 16;
    slot_occ = Hashtbl.create 16;
    cardinality = 0;
  }

(* add [delta] to the pair's repetition count, returning the previous
   count (the 0 -> 1 and 1 -> 0 edges drive [item_distinct]) *)
let bump_pair t ~u ~i delta =
  let pid = Instance.pair_find t.inst ~u ~i in
  if pid >= t.plo && pid < t.phi then begin
    let k = pid - t.plo in
    let prev = t.pair_reps.(k) in
    t.pair_reps.(k) <- prev + delta;
    prev
  end
  else begin
    let key = (i * Instance.num_users t.inst) + u in
    let prev = match Hashtbl.find_opt t.pair_overflow key with Some n -> n | None -> 0 in
    let next = prev + delta in
    if next = 0 then Hashtbl.remove t.pair_overflow key
    else Hashtbl.replace t.pair_overflow key next;
    prev
  end

let pair_reps_count t ~u ~i =
  let pid = Instance.pair_find t.inst ~u ~i in
  if pid >= t.plo && pid < t.phi then t.pair_reps.(pid - t.plo)
  else
    match Hashtbl.find_opt t.pair_overflow ((i * Instance.num_users t.inst) + u) with
    | Some n -> n
    | None -> 0

let instance t = t.inst

let size t = t.cardinality

let mem t z = Hashtbl.mem t.triples z

let chain_key t (z : Triple.t) = (z.u * Instance.num_classes t.inst) + Instance.class_of t.inst z.i

let display_key t (z : Triple.t) = (z.u * (Instance.horizon t.inst + 1)) + z.t

let range_error t (z : Triple.t) =
  if z.u < 0 || z.u >= Instance.num_users t.inst then Some "user id outside the instance"
  else if z.i < 0 || z.i >= Instance.num_items t.inst then Some "item id outside the instance"
  else if z.t < 1 || z.t > Instance.horizon t.inst then Some "time step outside the horizon"
  else None

let occ_key t (z : Triple.t) slot =
  (display_key t z * (Instance.display_limit t.inst + 1)) + slot

let occ_count t key = match Hashtbl.find_opt t.slot_occ key with Some n -> n | None -> 0

(* the slot an auto-assigning add would take: the lowest unoccupied slot of
   the (u, time) display, or slot k when the display is already full (the
   add is then reported by [violations] as display + slot-conflict
   witnesses, like an over-limit add on a plain instance). Deterministic,
   and optimal under the non-increasing multipliers [Instance] enforces. *)
let next_free_slot t (z : Triple.t) =
  let k = Instance.display_limit t.inst in
  let rec scan s =
    if s > k then k else if occ_count t (occ_key t z s) = 0 then s else scan (s + 1)
  in
  scan 1

let slot_of t z = Hashtbl.find_opt t.slot_of_tbl z

let slot_occupied t (z : Triple.t) ~slot = occ_count t (occ_key t z slot) > 0

let effective_q t (z : Triple.t) =
  let q = Instance.q t.inst ~u:z.u ~i:z.i ~time:z.t in
  if not (Instance.is_slate t.inst) then q
  else
    let slot = match slot_of t z with Some s -> s | None -> next_free_slot t z in
    Instance.slot_factor t.inst ~slot *. q

let add_unchecked ?slot t (z : Triple.t) =
  Hashtbl.replace t.triples z ();
  let slate = Instance.is_slate t.inst in
  let qz =
    if not slate then None
    else begin
      let s = match slot with Some s -> s | None -> next_free_slot t z in
      Hashtbl.replace t.slot_of_tbl z s;
      let key = occ_key t z s in
      Hashtbl.replace t.slot_occ key (occ_count t key + 1);
      Some (Instance.slot_factor t.inst ~slot:s *. Instance.q t.inst ~u:z.u ~i:z.i ~time:z.t)
    end
  in
  let ck = chain_key t z in
  let chain =
    match Hashtbl.find_opt t.chains ck with
    | Some c -> c
    | None ->
        let c = Chain.create t.inst in
        Hashtbl.replace t.chains ck c;
        c
  in
  Chain.insert ?qz chain z;
  let dk = display_key t z in
  t.display.(dk) <- t.display.(dk) + 1;
  if bump_pair t ~u:z.u ~i:z.i 1 = 0 then t.item_distinct.(z.i) <- t.item_distinct.(z.i) + 1;
  t.cardinality <- t.cardinality + 1

(* the malformed-triple checks shared by [add] and [add_result]: a bad
   [slot] argument is a caller bug (raises either way); a range or
   duplicate problem is strategy state and comes back as a result *)
let precheck ?slot t (z : Triple.t) =
  (match slot with
  | Some s when s < 1 || s > Instance.display_limit t.inst ->
      invalid_arg "Strategy.add: slot outside 1..display_limit"
  | Some _ when not (Instance.is_slate t.inst) ->
      invalid_arg "Strategy.add: slot given on a non-slate instance"
  | _ -> ());
  match range_error t z with
  | Some msg ->
      Error (Err.Invalid_strategy [ Err.Triple_out_of_range { u = z.u; i = z.i; t = z.t; msg } ])
  | None ->
      if Hashtbl.mem t.triples z then
        Error (Err.Invalid_strategy [ Err.Duplicate_triple { u = z.u; i = z.i; t = z.t } ])
      else Ok ()

let add_result ?slot t (z : Triple.t) =
  match precheck ?slot t z with
  | Error _ as e -> e
  | Ok () ->
      (* unlike [add], the checked variant also guards the global quantity
         budget: exceeding it is never useful to a loader or caller that
         asked for a result, and the typed witness names the overshoot *)
      let cap = Instance.max_total_cap t.inst in
      if t.cardinality >= cap then
        Error (Err.Invalid_strategy [ Err.Quantity_budget { count = t.cardinality + 1; cap } ])
      else Ok (add_unchecked ?slot t z)

let add ?slot t z =
  match precheck ?slot t z with
  | Ok () -> add_unchecked ?slot t z
  | Error (Err.Invalid_strategy (Err.Duplicate_triple _ :: _)) ->
      invalid_arg "Strategy.add: duplicate triple"
  | Error (Err.Invalid_strategy (Err.Triple_out_of_range _ :: _)) ->
      invalid_arg "Strategy: triple out of range"
  | Error e -> invalid_arg (Err.message e)

let remove t z =
  if not (Hashtbl.mem t.triples z) then invalid_arg "Strategy.remove: absent triple";
  Hashtbl.remove t.triples z;
  (match Hashtbl.find_opt t.slot_of_tbl z with
  | None -> ()
  | Some s ->
      Hashtbl.remove t.slot_of_tbl z;
      let key = occ_key t z s in
      let n = occ_count t key - 1 in
      if n = 0 then Hashtbl.remove t.slot_occ key else Hashtbl.replace t.slot_occ key n);
  let ck = chain_key t z in
  (match Hashtbl.find_opt t.chains ck with
  | None -> invalid_arg "Strategy.remove: chain entry missing"
  | Some chain ->
      (* removes exactly one occurrence; raises if the chain lost track of
         the triple instead of silently no-opping on a phantom removal *)
      Chain.remove chain z;
      if Chain.length chain = 0 then Hashtbl.remove t.chains ck);
  let dk = display_key t z in
  t.display.(dk) <- t.display.(dk) - 1;
  if bump_pair t ~u:z.u ~i:z.i (-1) = 1 then t.item_distinct.(z.i) <- t.item_distinct.(z.i) - 1;
  t.cardinality <- t.cardinality - 1

let to_list t =
  Hashtbl.fold (fun z () acc -> z :: acc) t.triples [] |> List.sort Triple.compare

let of_list inst l =
  let t = create inst in
  List.iter (add t) l;
  t

(* preserves slate slot assignments exactly — [of_list] would re-derive
   them by auto-assignment in list order, which coincides only when the
   source was itself built in order *)
let copy t =
  let fresh = create t.inst in
  List.iter (fun z -> add ?slot:(slot_of t z) fresh z) (to_list t);
  fresh

let chain_view t ~u ~cls = Hashtbl.find_opt t.chains ((u * Instance.num_classes t.inst) + cls)

let chain t ~u ~cls =
  match chain_view t ~u ~cls with None -> [] | Some c -> Chain.to_list c

let chain_of_triple t (z : Triple.t) = chain t ~u:z.u ~cls:(Instance.class_of t.inst z.i)

let chain_view_of_triple t (z : Triple.t) =
  chain_view t ~u:z.u ~cls:(Instance.class_of t.inst z.i)

let chain_size t ~u ~cls =
  match chain_view t ~u ~cls with None -> 0 | Some c -> Chain.length c

let iter_chains t f = Hashtbl.iter (fun _ c -> f c) t.chains

(* the three feasibility probes below run once per heap pop in heap modes
   without their own mirrors; each is a single flat array read *)
let display_count t ~u ~time = t.display.((u * (Instance.horizon t.inst + 1)) + time)

let item_user_count t i = t.item_distinct.(i)

let item_has_user t ~i ~u = pair_reps_count t ~u ~i > 0

let can_add t (z : Triple.t) =
  (not (mem t z))
  && t.cardinality < Instance.max_total_cap t.inst
  && display_count t ~u:z.u ~time:z.t < Instance.display_limit t.inst
  && (item_has_user t ~i:z.i ~u:z.u || item_user_count t z.i < Instance.capacity t.inst z.i)

let is_valid_display_only t =
  let k = Instance.display_limit t.inst in
  Array.for_all (fun d -> d <= k) t.display

let has_slot_conflict t = Hashtbl.fold (fun _ n acc -> acc || n > 1) t.slot_occ false

let is_valid t =
  is_valid_display_only t
  && t.cardinality <= Instance.max_total_cap t.inst
  && (not (has_slot_conflict t))
  && begin
       let ok = ref true in
       Array.iteri (fun i n -> if n > Instance.capacity t.inst i then ok := false) t.item_distinct;
       !ok
     end

let violations t =
  let k = Instance.display_limit t.inst in
  let stride = Instance.horizon t.inst + 1 in
  (* deterministic witness set — ascending index order matches the sorted
     order the hashtable-backed implementation produced: every display
     violation by (user, time), then every slate slot conflict by
     (user, time, slot), then every capacity violation by item, then the
     quantity-budget breach, if any, last *)
  let display = ref [] in
  for dk = Array.length t.display - 1 downto 0 do
    let count = t.display.(dk) in
    if count > k then
      display := Err.Display_limit { u = dk / stride; time = dk mod stride; count; limit = k } :: !display
  done;
  let conflicts =
    Hashtbl.fold (fun key n acc -> if n > 1 then key :: acc else acc) t.slot_occ []
    |> List.sort compare
    |> List.map (fun key ->
           let dk = key / (k + 1) and slot = key mod (k + 1) in
           Err.Slot_conflict { u = dk / stride; time = dk mod stride; slot })
  in
  let capacity = ref [] in
  for i = Array.length t.item_distinct - 1 downto 0 do
    let n = t.item_distinct.(i) in
    if n > Instance.capacity t.inst i then
      capacity := Err.Capacity { item = i; distinct_users = n; capacity = Instance.capacity t.inst i } :: !capacity
  done;
  let quantity =
    let cap = Instance.max_total_cap t.inst in
    if t.cardinality > cap then [ Err.Quantity_budget { count = t.cardinality; cap } ] else []
  in
  !display @ conflicts @ !capacity @ quantity

let validate t =
  match violations t with [] -> Ok () | vs -> Error (Err.Invalid_strategy vs)

let repeat_histogram t =
  let hist = Array.make (Instance.horizon t.inst) 0 in
  let tally count =
    if count > 0 then begin
      let idx = min count (Array.length hist) - 1 in
      hist.(idx) <- hist.(idx) + 1
    end
  in
  Array.iter tally t.pair_reps;
  Hashtbl.iter (fun _ count -> tally count) t.pair_overflow;
  hist

let item_recommendations_up_to t ~i ~time =
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (z : Triple.t) () ->
      if z.i = i && z.t <= time then begin
        let prev = try Hashtbl.find out z.u with Not_found -> [] in
        Hashtbl.replace out z.u (z :: prev)
      end)
    t.triples;
  Hashtbl.iter
    (fun u l -> Hashtbl.replace out u (List.sort (fun (a : Triple.t) b -> compare a.t b.t) l))
    out;
  out

let pp ppf t =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Triple.pp)
    (to_list t)
