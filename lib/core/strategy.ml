module Err = Revmax_prelude.Err

type t = {
  inst : Instance.t;
  triples : (Triple.t, unit) Hashtbl.t;
  (* (u * num_classes + cls) -> array-backed chain with cached aggregates.
     Deliberately a hashtable, not a flat array: [iter_chains] visits in
     table order and [Revenue.total] folds a float sum over that visit, so
     the container must preserve the historical iteration order exactly. *)
  chains : (int, Chain.t) Hashtbl.t;
  (* The feasibility bookkeeping lives in flat int arrays sized by the
     instance dimensions — these are probed on [add]/[can_add], which sit
     on the accept path of every greedy selection, and an array read
     replaces a hashtable probe (plus, for the per-item user sets, a
     second-level probe). *)
  display : int array; (* (u * (horizon+1)) + time -> #items displayed *)
  (* Per-pair repetition counts, keyed by the instance's CSR pair ids so
     the array is O(view candidate pairs), not O(num_items · num_users) —
     a dense (i, u) grid would be 80 GB at 10^6 users × 10^4 items. Pairs
     outside the view's pair-id range (a base strategy's out-of-view
     triples) or without a candidate pair at all spill into the overflow
     table, which stays empty on every planner path. *)
  pair_reps : int array; (* (pid - plo) -> #triples of this candidate (user, item) pair *)
  pair_overflow : (int, int) Hashtbl.t; (* (i * num_users) + u for out-of-range pairs *)
  plo : int;
  phi : int;
  item_distinct : int array; (* item -> #distinct users holding it *)
  mutable cardinality : int;
}

let create inst =
  let plo, phi = Instance.pair_range inst in
  {
    inst;
    triples = Hashtbl.create 256;
    chains = Hashtbl.create 256;
    display = Array.make (Instance.num_users inst * (Instance.horizon inst + 1)) 0;
    pair_reps = Array.make (phi - plo) 0;
    pair_overflow = Hashtbl.create 16;
    plo;
    phi;
    item_distinct = Array.make (Instance.num_items inst) 0;
    cardinality = 0;
  }

(* add [delta] to the pair's repetition count, returning the previous
   count (the 0 -> 1 and 1 -> 0 edges drive [item_distinct]) *)
let bump_pair t ~u ~i delta =
  let pid = Instance.pair_find t.inst ~u ~i in
  if pid >= t.plo && pid < t.phi then begin
    let k = pid - t.plo in
    let prev = t.pair_reps.(k) in
    t.pair_reps.(k) <- prev + delta;
    prev
  end
  else begin
    let key = (i * Instance.num_users t.inst) + u in
    let prev = match Hashtbl.find_opt t.pair_overflow key with Some n -> n | None -> 0 in
    let next = prev + delta in
    if next = 0 then Hashtbl.remove t.pair_overflow key
    else Hashtbl.replace t.pair_overflow key next;
    prev
  end

let pair_reps_count t ~u ~i =
  let pid = Instance.pair_find t.inst ~u ~i in
  if pid >= t.plo && pid < t.phi then t.pair_reps.(pid - t.plo)
  else
    match Hashtbl.find_opt t.pair_overflow ((i * Instance.num_users t.inst) + u) with
    | Some n -> n
    | None -> 0

let instance t = t.inst

let size t = t.cardinality

let mem t z = Hashtbl.mem t.triples z

let chain_key t (z : Triple.t) = (z.u * Instance.num_classes t.inst) + Instance.class_of t.inst z.i

let display_key t (z : Triple.t) = (z.u * (Instance.horizon t.inst + 1)) + z.t

let range_error t (z : Triple.t) =
  if z.u < 0 || z.u >= Instance.num_users t.inst then Some "user id outside the instance"
  else if z.i < 0 || z.i >= Instance.num_items t.inst then Some "item id outside the instance"
  else if z.t < 1 || z.t > Instance.horizon t.inst then Some "time step outside the horizon"
  else None

let add_unchecked t (z : Triple.t) =
  Hashtbl.replace t.triples z ();
  let ck = chain_key t z in
  let chain =
    match Hashtbl.find_opt t.chains ck with
    | Some c -> c
    | None ->
        let c = Chain.create t.inst in
        Hashtbl.replace t.chains ck c;
        c
  in
  Chain.insert chain z;
  let dk = display_key t z in
  t.display.(dk) <- t.display.(dk) + 1;
  if bump_pair t ~u:z.u ~i:z.i 1 = 0 then t.item_distinct.(z.i) <- t.item_distinct.(z.i) + 1;
  t.cardinality <- t.cardinality + 1

let add_result t (z : Triple.t) =
  match range_error t z with
  | Some msg ->
      Error (Err.Invalid_strategy [ Err.Triple_out_of_range { u = z.u; i = z.i; t = z.t; msg } ])
  | None ->
      if Hashtbl.mem t.triples z then
        Error (Err.Invalid_strategy [ Err.Duplicate_triple { u = z.u; i = z.i; t = z.t } ])
      else Ok (add_unchecked t z)

let add t z =
  match add_result t z with
  | Ok () -> ()
  | Error (Err.Invalid_strategy (Err.Duplicate_triple _ :: _)) ->
      invalid_arg "Strategy.add: duplicate triple"
  | Error (Err.Invalid_strategy (Err.Triple_out_of_range _ :: _)) ->
      invalid_arg "Strategy: triple out of range"
  | Error e -> invalid_arg (Err.message e)

let remove t z =
  if not (Hashtbl.mem t.triples z) then invalid_arg "Strategy.remove: absent triple";
  Hashtbl.remove t.triples z;
  let ck = chain_key t z in
  (match Hashtbl.find_opt t.chains ck with
  | None -> invalid_arg "Strategy.remove: chain entry missing"
  | Some chain ->
      (* removes exactly one occurrence; raises if the chain lost track of
         the triple instead of silently no-opping on a phantom removal *)
      Chain.remove chain z;
      if Chain.length chain = 0 then Hashtbl.remove t.chains ck);
  let dk = display_key t z in
  t.display.(dk) <- t.display.(dk) - 1;
  if bump_pair t ~u:z.u ~i:z.i (-1) = 1 then t.item_distinct.(z.i) <- t.item_distinct.(z.i) - 1;
  t.cardinality <- t.cardinality - 1

let to_list t =
  Hashtbl.fold (fun z () acc -> z :: acc) t.triples [] |> List.sort Triple.compare

let of_list inst l =
  let t = create inst in
  List.iter (add t) l;
  t

let copy t = of_list t.inst (to_list t)

let chain_view t ~u ~cls = Hashtbl.find_opt t.chains ((u * Instance.num_classes t.inst) + cls)

let chain t ~u ~cls =
  match chain_view t ~u ~cls with None -> [] | Some c -> Chain.to_list c

let chain_of_triple t (z : Triple.t) = chain t ~u:z.u ~cls:(Instance.class_of t.inst z.i)

let chain_view_of_triple t (z : Triple.t) =
  chain_view t ~u:z.u ~cls:(Instance.class_of t.inst z.i)

let chain_size t ~u ~cls =
  match chain_view t ~u ~cls with None -> 0 | Some c -> Chain.length c

let iter_chains t f = Hashtbl.iter (fun _ c -> f c) t.chains

(* the three feasibility probes below run once per heap pop in heap modes
   without their own mirrors; each is a single flat array read *)
let display_count t ~u ~time = t.display.((u * (Instance.horizon t.inst + 1)) + time)

let item_user_count t i = t.item_distinct.(i)

let item_has_user t ~i ~u = pair_reps_count t ~u ~i > 0

let can_add t (z : Triple.t) =
  (not (mem t z))
  && display_count t ~u:z.u ~time:z.t < Instance.display_limit t.inst
  && (item_has_user t ~i:z.i ~u:z.u || item_user_count t z.i < Instance.capacity t.inst z.i)

let is_valid_display_only t =
  let k = Instance.display_limit t.inst in
  Array.for_all (fun d -> d <= k) t.display

let is_valid t =
  is_valid_display_only t
  && begin
       let ok = ref true in
       Array.iteri (fun i n -> if n > Instance.capacity t.inst i then ok := false) t.item_distinct;
       !ok
     end

let violations t =
  let k = Instance.display_limit t.inst in
  let stride = Instance.horizon t.inst + 1 in
  (* deterministic witness set — ascending index order matches the sorted
     order the hashtable-backed implementation produced: every display
     violation by (user, time), then every capacity violation by item *)
  let display = ref [] in
  for dk = Array.length t.display - 1 downto 0 do
    let count = t.display.(dk) in
    if count > k then
      display := Err.Display_limit { u = dk / stride; time = dk mod stride; count; limit = k } :: !display
  done;
  let capacity = ref [] in
  for i = Array.length t.item_distinct - 1 downto 0 do
    let n = t.item_distinct.(i) in
    if n > Instance.capacity t.inst i then
      capacity := Err.Capacity { item = i; distinct_users = n; capacity = Instance.capacity t.inst i } :: !capacity
  done;
  !display @ !capacity

let validate t =
  match violations t with [] -> Ok () | vs -> Error (Err.Invalid_strategy vs)

let repeat_histogram t =
  let hist = Array.make (Instance.horizon t.inst) 0 in
  let tally count =
    if count > 0 then begin
      let idx = min count (Array.length hist) - 1 in
      hist.(idx) <- hist.(idx) + 1
    end
  in
  Array.iter tally t.pair_reps;
  Hashtbl.iter (fun _ count -> tally count) t.pair_overflow;
  hist

let item_recommendations_up_to t ~i ~time =
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (z : Triple.t) () ->
      if z.i = i && z.t <= time then begin
        let prev = try Hashtbl.find out z.u with Not_found -> [] in
        Hashtbl.replace out z.u (z :: prev)
      end)
    t.triples;
  Hashtbl.iter
    (fun u l -> Hashtbl.replace out u (List.sort (fun (a : Triple.t) b -> compare a.t b.t) l))
    out;
  out

let pp ppf t =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Triple.pp)
    (to_list t)
