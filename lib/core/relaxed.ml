let effective_probability ?(oracle = Capacity_oracle.prob_capacity_free) s z =
  (* qS comes from the chain's cached aggregates (O(log L) lookup), so the
     local search's value oracle no longer re-derives every probability *)
  let q = Revenue.dynamic_probability_in s z in
  if q <= 0.0 then 0.0 else q *. oracle s z

let total ?oracle s =
  let inst = Strategy.instance s in
  List.fold_left
    (fun acc (z : Triple.t) ->
      acc +. (Instance.price inst ~i:z.i ~time:z.t *. effective_probability ?oracle s z))
    0.0 (Strategy.to_list s)
