module Rng = Revmax_prelude.Rng

type algo = allowed:(Triple.t -> bool) -> base:Strategy.t -> Instance.t -> Strategy.t

let windows ~horizon ~cutoffs =
  let rec go lo prev = function
    | [] -> if lo <= horizon then [ (lo, horizon) ] else []
    | c :: rest ->
        (match prev with
        | Some p when c = p ->
            invalid_arg (Printf.sprintf "Rolling.windows: duplicate cut-off %d" c)
        | _ -> ());
        if c < lo || c > horizon then
          invalid_arg "Rolling.windows: cut-offs must be ascending and inside the horizon";
        (* c = horizon is fine: the trailing window is simply empty *)
        (lo, c) :: go (c + 1) (Some c) rest
  in
  go 1 None cutoffs

let run algo inst ~cutoffs =
  let ws = windows ~horizon:(Instance.horizon inst) ~cutoffs in
  List.fold_left
    (fun base (lo, hi) ->
      algo ~allowed:(fun (z : Triple.t) -> z.t >= lo && z.t <= hi) ~base inst)
    (Strategy.create inst) ws

let g_greedy ~allowed ~base inst = fst (Greedy.run ~allowed ~base inst)

let rl_greedy ?permutations ~seed () ~allowed ~base inst =
  let rng = Rng.create seed in
  fst (Local_greedy.rl_greedy ?permutations ~allowed ~base inst rng)
