module Budget = Revmax_prelude.Budget

type anytime_result = {
  strategy : Strategy.t;
  value : float;
  nodes : int;  (** search-tree nodes expanded *)
  truncated : bool;
}

let brute_force_anytime ?(max_ground = 18) ?budget inst =
  let ground = ref [] in
  Instance.iter_candidate_triples inst (fun z _ -> ground := z :: !ground);
  let ground = Array.of_list !ground in
  if Array.length ground > max_ground then
    invalid_arg
      (Printf.sprintf "Exact.brute_force: %d candidate triples exceed the limit of %d"
         (Array.length ground) max_ground);
  let s = Strategy.create inst in
  let best = ref [] and best_value = ref 0.0 in
  let nodes = ref 0 in
  let truncated = ref false in
  let out_of_budget () =
    match budget with
    | Some b when !nodes > 1 && Budget.exhausted b ->
        truncated := true;
        true
    | _ -> false
  in
  (* depth-first over include/exclude decisions; [acc] is Rev of current S,
     maintained incrementally through marginals. An exhausted budget prunes
     the remaining subtree; the incumbent is always a valid strategy. *)
  let rec go idx acc =
    incr nodes;
    if acc > !best_value then begin
      best_value := acc;
      (* remember slot assignments with the incumbent: on slate instances
         the DFS's auto-assigned slots depend on insertion order, and the
         accumulated value was computed at those slots *)
      best := List.map (fun z -> (z, Strategy.slot_of s z)) (Strategy.to_list s)
    end;
    if idx < Array.length ground && not (out_of_budget ()) then begin
      let z = ground.(idx) in
      (* exclude *)
      go (idx + 1) acc;
      (* include, if valid *)
      if Strategy.can_add s z && not (out_of_budget ()) then begin
        if not (Instance.is_slate inst) then begin
          let gain = Revenue.marginal_incremental s z in
          (match budget with Some b -> Budget.spend b 1 | None -> ());
          Strategy.add s z;
          go (idx + 1) (acc +. gain);
          Strategy.remove s z
        end
        else
          (* slate: the slot a triple takes scales its effective
             probability and its competition on display mates, so the
             optimum must branch over every free slot of the display, not
             just the canonical lowest one *)
          for slot = 1 to Instance.display_limit inst do
            if (not (Strategy.slot_occupied s z ~slot)) && not (out_of_budget ()) then begin
              (match budget with Some b -> Budget.spend b 1 | None -> ());
              let before = Revenue.total_incremental s in
              Strategy.add ~slot s z;
              go (idx + 1) (acc +. (Revenue.total_incremental s -. before));
              Strategy.remove s z
            end
          done
      end
    end
  in
  go 0 0.0;
  let winner = Strategy.create inst in
  List.iter (fun (z, slot) -> Strategy.add ?slot winner z) !best;
  { strategy = winner; value = !best_value; nodes = !nodes; truncated = !truncated }

let brute_force ?max_ground ?budget inst =
  let r = brute_force_anytime ?max_ground ?budget inst in
  (r.strategy, r.value)

let solve_t1 inst =
  if Instance.horizon inst <> 1 then invalid_arg "Exact.solve_t1: horizon must be 1";
  let edges = ref [] in
  Instance.iter_candidate_triples inst (fun z q ->
      let w = Instance.price inst ~i:z.i ~time:1 *. q in
      edges := (z.u, z.i, w) :: !edges);
  let dcs =
    Revmax_flow.Max_dcs.solve
      {
        left = Instance.num_users inst;
        right = Instance.num_items inst;
        left_bound = Array.make (Instance.num_users inst) (Instance.display_limit inst);
        right_bound = Array.init (Instance.num_items inst) (Instance.capacity inst);
        edges = Array.of_list !edges;
      }
  in
  let s = Strategy.create inst in
  Array.iter (fun (u, i, _w) -> Strategy.add s (Triple.make ~u ~i ~t:1)) dcs.chosen;
  (s, dcs.weight)
