module Rng = Revmax_prelude.Rng

type t =
  | G_greedy
  | Global_no
  | Sl_greedy
  | Rl_greedy of int
  | Top_revenue
  | Top_rating

let name = function
  | G_greedy -> "GG"
  | Global_no -> "GG-No"
  | Sl_greedy -> "SLG"
  | Rl_greedy _ -> "RLG"
  | Top_revenue -> "TopRev"
  | Top_rating -> "TopRat"

let run_anytime ?budget algo inst ~seed =
  match algo with
  | G_greedy ->
      let s, st = Greedy.run ?budget inst in
      (s, st.Greedy.truncated)
  | Global_no ->
      let s, st = Greedy.run ~with_saturation:false ?budget inst in
      (s, st.Greedy.truncated)
  | Sl_greedy ->
      let s, st = Local_greedy.sl_greedy ?budget inst in
      (s, st.Greedy.truncated)
  | Rl_greedy n ->
      let s, st = Local_greedy.rl_greedy ~permutations:n ?budget inst (Rng.create seed) in
      (s, st.Greedy.truncated)
  (* the sort-based baselines are effectively instantaneous and ignore the
     budget; they never truncate *)
  | Top_revenue -> (Baselines.top_revenue inst, false)
  | Top_rating -> (Baselines.top_rating inst, false)

let run ?budget algo inst ~seed = fst (run_anytime ?budget algo inst ~seed)

let default_suite = [ G_greedy; Global_no; Rl_greedy 20; Sl_greedy; Top_revenue; Top_rating ]

let parse s =
  let lower = String.lowercase_ascii (String.trim s) in
  match lower with
  | "gg" -> Some G_greedy
  | "gg-no" | "ggno" | "globalno" -> Some Global_no
  | "slg" | "sl-greedy" -> Some Sl_greedy
  | "rlg" | "rl-greedy" -> Some (Rl_greedy 20)
  | "toprev" | "topre" -> Some Top_revenue
  | "toprat" | "topra" -> Some Top_rating
  | _ ->
      (* rlg:N *)
      if String.length lower > 4 && String.sub lower 0 4 = "rlg:" then
        match int_of_string_opt (String.sub lower 4 (String.length lower - 4)) with
        | Some n when n > 0 -> Some (Rl_greedy n)
        | _ -> None
      else None
