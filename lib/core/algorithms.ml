module Rng = Revmax_prelude.Rng

type t =
  | G_greedy
  | Global_no
  | Sl_greedy
  | Rl_greedy of int
  | Sharded_greedy of int
  | Top_revenue
  | Top_rating

let name = function
  | G_greedy -> "GG"
  | Global_no -> "GG-No"
  | Sl_greedy -> "SLG"
  | Rl_greedy _ -> "RLG"
  | Sharded_greedy _ -> "GG-Sh"
  | Top_revenue -> "TopRev"
  | Top_rating -> "TopRat"

let run_anytime ?budget algo inst ~seed =
  match algo with
  | G_greedy ->
      let s, st = Greedy.run ?budget inst in
      (s, st.Greedy.truncated)
  | Global_no ->
      let s, st = Greedy.run ~with_saturation:false ?budget inst in
      (s, st.Greedy.truncated)
  | Sl_greedy ->
      let s, st = Local_greedy.sl_greedy ?budget inst in
      (s, st.Greedy.truncated)
  | Rl_greedy n ->
      let s, st = Local_greedy.rl_greedy ~permutations:n ?budget inst (Rng.create seed) in
      (s, st.Greedy.truncated)
  | Sharded_greedy n ->
      (* n = 0 is the "decide at run time" sentinel produced by parsing a
         bare "gg-sh": resolving here (not at parse time) lets a later
         [Shard_greedy.set_default_shards] — e.g. the CLI's --shards flag,
         whose term may evaluate after the algorithm argument — take
         effect *)
      let shards = if n > 0 then n else Shard_greedy.default_shards () in
      let s, st = Shard_greedy.solve ~shards ?budget inst in
      (s, st.Shard_greedy.truncated)
  (* the sort-based baselines are effectively instantaneous and ignore the
     budget; they never truncate *)
  | Top_revenue -> (Baselines.top_revenue inst, false)
  | Top_rating -> (Baselines.top_rating inst, false)

let run ?budget algo inst ~seed = fst (run_anytime ?budget algo inst ~seed)

let default_suite = [ G_greedy; Global_no; Rl_greedy 20; Sl_greedy; Top_revenue; Top_rating ]

let parse s =
  let lower = String.lowercase_ascii (String.trim s) in
  match lower with
  | "gg" -> Some G_greedy
  | "gg-no" | "ggno" | "globalno" -> Some Global_no
  | "slg" | "sl-greedy" -> Some Sl_greedy
  | "rlg" | "rl-greedy" -> Some (Rl_greedy 20)
  | "toprev" | "topre" -> Some Top_revenue
  | "toprat" | "topra" -> Some Top_rating
  | "gg-sh" | "ggsh" | "sharded" -> Some (Sharded_greedy 0)
  | _ ->
      (* rlg:N / gg-sh:N *)
      let suffixed prefix =
        let p = String.length prefix in
        if String.length lower > p && String.sub lower 0 p = prefix then
          int_of_string_opt (String.sub lower p (String.length lower - p))
        else None
      in
      (match suffixed "rlg:" with
      | Some n when n > 0 -> Some (Rl_greedy n)
      | Some _ -> None
      | None -> (
          match suffixed "gg-sh:" with
          | Some n when n > 0 -> Some (Sharded_greedy n)
          | Some _ -> None
          | None -> None))
