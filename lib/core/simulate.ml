module Rng = Revmax_prelude.Rng
module Mc = Revmax_stats.Mc
module Metrics = Revmax_prelude.Metrics

(* atomic, so per-world increments from parallel domains are lossless and
   the total is jobs-invariant *)
let c_worlds = Metrics.counter "simulate.worlds"

(* Draw the desire coins of a chain, then find the earliest time step whose
   only desired triple also passes its saturation coin. *)
let simulate_chain inst chain rng =
  let desires =
    List.map (fun (z : Triple.t) -> (z, Rng.bernoulli rng (Instance.q inst ~u:z.u ~i:z.i ~time:z.t))) chain
  in
  (* the adoption candidate is the unique desired triple at the earliest time
     carrying any desire; competition kills simultaneous desires *)
  let earliest =
    List.fold_left
      (fun acc ((z : Triple.t), desired) ->
        if not desired then acc
        else match acc with Some (tm, _) when tm < z.t -> acc | Some (tm, _) when tm = z.t -> Some (tm, None)
                          | _ -> Some (z.t, Some z))
      None desires
  in
  match earliest with
  | None | Some (_, None) -> None
  | Some (_, Some z) ->
      let m = Revenue.memory ~chain ~time:z.t in
      let sat = if m = 0.0 then 1.0 else Instance.saturation inst z.i ** m in
      if Rng.bernoulli rng sat then Some z else None

let iter_chains s f =
  let inst = Strategy.instance s in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (z : Triple.t) ->
      let cls = Instance.class_of inst z.i in
      let key = (z.u * Instance.num_classes inst) + cls in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        f (Strategy.chain s ~u:z.u ~cls)
      end)
    (Strategy.to_list s)

let revenue_once s rng =
  Metrics.incr c_worlds;
  let inst = Strategy.instance s in
  let acc = ref 0.0 in
  iter_chains s (fun chain ->
      match simulate_chain inst chain rng with
      | None -> ()
      | Some z -> acc := !acc +. Instance.price inst ~i:z.i ~time:z.t);
  !acc

(* [Strategy.t] is read-only here (iter_chains only reads the chain arrays),
   so worlds can be simulated on parallel domains; per-world streams come
   from Mc's splitting, keeping the estimate bit-identical across jobs. *)
let estimate_revenue ?jobs s ~samples rng =
  Mc.estimate ?jobs ~samples rng (fun rng -> revenue_once s rng)

type sales_report = { revenue : float; adoptions : Triple.t list; stockouts : int }

let run_with_stock s rng =
  let inst = Strategy.instance s in
  (* simulate every chain, collect would-be adoptions, then replay them in
     time order against finite stock *)
  let would_adopt = ref [] in
  iter_chains s (fun chain ->
      match simulate_chain inst chain rng with
      | None -> ()
      | Some z -> would_adopt := z :: !would_adopt);
  let arr = Array.of_list !would_adopt in
  Rng.shuffle rng arr (* random order within a time step *);
  let ordered = Array.to_list arr |> List.stable_sort (fun (a : Triple.t) b -> compare a.t b.t) in
  let stock = Hashtbl.create 32 in
  let stock_of i =
    match Hashtbl.find_opt stock i with
    | Some s -> s
    | None ->
        let s = Instance.capacity inst i in
        Hashtbl.replace stock i s;
        s
  in
  let revenue = ref 0.0 and adoptions = ref [] and stockouts = ref 0 in
  List.iter
    (fun (z : Triple.t) ->
      let s = stock_of z.i in
      if s > 0 then begin
        Hashtbl.replace stock z.i (s - 1);
        revenue := !revenue +. Instance.price inst ~i:z.i ~time:z.t;
        adoptions := z :: !adoptions
      end
      else incr stockouts)
    ordered;
  { revenue = !revenue; adoptions = List.rev !adoptions; stockouts = !stockouts }
