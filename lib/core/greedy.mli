(** The Global Greedy algorithm (G-Greedy, Algorithm 1 of §5.1): a
    hill-climber over the whole ground set [U × I × \[T\]] that repeatedly
    adds the feasible triple of largest positive marginal revenue, with the
    paper's two implementation-level optimizations — the two-level heap data
    structure and Minoux's lazy-forward evaluation, whose soundness rests on
    the submodularity of [Rev] (Theorem 2).

    Variants used by the experiments:
    - [~with_saturation:false] is the {b GlobalNo} baseline of §6: marginal
      revenue is computed as if [β_i = 1] everywhere (the output is then
      evaluated under the true saturation factors by the caller);
    - [~heap:`Giant] replaces the two-level structure with one flat heap
      (same output, different constants) — the [abl-heap] ablation;
    - [~lazy_forward:false] eagerly refreshes every affected candidate after
      each selection (same output, many more marginal evaluations);
    - [~evaluator:`Naive] scores marginals with the O(L²) reference oracle
      {!Revenue.marginal} instead of the O(L) incremental engine
      {!Revenue.marginal_incremental} (same output up to floating-point
      rounding) — the baseline of the greedy-throughput benchmark;
    - [~allowed] and [~base] support the §6.3 gradual-price-availability
      setting through {!Rolling}: selection is restricted to allowed
      triples while the committed [base] strategy contributes to chains and
      constraints. *)

type stats = {
  marginal_evaluations : int;  (** marginal-revenue evaluations *)
  pops : int;  (** heap roots examined *)
  selected : int;  (** triples added to the strategy *)
}

val run :
  ?with_saturation:bool ->
  ?heap:[ `Two_level | `Giant ] ->
  ?lazy_forward:bool ->
  ?evaluator:[ `Incremental | `Naive ] ->
  ?allowed:(Triple.t -> bool) ->
  ?base:Strategy.t ->
  ?trace:(int -> float -> unit) ->
  Instance.t ->
  Strategy.t * stats
(** [run inst] returns a valid strategy and execution statistics.

    [trace size revenue_so_far] is invoked after every selection with the
    strategy size and the running sum of (fresh) marginal revenues — the
    series plotted in Figure 4. The running sum equals [Revenue.total] of
    the growing strategy when [with_saturation] is [true]. *)
