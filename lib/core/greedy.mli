(** The Global Greedy algorithm (G-Greedy, Algorithm 1 of §5.1): a
    hill-climber over the whole ground set [U × I × \[T\]] that repeatedly
    adds the feasible triple of largest positive marginal revenue, with the
    paper's two implementation-level optimizations — the two-level heap data
    structure and Minoux's lazy-forward evaluation, whose soundness rests on
    the submodularity of [Rev] (Theorem 2).

    Variants used by the experiments:
    - [~with_saturation:false] is the {b GlobalNo} baseline of §6: marginal
      revenue is computed as if [β_i = 1] everywhere (the output is then
      evaluated under the true saturation factors by the caller);
    - [~heap:`Giant] replaces the two-level structure with one flat heap
      (same output, different constants) — the [abl-heap] ablation;
    - [~lazy_forward:false] eagerly refreshes every affected candidate after
      each selection (same output, many more marginal evaluations);
    - [~lazy_policy] picks how a stale two-level root is brought up to date:
      [`Celf] (default) re-evaluates only the root element and accepts it
      outright when its fresh marginal still dominates the global runner-up
      key — sound because every other key is an upper bound on its own fresh
      marginal (slot marginals are non-increasing, asserted by the
      conformance suite) — while [`Refresh_pair] is the historical policy
      that re-evaluates the stale root's whole lower heap. Both produce
      identical selection sequences; [`Celf] performs strictly fewer
      marginal evaluations on contended instances. Ignored by [`Giant] and
      by eager refresh;
    - [~evaluator:`Naive] scores marginals with the O(L²) reference oracle
      {!Revenue.marginal} instead of the O(L) incremental engine
      {!Revenue.marginal_incremental} (same output up to floating-point
      rounding) — the baseline of the greedy-throughput benchmark;
    - [~allowed] and [~base] support the §6.3 gradual-price-availability
      setting through {!Rolling}: selection is restricted to allowed
      triples while the committed [base] strategy contributes to chains and
      constraints;
    - [~budget] makes the run {e anytime}: the budget is consulted between
      selections (after at least one), and on expiry the best-so-far prefix
      — always a valid strategy, by submodularity every greedy prefix is —
      is returned with [truncated = true] in the statistics. *)

type stats = {
  marginal_evaluations : int;  (** marginal-revenue evaluations *)
  pops : int;  (** heap roots examined *)
  selected : int;  (** triples added to the strategy *)
  truncated : bool;  (** the run stopped early because a budget expired *)
}

type trace_point = {
  z : Triple.t;  (** the triple just selected *)
  size : int;  (** strategy size after the selection *)
  revenue : float;  (** running sum of fresh marginal revenues *)
  evaluations : int;  (** cumulative marginal evaluations so far *)
}

val run :
  ?with_saturation:bool ->
  ?heap:[ `Two_level | `Giant ] ->
  ?lazy_forward:bool ->
  ?lazy_policy:[ `Celf | `Refresh_pair ] ->
  ?evaluator:[ `Incremental | `Naive ] ->
  ?allowed:(Triple.t -> bool) ->
  ?base:Strategy.t ->
  ?trace:(trace_point -> unit) ->
  ?budget:Revmax_prelude.Budget.t ->
  Instance.t ->
  Strategy.t * stats
(** [run inst] returns a valid strategy and execution statistics.

    [trace] is invoked after every selection with the strategy size, the
    running sum of (fresh) marginal revenues — the series plotted in
    Figure 4 — and the cumulative marginal-evaluation count. The running
    sum equals [Revenue.total] of the growing strategy when
    [with_saturation] is [true].

    When [budget] is given, evaluation charges accumulate into it (so one
    budget can be shared across several runs) and the run stops as soon as
    the budget is exhausted after a selection; the budgeted run's selection
    sequence is a prefix of the unbudgeted one's. *)
