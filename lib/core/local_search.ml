module Matroid = Revmax_matroid.Matroid
module Submodular = Revmax_matroid.Submodular
module Budget = Revmax_prelude.Budget

type result = {
  strategy : Strategy.t;
  value : float;
  oracle_calls : int;
  moves : int;
  truncated : bool;
}

let solve ?eps ?capacity_oracle ?budget ?jobs inst =
  let ground = ref [] in
  Instance.iter_candidate_triples inst (fun z _ -> ground := z :: !ground);
  let ground = Array.of_list (List.rev !ground) in
  let horizon = Instance.horizon inst in
  (* Lemma 2: block of a triple = its (user, time) pair; bound = k *)
  let part_of = Array.map (fun (z : Triple.t) -> (z.u * horizon) + (z.t - 1)) ground in
  let bound = Array.make (Instance.num_users inst * horizon) (Instance.display_limit inst) in
  let matroid = Matroid.partition ~part_of ~bound in
  let f indices =
    let s = Strategy.of_list inst (List.map (fun idx -> ground.(idx)) indices) in
    Relaxed.total ?oracle:capacity_oracle s
  in
  let stop =
    Option.map
      (fun b ~evaluations ->
        Budget.note_evaluations b evaluations;
        Budget.exhausted b)
      budget
  in
  let indices, value, stats = Submodular.local_search ?eps ?stop ?jobs ~matroid ~f () in
  let strategy = Strategy.of_list inst (List.map (fun idx -> ground.(idx)) indices) in
  {
    strategy;
    value;
    oracle_calls = stats.oracle_calls;
    moves = stats.moves;
    truncated = stats.truncated;
  }
