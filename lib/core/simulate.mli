(** Sampling semantics for the adoption model, used to validate [Rev(S)]
    empirically and to drive the behavioural examples.

    The grounding (documented in DESIGN.md): each triple [(u,i,t) ∈ S] draws
    an independent {e desire} coin with its primitive probability [q(u,i,t)]
    and an independent {e saturation} coin with probability
    [β_i^{M_S(u,i,t)}]. The user adopts [i] at [t] iff the triple's desire
    and saturation coins both succeed and {e no other} same-class triple at
    the same or an earlier time has a successful desire coin. Under this
    semantics adoptions within a class are mutually exclusive, and the
    marginal adoption probability of every triple is exactly [qS(u,i,t)] of
    Definition 1 — so the empirical mean revenue is an unbiased estimate of
    [Rev(S)]. *)

val simulate_chain :
  Instance.t -> Triple.t list -> Revmax_prelude.Rng.t -> Triple.t option
(** Simulate one (user, class) chain; the adopted triple, if any. *)

val revenue_once : Strategy.t -> Revmax_prelude.Rng.t -> float
(** Total revenue of one simulated world. *)

val estimate_revenue :
  ?jobs:int -> Strategy.t -> samples:int -> Revmax_prelude.Rng.t -> Revmax_stats.Mc.estimate
(** Monte-Carlo estimate of the expected revenue; its mean converges to
    [Revenue.total] as samples grow. Worlds are simulated on up to [jobs]
    domains (default {!Revmax_prelude.Pool.default_jobs}) with one RNG
    stream split off per world, so the estimate is bit-identical for every
    [jobs] value (see {!Revmax_stats.Mc.estimate}). *)

type sales_report = {
  revenue : float;
  adoptions : Triple.t list;  (** what was bought, when *)
  stockouts : int;  (** adoption attempts lost to an empty stock *)
}

val run_with_stock : Strategy.t -> Revmax_prelude.Rng.t -> sales_report
(** Behavioural variant for the examples: each item starts with
    [Instance.capacity] units in stock; simulated adoptions consume stock in
    time order (random order within a time step) and an adoption attempt on
    an out-of-stock item is lost. This is the phenomenon the relaxed
    R-REVMAX objective models with [B_S(i,t)] (§4.2). *)
