module Tl = Revmax_pqueue.Two_level_heap
module Bh = Revmax_pqueue.Binary_heap
module Budget = Revmax_prelude.Budget
module Metrics = Revmax_prelude.Metrics

(* bulk-added from the run's own stat refs on exit, so the hot loop carries
   no extra branches and the totals stay jobs-invariant *)
let c_runs = Metrics.counter "greedy.runs"

let c_evals = Metrics.counter "greedy.marginal_evaluations"

let c_pops = Metrics.counter "greedy.pops"

let c_selected = Metrics.counter "greedy.selected"

let c_truncated = Metrics.counter "greedy.truncated"

type stats = { marginal_evaluations : int; pops : int; selected : int; truncated : bool }

type trace_point = { z : Triple.t; size : int; revenue : float; evaluations : int }

type elt = { z : Triple.t; mutable flag : int }

let run ?(with_saturation = true) ?(heap = `Two_level) ?(lazy_forward = true)
    ?(evaluator = `Incremental) ?(allowed = fun _ -> true) ?base ?trace ?budget inst =
  Metrics.span "greedy.run" @@ fun () ->
  if (not lazy_forward) && heap = `Giant then
    invalid_arg "Greedy.run: eager refresh requires the two-level heap";
  let s = match base with Some b -> Strategy.copy b | None -> Strategy.create inst in
  let evals = ref 0 and pops = ref 0 and selected = ref 0 in
  let truncated = ref false in
  let running_total = ref 0.0 in
  let num_items = Instance.num_items inst in
  let chain_size_of (z : Triple.t) =
    Strategy.chain_size s ~u:z.u ~cls:(Instance.class_of inst z.i)
  in
  let marginal (z : Triple.t) =
    incr evals;
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    match evaluator with
    | `Incremental -> Revenue.marginal_incremental ~with_saturation s z
    | `Naive -> Revenue.marginal ~with_saturation s z
  in
  (* the budget is consulted between selections only, and only after at
     least one selection, so an expired budget still yields a non-empty
     anytime prefix whenever any triple is selectable *)
  let out_of_budget () =
    match budget with
    | Some b when !selected > 0 && Budget.exhausted b ->
        truncated := true;
        true
    | _ -> false
  in
  (* key for a triple whose chain is known empty: marginal reduces to p·q
     (Algorithm 1 line 8); avoids a chain lookup per candidate at startup *)
  let initial_key (z : Triple.t) =
    if chain_size_of z = 0 then
      Instance.price inst ~i:z.i ~time:z.t *. Instance.q inst ~u:z.u ~i:z.i ~time:z.t
    else marginal z
  in
  let capacity_blocked (z : Triple.t) =
    (not (Strategy.item_has_user s ~i:z.i ~u:z.u))
    && Strategy.item_user_count s z.i >= Instance.capacity inst z.i
  in
  let accept (z : Triple.t) key =
    Strategy.add s z;
    incr selected;
    (* a selection is a unit of work even when its key came from the
       closed-form path below and cost no oracle call *)
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    running_total := !running_total +. key;
    match trace with
    | Some f -> f { z; size = Strategy.size s; revenue = !running_total; evaluations = !evals }
    | None -> ()
  in
  (match heap with
  | `Two_level ->
      let h = Tl.create () in
      Instance.iter_candidate_triples inst (fun z _q ->
          if allowed z && not (Strategy.mem s z) then begin
            let e = { z; flag = chain_size_of z } in
            Tl.insert h ~pair:((z.u * num_items) + z.i) ~key:(initial_key z) e
          end);
      (* eager mode: after each selection refresh every candidate pair of the
         selected triple's (user, class) *)
      let eager_refresh (z : Triple.t) =
        let cls = Instance.class_of inst z.i in
        let cur = Strategy.chain_size s ~u:z.u ~cls in
        List.iter
          (fun j ->
            Tl.refresh_pair h
              ((z.u * num_items) + j)
              ~f:(fun e _old ->
                e.flag <- cur;
                Some (marginal e.z)))
          (Instance.candidate_items_in_class inst ~u:z.u ~cls)
      in
      let rec loop () =
        if not (out_of_budget ()) then
          match Tl.find_max h with
          | None -> ()
          | Some (pair, e, key) ->
              incr pops;
              if not (Strategy.can_add s e.z) then begin
                if capacity_blocked e.z then Tl.drop_pair h pair else ignore (Tl.delete_max h);
                loop ()
              end
              else begin
                let cur = chain_size_of e.z in
                if e.flag < cur then begin
                  Tl.refresh_pair h pair ~f:(fun e' _old ->
                      e'.flag <- cur;
                      Some (marginal e'.z));
                  loop ()
                end
                else if key <= 0.0 then () (* fresh maximum non-positive: done *)
                else begin
                  ignore (Tl.delete_max h);
                  accept e.z key;
                  if not lazy_forward then eager_refresh e.z;
                  loop ()
                end
              end
      in
      loop ()
  | `Giant ->
      let h = Bh.create () in
      Instance.iter_candidate_triples inst (fun z _q ->
          if allowed z && not (Strategy.mem s z) then
            ignore (Bh.insert h ~key:(initial_key z) { z; flag = chain_size_of z }));
      let rec loop () =
        if not (out_of_budget ()) then
          match Bh.delete_max h with
          | None -> ()
          | Some (e, key) ->
              incr pops;
              if not (Strategy.can_add s e.z) then loop () (* permanently infeasible *)
              else begin
                let cur = chain_size_of e.z in
                if e.flag < cur then begin
                  e.flag <- cur;
                  ignore (Bh.insert h ~key:(marginal e.z) e);
                  loop ()
                end
                else if key <= 0.0 then ()
                else begin
                  accept e.z key;
                  loop ()
                end
              end
      in
      loop ());
  Metrics.incr c_runs;
  Metrics.incr c_evals ~by:!evals;
  Metrics.incr c_pops ~by:!pops;
  Metrics.incr c_selected ~by:!selected;
  if !truncated then Metrics.incr c_truncated;
  (s, { marginal_evaluations = !evals; pops = !pops; selected = !selected; truncated = !truncated })
