module Tl = Revmax_pqueue.Two_level_heap
module Bh = Revmax_pqueue.Binary_heap
module Budget = Revmax_prelude.Budget
module Metrics = Revmax_prelude.Metrics

(* bulk-added from the run's own stat refs on exit, so the hot loop carries
   no extra branches and the totals stay jobs-invariant *)
let c_runs = Metrics.counter "greedy.runs"

let c_evals = Metrics.counter "greedy.marginal_evaluations"

let c_pops = Metrics.counter "greedy.pops"

let c_selected = Metrics.counter "greedy.selected"

let c_truncated = Metrics.counter "greedy.truncated"

let c_celf_skips = Metrics.counter "greedy.celf_skipped_evals"

type stats = { marginal_evaluations : int; pops : int; selected : int; truncated : bool }

type trace_point = { z : Triple.t; size : int; revenue : float; evaluations : int }

let run ?(with_saturation = true) ?(heap = `Two_level) ?(lazy_forward = true)
    ?(lazy_policy = `Celf) ?(evaluator = `Incremental) ?(allowed = fun _ -> true) ?base ?trace
    ?budget inst =
  Metrics.span "greedy.run" @@ fun () ->
  if (not lazy_forward) && heap = `Giant then
    invalid_arg "Greedy.run: eager refresh requires the two-level heap";
  let s = match base with Some b -> Strategy.copy b | None -> Strategy.create inst in
  let evals = ref 0 and pops = ref 0 and selected = ref 0 and celf_skips = ref 0 in
  let truncated = ref false in
  (* running revenue total lives in a float-array cell, not a [float ref]:
     a ref stores a fresh boxed float on every [:=], a cell stores unboxed *)
  let running_total = [| 0.0 |] in
  let num_users = Instance.num_users inst in
  let num_items = Instance.num_items inst in
  let num_classes = Instance.num_classes inst in
  let horizon = Instance.horizon inst in
  let display_limit = Instance.display_limit inst in
  (* Candidates are carried through the heaps as packed integer ids — the
     {e entry id} eid = (pid − plo)·stride + t over the instance's CSR
     pair ids (pid), with plo the view's first pair — so every per-run
     array is O(view candidate pairs), never O(num_users · num_items):
     the dense (u·num_items + i) keying of the previous revision
     materialized 80 GB of per-candidate state at 10^6 users × 10^4
     items. Pair ids are strictly increasing in (user, item) lexicographic
     order, hence eids in (user, item, time) order — exactly the order of
     the old dense cids — so using eids as heap tie-breakers (and pair
     ranks as group keys) reproduces every historical tie decision
     bit-for-bit. A heap element is then an immediate int: popping the
     root, checking feasibility and calling the oracle touch no heap
     records, no float boxes, and trigger no GC write barrier. *)
  let stride = horizon + 1 in
  (* Slate instances fold the ordered slot into the candidate space: the
     entry id becomes eid = ((pid − plo)·stride + t)·nsl + (slot − 1) with
     nsl = display_limit, so each (pair, time) contributes one entry per
     slot and slot assignment is decided by the same heap order as
     everything else. On plain instances nsl = 1 and every formula below
     reduces to the historical eid = (pid − plo)·stride + t — same ids,
     same ties, bit-identical selections. [mult.(slot − 1)] scales the
     candidate's q; the plain path multiplies by 1.0, which is IEEE-exact. *)
  let nsl = if Instance.is_slate inst then display_limit else 1 in
  let mult =
    match Instance.slot_multipliers inst with Some m -> m | None -> [| 1.0 |]
  in
  let estride = stride * nsl in
  let plo, phi = Instance.pair_range inst in
  let npairs = phi - plo in
  let neid = npairs * estride in
  (* staleness stamp per entry — the chain length at the last evaluation.
     Chain lengths are small integers, exact in floating point, so the
     stamp compares exactly. The adoption probability itself is no longer
     mirrored per entry: [Instance.pair_q] reads the same IEEE double
     straight from the CSR row (heap array or mmapped pack). *)
  let stamp = Array.make neid 0.0 in
  let cls_arr = Array.init num_items (Instance.class_of inst) in
  let prf = Array.make (num_items * stride) 0.0 in
  let beta_arr = Array.init num_items (Instance.saturation inst) in
  (* per-pair decode mirrors: pops recover (u, i) by two array reads
     instead of binary-searching the CSR rows *)
  let pu = Array.make npairs 0 in
  let pi_arr = Array.make npairs 0 in
  (* Per-run chain cache, keyed by compact {e chain slots}: every pair of
     one user whose items share a class shares a slot, so the cache is
     O(view pairs) — the previous dense (u·num_classes + cls) array would
     be 4 GB at 10^6 users × 500 classes, almost all of it never touched.
     Slots are assigned in pair-id order via a per-user class mark; chain
     pointers are stable for the whole run (a greedy only adds triples,
     and Strategy never replaces a live chain), so slots flip from None to
     Some at most once, at the first accept into that chain. *)
  let chain_slot = Array.make npairs 0 in
  let nslots = ref 0 in
  let slot_u = Array.make (max 1 npairs) 0 in
  let slot_cls = Array.make (max 1 npairs) 0 in
  let mark = Array.make (max 1 num_classes) 0 in
  let mark_user = Array.make (max 1 num_classes) (-1) in
  Instance.iter_candidate_pairs inst (fun ~u ~pid ->
      let rel = pid - plo in
      let i = Instance.pair_item inst pid in
      pu.(rel) <- u;
      pi_arr.(rel) <- i;
      let cls = cls_arr.(i) in
      if mark_user.(cls) <> u then begin
        mark_user.(cls) <- u;
        mark.(cls) <- !nslots;
        slot_u.(!nslots) <- u;
        slot_cls.(!nslots) <- cls;
        incr nslots
      end;
      chain_slot.(rel) <- mark.(cls));
  let chains = Array.make (max 1 !nslots) None in
  (match base with
  | None -> ()
  | Some _ ->
      for sl = 0 to !nslots - 1 do
        match Strategy.chain_view s ~u:slot_u.(sl) ~cls:slot_cls.(sl) with
        | Some _ as c -> chains.(sl) <- c
        | None -> ()
      done);
  let chain_size_slot sl = match chains.(sl) with None -> 0 | Some c -> Chain.length c in
  (* result cell of the oracle and of [Tl.max_key_into]: floats enter and
     leave the per-cycle calls through preallocated cells, because without
     flambda every float argument or result of a non-inlined call is boxed
     on the minor heap — with ~10^6 cycles per run those boxes were the
     last allocation left on the steady-state path *)
  let res = [| 0.0 |] in
  let marginal_into eid u i t =
    incr evals;
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    match evaluator with
    | `Naive ->
        if nsl = 1 then res.(0) <- Revenue.marginal ~with_saturation s (Triple.make ~u ~i ~t)
        else begin
          (* slate-aware naive reference: members carry their assigned
             slots' effective q̃, the candidate this entry's slot *)
          let z = Triple.make ~u ~i ~t in
          let qz = mult.(eid mod nsl) *. Instance.q inst ~u ~i ~time:t in
          let q_of z' = if Triple.equal z' z then qz else Strategy.effective_q s z' in
          let chain = Strategy.chain_of_triple s z in
          res.(0) <-
            Revenue.chain_revenue ~with_saturation ~q_of inst (Triple.chain_insert chain z)
            -. Revenue.chain_revenue ~with_saturation ~q_of inst chain
        end
    | `Incremental -> (
        (* the open-coded {!Revenue.marginal_incremental}: same arithmetic,
           but the instance facts come from the CSR row and the flat
           per-item arrays, and the chain from the slot cache, so a
           steady-state evaluation performs no hashtable lookup and no
           allocation (these oracle calls are accounted under
           greedy.marginal_evaluations / chain.marginals) *)
        match chains.(chain_slot.(eid / estride)) with
        | Some c ->
            let cells = Chain.oracle_cells c in
            cells.(3) <-
              mult.(eid mod nsl) *. Instance.pair_q inst ~pid:(plo + (eid / estride)) ~time:t;
            cells.(4) <- prf.((i * stride) + t);
            cells.(5) <- beta_arr.(i);
            Chain.marginal_cells ~with_saturation c ~time:t ~res
        | None ->
            let qz =
              mult.(eid mod nsl) *. Instance.pair_q inst ~pid:(plo + (eid / estride)) ~time:t
            in
            res.(0) <- (if qz <= 0.0 then 0.0 else prf.((i * stride) + t) *. qz))
  in
  (* boxed-float view of the oracle for the cold paths (initial keys, bulk
     group refreshes) *)
  let marginal_eid eid u i t =
    marginal_into eid u i t;
    res.(0)
  in
  (* the budget is consulted between selections only, and only after at
     least one selection, so an expired budget still yields a non-empty
     anytime prefix whenever any triple is selectable *)
  let out_of_budget () =
    match budget with
    | Some b when !selected > 0 && Budget.exhausted b ->
        truncated := true;
        true
    | _ -> false
  in
  (* global quantity budget: reaching the cap is {e completion} — the run
     found the best strategy of the allowed size — so it must not set the
     truncated flag (that means the evaluation budget cut the run short).
     Unbounded instances carry [max_int], which [Strategy.size] never
     reaches, so the plain path pays one dead compare per cycle. *)
  let cap_total = Instance.max_total_cap inst in
  let quota_full () = Strategy.size s >= cap_total in
  (* flat mirrors of the three feasibility facts [Strategy.can_add] would
     probe hashtables for — display fill per (user, time), the distinct-user
     holder set and count per item. The strategy remains the source of
     truth (accept still goes through [Strategy.add]); these are read on
     every heap pop, where four hashtable probes per cycle dominated the
     selection loop. The holder set is keyed by pair id (one byte per view
     pair); a base strategy's out-of-view triples spill into a side table
     that no popped candidate ever consults — candidates are view pairs by
     construction. A membership re-check is unnecessary: the heaps hold
     each candidate at most once and a selected triple is deleted before
     [accept], so a popped element can never already be in the strategy. *)
  let capacity = Array.init num_items (Instance.capacity inst) in
  let disp = Array.make (num_users * stride) 0 in
  let holds = Bytes.make npairs '\000' in
  let holds_extra = Hashtbl.create 16 in
  let holders = Array.make num_items 0 in
  (* slate-only byte maps (empty on plain instances): [tsel] marks a
     (pair, time) whose triple is already selected in {e some} slot — the
     other nsl − 1 entries of the same triple are then permanently
     infeasible, since a triple occupies exactly one slot; [slot_taken]
     marks an occupied (user, time, slot). Both facts are permanent during
     a run (the strategy only grows, slots never free), so blocked entries
     can be dropped for good, exactly like display/capacity blocks. *)
  let tsel = Bytes.make (if nsl = 1 then 0 else npairs * stride) '\000' in
  let slot_taken = Bytes.make (if nsl = 1 then 0 else num_users * stride * nsl) '\000' in
  let note (z : Triple.t) =
    let dk = (z.u * stride) + z.t in
    disp.(dk) <- disp.(dk) + 1;
    let pid = Instance.pair_find inst ~u:z.u ~i:z.i in
    if pid >= plo && pid < phi then begin
      if Bytes.get holds (pid - plo) = '\000' then begin
        Bytes.set holds (pid - plo) '\001';
        holders.(z.i) <- holders.(z.i) + 1
      end;
      if nsl > 1 then Bytes.set tsel (((pid - plo) * stride) + z.t) '\001'
    end
    else begin
      let hk = (z.u * num_items) + z.i in
      if not (Hashtbl.mem holds_extra hk) then begin
        Hashtbl.replace holds_extra hk ();
        holders.(z.i) <- holders.(z.i) + 1
      end
    end;
    if nsl > 1 then
      match Strategy.slot_of s z with
      | Some slot -> Bytes.set slot_taken ((dk * nsl) + slot - 1) '\001'
      | None -> ()
  in
  List.iter note (Strategy.to_list s);
  (* feasibility of a popped candidate: candidates always carry their own
     view pair, so the holder probe is one byte read *)
  let feasible rel u i t slot =
    disp.((u * stride) + t) < display_limit
    && (Bytes.get holds rel <> '\000' || holders.(i) < capacity.(i))
    && (nsl = 1
       || Bytes.get tsel ((rel * stride) + t) = '\000'
          && Bytes.get slot_taken ((((u * stride) + t) * nsl) + slot - 1) = '\000')
  in
  (* the accepted marginal arrives through [res.(0)], not a float argument:
     without flambda a float parameter is boxed at the call boundary, and
     [accept] runs once per selected triple in the steady-state loop *)
  let accept rel u i t slot sl =
    let z = Triple.make ~u ~i ~t in
    if nsl = 1 then Strategy.add s z else Strategy.add ~slot s z;
    let dk = (u * stride) + t in
    disp.(dk) <- disp.(dk) + 1;
    if Bytes.get holds rel = '\000' then begin
      Bytes.set holds rel '\001';
      holders.(i) <- holders.(i) + 1
    end;
    if nsl > 1 then begin
      Bytes.set tsel ((rel * stride) + t) '\001';
      Bytes.set slot_taken ((dk * nsl) + slot - 1) '\001'
    end;
    (match chains.(sl) with
    | Some _ -> () (* same chain, mutated in place *)
    | None -> chains.(sl) <- Strategy.chain_view_of_triple s z);
    incr selected;
    (* a selection is a unit of work even when its key came from the
       closed-form path below and cost no oracle call *)
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    running_total.(0) <- running_total.(0) +. res.(0);
    match trace with
    | Some f ->
        f { z; size = Strategy.size s; revenue = running_total.(0); evaluations = !evals }
    | None -> ()
  in
  (* key for a triple whose chain is known empty: marginal reduces to p·q
     (Algorithm 1 line 8); avoids an oracle call per candidate at startup *)
  let build_key eid u i t qv sl =
    if chain_size_slot sl = 0 then prf.((i * stride) + t) *. qv else marginal_eid eid u i t
  in
  let register rel i t sl ~slot =
    let eid = (((rel * stride) + t) * nsl) + slot - 1 in
    prf.((i * stride) + t) <- Instance.price inst ~i ~time:t;
    stamp.(eid) <- float_of_int (chain_size_slot sl);
    eid
  in
  (match heap with
  | `Two_level ->
      let h = Tl.create () in
      (* Groups are keyed by the paper's (user, item) pair — the view pair
         rank [pid − plo] — so a refresh event touches one pair's
         horizon-bounded lower heap, exactly §5.1's granularity. A
         selection staleness-marks every candidate of one (user, class),
         i.e. all pairs of the user's same-class items, but the lazy loop
         only refreshes the stale pairs that actually surface as the
         global root before being re-staled; with the coarser user-sized
         groups every event would recompute the whole stale set at once,
         several times more oracle calls for the same trajectory. *)
      Instance.iter_candidate_pairs inst (fun ~u ~pid ->
          let rel = pid - plo in
          let i = pi_arr.(rel) in
          let sl = chain_slot.(rel) in
          for t = 1 to horizon do
            let qv = Instance.pair_q inst ~pid ~time:t in
            if qv > 0.0 then begin
              let z = Triple.make ~u ~i ~t in
              if allowed z && not (Strategy.mem s z) then
                for slot = 1 to nsl do
                  let qe = mult.(slot - 1) *. qv in
                  if qe > 0.0 then begin
                    let eid = register rel i t sl ~slot in
                    Tl.insert h ~pair:rel ~key:(build_key eid u i t qe sl) ~tie:eid eid
                  end
                done
            end
          done);
      (* Recompute one entry's key and staleness stamp; the fresh key is
         left in [res.(0)] for [Tl.refresh_pair_into] to store. Hoisted so
         the refresh calls share one closure instead of allocating one per
         event. *)
      let refresh_entry eid' =
        let rel' = eid' / estride in
        stamp.(eid') <- float_of_int (chain_size_slot chain_slot.(rel'));
        marginal_into eid' pu.(rel') pi_arr.(rel') ((eid' / nsl) mod stride)
      in
      (* CELF-style lazy skip, made exact: re-evaluate only the entries
         whose staleness stamp shows their (user, class) chain grew since
         their key was computed. A skipped oracle call would return the
         stored key bit-for-bit — the marginal is a pure function of the
         chain and the candidate, and the stamp witnesses the chain is
         unchanged — so skipping cannot change any selection. The classic
         CELF skip (trust the stale key as an upper bound on the fresh
         marginal) is unsound here: REVMAX marginals can increase when a
         chain grows — the objective is not submodular — and instrumented
         bench runs measure roughly one naive-confirmed increase per
         selection, which steers the upper-bound variant to a different
         (and not reliably better) final strategy. Under pair grouping
         every entry of a refreshed group shares the root's chain and
         stamp, so the skip never fires and both policies coincide; it
         fires (and pays off) under coarser groupings, and keeping it in
         the default path documents the soundness argument lazy skipping
         must meet. *)
      let refresh_entry_memo eid' =
        let rel' = eid' / estride in
        let cur' = float_of_int (chain_size_slot chain_slot.(rel')) in
        if stamp.(eid') < cur' then begin
          stamp.(eid') <- cur';
          marginal_into eid' pu.(rel') pi_arr.(rel') ((eid' / nsl) mod stride)
        end
        else incr celf_skips (* res.(0) keeps the stored key *)
      in
      (* eager mode: after each selection refresh every candidate pair of
         the selected triple's (user, class) — walking the user's CSR row
         visits exactly the class's live groups in the same ascending item
         order the historical all-items sweep refreshed them in *)
      let eager_refresh u sel_i =
        let cls = cls_arr.(sel_i) in
        let lo, hi = Instance.pair_row inst u in
        for pid = lo to hi - 1 do
          if cls_arr.(pi_arr.(pid - plo)) = cls then
            Tl.refresh_pair_into h (pid - plo) res ~f:refresh_entry
        done
      in
      let rec loop () =
        if (not (quota_full ())) && (not (out_of_budget ())) && not (Tl.is_empty h) then begin
          let eid = Tl.max_elt h in
          let t = (eid / nsl) mod stride in
          let rel = eid / estride in
          let slot = (eid mod nsl) + 1 in
          let i = pi_arr.(rel) in
          let u = pu.(rel) in
          incr pops;
          if not (feasible rel u i t slot) then begin
            (* both display fill and capacity blocks are permanent during a
               run (the strategy only grows), so the entry is dropped for
               good — each blocked candidate costs at most one pop *)
            Tl.drop_max h;
            loop ()
          end
          else begin
            let sl = chain_slot.(rel) in
            let cur = chain_size_slot sl in
            if stamp.(eid) < float_of_int cur then begin
              (* stale root: re-evaluate its (user, item) group in place —
                 all [T] time slots of the pair — through the cell ABI
                 (allocation-free). [`Celf] additionally stamp-skips
                 entries whose chain is provably unchanged; see
                 [refresh_entry_memo] above. *)
              (match lazy_policy with
              | `Refresh_pair -> Tl.refresh_pair_into h rel res ~f:refresh_entry
              | `Celf -> Tl.refresh_pair_into h rel res ~f:refresh_entry_memo);
              loop ()
            end
            else begin
              (* fresh root: decide and pop in one fused walk over both
                 heap levels. [`Rekeyed] cannot surface — the root's own
                 stored key never loses to a child under the heap's strict
                 total order — but looping is the safe response if it ever
                 did. *)
              Tl.max_key_into h res;
              match Tl.celf_step h res with
              | `Finished -> () (* fresh maximum non-positive: done *)
              | `Accepted ->
                  accept rel u i t slot sl;
                  if not lazy_forward then eager_refresh u i;
                  loop ()
              | `Rekeyed -> loop ()
            end
          end
        end
      in
      loop ()
  | `Giant ->
      let h = Bh.create () in
      (* capacity purge: once an item reaches its copy capacity, every entry
         of a user outside its holder set is permanently infeasible
         (capacity never frees during a greedy run and such a user can never
         acquire the item). Removing them by handle keeps [pops] independent
         of the blocked-candidate count — the flat-heap analogue of the
         two-level path's per-pop drop. *)
      let by_item = Array.make num_items [] in
      let item_purged = Array.make num_items false in
      let track i hd = if not item_purged.(i) then by_item.(i) <- hd :: by_item.(i) in
      let purge i =
        item_purged.(i) <- true;
        List.iter
          (fun hd ->
            if Bh.contains h hd then begin
              let rel = Bh.value hd / estride in
              if Bytes.get holds rel = '\000' then Bh.remove h hd
            end)
          by_item.(i);
        by_item.(i) <- []
      in
      let maybe_purge i = if (not item_purged.(i)) && holders.(i) >= capacity.(i) then purge i in
      Instance.iter_candidate_pairs inst (fun ~u ~pid ->
          let rel = pid - plo in
          let i = pi_arr.(rel) in
          let sl = chain_slot.(rel) in
          for t = 1 to horizon do
            let qv = Instance.pair_q inst ~pid ~time:t in
            if qv > 0.0 then begin
              let z = Triple.make ~u ~i ~t in
              if allowed z && not (Strategy.mem s z) then
                for slot = 1 to nsl do
                  let qe = mult.(slot - 1) *. qv in
                  if qe > 0.0 then begin
                    let eid = register rel i t sl ~slot in
                    track i (Bh.insert h ~key:(build_key eid u i t qe sl) ~tie:eid eid)
                  end
                done
            end
          done);
      (* a base strategy may already hold items at capacity *)
      for i = 0 to num_items - 1 do
        maybe_purge i
      done;
      let rec loop () =
        if (not (quota_full ())) && not (out_of_budget ()) then
          match Bh.delete_max h with
          | None -> ()
          | Some (eid, key) ->
              let t = (eid / nsl) mod stride in
              let rel = eid / estride in
              let slot = (eid mod nsl) + 1 in
              let i = pi_arr.(rel) in
              let u = pu.(rel) in
              incr pops;
              if not (feasible rel u i t slot) then loop () (* display-blocked this round *)
              else begin
                let sl = chain_slot.(rel) in
                let cur = chain_size_slot sl in
                if stamp.(eid) < float_of_int cur then begin
                  stamp.(eid) <- float_of_int cur;
                  track i (Bh.insert h ~key:(marginal_eid eid u i t) ~tie:eid eid);
                  loop ()
                end
                else if key <= 0.0 then ()
                else begin
                  res.(0) <- key;
                  accept rel u i t slot sl;
                  maybe_purge i;
                  loop ()
                end
              end
      in
      loop ());
  Metrics.incr c_runs;
  Metrics.incr c_evals ~by:!evals;
  Metrics.incr c_pops ~by:!pops;
  Metrics.incr c_selected ~by:!selected;
  Metrics.incr c_celf_skips ~by:!celf_skips;
  if !truncated then Metrics.incr c_truncated;
  (s, { marginal_evaluations = !evals; pops = !pops; selected = !selected; truncated = !truncated })
