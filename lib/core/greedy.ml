module Tl = Revmax_pqueue.Two_level_heap
module Bh = Revmax_pqueue.Binary_heap
module Budget = Revmax_prelude.Budget
module Metrics = Revmax_prelude.Metrics

(* bulk-added from the run's own stat refs on exit, so the hot loop carries
   no extra branches and the totals stay jobs-invariant *)
let c_runs = Metrics.counter "greedy.runs"

let c_evals = Metrics.counter "greedy.marginal_evaluations"

let c_pops = Metrics.counter "greedy.pops"

let c_selected = Metrics.counter "greedy.selected"

let c_truncated = Metrics.counter "greedy.truncated"

let c_celf_skips = Metrics.counter "greedy.celf_skipped_evals"

type stats = { marginal_evaluations : int; pops : int; selected : int; truncated : bool }

type trace_point = { z : Triple.t; size : int; revenue : float; evaluations : int }

let run ?(with_saturation = true) ?(heap = `Two_level) ?(lazy_forward = true)
    ?(lazy_policy = `Celf) ?(evaluator = `Incremental) ?(allowed = fun _ -> true) ?base ?trace
    ?budget inst =
  Metrics.span "greedy.run" @@ fun () ->
  if (not lazy_forward) && heap = `Giant then
    invalid_arg "Greedy.run: eager refresh requires the two-level heap";
  let s = match base with Some b -> Strategy.copy b | None -> Strategy.create inst in
  let evals = ref 0 and pops = ref 0 and selected = ref 0 and celf_skips = ref 0 in
  let truncated = ref false in
  (* running revenue total lives in a float-array cell, not a [float ref]:
     a ref stores a fresh boxed float on every [:=], a cell stores unboxed *)
  let running_total = [| 0.0 |] in
  let num_users = Instance.num_users inst in
  let num_items = Instance.num_items inst in
  let num_classes = Instance.num_classes inst in
  let horizon = Instance.horizon inst in
  let display_limit = Instance.display_limit inst in
  (* Candidates are carried through the heaps as packed integer ids —
     cid = ((u·num_items) + i)·stride + t — so the selection loop recovers
     (u, i, t) by arithmetic alone instead of dereferencing a per-element
     record. Every instance fact the oracle needs lives in a flat unboxed
     array indexed by cid (or by the much smaller item/time key): q0 per
     candidate, price per (item, time), saturation per item, and the
     lazy-forward staleness stamp [flag] (the chain length at the last
     evaluation). A heap element is then an immediate int: popping the
     root, checking feasibility and calling the oracle touch no heap
     records, no float boxes, and trigger no GC write barrier. *)
  let stride = horizon + 1 in
  let ncid = num_users * num_items * stride in
  (* [flag] and [q0] interleave in one float array — slots 2·cid and
     2·cid + 1 — because the loop reads both for the same cid back to back
     and the candidate id is the one random index of a cycle: one fetched
     cache line serves both reads. Chain lengths are small integers, exact
     in floating point, so the staleness stamp compares exactly. *)
  let fq = Array.make (2 * ncid) 0.0 in
  let cls_arr = Array.init num_items (Instance.class_of inst) in
  let prf = Array.make (num_items * stride) 0.0 in
  let beta_arr = Array.init num_items (Instance.saturation inst) in
  (* per-run chain cache: chain pointers are stable for the whole run (a
     greedy only adds triples, and Strategy never replaces a live chain), so
     one flat array replaces the per-evaluation hashtable probe. Slots flip
     from None to Some exactly once, at the first accept into that chain. *)
  let chains = Array.make (num_users * num_classes) None in
  (for u = 0 to num_users - 1 do
     for cls = 0 to num_classes - 1 do
       let ck = (u * num_classes) + cls in
       match Strategy.chain_view s ~u ~cls with Some _ as c -> chains.(ck) <- c | None -> ()
     done
   done);
  let chain_size_ck ck = match chains.(ck) with None -> 0 | Some c -> Chain.length c in
  (* result cell of the oracle and of [Tl.max_key_into]: floats enter and
     leave the per-cycle calls through preallocated cells, because without
     flambda every float argument or result of a non-inlined call is boxed
     on the minor heap — with ~10^6 cycles per run those boxes were the
     last allocation left on the steady-state path *)
  let res = [| 0.0 |] in
  let marginal_into cid u i t =
    incr evals;
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    match evaluator with
    | `Naive -> res.(0) <- Revenue.marginal ~with_saturation s (Triple.make ~u ~i ~t)
    | `Incremental -> (
        (* the open-coded {!Revenue.marginal_incremental}: same arithmetic,
           but the instance facts come from the flat per-candidate arrays
           and the chain from the flat cache, so a steady-state evaluation
           performs no hashtable lookup and no allocation (these oracle
           calls are accounted under greedy.marginal_evaluations /
           chain.marginals) *)
        match chains.((u * num_classes) + cls_arr.(i)) with
        | Some c ->
            let cells = Chain.oracle_cells c in
            cells.(3) <- fq.((2 * cid) + 1);
            cells.(4) <- prf.((i * stride) + t);
            cells.(5) <- beta_arr.(i);
            Chain.marginal_cells ~with_saturation c ~time:t ~res
        | None ->
            let qz = fq.((2 * cid) + 1) in
            res.(0) <- (if qz <= 0.0 then 0.0 else prf.((i * stride) + t) *. qz))
  in
  (* boxed-float view of the oracle for the cold paths (initial keys, bulk
     group refreshes) *)
  let marginal_cid cid u i t =
    marginal_into cid u i t;
    res.(0)
  in
  (* the budget is consulted between selections only, and only after at
     least one selection, so an expired budget still yields a non-empty
     anytime prefix whenever any triple is selectable *)
  let out_of_budget () =
    match budget with
    | Some b when !selected > 0 && Budget.exhausted b ->
        truncated := true;
        true
    | _ -> false
  in
  (* flat mirrors of the three feasibility facts [Strategy.can_add] would
     probe hashtables for — display fill per (user, time), the distinct-user
     holder set and count per item. The strategy remains the source of
     truth (accept still goes through [Strategy.add]); these are read on
     every heap pop, where four hashtable probes per cycle dominated the
     selection loop. A membership re-check is unnecessary: the heaps hold
     each candidate at most once and a selected triple is deleted before
     [accept], so a popped element can never already be in the strategy. *)
  let capacity = Array.init num_items (Instance.capacity inst) in
  let disp = Array.make (num_users * stride) 0 in
  let holds = Array.make (num_users * num_items) false in
  let holders = Array.make num_items 0 in
  let note (z : Triple.t) =
    let dk = (z.u * stride) + z.t in
    disp.(dk) <- disp.(dk) + 1;
    let hk = (z.u * num_items) + z.i in
    if not holds.(hk) then begin
      holds.(hk) <- true;
      holders.(z.i) <- holders.(z.i) + 1
    end
  in
  List.iter note (Strategy.to_list s);
  let feasible u i t =
    disp.((u * stride) + t) < display_limit
    && (holds.((u * num_items) + i) || holders.(i) < capacity.(i))
  in
  (* the accepted marginal arrives through [res.(0)], not a float argument:
     without flambda a float parameter is boxed at the call boundary, and
     [accept] runs once per selected triple in the steady-state loop *)
  let accept u i t ck =
    let z = Triple.make ~u ~i ~t in
    Strategy.add s z;
    note z;
    (match chains.(ck) with
    | Some _ -> () (* same chain, mutated in place *)
    | None -> chains.(ck) <- Strategy.chain_view_of_triple s z);
    incr selected;
    (* a selection is a unit of work even when its key came from the
       closed-form path below and cost no oracle call *)
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    running_total.(0) <- running_total.(0) +. res.(0);
    match trace with
    | Some f ->
        f { z; size = Strategy.size s; revenue = running_total.(0); evaluations = !evals }
    | None -> ()
  in
  (* key for a triple whose chain is known empty: marginal reduces to p·q
     (Algorithm 1 line 8); avoids an oracle call per candidate at startup *)
  let build_key (z : Triple.t) cid ck =
    if chain_size_ck ck = 0 then prf.((z.i * stride) + z.t) *. fq.((2 * cid) + 1)
    else marginal_cid cid z.u z.i z.t
  in
  let register (z : Triple.t) q =
    let cid = (((z.u * num_items) + z.i) * stride) + z.t in
    prf.((z.i * stride) + z.t) <- Instance.price inst ~i:z.i ~time:z.t;
    let ck = (z.u * num_classes) + cls_arr.(z.i) in
    fq.(2 * cid) <- float_of_int (chain_size_ck ck);
    fq.((2 * cid) + 1) <- q;
    (cid, ck)
  in
  (match heap with
  | `Two_level ->
      let h = Tl.create () in
      (* Groups are keyed by the paper's (user, item) pair — the packed
         [ui = u·num_items + i] — so a refresh event touches one pair's
         horizon-bounded lower heap, exactly §5.1's granularity. A
         selection staleness-marks every candidate of one (user, class),
         i.e. all pairs of the user's same-class items, but the lazy loop
         only refreshes the stale pairs that actually surface as the
         global root before being re-staled; with the coarser user-sized
         groups every event would recompute the whole stale set at once,
         several times more oracle calls for the same trajectory. *)
      Instance.iter_candidate_triples inst (fun z q ->
          if allowed z && not (Strategy.mem s z) then begin
            let cid, ck = register z q in
            Tl.insert h ~pair:((z.u * num_items) + z.i) ~key:(build_key z cid ck) ~tie:cid cid
          end);
      (* Recompute one entry's key and staleness stamp; the fresh key is
         left in [res.(0)] for [Tl.refresh_pair_into] to store. Hoisted so
         the refresh calls share one closure instead of allocating one per
         event. *)
      let refresh_entry cid' =
        let ui' = cid' / stride in
        let i' = ui' mod num_items in
        let u' = ui' / num_items in
        fq.(2 * cid') <- float_of_int (chain_size_ck ((u' * num_classes) + cls_arr.(i')));
        marginal_into cid' u' i' (cid' mod stride)
      in
      (* CELF-style lazy skip, made exact: re-evaluate only the entries
         whose staleness stamp shows their (user, class) chain grew since
         their key was computed. A skipped oracle call would return the
         stored key bit-for-bit — the marginal is a pure function of the
         chain and the candidate, and the stamp witnesses the chain is
         unchanged — so skipping cannot change any selection. The classic
         CELF skip (trust the stale key as an upper bound on the fresh
         marginal) is unsound here: REVMAX marginals can increase when a
         chain grows — the objective is not submodular — and instrumented
         bench runs measure roughly one naive-confirmed increase per
         selection, which steers the upper-bound variant to a different
         (and not reliably better) final strategy. Under pair grouping
         every entry of a refreshed group shares the root's chain and
         stamp, so the skip never fires and both policies coincide; it
         fires (and pays off) under coarser groupings, and keeping it in
         the default path documents the soundness argument lazy skipping
         must meet. *)
      let refresh_entry_memo cid' =
        let ui' = cid' / stride in
        let i' = ui' mod num_items in
        let u' = ui' / num_items in
        let cur' = float_of_int (chain_size_ck ((u' * num_classes) + cls_arr.(i'))) in
        if fq.(2 * cid') < cur' then begin
          fq.(2 * cid') <- cur';
          marginal_into cid' u' i' (cid' mod stride)
        end
        else incr celf_skips (* res.(0) keeps the stored key *)
      in
      (* eager mode: after each selection refresh every candidate of the
         selected triple's (user, class) — every same-class pair group of
         the user; the user's other-class pairs keep their keys *)
      let eager_refresh u sel_i =
        let cls = cls_arr.(sel_i) in
        for i' = 0 to num_items - 1 do
          if cls_arr.(i') = cls then
            Tl.refresh_pair_into h ((u * num_items) + i') res ~f:refresh_entry
        done
      in
      let rec loop () =
        if (not (out_of_budget ())) && not (Tl.is_empty h) then begin
          let cid = Tl.max_elt h in
          let t = cid mod stride in
          let ui = cid / stride in
          let i = ui mod num_items in
          let u = ui / num_items in
          incr pops;
          if not (feasible u i t) then begin
            (* both display fill and capacity blocks are permanent during a
               run (the strategy only grows), so the entry is dropped for
               good — each blocked candidate costs at most one pop *)
            Tl.drop_max h;
            loop ()
          end
          else begin
            let ck = (u * num_classes) + cls_arr.(i) in
            let cur = chain_size_ck ck in
            if fq.(2 * cid) < float_of_int cur then begin
              (* stale root: re-evaluate its (user, item) group in place —
                 all [T] time slots of the pair — through the cell ABI
                 (allocation-free). [`Celf] additionally stamp-skips
                 entries whose chain is provably unchanged; see
                 [refresh_entry_memo] above. *)
              (match lazy_policy with
              | `Refresh_pair -> Tl.refresh_pair_into h ui res ~f:refresh_entry
              | `Celf -> Tl.refresh_pair_into h ui res ~f:refresh_entry_memo);
              loop ()
            end
            else begin
              (* fresh root: decide and pop in one fused walk over both
                 heap levels. [`Rekeyed] cannot surface — the root's own
                 stored key never loses to a child under the heap's strict
                 total order — but looping is the safe response if it ever
                 did. *)
              Tl.max_key_into h res;
              match Tl.celf_step h res with
              | `Finished -> () (* fresh maximum non-positive: done *)
              | `Accepted ->
                  accept u i t ck;
                  if not lazy_forward then eager_refresh u i;
                  loop ()
              | `Rekeyed -> loop ()
            end
          end
        end
      in
      loop ()
  | `Giant ->
      let h = Bh.create () in
      (* capacity purge: once an item reaches its copy capacity, every entry
         of a user outside its holder set is permanently infeasible
         (capacity never frees during a greedy run and such a user can never
         acquire the item). Removing them by handle keeps [pops] independent
         of the blocked-candidate count — the flat-heap analogue of the
         two-level path's per-pop drop. *)
      let by_item = Array.make num_items [] in
      let item_purged = Array.make num_items false in
      let track i hd = if not item_purged.(i) then by_item.(i) <- hd :: by_item.(i) in
      let purge i =
        item_purged.(i) <- true;
        List.iter
          (fun hd ->
            if Bh.contains h hd then begin
              let u = Bh.value hd / (num_items * stride) in
              if not holds.((u * num_items) + i) then Bh.remove h hd
            end)
          by_item.(i);
        by_item.(i) <- []
      in
      let maybe_purge i = if (not item_purged.(i)) && holders.(i) >= capacity.(i) then purge i in
      Instance.iter_candidate_triples inst (fun z q ->
          if allowed z && not (Strategy.mem s z) then begin
            let cid, ck = register z q in
            track z.i (Bh.insert h ~key:(build_key z cid ck) ~tie:cid cid)
          end);
      (* a base strategy may already hold items at capacity *)
      for i = 0 to num_items - 1 do
        maybe_purge i
      done;
      let rec loop () =
        if not (out_of_budget ()) then
          match Bh.delete_max h with
          | None -> ()
          | Some (cid, key) ->
              let t = cid mod stride in
              let ui = cid / stride in
              let i = ui mod num_items in
              let u = ui / num_items in
              incr pops;
              if not (feasible u i t) then loop () (* display-blocked this round *)
              else begin
                let ck = (u * num_classes) + cls_arr.(i) in
                let cur = chain_size_ck ck in
                if fq.(2 * cid) < float_of_int cur then begin
                  fq.(2 * cid) <- float_of_int cur;
                  track i (Bh.insert h ~key:(marginal_cid cid u i t) ~tie:cid cid);
                  loop ()
                end
                else if key <= 0.0 then ()
                else begin
                  res.(0) <- key;
                  accept u i t ck;
                  maybe_purge i;
                  loop ()
                end
              end
      in
      loop ());
  Metrics.incr c_runs;
  Metrics.incr c_evals ~by:!evals;
  Metrics.incr c_pops ~by:!pops;
  Metrics.incr c_selected ~by:!selected;
  Metrics.incr c_celf_skips ~by:!celf_skips;
  if !truncated then Metrics.incr c_truncated;
  (s, { marginal_evaluations = !evals; pops = !pops; selected = !selected; truncated = !truncated })
