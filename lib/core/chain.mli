(** One (user, class) chain backed by a sorted dynamic array with cached
    per-triple aggregates — the incremental revenue engine shared by
    {!Strategy} and {!Revenue}.

    For each triple the chain caches its primitive probability, price and
    saturation factor together with the three derived quantities the revenue
    model of §3.1 is built from: the memory [M] (Equation 1), the
    competition product [Π (1 − q)] over earlier-or-tied triples, and the
    dynamic adoption probability (Definition 1). Two chain revenues are kept
    up to date — with saturation, and the β = 1 variant used by GlobalNo
    planning — so {!Revenue.total_incremental} is O(#chains) and
    {!Revenue.marginal_incremental} is O(L) per candidate instead of the
    O(L²) full re-evaluation of the naive oracle.

    Triples are ordered by {!Triple.chain_before} (time ascending, ties by
    item id); at most one triple per (time, item) may be present. *)

type t

val create : Instance.t -> t
(** An empty chain. The instance supplies prices, probabilities and
    saturation factors for cache maintenance. *)

val length : t -> int
(** O(1) — the paper's [|set(u, C(i))|] lazy-forward reference value. *)

val to_list : t -> Triple.t list
(** Triples in chain order (freshly allocated). *)

val iter : t -> (Triple.t -> unit) -> unit

val mem : t -> Triple.t -> bool
(** O(log L). *)

val insert : ?qz:float -> t -> Triple.t -> unit
(** Splice a triple in, updating every cached aggregate in O(L). [qz]
    overrides the stored primitive probability (default
    [Instance.q]) — how slate strategies store the slot-scaled
    effective q̃ = m_slot · q(u,i,t). Raises [Invalid_argument] on a
    duplicate. *)

val remove : t -> Triple.t -> unit
(** Remove exactly the given triple and rebuild the cached aggregates.
    Raises [Invalid_argument] if the triple is absent — a phantom removal is
    a bug in the caller, never a silent no-op. *)

val revenue : with_saturation:bool -> t -> float
(** Cached chain revenue, O(1). *)

val prob : with_saturation:bool -> t -> Triple.t -> float option
(** Cached dynamic adoption probability of a member triple; [None] if the
    triple is not in the chain. O(log L). *)

val saturation_factor : float -> float -> float
(** [saturation_factor beta m] is the closed form [beta ** m] with the
    [m = 0] guard that keeps an empty memory exact even for [beta = 0].
    This is the single shared definition used by both the incremental chain
    aggregates and {!Revenue.dynamic_probability} — the two evaluators
    cannot drift. *)

val marginal : with_saturation:bool -> t -> Triple.t -> float
(** Revenue delta of inserting the (absent) triple, computed in O(L) from
    the cached aggregates without mutating the chain: the triple's own gain
    (its memory and competition are accumulated in the same pass) minus the
    saturation/competition losses it inflicts on same-time and later
    triples. Agrees with the naive [Rev(chain ∪ {z}) − Rev(chain)] up to
    floating-point rounding. *)

val oracle_cells : t -> float array
(** The chain's preallocated unboxed oracle cells. Slots 3, 4 and 5 are the
    [qz] (candidate adoption probability), [price] and [beta] (item
    saturation base) inputs of {!marginal_cells}; the caller stores them
    with plain float-array writes, which the compiler keeps unboxed. Slots
    0-2 are internal accumulators. The array is owned by the chain — treat
    its contents as dead once {!marginal_cells} returns. *)

val marginal_cells : with_saturation:bool -> t -> time:int -> res:float array -> unit
(** Zero-allocation kernel of {!marginal}: reads the candidate's [qz],
    [price] and [beta] from {!oracle_cells} slots 3..5 and stores the
    marginal into [res.(0)]. Every argument is an immediate or a pointer —
    without flambda a float argument or result of a non-inlined call is
    boxed on the minor heap, and this is the one function the steady-state
    selection loop runs per cycle, so the floats travel through
    preallocated cells instead. The O(L) scan allocates nothing.
    Bit-identical to {!marginal} when handed the same instance facts. *)

val marginal_flat :
  with_saturation:bool -> t -> time:int -> qz:float -> price:float -> beta:float -> float
(** Boxed-float façade over {!marginal_cells} (same single implementation,
    so the entry points cannot drift numerically): the candidate is
    described by its time step plus the three instance facts [q(u,i,t)],
    [p(i,t)] and the item's saturation base, so callers that hoist those
    lookups pay no hashtable probe and no option/tuple allocation per
    call. On native code the only heap traffic is the boxed float
    result. *)
