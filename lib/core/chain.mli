(** One (user, class) chain backed by a sorted dynamic array with cached
    per-triple aggregates — the incremental revenue engine shared by
    {!Strategy} and {!Revenue}.

    For each triple the chain caches its primitive probability, price and
    saturation factor together with the three derived quantities the revenue
    model of §3.1 is built from: the memory [M] (Equation 1), the
    competition product [Π (1 − q)] over earlier-or-tied triples, and the
    dynamic adoption probability (Definition 1). Two chain revenues are kept
    up to date — with saturation, and the β = 1 variant used by GlobalNo
    planning — so {!Revenue.total_incremental} is O(#chains) and
    {!Revenue.marginal_incremental} is O(L) per candidate instead of the
    O(L²) full re-evaluation of the naive oracle.

    Triples are ordered by {!Triple.chain_before} (time ascending, ties by
    item id); at most one triple per (time, item) may be present. *)

type t

val create : Instance.t -> t
(** An empty chain. The instance supplies prices, probabilities and
    saturation factors for cache maintenance. *)

val length : t -> int
(** O(1) — the paper's [|set(u, C(i))|] lazy-forward reference value. *)

val to_list : t -> Triple.t list
(** Triples in chain order (freshly allocated). *)

val iter : t -> (Triple.t -> unit) -> unit

val mem : t -> Triple.t -> bool
(** O(log L). *)

val insert : t -> Triple.t -> unit
(** Splice a triple in, updating every cached aggregate in O(L). Raises
    [Invalid_argument] on a duplicate. *)

val remove : t -> Triple.t -> unit
(** Remove exactly the given triple and rebuild the cached aggregates.
    Raises [Invalid_argument] if the triple is absent — a phantom removal is
    a bug in the caller, never a silent no-op. *)

val revenue : with_saturation:bool -> t -> float
(** Cached chain revenue, O(1). *)

val prob : with_saturation:bool -> t -> Triple.t -> float option
(** Cached dynamic adoption probability of a member triple; [None] if the
    triple is not in the chain. O(log L). *)

val marginal : with_saturation:bool -> t -> Triple.t -> float
(** Revenue delta of inserting the (absent) triple, computed in O(L) from
    the cached aggregates without mutating the chain: the triple's own gain
    (its memory and competition are accumulated in the same pass) minus the
    saturation/competition losses it inflicts on same-time and later
    triples. Agrees with the naive [Rev(chain ∪ {z}) − Rev(chain)] up to
    floating-point rounding. *)
