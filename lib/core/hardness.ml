type rtd = {
  num_craftsmen : int;
  num_jobs : int;
  available : bool array array;
  requires : bool array array;
}

let hours = 3

let availability_count r c =
  Array.fold_left (fun n a -> if a then n + 1 else n) 0 r.available.(c)

let workload r c =
  Array.fold_left (fun n x -> if x then n + 1 else n) 0 r.requires.(c)

let validate r =
  if Array.length r.available <> r.num_craftsmen || Array.length r.requires <> r.num_craftsmen
  then Error "row counts do not match num_craftsmen"
  else if Array.exists (fun row -> Array.length row <> hours) r.available then
    Error "availability rows must have 3 hours"
  else if Array.exists (fun row -> Array.length row <> r.num_jobs) r.requires then
    Error "requirement rows must have num_jobs entries"
  else begin
    let rec check c =
      if c >= r.num_craftsmen then Ok ()
      else begin
        let avail = availability_count r c in
        if avail < 2 then Error (Printf.sprintf "craftsman %d is not a 2- or 3-craftsman" c)
        else if workload r c <> avail then Error (Printf.sprintf "craftsman %d is not tight" c)
        else check (c + 1)
      end
    in
    check 0
  end

let total_work r =
  let n = ref 0 in
  Array.iter (Array.iter (fun x -> if x then incr n)) r.requires;
  !n

let total_unavailable r =
  let n = ref 0 in
  Array.iter (Array.iter (fun a -> if not a then incr n)) r.available;
  !n

(* item layout: job items b*3 + h (class b, price 1 exactly at hour h+1);
   expensive items 3*num_jobs + c (private class, price E always) *)
let to_revmax r =
  (match validate r with Ok () -> () | Error msg -> invalid_arg ("Hardness.to_revmax: " ^ msg));
  let n = total_work r and upsilon = total_unavailable r in
  let e_price = float_of_int (n + 1) in
  let num_items = (3 * r.num_jobs) + r.num_craftsmen in
  let class_of =
    Array.init num_items (fun i -> if i < 3 * r.num_jobs then i / 3 else r.num_jobs + i - (3 * r.num_jobs))
  in
  let price =
    Array.init num_items (fun i ->
        if i < 3 * r.num_jobs then Array.init hours (fun t -> if t = i mod 3 then 1.0 else 0.0)
        else Array.make hours e_price)
  in
  let adoption = ref [] in
  for c = 0 to r.num_craftsmen - 1 do
    for b = 0 to r.num_jobs - 1 do
      if r.requires.(c).(b) then
        for h = 0 to hours - 1 do
          adoption := (c, (b * 3) + h, Array.make hours 1.0) :: !adoption
        done
    done;
    let unavailable = Array.map (fun a -> if a then 0.0 else 1.0) r.available.(c) in
    if Array.exists (fun q -> q > 0.0) unavailable then
      adoption := (c, (3 * r.num_jobs) + c, unavailable) :: !adoption
  done;
  let inst =
    Instance.create ~num_users:r.num_craftsmen ~num_items ~horizon:hours ~display_limit:1
      ~class_of
      ~capacity:(Array.make num_items 1)
      ~saturation:(Array.make num_items 1.0)
      ~price ~adoption:!adoption ()
  in
  (inst, float_of_int n +. (float_of_int upsilon *. e_price))

let feasible r =
  (match validate r with Ok () -> () | Error msg -> invalid_arg ("Hardness.feasible: " ^ msg));
  (* tasks = (craftsman, job) pairs with R = 1; assign each a distinct hour
     within the craftsman's availability, no job double-booked per hour *)
  let tasks = ref [] in
  for c = 0 to r.num_craftsmen - 1 do
    for b = 0 to r.num_jobs - 1 do
      if r.requires.(c).(b) then tasks := (c, b) :: !tasks
    done
  done;
  let craftsman_busy = Array.make_matrix r.num_craftsmen hours false in
  let job_busy = Array.make_matrix r.num_jobs hours false in
  let rec assign = function
    | [] -> true
    | (c, b) :: rest ->
        let rec try_hour h =
          h < hours
          && ((r.available.(c).(h)
              && (not craftsman_busy.(c).(h))
              && not job_busy.(b).(h))
              && begin
                craftsman_busy.(c).(h) <- true;
                job_busy.(b).(h) <- true;
                let ok = assign rest in
                craftsman_busy.(c).(h) <- false;
                job_busy.(b).(h) <- false;
                ok
              end
             || try_hour (h + 1))
        in
        try_hour 0
  in
  assign !tasks

(* Zero-price triples have non-positive marginal revenue in every context
   (they earn nothing and only discount later same-class triples), so the
   optimum is attained over the pruned ground set of profitable triples:
   job item ib_h recommended exactly at hour h, and expensive items at the
   craftsman's unavailable hours. *)
let pruned_ground r inst =
  let ground = ref [] in
  Instance.iter_candidate_triples inst (fun z _q ->
      let profitable =
        if z.Triple.i < 3 * r.num_jobs then z.Triple.i mod 3 = z.Triple.t - 1
        else true (* expensive items are only candidates at profitable hours *)
      in
      if profitable then ground := z :: !ground);
  !ground

let optimal_revenue ?(max_ground = 22) r =
  let inst, _threshold = to_revmax r in
  let ground = Array.of_list (pruned_ground r inst) in
  if Array.length ground > max_ground then
    invalid_arg
      (Printf.sprintf "Hardness.optimal_revenue: %d triples exceed the limit of %d"
         (Array.length ground) max_ground);
  let s = Strategy.create inst in
  let best = ref 0.0 in
  let rec go idx acc =
    if acc > !best then best := acc;
    if idx < Array.length ground then begin
      let z = ground.(idx) in
      go (idx + 1) acc;
      if Strategy.can_add s z then begin
        let gain = Revenue.marginal_incremental s z in
        Strategy.add s z;
        go (idx + 1) (acc +. gain);
        Strategy.remove s z
      end
    end
  in
  go 0 0.0;
  !best

let equivalence_holds ?max_ground r =
  let _inst, threshold = to_revmax r in
  let opt = optimal_revenue ?max_ground r in
  feasible r = (opt >= threshold -. 1e-6)
