(** The 1/(4+ε)-approximation for R-REVMAX (§4.2).

    The ground set is the instance's candidate triples; the display
    constraint becomes the partition matroid of Lemma 2 (blocks = (user,
    time) pairs, bound k); the objective is the relaxed revenue
    {!Relaxed.total}, a non-negative non-monotone submodular function; and
    the search is the Lee et al. local-search algorithm provided by
    {!Revmax_matroid.Submodular}.

    Its cost — O(n⁴ log n / ε) value-oracle calls in the worst case, each an
    O(|S|²)-ish revenue evaluation — is the paper's stated reason for
    preferring the greedy heuristics; the oracle-call count is surfaced so
    benchmarks can demonstrate exactly that. *)

type result = {
  strategy : Strategy.t;  (** display-valid; may exceed capacities (R-REVMAX) *)
  value : float;  (** relaxed revenue of the strategy *)
  oracle_calls : int;
  moves : int;
  truncated : bool;  (** the search was stopped early by an expired budget *)
}

val solve :
  ?eps:float ->
  ?capacity_oracle:(Strategy.t -> Triple.t -> float) ->
  ?budget:Revmax_prelude.Budget.t ->
  ?jobs:int ->
  Instance.t ->
  result
(** [solve inst] approximately maximizes the relaxed revenue under the
    display matroid. [eps] (default 0.5) is the local-search slack;
    [capacity_oracle] overrides the [B_S] computation (default: the exact
    Poisson-binomial DP). Intended for small instances.

    [budget] stops the local search between rounds of moves once exhausted
    (oracle calls are recorded into it via
    {!Revmax_prelude.Budget.note_evaluations}); the iterate returned is
    always display-valid and [truncated] is set.

    [jobs] (default {!Revmax_prelude.Pool.default_jobs}) fans the
    candidate-scan oracle evaluations across domains; the strategy, value
    and [moves] are identical for every [jobs] value (see
    {!Revmax_matroid.Submodular.local_search}). *)
