(** Gradual price availability (§6.3): the horizon is divided into
    sub-horizons [\[T_1\], \[T_2\], …] and prices become known one
    sub-horizon at a time, so the planner commits to the recommendations of
    each sub-horizon before seeing the next one.

    Holistic algorithms (G-Greedy, RL-Greedy) lose revenue in this setting —
    they can no longer trade off triples across the cut — while SL-Greedy is
    unaffected because it already finalizes time steps chronologically. The
    Figure 7 experiment runs G-Greedy and RL-Greedy through this adapter
    with cut-offs 2, 4 and 5 on a 7-step horizon. *)

type algo =
  allowed:(Triple.t -> bool) -> base:Strategy.t -> Instance.t -> Strategy.t
(** A planning algorithm that extends the committed [base] strategy with
    triples satisfying [allowed]. *)

val windows : horizon:int -> cutoffs:int list -> (int * int) list
(** [windows ~horizon ~cutoffs] turns strictly-ascending cut-offs into
    inclusive time windows: cut-offs [\[c\]] give [\[(1,c); (c+1,T)\]], and
    so on. A cut-off equal to [horizon] is allowed and simply leaves no
    trailing window. Raises [Invalid_argument] naming the offending value on
    a duplicate cut-off, and with a range message on descending or
    out-of-range ([c > horizon]) cut-offs. *)

val run : algo -> Instance.t -> cutoffs:int list -> Strategy.t
(** Fold the algorithm over the windows, committing each window's selections
    before planning the next. An empty [cutoffs] reproduces the original
    full-information setting. *)

val g_greedy : algo
(** {!Greedy.run} packaged for this adapter. *)

val rl_greedy : ?permutations:int -> seed:int -> unit -> algo
(** {!Local_greedy.rl_greedy} packaged for this adapter; the permutation
    sampling is seeded deterministically. Within a window only the window's
    time steps are considered in the sampled orders (the others contribute
    no allowed triples). *)
