module Util = Revmax_prelude.Util

(* Recommend each user their k best items under [score], repeated at every
   time step; skip items whose capacity is exhausted by earlier users, and
   stop at the global quantity budget when the instance carries one (the
   static baselines bypass [Strategy.can_add], so the cap is enforced
   here). *)
let static_top score inst =
  let s = Strategy.create inst in
  let k = Instance.display_limit inst in
  let horizon = Instance.horizon inst in
  let cap = Instance.max_total_cap inst in
  for u = 0 to Instance.num_users inst - 1 do
    let cands = Instance.candidates inst u in
    let ranked = Util.top_k_by (Array.length cands) (score u) cands in
    let taken = ref 0 in
    Array.iter
      (fun (i, _qs) ->
        if !taken < k && Strategy.item_user_count s i < Instance.capacity inst i then begin
          incr taken;
          for tm = 1 to horizon do
            if Strategy.size s < cap then Strategy.add s (Triple.make ~u ~i ~t:tm)
          done
        end)
      ranked
  done;
  s

let top_rating inst =
  let score u (i, qs) =
    match Instance.rating inst ~u ~i with
    | Some r -> r
    | None -> Util.mean qs (* fallback proxy, monotone in the rating *)
  in
  static_top score inst

let top_revenue inst =
  let score _u (i, qs) = Instance.price inst ~i ~time:1 *. qs.(0) in
  static_top score inst
