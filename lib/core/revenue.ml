module Metrics = Revmax_prelude.Metrics

(* oracle-call accounting: naive vs incremental entry points, and whether
   the incremental path hit a cached chain view or the empty-chain closed
   form. Atomic increments, so the totals are jobs-invariant. *)
let c_marginal_naive = Metrics.counter "revenue.marginal_naive"

let c_marginal_incremental = Metrics.counter "revenue.marginal_incremental"

let c_marginal_cached = Metrics.counter "revenue.marginal_cached"

let c_marginal_empty = Metrics.counter "revenue.marginal_empty"

let memory ~chain ~time =
  List.fold_left
    (fun acc (z : Triple.t) ->
      if z.t < time then acc +. (1.0 /. float_of_int (time - z.t)) else acc)
    0.0 chain

let dynamic_probability ?(with_saturation = true) ?q_of inst ~chain (z : Triple.t) =
  (* [q_of] overrides the primitive probability of every chain member —
     slate strategies pass their slot-scaled effective q̃; the default is
     the raw instance lookup, byte-identical to the historical path *)
  let qv (z' : Triple.t) =
    match q_of with Some f -> f z' | None -> Instance.q inst ~u:z'.u ~i:z'.i ~time:z'.t
  in
  let q0 = qv z in
  if q0 <= 0.0 then 0.0
  else begin
    let sat =
      (* one shared closed form with Chain's cached aggregates — the naive
         and incremental evaluators cannot drift on the m = 0 guard *)
      if with_saturation then
        Chain.saturation_factor (Instance.saturation inst z.i) (memory ~chain ~time:z.t)
      else 1.0
    in
    let comp =
      List.fold_left
        (fun acc (z' : Triple.t) ->
          if z'.t < z.t || (z'.t = z.t && z'.i <> z.i) then acc *. (1.0 -. qv z') else acc)
        1.0 chain
    in
    q0 *. sat *. comp
  end

let chain_revenue ?with_saturation ?q_of inst chain =
  List.fold_left
    (fun acc (z : Triple.t) ->
      acc
      +. Instance.price inst ~i:z.i ~time:z.t
         *. dynamic_probability ?with_saturation ?q_of inst ~chain z)
    0.0 chain

(* a strategy's own q view: the slot-scaled effective probability on slate
   instances, nothing (the raw-q default) otherwise — so the plain path
   stays byte-identical *)
let strategy_q_of s =
  if Instance.is_slate (Strategy.instance s) then Some (fun z -> Strategy.effective_q s z)
  else None

let total ?with_saturation s =
  let inst = Strategy.instance s in
  let q_of = strategy_q_of s in
  (* group triples into chains via the strategy's own chain index *)
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc (z : Triple.t) ->
      let cls = Instance.class_of inst z.i in
      let key = (z.u * Instance.num_classes inst) + cls in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        acc +. chain_revenue ?with_saturation ?q_of inst (Strategy.chain s ~u:z.u ~cls)
      end)
    0.0 (Strategy.to_list s)

let dynamic_probability_in ?(with_saturation = true) s z =
  if not (Strategy.mem s z) then 0.0
  else
    match Strategy.chain_view_of_triple s z with
    | None -> 0.0 (* unreachable: membership implies a chain entry *)
    | Some c -> ( match Chain.prob ~with_saturation c z with Some p -> p | None -> 0.0)

let marginal ?with_saturation s z =
  if Strategy.mem s z then 0.0
  else begin
    Metrics.incr c_marginal_naive;
    let inst = Strategy.instance s in
    let q_of = strategy_q_of s in
    let chain = Strategy.chain_of_triple s z in
    chain_revenue ?with_saturation ?q_of inst (Triple.chain_insert chain z)
    -. chain_revenue ?with_saturation ?q_of inst chain
  end

let marginal_incremental ?(with_saturation = true) s (z : Triple.t) =
  if Strategy.mem s z then 0.0
  else begin
    Metrics.incr c_marginal_incremental;
    let inst = Strategy.instance s in
    let slate = Instance.is_slate inst in
    match Strategy.chain_view_of_triple s z with
    | Some c ->
        Metrics.incr c_marginal_cached;
        if not slate then Chain.marginal ~with_saturation c z
        else
          (* candidate scored at its would-be slot's effective q̃; chain
             members already carry theirs in the cached aggregates *)
          Chain.marginal_flat ~with_saturation c ~time:z.t ~qz:(Strategy.effective_q s z)
            ~price:(Instance.price inst ~i:z.i ~time:z.t)
            ~beta:(Instance.saturation inst z.i)
    | None ->
        (* empty chain: the marginal reduces to p·q (no memory, no
           competition), exactly Algorithm 1's initialization value *)
        Metrics.incr c_marginal_empty;
        let q =
          if slate then Strategy.effective_q s z else Instance.q inst ~u:z.u ~i:z.i ~time:z.t
        in
        if q <= 0.0 then 0.0 else Instance.price inst ~i:z.i ~time:z.t *. q
  end

let total_incremental ?(with_saturation = true) s =
  let acc = ref 0.0 in
  Strategy.iter_chains s (fun c -> acc := !acc +. Chain.revenue ~with_saturation c);
  !acc
