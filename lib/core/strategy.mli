(** A mutable recommendation strategy [S ⊆ U × I × \[T\]] with the indices
    the algorithms of §5 need in O(1)/O(log):

    - membership and cardinality;
    - the (user, class) {e chains} — time-sorted lists of same-user
      same-class triples, the unit over which revenue decomposes;
    - display counters per (user, time) and distinct-user counters per item,
      for the two validity constraints of Problem 1. *)

type t

val create : Instance.t -> t
(** Empty strategy for an instance. *)

val instance : t -> Instance.t

val size : t -> int

val mem : t -> Triple.t -> bool

val add : ?slot:int -> t -> Triple.t -> unit
(** Raises [Invalid_argument] if the triple is already present or its ids
    are out of range. Does {e not} enforce validity — R-REVMAX strategies
    may exceed capacities on purpose; use [can_add] / [is_valid] to enforce
    Problem 1's constraints.

    On a slate instance the triple occupies ordered slot [slot] (1-based);
    when omitted, the lowest unoccupied slot of the (user, time) display is
    auto-assigned — deterministic, and optimal under the non-increasing
    multipliers. The chain stores the slot-scaled effective probability
    [slot_mult.(slot-1) · q(u,i,t)]. [slot] raises [Invalid_argument] when
    out of [1..k] or given on a non-slate instance; claiming an occupied
    slot is {e allowed} (like an over-limit display add) and reported by
    {!violations} as a [Slot_conflict]. *)

val add_result : ?slot:int -> t -> Triple.t -> (unit, Revmax_prelude.Err.t) result
(** Like {!add} but never raises on bad triples: a duplicate or
    out-of-range triple yields [Error (Invalid_strategy [_])] carrying the
    offending triple. Unlike {!add} it also enforces the global quantity
    budget: an add past [Instance.max_total] yields
    [Error (Invalid_strategy [Quantity_budget _])] naming the overshoot
    and the cap. (A malformed [slot] argument still raises — it is a
    caller bug, not strategy state.) *)

val remove : t -> Triple.t -> unit
(** Removes exactly one occurrence. Raises [Invalid_argument] if the triple
    is absent, or if the internal chain index lost track of it (phantom
    removals are never silently ignored). *)

val to_list : t -> Triple.t list
(** All triples in [Triple.compare] order. *)

val of_list : Instance.t -> Triple.t list -> t

val copy : t -> t
(** Independent deep copy (slate slot assignments included). *)

(** {1 Slates}

    Meaningful only on instances with [Instance.slot_multipliers]; on
    plain instances {!slot_of} is always [None] and {!effective_q}
    degenerates to [Instance.q]. *)

val slot_of : t -> Triple.t -> int option
(** The 1-based slot a member triple occupies; [None] for non-members and
    on non-slate instances. *)

val slot_occupied : t -> Triple.t -> slot:int -> bool
(** Whether some member of the triple's (user, time) display already holds
    the given slot. Always [false] on plain instances. *)

val next_free_slot : t -> Triple.t -> int
(** The slot an auto-assigning {!add} of this triple would take: the
    lowest unoccupied slot of its (user, time) display, or [k] when the
    display is full. [1] on non-slate instances (every display has one
    implicit slot per item). *)

val effective_q : t -> Triple.t -> float
(** The slot-scaled adoption probability [slot_mult.(slot-1) · q(u,i,t)]:
    a member's assigned slot, a non-member's {!next_free_slot}. Plain
    [Instance.q] on non-slate instances. *)

(** {1 Chains} *)

val chain : t -> u:int -> cls:int -> Triple.t list
(** Same-user same-class triples in ascending time order (ties in time in
    ascending item order). Freshly allocated; prefer {!chain_view} on hot
    paths. *)

val chain_of_triple : t -> Triple.t -> Triple.t list
(** The chain that the triple's (user, class) pair selects — whether or not
    the triple itself is in the strategy. *)

val chain_view : t -> u:int -> cls:int -> Chain.t option
(** The live array-backed chain with its cached aggregates; [None] when the
    (user, class) pair has no triples yet. The returned chain is the
    strategy's own state — do not mutate it directly. *)

val chain_view_of_triple : t -> Triple.t -> Chain.t option
(** {!chain_view} keyed by a triple's (user, class) pair. *)

val chain_size : t -> u:int -> cls:int -> int
(** O(1); this is the paper's [|set(u, C(i))|], the lazy-forward flag
    reference value of Algorithm 1. *)

val iter_chains : t -> (Chain.t -> unit) -> unit
(** Visit every non-empty chain (arbitrary order). The callback must not
    modify the strategy. *)

(** {1 Constraint bookkeeping} *)

val display_count : t -> u:int -> time:int -> int
(** Number of items recommended to [u] at [time]. *)

val item_user_count : t -> int -> int
(** Number of distinct users the item is recommended to. *)

val item_has_user : t -> i:int -> u:int -> bool

val can_add : t -> Triple.t -> bool
(** True iff the triple is absent and adding it keeps the display
    constraint ([display_count < k]), the capacity constraint
    ([item_user_count < q_i], unless the user already receives the item),
    and the global quantity budget ([size < Instance.max_total], when the
    instance carries one). *)

val is_valid : t -> bool
(** Both constraints of Problem 1 hold for the whole strategy. *)

val is_valid_display_only : t -> bool
(** Only the display constraint — validity in the R-REVMAX sense (§4.2). *)

val violations : t -> Revmax_prelude.Err.violated_constraint list
(** Every violated constraint of Problem 1 (and of the active constraint
    variants), in a deterministic order: display-limit overflows (with the
    offending user, time, count, and limit) sorted by (user, time), then
    slate slot conflicts sorted by (user, time, slot), then capacity
    overflows (with the offending item, its distinct-user count, and its
    capacity) sorted by item, then the quantity-budget breach (with the
    total count and the cap), if any, last. Empty iff {!is_valid}. *)

val validate : t -> (unit, Revmax_prelude.Err.t) result
(** Like {!is_valid} but explains failure: [Error (Invalid_strategy cs)]
    carries the complete witness set of {!violations} — every violated
    constraint, not just the first — so callers (e.g. the sharding
    reconciliation tests) can assert the precise set of over-subscribed
    items and overflowing display slots. *)

(** {1 Reporting} *)

val repeat_histogram : t -> int array
(** Element [r-1] counts (user, item) pairs recommended exactly [r] times —
    the data behind Figure 5. Length = horizon. *)

val item_recommendations_up_to :
  t -> i:int -> time:int -> (int, Triple.t list) Hashtbl.t
(** Per-user lists of recommendations of item [i] at times ≤ [time]
    (ascending time within a user) — the [S_{i,t}] of Definition 4. *)

val pp : Format.formatter -> t -> unit
