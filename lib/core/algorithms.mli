(** Registry of the algorithms evaluated in §6, so experiments and the CLI
    can run a named suite uniformly.

    Every run returns a Problem-1-valid strategy; GlobalNo {e plans} without
    saturation but the returned strategy is always scored under the true
    model (the caller evaluates with {!Revenue.total}). *)

type t =
  | G_greedy  (** GG: Global Greedy, Algorithm 1 *)
  | Global_no  (** GG-No: Global Greedy planning with β = 1 *)
  | Sl_greedy  (** SLG: Sequential Local Greedy, Algorithm 2 *)
  | Rl_greedy of int  (** RLG: Randomized Local Greedy with N permutations *)
  | Sharded_greedy of int
      (** GG-Sh: user-sharded Global Greedy with capacity reconciliation
          ({!Shard_greedy}) on N shards; N = 0 defers to
          {!Shard_greedy.default_shards} at run time *)
  | Top_revenue  (** TopRE baseline *)
  | Top_rating  (** TopRA baseline *)

val name : t -> string
(** Paper-style short name: GG, GG-No, RLG, SLG, GG-Sh, TopRev, TopRat. *)

val run : ?budget:Revmax_prelude.Budget.t -> t -> Instance.t -> seed:int -> Strategy.t
(** Execute the algorithm. Deterministic given [seed] (only RL-Greedy
    consumes randomness). With [budget], the greedy family returns its
    best-so-far valid strategy on expiry (see {!Greedy.run}); use
    {!run_anytime} to learn whether truncation occurred. *)

val run_anytime :
  ?budget:Revmax_prelude.Budget.t -> t -> Instance.t -> seed:int -> Strategy.t * bool
(** Like {!run} but also reports whether the run was cut short by the
    budget. The sort-based baselines (TopRev, TopRat) ignore the budget and
    always report [false]. *)

val default_suite : t list
(** The six algorithms of Figures 1–3, in the paper's legend order:
    GG, GG-No, RLG (N=20), SLG, TopRev, TopRat. *)

val parse : string -> t option
(** Inverse of [name] (case-insensitive); [RLG] and [GG-Sh] accept an
    optional [:N] suffix, e.g. ["rlg:10"], ["gg-sh:4"] (["gg-sh"] alone
    uses {!Shard_greedy.default_shards}). *)
