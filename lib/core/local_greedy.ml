module Bh = Revmax_pqueue.Binary_heap
module Rng = Revmax_prelude.Rng
module Budget = Revmax_prelude.Budget
module Metrics = Revmax_prelude.Metrics

(* bulk-added from the run's stat refs on exit, as in Greedy *)
let c_runs = Metrics.counter "local_greedy.runs"

let c_evals = Metrics.counter "local_greedy.marginal_evaluations"

let c_pops = Metrics.counter "local_greedy.pops"

let c_selected = Metrics.counter "local_greedy.selected"

let c_permutations = Metrics.counter "local_greedy.permutations"

type stats = Greedy.stats = {
  marginal_evaluations : int;
  pops : int;
  selected : int;
  truncated : bool;
}

type elt = { z : Triple.t; mutable flag : int }

let greedy_in_order ?(with_saturation = true) ?(evaluator = `Incremental)
    ?(allowed = fun _ -> true) ?base ?trace ?budget inst ~order =
  let horizon = Instance.horizon inst in
  let seen_time = Array.make (horizon + 1) false in
  List.iter
    (fun tm ->
      if tm < 1 || tm > horizon then invalid_arg "Local_greedy: time step out of range";
      if seen_time.(tm) then invalid_arg "Local_greedy: duplicate time step in order";
      seen_time.(tm) <- true)
    order;
  let s = match base with Some b -> Strategy.copy b | None -> Strategy.create inst in
  let evals = ref 0 and pops = ref 0 and selected = ref 0 in
  let truncated = ref false in
  let running_total = ref 0.0 in
  let chain_size_of (z : Triple.t) =
    Strategy.chain_size s ~u:z.u ~cls:(Instance.class_of inst z.i)
  in
  let marginal (z : Triple.t) =
    incr evals;
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    match evaluator with
    | `Incremental -> Revenue.marginal_incremental ~with_saturation s z
    | `Naive -> Revenue.marginal ~with_saturation s z
  in
  (* consulted between selections, after at least one, as in Greedy.run *)
  let out_of_budget () =
    match budget with
    | Some b when !selected > 0 && Budget.exhausted b ->
        truncated := true;
        true
    | _ -> false
  in
  let round tm =
    let h = Bh.create () in
    (* Algorithm 2 line 7: populate with marginal revenue given the current
       global S (which holds the recommendations of earlier rounds) *)
    Array.iteri
      (fun u row ->
        Array.iter
          (fun (i, qs) ->
            if qs.(tm - 1) > 0.0 then begin
              let z = Triple.make ~u ~i ~t:tm in
              if allowed z && not (Strategy.mem s z) then
                ignore (Bh.insert h ~key:(marginal z) { z; flag = chain_size_of z })
            end)
          row)
      (Array.init (Instance.num_users inst) (Instance.candidates inst));
    let rec consume () =
      if not (out_of_budget ()) then
        match Bh.delete_max h with
        | None -> ()
        | Some (e, key) ->
            incr pops;
            if not (Strategy.can_add s e.z) then consume ()
            else begin
              let cur = chain_size_of e.z in
              if e.flag < cur then begin
                (* lazy forward within the round *)
                e.flag <- cur;
                ignore (Bh.insert h ~key:(marginal e.z) e);
                consume ()
              end
              else if key <= 0.0 then ()
              else begin
                Strategy.add s e.z;
                incr selected;
                (match budget with Some b -> Budget.spend b 1 | None -> ());
                running_total := !running_total +. key;
                (match trace with
                | Some f ->
                    f
                      {
                        Greedy.z = e.z;
                        size = Strategy.size s;
                        revenue = !running_total;
                        evaluations = !evals;
                      }
                | None -> ());
                consume ()
              end
            end
    in
    consume ()
  in
  List.iter (fun tm -> if not (out_of_budget ()) then round tm) order;
  Metrics.incr c_runs;
  Metrics.incr c_evals ~by:!evals;
  Metrics.incr c_pops ~by:!pops;
  Metrics.incr c_selected ~by:!selected;
  (s, { marginal_evaluations = !evals; pops = !pops; selected = !selected; truncated = !truncated })

let sl_greedy ?with_saturation ?evaluator ?allowed ?base ?trace ?budget inst =
  let order = List.init (Instance.horizon inst) (fun idx -> idx + 1) in
  greedy_in_order ?with_saturation ?evaluator ?allowed ?base ?trace ?budget inst ~order

let factorial_capped n cap =
  let rec go acc i = if i > n || acc >= cap then min acc cap else go (acc * i) (i + 1) in
  go 1 2

let rl_greedy ?with_saturation ?evaluator ?(permutations = 20) ?allowed ?base ?budget ?jobs inst
    rng =
  if permutations < 1 then invalid_arg "Local_greedy.rl_greedy: need at least one permutation";
  let horizon = Instance.horizon inst in
  let n = min permutations (factorial_capped horizon permutations) in
  (* always include the chronological order, then distinct random ones; the
     order list is drawn sequentially from [rng] before any fan-out, so it —
     and everything downstream — is independent of [jobs] *)
  let chrono = List.init horizon (fun idx -> idx + 1) in
  let seen = Hashtbl.create n in
  Hashtbl.replace seen chrono ();
  let orders = ref [ chrono ] in
  while List.length !orders < n do
    let p = Array.to_list (Array.map (fun idx -> idx + 1) (Rng.permutation rng horizon)) in
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.replace seen p ();
      orders := p :: !orders
    end
  done;
  (* Each permutation's greedy run reads only the (immutable) instance and
     its own strategy, so the sweep fans out across domains. [None] marks a
     run skipped by an exhausted shared budget; the skip check happens when
     the task starts, so at jobs = 1 this replays the sequential semantics
     exactly (with jobs > 1 and a live budget, which permutations are
     skipped is timing-dependent — like any wall-clock budget). *)
  let run_one idx order =
    (* the first permutation always runs in full so an expired budget still
       yields a usable strategy; later ones are skipped once exhausted *)
    let skip = match budget with Some b -> idx > 0 && Budget.exhausted b | None -> false in
    if skip then None
    else begin
      let inner_budget = if idx = 0 then None else budget in
      let s, st =
        greedy_in_order ?with_saturation ?evaluator ?allowed ?base ?budget:inner_budget inst
          ~order
      in
      (* the first permutation runs unbudgeted; charge its work afterwards
         so later skip decisions account for it *)
      (match (inner_budget, budget) with
      | None, Some b -> Budget.spend b (st.marginal_evaluations + st.selected)
      | _ -> ());
      (* permutations are compared under the true model; the cached chain
         revenues make this O(#chains) instead of a full re-evaluation *)
      Some (s, st, Revenue.total_incremental s)
    end
  in
  let order_array = Array.of_list !orders in
  Metrics.incr c_permutations ~by:(Array.length order_array);
  let results =
    Revmax_prelude.Pool.parallel_init ?jobs (Array.length order_array) ~f:(fun idx ->
        run_one idx order_array.(idx))
  in
  (* deterministic in-order reduction: stats sum in permutation order and the
     first maximum wins ties, as in the sequential loop *)
  let best = ref None in
  let total_stats = ref { marginal_evaluations = 0; pops = 0; selected = 0; truncated = false } in
  Array.iter
    (function
      | None -> total_stats := { !total_stats with truncated = true }
      | Some (s, st, v) -> (
          total_stats :=
            {
              marginal_evaluations = !total_stats.marginal_evaluations + st.marginal_evaluations;
              pops = !total_stats.pops + st.pops;
              selected = !total_stats.selected + st.selected;
              truncated = !total_stats.truncated || st.truncated;
            };
          match !best with
          | Some (_, bv) when bv >= v -> ()
          | _ -> best := Some (s, v)))
    results;
  match !best with
  | Some (s, _) -> (s, !total_stats)
  | None -> (Strategy.create inst, !total_stats)
