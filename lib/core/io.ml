module Err = Revmax_prelude.Err

let fp = Printf.fprintf

let write_instance oc inst =
  fp oc "revmax-instance 1\n";
  fp oc "# users items horizon display_limit\n";
  fp oc "dims %d %d %d %d\n" (Instance.num_users inst) (Instance.num_items inst)
    (Instance.horizon inst) (Instance.display_limit inst);
  let horizon = Instance.horizon inst in
  for i = 0 to Instance.num_items inst - 1 do
    fp oc "item %d %d %d %.17g" i (Instance.class_of inst i) (Instance.capacity inst i)
      (Instance.saturation inst i);
    for t = 1 to horizon do
      fp oc " %.17g" (Instance.price inst ~i ~time:t)
    done;
    fp oc "\n"
  done;
  for u = 0 to Instance.num_users inst - 1 do
    Array.iter
      (fun (i, qs) ->
        (match Instance.rating inst ~u ~i with
        | Some r -> fp oc "rating %d %d %.17g\n" u i r
        | None -> ());
        fp oc "q %d %d" u i;
        Array.iter (fun q -> fp oc " %.17g" q) qs;
        fp oc "\n")
      (Instance.candidates inst u)
  done;
  fp oc "end\n"

type parse_state = {
  file : string;
  mutable line_no : int;
  mutable line : string; (* raw text of the current line, for column reports *)
  ic : in_channel;
}

let fail ?(col = 0) st msg =
  Err.raise_ (Err.Parse_error { file = st.file; line = st.line_no; col; msg })

(* 1-based column of [token] as a whitespace-delimited field of the current
   raw line; 0 when it cannot be located (e.g. after trimming collapsed it) *)
let column_of st token =
  let line = st.line in
  let n = String.length line and m = String.length token in
  let is_ws c = c = ' ' || c = '\t' in
  let rec scan i =
    if m = 0 || i + m > n then 0
    else if
      (i = 0 || is_ws line.[i - 1])
      && String.sub line i m = token
      && (i + m = n || is_ws line.[i + m])
    then i + 1
    else scan (i + 1)
  in
  scan 0

(* next non-comment, non-blank line split on whitespace; None at EOF *)
let rec next_fields st =
  match In_channel.input_line st.ic with
  | None -> None
  | Some line ->
      st.line_no <- st.line_no + 1;
      st.line <- line;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then next_fields st
      else Some (String.split_on_char ' ' line |> List.filter (fun s -> s <> ""))

let int_field st s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail ~col:(column_of st s) st ("bad integer " ^ s)

let float_field st s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail ~col:(column_of st s) st ("bad float " ^ s)

let default_file = "<channel>"

let read_instance_exn ?(file = default_file) ic =
  let st = { file; line_no = 0; line = ""; ic } in
  (match next_fields st with
  | Some [ "revmax-instance"; "1" ] -> ()
  | _ -> fail st "expected header: revmax-instance 1");
  let num_users, num_items, horizon, display_limit =
    match next_fields st with
    | Some [ "dims"; a; b; c; d ] ->
        (int_field st a, int_field st b, int_field st c, int_field st d)
    | _ -> fail st "expected: dims <users> <items> <horizon> <k>"
  in
  if num_users < 0 || num_items < 0 || horizon < 1 || display_limit < 1 then
    fail st "bad dimensions";
  let class_of = Array.make num_items 0 in
  let capacity = Array.make num_items 0 in
  let saturation = Array.make num_items 0.0 in
  let price = Array.init num_items (fun _ -> Array.make horizon 0.0) in
  let seen_item = Array.make num_items false in
  let ratings = ref [] and adoption = ref [] in
  let finished = ref false in
  while not !finished do
    match next_fields st with
    | None -> fail st "unexpected end of file (missing `end')"
    | Some [ "end" ] -> finished := true
    | Some ("item" :: idx :: cls :: cap :: sat :: prices) ->
        let i = int_field st idx in
        if i < 0 || i >= num_items then fail ~col:(column_of st idx) st "item id out of range";
        if seen_item.(i) then fail st "duplicate item record";
        seen_item.(i) <- true;
        class_of.(i) <- int_field st cls;
        capacity.(i) <- int_field st cap;
        saturation.(i) <- float_field st sat;
        if List.length prices <> horizon then fail st "wrong number of prices";
        List.iteri (fun t p -> price.(i).(t) <- float_field st p) prices
    | Some [ "rating"; u; i; r ] ->
        ratings := (int_field st u, int_field st i, float_field st r) :: !ratings
    | Some ("q" :: u :: i :: qs) ->
        if List.length qs <> horizon then fail st "wrong number of probabilities";
        let arr = Array.of_list (List.map (float_field st) qs) in
        adoption := (int_field st u, int_field st i, arr) :: !adoption
    | Some (tag :: _) -> fail ~col:(column_of st tag) st ("unknown record " ^ tag)
    | Some [] -> ()
  done;
  Array.iteri (fun i seen -> if not seen then fail st (Printf.sprintf "item %d missing" i)) seen_item;
  match
    Instance.create_checked ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity
      ~saturation ~price ~ratings:!ratings ~adoption:!adoption ()
  with
  | Ok inst -> inst
  | Error e -> Err.raise_ e

let read_instance_result ?file ic =
  match read_instance_exn ?file ic with v -> Ok v | exception Err.Error e -> Error e

let read_instance ?file ic =
  try read_instance_exn ?file ic with Err.Error e -> failwith (Err.message e)

let write_strategy oc s =
  fp oc "revmax-strategy 1\n";
  List.iter (fun (z : Triple.t) -> fp oc "triple %d %d %d\n" z.u z.i z.t) (Strategy.to_list s);
  fp oc "end\n"

let read_strategy_exn ?(file = default_file) inst ic =
  let st = { file; line_no = 0; line = ""; ic } in
  (match next_fields st with
  | Some [ "revmax-strategy"; "1" ] -> ()
  | _ -> fail st "expected header: revmax-strategy 1");
  let s = Strategy.create inst in
  let finished = ref false in
  while not !finished do
    match next_fields st with
    | None -> fail st "unexpected end of file (missing `end')"
    | Some [ "end" ] -> finished := true
    | Some [ "triple"; u; i; t ] -> (
        let z = Triple.make ~u:(int_field st u) ~i:(int_field st i) ~t:(int_field st t) in
        match Strategy.add_result s z with Ok () -> () | Error e -> fail st (Err.message e))
    | Some (tag :: _) -> fail ~col:(column_of st tag) st ("unknown record " ^ tag)
    | Some [] -> ()
  done;
  s

let read_strategy_result ?file inst ic =
  match read_strategy_exn ?file inst ic with v -> Ok v | exception Err.Error e -> Error e

let read_strategy ?file inst ic =
  try read_strategy_exn ?file inst ic with Err.Error e -> failwith (Err.message e)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

(* Write through [f], then force the bytes to stable storage before the
   channel closes: without the [Unix.fsync] a crash shortly after the
   rename can leave the *renamed* file empty or truncated on journaling
   filesystems (the rename is a metadata operation and may be committed
   before the data blocks), which is exactly the torn-checkpoint state
   [save_atomic] exists to rule out. *)
let with_out_sync path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      let r = f oc in
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc);
      r)

(* Best-effort directory sync so the rename itself survives power loss;
   some platforms refuse fsync on a directory fd, which is fine to
   ignore — the data-file fsync above already rules out torn contents. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let save_atomic path f =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp" in
  match with_out_sync tmp f with
  | () ->
      Sys.rename tmp path;
      fsync_dir dir
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let save_instance path inst = with_out path (fun oc -> write_instance oc inst)
let load_instance path = with_in path (read_instance ~file:path)

let load_instance_result path =
  match with_in path (fun ic -> read_instance_result ~file:path ic) with
  | r -> r
  | exception Sys_error msg -> Error (Err.Io_error { path; msg })

let save_strategy path s = with_out path (fun oc -> write_strategy oc s)
let load_strategy inst path = with_in path (read_strategy ~file:path inst)

let load_strategy_result inst path =
  match with_in path (fun ic -> read_strategy_result ~file:path inst ic) with
  | r -> r
  | exception Sys_error msg -> Error (Err.Io_error { path; msg })
