(** Exact REVMAX solvers.

    [brute_force] enumerates all valid strategies over the candidate ground
    set — exponential, usable only on micro instances; it is the optimality
    oracle behind the approximation-gap tests and the [abl-exact] benchmark,
    and its blow-up is the practical face of Theorem 1 (NP-hardness).

    [solve_t1] is the polynomial special case of §3.2: for T = 1 REVMAX is a
    maximum-weight degree-constrained subgraph problem on the bipartite
    user–item graph (edge weight [p(i,1)·q(u,i,1)], user degree bound k,
    item degree bound q_i), solved exactly by {!Revmax_flow.Max_dcs}. *)

type anytime_result = {
  strategy : Strategy.t;
  value : float;
  nodes : int;  (** search-tree nodes expanded *)
  truncated : bool;  (** the search was pruned by an expired budget *)
}

val brute_force : ?max_ground:int -> ?budget:Revmax_prelude.Budget.t -> Instance.t -> Strategy.t * float
(** Optimal valid strategy and its expected revenue. Raises
    [Invalid_argument] when the instance has more than [max_ground]
    (default 18) candidate triples. With [budget], see
    {!brute_force_anytime} — the result may then be the best incumbent
    rather than the optimum. *)

val brute_force_anytime :
  ?max_ground:int -> ?budget:Revmax_prelude.Budget.t -> Instance.t -> anytime_result
(** Like {!brute_force} but reports search statistics. An exhausted [budget]
    (charged one evaluation per include-branch marginal) prunes the rest of
    the search; the incumbent returned is always a valid strategy, and
    [truncated] records whether pruning occurred. *)

val solve_t1 : Instance.t -> Strategy.t * float
(** Exact solution for a one-step horizon. Raises [Invalid_argument] when
    [Instance.horizon inst <> 1]. *)
