(** The two-level heap of §5.1 of the paper.

    Elements are grouped by an integer [pair] (in the paper: a (user, item)
    pair). Each group is a small lower-level max-heap over its elements (in
    the paper: the time steps of that pair); a master upper-level heap orders
    the groups by the key of their lower-level root. The globally best
    element is always the root of the upper-level root's lower heap.

    The payoff over one giant heap is that key updates triggered by a greedy
    selection only traverse a lower heap of at most [T] elements plus the
    upper heap of at most [|U|·|I|] groups — the rationale given in the
    paper, and measured by the [abl-heap] benchmark. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
(** Total number of stored elements across all groups. *)

val is_empty : 'a t -> bool

val insert : 'a t -> pair:int -> key:float -> ?tie:int -> 'a -> unit
(** Add an element to group [pair]; O(log) in the group and upper sizes.
    [tie] (default [0]) is the element's tie rank within its group: equal
    keys pop smaller-rank first. Groups with equal root keys order by the
    smaller [pair], so with distinct ranks the global pop order is a pure
    function of the stored (key, rank, pair) triples. *)

val find_max : 'a t -> (int * 'a * float) option
(** Best element overall as [(pair, element, key)]; O(1). *)

val delete_max : 'a t -> (int * 'a * float) option
(** Remove and return the best element, fixing up both levels. Empty groups
    are dropped from the upper level. *)

(** {2 Allocation-free root operations}

    The unboxed counterparts used by the greedy steady-state loop: same
    mutations as [find_max]/[delete_max]/[refresh_max], without the
    option/tuple wrappers and callback closures. All of them require a
    non-empty heap and raise [Invalid_argument] otherwise — guard with
    [is_empty]. *)

val max_elt : 'a t -> 'a
(** Best element overall; O(1), allocation-free. *)

val max_key : 'a t -> float
(** Key of the best element; O(1). The result is a boxed float — the hot
    loop uses {!max_key_into}. *)

val max_key_into : 'a t -> float array -> unit
(** Store the best element's key into [cell.(0)]; O(1) and allocation-free
    (no boxed float crosses the call boundary). *)

val drop_max : 'a t -> unit
(** Remove the best element without returning it — [delete_max] minus the
    result allocation. Empty groups are dropped from the upper level. *)

val celf_step : 'a t -> float array -> [ `Accepted | `Finished | `Rekeyed ]
(** [celf_step t cell] performs one CELF decision against the freshly
    recomputed key of the current best element, read from [cell.(0)] (a
    preallocated cell, so no boxed float crosses the call): [`Rekeyed]
    means the key fell below the global runner-up and the root was
    re-keyed in place on both levels; [`Accepted] means it still leads
    and is positive, and the element was removed (as [drop_max]);
    [`Finished] means it leads but is non-positive — every other key is
    an upper bound below it, so selection is complete. "Leads" is decided
    in the strict (key, tie rank) total order, so an exact key tie
    resolves to the same element an eager full refresh would pick. The
    rekeys are handle-free root rekeys, bit-identical in arrangement to
    [update_key] on the root handle, fused into one walk over both
    levels' raw arrays. Allocation-free. *)

val find_second : 'a t -> float option
(** Key of the globally second-best element, or [None] with fewer than two
    elements. It is either the runner-up inside the best group's lower heap
    or the root key of the runner-up group, so the lookup is O(1). *)

val refresh_max : 'a t -> f:('a -> float -> float option) -> unit
(** Recompute the key of only the globally best element: [f elt old_key]
    returns its new key, or [None] to discard it. Both levels are fixed up in
    O(log) time. No-op on an empty heap. Unlike [refresh_pair], the rest of
    the root group keeps its (stale) keys — this is the single-element CELF
    re-evaluation step. *)

val refresh_pair : 'a t -> int -> f:('a -> float -> float option) -> unit
(** [refresh_pair t pair ~f] recomputes the key of every element in group
    [pair]: [f elt old_key] returns the new key, or [None] to discard the
    element. The group is re-heapified in O(group size) and the upper level
    is updated. No-op if the group does not exist. This is the bulk
    "recompute all stale triples of the lower heap" step of Algorithm 1. *)

val refresh_pair_into : 'a t -> int -> float array -> f:('a -> unit) -> unit
(** [refresh_pair_into t pair cell ~f] is {!refresh_pair} for the
    keep-every-element case, allocation-free: each element's key travels
    through [cell.(0)] (see {!Binary_heap.refresh_keys_into}) and the upper
    level is re-synced from the group's new root. No-op if the group does
    not exist. *)

val drop_pair : 'a t -> int -> unit
(** Remove an entire group (e.g. when a constraint permanently rules out all
    of its elements). No-op if absent. *)

val pair_size : 'a t -> int -> int
(** Number of elements currently in a group (0 if absent). *)

val iter : 'a t -> (int -> 'a -> float -> unit) -> unit
(** Visit every stored element. The callback must not modify the heap. *)
