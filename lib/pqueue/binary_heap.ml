module Metrics = Revmax_prelude.Metrics

(* per-operation counters: a single branch each when metrics are disabled.
   The two-level heap is built on this one, so its structural operations
   show up here too. *)
let c_inserts = Metrics.counter "binary_heap.inserts"

let c_deletes = Metrics.counter "binary_heap.delete_max"

let c_removes = Metrics.counter "binary_heap.removes"

let c_update_keys = Metrics.counter "binary_heap.update_keys"

type 'a handle = {
  mutable hkey : float;
  hvalue : 'a;
  mutable pos : int; (* -1 once removed *)
  owner : int; (* identity of the owning heap, to catch cross-heap misuse *)
}

type 'a t = {
  mutable data : 'a handle array; (* data.(0 .. size-1) are live *)
  mutable heap_size : int;
  id : int;
}

let next_id = ref 0

let create ?(capacity = 16) () =
  incr next_id;
  { data = Array.make (max capacity 1) (Obj.magic 0); heap_size = 0; id = !next_id }

let size t = t.heap_size

let is_empty t = t.heap_size = 0

let swap t i j =
  let a = t.data.(i) and b = t.data.(j) in
  t.data.(i) <- b;
  t.data.(j) <- a;
  a.pos <- j;
  b.pos <- i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(parent).hkey < t.data.(i).hkey then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.heap_size && t.data.(l).hkey > t.data.(!largest).hkey then largest := l;
  if r < t.heap_size && t.data.(r).hkey > t.data.(!largest).hkey then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let grow t =
  let cap = Array.length t.data in
  if t.heap_size = cap then begin
    let data = Array.make (2 * cap) t.data.(0) in
    Array.blit t.data 0 data 0 cap;
    t.data <- data
  end

let insert t ~key v =
  Metrics.incr c_inserts;
  grow t;
  let h = { hkey = key; hvalue = v; pos = t.heap_size; owner = t.id } in
  t.data.(t.heap_size) <- h;
  t.heap_size <- t.heap_size + 1;
  sift_up t h.pos;
  h

let find_max t = if t.heap_size = 0 then None else Some (t.data.(0).hvalue, t.data.(0).hkey)

let find_max_handle t = if t.heap_size = 0 then None else Some t.data.(0)

let check t h =
  if h.owner <> t.id || h.pos < 0 || h.pos >= t.heap_size || t.data.(h.pos) != h then
    invalid_arg "Binary_heap: stale or foreign handle"

let remove_unchecked t h =
  let i = h.pos in
  let last = t.heap_size - 1 in
  if i <> last then swap t i last;
  t.heap_size <- last;
  h.pos <- -1;
  if i < t.heap_size then begin
    sift_down t i;
    sift_up t i
  end

let remove t h =
  Metrics.incr c_removes;
  check t h;
  remove_unchecked t h

let delete_max t =
  if t.heap_size = 0 then None
  else begin
    Metrics.incr c_deletes;
    let h = t.data.(0) in
    remove_unchecked t h;
    Some (h.hvalue, h.hkey)
  end

let update_key t h key =
  Metrics.incr c_update_keys;
  check t h;
  let old = h.hkey in
  h.hkey <- key;
  if key > old then sift_up t h.pos else if key < old then sift_down t h.pos

let contains t h = h.owner = t.id && h.pos >= 0 && h.pos < t.heap_size && t.data.(h.pos) == h

let key h = h.hkey

let value h = h.hvalue

let iter t f =
  for i = 0 to t.heap_size - 1 do
    f t.data.(i).hvalue t.data.(i).hkey
  done

let of_list l =
  let t = create ~capacity:(max 1 (List.length l)) () in
  List.iter
    (fun (k, v) ->
      grow t;
      let h = { hkey = k; hvalue = v; pos = t.heap_size; owner = t.id } in
      t.data.(t.heap_size) <- h;
      t.heap_size <- t.heap_size + 1)
    l;
  (* bottom-up heapify: O(n) *)
  for i = (t.heap_size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let to_sorted_list t =
  let items = ref [] in
  iter t (fun v k -> items := (v, k) :: !items);
  List.sort (fun (_, k1) (_, k2) -> compare k2 k1) !items
