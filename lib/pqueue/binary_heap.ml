module Metrics = Revmax_prelude.Metrics

(* per-operation counters: a single branch each when metrics are disabled.
   The two-level heap is built on this one, so its structural operations
   show up here too. *)
let c_inserts = Metrics.counter "binary_heap.inserts"

let c_deletes = Metrics.counter "binary_heap.delete_max"

let c_removes = Metrics.counter "binary_heap.removes"

let c_update_keys = Metrics.counter "binary_heap.update_keys"

(* Structure-of-arrays layout with slot indirection. [keys] (unboxed
   floats) and [slots] (slot ids) are parallel arrays in heap order, and
   [posof] maps slot id → current heap position — so a sift level reads
   and writes only unboxed int/float arrays. Keeping element pointers out
   of the sift path is deliberate: a store into a pointer array runs the
   GC write barrier ([caml_modify]), and with tens of sift moves per
   greedy cycle the barrier dominated every heap-ordered-value layout
   that was profiled. Element pointers live in [byval], indexed by slot
   id and written exactly once per insert. [gens] carries a generation
   counter bumped on every slot free, which is how a stale handle (its
   slot recycled or removed) is detected from flat int arrays alone.
   [tb] holds the per-element tie rank (slot-indexed, so it rides along
   through sifts for free): equal keys order by SMALLER rank first —
   matching the first-maximum-wins order of a naive argmax scan over
   candidates — making the heap order a strict total order. Pop order is then a property of the
   stored (key, rank) pairs alone, independent of insertion history or
   rebuilds — the bedrock of the cross-policy / cross-shard bit-identity
   guarantees of the greedy selection loop. *)
type 'a handle = { hvalue : 'a; sid : int; gen : int; owner : int }

type 'a t = {
  mutable keys : float array; (* keys.(0 .. size-1) are live, heap order *)
  mutable slots : int array; (* heap position -> slot id *)
  mutable tb : int array; (* slot id -> tie rank; equal keys, smaller rank wins *)
  mutable byval : 'a array; (* slot id -> element, written once per insert *)
  mutable posof : int array; (* slot id -> heap position; -1 once removed *)
  mutable gens : int array; (* slot id -> generation, bumped on free *)
  mutable free : int array; (* stack of recycled slot ids *)
  mutable free_top : int;
  mutable nslots : int; (* high-water slot count *)
  mutable heap_size : int;
  id : int; (* identity of the owning heap, to catch cross-heap misuse *)
}

let next_id = ref 0

let create ?(capacity = 16) () =
  incr next_id;
  let cap = max capacity 1 in
  {
    keys = Array.make cap 0.0;
    slots = Array.make cap 0;
    tb = Array.make cap 0;
    byval = Array.make cap (Obj.magic 0);
    posof = Array.make cap (-1);
    gens = Array.make cap 0;
    free = Array.make cap 0;
    free_top = 0;
    nslots = 0;
    heap_size = 0;
    id = !next_id;
  }

let size t = t.heap_size

let is_empty t = t.heap_size = 0

(* 8-ary, hole-based sifting. Eight children per node cut the sift depth to a third
   of a binary heap and sit contiguously in the key array, which matters
   because a sift is a chain of dependent loads. The hole technique holds
   the displaced element out while ancestors or the largest child slide
   into the hole, and writes it back once at its final position. Ties:
   equal keys compare by tie rank ([tb]), smaller rank first — the rank
   load sits behind the float-equality test, so the common unequal-keys
   case pays only the branch. *)
let arity = 8

let sift_up t i0 =
  let hk = t.keys.(i0) and hs = t.slots.(i0) in
  let ht = t.tb.(hs) in
  let i = ref i0 in
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / arity in
    let kp = t.keys.(parent) in
    if kp < hk || (kp = hk && t.tb.(t.slots.(parent)) > ht) then begin
      t.keys.(!i) <- t.keys.(parent);
      t.slots.(!i) <- t.slots.(parent);
      t.posof.(t.slots.(!i)) <- !i;
      i := parent
    end
    else continue_ := false
  done;
  if !i <> i0 then begin
    t.keys.(!i) <- hk;
    t.slots.(!i) <- hs;
    t.posof.(hs) <- !i
  end

let sift_down t i0 =
  let hk = t.keys.(i0) and hs = t.slots.(i0) in
  let ht = t.tb.(hs) in
  let i = ref i0 in
  let continue_ = ref true in
  while !continue_ do
    let first = (arity * !i) + 1 in
    (* int [min] by hand: the polymorphic [Stdlib.min] is a generic
       comparison call, visible in profiles at one call per sift level *)
    let last = if first + arity - 1 < t.heap_size - 1 then first + arity - 1 else t.heap_size - 1 in
    let largest = ref !i in
    let lk = ref hk in
    let lt = ref ht in
    for c = first to last do
      let kc = t.keys.(c) in
      if kc > !lk || (kc = !lk && t.tb.(t.slots.(c)) < !lt) then begin
        largest := c;
        lk := kc;
        lt := t.tb.(t.slots.(c))
      end
    done;
    if !largest <> !i then begin
      t.keys.(!i) <- t.keys.(!largest);
      t.slots.(!i) <- t.slots.(!largest);
      t.posof.(t.slots.(!i)) <- !i;
      i := !largest
    end
    else continue_ := false
  done;
  if !i <> i0 then begin
    t.keys.(!i) <- hk;
    t.slots.(!i) <- hs;
    t.posof.(hs) <- !i
  end

let grow t =
  let cap = Array.length t.keys in
  if t.heap_size = cap then begin
    let keys = Array.make (2 * cap) 0.0 in
    Array.blit t.keys 0 keys 0 cap;
    t.keys <- keys;
    let slots = Array.make (2 * cap) 0 in
    Array.blit t.slots 0 slots 0 cap;
    t.slots <- slots;
    let tb = Array.make (2 * cap) 0 in
    Array.blit t.tb 0 tb 0 cap;
    t.tb <- tb;
    let byval = Array.make (2 * cap) t.byval.(0) in
    Array.blit t.byval 0 byval 0 cap;
    t.byval <- byval;
    let posof = Array.make (2 * cap) (-1) in
    Array.blit t.posof 0 posof 0 cap;
    t.posof <- posof;
    let gens = Array.make (2 * cap) 0 in
    Array.blit t.gens 0 gens 0 cap;
    t.gens <- gens;
    let free = Array.make (2 * cap) 0 in
    Array.blit t.free 0 free 0 cap;
    t.free <- free
  end

let alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    let sid = t.nslots in
    t.nslots <- sid + 1;
    sid
  end

let push_unchecked t key tie v =
  grow t;
  let sid = alloc_slot t in
  let h = { hvalue = v; sid; gen = t.gens.(sid); owner = t.id } in
  t.keys.(t.heap_size) <- key;
  t.slots.(t.heap_size) <- sid;
  t.tb.(sid) <- tie;
  t.byval.(sid) <- v;
  t.posof.(sid) <- t.heap_size;
  t.heap_size <- t.heap_size + 1;
  h

let insert t ~key ?(tie = 0) v =
  Metrics.incr c_inserts;
  let h = push_unchecked t key tie v in
  sift_up t t.posof.(h.sid);
  h

let find_max t =
  if t.heap_size = 0 then None else Some (t.byval.(t.slots.(0)), t.keys.(0))

(* unboxed root accessors: the greedy hot loop peeks the maximum on every
   cycle, and the option/tuple of [find_max] would be the only allocation
   left on that path *)
let max_elt t =
  if t.heap_size = 0 then invalid_arg "Binary_heap.max_elt: empty heap";
  t.byval.(t.slots.(0))

let max_key t =
  if t.heap_size = 0 then invalid_arg "Binary_heap.max_key: empty heap";
  t.keys.(0)

(* [max_key] for the float-free hot-loop ABI: the key leaves through a
   preallocated cell, so no boxed-float result is allocated at the call
   boundary (without flambda every float crossing a non-inlined call is
   boxed). *)
let max_key_into t cell =
  if t.heap_size = 0 then invalid_arg "Binary_heap.max_key_into: empty heap";
  cell.(0) <- t.keys.(0)

(* in a max-heap the second-largest key sits in one of the root's children *)
let second_key_inf t =
  if t.heap_size < 2 then neg_infinity
  else begin
    let last = if arity < t.heap_size - 1 then arity else t.heap_size - 1 in
    let best = ref t.keys.(1) in
    for c = 2 to last do
      if t.keys.(c) > !best then best := t.keys.(c)
    done;
    !best
  end

let second_key t = if t.heap_size < 2 then None else Some (second_key_inf t)

let contains t h = h.owner = t.id && t.gens.(h.sid) = h.gen && t.posof.(h.sid) >= 0

let check t h = if not (contains t h) then invalid_arg "Binary_heap: stale or foreign handle"

(* remove the element at heap position [i], freeing its slot *)
let remove_at t i =
  let sid = t.slots.(i) in
  t.posof.(sid) <- -1;
  t.gens.(sid) <- t.gens.(sid) + 1;
  t.free.(t.free_top) <- sid;
  t.free_top <- t.free_top + 1;
  t.byval.(sid) <- Obj.magic 0 (* drop the vacated element reference *);
  let last = t.heap_size - 1 in
  t.heap_size <- last;
  if i < last then begin
    t.keys.(i) <- t.keys.(last);
    t.slots.(i) <- t.slots.(last);
    t.posof.(t.slots.(i)) <- i;
    sift_down t i;
    sift_up t i
  end

let remove t h =
  Metrics.incr c_removes;
  check t h;
  remove_at t t.posof.(h.sid)

let delete_max t =
  if t.heap_size = 0 then None
  else begin
    Metrics.incr c_deletes;
    let v = t.byval.(t.slots.(0)) in
    let k = t.keys.(0) in
    remove_at t 0;
    Some (v, k)
  end

let find_max_handle t =
  if t.heap_size = 0 then None
  else begin
    let sid = t.slots.(0) in
    Some { hvalue = t.byval.(sid); sid; gen = t.gens.(sid); owner = t.id }
  end

let update_key t h key =
  Metrics.incr c_update_keys;
  check t h;
  let i = t.posof.(h.sid) in
  let old = t.keys.(i) in
  t.keys.(i) <- key;
  if key > old then sift_up t i else if key < old then sift_down t i

(* handle-free root operations: identical heap mutations to [update_key] /
   [remove] applied to the root (a raised key never sifts up from the
   root; the removal path is shared), so arrangements — and hence pop
   order and tie-breaking — match the handle forms exactly. *)
let rekey_root t key =
  Metrics.incr c_update_keys;
  if t.heap_size = 0 then invalid_arg "Binary_heap.rekey_root: empty heap";
  let old = t.keys.(0) in
  t.keys.(0) <- key;
  if key < old then sift_down t 0

let remove_root t =
  Metrics.incr c_deletes;
  if t.heap_size = 0 then invalid_arg "Binary_heap.remove_root: empty heap";
  remove_at t 0

(* The fused CELF decision over a two-level (lower, upper) heap pair,
   placed here so the whole cycle runs inside one module over the raw
   arrays: the fresh marginal arrives through [cell.(0)] and every callee
   ([sift_down]) takes only immediates — the decision allocates nothing.
   [m] beats the lead iff no root child of either heap orders above it in
   the strict (key, tie rank) order (the lower children compare against
   the root element's rank, the upper children against the root group's).
   Returns 0 = root re-keyed to [m] (lost the lead; the mutations of
   [rekey_root] on both levels), 1 = accepted (lower root removed, upper
   re-keyed), 2 = finished ([m] leads but is non-positive), 3 = accepted
   and the lower heap drained (the caller drops the group and the upper
   root). *)
let celf_decide lower upper cell =
  let m = cell.(0) in
  let beaten = ref false in
  (if lower.heap_size >= 2 then begin
     let rtie = lower.tb.(lower.slots.(0)) in
     let last = if arity < lower.heap_size - 1 then arity else lower.heap_size - 1 in
     for c = 1 to last do
       let kc = lower.keys.(c) in
       if kc > m || (kc = m && lower.tb.(lower.slots.(c)) < rtie) then beaten := true
     done
   end);
  (if (not !beaten) && upper.heap_size >= 2 then begin
     let utie = upper.tb.(upper.slots.(0)) in
     let last = if arity < upper.heap_size - 1 then arity else upper.heap_size - 1 in
     for c = 1 to last do
       let kc = upper.keys.(c) in
       if kc > m || (kc = m && upper.tb.(upper.slots.(c)) < utie) then beaten := true
     done
   end);
  if !beaten then begin
    Metrics.incr c_update_keys;
    let old = lower.keys.(0) in
    lower.keys.(0) <- m;
    if m < old then sift_down lower 0;
    Metrics.incr c_update_keys;
    let oldu = upper.keys.(0) in
    let k = lower.keys.(0) in
    upper.keys.(0) <- k;
    if k < oldu then sift_down upper 0;
    0
  end
  else if m <= 0.0 then 2
  else begin
    Metrics.incr c_deletes;
    remove_at lower 0;
    if lower.heap_size = 0 then 3
    else begin
      Metrics.incr c_update_keys;
      let oldu = upper.keys.(0) in
      let k = lower.keys.(0) in
      upper.keys.(0) <- k;
      if k < oldu then sift_down upper 0;
      1
    end
  end

let key t h =
  check t h;
  t.keys.(t.posof.(h.sid))

let value h = h.hvalue

let iter t f =
  for i = 0 to t.heap_size - 1 do
    f t.byval.(t.slots.(i)) t.keys.(i)
  done

(* In-place bulk rekey: recompute every element's key with [f], dropping
   elements for which it returns [None], then re-heapify. Slot ids — and
   with them handles, generations and tie ranks — survive, which is what
   keeps tie-breaking identical across the lazy policies: a rebuilt group
   orders exactly like an incrementally maintained one. The surviving
   elements are compacted in heap-array order (write index trails the read
   index, so the compaction is safe in place), then heapified bottom-up in
   O(n). No per-element allocation. *)
let refresh_keys t ~f =
  let n = t.heap_size in
  let w = ref 0 in
  for i = 0 to n - 1 do
    let sid = t.slots.(i) in
    match f t.byval.(sid) t.keys.(i) with
    | Some k' ->
        t.keys.(!w) <- k';
        t.slots.(!w) <- sid;
        t.posof.(sid) <- !w;
        incr w
    | None ->
        t.posof.(sid) <- -1;
        t.gens.(sid) <- t.gens.(sid) + 1;
        t.free.(t.free_top) <- sid;
        t.free_top <- t.free_top + 1;
        t.byval.(sid) <- Obj.magic 0
  done;
  t.heap_size <- !w;
  for i = (!w - 2) / arity downto 0 do
    sift_down t i
  done

(* [refresh_keys] for the keep-every-element case, with the keys travelling
   through a caller-owned cell instead of boxed floats and options: for each
   element, [cell.(0)] is loaded with the current key, [f] is called on the
   value alone (it rewrites [cell.(0)], or leaves it to keep the key), and
   the cell is stored back. The whole walk allocates nothing — this is the
   group-refresh step of the greedy steady-state loop. Heapify and element
   order are exactly those of [refresh_keys] with an all-[Some] callback,
   so both entry points produce bit-identical arrangements. *)
let refresh_keys_into t cell ~f =
  let n = t.heap_size in
  for i = 0 to n - 1 do
    cell.(0) <- t.keys.(i);
    f t.byval.(t.slots.(i));
    t.keys.(i) <- cell.(0)
  done;
  for i = (n - 2) / arity downto 0 do
    sift_down t i
  done

let of_list l =
  let t = create ~capacity:(max 1 (List.length l)) () in
  List.iter (fun (k, v) -> ignore (push_unchecked t k 0 v)) l;
  (* bottom-up heapify: O(n) *)
  for i = (t.heap_size - 2) / arity downto 0 do
    sift_down t i
  done;
  t

let to_sorted_list t =
  let items = ref [] in
  iter t (fun v k -> items := (v, k) :: !items);
  List.sort (fun (_, k1) (_, k2) -> compare k2 k1) !items
