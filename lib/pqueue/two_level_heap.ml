module Metrics = Revmax_prelude.Metrics

let c_inserts = Metrics.counter "two_level_heap.inserts"

let c_pops = Metrics.counter "two_level_heap.pops"

let c_refresh_pairs = Metrics.counter "two_level_heap.refresh_pairs"

let c_drop_pairs = Metrics.counter "two_level_heap.drop_pairs"

type 'a t = {
  lower : (int, 'a Binary_heap.t) Hashtbl.t;
  upper : int Binary_heap.t;
  upper_handle : (int, int Binary_heap.handle) Hashtbl.t;
  mutable total : int;
}

let create () =
  {
    lower = Hashtbl.create 1024;
    upper = Binary_heap.create ();
    upper_handle = Hashtbl.create 1024;
    total = 0;
  }

let size t = t.total

let is_empty t = t.total = 0

(* Re-establish the upper-level key of [pair] after its lower heap changed.
   Removes the pair entirely when its lower heap has drained. *)
let sync_upper t pair lower =
  match Binary_heap.find_max lower with
  | None ->
      Hashtbl.remove t.lower pair;
      (match Hashtbl.find_opt t.upper_handle pair with
      | Some h ->
          Binary_heap.remove t.upper h;
          Hashtbl.remove t.upper_handle pair
      | None -> ())
  | Some (_, root_key) -> (
      match Hashtbl.find_opt t.upper_handle pair with
      | Some h -> Binary_heap.update_key t.upper h root_key
      | None ->
          let h = Binary_heap.insert t.upper ~key:root_key pair in
          Hashtbl.replace t.upper_handle pair h)

let insert t ~pair ~key v =
  Metrics.incr c_inserts;
  let lower =
    match Hashtbl.find_opt t.lower pair with
    | Some l -> l
    | None ->
        let l = Binary_heap.create ~capacity:8 () in
        Hashtbl.replace t.lower pair l;
        l
  in
  ignore (Binary_heap.insert lower ~key v);
  t.total <- t.total + 1;
  sync_upper t pair lower

let find_max t =
  match Binary_heap.find_max t.upper with
  | None -> None
  | Some (pair, _) -> (
      let lower = Hashtbl.find t.lower pair in
      match Binary_heap.find_max lower with
      | None -> None (* unreachable: empty groups are removed eagerly *)
      | Some (v, k) -> Some (pair, v, k))

let delete_max t =
  match Binary_heap.find_max t.upper with
  | None -> None
  | Some (pair, _) -> (
      let lower = Hashtbl.find t.lower pair in
      match Binary_heap.delete_max lower with
      | None -> None
      | Some (v, k) ->
          Metrics.incr c_pops;
          t.total <- t.total - 1;
          sync_upper t pair lower;
          Some (pair, v, k))

let refresh_pair t pair ~f =
  match Hashtbl.find_opt t.lower pair with
  | None -> ()
  | Some lower ->
      Metrics.incr c_refresh_pairs;
      let old = ref [] in
      Binary_heap.iter lower (fun v k -> old := (v, k) :: !old);
      let n_old = List.length !old in
      let rekeyed =
        List.filter_map (fun (v, k) -> Option.map (fun k' -> (k', v)) (f v k)) !old
      in
      let fresh = Binary_heap.of_list rekeyed in
      t.total <- t.total - n_old + Binary_heap.size fresh;
      if Binary_heap.is_empty fresh then begin
        Hashtbl.remove t.lower pair;
        match Hashtbl.find_opt t.upper_handle pair with
        | Some h ->
            Binary_heap.remove t.upper h;
            Hashtbl.remove t.upper_handle pair
        | None -> ()
      end
      else begin
        Hashtbl.replace t.lower pair fresh;
        sync_upper t pair fresh
      end

let drop_pair t pair =
  match Hashtbl.find_opt t.lower pair with
  | None -> ()
  | Some lower ->
      Metrics.incr c_drop_pairs;
      t.total <- t.total - Binary_heap.size lower;
      Hashtbl.remove t.lower pair;
      (match Hashtbl.find_opt t.upper_handle pair with
      | Some h ->
          Binary_heap.remove t.upper h;
          Hashtbl.remove t.upper_handle pair
      | None -> ())

let pair_size t pair =
  match Hashtbl.find_opt t.lower pair with None -> 0 | Some l -> Binary_heap.size l

let iter t f = Hashtbl.iter (fun pair lower -> Binary_heap.iter lower (fun v k -> f pair v k)) t.lower
