module Metrics = Revmax_prelude.Metrics

let c_inserts = Metrics.counter "two_level_heap.inserts"

let c_pops = Metrics.counter "two_level_heap.pops"

let c_refresh_pairs = Metrics.counter "two_level_heap.refresh_pairs"

let c_drop_pairs = Metrics.counter "two_level_heap.drop_pairs"

let c_refresh_maxes = Metrics.counter "two_level_heap.refresh_maxes"

(* One group per pair. The upper heap stores the group records themselves
   (not pair ids), and each group remembers its own upper-heap handle, so
   every hot-path operation — find_max, delete_max, find_second,
   refresh_max — walks straight from the upper root to its lower heap
   without touching a hashtable. The [lower] table only serves the by-pair
   entry points (insert, refresh_pair, drop_pair, pair_size). *)
type 'a group = {
  pair : int;
  mutable heap : 'a Binary_heap.t;
  mutable uh : 'a group Binary_heap.handle option;
}

type 'a t = {
  lower : (int, 'a group) Hashtbl.t;
  upper : 'a group Binary_heap.t;
  mutable total : int;
}

let create () = { lower = Hashtbl.create 1024; upper = Binary_heap.create (); total = 0 }

let size t = t.total

let is_empty t = t.total = 0

(* Re-establish the upper-level key of a group after its lower heap changed.
   Removes the group entirely when its lower heap has drained. *)
let sync_upper t g =
  match Binary_heap.find_max g.heap with
  | None -> (
      Hashtbl.remove t.lower g.pair;
      match g.uh with
      | Some h ->
          Binary_heap.remove t.upper h;
          g.uh <- None
      | None -> ())
  | Some (_, root_key) -> (
      match g.uh with
      | Some h -> Binary_heap.update_key t.upper h root_key
      | None -> g.uh <- Some (Binary_heap.insert t.upper ~key:root_key ~tie:g.pair g))

let insert t ~pair ~key ?(tie = 0) v =
  Metrics.incr c_inserts;
  let g =
    match Hashtbl.find_opt t.lower pair with
    | Some g -> g
    | None ->
        let g = { pair; heap = Binary_heap.create ~capacity:8 (); uh = None } in
        Hashtbl.replace t.lower pair g;
        g
  in
  ignore (Binary_heap.insert g.heap ~key ~tie v);
  t.total <- t.total + 1;
  sync_upper t g

let top_group t =
  if Binary_heap.is_empty t.upper then None else Some (Binary_heap.max_elt t.upper)

(* ----- allocation-free root accessors for the greedy hot loop -----
   All of these require a non-empty heap (the callers guard on [is_empty])
   and operate on the top group, which by the upper-heap invariant is the
   upper root — so they can mutate the upper key with the handle-free
   [Binary_heap.rekey_root]/[remove_root] and never touch the [lower]
   hashtable. *)

let max_elt t =
  let g = Binary_heap.max_elt t.upper in
  Binary_heap.max_elt g.heap

let max_key t = Binary_heap.max_key t.upper

let max_key_into t cell = Binary_heap.max_key_into t.upper cell

let drop_max t =
  Metrics.incr c_pops;
  let g = Binary_heap.max_elt t.upper in
  Binary_heap.remove_root g.heap;
  t.total <- t.total - 1;
  if Binary_heap.is_empty g.heap then begin
    Hashtbl.remove t.lower g.pair;
    Binary_heap.remove_root t.upper;
    g.uh <- None
  end
  else Binary_heap.rekey_root t.upper (Binary_heap.max_key g.heap)

(* Fused CELF decision step: the freshly recomputed marginal of the
   current global maximum arrives through [cell.(0)] (no boxed float
   crosses the call boundary) and {!Binary_heap.celf_decide} performs the
   whole compare/rekey/pop cycle over the two heaps' raw arrays — a
   handle-free root rekey or the mutations of [drop_max], fused and
   allocation-free.

   The lead test uses the strict (key, tie rank) total order, not the key
   alone: when the fresh marginal exactly ties the runner-up's key, the
   rank winner must be selected — an eager full refresh would order them
   that way in the heap, so accepting the root just because its key is
   "not below" the runner-up would let the two lazy policies pick
   different elements of an exact marginal tie. Rekeying instead lets the
   tie-aware sift surface the rank winner. *)
let celf_step t cell =
  let g = Binary_heap.max_elt t.upper in
  match Binary_heap.celf_decide g.heap t.upper cell with
  | 0 ->
      Metrics.incr c_refresh_maxes;
      `Rekeyed
  | 2 -> `Finished
  | 1 ->
      Metrics.incr c_pops;
      t.total <- t.total - 1;
      `Accepted
  | _ ->
      (* accepted and the top group drained: drop it from both levels *)
      Metrics.incr c_pops;
      t.total <- t.total - 1;
      Hashtbl.remove t.lower g.pair;
      Binary_heap.remove_root t.upper;
      g.uh <- None;
      `Accepted

let find_max t =
  match top_group t with
  | None -> None
  | Some g -> (
      match Binary_heap.find_max g.heap with
      | None -> None (* unreachable: empty groups are removed eagerly *)
      | Some (v, k) -> Some (g.pair, v, k))

let delete_max t =
  match top_group t with
  | None -> None
  | Some g -> (
      match Binary_heap.delete_max g.heap with
      | None -> None
      | Some (v, k) ->
          Metrics.incr c_pops;
          t.total <- t.total - 1;
          sync_upper t g;
          Some (g.pair, v, k))

(* Global runner-up key: either the second element of the top group's lower
   heap, or the root of the second-best group — both O(1) peeks into flat
   key arrays, so this never touches more than four heap slots. *)
let find_second t =
  match top_group t with
  | None -> None
  | Some g -> (
      let within = Binary_heap.second_key g.heap in
      let across = Binary_heap.second_key t.upper in
      match (within, across) with
      | None, None -> None
      | (Some _ as s), None | None, (Some _ as s) -> s
      | Some a, Some b -> Some (Float.max a b))

let refresh_max t ~f =
  match top_group t with
  | None -> ()
  | Some g -> (
      match Binary_heap.find_max_handle g.heap with
      | None -> () (* unreachable: empty groups are removed eagerly *)
      | Some h -> (
          Metrics.incr c_refresh_maxes;
          match f (Binary_heap.value h) (Binary_heap.key g.heap h) with
          | Some key' ->
              Binary_heap.update_key g.heap h key';
              sync_upper t g
          | None ->
              Binary_heap.remove g.heap h;
              t.total <- t.total - 1;
              sync_upper t g))

let refresh_pair t pair ~f =
  match Hashtbl.find_opt t.lower pair with
  | None -> ()
  | Some g ->
      Metrics.incr c_refresh_pairs;
      let n_old = Binary_heap.size g.heap in
      (* in-place rekey + heapify: keeps every element's slot and tie rank,
         so a rebuilt group breaks exact key ties identically to a group
         maintained one CELF rekey at a time; also drops the intermediate
         list and heap the old rebuild allocated *)
      Binary_heap.refresh_keys g.heap ~f;
      t.total <- t.total - n_old + Binary_heap.size g.heap;
      sync_upper t g

(* the allocation-free [refresh_pair] for the keep-every-element case: keys
   travel through [cell] (see {!Binary_heap.refresh_keys_into}), and the
   upper level is re-synced from the group's new root. Arrangements are
   bit-identical to [refresh_pair] with an all-[Some] callback. Since no
   element is removed the group stays non-empty and keeps its upper handle,
   so the sync is a direct [update_key] — no [find_max] wrapper, and
   [find]'s [Not_found] is a preallocated exception, keeping the whole
   refresh event off the minor heap (modulo the boxed root key). *)
let refresh_pair_into t pair cell ~f =
  match Hashtbl.find t.lower pair with
  | exception Not_found -> ()
  | g -> (
      Metrics.incr c_refresh_pairs;
      Binary_heap.refresh_keys_into g.heap cell ~f;
      match g.uh with
      | Some h -> Binary_heap.update_key t.upper h (Binary_heap.max_key g.heap)
      | None -> () (* unreachable: non-empty groups always carry a handle *))

let drop_pair t pair =
  match Hashtbl.find_opt t.lower pair with
  | None -> ()
  | Some g -> (
      Metrics.incr c_drop_pairs;
      t.total <- t.total - Binary_heap.size g.heap;
      Hashtbl.remove t.lower g.pair;
      match g.uh with
      | Some h ->
          Binary_heap.remove t.upper h;
          g.uh <- None
      | None -> ())

let pair_size t pair =
  match Hashtbl.find_opt t.lower pair with None -> 0 | Some g -> Binary_heap.size g.heap

let iter t f = Hashtbl.iter (fun pair g -> Binary_heap.iter g.heap (fun v k -> f pair v k)) t.lower
