(** Maximum binary heap over float keys with stable handles.

    Each inserted element returns a handle through which its key can later be
    updated ([update_key]) or the element removed ([remove]) in O(log n).
    This supports the Decrease-Key operations required by the lazy-forward
    greedy selection of the paper (§5.1) and by Dijkstra's algorithm in the
    min-cost-flow substrate.

    The keys are kept in a flat unboxed float array parallel to the element
    array (structure-of-arrays), so sift comparisons read contiguous memory
    and [update_key] never boxes the new key.

    Ordering is the strict total order on (key, tie rank): elements with
    equal keys order by the integer [tie] given at insertion, smaller rank
    first — the element a naive first-maximum-wins argmax scan would pick
    (insertion order is irrelevant to pop order). Callers that need
    reproducible pop sequences across rebuilds, shards or lazy policies
    pass a stable element id as the rank; the default rank [0] leaves
    equal-key order unspecified-but-deterministic for a fixed operation
    sequence. *)

type 'a t
(** A heap holding elements of type ['a]. *)

type 'a handle
(** Stable reference to an element inside a heap. A handle becomes invalid
    once its element has been removed; [contains] reports validity. *)

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] is a size hint. *)

val size : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val insert : 'a t -> key:float -> ?tie:int -> 'a -> 'a handle
(** Add an element with the given priority; O(log n). [tie] (default [0])
    is the element's tie rank: equal keys pop smaller-rank first. *)

val find_max : 'a t -> ('a * float) option
(** Highest-priority element and its key, without removing it; O(1). *)

val find_max_handle : 'a t -> 'a handle option
(** Handle of the highest-priority element; O(1). *)

val max_elt : 'a t -> 'a
(** Highest-priority element without the option wrapper; O(1) and
    allocation-free. Raises [Invalid_argument] on an empty heap. *)

val max_key : 'a t -> float
(** Key of the highest-priority element; O(1), no wrapper allocation.
    Raises [Invalid_argument] on an empty heap. *)

val max_key_into : 'a t -> float array -> unit
(** Store the root key into [cell.(0)] — [max_key] for the float-free
    hot-loop ABI: no boxed float crosses the call, so the read is
    allocation-free even without flambda. Raises [Invalid_argument] on an
    empty heap. *)

val celf_decide : 'a t -> 'b t -> float array -> int
(** [celf_decide lower upper cell] performs one fused CELF decision for a
    two-level heap whose top group's lower heap is [lower] and whose upper
    heap of groups is [upper], against the freshly recomputed root key in
    [cell.(0)]. The key keeps the global lead iff no root child of either
    heap orders above [(cell.(0), root tie rank)] — lower children compare
    against the root element's rank, upper children against the root
    group's. Returns [0]: lead lost, both roots re-keyed (the mutations of
    [rekey_root] on each level); [1]: accepted, lower root removed and
    upper root re-keyed; [2]: the key leads but is non-positive (greedy is
    finished); [3]: accepted and [lower] drained — the caller must drop
    the group and the upper root. Allocation-free: the marginal arrives
    through the cell and every internal call passes only immediates. *)

val second_key : 'a t -> float option
(** Key of the second-highest-priority element (the largest root child), or
    [None] with fewer than two elements; O(1). Allocation: one [Some]. *)

val second_key_inf : 'a t -> float
(** [second_key] without the option: [neg_infinity] stands for "no second
    element". Allocation-free. *)

val delete_max : 'a t -> ('a * float) option
(** Remove and return the highest-priority element; O(log n). *)

val update_key : 'a t -> 'a handle -> float -> unit
(** Change an element's priority (up or down); O(log n). Raises
    [Invalid_argument] if the handle is no longer in the heap. *)

val remove : 'a t -> 'a handle -> unit
(** Remove an arbitrary element; O(log n). Raises [Invalid_argument] if the
    handle is no longer in the heap. *)

val rekey_root : 'a t -> float -> unit
(** [rekey_root t k] changes the root's key to [k] without needing its
    handle; the resulting arrangement is exactly that of [update_key] on
    the root handle. O(log n), allocation-free. Raises [Invalid_argument]
    on an empty heap. *)

val remove_root : 'a t -> unit
(** Remove the root without returning it — [delete_max] minus the result
    allocation; same mutation, bit-identical arrangement. Raises
    [Invalid_argument] on an empty heap. *)

val contains : 'a t -> 'a handle -> bool
(** Whether the handle still refers to a stored element of this heap. *)

val key : 'a t -> 'a handle -> float
(** Current key of a valid handle of this heap; the key lives in the heap's
    flat key array, not in the handle. Raises [Invalid_argument] if the
    handle is stale or foreign. *)

val value : 'a handle -> 'a
(** Element carried by the handle. *)

val iter : 'a t -> ('a -> float -> unit) -> unit
(** Visit all stored elements in unspecified order. The callback must not
    modify the heap. *)

val refresh_keys : 'a t -> f:('a -> float -> float option) -> unit
(** In-place bulk rekey: every element's key is recomputed as [f elt old];
    [None] removes the element (its handles go stale). The heap is then
    re-heapified bottom-up in O(n). Elements keep their slots and tie
    ranks, so equal-key order after the rebuild matches an incrementally
    maintained heap. No per-element allocation. *)

val refresh_keys_into : 'a t -> float array -> f:('a -> unit) -> unit
(** {!refresh_keys} for the keep-every-element case, allocation-free: for
    each element, [cell.(0)] is loaded with its current key, [f elt] may
    rewrite [cell.(0)] (or leave it to keep the key), and the cell is
    stored back — no boxed float or option crosses the callback boundary.
    Re-heapifies bottom-up afterwards; arrangements are bit-identical to
    [refresh_keys] with an all-[Some] callback. *)

val of_list : (float * 'a) list -> 'a t
(** Bulk build (heapify) in O(n); all tie ranks default to [0]. *)

val to_sorted_list : 'a t -> ('a * float) list
(** Non-destructive: all elements in descending key order; O(n log n). *)
