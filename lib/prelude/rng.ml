type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let c_splits = Metrics.counter "rng.splits"

let split t =
  Metrics.incr c_splits;
  let s = int64 t in
  { state = mix64 s }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: n must be non-negative";
  Array.init n (fun _ -> split t)

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* rejection sampling to avoid modulo bias *)
    let rec go () =
      let r = bits30 t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then go () else v
    in
    go ()
  end else
    (* large bounds: use 62 bits *)
    let rec go () =
      let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then go () else v
    in
    go ()

let unit_float t =
  (* 53 random bits mapped to [0,1) *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. 0x1.0p-53

let float t x = unit_float t *. x

let bool t = Int64.compare (int64 t) 0L < 0

let bernoulli t p = unit_float t < p

let uniform_in t lo hi = lo +. (unit_float t *. (hi -. lo))

let gaussian t =
  (* Box–Muller; draw until u1 is nonzero so the log is finite *)
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_mv t ~mean ~sigma = mean +. (sigma *. gaussian t)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pareto t ~alpha ~x_min =
  if alpha <= 0.0 || x_min <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  x_min /. (nonzero () ** (1.0 /. alpha))

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_without_replacement t n k =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  if k * 3 >= n then begin
    let p = permutation t n in
    Array.sub p 0 k
  end else begin
    (* sparse draw with a hash-set of chosen values *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
