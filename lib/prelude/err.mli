(** Structured errors for the resilience layer.

    Every recoverable failure in the library — a malformed instance, a
    corrupt input file, a strategy violating Problem 1's constraints, an
    algorithm blowing up inside the harness — is describable as a typed
    value of {!t}, so callers can pattern-match on the failure class
    instead of parsing exception strings. Raising call sites stay
    available as thin wrappers ([Instance.create], [Io.load_instance],
    [Strategy.add]) for existing code; new code should prefer the
    [Result]-returning variants ([Instance.create_checked],
    [Io.load_instance_result], [Strategy.validate]).

    The module lives in the prelude (below [lib/core]), so constraint
    witnesses carry raw [(u, i, t)] integers rather than [Triple.t]. *)

type violated_constraint =
  | Display_limit of { u : int; time : int; count : int; limit : int }
      (** User [u] is shown [count] > [limit] items at [time]. *)
  | Capacity of { item : int; distinct_users : int; capacity : int }
      (** [item] reaches [distinct_users] > [capacity] distinct users. *)
  | Duplicate_triple of { u : int; i : int; t : int }
      (** The triple is already in the strategy. *)
  | Triple_out_of_range of { u : int; i : int; t : int; msg : string }
      (** An id of the triple lies outside the instance's dimensions. *)
  | Quantity_budget of { count : int; cap : int }
      (** The strategy holds [count] > [cap] recommendations in total
          (the global quantity budget of a uniform matroid; see
          [Instance.max_total]). *)
  | Slot_conflict of { u : int; time : int; slot : int }
      (** Two recommendations of a slate strategy claim the same ordered
          slot of the [(u, time)] display. *)

type t =
  | Invalid_instance of { field : string; msg : string }
      (** [Instance.create_checked] rejected the named field. *)
  | Parse_error of { file : string; line : int; col : int; msg : string }
      (** A serialized instance/strategy failed to parse; [col] is 1-based
          ([0] when the error is not attributable to a single token). *)
  | Invalid_strategy of violated_constraint list
      (** A strategy breaks Problem 1 constraints; the payload names {e
          every} violated constraint with an offending witness, in a
          deterministic order (display violations sorted by (user, time),
          then slot conflicts sorted by (user, time, slot), then capacity
          violations sorted by item, then the quantity-budget breach, if
          any, last). The list is never
          empty; code interested only in the primary failure can match
          [Invalid_strategy (first :: _)]. *)
  | Io_error of { path : string; msg : string }
      (** The operating system refused a file operation. *)
  | Unexpected of { context : string; msg : string }
      (** An escape hatch for exceptions caught at a fault boundary. *)

exception Error of t
(** Carrier exception for the raising wrappers; registered with a
    printer so uncaught errors stay readable. *)

val message : t -> string
(** One-line human-readable rendering. *)

val constraint_message : violated_constraint -> string
(** One-line rendering of a single constraint witness (the pieces
    {!message} joins for {!Invalid_strategy}). *)

val pp : Format.formatter -> t -> unit

val raise_ : t -> 'a
(** [raise_ e] raises {!Error}[ e]. *)

val of_exn : context:string -> exn -> t
(** Map an arbitrary exception to a structured error: {!Error} payloads
    pass through; [Invalid_argument]/[Failure] become {!Unexpected};
    [Sys_error] becomes {!Io_error}. Does not catch anything itself. *)

val protect : context:string -> (unit -> 'a) -> ('a, t) result
(** [protect ~context f] runs [f], mapping any exception except
    runtime-fatal ones ([Out_of_memory], [Stack_overflow]) through
    {!of_exn}. The fault boundary used by the experiment runner. *)
