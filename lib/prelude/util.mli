(** Small general-purpose helpers shared across the library. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the closed interval [\[lo, hi\]]. *)

val crc32 : bytes -> int -> int -> int
(** [crc32 b off len]: CRC-32 (IEEE 802.3 / zlib polynomial) of
    [b.(off .. off+len-1)], as a non-negative int below [2^32]. Used by the
    serving journal's record framing and the hierarchical planner's pipe
    protocol. *)

val clamp_prob : float -> float
(** [clamp_prob x] clamps [x] to [\[0, 1\]]. *)

val float_equal : ?eps:float -> float -> float -> bool
(** Approximate float equality: absolute or relative difference below [eps]
    (default [1e-9]). *)

val sum_floats : float array -> float
(** Numerically robust (Kahan-compensated) sum. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val argmax : ('a -> float) -> 'a array -> int
(** Index of the maximizer (first among ties). Raises [Invalid_argument] on
    the empty array. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (or fewer if the list is short). *)

val range : int -> int list
(** [range n] is [\[0; 1; ...; n-1\]]. *)

val fold_range : int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range n ~init ~f] folds [f] over [0..n-1]. *)

val contains_substring : string -> string -> bool
(** [contains_substring haystack needle]: naive substring search, for
    asserting on human-readable error messages in tests. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in seconds. *)

val with_index : 'a array -> (int * 'a) array
(** Pair every element with its index. *)

val group_by : ('a -> int) -> 'a list -> (int, 'a list) Hashtbl.t
(** Bucket list elements by an integer key. Order within a bucket follows the
    input order. *)

val top_k_by : int -> ('a -> float) -> 'a array -> 'a array
(** [top_k_by k score a] returns the [k] highest-scoring elements of [a]
    in descending score order (fewer if [a] is short). [a] is not modified. *)
