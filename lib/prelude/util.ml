let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven; shared by the
   serving journal and the hierarchical planner's pipe framing so both ends
   of every checksummed byte agree on one implementation *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 bytes off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for k = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get bytes k)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let clamp_prob x = clamp ~lo:0.0 ~hi:1.0 x

let float_equal ?(eps = 1e-9) a b =
  let d = Float.abs (a -. b) in
  d <= eps || d <= eps *. Float.max (Float.abs a) (Float.abs b)

let sum_floats a =
  let sum = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum_floats a /. float_of_int n

let argmax score a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Util.argmax: empty array";
  let best = ref 0 and best_v = ref (score a.(0)) in
  for i = 1 to n - 1 do
    let v = score a.(i) in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

let rec take n l =
  match (n, l) with
  | 0, _ | _, [] -> []
  | n, x :: tl -> x :: take (n - 1) tl

let range n = List.init n (fun i -> i)

let contains_substring haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fold_range n ~init ~f =
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := f !acc i
  done;
  !acc

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let with_index a = Array.mapi (fun i x -> (i, x)) a

let group_by key l =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = key x in
      let prev = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (x :: prev))
    l;
  (* restore input order inside each bucket *)
  Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl;
  tbl

let top_k_by k score a =
  let scored = Array.map (fun x -> (score x, x)) a in
  Array.sort (fun (s1, _) (s2, _) -> compare s2 s1) scored;
  let m = min k (Array.length a) in
  Array.init m (fun i -> snd scored.(i))
