(* One process-wide registry behind a single enable flag. The disabled path
   of every instrument is one atomic load and a branch — no allocation, no
   lock — so instrumented algorithms cost the same with metrics off as code
   that never heard of this module. Enabled updates are atomic (counters,
   gauges) or take a tiny per-instrument mutex (timer summaries), so the
   Pool's worker domains can hit them concurrently. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

type counter = { cname : string; cell : int Atomic.t }

type gauge = { gname : string; gcell : float Atomic.t }

type timer = {
  tname : string;
  tlock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

(* The registry: three name-keyed tables behind one mutex. Only instrument
   registration and snapshots take this lock; recording never does. *)
let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { cname = name; cell = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let incr ?(by = 1) c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell by)

let gauge name =
  with_registry (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { gname = name; gcell = Atomic.make 0.0 } in
          Hashtbl.replace gauges name g;
          g)

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g.gcell v

let add_gauge g v =
  if Atomic.get enabled_flag then begin
    let rec go () =
      let cur = Atomic.get g.gcell in
      if not (Atomic.compare_and_set g.gcell cur (cur +. v)) then go ()
    in
    go ()
  end

let timer name =
  with_registry (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
          let t =
            {
              tname = name;
              tlock = Mutex.create ();
              count = 0;
              sum = 0.0;
              minv = Float.infinity;
              maxv = Float.neg_infinity;
            }
          in
          Hashtbl.replace timers name t;
          t)

let observe t seconds =
  if Atomic.get enabled_flag then begin
    Mutex.lock t.tlock;
    t.count <- t.count + 1;
    t.sum <- t.sum +. seconds;
    if seconds < t.minv then t.minv <- seconds;
    if seconds > t.maxv then t.maxv <- seconds;
    Mutex.unlock t.tlock
  end

let span_t t f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe t (Unix.gettimeofday () -. t0)) f
  end

let span name f = if not (Atomic.get enabled_flag) then f () else span_t (timer name) f

(* ----- snapshots ----- *)

type value =
  | Counter of int
  | Gauge of float
  | Summary of { count : int; sum : float; min : float; max : float }

type snapshot = (string * value) list

let snapshot () =
  with_registry (fun () ->
      let acc = ref [] in
      Hashtbl.iter (fun name c -> acc := (name, Counter (Atomic.get c.cell)) :: !acc) counters;
      Hashtbl.iter (fun name g -> acc := (name, Gauge (Atomic.get g.gcell)) :: !acc) gauges;
      Hashtbl.iter
        (fun name t ->
          Mutex.lock t.tlock;
          let v =
            Summary
              {
                count = t.count;
                sum = t.sum;
                min = (if t.count = 0 then 0.0 else t.minv);
                max = (if t.count = 0 then 0.0 else t.maxv);
              }
          in
          Mutex.unlock t.tlock;
          acc := (name, v) :: !acc)
        timers;
      List.sort (fun (a, _) (b, _) -> compare a b) !acc)

let diff ~before ~after =
  let prior = Hashtbl.create (List.length before) in
  List.iter (fun (name, v) -> Hashtbl.replace prior name v) before;
  List.filter_map
    (fun (name, v) ->
      match (v, Hashtbl.find_opt prior name) with
      | Counter a, Some (Counter b) -> if a = b then None else Some (name, Counter (a - b))
      | Gauge a, Some (Gauge b) -> if a = b then None else Some (name, Gauge a)
      | Summary a, Some (Summary b) ->
          if a.count = b.count then None
          else
            (* min/max of just the window are not recoverable from two
               cumulative summaries; report the cumulative extrema, which
               bound the window's *)
            Some (name, Summary { a with count = a.count - b.count; sum = a.sum -. b.sum })
      | v, None -> (
          match v with
          | Counter 0 -> None
          | Summary { count = 0; _ } -> None
          | v -> Some (name, v))
      | v, Some _ -> Some (name, v) (* same name, new kind: report as-is *))
    after

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0.0) gauges;
      Hashtbl.iter
        (fun _ t ->
          Mutex.lock t.tlock;
          t.count <- 0;
          t.sum <- 0.0;
          t.minv <- Float.infinity;
          t.maxv <- Float.neg_infinity;
          Mutex.unlock t.tlock)
        timers)

(* ----- rendering ----- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let float_str v =
  (* shortest round-trip decimal; JSON and Prometheus both accept it *)
  let s = Printf.sprintf "%.17g" v in
  let short = Printf.sprintf "%g" v in
  if float_of_string short = v then short else s

let to_prometheus snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let m = "revmax_" ^ sanitize name in
      match v with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m c)
      | Gauge g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %s\n" m m (float_str g))
      | Summary { count; sum; min; max } ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" m);
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" m count);
          Buffer.add_string b (Printf.sprintf "%s_sum %s\n" m (float_str sum));
          Buffer.add_string b (Printf.sprintf "%s_min %s\n" m (float_str min));
          Buffer.add_string b (Printf.sprintf "%s_max %s\n" m (float_str max)))
    snap;
  Buffer.contents b

let to_json snap =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iteri
    (fun idx (name, v) ->
      if idx > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S:" name);
      match v with
      | Counter c -> Buffer.add_string b (string_of_int c)
      | Gauge g -> Buffer.add_string b (float_str g)
      | Summary { count; sum; min; max } ->
          Buffer.add_string b
            (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}" count
               (float_str sum) (float_str min) (float_str max)))
    snap;
  Buffer.add_char b '}';
  Buffer.contents b

let report dest =
  let snap = snapshot () in
  if dest = "-" then begin
    output_string stderr (to_prometheus snap);
    flush stderr
  end
  else begin
    let text = if Filename.check_suffix dest ".json" then to_json snap ^ "\n" else to_prometheus snap in
    let oc = open_out dest in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
  end

(* at-exit reporting: registered once, last destination wins; a forked bench
   cell exits with [Unix._exit] and so never double-reports *)
let report_dest = ref None

let report_registered = ref false

let enable_reporting dest =
  set_enabled true;
  report_dest := Some dest;
  if not !report_registered then begin
    report_registered := true;
    at_exit (fun () -> match !report_dest with Some d -> report d | None -> ())
  end

let env_setup () =
  match Sys.getenv_opt "REVMAX_METRICS" with
  | None | Some ("" | "0" | "false") -> ()
  | Some ("1" | "true" | "-") -> enable_reporting "-"
  | Some path -> enable_reporting path

(* ----- logging ----- *)

module Log = struct
  type level = Quiet | Error | Warn | Info | Debug

  let severity = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

  let level_of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "quiet" | "silent" | "off" -> Some Quiet
    | "error" -> Some Error
    | "warn" | "warning" -> Some Warn
    | "info" -> Some Info
    | "debug" -> Some Debug
    | _ -> None

  let configured = ref None (* None = not yet resolved from the environment *)

  let level () =
    match !configured with
    | Some l -> l
    | None ->
        let l =
          match Option.bind (Sys.getenv_opt "REVMAX_LOG") level_of_string with
          | Some l -> l
          | None -> Info
        in
        configured := Some l;
        l

  let set_level l = configured := Some l

  (* One mutex serializes both sinks: each emitted string reaches its fd in
     a single buffered write + flush, so concurrent domains and the
     dup2-based capture in Checkpoint can never observe a partial line. *)
  let sink_lock = Mutex.create ()

  let out_sink = ref None

  let set_out_sink f = out_sink := f

  let emit_out s =
    Mutex.lock sink_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sink_lock)
      (fun () ->
        match !out_sink with
        | Some f -> f s
        | None ->
            print_string s;
            flush stdout)

  let emit_err s =
    Mutex.lock sink_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sink_lock)
      (fun () ->
        output_string stderr s;
        flush stderr)

  let out fmt = Printf.ksprintf emit_out fmt

  let out_str s = emit_out s

  let logf lvl fmt =
    Printf.ksprintf (fun s -> if severity lvl <= severity (level ()) then emit_err s) fmt

  let err fmt = logf Error fmt

  let warn fmt = logf Warn fmt

  let info fmt = logf Info fmt

  let debug fmt = logf Debug fmt
end
