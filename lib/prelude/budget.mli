(** Anytime computation budgets: a wall-clock deadline and/or a cap on
    marginal-revenue (value-oracle) evaluations.

    The greedy machinery of the paper is naturally {e anytime}: every
    prefix of Algorithm 1's selection sequence is a valid strategy, so an
    interrupted run still returns a usable answer. A [Budget.t] makes that
    explicit — algorithms accepting [?budget] consult it between units of
    progress and, on expiry, return their best-so-far valid strategy with
    a [truncated] flag in their statistics.

    Semantics shared by every budgeted algorithm:
    - the budget is consulted {e between} selections/moves, never inside
      one, so results are always consistent states;
    - at least one unit of progress (one greedy selection, one completed
      permutation, one local-search start) is made before the budget is
      honored, so an already-expired budget still yields a non-trivial
      prefix whenever any progress is possible;
    - a single [Budget.t] may be shared across several algorithm calls
      (e.g. the permutations of RL-Greedy, or the windows of a rolling
      plan): evaluation charges accumulate in the budget itself;
    - the work counter is atomic, so a budget may also be shared across
      domains (the parallel suite runner, RL-Greedy's parallel permutation
      sweep): concurrent charges never tear, and an expired deadline still
      truncates every parallel strand to a valid prefix. Which strand
      observes expiry first is timing-dependent — budgeted parallel runs
      are valid but not bit-reproducible, exactly like wall-clock budgets
      under a sequential scheduler. *)

type t

val create : ?wall_seconds:float -> ?max_evaluations:int -> unit -> t
(** [create ~wall_seconds ~max_evaluations ()] starts the clock now.
    Omitted components are unlimited; [create ()] never expires. *)

val monotonic_now : unit -> float
(** Process-wide monotonic-elapsed seconds: the wall clock is sampled on
    every call, but a sample {e earlier} than the previous one (an NTP
    step, a VM resume) contributes 0 elapsed time rather than a negative
    delta. Deadlines live on this scale, so a backward wall-clock jump can
    no longer extend a live deadline by the jump size (previously a jump
    of [-x] added [x] seconds to every deadline — on a long-running server
    a deadline that never fires keeps a wedged operation alive forever).
    Forward jumps remain indistinguishable from real elapsed time, since
    the stdlib exposes no monotonic clock; they can still expire a
    deadline early, which is the fail-safe direction. Thread-safe. *)

val set_time_source_for_tests : (unit -> float) option -> unit
(** Replace ([Some f]) or restore ([None]) the wall-clock sampler behind
    {!monotonic_now}. Only for unit tests that need to replay controlled
    clock sequences (NTP steps, freezes); never call from library code. *)

val spend : t -> int -> unit
(** Charge [n] units of work — marginal-revenue evaluations, and one unit
    per accepted selection (greedy selections whose key comes from a
    closed-form shortcut cost no oracle call, yet are still progress a cap
    must bound) — against the budget. *)

val split : t -> int -> t array
(** [split t n] divides the budget into [n] fresh sub-budgets for
    independent strands of work (the user shards of
    [Revmax.Shard_greedy]): the wall-clock deadline, being an absolute
    instant, is shared by every part, while the {e remaining} evaluation
    allowance is divided as evenly as possible (earlier parts receive the
    remainder, so the division is deterministic and the parts' caps sum to
    the remaining allowance). Charges against a part do not flow back into
    [t]; call {!absorb} after the strands finish. Raises
    [Invalid_argument] when [n < 1]. *)

val absorb : t -> t array -> unit
(** [absorb t parts] charges the work recorded in each part back into [t],
    so a budget that was split for a parallel phase again reflects the
    total work when it is consulted afterwards. *)

val note_evaluations : t -> int -> unit
(** Record an externally-maintained cumulative evaluation count (used by
    oracles that already count calls); keeps the maximum seen. *)

val evaluations : t -> int
(** Evaluations charged so far. *)

val exhausted : t -> bool
(** True once the deadline has passed or the evaluation cap is reached. *)

val remaining_seconds : t -> float option
(** Seconds until the deadline, if one was set (may be negative). *)

val pp : Format.formatter -> t -> unit
