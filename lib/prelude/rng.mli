(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the library flows through this module so
    that experiments and benchmarks are reproducible from a single seed. The
    generator is the SplitMix64 construction of Steele, Lea and Flood; it has
    a 64-bit state, passes BigCrush, and supports O(1) splitting into
    statistically independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds yield
    identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator that starts at [t]'s current state
    and from then on evolves separately. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of the remainder of [t]'s stream. Use it to
    hand sub-components their own randomness without coupling them to the
    caller's consumption pattern. *)

val split_n : t -> int -> t array
(** [split_n t n] advances [t] [n] times and returns [n] fresh generators,
    pairwise independent and independent of the remainder of [t]'s stream —
    stream [i] is exactly the [i]-th consecutive {!split}. This is the
    stream-splitting primitive of the parallel layer: chunked work derives
    one stream per unit {e before} fan-out, so results are bit-identical
    for every [jobs] value (DESIGN.md §9). Deterministic: equal seeds and
    equal [n] yield identical stream arrays. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. Generated from 53 random bits. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, no state beyond the generator). *)

val gaussian_mv : t -> mean:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (inverse scale). *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto (power-law) deviate with tail exponent [alpha], support
    [\[x_min, ∞)]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate: [exp (gaussian * sigma + mu)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t n k] draws [k] distinct values from
    [0..n-1], in random order. Requires [k <= n]. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
