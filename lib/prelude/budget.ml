(* Deadlines live on a process-wide monotonic-elapsed scale rather than raw
   [Unix.gettimeofday]: the wall clock is sampled, but a sample earlier than
   the previous one (an NTP step, a VM resume with a corrected clock)
   contributes 0 elapsed time instead of a negative delta. With absolute
   wall-clock deadlines a backward step silently extended every live
   deadline by the step size; on the elapsed scale it merely pauses the
   clock for one sample. Forward steps remain indistinguishable from real
   elapsed time — the stdlib exposes no monotonic clock — so a large
   forward jump still expires deadlines early; the clamp removes the
   unbounded-extension failure mode, which is the dangerous one for a
   long-running server (a deadline that never fires keeps a wedged
   operation alive forever). *)
let wall_source = ref Unix.gettimeofday
let set_time_source_for_tests src =
  wall_source := match src with Some f -> f | None -> Unix.gettimeofday

let mono_mutex = Mutex.create ()
let mono_last = ref nan (* previous wall sample; nan = never sampled *)
let mono_acc = ref 0.0 (* accumulated non-negative elapsed seconds *)

let monotonic_now () =
  Mutex.lock mono_mutex;
  let w = !wall_source () in
  (if not (Float.is_nan !mono_last) then begin
     let d = w -. !mono_last in
     if d > 0.0 then mono_acc := !mono_acc +. d
   end);
  mono_last := w;
  let v = !mono_acc in
  Mutex.unlock mono_mutex;
  v

(* [used] is atomic so one budget can be shared by several domains (the
   parallel suite runner, RL-Greedy's permutation fan-out): charges are
   lock-free increments and [exhausted] is a plain read. *)
type t = {
  deadline : float option; (* absolute on the [monotonic_now] scale *)
  max_evaluations : int option;
  used : int Atomic.t;
}

let create ?wall_seconds ?max_evaluations () =
  {
    deadline = Option.map (fun s -> monotonic_now () +. s) wall_seconds;
    max_evaluations;
    used = Atomic.make 0;
  }

let spend t n = ignore (Atomic.fetch_and_add t.used n)

let split t n =
  if n < 1 then invalid_arg "Budget.split: need at least one part";
  (* the wall-clock deadline is shared (absolute time expires for everyone
     at once); the remaining evaluation allowance is divided as evenly as
     possible, earlier parts taking the remainder — deterministic, and the
     parts' caps sum to exactly the remaining allowance *)
  let share =
    match t.max_evaluations with
    | None -> fun _ -> None
    | Some m ->
        let remaining = max 0 (m - Atomic.get t.used) in
        let base = remaining / n and extra = remaining mod n in
        fun idx -> Some ((if idx < extra then base + 1 else base))
  in
  Array.init n (fun idx ->
      { deadline = t.deadline; max_evaluations = share idx; used = Atomic.make 0 })

let absorb t parts =
  Array.iter (fun p -> ignore (Atomic.fetch_and_add t.used (Atomic.get p.used))) parts

let note_evaluations t n =
  (* keep the maximum seen; CAS loop because several domains may report *)
  let rec go () =
    let cur = Atomic.get t.used in
    if n > cur && not (Atomic.compare_and_set t.used cur n) then go ()
  in
  go ()

let evaluations t = Atomic.get t.used

let exhausted t =
  (match t.max_evaluations with Some m -> Atomic.get t.used >= m | None -> false)
  ||
  match t.deadline with Some d -> monotonic_now () >= d | None -> false

let remaining_seconds t = Option.map (fun d -> d -. monotonic_now ()) t.deadline

let pp ppf t =
  let parts =
    (match t.deadline with
    | Some d -> [ Printf.sprintf "deadline in %.3fs" (d -. monotonic_now ()) ]
    | None -> [])
    @
    match t.max_evaluations with
    | Some m -> [ Printf.sprintf "evaluations %d/%d" (Atomic.get t.used) m ]
    | None -> []
  in
  Format.pp_print_string ppf
    (match parts with [] -> "unlimited" | parts -> String.concat ", " parts)
