type t = {
  deadline : float option; (* absolute, Unix.gettimeofday scale *)
  max_evaluations : int option;
  mutable used : int;
}

let create ?wall_seconds ?max_evaluations () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) wall_seconds;
    max_evaluations;
    used = 0;
  }

let spend t n = t.used <- t.used + n

let note_evaluations t n = if n > t.used then t.used <- n

let evaluations t = t.used

let exhausted t =
  (match t.max_evaluations with Some m -> t.used >= m | None -> false)
  ||
  match t.deadline with Some d -> Unix.gettimeofday () >= d | None -> false

let remaining_seconds t = Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline

let pp ppf t =
  let parts =
    (match t.deadline with
    | Some d -> [ Printf.sprintf "deadline in %.3fs" (d -. Unix.gettimeofday ()) ]
    | None -> [])
    @
    match t.max_evaluations with
    | Some m -> [ Printf.sprintf "evaluations %d/%d" t.used m ]
    | None -> []
  in
  Format.pp_print_string ppf
    (match parts with [] -> "unlimited" | parts -> String.concat ", " parts)
