(* [used] is atomic so one budget can be shared by several domains (the
   parallel suite runner, RL-Greedy's permutation fan-out): charges are
   lock-free increments and [exhausted] is a plain read. *)
type t = {
  deadline : float option; (* absolute, Unix.gettimeofday scale *)
  max_evaluations : int option;
  used : int Atomic.t;
}

let create ?wall_seconds ?max_evaluations () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) wall_seconds;
    max_evaluations;
    used = Atomic.make 0;
  }

let spend t n = ignore (Atomic.fetch_and_add t.used n)

let split t n =
  if n < 1 then invalid_arg "Budget.split: need at least one part";
  (* the wall-clock deadline is shared (absolute time expires for everyone
     at once); the remaining evaluation allowance is divided as evenly as
     possible, earlier parts taking the remainder — deterministic, and the
     parts' caps sum to exactly the remaining allowance *)
  let share =
    match t.max_evaluations with
    | None -> fun _ -> None
    | Some m ->
        let remaining = max 0 (m - Atomic.get t.used) in
        let base = remaining / n and extra = remaining mod n in
        fun idx -> Some ((if idx < extra then base + 1 else base))
  in
  Array.init n (fun idx ->
      { deadline = t.deadline; max_evaluations = share idx; used = Atomic.make 0 })

let absorb t parts =
  Array.iter (fun p -> ignore (Atomic.fetch_and_add t.used (Atomic.get p.used))) parts

let note_evaluations t n =
  (* keep the maximum seen; CAS loop because several domains may report *)
  let rec go () =
    let cur = Atomic.get t.used in
    if n > cur && not (Atomic.compare_and_set t.used cur n) then go ()
  in
  go ()

let evaluations t = Atomic.get t.used

let exhausted t =
  (match t.max_evaluations with Some m -> Atomic.get t.used >= m | None -> false)
  ||
  match t.deadline with Some d -> Unix.gettimeofday () >= d | None -> false

let remaining_seconds t = Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline

let pp ppf t =
  let parts =
    (match t.deadline with
    | Some d -> [ Printf.sprintf "deadline in %.3fs" (d -. Unix.gettimeofday ()) ]
    | None -> [])
    @
    match t.max_evaluations with
    | Some m -> [ Printf.sprintf "evaluations %d/%d" (Atomic.get t.used) m ]
    | None -> []
  in
  Format.pp_print_string ppf
    (match parts with [] -> "unlimited" | parts -> String.concat ", " parts)
