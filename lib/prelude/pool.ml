(* A single process-wide pool: a queue of thunks drained by worker domains
   and by callers waiting on their own submissions (so nested parallel calls
   help instead of deadlocking). One mutex + one condition protect the queue,
   the worker list and every completion latch; tasks themselves run outside
   the lock and never raise (chunk closures capture exceptions). *)

(* scheduling observability: where chunks actually ran (worker domain vs
   helping caller) is timing-dependent, so these counters are explicitly
   NOT jobs-invariant — the jobs-invariance suite excludes pool.* *)
let c_parallel_calls = Metrics.counter "pool.parallel_calls"

let c_chunks = Metrics.counter "pool.chunks"

let c_worker_tasks = Metrics.counter "pool.worker_tasks"

let c_caller_tasks = Metrics.counter "pool.caller_tasks"

let t_task = Metrics.timer "pool.task"

let env_jobs () =
  match Sys.getenv_opt "REVMAX_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let default = ref None (* None = not yet read from the environment *)

let default_jobs () =
  match !default with
  | Some n -> n
  | None ->
      let n = env_jobs () in
      default := Some n;
      n

let set_default_jobs n = default := Some (max 1 n)

type pool = {
  mutex : Mutex.t;
  wake : Condition.t; (* signalled on new tasks, completions, shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable owner_pid : int; (* pid that spawned [workers]; a fork invalidates *)
  mutable stopping : bool;
}

let pool =
  {
    mutex = Mutex.create ();
    wake = Condition.create ();
    queue = Queue.create ();
    workers = [];
    owner_pid = -1;
    stopping = false;
  }

let with_lock f =
  Mutex.lock pool.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.mutex) f

let worker_count () = with_lock (fun () -> List.length pool.workers)

let rec worker_loop () =
  Mutex.lock pool.mutex;
  let rec next () =
    if pool.stopping then Mutex.unlock pool.mutex
    else if Queue.is_empty pool.queue then begin
      Condition.wait pool.wake pool.mutex;
      next ()
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      Metrics.incr c_worker_tasks;
      Metrics.span_t t_task task;
      worker_loop ()
    end
  in
  next ()

(* Must be called with the lock held. Discards state inherited through a
   fork: the recorded workers only ever existed in the parent. *)
let reset_after_fork_locked () =
  if pool.owner_pid <> Unix.getpid () then begin
    pool.workers <- [];
    pool.stopping <- false;
    Queue.clear pool.queue;
    pool.owner_pid <- Unix.getpid ()
  end

let ensure_workers n =
  with_lock (fun () ->
      reset_after_fork_locked ();
      let missing = n - List.length pool.workers in
      for _ = 1 to missing do
        pool.workers <- Domain.spawn worker_loop :: pool.workers
      done)

let quiesce () =
  let to_join =
    with_lock (fun () ->
        reset_after_fork_locked ();
        let ws = pool.workers in
        pool.workers <- [];
        if ws <> [] then begin
          pool.stopping <- true;
          Condition.broadcast pool.wake
        end;
        ws)
  in
  List.iter Domain.join to_join;
  if to_join <> [] then with_lock (fun () -> pool.stopping <- false)

(* join workers at exit so the runtime shuts down cleanly; guarded by pid so
   a forked child does not try to join its parent's domains *)
let () = at_exit (fun () -> if pool.owner_pid = Unix.getpid () then quiesce ())

type outcome = { mutable pending : int; errors : (exn * Printexc.raw_backtrace) option array }

(* Run chunk [c] = indices [lo, hi) of the shared job, storing any exception. *)
let run_chunk out body c =
  (try body c
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     out.errors.(c) <- Some (e, bt));
  Mutex.lock pool.mutex;
  out.pending <- out.pending - 1;
  if out.pending = 0 then Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex

(* Wait for [out] to settle, draining queued tasks meanwhile (possibly tasks
   of other in-flight calls — any task may run on any domain). *)
let help_until_done out =
  Mutex.lock pool.mutex;
  let rec loop () =
    if out.pending = 0 then Mutex.unlock pool.mutex
    else if Queue.is_empty pool.queue then begin
      Condition.wait pool.wake pool.mutex;
      loop ()
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      Metrics.incr c_caller_tasks;
      Metrics.span_t t_task task;
      Mutex.lock pool.mutex;
      loop ()
    end
  in
  loop ()

let reraise_first out =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    out.errors

(* Shared driver: run [body c] for chunks c in [0, chunks) across the pool.
   [chunks >= 2] here; the caller handles the sequential case. *)
let run_chunks ~chunks body =
  Metrics.incr c_parallel_calls;
  Metrics.incr c_chunks ~by:chunks;
  ensure_workers (chunks - 1);
  let out = { pending = chunks; errors = Array.make chunks None } in
  with_lock (fun () ->
      for c = 0 to chunks - 1 do
        Queue.add (fun () -> run_chunk out body c) pool.queue
      done;
      Condition.broadcast pool.wake);
  help_until_done out;
  reraise_first out

let effective_jobs jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ())

let chunk_bounds ~n ~chunks c =
  (* contiguous blocks, remainder spread over the first chunks; depends only
     on (n, chunks), never on scheduling *)
  let base = n / chunks and extra = n mod chunks in
  let lo = (c * base) + min c extra in
  let hi = lo + base + (if c < extra then 1 else 0) in
  (lo, hi)

let parallel_for ?jobs n ~f =
  let jobs = effective_jobs jobs in
  if n <= 0 then ()
  else if jobs = 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let chunks = min jobs n in
    run_chunks ~chunks (fun c ->
        let lo, hi = chunk_bounds ~n ~chunks c in
        for i = lo to hi - 1 do
          f i
        done)
  end

let parallel_init ?jobs n ~f =
  let jobs = effective_jobs jobs in
  if n <= 0 then [||]
  else if jobs = 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    parallel_for ~jobs n ~f:(fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map ?jobs a ~f = parallel_init ?jobs (Array.length a) ~f:(fun i -> f a.(i))
