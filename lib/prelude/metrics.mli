(** Process-wide observability: named counters, gauges and timer summaries,
    lightweight span tracing, and a leveled logger with one serialized sink.

    Design invariants (argued in DESIGN.md §10):

    - {b Disabled is (almost) free.} Every hot-path hook — {!incr},
      {!observe}, {!span} — starts with a single load-and-branch on the
      global enable flag; with metrics disabled nothing else runs, no
      allocation happens, and no lock is taken. Algorithms therefore behave
      and perform identically whether or not the registry exists.
    - {b Domain-safe.} Counters are [Atomic.t] increments, gauges are CAS
      loops, and timer summaries take a per-timer mutex (enabled path
      only) — instruments can be hit concurrently from the {!Pool} worker
      domains without torn updates.
    - {b Deterministic snapshots.} {!snapshot} returns entries sorted by
      name, and counter values for deterministic quantities (oracle calls,
      heap pops, MC samples) are jobs-invariant because the instrumented
      sites themselves are (see DESIGN.md §9).

    Instruments are registered on first use and live for the whole process;
    re-requesting a name returns the same instrument. Values accumulate
    until {!reset}. *)

(** {1 Enabling} *)

val enabled : unit -> bool
(** Whether instruments currently record. Off by default. *)

val set_enabled : bool -> unit
(** Turn recording on or off. Off is the default; flipping the flag never
    clears accumulated values (use {!reset}). *)

val env_setup : unit -> unit
(** Read [REVMAX_METRICS] once and configure reporting accordingly: unset,
    [""], ["0"] or ["false"] does nothing; ["1"], ["true"] or ["-"] enables
    recording and dumps a Prometheus snapshot to [stderr] at process exit;
    any other value enables recording and writes the snapshot to that path
    at exit (JSON when the path ends in [.json], Prometheus text
    otherwise). Entry points call this; libraries never do. *)

val enable_reporting : string -> unit
(** [enable_reporting dest] enables recording and registers an at-exit
    snapshot dump to [dest] (["-"] means [stderr]; a path means a file,
    JSON when it ends in [.json]). Used by the CLI's [--metrics]. The dump
    is registered at most once per process; the last destination wins. *)

(** {1 Instruments} *)

type counter

val counter : string -> counter
(** Find or register the named monotonic counter. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) when enabled; a single branch when disabled. *)

type gauge

val gauge : string -> gauge

val set_gauge : gauge -> float -> unit

val add_gauge : gauge -> float -> unit

type timer

val timer : string -> timer
(** Find or register the named duration summary (count/sum/min/max,
    seconds). *)

val observe : timer -> float -> unit
(** Record one duration (seconds) when enabled. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when enabled, records its wall-clock
    duration in the timer [name] (timing also exceptional exits). When
    disabled this is one branch and a tail call to [f]. *)

val span_t : timer -> (unit -> 'a) -> 'a
(** {!span} with a pre-registered timer: no registry lookup on the enabled
    path. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Summary of { count : int; sum : float; min : float; max : float }

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : unit -> snapshot
(** Every registered instrument and its current value (zeros included). *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** The activity between two snapshots: counters and summaries subtract,
    gauges keep their [after] value; entries with no activity are dropped.
    Instruments registered after [before] appear with their full value. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format: names are prefixed with [revmax_]
    and sanitized to [[a-zA-Z0-9_]]; summaries render as
    [_count]/[_sum]/[_min]/[_max] gauge lines. *)

val to_json : snapshot -> string
(** One-line JSON object: counters as integers, gauges as floats, summaries
    as [{"count":..,"sum":..,"min":..,"max":..}]. Empty snapshot is [{}]. *)

val reset : unit -> unit
(** Zero every registered instrument (the registry itself is kept). For
    tests and between-cell profiling. *)

val report : string -> unit
(** Dump the current snapshot to a destination as in {!enable_reporting}:
    ["-"] writes Prometheus text to [stderr], a [.json] path writes JSON,
    any other path writes Prometheus text. *)

(** {1 Logging} *)

module Log : sig
  (** Leveled diagnostics plus the designated content sink.

      Library code must never write to [stdout]/[stderr] directly: {e
      content} (deterministic experiment output — tables, figures; the
      bytes checkpointing captures and replays) goes through {!out}, and
      {e diagnostics} (progress, warnings, errors) go through the leveled
      [err]/[warn]/[info]/[debug]. Each call formats one string and writes
      it with a single flush under one process-wide mutex, so parallel
      domains and the fd-capture machinery in
      [Revmax_experiments.Checkpoint] can never interleave partial lines.

      The diagnostic level comes from [REVMAX_LOG]
      ([quiet]|[error]|[warn]|[info]|[debug], default [info]), read once on
      first use; {!set_level} overrides it. [quiet] suppresses all
      diagnostics; content is never filtered. *)

  type level = Quiet | Error | Warn | Info | Debug

  val level : unit -> level

  val set_level : level -> unit

  val level_of_string : string -> level option

  val out : ('a, unit, string, unit) format4 -> 'a
  (** Formatted content to the designated sink (default: [stdout],
      flushed). *)

  val out_str : string -> unit
  (** Raw content to the designated sink. *)

  val set_out_sink : (string -> unit) option -> unit
  (** Redirect content ([None] restores the default [stdout] sink). For
      tests and embedders. *)

  val err : ('a, unit, string, unit) format4 -> 'a

  val warn : ('a, unit, string, unit) format4 -> 'a

  val info : ('a, unit, string, unit) format4 -> 'a

  val debug : ('a, unit, string, unit) format4 -> 'a
end
