type t = { columns : string array; mutable rows : string array list }

let create ~columns = { columns = Array.of_list columns; rows = [] }

let add_row t cells =
  let n = Array.length t.columns in
  let cells = Array.of_list cells in
  if Array.length cells > n then invalid_arg "Table.add_row: too many cells";
  let row = Array.make n "" in
  Array.blit cells 0 row 0 (Array.length cells);
  t.rows <- row :: t.rows

let add_floats t ~label vs =
  add_row t (label :: List.map (Printf.sprintf "%.4g") vs)

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.columns in
  let widths = Array.map String.length t.columns in
  List.iter
    (fun row ->
      for i = 0 to n - 1 do
        widths.(i) <- max widths.(i) (String.length row.(i))
      done)
    rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf row.(i);
      Buffer.add_string buf (String.make (widths.(i) - String.length row.(i)) ' ')
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string buf "  ";
    Buffer.add_string buf (String.make widths.(i) '-')
  done;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

(* table output is experiment *content*: it must reach the designated sink
   (stdout by default) in one serialized write, never a diagnostic stream *)
let print t = Metrics.Log.out_str (render t)
