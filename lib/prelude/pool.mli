(** Fixed-size domain pool for deterministic data parallelism.

    The pool exposes [parallel_map]/[parallel_for]/[parallel_init] over a
    shared set of worker domains (OCaml 5 [Domain] + [Mutex]/[Condition] —
    no external dependency). The design invariants, argued in DESIGN.md §9:

    - {b jobs = 1 is the reference semantics.} With one job the combinators
      are plain sequential loops in index order; no domain is ever spawned.
    - {b Determinism.} Work is split into contiguous index chunks and every
      result lands in its own slot of a pre-sized output array, so the
      returned array is identical for every [jobs] value — scheduling only
      affects wall-clock, never results. Side effects performed by [f] on
      shared state are the caller's responsibility (keep [f] pure or confine
      mutation to the element it was given).
    - {b Exception capture.} An exception raised by [f] is caught in the
      worker, and after all chunks have settled the exception of the
      lowest-indexed failing chunk is re-raised in the caller with its
      backtrace — the same exception a sequential run would have raised
      first.
    - {b Nesting.} A task may itself call [parallel_map]; the waiting caller
      helps drain the shared queue instead of blocking, so nested use cannot
      deadlock (it degrades to sequential execution in the worst case).

    The pool is lazily created at first use with [jobs - 1] workers (the
    calling domain is the remaining executor) and grows, never shrinks.
    [quiesce] joins all workers; it must be called before [Unix.fork] in a
    process that has used the pool, because forking while sibling domains
    run leaves the child with a runtime expecting domains that do not exist
    (the child would hang at the first stop-the-world collection). The pool
    also detects a changed pid and discards inherited state, so a forked
    child can use it afresh. *)

val default_jobs : unit -> int
(** The process-wide default parallelism, used whenever [?jobs] is omitted.
    Initialised from the [REVMAX_JOBS] environment variable (a positive
    integer; unset, empty, or unparsable means [1]); overridable with
    {!set_default_jobs} (the CLI's [--jobs] flag). *)

val set_default_jobs : int -> unit
(** Override the default parallelism. Values below 1 are clamped to 1. *)

val parallel_map : ?jobs:int -> 'a array -> f:('a -> 'b) -> 'b array
(** [parallel_map ?jobs a ~f] is [Array.map f a] computed with up to [jobs]
    domains (default {!default_jobs}). The result is in input order and
    identical for every [jobs] value; see the module preamble for the
    exception and determinism contract. *)

val parallel_for : ?jobs:int -> int -> f:(int -> unit) -> unit
(** [parallel_for ?jobs n ~f] runs [f 0 .. f (n-1)], partitioned into
    contiguous index chunks across up to [jobs] domains. With [jobs = 1]
    this is exactly [for i = 0 to n-1 do f i done]. *)

val parallel_init : ?jobs:int -> int -> f:(int -> 'a) -> 'a array
(** [parallel_init ?jobs n ~f] is [Array.init n f] with the same contract as
    {!parallel_map}. *)

val quiesce : unit -> unit
(** Join and discard all worker domains. Safe to call at any point where no
    parallel call is in flight; the pool respawns workers on next use. Must
    be called before [Unix.fork] if the pool has been used (see preamble). *)

val worker_count : unit -> int
(** Number of live worker domains (0 before first parallel use and after
    {!quiesce}); exposed for tests. *)
