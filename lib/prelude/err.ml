type violated_constraint =
  | Display_limit of { u : int; time : int; count : int; limit : int }
  | Capacity of { item : int; distinct_users : int; capacity : int }
  | Duplicate_triple of { u : int; i : int; t : int }
  | Triple_out_of_range of { u : int; i : int; t : int; msg : string }
  | Quantity_budget of { count : int; cap : int }
  | Slot_conflict of { u : int; time : int; slot : int }

type t =
  | Invalid_instance of { field : string; msg : string }
  | Parse_error of { file : string; line : int; col : int; msg : string }
  | Invalid_strategy of violated_constraint list
  | Io_error of { path : string; msg : string }
  | Unexpected of { context : string; msg : string }

exception Error of t

let constraint_message = function
  | Display_limit { u; time; count; limit } ->
      Printf.sprintf "display limit violated: user %d is shown %d items at time %d (limit %d)" u
        count time limit
  | Capacity { item; distinct_users; capacity } ->
      Printf.sprintf "capacity violated: item %d reaches %d distinct users (capacity %d)" item
        distinct_users capacity
  | Duplicate_triple { u; i; t } -> Printf.sprintf "duplicate triple (u=%d, i=%d, t=%d)" u i t
  | Triple_out_of_range { u; i; t; msg } ->
      Printf.sprintf "triple (u=%d, i=%d, t=%d) out of range: %s" u i t msg
  | Quantity_budget { count; cap } ->
      Printf.sprintf "quantity budget violated: %d recommendations exceed the global cap %d" count
        cap
  | Slot_conflict { u; time; slot } ->
      Printf.sprintf "slate slot conflict: user %d has slot %d at time %d assigned twice" u slot
        time

let message = function
  | Invalid_instance { field; msg } -> Printf.sprintf "invalid instance (%s): %s" field msg
  | Parse_error { file; line; col; msg } ->
      if col > 0 then Printf.sprintf "%s:%d:%d: %s" file line col msg
      else Printf.sprintf "%s:%d: %s" file line msg
  | Invalid_strategy [ c ] -> "invalid strategy: " ^ constraint_message c
  | Invalid_strategy cs ->
      Printf.sprintf "invalid strategy: %d violated constraints: %s" (List.length cs)
        (String.concat "; " (List.map constraint_message cs))
  | Io_error { path; msg } ->
      if path = "" then Printf.sprintf "io error: %s" msg
      else Printf.sprintf "io error (%s): %s" path msg
  | Unexpected { context; msg } -> Printf.sprintf "unexpected failure in %s: %s" context msg

let pp ppf e = Format.pp_print_string ppf (message e)

let raise_ e = raise (Error e)

let of_exn ~context = function
  | Error e -> e
  | Invalid_argument msg | Failure msg -> Unexpected { context; msg }
  | Sys_error msg -> Io_error { path = ""; msg }
  | exn -> Unexpected { context; msg = Printexc.to_string exn }

let protect ~context f =
  match f () with
  | v -> Ok v
  | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
  | exception exn -> Result.Error (of_exn ~context exn)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Revmax_prelude.Err.Error: " ^ message e)
    | _ -> None)
