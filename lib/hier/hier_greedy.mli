(** Two-level shard-of-shards planning: process-level partitions over the
    user-sharded grid, domain-level shards within each process.

    [solve ~procs:p ~shards_per_proc:s] cuts the users into [p × s] flat
    contiguous shard views ({!Revmax.Instance.shard} — the {e same} views
    the in-process planner would use), forks [p] worker processes, and
    gives each worker [s] consecutive views to plan on its own domain
    pool. Workers stream their shard strategies back shard-ascending over
    CRC-framed pipes ({!Wire}); the parent merges them in flat shard
    order and runs capacity reconciliation, querying the workers for the
    over-subscribed items' loss-ranked candidate lists — only those
    items' lists ever cross a process boundary — and broadcasting each
    item's released pairs so worker-side chains stay synchronized.

    {b The output is bit-identical to
    [Shard_greedy.solve ~shards:(p × s)]}: the views, the per-shard
    greedy runs, the merge order, the loss doubles (computed worker-side
    against the same per-user chains, shipped as IEEE-754 bit patterns)
    and the release/re-plan sequence all coincide with the in-process
    planner's. Hierarchy buys memory isolation — each worker touches only
    its users' planner state, and with a memory-mapped instance the
    processes share one page cache — never a different plan. This
    equivalence is the [@hier] test obligation and the bench-scale
    invariance gate.

    When the runtime refuses [fork] (OCaml 5.1 latches this once any
    domain has been spawned; see {!Revmax_prelude.Pool.quiesce}), [solve]
    degrades to the in-process planner over the same [p × s] flat shards
    — same result, [degraded = true] in the statistics.

    There is no [?budget]: a wall-clock deadline cannot be shared across
    address spaces without a coordination channel the protocol does not
    need otherwise. Bound planning time by sizing the grid instead. *)

type stats = {
  procs : int;  (** worker processes requested (1 plans in-process) *)
  shards_per_proc : int;  (** domain-level shards per process *)
  policy : Revmax.Instance.split_policy;
  degraded : bool;  (** true when fork was unavailable and planning fell back in-process *)
  per_shard_selected : int array;  (** per flat shard, length [procs × shards_per_proc] *)
  marginal_evaluations : int;
  pops : int;
  selected : int;
  reconciliation_rounds : int;
  released_pairs : int;
  replanned : int;
  truncated : bool;
}

val solve :
  ?policy:Revmax.Instance.split_policy ->
  ?procs:int ->
  ?shards_per_proc:int ->
  ?jobs:int ->
  ?with_saturation:bool ->
  ?lazy_policy:[ `Celf | `Refresh_pair ] ->
  Revmax.Instance.t ->
  Revmax.Strategy.t * stats
(** [solve inst] plans over [procs] processes (default {!default_procs})
    × [shards_per_proc] shards each (default 1), with up to [jobs]
    domains per process. Raises [Failure] if a worker reports an error,
    and {!Wire.Protocol_error} on a corrupted or truncated pipe stream;
    worker processes are killed and reaped on every failure path. *)

val default_procs : unit -> int
(** The process-wide default worker count, used whenever [?procs] is
    omitted. Initialised from the [REVMAX_PROCS] environment variable (a
    positive integer; unset, empty or unparsable means [1]); overridable
    with {!set_default_procs}. *)

val set_default_procs : int -> unit
(** Override the default worker count. Values below 1 are clamped to 1. *)
