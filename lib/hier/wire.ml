module Util = Revmax_prelude.Util
module Triple = Revmax.Triple

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Protocol_error msg)) fmt

(* payloads are bounded by one shard's triple list; anything beyond this in
   a length prefix is stream corruption, not a message *)
let max_payload = 1 lsl 30

type shard_result = {
  shard : int;
  selected : int;
  evaluations : int;
  pops : int;
  truncated : bool;
  triples : Triple.t array;  (* sorted by Triple.compare, the sender's to_list order *)
  slots : int array;
      (* slate slot of each triple, parallel to [triples]; empty on
         non-slate instances *)
}

type msg =
  | Shard_result of shard_result
  | Reconcile_request of int array  (* over-subscribed item ids, ascending *)
  | Loss_lists of (int * (float * int) array) array
      (* per requested item: (item, ranked (loss, user)), loss ascending, ties
         to the lower user id — the sender's own holders only *)
  | Release of { item : int; users : int array }
      (* the globally-ranked losers of one item; every receiver drops the
         pairs it owns so later loss queries see the updated chains *)
  | Shutdown
  | Child_error of string

(* ------------------------------------------------------------------ *)
(* Payload codec (little-endian, tag byte first)                       *)
(* ------------------------------------------------------------------ *)

let tag_shard_result = 1
let tag_reconcile_request = 2
let tag_loss_lists = 3
let tag_shutdown = 4
let tag_child_error = 5
let tag_release = 6

let encode msg =
  let b = Buffer.create 256 in
  let i32 v = Buffer.add_int32_le b (Int32.of_int v) in
  (match msg with
  | Shard_result r ->
      Buffer.add_uint8 b tag_shard_result;
      i32 r.shard;
      i32 r.selected;
      i32 r.evaluations;
      i32 r.pops;
      Buffer.add_uint8 b (if r.truncated then 1 else 0);
      i32 (Array.length r.triples);
      Array.iter
        (fun (z : Triple.t) ->
          i32 z.u;
          i32 z.i;
          i32 z.t)
        r.triples;
      i32 (Array.length r.slots);
      Array.iter i32 r.slots
  | Reconcile_request items ->
      Buffer.add_uint8 b tag_reconcile_request;
      i32 (Array.length items);
      Array.iter i32 items
  | Loss_lists lists ->
      Buffer.add_uint8 b tag_loss_lists;
      i32 (Array.length lists);
      Array.iter
        (fun (item, ranked) ->
          i32 item;
          i32 (Array.length ranked);
          Array.iter
            (fun (loss, u) ->
              Buffer.add_int64_le b (Int64.bits_of_float loss);
              i32 u)
            ranked)
        lists
  | Release { item; users } ->
      Buffer.add_uint8 b tag_release;
      i32 item;
      i32 (Array.length users);
      Array.iter i32 users
  | Shutdown -> Buffer.add_uint8 b tag_shutdown
  | Child_error msg ->
      Buffer.add_uint8 b tag_child_error;
      i32 (String.length msg);
      Buffer.add_string b msg);
  Buffer.to_bytes b

(* a tiny cursor-based reader; every decode error is a Protocol_error, never
   an out-of-bounds crash in the parent *)
type cursor = { buf : bytes; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.buf then fail "truncated payload"

let r8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let r32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v

let r64f c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let rlen c what =
  let n = r32 c in
  if n < 0 || n > max_payload then fail "bad %s count %d" what n;
  n

let decode buf =
  let c = { buf; pos = 0 } in
  let msg =
    match r8 c with
    | 1 ->
        let shard = r32 c in
        let selected = r32 c in
        let evaluations = r32 c in
        let pops = r32 c in
        let truncated = r8 c <> 0 in
        let n = rlen c "triple" in
        let triples =
          Array.init n (fun _ ->
              let u = r32 c in
              let i = r32 c in
              let t = r32 c in
              Triple.make ~u ~i ~t)
        in
        let nslots = rlen c "slot" in
        if nslots <> 0 && nslots <> n then fail "slot count %d for %d triples" nslots n;
        let slots = Array.init nslots (fun _ -> r32 c) in
        Shard_result { shard; selected; evaluations; pops; truncated; triples; slots }
    | 2 -> Reconcile_request (Array.init (rlen c "item") (fun _ -> r32 c))
    | 3 ->
        let n = rlen c "list" in
        Loss_lists
          (Array.init n (fun _ ->
               let item = r32 c in
               let m = rlen c "holder" in
               ( item,
                 Array.init m (fun _ ->
                     let loss = r64f c in
                     let u = r32 c in
                     (loss, u)) )))
    | 4 -> Shutdown
    | 6 ->
        let item = r32 c in
        Release { item; users = Array.init (rlen c "user") (fun _ -> r32 c) }
    | 5 ->
        let n = rlen c "error byte" in
        need c n;
        let s = Bytes.sub_string c.buf c.pos n in
        c.pos <- c.pos + n;
        Child_error s
    | t -> fail "unknown message tag %d" t
  in
  if c.pos <> Bytes.length buf then fail "%d trailing payload bytes" (Bytes.length buf - c.pos);
  msg

(* ------------------------------------------------------------------ *)
(* Framing: u32-le length, u32-le CRC-32 of the payload, payload       *)
(* ------------------------------------------------------------------ *)

let write_all fd b off len =
  let written = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd b !written !remaining in
    written := !written + n;
    remaining := !remaining - n
  done

let read_all fd b off len =
  let read = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let n = Unix.read fd b !read !remaining in
    if n = 0 then fail "unexpected end of stream (%d bytes short)" !remaining;
    read := !read + n;
    remaining := !remaining - n
  done

let send fd msg =
  let payload = encode msg in
  let plen = Bytes.length payload in
  let frame = Bytes.create (8 + plen) in
  Bytes.set_int32_le frame 0 (Int32.of_int plen);
  Bytes.set_int32_le frame 4 (Int32.of_int (Util.crc32 payload 0 plen));
  Bytes.blit payload 0 frame 8 plen;
  write_all fd frame 0 (8 + plen)

let recv fd =
  let header = Bytes.create 8 in
  read_all fd header 0 8;
  let plen = Int32.to_int (Bytes.get_int32_le header 0) in
  if plen < 1 || plen > max_payload then fail "bad frame length %d" plen;
  let crc = Int32.to_int (Bytes.get_int32_le header 4) land 0xFFFFFFFF in
  let payload = Bytes.create plen in
  read_all fd payload 0 plen;
  if Util.crc32 payload 0 plen <> crc then fail "frame checksum mismatch";
  decode payload
