(** Framed messages of the hierarchical planner's process protocol.

    Frames follow the serving journal's record layout (PR 7): a
    little-endian u32 payload length, a u32 CRC-32 of the payload
    ({!Revmax_prelude.Util.crc32} — the same implementation on both ends),
    then the payload, whose first byte is a message tag. The protocol is
    strictly request/response over a pair of unidirectional pipes, so no
    framing-level sequencing is needed; a checksum or structure violation
    raises {!Protocol_error} rather than silently desynchronizing the
    planner. *)

exception Protocol_error of string

type shard_result = {
  shard : int;  (** flat shard index in the parent's [procs × spp] grid *)
  selected : int;
  evaluations : int;
  pops : int;
  truncated : bool;
  triples : Revmax.Triple.t array;
      (** the shard strategy, sorted by [Triple.compare] (the sender's
          [Strategy.to_list] order) — the parent replays them in this
          order so the merge is bit-identical to the in-process one *)
  slots : int array;
      (** on slate instances, each triple's 1-based slot assignment,
          parallel to [triples], so the parent's merge reproduces the
          shard's slot choices exactly; empty on plain instances *)
}

type msg =
  | Shard_result of shard_result  (** child → parent, one per owned shard, shard-ascending *)
  | Reconcile_request of int array
      (** parent → child: the over-subscribed item ids (ascending). Only
          these items' candidate lists cross the process boundary. *)
  | Loss_lists of (int * (float * int) array) array
      (** child → parent: for each requested item, the child's own holders
          ranked by (removal loss, user id) ascending. Losses travel as
          IEEE-754 bit patterns, so the parent ranks the exact doubles the
          child computed. *)
  | Release of { item : int; users : int array }
      (** parent → child: the globally-ranked losers of one item. Each
          child drops the (user, item) pairs it owns before answering the
          next query, so per-item loss values reflect earlier items'
          releases exactly as the in-process reconciliation's do. *)
  | Shutdown  (** parent → child: protocol complete, exit *)
  | Child_error of string  (** child → parent: the child raised; message follows *)

val send : Unix.file_descr -> msg -> unit
(** Write one frame, handling short writes. *)

val recv : Unix.file_descr -> msg
(** Read one frame, handling short reads. Raises {!Protocol_error} on end
    of stream, checksum mismatch, or a malformed payload. *)
