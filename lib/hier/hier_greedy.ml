module Pool = Revmax_prelude.Pool
module Metrics = Revmax_prelude.Metrics
module Err = Revmax_prelude.Err
module Log = Revmax_prelude.Metrics.Log
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Triple = Revmax.Triple
module Greedy = Revmax.Greedy
module Shard_greedy = Revmax.Shard_greedy

let c_runs = Metrics.counter "hier_greedy.runs"

let c_degraded = Metrics.counter "hier_greedy.degraded_runs"

let c_frames = Metrics.counter "hier_greedy.frames_received"

let env_procs () =
  match Sys.getenv_opt "REVMAX_PROCS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let default = ref None

let default_procs () =
  match !default with
  | Some n -> n
  | None ->
      let n = env_procs () in
      default := Some n;
      n

let set_default_procs n = default := Some (max 1 n)

type stats = {
  procs : int;
  shards_per_proc : int;
  policy : Instance.split_policy;
  degraded : bool;
  per_shard_selected : int array;
  marginal_evaluations : int;
  pops : int;
  selected : int;
  reconciliation_rounds : int;
  released_pairs : int;
  replanned : int;
  truncated : bool;
}

(* The OCaml 5.1 runtime refuses [Unix.fork] once any domain has ever been
   spawned in the process (and forking with live sibling domains would hang
   the child); quiesce the pool, then probe with a trivial fork — the same
   latch the checkpointed experiment grid uses. *)
let wait_pid pid =
  let rec go () =
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let can_fork () =
  match Unix.fork () with
  | 0 -> Unix._exit 0
  | pid ->
      wait_pid pid;
      true
  | exception Failure _ -> false

(* ------------------------------------------------------------------ *)
(* Child                                                               *)
(* ------------------------------------------------------------------ *)

(* A child owns the contiguous flat shards [lo, hi) of the parent's
   [procs × spp] grid. It plans them on its own domain pool, streams each
   strategy back shard-ascending, then serves reconciliation queries
   against its (mirror-maintained) shard strategies until shutdown. *)
let child_main ~with_saturation ~lazy_policy ~jobs ~views ~lo ~hi ~req_r ~resp_w =
  let results =
    Pool.parallel_init ?jobs (hi - lo) ~f:(fun k ->
        Greedy.run ~with_saturation ~lazy_policy views.(lo + k))
  in
  Array.iteri
    (fun k ((sh : Strategy.t), (st : Greedy.stats)) ->
      let triples = Array.of_list (Strategy.to_list sh) in
      let slots =
        if Instance.is_slate (Strategy.instance sh) then
          Array.map
            (fun z -> match Strategy.slot_of sh z with Some sl -> sl | None -> 1)
            triples
        else [||]
      in
      Wire.send resp_w
        (Wire.Shard_result
           {
             shard = lo + k;
             selected = st.selected;
             evaluations = st.marginal_evaluations;
             pops = st.pops;
             truncated = st.truncated;
             triples;
             slots;
           }))
    results;
  let strategies = Array.map fst results in
  let owner u =
    let rec find k =
      if k >= hi - lo then None
      else
        let ulo, uhi = Instance.user_range views.(lo + k) in
        if u >= ulo && u < uhi then Some strategies.(k) else find (k + 1)
    in
    find 0
  in
  let rec serve () =
    match Wire.recv req_r with
    | Wire.Shutdown -> ()
    | Wire.Reconcile_request items ->
        let lists =
          Array.map
            (fun i ->
              (* this process's holders of item [i], each with the loss of
                 releasing the whole (user, item) pair. The loss is computed
                 against the user's shard-local chain, which — users being
                 partitioned across shards — is the same chain the merged
                 global strategy holds for that user, so the doubles are
                 bit-identical to a parent-side computation. *)
              let ranked = ref [] in
              Array.iter
                (fun s ->
                  let holders =
                    List.sort_uniq compare
                      (List.filter_map
                         (fun (z : Triple.t) -> if z.i = i then Some z.u else None)
                         (Strategy.to_list s))
                  in
                  List.iter
                    (fun u ->
                      ranked :=
                        (Shard_greedy.removal_loss ~with_saturation (Strategy.instance s) s ~u ~i, u)
                        :: !ranked)
                    holders)
                strategies;
              (i, Array.of_list (List.sort compare !ranked)))
            items
        in
        Wire.send resp_w (Wire.Loss_lists lists);
        serve ()
    | Wire.Release { item; users } ->
        Array.iter
          (fun u ->
            match owner u with
            | None -> ()
            | Some s ->
                List.iter
                  (fun (z : Triple.t) -> if z.i = item && z.u = u then Strategy.remove s z)
                  (Strategy.to_list s))
          users;
        serve ()
    | _ -> raise (Wire.Protocol_error "child: unexpected message from parent")
  in
  serve ()

(* ------------------------------------------------------------------ *)
(* Parent                                                              *)
(* ------------------------------------------------------------------ *)

type child = { pid : int; req_w : Unix.file_descr; resp_r : Unix.file_descr }

let recv_from child =
  Metrics.incr c_frames;
  match Wire.recv child.resp_r with
  | Wire.Child_error msg -> failwith ("Hier_greedy: child failed: " ^ msg)
  | m -> m

let solve ?(policy = `Water_filling) ?procs ?shards_per_proc ?jobs ?(with_saturation = true)
    ?(lazy_policy = `Celf) inst =
  let procs = match procs with Some p -> max 1 p | None -> default_procs () in
  let spp = match shards_per_proc with Some s -> max 1 s | None -> 1 in
  let shards = procs * spp in
  Metrics.span "hier_greedy.solve" @@ fun () ->
  Metrics.incr c_runs;
  (* the fallback is not an approximation: the flat plan over procs × spp
     shards is the hierarchical plan's definition of correctness, so
     degrading only loses process-level memory isolation, never changes
     the output *)
  let fallback ~degraded () =
    if degraded then Metrics.incr c_degraded;
    let s, (st : Shard_greedy.stats) =
      Shard_greedy.solve ~policy ~shards ?jobs ~with_saturation ~lazy_policy inst
    in
    ( s,
      {
        procs;
        shards_per_proc = spp;
        policy;
        degraded;
        per_shard_selected = st.per_shard_selected;
        marginal_evaluations = st.marginal_evaluations;
        pops = st.pops;
        selected = st.selected;
        reconciliation_rounds = st.reconciliation_rounds;
        released_pairs = st.released_pairs;
        replanned = st.replanned;
        truncated = st.truncated;
      } )
  in
  if procs = 1 then fallback ~degraded:false ()
  else begin
    Pool.quiesce ();
    if not (can_fork ()) then begin
      Log.warn
        "[hier] process-level planning unavailable (this OCaml runtime refuses fork once domains \
         were spawned); planning in-process over %d flat shards\n"
        shards;
      fallback ~degraded:true ()
    end
    else begin
      let views = Instance.shard ~policy ~shards inst in
      (* all pipe pairs exist before the first fork so every child can
         close the ends that are not its own *)
      let pipes =
        Array.init procs (fun _ ->
            let req_r, req_w = Unix.pipe ~cloexec:false () in
            let resp_r, resp_w = Unix.pipe ~cloexec:false () in
            (req_r, req_w, resp_r, resp_w))
      in
      let children =
        Array.init procs (fun p ->
            let req_r, _, _, resp_w = pipes.(p) in
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 ->
                let code =
                  try
                    (* close every inherited end that is not ours; ends the
                       parent already closed before this fork are gone from
                       our table, so the closes are best-effort *)
                    let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
                    Array.iteri
                      (fun q (qreq_r, qreq_w, qresp_r, qresp_w) ->
                        close qreq_w;
                        close qresp_r;
                        if q <> p then begin
                          close qreq_r;
                          close qresp_w
                        end)
                      pipes;
                    child_main ~with_saturation ~lazy_policy ~jobs ~views ~lo:(p * spp)
                      ~hi:((p + 1) * spp) ~req_r ~resp_w;
                    0
                  with e ->
                    (try Wire.send resp_w (Wire.Child_error (Printexc.to_string e))
                     with _ -> ());
                    1
                in
                Unix._exit code
            | pid ->
                let req_r, req_w, resp_r, resp_w = pipes.(p) in
                Unix.close req_r;
                Unix.close resp_w;
                { pid; req_w; resp_r })
      in
      let reap_ok = Array.make procs false in
      let cleanup ~ok =
        Array.iteri
          (fun p c ->
            if not reap_ok.(p) then begin
              if not ok then (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
              (try Unix.close c.req_w with Unix.Unix_error _ -> ());
              (try Unix.close c.resp_r with Unix.Unix_error _ -> ());
              wait_pid c.pid;
              reap_ok.(p) <- true
            end)
          children
      in
      match
        (* streaming merge: child p's frames arrive shard-ascending and
           children are drained in process order, so strategies are added
           in flat shard order — the exact add sequence of the in-process
           [Shard_greedy.solve ~shards:(procs × spp)] merge *)
        let s = Strategy.create inst in
        let per_shard_selected = Array.make shards 0 in
        let evals = ref 0 and pops = ref 0 and truncated = ref false in
        Array.iteri
          (fun p c ->
            for k = 0 to spp - 1 do
              match recv_from c with
              | Wire.Shard_result r ->
                  if r.shard <> (p * spp) + k then
                    raise
                      (Wire.Protocol_error
                         (Printf.sprintf "shard %d arrived where %d was expected" r.shard
                            ((p * spp) + k)));
                  per_shard_selected.(r.shard) <- r.selected;
                  evals := !evals + r.evaluations;
                  pops := !pops + r.pops;
                  truncated := !truncated || r.truncated;
                  if Array.length r.slots = 0 then Array.iter (Strategy.add s) r.triples
                  else Array.iteri (fun j z -> Strategy.add ~slot:r.slots.(j) s z) r.triples
              | _ -> raise (Wire.Protocol_error "parent: expected a shard result")
            done)
          children;
        (* Capacity reconciliation, mirroring Shard_greedy.solve: each round
           walks the over-subscribed items in ascending order, ranks each
           item's holders by removal loss and releases the excess before
           moving to the next item; then all losers re-plan at once against
           the merged strategy. Round 1 obtains the loss values from the
           children — only the over-subscribed items' candidate lists cross
           the process boundary, and [Release] broadcasts keep the
           children's chains synchronized between items. Later rounds are
           unreachable (a re-plan checks the true capacities and cannot
           over-subscribe) but fall back to parent-side loss computation —
           the children's mirrors do not see re-planned additions. *)
        let rounds = ref 0 and released_pairs = ref 0 and replanned = ref 0 in
        let merged = ref s in
        let rec reconcile () =
          let over =
            List.filter_map
              (function Err.Capacity { item; _ } -> Some item | _ -> None)
              (Strategy.violations !merged)
          in
          if over <> [] then begin
            incr rounds;
            let losers = Hashtbl.create 16 in
            List.iter
              (fun i ->
                let cur = !merged in
                let holders =
                  List.sort_uniq compare
                    (List.filter_map
                       (fun (z : Triple.t) -> if z.i = i then Some z.u else None)
                       (Strategy.to_list cur))
                in
                let excess = List.length holders - Instance.capacity inst i in
                let ranked =
                  if !rounds = 1 then begin
                    let parts =
                      Array.map
                        (fun c ->
                          Wire.send c.req_w (Wire.Reconcile_request [| i |]);
                          match recv_from c with
                          | Wire.Loss_lists [| (item, ranked) |] when item = i ->
                              Array.to_list ranked
                          | _ -> raise (Wire.Protocol_error "parent: expected one loss list"))
                        children
                    in
                    List.sort compare (List.concat (Array.to_list parts))
                  end
                  else
                    List.sort compare
                      (List.map
                         (fun u -> (Shard_greedy.removal_loss ~with_saturation inst cur ~u ~i, u))
                         holders)
                in
                let released = ref [] in
                List.iteri
                  (fun rank (_, u) ->
                    if rank < excess then begin
                      List.iter
                        (fun (z : Triple.t) -> if z.i = i && z.u = u then Strategy.remove cur z)
                        (Strategy.to_list cur);
                      Hashtbl.replace losers u ();
                      released := u :: !released;
                      incr released_pairs
                    end)
                  ranked;
                if !rounds = 1 && !released <> [] then begin
                  let users = Array.of_list (List.rev !released) in
                  Array.iter (fun c -> Wire.send c.req_w (Wire.Release { item = i; users })) children
                end)
              over;
            let s', (st : Greedy.stats) =
              Greedy.run ~with_saturation ~lazy_policy
                ~allowed:(fun z -> Hashtbl.mem losers z.u)
                ~base:!merged inst
            in
            merged := s';
            evals := !evals + st.marginal_evaluations;
            pops := !pops + st.pops;
            replanned := !replanned + st.selected;
            truncated := !truncated || st.truncated;
            reconcile ()
          end
        in
        reconcile ();
        (* Quantity reconciliation, parent-side only, mirroring
           Shard_greedy.solve: removal-loss ranking keys are per-user
           chain deltas, so the trim computes the same doubles the flat
           planner does and releases the same triples in the same order.
           The children's mirrors do not see the removals, but they are
           never queried again (capacity rounds are over), so staleness
           is unobservable. *)
        (match Instance.max_total inst with
        | None -> ()
        | Some cap ->
            while Strategy.size !merged > cap do
              let cur = !merged in
              let best =
                List.fold_left
                  (fun acc z ->
                    let l = Shard_greedy.triple_removal_loss ~with_saturation inst cur z in
                    match acc with Some (l0, _) when l0 <= l -> acc | _ -> Some (l, z))
                  None (Strategy.to_list cur)
              in
              match best with
              | Some (_, z) -> Strategy.remove cur z
              | None -> assert false (* size > cap ≥ 0 implies a non-empty strategy *)
            done);
        Array.iter (fun c -> Wire.send c.req_w Wire.Shutdown) children;
        cleanup ~ok:true;
        ( !merged,
          {
            procs;
            shards_per_proc = spp;
            policy;
            degraded = false;
            per_shard_selected;
            marginal_evaluations = !evals;
            pops = !pops;
            selected = Strategy.size !merged;
            reconciliation_rounds = !rounds;
            released_pairs = !released_pairs;
            replanned = !replanned;
            truncated = !truncated;
          } )
      with
      | result -> result
      | exception e ->
          cleanup ~ok:false;
          raise e
    end
  end
