(* revmax — command-line front end for the REVMAX library.

   Subcommands:
     list                       enumerate the reproducible experiments
     experiment <id>|all        regenerate a table/figure of the paper
     datasets                   print Table-1-style statistics
     plan                       build a dataset, run an algorithm, report
                                the strategy and (optionally) simulate it *)

module Config = Revmax_experiments.Config
module Experiments = Revmax_experiments.Experiments
module Datasets = Revmax_experiments.Datasets
module Runner = Revmax_experiments.Runner
module Pipeline = Revmax_datagen.Pipeline
module Scalability = Revmax_datagen.Scalability
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Simulate = Revmax.Simulate
module Algorithms = Revmax.Algorithms
module Triple = Revmax.Triple
module Rng = Revmax_prelude.Rng
module Table = Revmax_prelude.Table
module Budget = Revmax_prelude.Budget
module Checkpoint = Revmax_experiments.Checkpoint

open Cmdliner

(* ----- shared options ----- *)

let scale_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "quick" -> Ok Config.Quick
    | "default" -> Ok Config.Default
    | "full" -> Ok Config.Full
    | other -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|default|full)" other))
  in
  let print ppf s = Format.pp_print_string ppf (Config.scale_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.Default
    & info [ "scale" ] ~docv:"SCALE" ~doc:"Experiment scale: quick, default or full.")

let seed_arg =
  Arg.(value & opt int 20140901 & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run on up to N cores (domains for in-process parallelism, processes for experiment \
           grids). Results are deterministic: every N produces the same strategies, revenues \
           and outputs. Defaults to $(b,REVMAX_JOBS), or 1.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition users into N contiguous shards for the sharded planner (algorithm \
           $(b,gg-sh)): each shard plans independently, then a deterministic reconciliation \
           round restores the global capacity constraints. Defaults to $(b,REVMAX_SHARDS), or \
           1. Orthogonal to $(b,--jobs), which bounds how many shards plan concurrently.")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"DEST"
        ~doc:
          "Enable the $(b,Metrics) registry and dump a snapshot at exit: $(b,-) (the default \
           when DEST is omitted) writes Prometheus text to stderr; a path writes to that file \
           (JSON when it ends in .json, Prometheus text otherwise). $(b,REVMAX_METRICS) is the \
           environment equivalent; see also $(b,REVMAX_LOG) for diagnostic verbosity.")

let config_term =
  let make scale seed jobs shards metrics =
    (match jobs with
    | Some j -> Revmax_prelude.Pool.set_default_jobs j
    | None -> ());
    (match shards with
    | Some n -> Revmax.Shard_greedy.set_default_shards n
    | None -> ());
    Revmax_prelude.Metrics.env_setup ();
    (match metrics with
    | Some dest -> Revmax_prelude.Metrics.enable_reporting dest
    | None -> ());
    { (Config.of_scale ~seed scale) with Config.scale }
  in
  Term.(const make $ scale_arg $ seed_arg $ jobs_arg $ shards_arg $ metrics_arg)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Anytime wall-clock budget: stop planning after SECONDS and return the best-so-far \
           valid strategy.")

let max_evals_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-evals" ] ~docv:"N"
        ~doc:"Anytime evaluation budget: stop planning after N marginal-revenue evaluations.")

let budget_of ~deadline ~max_evals =
  match (deadline, max_evals) with
  | None, None -> None
  | _ -> Some (Budget.create ?wall_seconds:deadline ?max_evaluations:max_evals ())

(* ----- list ----- *)

let list_cmd =
  let run () =
    let t = Table.create ~columns:[ "id"; "description" ] in
    List.iter (fun (id, desc, _) -> Table.add_row t [ id; desc ]) Experiments.all;
    Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.") Term.(const run $ const ())

(* ----- experiment ----- *)

let experiment_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see $(b,list)) or $(b,all).")
  in
  let checkpoint_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Record each completed experiment's output as one JSON file in DIR (written \
             atomically), so an interrupted run can be resumed with $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay experiments already recorded in the checkpoint directory instead of \
             recomputing them; execution picks up at the first missing experiment.")
  in
  let run cfg id checkpoint_dir resume =
    if resume && checkpoint_dir = None then
      `Error (false, "--resume requires --checkpoint-dir")
    else begin
      let checkpoint = Option.map (fun dir -> Checkpoint.create ~dir ~resume) checkpoint_dir in
      let meta =
        [
          ("scale", Config.scale_name cfg.Config.scale);
          ("seed", string_of_int cfg.Config.seed);
          (* shard count changes sharded-planner cells, so a resume under a
             different --shards must be rejected, like a seed change *)
          ("shards", string_of_int (Revmax.Shard_greedy.default_shards ()));
        ]
      in
      let on_done ~id ~status ~seconds:_ =
        match status with
        | `Ran -> ()
        | `Replayed -> Revmax_prelude.Metrics.Log.info "[%s replayed from checkpoint]\n" id
      in
      let run_cells cells =
        ignore
          (Checkpoint.run_cells checkpoint ~on_done
             (List.map (fun (eid, f) -> (eid, meta, fun () -> f cfg)) cells))
      in
      if id = "all" then begin
        run_cells (List.map (fun (eid, _desc, f) -> (eid, f)) Experiments.all);
        `Ok ()
      end
      else
        match List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all with
        | Some (eid, _, f) ->
            run_cells [ (eid, f) ];
            `Ok ()
        | None -> `Error (false, Printf.sprintf "unknown experiment %S; try `revmax list'" id)
    end
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure of the paper.")
    Term.(ret (const run $ config_term $ id_arg $ checkpoint_dir_arg $ resume_arg))

(* ----- datasets ----- *)

let datasets_cmd =
  let run cfg = Experiments.table1 cfg in
  Cmd.v
    (Cmd.info "datasets" ~doc:"Print Table-1-style statistics of the generated datasets.")
    Term.(const run $ config_term)

(* ----- plan ----- *)

let dataset_arg =
  Arg.(
    value
    & opt (enum [ ("amazon", `Amazon); ("epinions", `Epinions); ("synthetic", `Synthetic) ]) `Amazon
    & info [ "dataset" ] ~docv:"NAME" ~doc:"Dataset to plan on: amazon, epinions or synthetic.")

let algo_arg =
  let parse s =
    match Algorithms.parse s with
    | Some a -> Ok a
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown algorithm %S (gg|gg-no|slg|rlg[:N]|gg-sh[:N]|toprev|toprat)" s))
  in
  let print ppf a = Format.pp_print_string ppf (Algorithms.name a) in
  Arg.(
    value
    & opt (conv (parse, print)) Algorithms.G_greedy
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"Planning algorithm: gg, gg-no, slg, rlg[:N], gg-sh[:N], toprev, toprat.")

let beta_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "beta" ] ~docv:"B" ~doc:"Fixed saturation factor in [0,1]; default: uniform random.")

let simulate_arg =
  Arg.(
    value
    & opt int 0
    & info [ "simulate" ] ~docv:"N"
        ~doc:"Also Monte-Carlo simulate the strategy with N worlds and report the empirical mean.")

let show_arg =
  Arg.(
    value
    & opt int 0
    & info [ "show" ] ~docv:"N" ~doc:"Print the first N planned recommendations.")

let save_instance_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-instance" ] ~docv:"FILE" ~doc:"Write the generated instance to FILE.")

let save_strategy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-strategy" ] ~docv:"FILE" ~doc:"Write the planned strategy to FILE.")

(* constraint-variant flags, shared by plan / solve / pack *)
let slate_k_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "slate-k" ] ~docv:"K"
        ~doc:
          "Plan with K-slot ad slates: each (user, time) display becomes an ordered slate of K \
           slots whose adoption probabilities decay with the position (the display limit \
           becomes K).")

let slate_decay_arg =
  Arg.(
    value
    & opt float 0.7
    & info [ "slate-decay" ] ~docv:"R"
        ~doc:
          "Geometric position-decay ratio in (0,1\\] for $(b,--slate-k): slot s multiplies q by \
           R^(s-1).")

let max_total_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-total" ] ~docv:"N"
        ~doc:
          "Global quantity budget: the planned strategy may contain at most N recommendations \
           in total.")

let apply_variants ~slate_k ~slate_decay ~max_total inst =
  let inst =
    match slate_k with
    | None -> inst
    | Some k ->
        Instance.with_slate ~display_limit:k inst
          (Pipeline.position_curve ~decay:(`Geometric slate_decay) k)
  in
  match max_total with None -> inst | Some n -> Instance.with_max_total inst n

let plan_cmd =
  let run cfg dataset algo beta simulate show save_instance save_strategy deadline max_evals
      slate_k slate_decay max_total =
    let beta_spec =
      match beta with
      | None -> Pipeline.Beta_uniform
      | Some b -> Pipeline.Beta_fixed b
    in
    let inst =
      match dataset with
      | `Amazon | `Epinions ->
          let prepared =
            match dataset with `Amazon -> Datasets.amazon cfg | _ -> Datasets.epinions cfg
          in
          let users = prepared.Pipeline.num_users in
          Datasets.instance cfg prepared ~capacity:(Config.cap_gaussian cfg ~users) ~beta:beta_spec
            ()
      | `Synthetic ->
          Scalability.generate
            (Scalability.with_users (Config.fig6_base cfg) (List.hd (Config.fig6_user_counts cfg)))
            ~seed:cfg.Config.seed
    in
    let inst = apply_variants ~slate_k ~slate_decay ~max_total inst in
    Format.printf "instance: %a@." Instance.pp_stats inst;
    (match save_instance with
    | Some path ->
        Revmax.Io.save_instance path inst;
        Printf.printf "instance written to %s\n" path
    | None -> ());
    let budget = budget_of ~deadline ~max_evals in
    let (s, truncated), seconds =
      Revmax_prelude.Util.time_it (fun () ->
          Algorithms.run_anytime ?budget algo inst ~seed:cfg.Config.seed)
    in
    Printf.printf "%s planned %d recommendations in %.2fs\n" (Algorithms.name algo)
      (Strategy.size s) seconds;
    if truncated then
      Printf.printf "note: budget expired; this is the best-so-far (anytime) strategy\n";
    Printf.printf "expected total revenue: %.2f\n" (Revenue.total s);
    Printf.printf "strategy valid: %b\n" (Strategy.is_valid s);
    (match save_strategy with
    | Some path ->
        Revmax.Io.save_strategy path s;
        Printf.printf "strategy written to %s\n" path
    | None -> ());
    if simulate > 0 then begin
      let est = Simulate.estimate_revenue s ~samples:simulate (Rng.create cfg.Config.seed) in
      Printf.printf "simulated revenue over %d worlds: %.2f (stderr %.2f)\n" simulate
        est.Revmax_stats.Mc.mean est.Revmax_stats.Mc.std_error
    end;
    if show > 0 then begin
      let t = Table.create ~columns:[ "user"; "item"; "time"; "price"; "q"; "qS" ] in
      List.iter
        (fun (z : Triple.t) ->
          Table.add_row t
            [
              string_of_int z.u;
              string_of_int z.i;
              string_of_int z.t;
              Printf.sprintf "%.2f" (Instance.price inst ~i:z.i ~time:z.t);
              Printf.sprintf "%.3f" (Instance.q inst ~u:z.u ~i:z.i ~time:z.t);
              Printf.sprintf "%.3f" (Revenue.dynamic_probability_in s z);
            ])
        (Revmax_prelude.Util.take show (Strategy.to_list s));
      Table.print t
    end
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Generate a dataset, run a planning algorithm, report the strategy.")
    Term.(
      const run $ config_term $ dataset_arg $ algo_arg $ beta_arg $ simulate_arg $ show_arg
      $ save_instance_arg $ save_strategy_arg $ deadline_arg $ max_evals_arg $ slate_k_arg
      $ slate_decay_arg $ max_total_arg)

(* ----- solve (file-based workflow) ----- *)

(* A pack file opens memory-mapped (the out-of-core path); anything else
   goes through the text instance reader. Sniffed by the 8-byte magic so
   both formats work at every file-taking entry point. *)
let load_instance_auto file =
  let is_pack =
    match open_in_bin file with
    | exception Sys_error _ -> false
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> match really_input_string ic 8 with
            | magic -> magic = "REVMAXPK"
            | exception End_of_file -> false)
  in
  if is_pack then Instance.of_mmap_checked file else Revmax.Io.load_instance_result file

let solve_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"INSTANCE"
          ~doc:
            "Instance file: either the revmax-instance text format (see Revmax.Io) or a pack \
             file (see $(b,pack)), which is opened memory-mapped.")
  in
  let run cfg file algo simulate save_strategy deadline max_evals slate_k slate_decay max_total =
    match load_instance_auto file with
    | Error e -> `Error (false, Revmax_prelude.Err.message e)
    | Ok inst -> (
        match apply_variants ~slate_k ~slate_decay ~max_total inst with
        | exception Invalid_argument msg -> `Error (false, msg)
        | inst ->
        Format.printf "instance: %a@." Instance.pp_stats inst;
        let budget = budget_of ~deadline ~max_evals in
        let (s, truncated), seconds =
          Revmax_prelude.Util.time_it (fun () ->
              Algorithms.run_anytime ?budget algo inst ~seed:cfg.Config.seed)
        in
        Printf.printf "%s planned %d recommendations in %.2fs\n" (Algorithms.name algo)
          (Strategy.size s) seconds;
        if truncated then
          Printf.printf "note: budget expired; this is the best-so-far (anytime) strategy\n";
        Printf.printf "expected total revenue: %.2f\n" (Revenue.total s);
        (match save_strategy with
        | Some path ->
            Revmax.Io.save_strategy path s;
            Printf.printf "strategy written to %s\n" path
        | None -> ());
        if simulate > 0 then begin
          let est = Simulate.estimate_revenue s ~samples:simulate (Rng.create cfg.Config.seed) in
          Printf.printf "simulated revenue over %d worlds: %.2f (stderr %.2f)\n" simulate
            est.Revmax_stats.Mc.mean est.Revmax_stats.Mc.std_error
        end;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Plan on an instance loaded from a file.")
    Term.(
      ret
        (const run $ config_term $ file_arg $ algo_arg $ simulate_arg $ save_strategy_arg
       $ deadline_arg $ max_evals_arg $ slate_k_arg $ slate_decay_arg $ max_total_arg))

(* ----- pack (out-of-core instance files) ----- *)

let pack_cmd =
  let out_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output pack file (overwritten if present).")
  in
  let from_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "from" ] ~docv:"INSTANCE"
          ~doc:
            "Convert this revmax-instance text file to a pack instead of generating a synthetic \
             instance.")
  in
  let d = Scalability.default_config in
  let users_arg =
    Arg.(
      value
      & opt int d.Scalability.num_users
      & info [ "users" ] ~docv:"N" ~doc:"Synthetic instance: number of users.")
  in
  let items_arg =
    Arg.(
      value
      & opt int d.Scalability.num_items
      & info [ "items" ] ~docv:"N" ~doc:"Synthetic instance: number of items.")
  in
  let classes_arg =
    Arg.(
      value
      & opt int d.Scalability.num_classes
      & info [ "classes" ] ~docv:"N" ~doc:"Synthetic instance: number of item classes.")
  in
  let ipu_arg =
    Arg.(
      value
      & opt int d.Scalability.items_per_user
      & info [ "items-per-user" ] ~docv:"N"
          ~doc:"Synthetic instance: candidate items per user.")
  in
  let horizon_arg =
    Arg.(
      value
      & opt int d.Scalability.horizon
      & info [ "horizon" ] ~docv:"T" ~doc:"Synthetic instance: number of time steps.")
  in
  let k_arg =
    Arg.(
      value
      & opt int d.Scalability.display_limit
      & info [ "display-limit" ] ~docv:"K"
          ~doc:"Synthetic instance: recommendations per (user, time step).")
  in
  let run cfg out from users items classes ipu horizon k slate_k slate_decay max_total =
    let packed =
      match from with
      | Some file -> (
          match Revmax.Io.load_instance_result file with
          | Error e -> Error (Revmax_prelude.Err.message e)
          | Ok inst -> (
              match Instance.pack_to_file (apply_variants ~slate_k ~slate_decay ~max_total inst) out with
              | () -> Ok ()
              | exception Invalid_argument msg -> Error msg))
      | None -> (
          (* --slate-k doubles as the display limit, as in plan/solve *)
          let display_limit = Option.value slate_k ~default:k in
          let scfg =
            Scalability.with_users
              {
                Scalability.default_config with
                num_items = items;
                num_classes = classes;
                items_per_user = ipu;
                horizon;
                display_limit;
                slate =
                  Option.map
                    (fun n -> Pipeline.position_curve ~decay:(`Geometric slate_decay) n)
                    slate_k;
                max_total;
              }
              users
          in
          match Scalability.generate_pack scfg ~seed:cfg.Config.seed ~path:out with
          | () -> Ok ()
          | exception Invalid_argument msg -> Error msg)
    in
    match packed with
    | Error msg -> `Error (false, msg)
    | Ok () -> (
        (* re-open what was just written: the same validation pass every
           consumer runs, so a bad pack never leaves this command quietly *)
        match Instance.of_mmap_checked out with
        | Error e -> `Error (false, Revmax_prelude.Err.message e)
        | Ok inst ->
            Format.printf "packed instance: %a@." Instance.pp_stats inst;
            Printf.printf "%s: %d bytes (memory-mappable; use with `revmax solve')\n" out
              (Unix.stat out).Unix.st_size;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Write a memory-mappable pack instance: stream a synthetic scalability dataset \
          straight to disk (the instance never lives in memory), or convert a text instance \
          with $(b,--from). Pack files open out-of-core in $(b,solve).")
    Term.(
      ret
        (const run $ config_term $ out_arg $ from_arg $ users_arg $ items_arg $ classes_arg
       $ ipu_arg $ horizon_arg $ k_arg $ slate_k_arg $ slate_decay_arg $ max_total_arg))

(* ----- serve / replay (online serving layer) ----- *)

module Server = Revmax_serve.Server
module Driver = Revmax_serve.Driver
module Chaos = Revmax_serve.Chaos

let data_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:"Directory for the serving journal and snapshots (created if missing).")

let serve_instance_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "instance" ] ~docv:"FILE"
        ~doc:"Serve this instance file; a small synthetic instance is generated otherwise.")

let serve_users_arg =
  Arg.(
    value
    & opt int 200
    & info [ "users" ] ~docv:"N" ~doc:"Synthetic instance size (ignored with --instance).")

let snapshot_every_arg =
  Arg.(
    value
    & opt int 64
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:"Events between snapshots (0 = only at boot and shutdown).")

let sync_every_arg =
  Arg.(
    value
    & opt int 1
    & info [ "sync-every" ] ~docv:"N" ~doc:"Journal fsync batching (1 = fsync every event).")

let replan_evals_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "replan-evals" ] ~docv:"N"
        ~doc:
          "Per-event replan evaluation cap: under overload replans truncate, answers carry a \
           stale flag and a repair event replans fully. Unbounded by default.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection, e.g. \
           $(b,seed=5;fail=journal.sync:0.2;delay=journal.append:0.1:0.002;crash=journal.mid_write:40). \
           Defaults to $(b,REVMAX_CHAOS).")

let serve_inst cfg ~instance_file ~users =
  match instance_file with
  | Some path -> Revmax.Io.load_instance_result path
  | None ->
      let base = Scalability.with_users Scalability.default_config users in
      let small =
        {
          base with
          Scalability.num_items = max 2 (users * 2);
          num_classes = max 1 (users / 10);
          items_per_user = 10;
        }
      in
      Ok (Scalability.generate small ~seed:cfg.Config.seed)

let serve_config cfg ~data_dir ~snapshot_every ~sync_every ~replan_evals =
  {
    (Server.default_config ~data_dir) with
    Server.snapshot_every;
    sync_every;
    replan_evals;
    seed = cfg.Config.seed;
  }

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket instead of stdin/stdout.")
  in
  let run cfg instance_file users data_dir socket snapshot_every sync_every replan_evals chaos =
    (match chaos with Some spec -> Chaos.configure spec | None -> Chaos.configure_from_env ());
    match serve_inst cfg ~instance_file ~users with
    | Error e -> `Error (false, Revmax_prelude.Err.message e)
    | Ok inst ->
        Format.eprintf "serving instance: %a@." Instance.pp_stats inst;
        let st = Server.create (serve_config cfg ~data_dir ~snapshot_every ~sync_every ~replan_evals) inst in
        (match socket with
        | Some path -> Server.serve_unix st ~path
        | None -> Server.serve st ~in_fd:Unix.stdin ~out_fd:Unix.stdout);
        Server.close st;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Crash-safe online recommendation server: WAL-journaled events, incremental \
          replanning, degraded-mode answers. Speaks length-prefixed binary frames on \
          stdin/stdout or a Unix socket.")
    Term.(
      ret
        (const run $ config_term $ serve_instance_arg $ serve_users_arg $ data_dir_arg
       $ socket_arg $ snapshot_every_arg $ sync_every_arg $ replan_evals_arg $ chaos_arg))

let replay_cmd =
  let events_arg =
    Arg.(value & opt int 300 & info [ "events" ] ~docv:"N" ~doc:"Synthetic workload length.")
  in
  let kill_every_arg =
    Arg.(
      value
      & opt int 0
      & info [ "kill-every" ] ~docv:"N"
          ~doc:"SIGKILL the serving child after every N-th acknowledged event (0 = never).")
  in
  let probe_every_arg =
    Arg.(
      value
      & opt int 10
      & info [ "probe-every" ] ~docv:"N" ~doc:"Issue a top-k probe after every N-th event.")
  in
  let p99_slo_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "p99-slo-ms" ] ~docv:"MS"
          ~doc:"Fail unless event and probe p99 latencies are at most MS milliseconds.")
  in
  let run cfg instance_file users data_dir events kill_every probe_every chaos snapshot_every
      sync_every replan_evals p99_slo =
    match serve_inst cfg ~instance_file ~users with
    | Error e -> `Error (false, Revmax_prelude.Err.message e)
    | Ok inst ->
        let scfg = serve_config cfg ~data_dir ~snapshot_every ~sync_every ~replan_evals in
        let wl = Driver.synth_workload inst ~seed:cfg.Config.seed ~events in
        let r =
          Driver.run_replay ~kill_every
            ?chaos:(Option.map Fun.id chaos)
            ~probe_every scfg inst wl
        in
        Format.printf "%a@." Driver.pp_report r;
        let slo_ok =
          match p99_slo with
          | None -> true
          | Some ms ->
              1e3 *. r.Driver.event_latency.Driver.p99 <= ms
              && 1e3 *. r.Driver.probe_latency.Driver.p99 <= ms
        in
        if not r.Driver.identical then
          `Error (false, "replay diverged: recovered state differs from the reference fold")
        else if not slo_ok then
          `Error
            ( false,
              Printf.sprintf "p99 latency SLO (%.1f ms) violated: events %.3f ms, probes %.3f ms"
                (Option.get p99_slo)
                (1e3 *. r.Driver.event_latency.Driver.p99)
                (1e3 *. r.Driver.probe_latency.Driver.p99) )
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Crash-replay harness: drive a deterministic workload against a forked server, \
          SIGKILL and chaos-fault it, restart and resend, and verify the recovered state is \
          identical to a fault-free reference fold. Reports latency percentiles.")
    Term.(
      ret
        (const run $ config_term $ serve_instance_arg $ serve_users_arg $ data_dir_arg
       $ events_arg $ kill_every_arg $ probe_every_arg $ chaos_arg $ snapshot_every_arg
       $ sync_every_arg $ replan_evals_arg $ p99_slo_arg))

let () =
  let doc = "revenue-maximizing dynamic recommendations (VLDB 2014 reproduction)" in
  let info = Cmd.info "revmax" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; experiment_cmd; datasets_cmd; plan_cmd; solve_cmd; pack_cmd; serve_cmd;
            replay_cmd;
          ]))
