(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Figures 1-7, Table 2), the §7 random-price
   extension, and the design-choice ablations — then runs a Bechamel
   microbenchmark suite over the hot kernels (marginal revenue, heaps,
   Poisson-binomial DP) whose costs the macro experiments are built from.

   Scale is selected with REVMAX_SCALE=quick|default|full (see
   Config.load); REVMAX_ONLY=<id>[,<id>...] restricts to specific
   experiments; REVMAX_SKIP_MICRO=1 drops the Bechamel section.

   Fault tolerance: REVMAX_CHECKPOINT_DIR=<dir> records each completed
   experiment's stdout as one JSON file (atomic rename), and
   REVMAX_RESUME=1 replays recorded cells byte-for-byte so a killed run
   resumes at the first missing experiment. Progress/timing lines go to
   stderr, keeping stdout deterministic experiment content. *)

module Config = Revmax_experiments.Config
module Experiments = Revmax_experiments.Experiments
module Checkpoint = Revmax_experiments.Checkpoint
module Util = Revmax_prelude.Util
module Rng = Revmax_prelude.Rng
module Metrics = Revmax_prelude.Metrics
module Log = Revmax_prelude.Metrics.Log
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Triple = Revmax.Triple

(* ----- Bechamel microbenchmarks ----- *)

let micro_instance =
  lazy
    (let rng = Rng.create 7 in
     let num_users = 20 and num_items = 10 and horizon = 7 in
     let adoption = ref [] in
     for u = 0 to num_users - 1 do
       for i = 0 to num_items - 1 do
         adoption := (u, i, Array.init horizon (fun _ -> Rng.unit_float rng)) :: !adoption
       done
     done;
     Instance.create ~num_users ~num_items ~horizon ~display_limit:3
       ~class_of:(Array.init num_items (fun i -> i mod 3))
       ~capacity:(Array.make num_items 10)
       ~saturation:(Array.init num_items (fun _ -> Rng.unit_float rng))
       ~price:
         (Array.init num_items (fun _ -> Array.init horizon (fun _ -> Rng.uniform_in rng 1.0 10.0)))
       ~adoption:!adoption ())

let strategy_with_chain len =
  let inst = Lazy.force micro_instance in
  let s = Strategy.create inst in
  (* one user, one class: items 0,3,6 share class 0 *)
  for t = 1 to min len (Instance.horizon inst) do
    Strategy.add s (Triple.make ~u:0 ~i:(3 * (t mod 2)) ~t)
  done;
  s

let bench_marginal len =
  let s = strategy_with_chain len in
  let z = Triple.make ~u:0 ~i:6 ~t:(Instance.horizon (Strategy.instance s)) in
  Bechamel.Staged.stage (fun () -> ignore (Revenue.marginal s z))

let bench_marginal_incremental len =
  let s = strategy_with_chain len in
  let z = Triple.make ~u:0 ~i:6 ~t:(Instance.horizon (Strategy.instance s)) in
  Bechamel.Staged.stage (fun () -> ignore (Revenue.marginal_incremental s z))

let bench_heap_churn () =
  let module Bh = Revmax_pqueue.Binary_heap in
  Bechamel.Staged.stage (fun () ->
      let h = Bh.create () in
      for i = 0 to 63 do
        ignore (Bh.insert h ~key:(float_of_int ((i * 37) mod 64)) i)
      done;
      while not (Bh.is_empty h) do
        ignore (Bh.delete_max h)
      done)

let bench_two_level_churn () =
  let module Tl = Revmax_pqueue.Two_level_heap in
  Bechamel.Staged.stage (fun () ->
      let h = Tl.create () in
      for i = 0 to 63 do
        Tl.insert h ~pair:(i mod 8) ~key:(float_of_int ((i * 37) mod 64)) i
      done;
      while not (Tl.is_empty h) do
        ignore (Tl.delete_max h)
      done)

let bench_poisson_binomial () =
  let ps = Array.init 100 (fun i -> 0.01 *. float_of_int (i mod 90)) in
  Bechamel.Staged.stage (fun () -> ignore (Revmax_stats.Poisson_binomial.at_most ps 10))

let bench_kde_sf () =
  let kde = Revmax_stats.Kde.fit (Array.init 50 (fun i -> 10.0 +. float_of_int i)) in
  Bechamel.Staged.stage (fun () -> ignore (Revmax_stats.Kde.sf kde 35.0))

let bench_simulate () =
  let s = strategy_with_chain 5 in
  let rng = Rng.create 3 in
  Bechamel.Staged.stage (fun () -> ignore (Revmax.Simulate.revenue_once s rng))

let micro_tests =
  let open Bechamel in
  Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
    [
      Test.make ~name:"marginal-revenue (chain 2)" (bench_marginal 2);
      Test.make ~name:"marginal-revenue (chain 7)" (bench_marginal 7);
      Test.make ~name:"marginal-incremental (chain 2)" (bench_marginal_incremental 2);
      Test.make ~name:"marginal-incremental (chain 7)" (bench_marginal_incremental 7);
      Test.make ~name:"binary-heap churn (64)" (bench_heap_churn ());
      Test.make ~name:"two-level-heap churn (64)" (bench_two_level_churn ());
      Test.make ~name:"poisson-binomial at_most (n=100,m=10)" (bench_poisson_binomial ());
      Test.make ~name:"kde survival (n=50)" (bench_kde_sf ());
      Test.make ~name:"simulate chain world" (bench_simulate ());
    ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Log.out "\n=== Microbenchmarks (Bechamel, monotonic clock) ===\n";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Log.out "%-45s %12.1f ns/run\n" name t
      | Some [] | None -> Log.out "%-45s (no estimate)\n" name)
    (List.sort compare rows)

(* ----- Main ----- *)

let () =
  (* allocation-heavy planning benefits from a roomier minor heap *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024; space_overhead = 200 };
  Metrics.env_setup ();
  let cfg = Config.load () in
  (* meta/progress lines go to stderr: stdout carries only deterministic
     experiment content, so checkpointed and resumed runs compare equal *)
  Log.info "REVMAX benchmark suite — scale=%s seed=%d jobs=%d\n"
    (Config.scale_name cfg.Config.scale)
    cfg.Config.seed
    (Revmax_prelude.Pool.default_jobs ());
  Log.info "(REVMAX_SCALE=quick|default|full selects sizes; see DESIGN.md section 4)\n";
  let only =
    match Sys.getenv_opt "REVMAX_ONLY" with
    | None -> None
    | Some s -> Some (String.split_on_char ',' s |> List.map String.trim)
  in
  let resume =
    match Sys.getenv_opt "REVMAX_RESUME" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  let checkpoint =
    Option.map
      (fun dir -> Checkpoint.create ~dir ~resume)
      (Sys.getenv_opt "REVMAX_CHECKPOINT_DIR")
  in
  let meta =
    [
      ("scale", Config.scale_name cfg.Config.scale);
      ("seed", string_of_int cfg.Config.seed);
      (* a different REVMAX_SHARDS changes the bench-shards cell, so a
         resume under a new shard count is rejected like a seed change *)
      ("shards", string_of_int (Revmax.Shard_greedy.default_shards ()));
    ]
  in
  let total_t0 = Unix.gettimeofday () in
  (* grid cells run on up to REVMAX_JOBS processes; outputs, records and the
     stderr progress lines below are emitted in cell order either way *)
  let cells =
    List.filter_map
      (fun (id, _desc, f) ->
        let selected = match only with None -> true | Some ids -> List.mem id ids in
        if selected then Some (id, meta, fun () -> f cfg) else None)
      Experiments.all
  in
  let on_done ~id ~status ~seconds =
    match status with
    | `Ran -> Log.info "[%s finished in %.1fs]\n" id seconds
    | `Replayed -> Log.info "[%s replayed from checkpoint]\n" id
  in
  ignore (Checkpoint.run_cells checkpoint ~on_done cells);
  (match (only, Sys.getenv_opt "REVMAX_SKIP_MICRO") with
  | None, None -> run_micro ()
  | _ -> ());
  Log.info "\nTotal benchmark time: %.1fs\n" (Unix.gettimeofday () -. total_t0)
