(* Parallel-equivalence suite (PR 3).

   The determinism contract of [Revmax_prelude.Pool] is that jobs = 1 is the
   reference semantics and every other jobs value produces identical results
   — revenues, strategies, statistics, Monte-Carlo estimates, checkpoint
   bytes. This suite asserts that contract at every wired site for
   jobs ∈ {1, 2, 4, 8} and exercises the pool's exception/nesting/lifecycle
   behaviour directly. The fork-based parallel-grid tests (crash/resume,
   byte-identical assembly) live in [test_parallel_grid.ml]: OCaml 5.1
   permanently refuses [Unix.fork] once a domain has been spawned, so they
   need a process that never touches the pool. *)

module Pool = Revmax_prelude.Pool
module Rng = Revmax_prelude.Rng
module Err = Revmax_prelude.Err
module Budget = Revmax_prelude.Budget
module Mc = Revmax_stats.Mc
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Simulate = Revmax.Simulate
module Algorithms = Revmax.Algorithms
module Local_greedy = Revmax.Local_greedy
module Local_search = Revmax.Local_search
module Runner = Revmax_experiments.Runner
open Helpers

let jobs_grid = [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)
(* ------------------------------------------------------------------ *)

let prop_pool_map_matches_sequential =
  QCheck2.Test.make ~name:"parallel_map = Array.map at jobs 1,2,4,8" ~count:100
    QCheck2.Gen.(list (int_range (-1000) 1000))
    (fun xs ->
      let a = Array.of_list xs in
      let f x = (x * x) - (3 * x) + 7 in
      let expected = Array.map f a in
      List.for_all (fun jobs -> Pool.parallel_map ~jobs a ~f = expected) jobs_grid)

let prop_pool_init_matches_sequential =
  QCheck2.Test.make ~name:"parallel_init/for = sequential at jobs 1,2,4,8" ~count:100
    QCheck2.Gen.(int_range 0 200)
    (fun n ->
      let f i = (i * 31) mod 17 in
      let expected = Array.init n f in
      List.for_all
        (fun jobs ->
          let by_init = Pool.parallel_init ~jobs n ~f in
          let by_for = Array.make n (-1) in
          Pool.parallel_for ~jobs n ~f:(fun i -> by_for.(i) <- f i);
          by_init = expected && by_for = expected)
        jobs_grid)

let test_pool_exception_propagates () =
  List.iter
    (fun jobs ->
      (match
         Pool.parallel_map ~jobs (Array.init 16 Fun.id) ~f:(fun i ->
             if i = 11 then failwith "boom" else i)
       with
      | _ -> Alcotest.failf "jobs=%d: exception swallowed" jobs
      | exception Failure msg -> Alcotest.(check string) "exception carried" "boom" msg);
      (* the pool stays usable after a failed call *)
      let a = Pool.parallel_map ~jobs (Array.init 8 Fun.id) ~f:succ in
      Alcotest.(check (array int)) "pool usable after raise" (Array.init 8 succ) a)
    jobs_grid

let test_pool_lowest_chunk_exception_wins () =
  (* two failing chunks: the one covering the lower indices is re-raised,
     matching the first exception a sequential run would hit *)
  match
    Pool.parallel_map ~jobs:4 (Array.init 16 Fun.id) ~f:(fun i ->
        if i >= 2 then failwith (string_of_int i) else i)
  with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure msg ->
      Alcotest.(check string) "lowest failing chunk re-raised" "2" msg

let test_pool_nesting () =
  let expected = Array.init 6 (fun i -> Array.init 8 (fun j -> (i * 8) + j)) in
  let got =
    Pool.parallel_map ~jobs:2 (Array.init 6 Fun.id) ~f:(fun i ->
        Pool.parallel_init ~jobs:2 8 ~f:(fun j -> (i * 8) + j))
  in
  Alcotest.(check bool) "nested maps deterministic" true (got = expected)

let test_pool_worker_lifecycle () =
  Pool.quiesce ();
  Alcotest.(check int) "no workers after quiesce" 0 (Pool.worker_count ());
  ignore (Pool.parallel_map ~jobs:4 (Array.init 16 Fun.id) ~f:succ);
  Alcotest.(check int) "jobs=4 spawns 3 workers (caller is the 4th)" 3 (Pool.worker_count ());
  (* jobs=1 never spawns *)
  Pool.quiesce ();
  ignore (Pool.parallel_map ~jobs:1 (Array.init 16 Fun.id) ~f:succ);
  Alcotest.(check int) "jobs=1 spawns none" 0 (Pool.worker_count ());
  ignore (Pool.parallel_map ~jobs:3 (Array.init 16 Fun.id) ~f:succ);
  Pool.quiesce ();
  Alcotest.(check int) "quiesce joins all" 0 (Pool.worker_count ());
  let a = Pool.parallel_map ~jobs:3 (Array.init 5 Fun.id) ~f:succ in
  Alcotest.(check (array int)) "pool respawns after quiesce" [| 1; 2; 3; 4; 5 |] a

let test_default_jobs_knob () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs 5;
      Alcotest.(check int) "set_default_jobs" 5 (Pool.default_jobs ());
      Pool.set_default_jobs 0;
      Alcotest.(check int) "clamped to 1" 1 (Pool.default_jobs ());
      Alcotest.(check bool) "initial default positive" true (saved >= 1))

(* ------------------------------------------------------------------ *)
(* Rng stream splitting                                                *)
(* ------------------------------------------------------------------ *)

let test_split_n_deterministic () =
  let a = Rng.split_n (Rng.create 42) 8 and b = Rng.split_n (Rng.create 42) 8 in
  Array.iteri
    (fun i s -> Alcotest.(check int64) "same stream" (Rng.int64 s) (Rng.int64 b.(i)))
    a;
  (* stream i is the i-th consecutive split: a prefix is a prefix *)
  let c = Rng.split_n (Rng.create 42) 3 in
  let a' = Rng.split_n (Rng.create 42) 8 in
  Array.iteri
    (fun i s -> Alcotest.(check int64) "prefix property" (Rng.int64 a'.(i)) (Rng.int64 s))
    c

(* ------------------------------------------------------------------ *)
(* Monte-Carlo estimates: bit-identical across jobs                    *)
(* ------------------------------------------------------------------ *)

let estimates_equal (a : Mc.estimate) (b : Mc.estimate) =
  Float.equal a.Mc.mean b.Mc.mean
  && Float.equal a.Mc.std_error b.Mc.std_error
  && a.Mc.samples = b.Mc.samples

let prop_mc_estimate_bit_identical =
  QCheck2.Test.make ~name:"Mc.estimate bit-identical at jobs 1,2,4,8" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let run jobs =
        Mc.estimate ~jobs ~samples:64 (Rng.create seed) (fun rng ->
            Rng.unit_float rng +. Rng.gaussian rng)
      in
      let reference = run 1 in
      List.for_all (fun jobs -> estimates_equal reference (run jobs)) jobs_grid)

let test_simulate_estimate_bit_identical () =
  for seed = 0 to 4 do
    let inst = random_instance (Rng.create seed) in
    let s = random_valid_strategy inst (Rng.create (seed + 100)) in
    let run jobs = Simulate.estimate_revenue ~jobs s ~samples:40 (Rng.create seed) in
    let reference = run 1 in
    List.iter
      (fun jobs ->
        if not (estimates_equal reference (run jobs)) then
          Alcotest.failf "seed %d jobs %d: estimate differs" seed jobs)
      jobs_grid
  done

(* ------------------------------------------------------------------ *)
(* Algorithms: strategies and statistics invariant in jobs             *)
(* ------------------------------------------------------------------ *)

let strategy_fingerprint s = List.sort compare (Strategy.to_list s)

let test_rl_greedy_jobs_invariant () =
  for seed = 0 to 4 do
    let inst = random_instance (Rng.create seed) in
    let run jobs = Local_greedy.rl_greedy ~permutations:6 ~jobs inst (Rng.create seed) in
    let s1, st1 = run 1 in
    List.iter
      (fun jobs ->
        let s, st = run jobs in
        if strategy_fingerprint s <> strategy_fingerprint s1 then
          Alcotest.failf "seed %d jobs %d: strategy differs" seed jobs;
        if st <> st1 then Alcotest.failf "seed %d jobs %d: stats differ" seed jobs)
      jobs_grid
  done

let test_local_search_jobs_invariant () =
  for seed = 0 to 2 do
    let inst = random_instance ~max_users:2 ~max_items:3 ~max_horizon:2 (Rng.create seed) in
    let run jobs = Local_search.solve ~jobs inst in
    let r1 = run 1 in
    List.iter
      (fun jobs ->
        let r = run jobs in
        if strategy_fingerprint r.Local_search.strategy
           <> strategy_fingerprint r1.Local_search.strategy
        then Alcotest.failf "seed %d jobs %d: strategy differs" seed jobs;
        if not (Float.equal r.Local_search.value r1.Local_search.value) then
          Alcotest.failf "seed %d jobs %d: value differs" seed jobs;
        (* oracle_calls may legitimately differ (batched scans over-evaluate
           past the accepted move); moves and truncation may not *)
        if r.Local_search.moves <> r1.Local_search.moves then
          Alcotest.failf "seed %d jobs %d: move count differs" seed jobs;
        if r.Local_search.truncated <> r1.Local_search.truncated then
          Alcotest.failf "seed %d jobs %d: truncation differs" seed jobs)
      jobs_grid
  done

(* Outcomes with the timing-dependent seconds field projected out. *)
let outcome_fingerprint = function
  | Runner.Completed r ->
      Printf.sprintf "ok %s %h %d %b" (Algorithms.name r.Runner.algo) r.Runner.revenue
        r.Runner.strategy_size r.Runner.truncated
  | Runner.Failed { algo; error; _ } ->
      Printf.sprintf "fail %s %s" (Algorithms.name algo) (Err.message error)

let test_run_suite_jobs_invariant () =
  for seed = 0 to 2 do
    let inst = random_instance (Rng.create (50 + seed)) in
    let run jobs = Runner.run_suite ~jobs ~rlg_permutations:4 ~seed:(60 + seed) inst in
    let reference = List.map outcome_fingerprint (run 1) in
    List.iter
      (fun jobs ->
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d jobs %d" seed jobs)
          reference
          (List.map outcome_fingerprint (run jobs)))
      jobs_grid
  done

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          QCheck_alcotest.to_alcotest prop_pool_map_matches_sequential;
          QCheck_alcotest.to_alcotest prop_pool_init_matches_sequential;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "lowest chunk exception wins" `Quick
            test_pool_lowest_chunk_exception_wins;
          Alcotest.test_case "nesting" `Quick test_pool_nesting;
          Alcotest.test_case "worker lifecycle" `Quick test_pool_worker_lifecycle;
          Alcotest.test_case "default jobs knob" `Quick test_default_jobs_knob;
        ] );
      ("rng", [ Alcotest.test_case "split_n deterministic prefix" `Quick test_split_n_deterministic ]);
      ( "estimates",
        [
          QCheck_alcotest.to_alcotest prop_mc_estimate_bit_identical;
          Alcotest.test_case "simulate bit-identical" `Quick test_simulate_estimate_bit_identical;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "rl_greedy jobs-invariant" `Quick test_rl_greedy_jobs_invariant;
          Alcotest.test_case "local_search jobs-invariant" `Slow test_local_search_jobs_invariant;
          Alcotest.test_case "run_suite jobs-invariant" `Slow test_run_suite_jobs_invariant;
        ] );
    ]
