module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Io = Revmax.Io
module Greedy = Revmax.Greedy
open Helpers

let roundtrip_instance inst =
  let path = Filename.temp_file "revmax" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_instance path inst;
      Io.load_instance path)

let assert_instances_equal a b =
  Alcotest.(check int) "users" (Instance.num_users a) (Instance.num_users b);
  Alcotest.(check int) "items" (Instance.num_items a) (Instance.num_items b);
  Alcotest.(check int) "horizon" (Instance.horizon a) (Instance.horizon b);
  Alcotest.(check int) "k" (Instance.display_limit a) (Instance.display_limit b);
  for i = 0 to Instance.num_items a - 1 do
    Alcotest.(check int) "class" (Instance.class_of a i) (Instance.class_of b i);
    Alcotest.(check int) "capacity" (Instance.capacity a i) (Instance.capacity b i);
    check_float ~eps:0.0 "saturation" (Instance.saturation a i) (Instance.saturation b i);
    for t = 1 to Instance.horizon a do
      check_float ~eps:0.0 "price" (Instance.price a ~i ~time:t) (Instance.price b ~i ~time:t)
    done
  done;
  for u = 0 to Instance.num_users a - 1 do
    for i = 0 to Instance.num_items a - 1 do
      (match (Instance.rating a ~u ~i, Instance.rating b ~u ~i) with
      | Some ra, Some rb -> check_float ~eps:0.0 "rating" ra rb
      | None, None -> ()
      | _ -> Alcotest.fail "rating presence mismatch");
      for t = 1 to Instance.horizon a do
        check_float ~eps:0.0 "q" (Instance.q a ~u ~i ~time:t) (Instance.q b ~u ~i ~time:t)
      done
    done
  done

let test_instance_roundtrip_small () =
  let inst = example4_instance () in
  assert_instances_equal inst (roundtrip_instance inst)

let test_instance_roundtrip_with_ratings () =
  let inst =
    Instance.create ~num_users:2 ~num_items:2 ~horizon:2 ~display_limit:1 ~class_of:[| 0; 1 |]
      ~capacity:[| 1; 2 |] ~saturation:[| 0.25; 1.0 |]
      ~price:[| [| 1.5; 2.5 |]; [| 3.25; 0.125 |] |]
      ~ratings:[ (0, 0, 4.5); (1, 1, 2.0) ]
      ~adoption:[ (0, 0, [| 0.1; 0.9 |]); (1, 1, [| 0.5; 0.0 |]) ]
      ()
  in
  assert_instances_equal inst (roundtrip_instance inst)

let prop_instance_roundtrip_random () =
  for seed = 0 to 29 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    assert_instances_equal inst (roundtrip_instance inst)
  done

let test_strategy_roundtrip () =
  let rng = Rng.create 5 in
  let inst = random_instance rng in
  let s, _ = Greedy.run inst in
  let path = Filename.temp_file "revmax" ".strategy" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_strategy path s;
      let s' = Io.load_strategy inst path in
      Alcotest.(check int) "size" (Strategy.size s) (Strategy.size s');
      check_float ~eps:0.0 "revenue preserved" (Revenue.total s) (Revenue.total s');
      Alcotest.(check bool) "same triples" true
        (List.for_all2 Revmax.Triple.equal (Strategy.to_list s) (Strategy.to_list s')))

let expect_failure name input =
  let path = Filename.temp_file "revmax" ".bad" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc input);
      match Io.load_instance path with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "%s: expected a parse failure" name)

let test_malformed_inputs () =
  expect_failure "empty" "";
  expect_failure "wrong header" "revmax-strategy 1\nend\n";
  expect_failure "missing end" "revmax-instance 1\ndims 1 1 1 1\nitem 0 0 1 1.0 1.0\n";
  expect_failure "missing item" "revmax-instance 1\ndims 1 2 1 1\nitem 0 0 1 1.0 1.0\nend\n";
  expect_failure "bad float" "revmax-instance 1\ndims 1 1 1 1\nitem 0 0 1 oops 1.0\nend\n";
  expect_failure "wrong price count" "revmax-instance 1\ndims 1 1 2 1\nitem 0 0 1 1.0 1.0\nend\n";
  expect_failure "invalid probability"
    "revmax-instance 1\ndims 1 1 1 1\nitem 0 0 1 1.0 1.0\nq 0 0 1.5\nend\n"

(* satellite regression: a bad token must be reported with the file path,
   1-based line number, and 1-based column of the offending token *)
let test_parse_error_location () =
  let path = Filename.temp_file "revmax" ".bad" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "revmax-instance 1\ndims 1 1 1 1\nitem 0 0 1 oops 1.0\nend\n");
      match Io.load_instance_result path with
      | Ok _ -> Alcotest.fail "expected a parse error"
      | Error (Revmax_prelude.Err.Parse_error { file; line; col; msg }) ->
          Alcotest.(check string) "file" path file;
          Alcotest.(check int) "line" 3 line;
          Alcotest.(check int) "col" 12 col;
          Alcotest.(check bool) "message names the token" true
            (Revmax_prelude.Util.contains_substring msg "bad float")
      | Error e -> Alcotest.failf "unexpected error: %s" (Revmax_prelude.Err.message e))

let test_load_result_missing_file () =
  match Io.load_instance_result "/nonexistent/revmax.inst" with
  | Ok _ -> Alcotest.fail "expected an io error"
  | Error (Revmax_prelude.Err.Io_error { path; _ }) ->
      Alcotest.(check string) "path" "/nonexistent/revmax.inst" path
  | Error e -> Alcotest.failf "unexpected error: %s" (Revmax_prelude.Err.message e)

let test_comments_and_blank_lines () =
  let path = Filename.temp_file "revmax" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            "# a comment\nrevmax-instance 1\n\ndims 1 1 1 1\n# another\nitem 0 0 1 0.5 9.0\nq 0 0 0.25\nend\n");
      let inst = Io.load_instance path in
      check_float "price" 9.0 (Instance.price inst ~i:0 ~time:1);
      check_float "q" 0.25 (Instance.q inst ~u:0 ~i:0 ~time:1))

let test_strategy_rejects_out_of_range () =
  let inst = example4_instance () in
  let path = Filename.temp_file "revmax" ".strategy" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "revmax-strategy 1\ntriple 5 0 1\nend\n");
      match Io.load_strategy inst path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected a range failure")

let () =
  Alcotest.run "io"
    [
      ( "instance",
        [
          Alcotest.test_case "roundtrip example 4" `Quick test_instance_roundtrip_small;
          Alcotest.test_case "roundtrip with ratings" `Quick test_instance_roundtrip_with_ratings;
          Alcotest.test_case "roundtrip random instances" `Quick prop_instance_roundtrip_random;
          Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
          Alcotest.test_case "parse error location" `Quick test_parse_error_location;
          Alcotest.test_case "missing file is Io_error" `Quick test_load_result_missing_file;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "roundtrip" `Quick test_strategy_roundtrip;
          Alcotest.test_case "out-of-range rejected" `Quick test_strategy_rejects_out_of_range;
        ] );
    ]
