module Mcmf = Revmax_flow.Mcmf
module Max_dcs = Revmax_flow.Max_dcs
module Rng = Revmax_prelude.Rng

(* ----- Mcmf ----- *)

let test_mcmf_single_path () =
  let net = Mcmf.create 3 in
  let e1 = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:4 ~cost:1.0 in
  let e2 = Mcmf.add_edge net ~src:1 ~dst:2 ~cap:3 ~cost:2.0 in
  let r = Mcmf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 3 r.Mcmf.flow;
  Helpers.check_float "cost" 9.0 r.Mcmf.cost;
  Alcotest.(check int) "edge1 flow" 3 (Mcmf.flow_on net e1);
  Alcotest.(check int) "edge2 flow" 3 (Mcmf.flow_on net e2)

let test_mcmf_prefers_cheap_path () =
  (* two parallel 0→1 routes via intermediate nodes; cheap one saturates first *)
  let net = Mcmf.create 4 in
  let cheap = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:1.0 in
  let expensive = Mcmf.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:5.0 in
  let _ = Mcmf.add_edge net ~src:1 ~dst:3 ~cap:1 ~cost:0.0 in
  let _ = Mcmf.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:0.0 in
  let r = Mcmf.solve net ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow" 2 r.Mcmf.flow;
  Helpers.check_float "total cost" 6.0 r.Mcmf.cost;
  Alcotest.(check int) "cheap used" 1 (Mcmf.flow_on net cheap);
  Alcotest.(check int) "expensive used" 1 (Mcmf.flow_on net expensive)

let test_mcmf_negative_costs () =
  (* a negative-cost arc requires the Bellman-Ford potential seeding *)
  let net = Mcmf.create 3 in
  let _ = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:2 ~cost:(-3.0) in
  let _ = Mcmf.add_edge net ~src:1 ~dst:2 ~cap:2 ~cost:1.0 in
  let r = Mcmf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 2 r.Mcmf.flow;
  Helpers.check_float "cost" (-4.0) r.Mcmf.cost

let test_mcmf_stop_when_unprofitable () =
  (* profitable unit (-2 + 1 = -1) then unprofitable unit (0 + 1 = +1):
     profit mode must ship exactly one unit *)
  let net = Mcmf.create 3 in
  let _ = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:(-2.0) in
  let _ = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:0.0 in
  let _ = Mcmf.add_edge net ~src:1 ~dst:2 ~cap:2 ~cost:1.0 in
  let r = Mcmf.solve ~stop_when_unprofitable:true net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 1 r.Mcmf.flow;
  Helpers.check_float "cost" (-1.0) r.Mcmf.cost

let test_mcmf_disconnected () =
  let net = Mcmf.create 2 in
  let r = Mcmf.solve net ~source:0 ~sink:1 in
  Alcotest.(check int) "no flow" 0 r.Mcmf.flow;
  Helpers.check_float "no cost" 0.0 r.Mcmf.cost

(* Regression: a re-solve after augmentation sees negative-cost *reverse*
   residual arcs even when every edge was added with non-negative cost.
   Dijkstra with zero potentials is unsound there and silently picks the
   wrong (more expensive) path; the solver must detect the negative
   residual arc and fall back to Bellman–Ford potential seeding. *)
let test_mcmf_resolve_after_augmentation () =
  let net = Mcmf.create 6 in
  (* phase 1: push one unit 3→2→1→4, leaving residual arc 1→2 of cost -4 *)
  let _ = Mcmf.add_edge net ~src:3 ~dst:2 ~cap:1 ~cost:0.0 in
  let mid = Mcmf.add_edge net ~src:2 ~dst:1 ~cap:1 ~cost:4.0 in
  let _ = Mcmf.add_edge net ~src:1 ~dst:4 ~cap:1 ~cost:0.0 in
  let r1 = Mcmf.solve net ~source:3 ~sink:4 in
  Alcotest.(check int) "phase-1 flow" 1 r1.Mcmf.flow;
  Helpers.check_float "phase-1 cost" 4.0 r1.Mcmf.cost;
  (* phase 2: two routes 0→5 — direct via 2 at cost 3, or via the residual
     arc at cost 5 - 4 + 0 = 1. The sink edge admits only one unit, so a
     solver that greedily finalizes the direct route returns cost 3. *)
  let _ = Mcmf.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:3.0 in
  let _ = Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:5.0 in
  let _ = Mcmf.add_edge net ~src:2 ~dst:5 ~cap:1 ~cost:0.0 in
  let r2 = Mcmf.solve net ~source:0 ~sink:5 in
  Alcotest.(check int) "phase-2 flow" 1 r2.Mcmf.flow;
  Helpers.check_float "phase-2 cost" 1.0 r2.Mcmf.cost;
  (* the cheap route cancels the phase-1 flow on the 2→1 edge *)
  Alcotest.(check int) "phase-1 edge flow cancelled" 0 (Mcmf.flow_on net mid)

(* naive successive-shortest-path reference: Bellman–Ford over a dense
   residual matrix, augmenting along the shortest path until the sink is
   unreachable. Sound on any residual network without negative cycles; the
   generator below emits DAG edges only (src < dst), so none exist. *)
let reference_mcmf n ~source ~sink edges =
  let cap = Array.make_matrix n n 0 in
  let cost = Array.make_matrix n n 0.0 in
  List.iter
    (fun (u, v, c, w) ->
      cap.(u).(v) <- cap.(u).(v) + c;
      cost.(u).(v) <- w;
      cost.(v).(u) <- -.w)
    edges;
  let total_flow = ref 0 and total_cost = ref 0.0 in
  let continue_loop = ref true in
  while !continue_loop do
    let dist = Array.make n Float.infinity in
    let pred = Array.make n (-1) in
    dist.(source) <- 0.0;
    for _ = 1 to n - 1 do
      for u = 0 to n - 1 do
        if Float.is_finite dist.(u) then
          for v = 0 to n - 1 do
            if cap.(u).(v) > 0 && dist.(u) +. cost.(u).(v) < dist.(v) -. 1e-12 then begin
              dist.(v) <- dist.(u) +. cost.(u).(v);
              pred.(v) <- u
            end
          done
      done
    done;
    if not (Float.is_finite dist.(sink)) then continue_loop := false
    else begin
      let bottleneck = ref max_int in
      let v = ref sink in
      while !v <> source do
        let u = pred.(!v) in
        if cap.(u).(!v) < !bottleneck then bottleneck := cap.(u).(!v);
        v := u
      done;
      let v = ref sink in
      while !v <> source do
        let u = pred.(!v) in
        cap.(u).(!v) <- cap.(u).(!v) - !bottleneck;
        cap.(!v).(u) <- cap.(!v).(u) + !bottleneck;
        total_cost := !total_cost +. (float_of_int !bottleneck *. cost.(u).(!v));
        v := u
      done;
      total_flow := !total_flow + !bottleneck
    end
  done;
  (!total_flow, !total_cost)

let prop_mcmf_matches_reference =
  QCheck2.Test.make ~name:"Mcmf matches Bellman-Ford reference" ~count:200
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 4 in
      (* random DAG (edges only src < dst, at most one per pair) with
         negative costs allowed: exercises the BF potential seeding *)
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Rng.bernoulli rng 0.5 then
            edges := (u, v, 1 + Rng.int rng 3, Rng.uniform_in rng (-5.0) 10.0) :: !edges
        done
      done;
      let net = Mcmf.create n in
      List.iter (fun (u, v, c, w) -> ignore (Mcmf.add_edge net ~src:u ~dst:v ~cap:c ~cost:w)) !edges;
      let r = Mcmf.solve net ~source:0 ~sink:(n - 1) in
      let ref_flow, ref_cost = reference_mcmf n ~source:0 ~sink:(n - 1) !edges in
      (* a second solve on the now-saturated residual must find nothing and,
         in particular, not crash or mis-augment on negative residual arcs *)
      let r2 = Mcmf.solve net ~source:0 ~sink:(n - 1) in
      r.Mcmf.flow = ref_flow
      && Helpers.float_eq ~eps:1e-6 ref_cost r.Mcmf.cost
      && r2.Mcmf.flow = 0
      && Helpers.float_eq ~eps:1e-9 0.0 r2.Mcmf.cost)

(* ----- Max_dcs ----- *)

let solution_weight (sol : Max_dcs.solution) = sol.Max_dcs.weight

let test_dcs_simple_matching () =
  (* 2 users, 2 items, degree bounds 1: a classic assignment *)
  let inst =
    {
      Max_dcs.left = 2;
      right = 2;
      left_bound = [| 1; 1 |];
      right_bound = [| 1; 1 |];
      edges = [| (0, 0, 3.0); (0, 1, 5.0); (1, 0, 4.0); (1, 1, 1.0) |];
    }
  in
  let sol = Max_dcs.solve inst in
  (* best: (0,1)=5 + (1,0)=4 = 9; greedy would also find it here *)
  Helpers.check_float "optimal weight" 9.0 (solution_weight sol);
  Alcotest.(check int) "two edges" 2 (Array.length sol.Max_dcs.chosen)

let test_dcs_greedy_suboptimal () =
  (* instance where weight-greedy is strictly suboptimal:
     greedy takes (0,0)=10 then cannot take (1,0); ends with 10 + 0.
     optimum: (0,1)=9 + (1,0)=9 = 18. *)
  let inst =
    {
      Max_dcs.left = 2;
      right = 2;
      left_bound = [| 1; 1 |];
      right_bound = [| 1; 1 |];
      edges = [| (0, 0, 10.0); (0, 1, 9.0); (1, 0, 9.0) |];
    }
  in
  let greedy = Max_dcs.greedy_lower_bound inst in
  let exact = Max_dcs.solve inst in
  Helpers.check_float "greedy weight" 10.0 greedy.Max_dcs.weight;
  Helpers.check_float "exact weight" 18.0 exact.Max_dcs.weight

let test_dcs_degree_bounds_respected () =
  let inst =
    {
      Max_dcs.left = 1;
      right = 3;
      left_bound = [| 2 |];
      right_bound = [| 1; 1; 1 |];
      edges = [| (0, 0, 1.0); (0, 1, 2.0); (0, 2, 3.0) |];
    }
  in
  let sol = Max_dcs.solve inst in
  (* user degree bound 2: picks the two heaviest *)
  Helpers.check_float "weight" 5.0 sol.Max_dcs.weight;
  Alcotest.(check int) "edges" 2 (Array.length sol.Max_dcs.chosen)

let test_dcs_negative_weights_dropped () =
  let inst =
    {
      Max_dcs.left = 1;
      right = 2;
      left_bound = [| 2 |];
      right_bound = [| 1; 1 |];
      edges = [| (0, 0, -5.0); (0, 1, 2.0) |];
    }
  in
  let sol = Max_dcs.solve inst in
  Helpers.check_float "weight" 2.0 sol.Max_dcs.weight;
  Alcotest.(check int) "only positive edge" 1 (Array.length sol.Max_dcs.chosen)

let test_dcs_validation () =
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Max_dcs: edge endpoint out of range")
    (fun () ->
      ignore
        (Max_dcs.solve
           {
             Max_dcs.left = 1;
             right = 1;
             left_bound = [| 1 |];
             right_bound = [| 1 |];
             edges = [| (0, 5, 1.0) |];
           }))

(* brute-force reference: enumerate all edge subsets on tiny instances *)
let brute_force_dcs (inst : Max_dcs.instance) =
  let n = Array.length inst.Max_dcs.edges in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let ldeg = Array.make inst.Max_dcs.left 0 in
    let rdeg = Array.make inst.Max_dcs.right 0 in
    let w = ref 0.0 in
    let ok = ref true in
    for e = 0 to n - 1 do
      if mask land (1 lsl e) <> 0 then begin
        let u, v, we = inst.Max_dcs.edges.(e) in
        ldeg.(u) <- ldeg.(u) + 1;
        rdeg.(v) <- rdeg.(v) + 1;
        if ldeg.(u) > inst.Max_dcs.left_bound.(u) || rdeg.(v) > inst.Max_dcs.right_bound.(v) then
          ok := false;
        w := !w +. we
      end
    done;
    if !ok && !w > !best then best := !w
  done;
  !best

let prop_dcs_optimality =
  QCheck2.Test.make ~name:"Max-DCS matches brute force" ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let left = 1 + Rng.int rng 3 and right = 1 + Rng.int rng 3 in
      let edges = ref [] in
      for u = 0 to left - 1 do
        for v = 0 to right - 1 do
          if Rng.bernoulli rng 0.7 then
            edges := (u, v, Rng.uniform_in rng (-2.0) 10.0) :: !edges
        done
      done;
      let inst =
        {
          Max_dcs.left;
          right;
          left_bound = Array.init left (fun _ -> 1 + Rng.int rng 2);
          right_bound = Array.init right (fun _ -> 1 + Rng.int rng 2);
          edges = Array.of_list !edges;
        }
      in
      let sol = Max_dcs.solve inst in
      let greedy = Max_dcs.greedy_lower_bound inst in
      let opt = brute_force_dcs inst in
      Helpers.float_eq ~eps:1e-6 opt sol.Max_dcs.weight
      && greedy.Max_dcs.weight <= sol.Max_dcs.weight +. 1e-9)

let () =
  Alcotest.run "flow"
    [
      ( "mcmf",
        [
          Alcotest.test_case "single path" `Quick test_mcmf_single_path;
          Alcotest.test_case "prefers cheap path" `Quick test_mcmf_prefers_cheap_path;
          Alcotest.test_case "negative costs" `Quick test_mcmf_negative_costs;
          Alcotest.test_case "stop when unprofitable" `Quick test_mcmf_stop_when_unprofitable;
          Alcotest.test_case "disconnected" `Quick test_mcmf_disconnected;
          Alcotest.test_case "re-solve after augmentation" `Quick
            test_mcmf_resolve_after_augmentation;
          QCheck_alcotest.to_alcotest prop_mcmf_matches_reference;
        ] );
      ( "max_dcs",
        [
          Alcotest.test_case "simple matching" `Quick test_dcs_simple_matching;
          Alcotest.test_case "greedy suboptimal" `Quick test_dcs_greedy_suboptimal;
          Alcotest.test_case "degree bounds" `Quick test_dcs_degree_bounds_respected;
          Alcotest.test_case "negative weights dropped" `Quick test_dcs_negative_weights_dropped;
          Alcotest.test_case "validation" `Quick test_dcs_validation;
          QCheck_alcotest.to_alcotest prop_dcs_optimality;
        ] );
    ]
