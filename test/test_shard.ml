(* User-sharded planning: Instance.shard views, split policies,
   Shard_greedy's proof obligations (validity at every shard count,
   bit-identity at shards=1, jobs- and determinism-invariance), and the
   Budget split/absorb arithmetic the shard fan-out relies on. *)

module Rng = Revmax_prelude.Rng
module Budget = Revmax_prelude.Budget
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Shard_greedy = Revmax.Shard_greedy
open Helpers

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let sorted s = List.sort Triple.compare (Strategy.to_list s)

(* a random instance with capacities tight enough that water-filling
   budgets genuinely overlap and reconciliation has work to do *)
let contended_instance ?(max_users = 8) rng =
  let inst = random_instance ~max_users ~max_items:4 ~max_horizon:3 rng in
  inst

(* ----- Instance.shard: views and budgets ----- *)

let test_shard_partitions_users () =
  for seed = 0 to 39 do
    let rng = Rng.create seed in
    let inst = random_instance ~max_users:9 rng in
    let n = Instance.num_users inst in
    List.iter
      (fun shards ->
        let views = Instance.shard ~shards inst in
        Alcotest.(check int) "one view per shard" shards (Array.length views);
        (* contiguous, disjoint, covering [0, n) in order *)
        let expected_lo = ref 0 in
        Array.iter
          (fun v ->
            let lo, hi = Instance.user_range v in
            if lo <> !expected_lo then
              Alcotest.failf "seed %d shards %d: range starts at %d, expected %d" seed shards lo
                !expected_lo;
            if hi < lo then Alcotest.failf "seed %d: empty-negative range" seed;
            expected_lo := hi)
          views;
        Alcotest.(check int) "ranges cover all users" n !expected_lo)
      [ 1; 2; 3; 8 ]
  done

let test_shard_water_filling_budgets () =
  let rng = Rng.create 5 in
  let inst = random_instance ~max_users:9 rng in
  let views = Instance.shard ~policy:`Water_filling ~shards:3 inst in
  Array.iter
    (fun v ->
      let lo, hi = Instance.user_range v in
      for i = 0 to Instance.num_items inst - 1 do
        Alcotest.(check int)
          (Printf.sprintf "item %d budget = min(q_i, shard users)" i)
          (min (Instance.capacity inst i) (hi - lo))
          (Instance.capacity v i)
      done)
    views

let test_shard_proportional_budgets_sum () =
  for seed = 0 to 39 do
    let rng = Rng.create seed in
    let inst = random_instance ~max_users:9 rng in
    List.iter
      (fun shards ->
        let views = Instance.shard ~policy:`Proportional ~shards inst in
        for i = 0 to Instance.num_items inst - 1 do
          let total = Array.fold_left (fun acc v -> acc + Instance.capacity v i) 0 views in
          if total <> Instance.capacity inst i then
            Alcotest.failf "seed %d shards %d item %d: budgets sum to %d, q_i = %d" seed shards i
              total (Instance.capacity inst i)
        done)
      [ 1; 2; 3; 8 ]
  done

let test_shard_views_are_zero_copy_slices () =
  let rng = Rng.create 11 in
  let inst = random_instance ~max_users:9 rng in
  let views = Instance.shard ~shards:3 inst in
  (* a view enumerates exactly the global candidate triples of its users,
     with global user ids (so shard strategies merge without renaming) *)
  let all = candidate_triples inst in
  Array.iter
    (fun v ->
      let lo, hi = Instance.user_range v in
      let expected = List.filter (fun (z : Triple.t) -> z.u >= lo && z.u < hi) all in
      let got = candidate_triples v in
      if got <> expected then
        Alcotest.failf "view [%d,%d): triples differ from the global slice" lo hi;
      Alcotest.(check int) "num_candidate_triples matches" (List.length expected)
        (Instance.num_candidate_triples v))
    views

let test_shard_rejects_bad_arguments () =
  let inst =
    Instance.create ~num_users:2 ~num_items:1 ~horizon:1 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 2 |] ~saturation:[| 0.5 |]
      ~price:[| [| 1.0 |] |]
      ~adoption:[ (0, 0, [| 0.5 |]); (1, 0, [| 0.5 |]) ]
      ()
  in
  Alcotest.check_raises "shards = 0" (Invalid_argument "Instance.shard: need at least one shard")
    (fun () -> ignore (Instance.shard ~shards:0 inst));
  let view = (Instance.shard ~shards:2 inst).(0) in
  Alcotest.check_raises "re-sharding a view"
    (Invalid_argument "Instance.shard: cannot re-shard a shard view") (fun () ->
      ignore (Instance.shard ~shards:1 view))

(* ----- proportional_shares: largest-remainder arithmetic ----- *)

let test_proportional_shares_frozen_vectors () =
  let check name expected ~capacity ~user_counts ~num_users =
    Alcotest.(check (list int))
      name expected
      (Array.to_list (Instance.proportional_shares ~capacity ~user_counts ~num_users))
  in
  (* floors [2;2;1;1] sum to 6; the single leftover goes to the largest
     remainder (shard 2, remainder 4, beating shard 3 on the index tie) *)
  check "leftover to largest remainder" [ 2; 2; 2; 1 ] ~capacity:7
    ~user_counts:[| 3; 3; 2; 2 |] ~num_users:10;
  (* q_i < shards: all floors are 0 and the one unit lands on the largest
     remainder — shard 0 here (remainder 3 ties shard 1, lower index wins) *)
  check "capacity smaller than shard count" [ 1; 0; 0; 0 ] ~capacity:1
    ~user_counts:[| 3; 3; 2; 2 |] ~num_users:10;
  (* all remainders tie (every shard has remainder 4): leftover walks the
     shard indices in ascending order *)
  check "all remainders tie" [ 2; 2; 1; 1 ] ~capacity:6 ~user_counts:[| 2; 2; 2; 2 |]
    ~num_users:8;
  (* num_users = 0 degenerates to an even split, remainder to the lower
     indices — the pre-fix code handed every shard the full capacity *)
  check "zero users still sums to capacity" [ 2; 2; 1 ] ~capacity:5 ~user_counts:[| 0; 0; 0 |]
    ~num_users:0;
  check "zero users, zero capacity" [ 0; 0 ] ~capacity:0 ~user_counts:[| 0; 0 |] ~num_users:0;
  (* exact division: no leftover, pure floors *)
  check "exact division" [ 4; 2; 2 ] ~capacity:8 ~user_counts:[| 4; 2; 2 |] ~num_users:8

let shares_gen =
  QCheck2.Gen.(
    let* shards = int_range 1 8 in
    let* user_counts = array_size (return shards) (int_range 0 50) in
    let* capacity = int_range 0 200 in
    return (capacity, user_counts))

let prop_proportional_shares_sum_exactly =
  QCheck2.Test.make ~name:"proportional shares sum exactly to capacity" ~count:500 shares_gen
    (fun (capacity, user_counts) ->
      let num_users = Array.fold_left ( + ) 0 user_counts in
      let shares = Instance.proportional_shares ~capacity ~user_counts ~num_users in
      Array.length shares = Array.length user_counts
      && Array.for_all (fun s -> s >= 0) shares
      && Array.fold_left ( + ) 0 shares = capacity)

let prop_proportional_shares_deterministic =
  QCheck2.Test.make ~name:"proportional shares are deterministic (stable tie order)" ~count:500
    shares_gen (fun (capacity, user_counts) ->
      let num_users = Array.fold_left ( + ) 0 user_counts in
      let a = Instance.proportional_shares ~capacity ~user_counts ~num_users in
      let b = Instance.proportional_shares ~capacity ~user_counts ~num_users in
      a = b)

let prop_proportional_shares_off_floor_by_at_most_one =
  (* largest-remainder never moves a shard more than one unit off its floor *)
  QCheck2.Test.make ~name:"shares are floor or floor+1" ~count:500 shares_gen
    (fun (capacity, user_counts) ->
      let num_users = Array.fold_left ( + ) 0 user_counts in
      if num_users = 0 then QCheck2.assume_fail ()
      else
        let shares = Instance.proportional_shares ~capacity ~user_counts ~num_users in
        Array.for_all2
          (fun s n_s ->
            let floor = capacity * n_s / num_users in
            s = floor || s = floor + 1)
          shares user_counts)

let test_shard_zero_user_instance_budgets_sum () =
  (* end-to-end: a zero-user instance sharded proportionally must still
     carry budgets that sum to q_i across the views *)
  let inst =
    Instance.create ~num_users:0 ~num_items:2 ~horizon:1 ~display_limit:1 ~class_of:[| 0; 1 |]
      ~capacity:[| 5; 3 |] ~saturation:[| 0.5; 0.5 |]
      ~price:[| [| 1.0 |]; [| 1.0 |] |]
      ~adoption:[] ()
  in
  let views = Instance.shard ~policy:`Proportional ~shards:4 inst in
  for i = 0 to 1 do
    let total = Array.fold_left (fun acc v -> acc + Instance.capacity v i) 0 views in
    Alcotest.(check int) (Printf.sprintf "item %d budgets sum to q_i" i)
      (Instance.capacity inst i) total
  done

(* ----- Budget.split / absorb ----- *)

let test_budget_split_shares () =
  let b = Budget.create ~max_evaluations:10 () in
  let parts = Budget.split b 3 in
  Alcotest.(check int) "three parts" 3 (Array.length parts);
  (* 10 = 4 + 3 + 3, earlier parts taking the remainder: probe each part's
     cap by spending up to it *)
  let cap p =
    let n = ref 0 in
    while not (Budget.exhausted p) && !n < 100 do
      Budget.spend p 1;
      incr n
    done;
    !n
  in
  Alcotest.(check (list int)) "shares" [ 4; 3; 3 ] (Array.to_list (Array.map cap parts));
  (* the parts' work flows back on absorb: 10 units spent means the parent
     is exhausted too *)
  Budget.absorb b parts;
  Alcotest.(check int) "parent sees all charges" 10 (Budget.evaluations b);
  Alcotest.(check bool) "parent exhausted" true (Budget.exhausted b)

let test_budget_split_accounts_prior_spend () =
  let b = Budget.create ~max_evaluations:10 () in
  Budget.spend b 4;
  let parts = Budget.split b 2 in
  (* only the remaining 6 units are divided: 3 + 3 *)
  Budget.spend parts.(0) 3;
  Budget.spend parts.(1) 3;
  Alcotest.(check bool) "part 0 exhausted at its share" true (Budget.exhausted parts.(0));
  Budget.absorb b parts;
  Alcotest.(check int) "parent total" 10 (Budget.evaluations b)

let budget_part_cap p =
  (* probe a part's evaluation cap by spending until exhaustion *)
  let n = ref 0 in
  while not (Budget.exhausted p) && !n < 10_000 do
    Budget.spend p 1;
    incr n
  done;
  !n

let test_budget_split_exact_sum_sweep () =
  (* audit pin: for every (cap, n) the shares sum exactly to the cap, the
     remainder lands on the earlier parts, and no share is zero once
     cap >= n *)
  List.iter
    (fun cap ->
      List.iter
        (fun n ->
          let b = Budget.create ~max_evaluations:cap () in
          let caps = Array.map budget_part_cap (Budget.split b n) in
          let total = Array.fold_left ( + ) 0 caps in
          if total <> cap then
            Alcotest.failf "cap=%d n=%d: shares sum to %d" cap n total;
          (* deterministic remainder: earlier parts are never smaller *)
          for idx = 1 to n - 1 do
            if caps.(idx) > caps.(idx - 1) then
              Alcotest.failf "cap=%d n=%d: share %d exceeds share %d" cap n idx (idx - 1)
          done;
          if cap >= n && Array.exists (fun c -> c = 0) caps then
            Alcotest.failf "cap=%d n=%d: zero share despite cap >= n" cap n)
        [ 1; 2; 3; 4; 7; 8 ])
    [ 1; 2; 5; 7; 8; 16; 100 ]

let test_budget_absorb_roundtrip_identity () =
  (* absorb (split t n) = t: splitting and absorbing untouched parts is a
     no-op on the parent's accounting, with or without prior spend *)
  List.iter
    (fun prior ->
      let b = Budget.create ~max_evaluations:20 () in
      Budget.spend b prior;
      let parts = Budget.split b 4 in
      Budget.absorb b parts;
      Alcotest.(check int)
        (Printf.sprintf "prior=%d: absorb of untouched parts is a no-op" prior)
        prior (Budget.evaluations b);
      Alcotest.(check bool) "exhaustion unchanged" (prior >= 20) (Budget.exhausted b))
    [ 0; 5; 20 ]

let test_budget_split_unlimited () =
  let b = Budget.create () in
  let parts = Budget.split b 4 in
  Array.iter
    (fun p ->
      Budget.spend p 1000;
      Alcotest.(check bool) "never exhausted" false (Budget.exhausted p))
    parts

(* ----- Shard_greedy: proof obligations ----- *)

let prop_sharded_always_valid =
  QCheck2.Test.make ~name:"sharded greedy is valid at shards in {1,2,4,8}" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = contended_instance rng in
      List.for_all
        (fun shards ->
          let s, _ = Shard_greedy.solve ~shards inst in
          Strategy.is_valid s)
        [ 1; 2; 4; 8 ])

let prop_sharded_respects_capacities =
  QCheck2.Test.make ~name:"sharded greedy respects every q_i" ~count:60 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = contended_instance rng in
      List.for_all
        (fun shards ->
          let s, _ = Shard_greedy.solve ~shards inst in
          let by_item = Hashtbl.create 16 in
          List.iter
            (fun (z : Triple.t) ->
              let users =
                match Hashtbl.find_opt by_item z.i with
                | Some set -> set
                | None ->
                    let set = Hashtbl.create 4 in
                    Hashtbl.replace by_item z.i set;
                    set
              in
              Hashtbl.replace users z.u ())
            (Strategy.to_list s);
          Hashtbl.fold
            (fun i users ok -> ok && Hashtbl.length users <= Instance.capacity inst i)
            by_item true)
        [ 2; 4; 8 ])

let prop_one_shard_is_plain_greedy =
  QCheck2.Test.make ~name:"shards=1 equals Greedy.run triple for triple" ~count:100 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = contended_instance rng in
      let s_plain, _ = Greedy.run inst in
      List.for_all
        (fun policy ->
          let s_sh, st = Shard_greedy.solve ~policy ~shards:1 inst in
          sorted s_sh = sorted s_plain
          && st.Shard_greedy.reconciliation_rounds = 0
          && st.Shard_greedy.released_pairs = 0)
        [ `Water_filling; `Proportional ])

(* the same single-shard identity on the constraint-variant families: a
   slate or a global quantity budget must not open a gap between the
   sharded planner's shards=1 path and plain greedy *)
let prop_one_shard_is_plain_greedy_on_variants =
  QCheck2.Test.make ~name:"shards=1 equals Greedy.run on slate and budgeted instances" ~count:60
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      List.for_all
        (fun inst ->
          let s_plain, _ = Greedy.run inst in
          List.for_all
            (fun policy ->
              let s_sh, _ = Shard_greedy.solve ~policy ~shards:1 inst in
              sorted s_sh = sorted s_plain)
            [ `Water_filling; `Proportional ])
        [
          random_slate_instance ~max_users:8 ~max_items:4 ~max_horizon:3 rng;
          random_budgeted_instance ~max_users:8 ~max_items:4 ~max_horizon:3 rng;
        ])

let prop_proportional_never_reconciles =
  QCheck2.Test.make ~name:"proportional split never needs reconciliation" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = contended_instance rng in
      List.for_all
        (fun shards ->
          let s, st = Shard_greedy.solve ~policy:`Proportional ~shards inst in
          Strategy.is_valid s && st.Shard_greedy.reconciliation_rounds = 0)
        [ 2; 4 ])

let test_sharded_deterministic_and_jobs_invariant () =
  for seed = 0 to 29 do
    let rng = Rng.create seed in
    let inst = contended_instance rng in
    List.iter
      (fun shards ->
        let reference, st1 = Shard_greedy.solve ~shards ~jobs:1 inst in
        List.iter
          (fun jobs ->
            let s, st = Shard_greedy.solve ~shards ~jobs inst in
            if sorted s <> sorted reference then
              Alcotest.failf "seed %d shards %d: jobs=%d selected a different strategy" seed
                shards jobs;
            if st.Shard_greedy.reconciliation_rounds <> st1.Shard_greedy.reconciliation_rounds
            then Alcotest.failf "seed %d shards %d: round count depends on jobs" seed shards)
          [ 2; 4 ])
      [ 2; 4 ]
  done

let test_sharded_reconciliation_terminates_in_one_round () =
  (* the fixed-point argument of Shard_greedy: re-planning checks the true
     global capacities, so at most one release round ever runs *)
  for seed = 0 to 59 do
    let rng = Rng.create seed in
    let inst = contended_instance rng in
    List.iter
      (fun shards ->
        let _, st = Shard_greedy.solve ~shards inst in
        if st.Shard_greedy.reconciliation_rounds > 1 then
          Alcotest.failf "seed %d shards %d: %d reconciliation rounds" seed shards
            st.Shard_greedy.reconciliation_rounds)
      [ 2; 4; 8 ]
  done

let test_sharded_stats_accounting () =
  let rng = Rng.create 3 in
  let inst = contended_instance rng in
  let s, st = Shard_greedy.solve ~shards:4 inst in
  Alcotest.(check int) "shards recorded" 4 st.Shard_greedy.shards;
  Alcotest.(check int) "per-shard array length" 4 (Array.length st.Shard_greedy.per_shard_selected);
  Alcotest.(check int) "selected = strategy size" (Strategy.size s) st.Shard_greedy.selected;
  let shard_total = Array.fold_left ( + ) 0 st.Shard_greedy.per_shard_selected in
  (* released pairs remove at least one triple each; re-planning adds back *)
  if
    Strategy.size s > shard_total + st.Shard_greedy.replanned
    || st.Shard_greedy.marginal_evaluations <= 0
  then Alcotest.failf "inconsistent accounting"

let prop_budgeted_sharded_still_valid =
  QCheck2.Test.make ~name:"budget-truncated sharded run is still valid" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = contended_instance rng in
      let budget = Budget.create ~max_evaluations:(1 + (seed mod 40)) () in
      let s, _ = Shard_greedy.solve ~shards:4 ~budget inst in
      Strategy.is_valid s)

let test_default_shards_knob () =
  (* set_default_shards wins over the environment and clamps at 1 *)
  Shard_greedy.set_default_shards 3;
  Alcotest.(check int) "override" 3 (Shard_greedy.default_shards ());
  Shard_greedy.set_default_shards 0;
  Alcotest.(check int) "clamped" 1 (Shard_greedy.default_shards ());
  Shard_greedy.set_default_shards 1

let () =
  Alcotest.run "shard"
    [
      ( "instance-views",
        [
          Alcotest.test_case "shard partitions users contiguously" `Quick
            test_shard_partitions_users;
          Alcotest.test_case "water-filling budgets are min(q_i, users)" `Quick
            test_shard_water_filling_budgets;
          Alcotest.test_case "proportional budgets sum exactly to q_i" `Quick
            test_shard_proportional_budgets_sum;
          Alcotest.test_case "views slice the global candidate set" `Quick
            test_shard_views_are_zero_copy_slices;
          Alcotest.test_case "invalid arguments rejected" `Quick test_shard_rejects_bad_arguments;
        ] );
      ( "proportional-shares",
        [
          Alcotest.test_case "frozen regression vectors" `Quick
            test_proportional_shares_frozen_vectors;
          QCheck_alcotest.to_alcotest prop_proportional_shares_sum_exactly;
          QCheck_alcotest.to_alcotest prop_proportional_shares_deterministic;
          QCheck_alcotest.to_alcotest prop_proportional_shares_off_floor_by_at_most_one;
          Alcotest.test_case "zero-user instance budgets still sum" `Quick
            test_shard_zero_user_instance_budgets_sum;
        ] );
      ( "budget-split",
        [
          Alcotest.test_case "split shares and absorb round-trip" `Quick test_budget_split_shares;
          Alcotest.test_case "split divides only the remaining allowance" `Quick
            test_budget_split_accounts_prior_spend;
          Alcotest.test_case "exact-sum sweep with deterministic remainder" `Quick
            test_budget_split_exact_sum_sweep;
          Alcotest.test_case "absorb of an untouched split is the identity" `Quick
            test_budget_absorb_roundtrip_identity;
          Alcotest.test_case "splitting an unlimited budget" `Quick test_budget_split_unlimited;
        ] );
      ( "shard-greedy",
        [
          QCheck_alcotest.to_alcotest prop_sharded_always_valid;
          QCheck_alcotest.to_alcotest prop_sharded_respects_capacities;
          QCheck_alcotest.to_alcotest prop_one_shard_is_plain_greedy;
          QCheck_alcotest.to_alcotest prop_one_shard_is_plain_greedy_on_variants;
          QCheck_alcotest.to_alcotest prop_proportional_never_reconciles;
          Alcotest.test_case "deterministic and jobs-invariant" `Quick
            test_sharded_deterministic_and_jobs_invariant;
          Alcotest.test_case "reconciliation fixed point in <= 1 round" `Quick
            test_sharded_reconciliation_terminates_in_one_round;
          Alcotest.test_case "statistics accounting" `Quick test_sharded_stats_accounting;
          QCheck_alcotest.to_alcotest prop_budgeted_sharded_still_valid;
          Alcotest.test_case "default-shards knob" `Quick test_default_shards_knob;
        ] );
    ]
