(* Metamorphic tests for the observability layer (DESIGN.md §10):

   (a) the disabled path is inert — algorithm outputs and checkpoint
       records are byte-identical whether or not the metrics machinery
       has ever been touched;
   (b) with metrics enabled, the deterministic counters (oracle calls,
       heap operations, MC samples, chain edits) are jobs-invariant —
       the same totals at jobs=1 and jobs=4. Scheduling-dependent
       instruments — the pool.* and submodular.* families — are
       exercised but excluded, as documented at their registration sites;
   (c) at REVMAX_LOG=quiet a full Runner.run_suite emits zero bytes
       outside the designated content sink. *)

module Metrics = Revmax_prelude.Metrics
module Log = Revmax_prelude.Metrics.Log
module Rng = Revmax_prelude.Rng
module Greedy = Revmax.Greedy
module Revenue = Revmax.Revenue
module Runner = Revmax_experiments.Runner
module Checkpoint = Revmax_experiments.Checkpoint

(* every test leaves the process-global registry the way it found it:
   disabled, zeroed, default level and sink *)
let pristine f =
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Log.set_level Log.Info;
      Log.set_out_sink None)
    f

let with_temp_dir f =
  let dir = Filename.temp_file "revmax-metrics" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* run [f] with an fd redirected to a file; return f's value and the bytes
   written there. fd-level, so it also catches writes bypassing channels. *)
let with_fd_captured fd f =
  let path = Filename.temp_file "revmax-fd" ".txt" in
  flush stdout;
  flush stderr;
  let saved = Unix.dup fd in
  let file = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 file fd;
  Unix.close file;
  let restore () =
    flush stdout;
    flush stderr;
    Unix.dup2 saved fd;
    Unix.close saved
  in
  let result = try Ok (Fun.protect ~finally:restore f) with e -> Error e in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  match result with Ok v -> (v, contents) | Error e -> raise e

(* ----- registry basics ----- *)

let test_counter_gated_by_flag () =
  pristine (fun () ->
      let c = Metrics.counter "test.gated" in
      Metrics.incr c;
      Metrics.incr c ~by:5;
      Alcotest.(check bool)
        "disabled increments invisible"
        true
        (List.assoc "test.gated" (Metrics.snapshot ()) = Metrics.Counter 0);
      Metrics.set_enabled true;
      Metrics.incr c;
      Metrics.incr c ~by:2;
      Alcotest.(check bool)
        "enabled increments recorded"
        true
        (List.assoc "test.gated" (Metrics.snapshot ()) = Metrics.Counter 3))

let test_snapshot_sorted_and_diff_drops_idle () =
  pristine (fun () ->
      Metrics.set_enabled true;
      let cb = Metrics.counter "test.b" and ca = Metrics.counter "test.a" in
      Metrics.incr ca;
      let names = List.map fst (Metrics.snapshot ()) in
      Alcotest.(check (list string)) "sorted by name" (List.sort compare names) names;
      let before = Metrics.snapshot () in
      Metrics.incr cb ~by:4;
      let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Alcotest.(check bool) "active counter kept" true (List.mem_assoc "test.b" d);
      Alcotest.(check bool) "idle counter dropped" false (List.mem_assoc "test.a" d);
      Alcotest.(check bool) "delta not cumulative" true
        (List.assoc "test.b" d = Metrics.Counter 4))

let test_exposition_formats () =
  pristine (fun () ->
      Metrics.set_enabled true;
      Metrics.incr (Metrics.counter "test.fmt-count") ~by:7;
      Metrics.observe (Metrics.timer "test.fmt_timer") 0.5;
      let snap =
        List.filter
          (fun (n, _) -> String.length n >= 8 && String.sub n 0 8 = "test.fmt")
          (Metrics.snapshot ())
      in
      let prom = Metrics.to_prometheus snap in
      (* sanitized names, revmax_ prefix, summary expansion *)
      Alcotest.(check bool) "counter line" true (contains prom "revmax_test_fmt_count 7");
      Alcotest.(check bool) "summary count line" true (contains prom "revmax_test_fmt_timer_count 1");
      Alcotest.(check bool) "summary sum line" true (contains prom "revmax_test_fmt_timer_sum 0.5");
      let json = Metrics.to_json snap in
      Alcotest.(check bool) "json counter" true (contains json "\"test.fmt-count\":7");
      Alcotest.(check bool) "json summary" true (contains json "\"count\":1"))

(* ----- (a) disabled path is inert ----- *)

(* same algorithm, same instance: result and statistics must be identical
   whether the registry records or not *)
let prop_greedy_unchanged_by_metrics =
  QCheck2.Test.make ~name:"greedy output invariant under metrics flag" ~count:30
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      pristine (fun () ->
          let run () =
            let inst = Helpers.random_instance (Rng.create seed) in
            let s, stats = Greedy.run inst in
            (Revenue.total s, stats)
          in
          Metrics.set_enabled false;
          let r_off, st_off = run () in
          Metrics.set_enabled true;
          let r_on, st_on = run () in
          Helpers.float_eq r_off r_on && st_off = st_on))

let test_checkpoint_records_identical_when_disabled () =
  pristine (fun () ->
      let meta = [ ("scale", "unit"); ("seed", "7") ] in
      let cell () = print_string "payload\n" in
      let record_bytes ~enabled dir =
        let cp = Checkpoint.create ~dir ~resume:false in
        Metrics.set_enabled enabled;
        if enabled then ignore (Greedy.run (Helpers.example4_instance ()));
        let _, _ =
          with_fd_captured Unix.stdout (fun () -> Checkpoint.run_cell (Some cp) ~id:"cell" ~meta cell)
        in
        (cp, In_channel.with_open_bin (Checkpoint.record_path cp "cell") In_channel.input_all)
      in
      with_temp_dir (fun dir1 ->
          with_temp_dir (fun dir2 ->
              with_temp_dir (fun dir3 ->
                  (* registry never enabled vs enabled-then-disabled: the
                     record must not change by a byte *)
                  let _, fresh = record_bytes ~enabled:false dir1 in
                  Metrics.set_enabled true;
                  ignore (Greedy.run (Helpers.example4_instance ()));
                  Metrics.set_enabled false;
                  let _, after_activity = record_bytes ~enabled:false dir2 in
                  Alcotest.(check string) "records byte-identical" fresh after_activity;
                  Alcotest.(check bool) "no metrics member" false (contains fresh "\"metrics\"");
                  (* enabled: same id/meta/output, plus a metrics profile *)
                  let cp3, enabled_bytes = record_bytes ~enabled:true dir3 in
                  (match Checkpoint.load_record cp3 ~id:"cell" with
                  | Some (Ok (meta', output)) ->
                      Alcotest.(check (list (pair string string)))
                        "meta unchanged" (List.sort compare meta) (List.sort compare meta');
                      Alcotest.(check string) "output unchanged" "payload\n" output
                  | _ -> Alcotest.fail "enabled record unreadable");
                  (match Checkpoint.load_metrics cp3 ~id:"cell" with
                  | Some json ->
                      Alcotest.(check bool) "profile is a JSON object" true
                        (String.length json >= 2 && json.[0] = '{')
                  | None -> Alcotest.fail "enabled record lacks metrics profile");
                  Alcotest.(check bool) "enabled record differs" true
                    (enabled_bytes <> fresh)))))

(* ----- (b) deterministic counters are jobs-invariant ----- *)

(* instruments whose totals legitimately depend on scheduling; everything
   else in the registry must agree across jobs values *)
let scheduling_dependent name =
  let has_prefix p = String.length name >= String.length p && String.sub name 0 (String.length p) = p in
  has_prefix "pool." || has_prefix "submodular."

let counters_only snap =
  List.filter_map
    (function
      | name, Metrics.Counter v when not (scheduling_dependent name) -> Some (name, v)
      | _ -> None)
    snap

let suite_counters ~jobs ~seed =
  Metrics.reset ();
  let inst = Helpers.random_instance ~max_users:4 ~max_items:4 ~max_horizon:3 (Rng.create seed) in
  let before = Metrics.snapshot () in
  let outcomes = Runner.run_suite ~jobs ~rlg_permutations:3 ~seed:11 inst in
  let counts = counters_only (Metrics.diff ~before ~after:(Metrics.snapshot ())) in
  ( List.map (function Runner.Completed r -> r.Runner.revenue | Runner.Failed _ -> -1.0) outcomes,
    counts )

let prop_counters_jobs_invariant =
  QCheck2.Test.make ~name:"deterministic counters jobs-invariant" ~count:10
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      pristine (fun () ->
          Metrics.set_enabled true;
          let rev1, c1 = suite_counters ~jobs:1 ~seed in
          let rev4, c4 = suite_counters ~jobs:4 ~seed in
          if not (List.for_all2 (fun a b -> Helpers.float_eq a b) rev1 rev4) then
            QCheck2.Test.fail_report "suite outcomes differ across jobs";
          if c1 <> c4 then begin
            let show cs = String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) cs) in
            QCheck2.Test.fail_reportf "counters differ\njobs=1: %s\njobs=4: %s" (show c1) (show c4)
          end;
          (* the suite actually ran: the runner counts its six algorithm
             cells even on degenerate instances where greedy never
             evaluates a marginal *)
          List.assoc_opt "runner.algorithms" c1 = Some 6))

(* ----- (c) quiet runs write zero bytes outside the sink ----- *)

let test_quiet_suite_silent () =
  pristine (fun () ->
      Log.set_level Log.Quiet;
      let sink = Buffer.create 256 in
      Log.set_out_sink (Some (Buffer.add_string sink));
      let inst = Helpers.random_instance (Rng.create 3) in
      let (outcomes, err_bytes), out_bytes =
        with_fd_captured Unix.stdout (fun () ->
            with_fd_captured Unix.stderr (fun () ->
                let outcomes = Runner.run_suite ~rlg_permutations:3 ~seed:5 inst in
                Runner.section "quiet-suite";
                Runner.report_failures outcomes;
                Revmax_prelude.Pool.quiesce ();
                outcomes))
      in
      Alcotest.(check int) "suite ran" 6 (List.length outcomes);
      Alcotest.(check string) "stdout silent" "" out_bytes;
      Alcotest.(check string) "stderr silent" "" err_bytes;
      Alcotest.(check bool) "content reached the sink" true
        (Buffer.contents sink = "\n=== quiet-suite ===\n"))

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter gated by flag" `Quick test_counter_gated_by_flag;
          Alcotest.test_case "snapshot sorted, diff drops idle" `Quick
            test_snapshot_sorted_and_diff_drops_idle;
          Alcotest.test_case "exposition formats" `Quick test_exposition_formats;
        ] );
      ( "disabled-path identity",
        [
          QCheck_alcotest.to_alcotest prop_greedy_unchanged_by_metrics;
          Alcotest.test_case "checkpoint records byte-identical" `Quick
            test_checkpoint_records_identical_when_disabled;
        ] );
      ( "jobs invariance",
        [ QCheck_alcotest.to_alcotest prop_counters_jobs_invariant ] );
      ( "quiet logging",
        [ Alcotest.test_case "run_suite writes only to the sink" `Quick test_quiet_suite_silent ] );
    ]
