module Bh = Revmax_pqueue.Binary_heap
module Tl = Revmax_pqueue.Two_level_heap

(* ----- Binary_heap unit tests ----- *)

let test_heap_basic () =
  let h = Bh.create () in
  Alcotest.(check bool) "empty" true (Bh.is_empty h);
  ignore (Bh.insert h ~key:1.0 "a");
  ignore (Bh.insert h ~key:3.0 "b");
  ignore (Bh.insert h ~key:2.0 "c");
  Alcotest.(check int) "size" 3 (Bh.size h);
  (match Bh.find_max h with
  | Some ("b", 3.0) -> ()
  | _ -> Alcotest.fail "wrong max");
  (match Bh.delete_max h with
  | Some ("b", 3.0) -> ()
  | _ -> Alcotest.fail "wrong delete_max");
  Alcotest.(check int) "size after delete" 2 (Bh.size h)

let test_heap_update_key () =
  let h = Bh.create () in
  let ha = Bh.insert h ~key:1.0 "a" in
  let _hb = Bh.insert h ~key:2.0 "b" in
  Bh.update_key h ha 5.0;
  (match Bh.find_max h with
  | Some ("a", 5.0) -> ()
  | _ -> Alcotest.fail "increase-key did not percolate");
  Bh.update_key h ha 0.5;
  match Bh.find_max h with
  | Some ("b", 2.0) -> ()
  | _ -> Alcotest.fail "decrease-key did not percolate"

let test_heap_remove () =
  let h = Bh.create () in
  let ha = Bh.insert h ~key:10.0 "a" in
  let _ = Bh.insert h ~key:5.0 "b" in
  Bh.remove h ha;
  Alcotest.(check bool) "handle gone" false (Bh.contains h ha);
  (match Bh.find_max h with
  | Some ("b", 5.0) -> ()
  | _ -> Alcotest.fail "wrong max after remove");
  Alcotest.check_raises "stale handle" (Invalid_argument "Binary_heap: stale or foreign handle")
    (fun () -> Bh.remove h ha)

let test_heap_of_list_sorted () =
  let items = List.init 100 (fun i -> (float_of_int ((i * 37) mod 100), i)) in
  let h = Bh.of_list items in
  let sorted = Bh.to_sorted_list h in
  let keys = List.map snd sorted in
  let expected = List.sort (fun a b -> compare b a) (List.map fst items) in
  Alcotest.(check (list (float 1e-9))) "descending keys" expected keys

let test_heap_second_key () =
  let h = Bh.create () in
  Alcotest.(check bool) "empty has no second" true (Bh.second_key h = None);
  ignore (Bh.insert h ~key:5.0 "a");
  Alcotest.(check bool) "singleton has no second" true (Bh.second_key h = None);
  ignore (Bh.insert h ~key:7.0 "b");
  Alcotest.(check (option (float 0.0))) "two elements" (Some 5.0) (Bh.second_key h);
  ignore (Bh.insert h ~key:6.0 "c");
  Alcotest.(check (option (float 0.0))) "root children" (Some 6.0) (Bh.second_key h)

(* second_key is exactly the second element of the heap's sorted drain,
   under random inserts with frequent duplicate keys *)
let prop_heap_second_key =
  QCheck2.Test.make ~name:"second_key = second of sorted drain" ~count:300
    QCheck2.Gen.(list (float_range 0.0 9.0))
    (fun keys ->
      let h = Bh.create () in
      List.iteri (fun i k -> ignore (Bh.insert h ~key:(Float.round k) i)) keys;
      let second = Bh.second_key h in
      match List.sort (fun a b -> compare b a) (List.map Float.round keys) with
      | _ :: k2 :: _ -> second = Some k2
      | _ -> second = None)

(* Model-based property test: the heap behaves like a sorted reference
   list under a random operation sequence. *)
let prop_heap_model =
  QCheck2.Test.make ~name:"heap matches sorted-list model" ~count:200
    QCheck2.Gen.(list (pair (float_range (-100.0) 100.0) small_int))
    (fun ops ->
      let h = Bh.create () in
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          if v mod 3 = 0 && !model <> [] then begin
            (* delete max in both *)
            (match Bh.delete_max h with
            | Some (_, key) ->
                let best = List.fold_left (fun acc (k', _) -> Float.max acc k') neg_infinity !model in
                if not (Helpers.float_eq key best) then failwith "max mismatch";
                (* remove one element with the max key from the model *)
                let removed = ref false in
                model :=
                  List.filter
                    (fun (k', _) ->
                      if (not !removed) && Helpers.float_eq k' best then begin
                        removed := true;
                        false
                      end
                      else true)
                    !model
            | None -> failwith "heap empty but model non-empty")
          end
          else begin
            ignore (Bh.insert h ~key:k v);
            model := (k, v) :: !model
          end)
        ops;
      Bh.size h = List.length !model)

(* Stronger model-based test: random interleavings of insert, update_key
   (increase AND decrease through live handles), remove and delete_max,
   with keys drawn from a 5-value set so duplicate priorities are the
   common case, checked against a sorted association-list reference.
   Elements carry unique ids; on a popped duplicate key any id holding
   that key is acceptable, but it must then leave the model too. *)
let prop_heap_model_handles =
  let open QCheck2 in
  Test.make ~name:"heap matches model under update_key/remove/pop (dup keys)" ~count:300
    Gen.(list (triple (int_bound 9) (int_bound 4) (int_bound 1000)))
    (fun ops ->
      let h = Bh.create () in
      (* model: (uid, key) for every live element; handles: uid -> handle *)
      let model = ref [] in
      let handles = Hashtbl.create 16 in
      let next_uid = ref 0 in
      let pick_live pick = List.nth !model (pick mod List.length !model) in
      let insert key =
        let uid = !next_uid in
        incr next_uid;
        Hashtbl.replace handles uid (Bh.insert h ~key uid);
        model := (uid, key) :: !model
      in
      List.iter
        (fun (op, key_idx, pick) ->
          let key = float_of_int key_idx in
          if !model = [] || op <= 4 then insert key
          else if op <= 6 then begin
            (* update_key: key_idx may be below or above the old key, so this
               exercises decrease-key and increase-key alike *)
            let uid, _ = pick_live pick in
            Bh.update_key h (Hashtbl.find handles uid) key;
            model := List.map (fun (u, k) -> if u = uid then (u, key) else (u, k)) !model
          end
          else if op = 7 then begin
            let uid, _ = pick_live pick in
            Bh.remove h (Hashtbl.find handles uid);
            Hashtbl.remove handles uid;
            model := List.filter (fun (u, _) -> u <> uid) !model
          end
          else begin
            match Bh.delete_max h with
            | None -> failwith "heap empty but model non-empty"
            | Some (uid, k) ->
                let best = List.fold_left (fun acc (_, k') -> Float.max acc k') neg_infinity !model in
                if not (Helpers.float_eq k best) then failwith "popped key is not the model max";
                (match List.assoc_opt uid !model with
                | Some k' when Helpers.float_eq k' k -> ()
                | _ -> failwith "popped element not in model at that key");
                Hashtbl.remove handles uid;
                model := List.filter (fun (u, _) -> u <> uid) !model
          end)
        ops;
      (* invariants after the op sequence *)
      if Bh.size h <> List.length !model then failwith "size mismatch";
      List.iter
        (fun (uid, k) ->
          let hd = Hashtbl.find handles uid in
          if not (Bh.contains h hd) then failwith "live handle reported absent";
          if not (Helpers.float_eq (Bh.key h hd) k) then failwith "handle key drifted from model")
        !model;
      (* drain: the popped key sequence is the model's keys in descending order *)
      let drained = List.map snd (Bh.to_sorted_list h) in
      let expected = List.sort (fun a b -> compare b a) (List.map snd !model) in
      List.length drained = List.length expected && List.for_all2 Helpers.float_eq drained expected)

(* ----- Two_level_heap tests ----- *)

let test_tl_global_max () =
  let h = Tl.create () in
  Tl.insert h ~pair:0 ~key:1.0 "p0a";
  Tl.insert h ~pair:0 ~key:4.0 "p0b";
  Tl.insert h ~pair:1 ~key:3.0 "p1a";
  (match Tl.find_max h with
  | Some (0, "p0b", 4.0) -> ()
  | _ -> Alcotest.fail "wrong global max");
  (match Tl.delete_max h with
  | Some (0, "p0b", 4.0) -> ()
  | _ -> Alcotest.fail "wrong delete_max");
  match Tl.find_max h with
  | Some (1, "p1a", 3.0) -> ()
  | _ -> Alcotest.fail "upper level not resynced"

let test_tl_drain_pair () =
  let h = Tl.create () in
  Tl.insert h ~pair:7 ~key:2.0 "x";
  ignore (Tl.delete_max h);
  Alcotest.(check int) "pair drained" 0 (Tl.pair_size h 7);
  Alcotest.(check bool) "empty" true (Tl.is_empty h)

let test_tl_refresh () =
  let h = Tl.create () in
  Tl.insert h ~pair:0 ~key:10.0 "a";
  Tl.insert h ~pair:0 ~key:9.0 "b";
  Tl.insert h ~pair:1 ~key:5.0 "c";
  (* rekey pair 0: demote "a", drop "b" *)
  Tl.refresh_pair h 0 ~f:(fun v _old -> if v = "b" then None else Some 1.0);
  Alcotest.(check int) "size after refresh" 2 (Tl.size h);
  (match Tl.find_max h with
  | Some (1, "c", 5.0) -> ()
  | _ -> Alcotest.fail "refresh did not update the upper level");
  (* rekey to empty removes the pair *)
  Tl.refresh_pair h 0 ~f:(fun _ _ -> None);
  Alcotest.(check int) "pair 0 dropped" 0 (Tl.pair_size h 0)

let test_tl_missing_pair_noops () =
  let h = Tl.create () in
  Tl.insert h ~pair:1 ~key:1.0 "a";
  Tl.refresh_pair h 99 ~f:(fun _ _ -> Some 5.0);
  Tl.drop_pair h 99;
  Alcotest.(check int) "untouched" 1 (Tl.size h);
  match Tl.find_max h with
  | Some (1, "a", 1.0) -> ()
  | _ -> Alcotest.fail "no-op refresh disturbed the heap"

let test_tl_drop_pair () =
  let h = Tl.create () in
  Tl.insert h ~pair:3 ~key:1.0 "a";
  Tl.insert h ~pair:3 ~key:2.0 "b";
  Tl.insert h ~pair:4 ~key:1.5 "c";
  Tl.drop_pair h 3;
  Alcotest.(check int) "size" 1 (Tl.size h);
  match Tl.find_max h with
  | Some (4, "c", _) -> ()
  | _ -> Alcotest.fail "wrong survivor"

let test_tl_find_second_and_refresh_max () =
  let h = Tl.create () in
  Alcotest.(check bool) "empty has no second" true (Tl.find_second h = None);
  Tl.insert h ~pair:0 ~key:10.0 "a";
  Alcotest.(check bool) "singleton has no second" true (Tl.find_second h = None);
  (* runner-up inside the top pair *)
  Tl.insert h ~pair:0 ~key:8.0 "b";
  Alcotest.(check (option (float 0.0))) "within-pair second" (Some 8.0) (Tl.find_second h);
  (* runner-up in another pair overtakes it *)
  Tl.insert h ~pair:1 ~key:9.0 "c";
  Alcotest.(check (option (float 0.0))) "cross-pair second" (Some 9.0) (Tl.find_second h);
  (* refresh_max rekeys only the global root; the rest keeps its keys *)
  Tl.refresh_max h ~f:(fun v old ->
      Alcotest.(check string) "root element" "a" v;
      Alcotest.(check (float 0.0)) "root key" 10.0 old;
      Some 1.0);
  (match Tl.find_max h with
  | Some (1, "c", 9.0) -> ()
  | _ -> Alcotest.fail "refresh_max did not demote the root");
  Alcotest.(check int) "size unchanged" 3 (Tl.size h);
  (* None discards the root *)
  Tl.refresh_max h ~f:(fun _ _ -> None);
  Alcotest.(check int) "root discarded" 2 (Tl.size h);
  match Tl.find_max h with
  | Some (0, "b", 8.0) -> ()
  | _ -> Alcotest.fail "wrong max after discard"

(* find_second agrees with the second element of a flat sorted model, and
   refresh_max with the model's rekey-the-max, under duplicate-heavy keys *)
let prop_tl_find_second_model =
  let open QCheck2 in
  Test.make ~name:"find_second / refresh_max match flat model (dup keys)" ~count:300
    Gen.(list (triple (int_bound 4) (int_bound 4) (int_bound 1000)))
    (fun ops ->
      let h = Tl.create () in
      let model = ref [] in
      let uid = ref 0 in
      List.iter
        (fun (pair, key_idx, salt) ->
          let key = float_of_int key_idx in
          Tl.insert h ~pair ~key !uid;
          model := (!uid, key) :: !model;
          incr uid;
          (* compare the runner-up key against the model *)
          let sorted = List.sort (fun (_, a) (_, b) -> compare b a) !model in
          (match (Tl.find_second h, sorted) with
          | Some k2, _ :: (_, m2) :: _ ->
              if not (Helpers.float_eq k2 m2) then failwith "find_second mismatch"
          | None, _ :: _ :: _ -> failwith "find_second missing"
          | Some _, ([] | [ _ ]) -> failwith "find_second on <2 elements"
          | None, ([] | [ _ ]) -> ());
          (* occasionally rekey the max and re-check against the model *)
          if salt mod 3 = 0 then begin
            let new_key = float_of_int (salt mod 5) in
            Tl.refresh_max h ~f:(fun _ _ -> Some new_key);
            match sorted with
            | (max_uid, _) :: rest -> model := (max_uid, new_key) :: rest
            | [] -> failwith "refresh_max on empty heap changed nothing"
          end)
        ops;
      (* drain: keys must match the model's descending order *)
      let rec drain acc =
        match Tl.delete_max h with None -> List.rev acc | Some (_, _, k) -> drain (k :: acc)
      in
      let drained = drain [] in
      let expected = List.sort (fun a b -> compare b a) (List.map snd !model) in
      List.length drained = List.length expected
      && List.for_all2 Helpers.float_eq drained expected)

(* Property: popping a two-level heap yields the same key sequence as a
   single flat heap over the same (pair, key) inserts. *)
let prop_tl_matches_flat =
  QCheck2.Test.make ~name:"two-level pops = flat heap pops" ~count:200
    QCheck2.Gen.(list (pair (int_bound 5) (float_range 0.0 100.0)))
    (fun inserts ->
      let tl = Tl.create () in
      let flat = Bh.create () in
      List.iteri
        (fun idx (pair, key) ->
          Tl.insert tl ~pair ~key idx;
          ignore (Bh.insert flat ~key idx))
        inserts;
      let rec drain acc =
        match Tl.delete_max tl with
        | None -> List.rev acc
        | Some (_, _, k) -> drain (k :: acc)
      in
      let rec drain_flat acc =
        match Bh.delete_max flat with None -> List.rev acc | Some (_, k) -> drain_flat (k :: acc)
      in
      let a = drain [] and b = drain_flat [] in
      List.length a = List.length b && List.for_all2 Helpers.float_eq a b)

(* Model-based test for the two-level heap: random interleavings of
   insert, delete_max, refresh_pair (deterministic rekey-or-drop, applied
   identically to a flat association-list model) and drop_pair, with keys
   from a 5-value set so duplicate priorities are common. The upper/lower
   split is an implementation detail the model does not share, so
   agreement here pins the §5.1 structure to flat-heap semantics. *)
let prop_tl_model_refresh =
  let open QCheck2 in
  Test.make ~name:"two-level heap matches model under refresh_pair (dup keys)" ~count:300
    Gen.(list (triple (int_bound 9) (pair (int_bound 3) (int_bound 4)) (int_bound 1000)))
    (fun ops ->
      let h = Tl.create () in
      (* model: (pair, uid, key) for every live element *)
      let model = ref [] in
      let next_uid = ref 0 in
      List.iter
        (fun (op, (pair, key_idx), salt) ->
          let key = float_of_int key_idx in
          if !model = [] || op <= 4 then begin
            let uid = !next_uid in
            incr next_uid;
            Tl.insert h ~pair ~key uid;
            model := (pair, uid, key) :: !model
          end
          else if op <= 6 then begin
            (* deterministic rekey-or-drop, mirrored in the model *)
            let rekey uid old_key =
              if (uid + salt) mod 7 = 0 then None
              else Some (float_of_int ((uid + salt + int_of_float old_key) mod 5))
            in
            Tl.refresh_pair h pair ~f:rekey;
            model :=
              List.filter_map
                (fun (p, uid, k) ->
                  if p <> pair then Some (p, uid, k)
                  else Option.map (fun k' -> (p, uid, k')) (rekey uid k))
                !model
          end
          else if op = 7 then begin
            Tl.drop_pair h pair;
            model := List.filter (fun (p, _, _) -> p <> pair) !model
          end
          else begin
            match Tl.delete_max h with
            | None -> failwith "heap empty but model non-empty"
            | Some (p, uid, k) ->
                let best =
                  List.fold_left (fun acc (_, _, k') -> Float.max acc k') neg_infinity !model
                in
                if not (Helpers.float_eq k best) then failwith "popped key is not the model max";
                if not (List.exists (fun (p', u', k') -> p' = p && u' = uid && Helpers.float_eq k' k) !model)
                then failwith "popped element not in model";
                model := List.filter (fun (_, u', _) -> u' <> uid) !model
          end)
        ops;
      if Tl.size h <> List.length !model then failwith "size mismatch";
      List.iter
        (fun pair ->
          let expected = List.length (List.filter (fun (p, _, _) -> p = pair) !model) in
          if Tl.pair_size h pair <> expected then failwith "pair_size mismatch")
        [ 0; 1; 2; 3 ];
      (* drain: popped keys descend and match the model's sorted keys *)
      let rec drain acc = match Tl.delete_max h with None -> List.rev acc | Some (_, _, k) -> drain (k :: acc) in
      let drained = drain [] in
      let expected = List.sort (fun a b -> compare b a) (List.map (fun (_, _, k) -> k) !model) in
      List.length drained = List.length expected && List.for_all2 Helpers.float_eq drained expected)

let () =
  Alcotest.run "pqueue"
    [
      ( "binary_heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "update_key" `Quick test_heap_update_key;
          Alcotest.test_case "remove" `Quick test_heap_remove;
          Alcotest.test_case "of_list sorted" `Quick test_heap_of_list_sorted;
          Alcotest.test_case "second_key" `Quick test_heap_second_key;
          QCheck_alcotest.to_alcotest prop_heap_second_key;
          QCheck_alcotest.to_alcotest prop_heap_model;
          QCheck_alcotest.to_alcotest prop_heap_model_handles;
        ] );
      ( "two_level_heap",
        [
          Alcotest.test_case "global max" `Quick test_tl_global_max;
          Alcotest.test_case "drain pair" `Quick test_tl_drain_pair;
          Alcotest.test_case "refresh" `Quick test_tl_refresh;
          Alcotest.test_case "missing pair no-ops" `Quick test_tl_missing_pair_noops;
          Alcotest.test_case "drop pair" `Quick test_tl_drop_pair;
          Alcotest.test_case "find_second / refresh_max" `Quick
            test_tl_find_second_and_refresh_max;
          QCheck_alcotest.to_alcotest prop_tl_find_second_model;
          QCheck_alcotest.to_alcotest prop_tl_matches_flat;
          QCheck_alcotest.to_alcotest prop_tl_model_refresh;
        ] );
    ]
