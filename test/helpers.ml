(* Shared builders for the REVMAX test suites. *)

module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy

let float_eq ?(eps = 1e-9) a b = Revmax_prelude.Util.float_equal ~eps a b

let check_float ?(eps = 1e-9) msg expected actual =
  if not (float_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* The single-user single-item instance of Example 4 / the non-monotonicity
   proof of Theorem 2. *)
let example4_instance () =
  Instance.create ~num_users:1 ~num_items:1 ~horizon:2 ~display_limit:1 ~class_of:[| 0 |]
    ~capacity:[| 2 |] ~saturation:[| 0.1 |]
    ~price:[| [| 1.0; 0.95 |] |]
    ~adoption:[ (0, 0, [| 0.5; 0.6 |]) ]
    ()

(* Example 1: one user, two same-class items, T = 3, all primitive
   probabilities equal to [a]. *)
let example1_instance a =
  Instance.create ~num_users:1 ~num_items:2 ~horizon:3 ~display_limit:1 ~class_of:[| 0; 0 |]
    ~capacity:[| 3; 3 |] ~saturation:[| 0.3; 0.3 |]
    ~price:[| [| 1.0; 1.0; 1.0 |]; [| 1.0; 1.0; 1.0 |] |]
    ~adoption:[ (0, 0, [| a; a; a |]); (0, 1, [| a; a; a |]) ]
    ()

(* A random small instance for property-based tests: dimensions and all
   parameters drawn from the given generator. *)
let random_instance ?(max_users = 3) ?(max_items = 4) ?(max_horizon = 3) ?(max_classes = 2)
    ?(display_limit = 2) rng =
  let num_users = 1 + Rng.int rng max_users in
  let num_items = 1 + Rng.int rng max_items in
  let horizon = 1 + Rng.int rng max_horizon in
  let num_classes = 1 + Rng.int rng (min max_classes num_items) in
  let class_of = Array.init num_items (fun i -> if i < num_classes then i else Rng.int rng num_classes) in
  let capacity = Array.init num_items (fun _ -> 1 + Rng.int rng num_users) in
  let saturation = Array.init num_items (fun _ -> Rng.unit_float rng) in
  let price = Array.init num_items (fun _ -> Array.init horizon (fun _ -> Rng.uniform_in rng 0.5 10.0)) in
  let adoption = ref [] in
  for u = 0 to num_users - 1 do
    for i = 0 to num_items - 1 do
      if Rng.bernoulli rng 0.8 then begin
        let qs = Array.init horizon (fun _ -> if Rng.bernoulli rng 0.85 then Rng.unit_float rng else 0.0) in
        adoption := (u, i, qs) :: !adoption
      end
    done
  done;
  Instance.create ~num_users ~num_items ~horizon ~display_limit ~class_of ~capacity ~saturation
    ~price ~adoption:!adoption ()

(* A random admissible slate position curve: slot 1 carries 1.0, then
   non-increasing into [0,1] (Instance.with_slate's contract). *)
let random_curve rng k =
  let m = Array.make k 1.0 in
  for s = 1 to k - 1 do
    m.(s) <- m.(s - 1) *. Rng.uniform_in rng 0.3 1.0
  done;
  m

(* The two constraint-variant instance families: the plain random instance
   with a random slate curve attached, and with a random (often binding)
   global quantity budget. *)
let random_slate_instance ?max_users ?max_items ?max_horizon rng =
  let inst = random_instance ?max_users ?max_items ?max_horizon rng in
  Instance.with_slate inst (random_curve rng (Instance.display_limit inst))

let random_budgeted_instance ?max_users ?max_items ?max_horizon rng =
  let inst = random_instance ?max_users ?max_items ?max_horizon rng in
  let full = max 1 (Instance.num_candidate_triples inst) in
  Instance.with_max_total inst (1 + Rng.int rng full)

(* All candidate triples of an instance. *)
let candidate_triples inst =
  let acc = ref [] in
  Instance.iter_candidate_triples inst (fun z _ -> acc := z :: !acc);
  List.rev !acc

(* A random valid strategy grown greedily from a random triple order. *)
let random_valid_strategy inst rng =
  let triples = Array.of_list (candidate_triples inst) in
  Rng.shuffle rng triples;
  let s = Strategy.create inst in
  Array.iter (fun z -> if Rng.bernoulli rng 0.5 && Strategy.can_add s z then Strategy.add s z) triples;
  s

let triple u i t = Triple.make ~u ~i ~t
