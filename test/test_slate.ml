(* Constraint-variant suite: ad slates with position multipliers and the
   global quantity budget. Pins (a) validity of every planner's output on
   slate / budgeted instances, (b) the cap is never exceeded and binds
   exactly when it should, (c) the two degenerate identities — an
   unbounded budget and an all-1.0 slate are bit-identical, triple for
   triple, to the plain planner — and (d) the typed violation witnesses
   with their exact rendered message bytes. Run it alone with
   `dune build @slate`. *)

module Rng = Revmax_prelude.Rng
module Err = Revmax_prelude.Err
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Shard_greedy = Revmax.Shard_greedy
module Hier_greedy = Revmax_hier.Hier_greedy
module Pipeline = Revmax_datagen.Pipeline
open Helpers

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let sorted s = List.sort Triple.compare (Strategy.to_list s)

let random_slate_instance rng = random_slate_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng

let random_budgeted_instance rng =
  random_budgeted_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng

(* the greedy selection trace, revenue included, for bit-identity checks *)
let trace_of run =
  let order = ref [] in
  let s, _ = run ~trace:(fun (pt : Greedy.trace_point) -> order := (pt.z, pt.revenue) :: !order) in
  (s, List.rev !order)

let traces_bit_identical ta tb =
  List.length ta = List.length tb
  && List.for_all2
       (fun (za, va) (zb, vb) ->
         Triple.equal za zb && Int64.bits_of_float va = Int64.bits_of_float vb)
       ta tb

(* ----- validity on the new instance families ----- *)

let prop_slate_planners_valid =
  QCheck2.Test.make ~name:"slate instances: greedy, sharded and hier outputs validate" ~count:60
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_slate_instance rng in
      let ok s = Strategy.validate s = Ok () && Strategy.violations s = [] in
      let s, _ = Greedy.run inst in
      let sh, _ = Shard_greedy.solve ~shards:3 inst in
      let hr, _ = Hier_greedy.solve ~procs:2 ~shards_per_proc:2 inst in
      ok s && ok sh && ok hr)

let prop_quantity_planners_never_exceed_cap =
  QCheck2.Test.make ~name:"quantity instances: no planner exceeds the cap" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_budgeted_instance rng in
      let cap = Instance.max_total_cap inst in
      let ok s = Strategy.size s <= cap && Strategy.validate s = Ok () in
      let s, _ = Greedy.run inst in
      let sh, _ = Shard_greedy.solve ~shards:3 inst in
      let hr, _ = Hier_greedy.solve ~procs:2 ~shards_per_proc:2 inst in
      ok s && ok sh && ok hr)

(* a loose cap (the full candidate count) can never bind, so the budgeted
   planner must not stop early: greedy picks exactly what plain greedy
   picks, and a genuinely tight cap is met with equality whenever the
   plain run overshoots it *)
let prop_tight_cap_binds_exactly =
  QCheck2.Test.make ~name:"a cap below the plain size binds with equality" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng in
      let s_plain, _ = Greedy.run inst in
      let n = Strategy.size s_plain in
      if n < 2 then QCheck2.assume_fail ()
      else begin
        let cap = 1 + Rng.int rng (n - 1) in
        let s_cap, _ = Greedy.run (Instance.with_max_total inst cap) in
        Strategy.size s_cap = cap
      end)

(* ----- degenerate bit-identity ----- *)

let prop_unbounded_budget_identity =
  QCheck2.Test.make
    ~name:"max_total = candidate count is bit-identical to plain greedy, triple for triple"
    ~count:80 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng in
      let loose = Instance.with_max_total inst (Instance.num_candidate_triples inst) in
      let s_p, tr_p = trace_of (fun ~trace -> Greedy.run ~trace inst) in
      let s_l, tr_l = trace_of (fun ~trace -> Greedy.run ~trace loose) in
      traces_bit_identical tr_p tr_l
      && List.equal Triple.equal (sorted s_p) (sorted s_l)
      && Int64.bits_of_float (Revenue.total s_p) = Int64.bits_of_float (Revenue.total s_l))

let prop_without_quantity_budget_identity =
  QCheck2.Test.make ~name:"without_quantity_budget strips the cap back to the plain planner"
    ~count:60 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng in
      let stripped = Instance.without_quantity_budget (Instance.with_max_total inst 1) in
      let _, tr_p = trace_of (fun ~trace -> Greedy.run ~trace inst) in
      let _, tr_s = trace_of (fun ~trace -> Greedy.run ~trace stripped) in
      Instance.max_total stripped = None && traces_bit_identical tr_p tr_s)

let prop_all_ones_slate_identity =
  QCheck2.Test.make
    ~name:"all-1.0 multipliers are bit-identical to the unordered-k planner" ~count:80 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng in
      let ones =
        Instance.with_slate inst (Array.make (Instance.display_limit inst) 1.0)
      in
      let s_p, tr_p = trace_of (fun ~trace -> Greedy.run ~trace inst) in
      let s_o, tr_o = trace_of (fun ~trace -> Greedy.run ~trace ones) in
      traces_bit_identical tr_p tr_o
      && List.equal Triple.equal (sorted s_p) (sorted s_o)
      && Int64.bits_of_float (Revenue.total s_p) = Int64.bits_of_float (Revenue.total s_o))

(* ----- slate mechanics ----- *)

let prop_slate_slots_injective_and_scaled =
  QCheck2.Test.make
    ~name:"every member holds a distinct slot per display; effective q is the slot-scaled q"
    ~count:60 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_slate_instance rng in
      let s, _ = Greedy.run inst in
      let seen : (int * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (z : Triple.t) ->
          match Strategy.slot_of s z with
          | None -> false
          | Some slot ->
              let key = (z.u, z.t, slot) in
              let fresh = not (Hashtbl.mem seen key) in
              Hashtbl.replace seen key ();
              fresh
              && slot >= 1
              && slot <= Instance.display_limit inst
              && float_eq (Strategy.effective_q s z)
                   (Instance.slot_factor inst ~slot *. Instance.q inst ~u:z.u ~i:z.i ~time:z.t))
        (Strategy.to_list s))

let prop_decay_never_beats_plain_revenue =
  QCheck2.Test.make ~name:"position decay never increases the planned revenue" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng in
      let k = Instance.display_limit inst in
      let s_plain, _ = Greedy.run inst in
      let s_slate, _ =
        Greedy.run (Instance.with_slate inst (Pipeline.position_curve ~decay:(`Geometric 0.7) k))
      in
      Revenue.total s_slate <= Revenue.total s_plain +. 1e-9)

(* position_curve contract: slot 1 = 1.0, non-increasing, within [0,1] —
   i.e. always admissible for Instance.with_slate *)
let test_position_curve_admissible () =
  List.iter
    (fun decay ->
      List.iter
        (fun k ->
          let m = Pipeline.position_curve ~decay k in
          Alcotest.(check int) "length" k (Array.length m);
          check_float "slot 1" 1.0 m.(0);
          Array.iteri
            (fun j v ->
              if v < 0.0 || v > 1.0 then Alcotest.failf "slot %d: %g outside [0,1]" (j + 1) v;
              if j > 0 && v > m.(j - 1) then
                Alcotest.failf "slot %d: %g increases over %g" (j + 1) v m.(j - 1))
            m)
        [ 1; 2; 5 ])
    [ `Geometric 0.7; `Geometric 1.0; `Harmonic ];
  List.iter
    (fun bad -> match Pipeline.position_curve ~decay:(`Geometric bad) 3 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "geometric ratio %g should be rejected" bad)
    [ 0.0; 1.5; -0.2 ]

(* ----- typed witnesses and pinned message bytes ----- *)

let quantity_instance () =
  let inst =
    Instance.create ~num_users:2 ~num_items:2 ~horizon:2 ~display_limit:1 ~class_of:[| 0; 1 |]
      ~capacity:[| 2; 2 |] ~saturation:[| 0.5; 0.5 |]
      ~price:[| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |]
      ~adoption:
        [ (0, 0, [| 0.5; 0.5 |]); (0, 1, [| 0.5; 0.5 |]); (1, 0, [| 0.5; 0.5 |]) ]
      ()
  in
  Instance.with_max_total inst 2

let test_quantity_witness_and_message () =
  let inst = quantity_instance () in
  let s = Strategy.create inst in
  (* Strategy.add deliberately allows overshoot (repair loops need it);
     validate must then report the typed witness, ordered last *)
  List.iter (Strategy.add s) [ triple 0 0 1; triple 0 1 2; triple 1 0 1 ];
  (match Strategy.add_result s (triple 1 0 2) with
  | Error (Err.Invalid_strategy [ Err.Quantity_budget { count = 4; cap = 2 } ]) -> ()
  | Error e -> Alcotest.failf "add_result: wrong error %s" (Err.message e)
  | Ok () -> Alcotest.fail "add_result accepted a strategy past the cap");
  (match Strategy.violations s with
  | [ Err.Quantity_budget { count; cap } ] ->
      Alcotest.(check int) "count" 3 count;
      Alcotest.(check int) "cap" 2 cap
  | vs ->
      Alcotest.failf "expected exactly the quantity witness, got %d violations" (List.length vs));
  match Strategy.validate s with
  | Error (Err.Invalid_strategy [ v ]) ->
      (* pinned bytes: downstream log scrapers match on this exact text *)
      Alcotest.(check string) "constraint message"
        "quantity budget violated: 3 recommendations exceed the global cap 2"
        (Err.constraint_message v);
      Alcotest.(check string) "singleton render"
        "invalid strategy: quantity budget violated: 3 recommendations exceed the global cap 2"
        (Err.message (Err.Invalid_strategy [ v ]))
  | _ -> Alcotest.fail "expected exactly one violation"

let test_slot_conflict_witness_and_message () =
  let inst =
    Instance.with_slate (example1_instance 0.5) ~display_limit:2 [| 1.0; 0.5 |]
  in
  let s = Strategy.create inst in
  Strategy.add ~slot:2 s (triple 0 0 1);
  Strategy.add ~slot:2 s (triple 0 1 1);
  (match Strategy.violations s with
  | [ Err.Slot_conflict { u = 0; time = 1; slot = 2 } ] -> ()
  | vs -> Alcotest.failf "expected exactly the slot witness, got %d violations" (List.length vs));
  match Strategy.validate s with
  | Error (Err.Invalid_strategy [ v ]) ->
      Alcotest.(check string) "constraint message"
        "slate slot conflict: user 0 has slot 2 at time 1 assigned twice"
        (Err.constraint_message v)
  | _ -> Alcotest.fail "expected exactly one violation"

(* greedy stops on the cap as *completion*, not budget exhaustion: the
   truncated flag stays false so resume/monitoring logic keeps its meaning *)
let test_cap_stop_is_not_truncation () =
  let rng = Rng.create 17 in
  let inst = random_instance ~max_users:5 ~max_items:4 ~max_horizon:3 rng in
  let s_plain, _ = Greedy.run inst in
  let n = Strategy.size s_plain in
  Alcotest.(check bool) "plain run needs a few picks" true (n >= 2);
  let s, (st : Greedy.stats) = Greedy.run (Instance.with_max_total inst (n - 1)) in
  Alcotest.(check int) "stops exactly at the cap" (n - 1) (Strategy.size s);
  Alcotest.(check bool) "not flagged truncated" false st.truncated

let () =
  Alcotest.run "slate"
    [
      ( "validity",
        [
          QCheck_alcotest.to_alcotest prop_slate_planners_valid;
          QCheck_alcotest.to_alcotest prop_quantity_planners_never_exceed_cap;
          QCheck_alcotest.to_alcotest prop_tight_cap_binds_exactly;
        ] );
      ( "degenerate-identity",
        [
          QCheck_alcotest.to_alcotest prop_unbounded_budget_identity;
          QCheck_alcotest.to_alcotest prop_without_quantity_budget_identity;
          QCheck_alcotest.to_alcotest prop_all_ones_slate_identity;
        ] );
      ( "slate-mechanics",
        [
          QCheck_alcotest.to_alcotest prop_slate_slots_injective_and_scaled;
          QCheck_alcotest.to_alcotest prop_decay_never_beats_plain_revenue;
          Alcotest.test_case "position_curve admissible" `Quick test_position_curve_admissible;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "quantity witness and pinned message" `Quick
            test_quantity_witness_and_message;
          Alcotest.test_case "slot conflict witness and pinned message" `Quick
            test_slot_conflict_witness_and_message;
          Alcotest.test_case "cap stop is completion, not truncation" `Quick
            test_cap_stop_is_not_truncation;
        ] );
    ]
