(* Out-of-core scale machinery: pack files and the memory-mapped instance
   backend (bit-identical to the heap path through every planner), the
   hierarchical process-level planner's equivalence to the flat in-process
   one, and the pipe wire codec both planners' processes speak. *)

module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Shard_greedy = Revmax.Shard_greedy
module Hier_greedy = Revmax_hier.Hier_greedy
module Wire = Revmax_hier.Wire
open Helpers

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let sorted s = List.sort Triple.compare (Strategy.to_list s)

let with_temp_pack f =
  let path = Filename.temp_file "revmax" ".pack" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* pack → mmap round trip of a heap instance; the mapping outlives the
   file (mmap keeps the pages), so the temp file can be removed eagerly *)
let mmap_of inst =
  with_temp_pack (fun path ->
      Instance.pack_to_file inst path;
      Instance.of_mmap path)

(* a random instance with predicted ratings on some candidate pairs, so
   the pack's optional rating section is exercised *)
let random_rated_instance rng =
  let inst = random_instance ~max_users:5 ~max_items:5 ~max_horizon:3 rng in
  let ratings = ref [] in
  for u = 0 to Instance.num_users inst - 1 do
    Array.iter
      (fun (i, _) -> if Rng.bernoulli rng 0.5 then ratings := (u, i, Rng.unit_float rng) :: !ratings)
      (Instance.candidates inst u)
  done;
  if !ratings = [] then inst
  else begin
    (* rebuild the same instance with ratings attached *)
    let adoption = ref [] in
    for u = 0 to Instance.num_users inst - 1 do
      Array.iter
        (fun (i, qs) -> adoption := (u, i, Array.copy qs) :: !adoption)
        (Instance.candidates inst u)
    done;
    Instance.create ~num_users:(Instance.num_users inst) ~num_items:(Instance.num_items inst)
      ~horizon:(Instance.horizon inst) ~display_limit:(Instance.display_limit inst)
      ~class_of:(Array.init (Instance.num_items inst) (Instance.class_of inst))
      ~capacity:(Array.init (Instance.num_items inst) (Instance.capacity inst))
      ~saturation:(Array.init (Instance.num_items inst) (Instance.saturation inst))
      ~price:
        (Array.init (Instance.num_items inst) (fun i ->
             Array.init (Instance.horizon inst) (fun k -> Instance.price inst ~i ~time:(k + 1))))
      ~ratings:!ratings ~adoption:!adoption ()
  end

(* ----- pack round trip: every observable fact survives bit-for-bit ----- *)

let check_instances_equal ~what a b =
  let ck msg got exp = if got <> exp then Alcotest.failf "%s: %s differ" what msg in
  ck "num_users" (Instance.num_users b) (Instance.num_users a);
  ck "num_items" (Instance.num_items b) (Instance.num_items a);
  ck "horizon" (Instance.horizon b) (Instance.horizon a);
  ck "display_limit" (Instance.display_limit b) (Instance.display_limit a);
  ck "num_classes" (Instance.num_classes b) (Instance.num_classes a);
  ck "triples" (Instance.num_candidate_triples b) (Instance.num_candidate_triples a);
  ck "pair_count" (Instance.pair_count b) (Instance.pair_count a);
  for i = 0 to Instance.num_items a - 1 do
    ck "class_of" (Instance.class_of b i) (Instance.class_of a i);
    ck "capacity" (Instance.capacity b i) (Instance.capacity a i);
    (* floats: exact bit equality, not approximate *)
    if Instance.saturation b i <> Instance.saturation a i then
      Alcotest.failf "%s: saturation %d differs" what i;
    for t = 1 to Instance.horizon a do
      if Instance.price b ~i ~time:t <> Instance.price a ~i ~time:t then
        Alcotest.failf "%s: price (%d,%d) differs" what i t
    done
  done;
  for u = 0 to Instance.num_users a - 1 do
    for i = 0 to Instance.num_items a - 1 do
      ck "is_candidate" (Instance.is_candidate b ~u ~i) (Instance.is_candidate a ~u ~i);
      if Instance.rating b ~u ~i <> Instance.rating a ~u ~i then
        Alcotest.failf "%s: rating (%d,%d) differs" what u i;
      for t = 1 to Instance.horizon a do
        if Instance.q b ~u ~i ~time:t <> Instance.q a ~u ~i ~time:t then
          Alcotest.failf "%s: q (%d,%d,%d) differs" what u i t
      done
    done
  done;
  (* candidate iteration order and payloads are identical *)
  let collect inst =
    let acc = ref [] in
    Instance.iter_candidate_triples inst (fun z q -> acc := (z, q) :: !acc);
    List.rev !acc
  in
  if collect b <> collect a then Alcotest.failf "%s: candidate triple streams differ" what;
  (* the constraint-variant knobs live in the pack header and must survive *)
  ck "max_total" (Instance.max_total b) (Instance.max_total a);
  if Instance.slot_multipliers b <> Instance.slot_multipliers a then
    Alcotest.failf "%s: slate multipliers differ" what

let prop_pack_roundtrip =
  QCheck2.Test.make ~name:"pack → mmap round trip preserves every fact" ~count:100 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_rated_instance rng in
      let mapped = mmap_of inst in
      if not (Instance.is_packed mapped) then Alcotest.fail "of_mmap did not yield a packed instance";
      check_instances_equal ~what:(Printf.sprintf "seed %d" seed) inst mapped;
      (* a pack written from the mapped instance reads back equal too *)
      let repacked = mmap_of mapped in
      check_instances_equal ~what:(Printf.sprintf "seed %d repack" seed) inst repacked;
      true)

let prop_pack_roundtrip_variants =
  QCheck2.Test.make ~name:"pack → mmap round trip carries slate and quantity knobs" ~count:60
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let base = random_rated_instance rng in
      let inst =
        Instance.with_max_total
          (Instance.with_slate base (random_curve rng (Instance.display_limit base)))
          (1 + Rng.int rng (max 1 (Instance.num_candidate_triples base)))
      in
      check_instances_equal ~what:(Printf.sprintf "variant seed %d" seed) inst (mmap_of inst);
      true)

let test_pack_rejects_corruption () =
  let rng = Rng.create 42 in
  let inst = random_rated_instance rng in
  with_temp_pack (fun path ->
      Instance.pack_to_file inst path;
      let size = (Unix.stat path).Unix.st_size in
      (* truncation: every prefix strictly shorter than the file is invalid *)
      List.iter
        (fun keep ->
          let cut = Filename.temp_file "revmax" ".cut" in
          Fun.protect
            ~finally:(fun () -> Sys.remove cut)
            (fun () ->
              let data = In_channel.with_open_bin path In_channel.input_all in
              Out_channel.with_open_bin cut (fun oc ->
                  Out_channel.output_string oc (String.sub data 0 keep));
              match Instance.of_mmap_checked cut with
              | Error _ -> ()
              | Ok _ -> Alcotest.failf "truncated pack (%d of %d bytes) accepted" keep size))
        [ 0; 4; 8 * 6; size / 2; size - 1 ];
      (* a flipped magic byte is rejected *)
      let data = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      Bytes.set data 0 'X';
      let bad = Filename.temp_file "revmax" ".bad" in
      Fun.protect
        ~finally:(fun () -> Sys.remove bad)
        (fun () ->
          Out_channel.with_open_bin bad (fun oc -> Out_channel.output_bytes oc data);
          match Instance.of_mmap_checked bad with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "pack with corrupted magic accepted"))

let test_pack_rejects_bad_probability () =
  (* bytes of a probability > 1 planted directly in the q section must be
     caught by the open-time integrity pass *)
  let inst =
    Instance.create ~num_users:1 ~num_items:1 ~horizon:1 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 1 |] ~saturation:[| 1.0 |]
      ~price:[| [| 1.0 |] |]
      ~adoption:[ (0, 0, [| 0.5 |]) ]
      ()
  in
  with_temp_pack (fun path ->
      Instance.pack_to_file inst path;
      let data = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      (* the single q double is the last 8 bytes before the pair-item and
         row-offset trailers: locate it by value instead of offset math *)
      let needle = Int64.bits_of_float 0.5 in
      let pos = ref (-1) in
      for off = 0 to Bytes.length data - 8 do
        if Bytes.get_int64_le data off = needle then pos := off
      done;
      if !pos < 0 then Alcotest.fail "q payload not found in pack";
      Bytes.set_int64_le data !pos (Int64.bits_of_float 1.5);
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc data);
      match Instance.of_mmap_checked path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "pack with q = 1.5 accepted")

(* ----- mmap ≡ heap through the planners ----- *)

let trace_of run =
  let order = ref [] in
  let s, _ = run ~trace:(fun (pt : Greedy.trace_point) -> order := (pt.z, pt.revenue) :: !order) in
  (s, List.rev !order)

let prop_greedy_mmap_identity =
  QCheck2.Test.make ~name:"greedy trace on mmap is bit-identical to heap" ~count:100 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:5 ~max_items:5 ~max_horizon:3 rng in
      let mapped = mmap_of inst in
      List.iter
        (fun heap ->
          let s_h, tr_h = trace_of (fun ~trace -> Greedy.run ~heap ~trace inst) in
          let s_m, tr_m = trace_of (fun ~trace -> Greedy.run ~heap ~trace mapped) in
          (* selection order, per-step running revenue (exact doubles),
             and the final strategy must all coincide *)
          if tr_h <> tr_m then Alcotest.failf "seed %d: traces diverge on mmap" seed;
          if sorted s_h <> sorted s_m then Alcotest.failf "seed %d: strategies diverge" seed;
          if Revenue.total s_h <> Revenue.total s_m then
            Alcotest.failf "seed %d: revenue diverges" seed)
        [ `Two_level; `Giant ];
      true)

let prop_shard_mmap_identity =
  QCheck2.Test.make ~name:"sharded planning on mmap equals heap at shards in {1,3}" ~count:60
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:7 ~max_items:4 ~max_horizon:3 rng in
      let mapped = mmap_of inst in
      List.iter
        (fun shards ->
          let s_h, (st_h : Shard_greedy.stats) = Shard_greedy.solve ~shards inst in
          let s_m, (st_m : Shard_greedy.stats) = Shard_greedy.solve ~shards mapped in
          if sorted s_h <> sorted s_m then
            Alcotest.failf "seed %d shards %d: selections diverge" seed shards;
          if st_h.released_pairs <> st_m.released_pairs then
            Alcotest.failf "seed %d shards %d: reconciliation diverges" seed shards)
        [ 1; 3 ];
      true)

(* ----- hierarchical ≡ flat ----- *)

let check_hier_equiv ?policy ~what inst ~procs ~spp =
  let flat, (st_flat : Shard_greedy.stats) =
    Shard_greedy.solve ?policy ~shards:(procs * spp) inst
  in
  let hier, (st_hier : Hier_greedy.stats) =
    Hier_greedy.solve ?policy ~procs ~shards_per_proc:spp inst
  in
  if procs > 1 && st_hier.degraded then
    Alcotest.failf "%s: hierarchical planner unexpectedly degraded" what;
  if sorted hier <> sorted flat then Alcotest.failf "%s: hier selection differs from flat" what;
  if Revenue.total hier <> Revenue.total flat then Alcotest.failf "%s: hier revenue differs" what;
  if st_hier.per_shard_selected <> st_flat.per_shard_selected then
    Alcotest.failf "%s: per-shard selections differ" what;
  if st_hier.released_pairs <> st_flat.released_pairs then
    Alcotest.failf "%s: released pairs differ (%d vs %d)" what st_hier.released_pairs
      st_flat.released_pairs;
  if st_hier.reconciliation_rounds <> st_flat.reconciliation_rounds then
    Alcotest.failf "%s: reconciliation rounds differ" what;
  if st_hier.replanned <> st_flat.replanned then Alcotest.failf "%s: replanned counts differ" what

let test_hier_equals_flat () =
  for seed = 0 to 14 do
    let rng = Rng.create seed in
    let inst = random_instance ~max_users:9 ~max_items:4 ~max_horizon:3 rng in
    List.iter
      (fun (procs, spp) ->
        check_hier_equiv ~what:(Printf.sprintf "seed %d procs %d spp %d" seed procs spp) inst
          ~procs ~spp)
      [ (1, 2); (2, 1); (2, 2); (3, 2) ]
  done

(* the same equivalence on the constraint-variant families: slate slot
   assignments travel over the wire, and the global quantity budget is
   charged at the parent in the same order as the flat planner *)
let test_hier_equals_flat_on_variants () =
  for seed = 0 to 19 do
    let rng = Rng.create seed in
    List.iter
      (fun (kind, inst) ->
        check_hier_equiv ~what:(Printf.sprintf "%s seed %d" kind seed) inst ~procs:2 ~spp:2)
      [
        ("slate", random_slate_instance ~max_users:9 ~max_items:4 ~max_horizon:3 rng);
        ("budgeted", random_budgeted_instance ~max_users:9 ~max_items:4 ~max_horizon:3 rng);
      ]
  done

let test_hier_reconciles_like_flat () =
  (* hunt for seeds whose water-filling merge genuinely over-subscribes, so
     the cross-process loss exchange is exercised, not just the merge *)
  let exercised = ref 0 in
  let seed = ref 0 in
  while !exercised < 5 && !seed < 200 do
    let rng = Rng.create !seed in
    let inst = random_instance ~max_users:9 ~max_items:3 ~max_horizon:3 rng in
    let _, (st : Shard_greedy.stats) = Shard_greedy.solve ~shards:4 inst in
    if st.released_pairs > 0 then begin
      incr exercised;
      check_hier_equiv ~what:(Printf.sprintf "contended seed %d" !seed) inst ~procs:2 ~spp:2
    end;
    incr seed
  done;
  if !exercised = 0 then Alcotest.fail "no contended seed found; generator drifted?"

let test_hier_on_mmap () =
  let rng = Rng.create 7 in
  let inst = random_instance ~max_users:9 ~max_items:4 ~max_horizon:3 rng in
  let mapped = mmap_of inst in
  check_hier_equiv ~what:"mmap-backed hier" mapped ~procs:2 ~spp:2;
  (* and across backends: the hierarchical plan on the mapped instance
     equals the flat plan on the heap instance *)
  let flat, _ = Shard_greedy.solve ~shards:4 inst in
  let hier, _ = Hier_greedy.solve ~procs:2 ~shards_per_proc:2 mapped in
  if sorted hier <> sorted flat then Alcotest.fail "mmap hier differs from heap flat"

(* ----- wire codec ----- *)

let roundtrip msg =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      Wire.send w msg;
      Wire.recv r)

let test_wire_roundtrip () =
  let msgs =
    [
      Wire.Shard_result
        {
          shard = 3;
          selected = 2;
          evaluations = 17;
          pops = 9;
          truncated = true;
          triples = [| triple 0 1 2; triple 4 0 1 |];
          slots = [||];
        };
      Wire.Shard_result
        {
          shard = 0;
          selected = 2;
          evaluations = 4;
          pops = 2;
          truncated = false;
          triples = [| triple 0 1 2; triple 4 0 1 |];
          slots = [| 2; 1 |];
        };
      Wire.Reconcile_request [| 1; 5; 9 |];
      Wire.Loss_lists [| (5, [| (0.125, 2); (Float.max_float, 0) |]); (9, [||]) |];
      Wire.Release { item = 5; users = [| 2; 7 |] };
      Wire.Shutdown;
      Wire.Child_error "boom";
    ]
  in
  List.iter (fun m -> if roundtrip m <> m then Alcotest.fail "wire round trip changed a message") msgs

let test_wire_rejects_corruption () =
  let payload_flip () =
    let r, w = Unix.pipe () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        try Unix.close w with Unix.Unix_error _ -> ())
      (fun () ->
        Wire.send w (Wire.Reconcile_request [| 1; 2; 3 |]);
        Unix.close w;
        (* read the frame raw, flip one payload byte, re-send *)
        let buf = Bytes.create 4096 in
        let n = Unix.read r buf 0 4096 in
        Bytes.set buf (n - 1) (Char.chr (Char.code (Bytes.get buf (n - 1)) lxor 1));
        let r2, w2 = Unix.pipe () in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close r2 with Unix.Unix_error _ -> ());
            try Unix.close w2 with Unix.Unix_error _ -> ())
          (fun () ->
            ignore (Unix.write w2 buf 0 n);
            Unix.close w2;
            match Wire.recv r2 with
            | exception Wire.Protocol_error _ -> ()
            | _ -> Alcotest.fail "corrupted frame accepted"))
  in
  payload_flip ();
  (* EOF mid-frame *)
  let r, w = Unix.pipe () in
  ignore (Unix.write_substring w "\x10\x00\x00\x00" 0 4);
  Unix.close w;
  (match Wire.recv r with
  | exception Wire.Protocol_error _ -> ()
  | _ -> Alcotest.fail "truncated frame accepted");
  Unix.close r

let () =
  Alcotest.run "scale"
    [
      ( "pack",
        [
          QCheck_alcotest.to_alcotest prop_pack_roundtrip;
          QCheck_alcotest.to_alcotest prop_pack_roundtrip_variants;
          Alcotest.test_case "corrupted packs are rejected" `Quick test_pack_rejects_corruption;
          Alcotest.test_case "out-of-range q is rejected" `Quick test_pack_rejects_bad_probability;
        ] );
      ( "mmap-equivalence",
        [
          QCheck_alcotest.to_alcotest prop_greedy_mmap_identity;
          QCheck_alcotest.to_alcotest prop_shard_mmap_identity;
        ] );
      ( "hier",
        [
          Alcotest.test_case "hier(p,s) ≡ flat(p·s) on random instances" `Quick
            test_hier_equals_flat;
          Alcotest.test_case "hier(2,2) ≡ flat(4) on slate and budgeted instances" `Quick
            test_hier_equals_flat_on_variants;
          Alcotest.test_case "hier reconciliation matches flat under contention" `Quick
            test_hier_reconciles_like_flat;
          Alcotest.test_case "hier on an mmap-backed instance" `Quick test_hier_on_mmap;
        ] );
      ( "wire",
        [
          Alcotest.test_case "codec round trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "corruption is rejected" `Quick test_wire_rejects_corruption;
        ] );
    ]
