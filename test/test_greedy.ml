module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Local_greedy = Revmax.Local_greedy
module Baselines = Revmax.Baselines
module Exact = Revmax.Exact
module Rolling = Revmax.Rolling
module Algorithms = Revmax.Algorithms
open Helpers

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* ----- G-Greedy ----- *)

let test_gg_example4_avoids_negative_marginal () =
  (* on Example 4, adding (u,i,1) after (u,i,2) has negative marginal;
     G-Greedy must return the singleton of revenue 0.57 *)
  let inst = example4_instance () in
  let s, stats = Greedy.run inst in
  check_float ~eps:1e-12 "optimal revenue" 0.57 (Revenue.total s);
  Alcotest.(check (list string)) "picked (0,0,2)" [ "(0, 0, 2)" ]
    (List.map Triple.to_string (Strategy.to_list s));
  Alcotest.(check int) "one selection" 1 stats.Greedy.selected

let test_gg_respects_constraints_small () =
  let inst = example1_instance 0.9 in
  let s, _ = Greedy.run inst in
  Alcotest.(check bool) "valid" true (Strategy.is_valid s)

let prop_gg_always_valid =
  QCheck2.Test.make ~name:"G-Greedy output is always valid" ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s, _ = Greedy.run inst in
      Strategy.is_valid s)

(* The following comparisons are empirical regularities, not theorems (the
   revenue function is not universally submodular — see the Theorem 2
   counterexample in test_core), so they run over a fixed, deterministic
   seed range rather than through QCheck's fresh randomness. *)

let test_gg_heap_variants_agree () =
  for seed = 0 to 79 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let s1, _ = Greedy.run ~heap:`Two_level inst in
    let s2, _ = Greedy.run ~heap:`Giant inst in
    if not (Helpers.float_eq ~eps:1e-9 (Revenue.total s1) (Revenue.total s2)) then
      Alcotest.failf "seed %d: two-level %.6f vs giant %.6f" seed (Revenue.total s1)
        (Revenue.total s2)
  done

(* the legal heap/refresh combinations — two-level+lazy, giant+lazy and
   two-level+eager — must select the very same triples, not merely
   revenue-equal strategies *)
let test_gg_variants_identical_strategies () =
  let sorted s = List.sort Triple.compare (Strategy.to_list s) in
  for seed = 0 to 79 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let reference, _ = Greedy.run ~heap:`Two_level ~lazy_forward:true inst in
    List.iter
      (fun (name, s) ->
        if sorted s <> sorted reference then
          Alcotest.failf "seed %d: %s selected a different strategy" seed name)
      [
        ("giant+lazy", fst (Greedy.run ~heap:`Giant ~lazy_forward:true inst));
        ("two-level+eager", fst (Greedy.run ~heap:`Two_level ~lazy_forward:false inst));
      ]
  done

(* acceptance: the incremental evaluator reproduces the naive oracle's runs
   exactly — same selections, revenue within 1e-9 *)
let test_gg_evaluators_identical () =
  let sorted s = List.sort Triple.compare (Strategy.to_list s) in
  for seed = 0 to 79 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let si, _ = Greedy.run ~evaluator:`Incremental inst in
    let sn, _ = Greedy.run ~evaluator:`Naive inst in
    if sorted si <> sorted sn then
      Alcotest.failf "seed %d: evaluators selected different strategies" seed;
    if not (Helpers.float_eq ~eps:1e-9 (Revenue.total si) (Revenue.total sn)) then
      Alcotest.failf "seed %d: incremental %.9f vs naive %.9f" seed (Revenue.total si)
        (Revenue.total sn)
  done

let test_gg_lazy_eager_agree () =
  for seed = 0 to 79 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let s_lazy, st_lazy = Greedy.run ~lazy_forward:true inst in
    let s_eager, st_eager = Greedy.run ~lazy_forward:false inst in
    let vl = Revenue.total s_lazy and ve = Revenue.total s_eager in
    (* lazy forward relies on stale keys being upper bounds; the rare
       non-submodular corner can make the two selections diverge slightly *)
    if Float.abs (vl -. ve) > 0.02 *. Float.max 1.0 ve then
      Alcotest.failf "seed %d: lazy %.6f vs eager %.6f" seed vl ve;
    if st_lazy.Greedy.marginal_evaluations > st_eager.Greedy.marginal_evaluations then
      Alcotest.failf "seed %d: lazy did more work than eager" seed
  done

let test_gg_eager_giant_rejected () =
  let inst = example4_instance () in
  Alcotest.check_raises "invalid combination"
    (Invalid_argument "Greedy.run: eager refresh requires the two-level heap") (fun () ->
      ignore (Greedy.run ~heap:`Giant ~lazy_forward:false inst))

(* ----- CELF lazy policy ----- *)

let ordered_trace run =
  let order = ref [] in
  let s, stats = run ~trace:(fun (pt : Greedy.trace_point) -> order := pt.z :: !order) in
  (s, stats, List.rev !order)

(* the CELF stamp-skip refresh must reproduce the whole-pair refresh
   exactly — same ordered selection sequence — while never paying more
   oracle calls. Under the paper's (user, item) pair grouping the two
   policies coincide (every entry of a refreshed group shares the root's
   chain, so the stamp skip never fires): the evaluation counts must be
   exactly equal, and the sequence identity holds by construction rather
   than by the unsound stale-keys-are-upper-bounds argument — REVMAX
   marginals can increase as chains grow, see lib/core/greedy.ml *)
let test_gg_celf_vs_refresh_pair () =
  let evals_celf = ref 0 and evals_rp = ref 0 in
  for seed = 0 to 99 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let _, st_c, tr_c =
      ordered_trace (fun ~trace -> Greedy.run ~lazy_policy:`Celf ~trace inst)
    in
    let _, st_r, tr_r =
      ordered_trace (fun ~trace -> Greedy.run ~lazy_policy:`Refresh_pair ~trace inst)
    in
    if tr_c <> tr_r then Alcotest.failf "seed %d: CELF selected a different sequence" seed;
    if st_c.Greedy.marginal_evaluations > st_r.Greedy.marginal_evaluations then
      Alcotest.failf "seed %d: CELF did more evaluations (%d > %d)" seed
        st_c.Greedy.marginal_evaluations st_r.Greedy.marginal_evaluations;
    evals_celf := !evals_celf + st_c.Greedy.marginal_evaluations;
    evals_rp := !evals_rp + st_r.Greedy.marginal_evaluations
  done;
  Alcotest.(check int) "pair grouping: policies do identical work" !evals_rp !evals_celf

(* model-based qcheck variant over fresh random instances *)
let prop_celf_matches_refresh_pair =
  QCheck2.Test.make ~name:"CELF ≡ refresh-pair selections, ≤ evaluations" ~count:120 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let _, st_c, tr_c =
        ordered_trace (fun ~trace -> Greedy.run ~lazy_policy:`Celf ~trace inst)
      in
      let _, st_r, tr_r =
        ordered_trace (fun ~trace -> Greedy.run ~lazy_policy:`Refresh_pair ~trace inst)
      in
      tr_c = tr_r && st_c.Greedy.marginal_evaluations <= st_r.Greedy.marginal_evaluations)

(* ----- giant-heap capacity purge ----- *)

(* one capacity-1 item contested by [num_users] users: after the first
   selection every other user's entries are permanently infeasible *)
let capacity_one_instance num_users =
  let adoption =
    List.init num_users (fun u ->
        if u = 0 then (0, 0, [| 0.9; 0.8; 0.7 |]) else (u, 0, [| 0.05; 0.04; 0.03 |]))
  in
  Instance.create ~num_users ~num_items:1 ~horizon:3 ~display_limit:1 ~class_of:[| 0 |]
    ~capacity:[| 1 |] ~saturation:[| 0.5 |]
    ~price:[| [| 1.0; 1.0; 1.0 |] |]
    ~adoption ()

(* regression for the one-pop-per-blocked-entry drain: the purge removes
   capacity-blocked entries by handle, so [pops] must not scale with the
   number of blocked candidates *)
let test_gg_giant_pops_ignore_blocked () =
  let run inst = Greedy.run ~heap:`Giant inst in
  let s8, st8 = run (capacity_one_instance 8) in
  let s64, st64 = run (capacity_one_instance 64) in
  (* same winner, same chain, same selections *)
  Alcotest.(check (list string)) "selections independent of contention"
    (List.map Triple.to_string (List.sort Triple.compare (Strategy.to_list s8)))
    (List.map Triple.to_string (List.sort Triple.compare (Strategy.to_list s64)));
  Alcotest.(check int) "pops do not scale with blocked candidates" st8.Greedy.pops
    st64.Greedy.pops;
  (* and the purge does not disturb agreement with the two-level path *)
  let s_tl, _ = Greedy.run ~heap:`Two_level (capacity_one_instance 64) in
  Alcotest.(check (list string)) "giant agrees with two-level"
    (List.map Triple.to_string (List.sort Triple.compare (Strategy.to_list s_tl)))
    (List.map Triple.to_string (List.sort Triple.compare (Strategy.to_list s64)))

let prop_gg_never_below_optimum_check =
  QCheck2.Test.make ~name:"greedy revenue <= brute-force optimum" ~count:40 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:2 ~max_items:2 ~max_horizon:2 rng in
      if Instance.num_candidate_triples inst > 8 then true
      else begin
        let s, _ = Greedy.run inst in
        let _, opt = Exact.brute_force inst in
        Revenue.total s <= opt +. 1e-9
      end)

let prop_gg_trace_consistent =
  QCheck2.Test.make ~name:"trace running total equals Rev of output" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let last = ref 0.0 in
      let sizes = ref [] in
      let s, _ =
        Greedy.run
          ~trace:(fun (pt : Greedy.trace_point) ->
            last := pt.revenue;
            sizes := pt.size :: !sizes)
          inst
      in
      (* sizes 1,2,3,… in order; final running total equals Rev(S) *)
      let ascending = List.rev !sizes in
      let expected_sizes = List.init (List.length ascending) (fun i -> i + 1) in
      ascending = expected_sizes
      && Strategy.size s = List.length ascending
      && (Strategy.size s = 0 || Helpers.float_eq ~eps:1e-9 (Revenue.total s) !last))

(* ----- anytime budgets ----- *)

module Budget = Revmax_prelude.Budget

(* an already-expired evaluation budget still yields a non-empty valid
   prefix of the unbudgeted run, flagged truncated *)
let prop_gg_budget_prefix =
  QCheck2.Test.make ~name:"budgeted run is a truncated valid prefix" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let full, full_stats = Greedy.run inst in
      if full_stats.Greedy.selected < 2 then true
      else begin
        let budget = Budget.create ~max_evaluations:1 () in
        let s, stats = Greedy.run ~budget inst in
        stats.Greedy.truncated
        && stats.Greedy.selected >= 1
        && stats.Greedy.selected < full_stats.Greedy.selected
        && Strategy.is_valid s
        && Strategy.size s > 0
        && List.for_all (Strategy.mem full) (Strategy.to_list s)
      end)

(* satellite: the budgeted run's trace agrees point-for-point with a prefix
   of the unbudgeted run's trace (sizes, revenues, evaluation counts) *)
let prop_gg_budget_trace_prefix =
  QCheck2.Test.make ~name:"budgeted and unbudgeted traces share a prefix" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let collect ?budget () =
        let points = ref [] in
        let _, stats =
          Greedy.run ?budget ~trace:(fun pt -> points := pt :: !points) inst
        in
        (List.rev !points, stats)
      in
      let full, _ = collect () in
      let pref, _ = collect ~budget:(Budget.create ~max_evaluations:3 ()) () in
      List.length pref <= List.length full
      && List.for_all2
           (fun (a : Greedy.trace_point) (b : Greedy.trace_point) ->
             a.size = b.size && a.revenue = b.revenue && a.evaluations = b.evaluations)
           pref
           (Revmax_prelude.Util.take (List.length pref) full))

(* trace evaluation counts are cumulative and non-decreasing *)
let test_trace_reports_evaluations () =
  let rng = Rng.create 11 in
  let inst = random_instance rng in
  let last = ref 0 in
  let _, stats =
    Greedy.run
      ~trace:(fun pt ->
        Alcotest.(check bool) "evaluations non-decreasing" true (pt.Greedy.evaluations >= !last);
        last := pt.Greedy.evaluations)
      inst
  in
  Alcotest.(check bool) "final trace count <= stats" true
    (!last <= stats.Greedy.marginal_evaluations)

let test_zero_deadline_truncates () =
  let rng = Rng.create 3 in
  let inst = random_instance rng in
  let _, full_stats = Greedy.run inst in
  if full_stats.Greedy.selected >= 2 then begin
    let budget = Budget.create ~wall_seconds:0.0 () in
    let s, stats = Greedy.run ~budget inst in
    Alcotest.(check bool) "truncated" true stats.Greedy.truncated;
    Alcotest.(check int) "exactly one selection" 1 stats.Greedy.selected;
    Alcotest.(check bool) "valid" true (Strategy.is_valid s)
  end

let test_unbudgeted_never_truncates () =
  for seed = 0 to 19 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let _, st = Greedy.run inst in
    Alcotest.(check bool) "no budget, no truncation" false st.Greedy.truncated
  done

let test_local_greedy_budget () =
  let rng = Rng.create 17 in
  let inst = random_instance ~max_horizon:4 rng in
  let _, full = Local_greedy.sl_greedy inst in
  if full.Greedy.selected >= 2 then begin
    let budget = Budget.create ~max_evaluations:1 () in
    let s, st = Local_greedy.sl_greedy ~budget inst in
    Alcotest.(check bool) "truncated" true st.Greedy.truncated;
    Alcotest.(check bool) "progress" true (st.Greedy.selected >= 1);
    Alcotest.(check bool) "valid" true (Strategy.is_valid s)
  end;
  (* RL-Greedy: the first permutation always completes; with horizon >= 2
     there is at least a second permutation to skip, so the run truncates *)
  let exercised = ref false in
  for seed = 0 to 19 do
    let rng = Rng.create seed in
    let inst = random_instance ~max_horizon:4 rng in
    let _, full = Local_greedy.sl_greedy inst in
    if Instance.horizon inst >= 2 && full.Greedy.selected >= 1 then begin
      exercised := true;
      let budget = Budget.create ~max_evaluations:1 () in
      let s, st = Local_greedy.rl_greedy ~permutations:5 ~budget inst (Rng.create 0) in
      Alcotest.(check bool) "rlg truncated" true st.Greedy.truncated;
      Alcotest.(check bool) "rlg valid" true (Strategy.is_valid s);
      let chrono, _ = Local_greedy.sl_greedy inst in
      Alcotest.(check bool) "first permutation completed in full" true
        (Revenue.total s >= Revenue.total chrono -. 1e-9)
    end
  done;
  Alcotest.(check bool) "rlg budget branch exercised" true !exercised

let test_exact_budget_anytime () =
  let inst = example4_instance () in
  let r = Exact.brute_force_anytime inst in
  Alcotest.(check bool) "full search not truncated" false r.Exact.truncated;
  let budget = Budget.create ~max_evaluations:0 () in
  let rb = Exact.brute_force_anytime ~budget inst in
  Alcotest.(check bool) "budgeted search truncated" true rb.Exact.truncated;
  Alcotest.(check bool) "incumbent valid" true (Strategy.is_valid rb.Exact.strategy);
  Alcotest.(check bool) "fewer nodes" true (rb.Exact.nodes <= r.Exact.nodes)

(* GG-No (planning without saturation) rarely beats GG under the true model *)
let test_globalno_never_beats_gg () =
  for seed = 0 to 59 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let gg, _ = Greedy.run inst in
    let ggno, _ = Greedy.run ~with_saturation:false inst in
    let vg = Revenue.total gg and vn = Revenue.total ggno in
    if vg < vn -. (0.05 *. Float.max 1.0 vg) then
      Alcotest.failf "seed %d: GG %.6f well below GG-No %.6f" seed vg vn
  done

let test_gg_base_and_allowed () =
  for seed = 0 to 29 do
    let rng = Rng.create seed in
    let inst = random_instance ~max_horizon:3 rng in
    let horizon = Instance.horizon inst in
    if horizon >= 2 then begin
      (* commit the first time step, then extend over the rest *)
      let base, _ = Greedy.run ~allowed:(fun (z : Triple.t) -> z.t = 1) inst in
      List.iter
        (fun (z : Triple.t) -> if z.t <> 1 then Alcotest.fail "allowed filter violated")
        (Strategy.to_list base);
      let extended, _ = Greedy.run ~allowed:(fun (z : Triple.t) -> z.t > 1) ~base inst in
      (* every base triple survives in the extension *)
      List.iter
        (fun z ->
          if not (Strategy.mem extended z) then Alcotest.fail "base triple dropped")
        (Strategy.to_list base);
      Alcotest.(check bool) "extension valid" true (Strategy.is_valid extended);
      (* the base strategy is not mutated by the extension run *)
      List.iter
        (fun (z : Triple.t) -> if z.t <> 1 then Alcotest.fail "base mutated")
        (Strategy.to_list base)
    end
  done

let test_marginal_on_empty_strategy_is_price_times_q () =
  let inst = example4_instance () in
  let s = Strategy.create inst in
  check_float ~eps:1e-12 "p*q at t=1" (1.0 *. 0.5) (Revenue.marginal s (triple 0 0 1));
  check_float ~eps:1e-12 "p*q at t=2" (0.95 *. 0.6) (Revenue.marginal s (triple 0 0 2))

(* ----- SL-Greedy / RL-Greedy ----- *)

let prop_slg_valid =
  QCheck2.Test.make ~name:"SL-Greedy output is always valid" ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s, _ = Local_greedy.sl_greedy inst in
      Strategy.is_valid s)

let prop_rlg_at_least_slg =
  QCheck2.Test.make ~name:"RL-Greedy >= SL-Greedy (chronological included)" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let slg, _ = Local_greedy.sl_greedy inst in
      let rlg, _ = Local_greedy.rl_greedy ~permutations:6 inst rng in
      Revenue.total rlg >= Revenue.total slg -. 1e-9)

let test_order_validation () =
  let inst = example4_instance () in
  Alcotest.check_raises "duplicate time"
    (Invalid_argument "Local_greedy: duplicate time step in order") (fun () ->
      ignore (Local_greedy.greedy_in_order inst ~order:[ 1; 1 ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Local_greedy: time step out of range") (fun () ->
      ignore (Local_greedy.greedy_in_order inst ~order:[ 3 ]))

let test_reverse_order_beats_chrono_on_example4 () =
  (* the paper's Example 4: order <2,1> finds 0.57, chronological 0.5285 *)
  let inst = example4_instance () in
  let chrono, _ = Local_greedy.greedy_in_order inst ~order:[ 1; 2 ] in
  let reverse, _ = Local_greedy.greedy_in_order inst ~order:[ 2; 1 ] in
  check_float ~eps:1e-12 "chronological" 0.5285 (Revenue.total chrono);
  check_float ~eps:1e-12 "reverse" 0.57 (Revenue.total reverse)

let test_rlg_finds_better_order_on_example4 () =
  let inst = example4_instance () in
  let s, _ = Local_greedy.rl_greedy ~permutations:2 inst (Rng.create 0) in
  (* T=2 has only 2 permutations and RL samples distinct ones, so both are
     tried and the better (0.57) wins *)
  check_float ~eps:1e-12 "best of both orders" 0.57 (Revenue.total s)

(* ----- Baselines ----- *)

let prop_baselines_valid =
  QCheck2.Test.make ~name:"baselines return valid strategies" ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      Strategy.is_valid (Baselines.top_rating inst)
      && Strategy.is_valid (Baselines.top_revenue inst))

let test_baselines_repeat_all_steps () =
  let inst = example1_instance 0.5 in
  (* k=1, so each baseline picks one item and repeats it at t=1..3 *)
  let s = Baselines.top_revenue inst in
  Alcotest.(check int) "3 triples" 3 (Strategy.size s);
  let items = List.sort_uniq compare (List.map (fun (z : Triple.t) -> z.i) (Strategy.to_list s)) in
  Alcotest.(check int) "single item repeated" 1 (List.length items);
  let times = List.sort compare (List.map (fun (z : Triple.t) -> z.t) (Strategy.to_list s)) in
  Alcotest.(check (list int)) "all time steps" [ 1; 2; 3 ] times

let test_top_revenue_ranking () =
  (* item 1 has a higher price×q score at t=1 and must be chosen under k=1 *)
  let inst =
    Instance.create ~num_users:1 ~num_items:2 ~horizon:1 ~display_limit:1 ~class_of:[| 0; 1 |]
      ~capacity:[| 1; 1 |] ~saturation:[| 1.0; 1.0 |]
      ~price:[| [| 10.0 |]; [| 8.0 |] |]
      ~adoption:[ (0, 0, [| 0.3 |]); (0, 1, [| 0.9 |]) ]
      ()
  in
  let s = Baselines.top_revenue inst in
  Alcotest.(check (list string)) "chose item 1" [ "(0, 1, 1)" ]
    (List.map Triple.to_string (Strategy.to_list s))

let test_baselines_respect_capacity () =
  (* item 0 dominates both scores but has capacity 1: the second user must
     fall back to the next-best item *)
  let inst =
    Instance.create ~num_users:2 ~num_items:2 ~horizon:2 ~display_limit:1 ~class_of:[| 0; 1 |]
      ~capacity:[| 1; 2 |] ~saturation:[| 1.0; 1.0 |]
      ~price:[| [| 100.0; 100.0 |]; [| 1.0; 1.0 |] |]
      ~ratings:[ (0, 0, 5.0); (0, 1, 1.0); (1, 0, 5.0); (1, 1, 1.0) ]
      ~adoption:
        [
          (0, 0, [| 0.9; 0.9 |]); (0, 1, [| 0.5; 0.5 |]);
          (1, 0, [| 0.9; 0.9 |]); (1, 1, [| 0.5; 0.5 |]);
        ]
      ()
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "valid despite contention" true (Strategy.is_valid s);
      let items_of u =
        List.sort_uniq compare
          (List.filter_map
             (fun (z : Triple.t) -> if z.u = u then Some z.i else None)
             (Strategy.to_list s))
      in
      (* exactly one user got item 0; the other fell back to item 1 *)
      Alcotest.(check (list int)) "all items used" [ 0; 1 ]
        (List.sort_uniq compare (items_of 0 @ items_of 1)))
    [ Baselines.top_revenue inst; Baselines.top_rating inst ]

let test_top_rating_uses_ratings () =
  let inst =
    Instance.create ~num_users:1 ~num_items:2 ~horizon:1 ~display_limit:1 ~class_of:[| 0; 1 |]
      ~capacity:[| 1; 1 |] ~saturation:[| 1.0; 1.0 |]
      ~price:[| [| 10.0 |]; [| 8.0 |] |]
      ~ratings:[ (0, 0, 4.9); (0, 1, 2.0) ]
      ~adoption:[ (0, 0, [| 0.3 |]); (0, 1, [| 0.9 |]) ]
      ()
  in
  let s = Baselines.top_rating inst in
  Alcotest.(check (list string)) "chose the higher-rated item 0" [ "(0, 0, 1)" ]
    (List.map Triple.to_string (Strategy.to_list s))

let test_gg_beats_baselines () =
  for seed = 0 to 79 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let gg, _ = Greedy.run inst in
    let v = Revenue.total gg in
    let toprev = Revenue.total (Baselines.top_revenue inst) in
    let toprat = Revenue.total (Baselines.top_rating inst) in
    if v < toprev -. 1e-9 || v < toprat -. 1e-9 then
      Alcotest.failf "seed %d: GG %.6f vs TopRev %.6f TopRat %.6f" seed v toprev toprat
  done

(* ----- Exact solvers ----- *)

let test_brute_force_example4 () =
  let inst = example4_instance () in
  let s, v = Exact.brute_force inst in
  check_float ~eps:1e-12 "optimum" 0.57 v;
  Alcotest.(check bool) "valid" true (Strategy.is_valid s)

let test_brute_force_limit () =
  let rng = Rng.create 1 in
  let inst = random_instance ~max_users:3 ~max_items:4 ~max_horizon:3 rng in
  if Instance.num_candidate_triples inst > 2 then
    match Exact.brute_force ~max_ground:2 inst with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected the ground-set guard to fire"

let prop_t1_exact_matches_brute_force =
  (* with singleton classes and T = 1 there is no competition, so the
     Max-DCS reduction is exact; compare against brute force *)
  QCheck2.Test.make ~name:"T=1 Max-DCS = brute force (singleton classes)" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let num_users = 1 + Rng.int rng 2 and num_items = 1 + Rng.int rng 3 in
      let adoption = ref [] in
      for u = 0 to num_users - 1 do
        for i = 0 to num_items - 1 do
          if Rng.bernoulli rng 0.8 then adoption := (u, i, [| Rng.unit_float rng |]) :: !adoption
        done
      done;
      let inst =
        Instance.create ~num_users ~num_items ~horizon:1 ~display_limit:(1 + Rng.int rng 2)
          ~class_of:(Array.init num_items (fun i -> i))
          ~capacity:(Array.init num_items (fun _ -> 1 + Rng.int rng num_users))
          ~saturation:(Array.make num_items 1.0)
          ~price:(Array.init num_items (fun _ -> [| Rng.uniform_in rng 1.0 10.0 |]))
          ~adoption:!adoption ()
      in
      if Instance.num_candidate_triples inst > 10 then true
      else begin
        let s_flow, v_flow = Exact.solve_t1 inst in
        let _, v_bf = Exact.brute_force inst in
        Strategy.is_valid s_flow
        && Helpers.float_eq ~eps:1e-6 v_bf v_flow
        && Helpers.float_eq ~eps:1e-6 v_flow (Revenue.total s_flow)
      end)

let test_solve_t1_horizon_guard () =
  let inst = example4_instance () in
  Alcotest.check_raises "horizon guard" (Invalid_argument "Exact.solve_t1: horizon must be 1")
    (fun () -> ignore (Exact.solve_t1 inst))

(* ----- Rolling (gradual price availability, §6.3) ----- *)

let test_windows () =
  Alcotest.(check (list (pair int int))) "one cutoff" [ (1, 2); (3, 7) ]
    (Rolling.windows ~horizon:7 ~cutoffs:[ 2 ]);
  Alcotest.(check (list (pair int int))) "two cutoffs" [ (1, 2); (3, 4); (5, 7) ]
    (Rolling.windows ~horizon:7 ~cutoffs:[ 2; 4 ]);
  Alcotest.(check (list (pair int int))) "no cutoff" [ (1, 7) ]
    (Rolling.windows ~horizon:7 ~cutoffs:[]);
  (* c = horizon is legal: the trailing window is empty, not an error *)
  Alcotest.(check (list (pair int int))) "cutoff at horizon" [ (1, 7) ]
    (Rolling.windows ~horizon:7 ~cutoffs:[ 7 ]);
  Alcotest.(check (list (pair int int))) "interior + horizon cutoffs" [ (1, 3); (4, 7) ]
    (Rolling.windows ~horizon:7 ~cutoffs:[ 3; 7 ]);
  Alcotest.check_raises "cutoff past horizon"
    (Invalid_argument "Rolling.windows: cut-offs must be ascending and inside the horizon")
    (fun () -> ignore (Rolling.windows ~horizon:7 ~cutoffs:[ 8 ]));
  Alcotest.check_raises "descending cutoffs"
    (Invalid_argument "Rolling.windows: cut-offs must be ascending and inside the horizon")
    (fun () -> ignore (Rolling.windows ~horizon:7 ~cutoffs:[ 4; 2 ]));
  Alcotest.check_raises "duplicate cutoff"
    (Invalid_argument "Rolling.windows: duplicate cut-off 4")
    (fun () -> ignore (Rolling.windows ~horizon:7 ~cutoffs:[ 4; 4 ]))

let test_rolling_no_cutoff_equals_full () =
  let rng = Rng.create 12 in
  let inst = random_instance ~max_users:3 ~max_items:3 ~max_horizon:3 rng in
  let full, _ = Greedy.run inst in
  let rolled = Rolling.run Rolling.g_greedy inst ~cutoffs:[] in
  check_float ~eps:1e-9 "identical revenue" (Revenue.total full) (Revenue.total rolled)

let prop_rolling_valid =
  QCheck2.Test.make ~name:"rolling strategies are valid" ~count:60 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_horizon:3 rng in
      let horizon = Instance.horizon inst in
      let cutoffs = if horizon >= 2 then [ 1 ] else [] in
      let s = Rolling.run Rolling.g_greedy inst ~cutoffs in
      Strategy.is_valid s)

let test_rolling_never_beats_full_information () =
  for seed = 0 to 39 do
    let rng = Rng.create seed in
    let inst = random_instance ~max_horizon:3 rng in
    let horizon = Instance.horizon inst in
    if horizon >= 2 then begin
      let full, _ = Greedy.run inst in
      let rolled = Rolling.run Rolling.g_greedy inst ~cutoffs:[ 1 ] in
      (* greedy is a heuristic so this is not a theorem; allow 10% slack *)
      let vf = Revenue.total full and vr = Revenue.total rolled in
      if vr > vf +. (0.1 *. Float.max 1.0 vf) then
        Alcotest.failf "seed %d: rolled %.6f far above full %.6f" seed vr vf
    end
  done

(* ----- Algorithms registry ----- *)

let test_registry_names_and_parse () =
  List.iter
    (fun algo ->
      match Algorithms.parse (Algorithms.name algo) with
      | Some back when Algorithms.name back = Algorithms.name algo -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Algorithms.name algo))
    Algorithms.default_suite;
  (match Algorithms.parse "rlg:7" with
  | Some (Algorithms.Rl_greedy 7) -> ()
  | _ -> Alcotest.fail "rlg:7");
  Alcotest.(check bool) "unknown" true (Algorithms.parse "nope" = None)

let prop_registry_runs_all =
  QCheck2.Test.make ~name:"every registered algorithm returns a valid strategy" ~count:25 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      List.for_all
        (fun algo -> Strategy.is_valid (Algorithms.run algo inst ~seed))
        Algorithms.default_suite)

let () =
  Alcotest.run "greedy"
    [
      ( "g_greedy",
        [
          Alcotest.test_case "example 4 behaviour" `Quick test_gg_example4_avoids_negative_marginal;
          Alcotest.test_case "constraints (small)" `Quick test_gg_respects_constraints_small;
          QCheck_alcotest.to_alcotest prop_gg_always_valid;
          Alcotest.test_case "heap variants agree" `Slow test_gg_heap_variants_agree;
          Alcotest.test_case "variants identical strategies" `Slow
            test_gg_variants_identical_strategies;
          Alcotest.test_case "evaluators identical" `Slow test_gg_evaluators_identical;
          Alcotest.test_case "lazy vs eager" `Slow test_gg_lazy_eager_agree;
          Alcotest.test_case "eager+giant rejected" `Quick test_gg_eager_giant_rejected;
          Alcotest.test_case "CELF vs refresh-pair" `Slow test_gg_celf_vs_refresh_pair;
          QCheck_alcotest.to_alcotest prop_celf_matches_refresh_pair;
          Alcotest.test_case "giant purge pops" `Quick test_gg_giant_pops_ignore_blocked;
          QCheck_alcotest.to_alcotest prop_gg_never_below_optimum_check;
          QCheck_alcotest.to_alcotest prop_gg_trace_consistent;
          Alcotest.test_case "base and allowed" `Quick test_gg_base_and_allowed;
          QCheck_alcotest.to_alcotest prop_gg_budget_prefix;
          QCheck_alcotest.to_alcotest prop_gg_budget_trace_prefix;
          Alcotest.test_case "trace reports evaluations" `Quick test_trace_reports_evaluations;
          Alcotest.test_case "zero deadline truncates" `Quick test_zero_deadline_truncates;
          Alcotest.test_case "no budget never truncates" `Quick test_unbudgeted_never_truncates;
          Alcotest.test_case "local greedy budget" `Quick test_local_greedy_budget;
          Alcotest.test_case "exact budget anytime" `Quick test_exact_budget_anytime;
          Alcotest.test_case "marginal on empty strategy" `Quick
            test_marginal_on_empty_strategy_is_price_times_q;
          Alcotest.test_case "GG >= GG-No" `Slow test_globalno_never_beats_gg;
        ] );
      ( "local_greedy",
        [
          QCheck_alcotest.to_alcotest prop_slg_valid;
          QCheck_alcotest.to_alcotest prop_rlg_at_least_slg;
          Alcotest.test_case "order validation" `Quick test_order_validation;
          Alcotest.test_case "example 4 orders" `Quick test_reverse_order_beats_chrono_on_example4;
          Alcotest.test_case "RLG on example 4" `Quick test_rlg_finds_better_order_on_example4;
        ] );
      ( "baselines",
        [
          QCheck_alcotest.to_alcotest prop_baselines_valid;
          Alcotest.test_case "repeat all steps" `Quick test_baselines_repeat_all_steps;
          Alcotest.test_case "top_revenue ranking" `Quick test_top_revenue_ranking;
          Alcotest.test_case "top_rating uses ratings" `Quick test_top_rating_uses_ratings;
          Alcotest.test_case "capacity fallback" `Quick test_baselines_respect_capacity;
          Alcotest.test_case "GG beats baselines" `Slow test_gg_beats_baselines;
        ] );
      ( "exact",
        [
          Alcotest.test_case "brute force example 4" `Quick test_brute_force_example4;
          Alcotest.test_case "ground-set guard" `Quick test_brute_force_limit;
          QCheck_alcotest.to_alcotest prop_t1_exact_matches_brute_force;
          Alcotest.test_case "horizon guard" `Quick test_solve_t1_horizon_guard;
        ] );
      ( "rolling",
        [
          Alcotest.test_case "windows" `Quick test_windows;
          Alcotest.test_case "no cutoff = full" `Quick test_rolling_no_cutoff_equals_full;
          QCheck_alcotest.to_alcotest prop_rolling_valid;
          Alcotest.test_case "rolling <= full info" `Slow test_rolling_never_beats_full_information;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names and parse" `Quick test_registry_names_and_parse;
          QCheck_alcotest.to_alcotest prop_registry_runs_all;
        ] );
    ]
