module Rng = Revmax_prelude.Rng
module Util = Revmax_prelude.Util
module Summary = Revmax_prelude.Summary
module Table = Revmax_prelude.Table

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independence () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* the split stream must differ from the parent's continuation *)
  let xs = List.init 16 (fun _ -> Rng.int64 a) in
  let ys = List.init 16 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* Frozen regression vector: the exact first outputs of each stream from
   [split_n (create 2014) 4]. Any change to the splitting scheme breaks
   bit-identical parallel replay of recorded experiments, so it must fail
   this test loudly rather than slip through. *)
let test_rng_split_n_fixed_vector () =
  let expected =
    [|
      [| -222154820207809816L; -6699427474680733029L; 5999488019019728583L |];
      [| -1003571501047460538L; -19407928421901143L; -8743373286907793499L |];
      [| 6942381633699297496L; -4158942187869236374L; 396306503263995938L |];
      [| 1104322556368567664L; -848950122893573342L; 7047298098243484596L |];
    |]
  in
  let streams = Rng.split_n (Rng.create 2014) 4 in
  Alcotest.(check int) "stream count" 4 (Array.length streams);
  Array.iteri
    (fun i s ->
      Array.iteri
        (fun j v ->
          Alcotest.(check int64) (Printf.sprintf "stream %d output %d" i j) v (Rng.int64 s))
        expected.(i))
    streams;
  (match Rng.split_n (Rng.create 1) (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "split_n accepted a negative count");
  Alcotest.(check int) "split_n 0 is empty" 0 (Array.length (Rng.split_n (Rng.create 1) 0))

(* Statistical independence smoke test: sibling streams from [split_n]
   should look uncorrelated — per-stream means near 1/2 and pairwise
   sample correlations near zero. Thresholds are loose (4-sigma-ish for
   n = 4096) so the test is deterministic-stable, yet any accidental
   stream aliasing (correlation 1.0) fails immediately. *)
let test_rng_split_n_independence () =
  let k = 6 and n = 4096 in
  let streams = Rng.split_n (Rng.create 99) k in
  let samples = Array.map (fun s -> Array.init n (fun _ -> Rng.unit_float s)) streams in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let means = Array.map mean samples in
  Array.iteri
    (fun i m ->
      if Float.abs (m -. 0.5) > 0.02 then
        Alcotest.failf "stream %d mean %.4f drifts from 1/2" i m)
    means;
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let xi = samples.(i) and xj = samples.(j) in
      let mi = means.(i) and mj = means.(j) in
      let cov = ref 0.0 and vi = ref 0.0 and vj = ref 0.0 in
      for t = 0 to n - 1 do
        let di = xi.(t) -. mi and dj = xj.(t) -. mj in
        cov := !cov +. (di *. dj);
        vi := !vi +. (di *. di);
        vj := !vj +. (dj *. dj)
      done;
      let r = !cov /. sqrt (!vi *. !vj) in
      if Float.abs r > 0.07 then
        Alcotest.failf "streams %d,%d correlated: r = %.4f" i j r
    done
  done

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done;
  (* large bound path *)
  for _ = 1 to 1_000 do
    let v = Rng.int rng (1 lsl 40) in
    if v < 0 || v >= 1 lsl 40 then Alcotest.failf "out of range (large): %d" v
  done

let test_rng_int_uniformity () =
  let rng = Rng.create 3 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i c expected)
    counts

let test_unit_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.unit_float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "unit_float out of range: %f" v
  done

let test_gaussian_moments () =
  let rng = Rng.create 5 in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let s = Summary.of_array xs in
  Helpers.check_float ~eps:0.02 "gaussian mean" 0.0 s.Summary.mean;
  Helpers.check_float ~eps:0.02 "gaussian std" 1.0 s.Summary.std

let test_exponential_mean () =
  let rng = Rng.create 6 in
  let xs = Array.init 100_000 (fun _ -> Rng.exponential rng ~rate:2.0) in
  Helpers.check_float ~eps:0.02 "exponential mean" 0.5 (Util.mean xs)

let test_pareto_support () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.pareto rng ~alpha:2.0 ~x_min:3.0 in
    if v < 3.0 then Alcotest.failf "pareto below x_min: %f" v
  done

let test_shuffle_permutes () =
  let rng = Rng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" a sorted

let test_permutation_valid () =
  let rng = Rng.create 10 in
  let p = Rng.permutation rng 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 12 in
  (* dense and sparse paths *)
  List.iter
    (fun (n, k) ->
      let s = Rng.sample_without_replacement rng n k in
      Alcotest.(check int) "count" k (Array.length s);
      let tbl = Hashtbl.create k in
      Array.iter
        (fun v ->
          if v < 0 || v >= n then Alcotest.failf "out of range: %d" v;
          if Hashtbl.mem tbl v then Alcotest.failf "duplicate: %d" v;
          Hashtbl.add tbl v ())
        s)
    [ (10, 8); (1000, 5); (5, 5); (7, 0) ]

let test_bernoulli_frequency () =
  let rng = Rng.create 13 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  Helpers.check_float ~eps:0.01 "bernoulli(0.3)" 0.3 (float_of_int !hits /. float_of_int n)

let test_clamp () =
  Helpers.check_float "below" 0.0 (Util.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  Helpers.check_float "above" 1.0 (Util.clamp ~lo:0.0 ~hi:1.0 7.0);
  Helpers.check_float "inside" 0.5 (Util.clamp ~lo:0.0 ~hi:1.0 0.5)

let test_sum_floats_kahan () =
  (* naive summation loses the small additions; Kahan keeps them *)
  let a = Array.make 10_001 1e-8 in
  a.(0) <- 1e8;
  let expected = 1e8 +. (1e-8 *. 10_000.0) in
  Helpers.check_float ~eps:1e-12 "kahan sum" expected (Util.sum_floats a)

let test_argmax () =
  let a = [| 3.0; 9.0; 2.0; 9.0 |] in
  Alcotest.(check int) "first max" 1 (Util.argmax Fun.id a);
  Alcotest.check_raises "empty" (Invalid_argument "Util.argmax: empty array") (fun () ->
      ignore (Util.argmax Fun.id [||]))

let test_top_k_by () =
  let a = [| 5; 1; 9; 3; 7 |] in
  let top = Util.top_k_by 3 float_of_int a in
  Alcotest.(check (array int)) "top 3 desc" [| 9; 7; 5 |] top;
  let all = Util.top_k_by 10 float_of_int a in
  Alcotest.(check int) "short array" 5 (Array.length all)

let test_summary () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Helpers.check_float "mean" 3.0 s.Summary.mean;
  Helpers.check_float "median" 3.0 s.Summary.median;
  Helpers.check_float "min" 1.0 s.Summary.min;
  Helpers.check_float "max" 5.0 s.Summary.max;
  Helpers.check_float ~eps:1e-9 "std" (sqrt 2.5) s.Summary.std

let test_quantile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  Helpers.check_float "q25" 2.5 (Summary.quantile sorted 0.25);
  Helpers.check_float "q50" 5.0 (Summary.quantile sorted 0.5)

let test_histogram () =
  let h = Summary.histogram ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "low bin" 2 c0;
  Alcotest.(check int) "high bin" 2 c1

module Budget = Revmax_prelude.Budget

let check_float_near msg expected actual =
  if Float.abs (expected -. actual) > 1e-6 then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* Replay a controlled wall-clock sequence through the monotonic-elapsed
   wrapper: backward steps (NTP corrections) must contribute zero elapsed
   time, so a deadline can neither be extended by a backward jump nor kept
   from ever firing. The mocked source returns the scripted samples and
   then keeps repeating the last one. *)
let with_mock_clock samples f =
  let remaining = ref samples in
  let last = ref (List.hd samples) in
  Budget.set_time_source_for_tests
    (Some
       (fun () ->
         (match !remaining with
         | [] -> ()
         | x :: rest ->
             last := x;
             remaining := rest);
         !last));
  Fun.protect ~finally:(fun () -> Budget.set_time_source_for_tests None) f

let test_budget_monotonic_backward_clamp () =
  (* samples consumed: one per monotonic_now call *)
  with_mock_clock
    [ 1000.0; (* create: deadline = now_mono + 5 *)
      990.0; (* NTP step 10s backward: elapsed clamps to 0 *)
      992.0; (* 2s after the step: 2s elapsed *)
      994.0; (* 4s elapsed: still inside the deadline *)
      995.5 (* 5.5s elapsed: expired *) ]
    (fun () ->
      let b = Budget.create ~wall_seconds:5.0 () in
      Alcotest.(check bool) "backward jump does not expire" false (Budget.exhausted b);
      Alcotest.(check bool) "2s elapsed: alive" false (Budget.exhausted b);
      Alcotest.(check bool) "4s elapsed: alive" false (Budget.exhausted b);
      Alcotest.(check bool) "5.5s elapsed: expired" true (Budget.exhausted b))

let test_budget_monotonic_no_extension () =
  (* Under raw wall-clock deadlines a backward jump extends every deadline
     by the jump size; on the elapsed scale remaining time never grows. *)
  with_mock_clock
    [ 2000.0; (* create: 3s budget *)
      2001.0; (* 1s elapsed: remaining 2 *)
      1500.0; (* 501s backward: remaining must NOT become ~503 *)
      1500.5; (* 0.5s later *)
      1502.0 (* a further 1.5s: total elapsed 3 -> expired *) ]
    (fun () ->
      let b = Budget.create ~wall_seconds:3.0 () in
      let r1 = Option.get (Budget.remaining_seconds b) in
      check_float_near "1s elapsed" 2.0 r1;
      let r2 = Option.get (Budget.remaining_seconds b) in
      Alcotest.(check bool)
        (Printf.sprintf "backward jump must not extend (remaining %.3f)" r2)
        true (r2 <= r1 +. 1e-9);
      let r3 = Option.get (Budget.remaining_seconds b) in
      check_float_near "0.5s later" 1.5 r3;
      Alcotest.(check bool) "3s total elapsed: expired" true (Budget.exhausted b))

let test_budget_monotonic_advances () =
  let t0 = Budget.monotonic_now () in
  let t1 = Budget.monotonic_now () in
  Alcotest.(check bool) "never decreases" true (t1 >= t0)

let contains_substring haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_floats t ~label:"beta" [ 2.5 ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (contains_substring s "name");
  Alcotest.(check bool) "contains alpha" true (contains_substring s "alpha");
  Alcotest.(check bool) "contains beta row" true (contains_substring s "2.5")

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "split_n fixed vector" `Quick test_rng_split_n_fixed_vector;
          Alcotest.test_case "split_n independence" `Slow test_rng_split_n_independence;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniformity;
          Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
          Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "pareto support" `Quick test_pareto_support;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "permutation valid" `Quick test_permutation_valid;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "bernoulli frequency" `Slow test_bernoulli_frequency;
        ] );
      ( "util",
        [
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "kahan sum" `Quick test_sum_floats_kahan;
          Alcotest.test_case "argmax" `Quick test_argmax;
          Alcotest.test_case "top_k_by" `Quick test_top_k_by;
        ] );
      ( "summary",
        [
          Alcotest.test_case "summary stats" `Quick test_summary;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "budget",
        [
          Alcotest.test_case "monotonic: backward jump clamps" `Quick
            test_budget_monotonic_backward_clamp;
          Alcotest.test_case "monotonic: backward jump never extends" `Quick
            test_budget_monotonic_no_extension;
          Alcotest.test_case "monotonic: never decreases" `Quick test_budget_monotonic_advances;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
