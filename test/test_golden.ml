(* Golden-trace conformance: four small pinned instances with the expected
   revenue and the exact selection trace of G-Greedy, SL-Greedy and the
   brute-force optimum, frozen under test/golden/*.golden. Any behavior
   change in the solvers shows up as a readable field-by-field diff.

   After an intentional change, regenerate the fixtures with

     REVMAX_BLESS=1 REVMAX_GOLDEN_DIR=test/golden dune exec test/test_golden.exe

   from the repository root and review the diff like any other code
   change. *)

module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Local_greedy = Revmax.Local_greedy
module Exact = Revmax.Exact
open Helpers

(* ----- the pinned instances ----- *)

(* Two handcrafted instances from the paper and two pinned micro instances
   with real capacity/display contention, all small enough for the
   brute-force optimum. Every number is written out, so the fixtures are
   frozen independently of any generator. *)

(* 2 users fighting over a capacity-1 item of a shared class *)
let two_user_tight () =
  Instance.create ~num_users:2 ~num_items:2 ~horizon:2 ~display_limit:1 ~class_of:[| 0; 0 |]
    ~capacity:[| 1; 2 |] ~saturation:[| 0.4; 0.8 |]
    ~price:[| [| 5.0; 4.0 |]; [| 3.0; 6.0 |] |]
    ~adoption:
      [
        (0, 0, [| 0.6; 0.3 |]);
        (0, 1, [| 0.2; 0.5 |]);
        (1, 0, [| 0.5; 0.7 |]);
        (1, 1, [| 0.4; 0.1 |]);
      ]
    ()

(* 3 users, 3 items in 2 classes, k = 2: display slots and capacities both
   bind, and the class memory couples items 0 and 2 *)
let three_user_mixed () =
  Instance.create ~num_users:3 ~num_items:3 ~horizon:2 ~display_limit:2 ~class_of:[| 0; 1; 0 |]
    ~capacity:[| 1; 2; 2 |] ~saturation:[| 0.3; 0.9; 0.6 |]
    ~price:[| [| 2.0; 7.0 |]; [| 4.0; 4.5 |]; [| 6.0; 1.0 |] |]
    ~adoption:
      [
        (0, 0, [| 0.8; 0.1 |]);
        (0, 1, [| 0.3; 0.6 |]);
        (1, 1, [| 0.5; 0.5 |]);
        (1, 2, [| 0.7; 0.2 |]);
        (2, 0, [| 0.4; 0.4 |]);
        (2, 2, [| 0.1; 0.9 |]);
      ]
    ()

(* the constraint-variant fixtures: the same pinned instances with a
   position-decayed slate (k = 2, geometric 0.6) and with a global
   quantity budget of 2, freezing the slot-scaled marginals and the
   cap-bounded selection through every solver *)
let three_user_slate () = Instance.with_slate (three_user_mixed ()) [| 1.0; 0.6 |]

let two_user_budget () = Instance.with_max_total (two_user_tight ()) 2

let fixtures =
  [
    ("example4", fun () -> example4_instance ());
    ("example1-a07", fun () -> example1_instance 0.7);
    ("two-user-tight", two_user_tight);
    ("three-user-mixed", three_user_mixed);
    ("three-user-slate", three_user_slate);
    ("two-user-budget", two_user_budget);
  ]

(* ----- rendering: one "key value" line per frozen fact ----- *)

let triple_str (z : Triple.t) = Printf.sprintf "%d,%d,%d" z.u z.i z.t

let trace_str zs = match zs with [] -> "-" | _ -> String.concat " " (List.map triple_str zs)

let render ?(lazy_policy = `Celf) name inst =
  let buf = Buffer.create 512 in
  let line key value = Buffer.add_string buf (Printf.sprintf "%s %s\n" key value) in
  Buffer.add_string buf (Printf.sprintf "# golden trace fixture %s (do not edit: bless)\n" name);
  line "instance.users" (string_of_int (Instance.num_users inst));
  line "instance.triples" (string_of_int (Instance.num_candidate_triples inst));
  let traced run =
    let order = ref [] in
    let s, _ = run ~trace:(fun (pt : Greedy.trace_point) -> order := pt.z :: !order) in
    (s, List.rev !order)
  in
  let gg, gg_trace = traced (fun ~trace -> Greedy.run ~lazy_policy ~trace inst) in
  line "gg.revenue" (Printf.sprintf "%.12g" (Revenue.total gg));
  line "gg.trace" (trace_str gg_trace);
  let slg, slg_trace = traced (fun ~trace -> Local_greedy.sl_greedy ~trace inst) in
  line "slg.revenue" (Printf.sprintf "%.12g" (Revenue.total slg));
  line "slg.trace" (trace_str slg_trace);
  let opt_s, opt_v = Exact.brute_force inst in
  line "exact.revenue" (Printf.sprintf "%.12g" opt_v);
  (* the optimum is a set, not a sequence: freeze its sorted selection *)
  line "exact.selection" (trace_str (List.sort Triple.compare (Strategy.to_list opt_s)));
  Buffer.contents buf

(* ----- fixture files ----- *)

let golden_dir () = Option.value (Sys.getenv_opt "REVMAX_GOLDEN_DIR") ~default:"golden"

let fixture_path name = Filename.concat (golden_dir ()) (name ^ ".golden")

let bless_requested () =
  match Sys.getenv_opt "REVMAX_BLESS" with Some ("1" | "true" | "yes") -> true | _ -> false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* key → value map of the non-comment lines, preserving order *)
let parse content =
  String.split_on_char '\n' content
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" || l.[0] = '#' then None
         else
           match String.index_opt l ' ' with
           | Some i ->
               Some (String.sub l 0 i, String.trim (String.sub l (i + 1) (String.length l - i - 1)))
           | None -> Some (l, ""))

let diff ~expected ~actual =
  let exp = parse expected and act = parse actual in
  let keys = List.sort_uniq compare (List.map fst exp @ List.map fst act) in
  List.filter_map
    (fun key ->
      match (List.assoc_opt key exp, List.assoc_opt key act) with
      | Some e, Some a when e = a -> None
      | Some e, Some a -> Some (Printf.sprintf "  %s:\n    expected %s\n    got      %s" key e a)
      | Some e, None -> Some (Printf.sprintf "  %s:\n    expected %s\n    got      (missing)" key e)
      | None, Some a -> Some (Printf.sprintf "  %s:\n    (new key)\n    got      %s" key a)
      | None, None -> None)
    keys

let check_fixture name build () =
  let actual = render name (build ()) in
  let path = fixture_path name in
  if bless_requested () then begin
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc actual);
    Printf.printf "blessed %s\n" path
  end
  else if not (Sys.file_exists path) then
    Alcotest.failf
      "golden fixture %s is missing; generate it with\n\
      \  REVMAX_BLESS=1 REVMAX_GOLDEN_DIR=test/golden dune exec test/test_golden.exe" path
  else begin
    (match diff ~expected:(read_file path) ~actual with
    | [] -> ()
    | mismatches ->
        Alcotest.failf
          "golden trace %s diverged:\n\
           %s\n\
           If the change is intentional, re-bless with\n\
          \  REVMAX_BLESS=1 REVMAX_GOLDEN_DIR=test/golden dune exec test/test_golden.exe" name
          (String.concat "\n" mismatches));
    (* the CELF policy contract: the fixture must be byte-identical under
       the historical whole-pair refresh as well *)
    let actual_rp = render ~lazy_policy:`Refresh_pair name (build ()) in
    if actual_rp <> actual then
      Alcotest.failf "golden trace %s differs between lazy policies:\n%s" name
        (String.concat "\n" (diff ~expected:actual ~actual:actual_rp))
  end

(* The same fixtures, re-run with the instance routed through a pack file
   and opened memory-mapped. The mapped backend stores and reads back the
   exact IEEE doubles, so the traces must match the {e existing} fixture
   byte-for-byte — there is deliberately no bless path here: a divergence
   means the mmap backend broke, never that the fixture needs updating. *)
let check_fixture_mmap name build () =
  let path = Filename.temp_file "golden" ".pack" in
  let inst =
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Instance.pack_to_file (build ()) path;
        Instance.of_mmap path)
  in
  let fixture = fixture_path name in
  if not (Sys.file_exists fixture) then
    Alcotest.failf "golden fixture %s is missing (bless via the heap suite first)" fixture
  else
    match diff ~expected:(read_file fixture) ~actual:(render name inst) with
    | [] -> ()
    | mismatches ->
        Alcotest.failf "mmap-backed trace %s diverged from the heap fixture:\n%s" name
          (String.concat "\n" mismatches)

let () =
  Alcotest.run "golden"
    [
      ( "golden-traces",
        List.map
          (fun (name, build) -> Alcotest.test_case name `Quick (check_fixture name build))
          fixtures );
      ( "golden-traces-mmap",
        List.map
          (fun (name, build) -> Alcotest.test_case name `Quick (check_fixture_mmap name build))
          fixtures );
    ]
