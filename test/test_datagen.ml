module Rng = Revmax_prelude.Rng
module Distribution = Revmax_stats.Distribution
module Catalog = Revmax_datagen.Catalog
module Price_model = Revmax_datagen.Price_model
module Valuation = Revmax_datagen.Valuation
module Ratings_gen = Revmax_datagen.Ratings_gen
module Pipeline = Revmax_datagen.Pipeline
module Amazon_like = Revmax_datagen.Amazon_like
module Epinions_like = Revmax_datagen.Epinions_like
module Scalability = Revmax_datagen.Scalability
module Ratings = Revmax_mf.Ratings
module Instance = Revmax.Instance
open Helpers

(* ----- Catalog ----- *)

let test_zipf_classes_dense_and_skewed () =
  let rng = Rng.create 1 in
  let a = Catalog.zipf_classes ~num_items:1000 ~num_classes:20 rng in
  let sizes = Catalog.class_sizes a in
  Alcotest.(check int) "dense class ids" 20 (Array.length sizes);
  Array.iteri (fun c s -> if s < 1 then Alcotest.failf "class %d empty" c) sizes;
  Alcotest.(check int) "sizes sum to items" 1000 (Array.fold_left ( + ) 0 sizes);
  let sorted = Array.copy sizes in
  Array.sort compare sorted;
  Alcotest.(check bool) "skew: max far above median" true
    (sorted.(19) > 3 * sorted.(10))

let test_uniform_classes_balanced () =
  let rng = Rng.create 2 in
  let a = Catalog.uniform_classes ~num_items:100 ~num_classes:10 rng in
  let sizes = Catalog.class_sizes a in
  Array.iter (fun s -> Alcotest.(check int) "balanced" 10 s) sizes

let test_singleton_classes () =
  let a = Catalog.singleton_classes ~num_items:5 in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3; 4 |] a

let test_catalog_validation () =
  Alcotest.check_raises "too many classes"
    (Invalid_argument "Catalog: need num_items >= num_classes >= 1") (fun () ->
      ignore (Catalog.zipf_classes ~num_items:3 ~num_classes:5 (Rng.create 0)))

(* ----- Price model ----- *)

let test_amazon_series_shape () =
  let rng = Rng.create 3 in
  let s = Price_model.amazon_series ~base:100.0 ~days:62 rng in
  Alcotest.(check int) "62 days" 62 (Array.length s.Price_model.daily);
  Array.iter (fun p -> if p <= 0.0 then Alcotest.failf "non-positive price %f" p) s.Price_model.daily;
  (* mean reversion keeps the series within a plausible band of the base *)
  Array.iter
    (fun p ->
      if p < 100.0 /. 3.0 || p > 300.0 then Alcotest.failf "price %f strayed from base 100" p)
    s.Price_model.daily

let test_amazon_series_fluctuates () =
  let rng = Rng.create 4 in
  let s = Price_model.amazon_series ~base:50.0 ~days:62 rng in
  let distinct = List.sort_uniq compare (Array.to_list s.Price_model.daily) in
  Alcotest.(check bool) "prices change over time" true (List.length distinct > 30)

let test_window () =
  let rng = Rng.create 5 in
  let s = Price_model.amazon_series ~base:10.0 ~days:20 rng in
  let w = Price_model.window s ~start:3 ~len:7 in
  Alcotest.(check int) "window length" 7 (Array.length w);
  check_float "window content" s.Price_model.daily.(3) w.(0);
  Alcotest.check_raises "window bounds" (Invalid_argument "Price_model.window: out of range")
    (fun () -> ignore (Price_model.window s ~start:15 ~len:7))

let test_reported_prices () =
  let rng = Rng.create 6 in
  let ps = Price_model.reported_prices ~base:30.0 ~count:40 rng in
  Alcotest.(check int) "count" 40 (Array.length ps);
  Array.iter (fun p -> if p <= 0.0 then Alcotest.fail "non-positive report") ps;
  let mean = Revmax_prelude.Util.mean ps in
  Alcotest.(check bool) "centred near base" true (mean > 20.0 && mean < 45.0)

let test_uniform_series_support () =
  let rng = Rng.create 7 in
  let s = Price_model.uniform_series ~x:10.0 ~days:100 rng in
  Array.iter
    (fun p -> if p < 10.0 || p > 20.0 then Alcotest.failf "price %f outside [x, 2x]" p)
    s.Price_model.daily

(* ----- Valuation link ----- *)

let test_adoption_probability_anti_monotone () =
  let valuation = Distribution.Gaussian { mean = 50.0; sigma = 10.0 } in
  let q p = Valuation.adoption_probability ~valuation ~rating:4.0 ~r_max:5.0 ~price:p in
  Alcotest.(check bool) "q(40) > q(60)" true (q 40.0 > q 60.0);
  Alcotest.(check bool) "q in [0,1]" true (q 40.0 <= 1.0 && q 90.0 >= 0.0);
  check_float ~eps:1e-6 "at the mean price: sf = 1/2, scaled by rating" (0.5 *. 0.8) (q 50.0)

let test_adoption_probability_rating_scaling () =
  let valuation = Distribution.Uniform { lo = 0.0; hi = 100.0 } in
  let q r = Valuation.adoption_probability ~valuation ~rating:r ~r_max:5.0 ~price:50.0 in
  check_float "zero rating" 0.0 (q 0.0);
  check_float ~eps:1e-9 "full rating" 0.5 (q 5.0);
  check_float ~eps:1e-9 "rating clamped" 0.5 (q 9.0)

(* ----- Ratings generator ----- *)

let test_ratings_gen_shape () =
  let rng = Rng.create 8 in
  let r = Ratings_gen.generate ~num_users:200 ~num_items:50 rng in
  Alcotest.(check int) "users" 200 (Ratings.num_users r);
  Alcotest.(check int) "items" 50 (Ratings.num_items r);
  Alcotest.(check bool) "every user rated something" true
    (Array.for_all
       (fun u -> Array.length (Ratings.by_user r u) >= 1)
       (Array.init 200 (fun u -> u)));
  let lo, hi = Ratings.value_range r in
  Alcotest.(check bool) "range" true (lo >= 1.0 && hi <= 5.0)

let test_ratings_gen_no_duplicates () =
  let rng = Rng.create 9 in
  let r = Ratings_gen.generate ~num_users:50 ~num_items:30 rng in
  for u = 0 to 49 do
    let items = Array.map (fun (o : Ratings.observation) -> o.item) (Ratings.by_user r u) in
    let uniq = List.sort_uniq compare (Array.to_list items) in
    Alcotest.(check int)
      (Printf.sprintf "user %d no duplicates" u)
      (Array.length items) (List.length uniq)
  done

let test_ratings_gen_popularity_skew () =
  let rng = Rng.create 10 in
  let r =
    Ratings_gen.generate
      ~config:{ Ratings_gen.default_config with ratings_per_user = 10.0; popularity_exponent = 1.2 }
      ~num_users:500 ~num_items:100 rng
  in
  let counts = Array.make 100 0 in
  Array.iter (fun (o : Ratings.observation) -> counts.(o.item) <- counts.(o.item) + 1)
    (Ratings.observations r);
  let sorted = Array.copy counts in
  Array.sort compare sorted;
  Alcotest.(check bool) "most popular far above median" true
    (sorted.(99) > 3 * max 1 sorted.(50))

(* ----- Pipeline.instantiate ----- *)

let tiny_prepared () =
  Amazon_like.prepare
    ~scale:
      {
        Amazon_like.num_users = 40;
        num_items = 30;
        num_classes = 6;
        top_n = 10;
        horizon = 5;
        crawl_days = 20;
        ratings_per_user = 8.0;
      }
    ~seed:11 ()

let test_instantiate_basic () =
  let prepared = tiny_prepared () in
  let inst =
    Pipeline.instantiate ~capacity:(Pipeline.Cap_fixed 7) ~beta:(Pipeline.Beta_fixed 0.5) ~seed:1
      prepared
  in
  Alcotest.(check int) "users" 40 (Instance.num_users inst);
  Alcotest.(check int) "items" 30 (Instance.num_items inst);
  Alcotest.(check int) "horizon" 5 (Instance.horizon inst);
  Alcotest.(check int) "default display limit" 5 (Instance.display_limit inst);
  for i = 0 to 29 do
    Alcotest.(check int) "fixed capacity" 7 (Instance.capacity inst i);
    check_float "fixed beta" 0.5 (Instance.saturation inst i)
  done

let test_instantiate_singleton_classes () =
  let prepared = tiny_prepared () in
  let inst =
    Pipeline.instantiate ~singleton_classes:true ~capacity:(Pipeline.Cap_fixed 3)
      ~beta:Pipeline.Beta_uniform ~seed:2 prepared
  in
  Alcotest.(check int) "one class per item" 30 (Instance.num_classes inst);
  for i = 0 to 29 do
    Alcotest.(check int) "class size 1" 1 (Instance.class_size inst (Instance.class_of inst i))
  done

let test_instantiate_capacity_specs () =
  let prepared = tiny_prepared () in
  List.iter
    (fun spec ->
      let inst = Pipeline.instantiate ~capacity:spec ~beta:Pipeline.Beta_uniform ~seed:3 prepared in
      for i = 0 to Instance.num_items inst - 1 do
        if Instance.capacity inst i < 1 then Alcotest.fail "capacity below 1"
      done)
    [
      Pipeline.Cap_gaussian { mean = 10.0; sigma = 3.0 };
      Pipeline.Cap_exponential { mean = 10.0 };
      Pipeline.Cap_power { alpha = 2.0; x_min = 4.0 };
      Pipeline.Cap_uniform { lo = 2; hi = 9 };
    ]

let test_instantiate_deterministic () =
  let prepared = tiny_prepared () in
  let mk () =
    Pipeline.instantiate
      ~capacity:(Pipeline.Cap_gaussian { mean = 8.0; sigma = 2.0 })
      ~beta:Pipeline.Beta_uniform ~seed:7 prepared
  in
  let a = mk () and b = mk () in
  for i = 0 to Instance.num_items a - 1 do
    Alcotest.(check int) "same capacities" (Instance.capacity a i) (Instance.capacity b i);
    check_float "same betas" (Instance.saturation a i) (Instance.saturation b i)
  done

(* ----- Dataset builders ----- *)

let test_amazon_like_prepared () =
  let p = tiny_prepared () in
  Alcotest.(check string) "name" "Amazon" p.Pipeline.name;
  Alcotest.(check int) "price rows" 30 (Array.length p.Pipeline.price);
  Array.iter
    (fun row -> Alcotest.(check int) "price row length" 5 (Array.length row))
    p.Pipeline.price;
  (* candidates: 10 per user *)
  Alcotest.(check int) "candidate rows" (40 * 10) (List.length p.Pipeline.adoption);
  List.iter
    (fun (_, _, qs) ->
      Array.iter (fun q -> if q < 0.0 || q > 1.0 then Alcotest.fail "q outside [0,1]") qs)
    p.Pipeline.adoption;
  Alcotest.(check int) "stats row has 9 cells" 9 (List.length (Pipeline.stats_row p))

let test_amazon_like_q_anti_monotone_in_price () =
  (* same (u,i): the time step with the lower price cannot have a lower q *)
  let p = tiny_prepared () in
  List.iter
    (fun (_u, i, qs) ->
      let prices = p.Pipeline.price.(i) in
      Array.iteri
        (fun t1 q1 ->
          Array.iteri
            (fun t2 q2 ->
              if prices.(t1) < prices.(t2) -. 1e-9 && q1 < q2 -. 1e-9 then
                Alcotest.failf "q not anti-monotone: p %.3f<%.3f but q %.5f<%.5f" prices.(t1)
                  prices.(t2) q1 q2)
            qs)
        qs)
    (Revmax_prelude.Util.take 50 p.Pipeline.adoption)

let test_epinions_like_prepared () =
  let p =
    Epinions_like.prepare
      ~scale:
        {
          Epinions_like.num_users = 40;
          num_items = 25;
          num_classes = 8;
          top_n = 10;
          horizon = 5;
          reports_min = 10;
          reports_max = 20;
          ratings_per_user = 1.6;
        }
      ~seed:12 ()
  in
  Alcotest.(check string) "name" "Epinions" p.Pipeline.name;
  Array.iter
    (fun row -> Array.iter (fun price -> if price < 1.0 then Alcotest.fail "price floor") row)
    p.Pipeline.price;
  (* ultra sparse: ratings per user stays small *)
  Alcotest.(check bool) "sparse" true (Ratings.num_ratings p.Pipeline.source_ratings < 40 * 6)

(* ----- Scalability dataset ----- *)

let small_scal_config =
  {
    Scalability.default_config with
    Scalability.num_users = 50;
    num_items = 100;
    num_classes = 10;
    items_per_user = 20;
    horizon = 5;
  }

let test_scalability_shape () =
  let inst = Scalability.generate small_scal_config ~seed:13 in
  Alcotest.(check int) "users" 50 (Instance.num_users inst);
  Alcotest.(check int) "items" 100 (Instance.num_items inst);
  Alcotest.(check int) "horizon" 5 (Instance.horizon inst);
  let expected_max = 50 * 20 * 5 in
  let triples = Instance.num_candidate_triples inst in
  Alcotest.(check bool) "close to 100·T·|U| candidates" true
    (triples <= expected_max && triples > expected_max / 2)

let test_scalability_prices_in_band () =
  let inst = Scalability.generate small_scal_config ~seed:14 in
  for i = 0 to 99 do
    let p1 = Instance.price inst ~i ~time:1 in
    for t = 1 to 5 do
      let p = Instance.price inst ~i ~time:t in
      if p < 10.0 || p > 1000.0 then Alcotest.failf "price %f outside global band" p;
      (* all prices of an item lie within a factor 2 of each other *)
      if p > (2.0 *. p1) +. 1e-6 || p1 > (2.0 *. p) +. 1e-6 then Alcotest.fail "band violated"
    done
  done

let test_scalability_anti_monotone_matching () =
  let inst = Scalability.generate small_scal_config ~seed:15 in
  (* per §6: probabilities are matched to prices anti-monotonically *)
  for u = 0 to 4 do
    Array.iter
      (fun (i, qs) ->
        Array.iteri
          (fun t1 q1 ->
            Array.iteri
              (fun t2 q2 ->
                let p1 = Instance.price inst ~i ~time:(t1 + 1) in
                let p2 = Instance.price inst ~i ~time:(t2 + 1) in
                if p1 < p2 -. 1e-9 && q1 < q2 -. 1e-9 then
                  Alcotest.fail "anti-monotone matching violated")
              qs)
          qs)
      (Instance.candidates inst u)
  done

let test_scalability_with_users_rescales () =
  let c = Scalability.with_users small_scal_config 500 in
  Alcotest.(check int) "users updated" 500 c.Scalability.num_users;
  match c.Scalability.capacity with
  | Pipeline.Cap_gaussian { mean; _ } -> Alcotest.(check bool) "capacity rescaled" true (mean > 50.0)
  | _ -> Alcotest.fail "expected Gaussian capacity"

let test_scalability_variant_knobs_draw_invariant () =
  (* with_slate / with_quantity_fraction attach after every RNG draw, so
     the variant instance shares each sampled value with the plain one,
     and the streaming pack writer carries the knobs in its header *)
  let mult = [| 1.0; 0.8; 0.6; 0.4; 0.2 |] in
  let c =
    Scalability.with_quantity_fraction (Scalability.with_slate small_scal_config mult) 0.25
  in
  let plain = Scalability.generate small_scal_config ~seed:16 in
  let variant = Scalability.generate c ~seed:16 in
  (* 0.25 · 50·5·5 = 312.5, Float.round half-away-from-zero *)
  Alcotest.(check (option int)) "cap = round(frac · |U|·T·k)" (Some 313)
    (Instance.max_total variant);
  (match Instance.slot_multipliers variant with
  | Some m when m = mult -> ()
  | _ -> Alcotest.fail "slate multipliers not attached");
  Alcotest.(check int) "same candidate count" (Instance.num_candidate_triples plain)
    (Instance.num_candidate_triples variant);
  for i = 0 to 99 do
    if Instance.saturation plain i <> Instance.saturation variant i then
      Alcotest.failf "saturation %d drifted under the knobs" i
  done;
  let path = Filename.temp_file "revmax-datagen" ".pack" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Scalability.generate_pack c ~seed:16 ~path;
      let mapped = Instance.of_mmap path in
      Alcotest.(check (option int)) "pack carries the cap" (Instance.max_total variant)
        (Instance.max_total mapped);
      (match Instance.slot_multipliers mapped with
      | Some m when m = mult -> ()
      | _ -> Alcotest.fail "pack dropped the slate multipliers");
      Alcotest.(check int) "pack carries the same candidates"
        (Instance.num_candidate_triples variant)
        (Instance.num_candidate_triples mapped));
  match Scalability.with_quantity_fraction small_scal_config 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fraction above 1 should be rejected"

let test_table1_row_shape () =
  let row = Scalability.table1_row small_scal_config ~seed:16 in
  Alcotest.(check int) "9 cells" 9 (List.length row);
  Alcotest.(check string) "label" "Synthetic" (List.hd row)

let () =
  Alcotest.run "datagen"
    [
      ( "catalog",
        [
          Alcotest.test_case "zipf skew" `Quick test_zipf_classes_dense_and_skewed;
          Alcotest.test_case "uniform balance" `Quick test_uniform_classes_balanced;
          Alcotest.test_case "singleton" `Quick test_singleton_classes;
          Alcotest.test_case "validation" `Quick test_catalog_validation;
        ] );
      ( "price_model",
        [
          Alcotest.test_case "amazon shape" `Quick test_amazon_series_shape;
          Alcotest.test_case "amazon fluctuates" `Quick test_amazon_series_fluctuates;
          Alcotest.test_case "window" `Quick test_window;
          Alcotest.test_case "reported prices" `Quick test_reported_prices;
          Alcotest.test_case "uniform support" `Quick test_uniform_series_support;
        ] );
      ( "valuation",
        [
          Alcotest.test_case "anti-monotone in price" `Quick test_adoption_probability_anti_monotone;
          Alcotest.test_case "rating scaling" `Quick test_adoption_probability_rating_scaling;
        ] );
      ( "ratings_gen",
        [
          Alcotest.test_case "shape" `Quick test_ratings_gen_shape;
          Alcotest.test_case "no duplicates" `Quick test_ratings_gen_no_duplicates;
          Alcotest.test_case "popularity skew" `Quick test_ratings_gen_popularity_skew;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "instantiate basics" `Slow test_instantiate_basic;
          Alcotest.test_case "singleton classes" `Slow test_instantiate_singleton_classes;
          Alcotest.test_case "capacity specs" `Slow test_instantiate_capacity_specs;
          Alcotest.test_case "deterministic" `Slow test_instantiate_deterministic;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "amazon-like prepared" `Slow test_amazon_like_prepared;
          Alcotest.test_case "amazon-like anti-monotone" `Slow test_amazon_like_q_anti_monotone_in_price;
          Alcotest.test_case "epinions-like prepared" `Slow test_epinions_like_prepared;
        ] );
      ( "scalability",
        [
          Alcotest.test_case "shape" `Quick test_scalability_shape;
          Alcotest.test_case "prices in band" `Quick test_scalability_prices_in_band;
          Alcotest.test_case "anti-monotone matching" `Quick test_scalability_anti_monotone_matching;
          Alcotest.test_case "with_users rescale" `Quick test_scalability_with_users_rescales;
          Alcotest.test_case "variant knobs are draw-invariant and pack" `Quick
            test_scalability_variant_knobs_draw_invariant;
          Alcotest.test_case "table1 row" `Quick test_table1_row_shape;
        ] );
    ]
