(* Fault-injection suite for the resilience layer (PR 2).

   A spec-level corruptor mutates well-formed instance specifications before
   they reach [Instance.create_checked]; the metamorphic property is that the
   identity corruption is accepted while every named corruption is rejected
   with a structured [Err.Invalid_instance] naming the corrupted field — and
   that no corruption ever escapes as an untyped exception. File-level
   corruptions (truncation, garbling, byte flips) are checked against
   [Io.load_instance_result], harness faults against [Runner.guarded], and
   checkpoint faults (corrupt records, metadata drift, SIGKILL mid-run)
   against [Checkpoint]. *)

module Rng = Revmax_prelude.Rng
module Err = Revmax_prelude.Err
module Util = Revmax_prelude.Util
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Io = Revmax.Io
module Algorithms = Revmax.Algorithms
module Runner = Revmax_experiments.Runner
module Checkpoint = Revmax_experiments.Checkpoint
open Helpers

(* ------------------------------------------------------------------ *)
(* Spec-level corruptor                                                *)
(* ------------------------------------------------------------------ *)

(* The raw arguments of [Instance.create_checked], kept mutable-friendly so a
   corruption can damage them before construction. *)
type spec = {
  num_users : int;
  num_items : int;
  horizon : int;
  display_limit : int;
  class_of : int array;
  capacity : int array;
  saturation : float array;
  price : float array array;
  adoption : (int * int * float array) list;
}

let copy_spec s =
  {
    s with
    class_of = Array.copy s.class_of;
    capacity = Array.copy s.capacity;
    saturation = Array.copy s.saturation;
    price = Array.map Array.copy s.price;
    adoption = List.map (fun (u, i, qs) -> (u, i, Array.copy qs)) s.adoption;
  }

(* Mirrors Helpers.random_instance, but keeps the raw arrays; always yields at
   least one adoption entry so every corruption has something to damage. *)
let random_spec rng =
  let num_users = 1 + Rng.int rng 3 in
  let num_items = 1 + Rng.int rng 4 in
  let horizon = 1 + Rng.int rng 3 in
  let num_classes = 1 + Rng.int rng (min 2 num_items) in
  let class_of =
    Array.init num_items (fun i -> if i < num_classes then i else Rng.int rng num_classes)
  in
  let capacity = Array.init num_items (fun _ -> 1 + Rng.int rng num_users) in
  let saturation = Array.init num_items (fun _ -> Rng.unit_float rng) in
  let price =
    Array.init num_items (fun _ -> Array.init horizon (fun _ -> Rng.uniform_in rng 0.5 10.0))
  in
  let adoption = ref [] in
  for u = 0 to num_users - 1 do
    for i = 0 to num_items - 1 do
      if Rng.bernoulli rng 0.8 then
        adoption := (u, i, Array.init horizon (fun _ -> Rng.unit_float rng)) :: !adoption
    done
  done;
  if !adoption = [] then adoption := [ (0, 0, Array.make horizon 0.5) ];
  {
    num_users;
    num_items;
    horizon;
    display_limit = 2;
    class_of;
    capacity;
    saturation;
    price;
    adoption = !adoption;
  }

let build s =
  Instance.create_checked ~num_users:s.num_users ~num_items:s.num_items ~horizon:s.horizon
    ~display_limit:s.display_limit ~class_of:s.class_of ~capacity:s.capacity
    ~saturation:s.saturation ~price:s.price ~adoption:s.adoption ()

let set_price s v =
  let s = copy_spec s in
  s.price.(0).(0) <- v;
  s

let set_saturation s v =
  let s = copy_spec s in
  s.saturation.(0) <- v;
  s

let mutate_first_adoption s g =
  let s = copy_spec s in
  match s.adoption with
  | entry :: rest -> { s with adoption = g s entry :: rest }
  | [] -> assert false

(* Named corruptions, each tagged with the Instance.create_checked field it
   must be rejected under. *)
let corruptions : (string * string * (spec -> spec)) list =
  [
    ("nan price", "price", fun s -> set_price s Float.nan);
    ("negative price", "price", fun s -> set_price s (-1.0));
    ("infinite price", "price", fun s -> set_price s Float.infinity);
    ("saturation above one", "saturation", fun s -> set_saturation s 1.5);
    ("negative saturation", "saturation", fun s -> set_saturation s (-0.25));
    ("nan saturation", "saturation", fun s -> set_saturation s Float.nan);
    ( "class_of wrong length",
      "class_of",
      fun s ->
        let s = copy_spec s in
        { s with class_of = Array.sub s.class_of 0 (s.num_items - 1) } );
    ( "negative class id",
      "class_of",
      fun s ->
        let s = copy_spec s in
        s.class_of.(0) <- -1;
        s );
    ( "capacity wrong length",
      "capacity",
      fun s ->
        let s = copy_spec s in
        { s with capacity = Array.append s.capacity [| 1 |] } );
    ( "negative capacity",
      "capacity",
      fun s ->
        let s = copy_spec s in
        s.capacity.(0) <- -3;
        s );
    ( "saturation wrong length",
      "saturation",
      fun s ->
        let s = copy_spec s in
        { s with saturation = Array.append s.saturation [| 0.5 |] } );
    ( "price row wrong length",
      "price",
      fun s ->
        let s = copy_spec s in
        s.price.(0) <- Array.append s.price.(0) [| 1.0 |];
        s );
    ( "price rows missing",
      "price",
      fun s ->
        let s = copy_spec s in
        { s with price = Array.sub s.price 0 (s.num_items - 1) } );
    ("negative num_users", "num_users", fun s -> { (copy_spec s) with num_users = -1 });
    ("negative num_items", "num_items", fun s -> { (copy_spec s) with num_items = -2 });
    ("zero horizon", "horizon", fun s -> { (copy_spec s) with horizon = 0 });
    ("zero display limit", "display_limit", fun s -> { (copy_spec s) with display_limit = 0 });
    ( "adoption pair out of range",
      "adoption",
      fun s ->
        let s = copy_spec s in
        { s with adoption = (s.num_users, 0, Array.make s.horizon 0.5) :: s.adoption } );
    ( "adoption vector wrong length",
      "adoption",
      fun s -> mutate_first_adoption s (fun s (u, i, _) -> (u, i, Array.make (s.horizon + 1) 0.5))
    );
    ( "adoption probability above one",
      "adoption",
      fun s ->
        mutate_first_adoption s (fun _ (u, i, qs) ->
            qs.(0) <- 1.5;
            (u, i, qs)) );
    ( "negative adoption probability",
      "adoption",
      fun s ->
        mutate_first_adoption s (fun _ (u, i, qs) ->
            qs.(0) <- -0.5;
            (u, i, qs)) );
    ( "nan adoption probability",
      "adoption",
      fun s ->
        mutate_first_adoption s (fun _ (u, i, qs) ->
            qs.(0) <- Float.nan;
            (u, i, qs)) );
    ( "duplicate adoption pair",
      "adoption",
      fun s ->
        let s = copy_spec s in
        match s.adoption with
        | (u, i, qs) :: _ -> { s with adoption = (u, i, Array.copy qs) :: s.adoption }
        | [] -> assert false );
  ]

let check_corruption ~seed spec (name, field, corrupt) =
  match build (corrupt spec) with
  | Ok _ -> Alcotest.failf "seed %d: corruption %S accepted" seed name
  | Error (Err.Invalid_instance { field = f; _ }) ->
      Alcotest.(check string) (Printf.sprintf "%S names its field" name) field f
  | Error e ->
      Alcotest.failf "seed %d: corruption %S: unexpected error class: %s" seed name
        (Err.message e)
  | exception e ->
      Alcotest.failf "seed %d: corruption %S escaped as exception %s" seed name
        (Printexc.to_string e)

(* Metamorphic test of the corruptor itself: identity accepted, every named
   corruption rejected with the expected constructor, exhaustively. *)
let test_corruptor_metamorphic () =
  for seed = 0 to 14 do
    let spec = random_spec (Rng.create seed) in
    (match build spec with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "seed %d: pristine spec rejected: %s" seed (Err.message e)
    | exception e ->
        Alcotest.failf "seed %d: pristine spec raised %s" seed (Printexc.to_string e));
    List.iter (check_corruption ~seed spec) corruptions
  done

(* The same property as a qcheck fuzz over (seed, corruption) pairs. *)
let prop_corruptions_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"fuzzed corruptions yield structured errors" ~count:200
       QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 (List.length corruptions - 1)))
       (fun (seed, idx) ->
         let spec = random_spec (Rng.create seed) in
         (match build spec with
         | Ok _ -> ()
         | Error e -> QCheck2.Test.fail_reportf "pristine spec rejected: %s" (Err.message e));
         let name, field, corrupt = List.nth corruptions idx in
         match build (corrupt spec) with
         | Ok _ -> QCheck2.Test.fail_reportf "corruption %S accepted" name
         | Error (Err.Invalid_instance { field = f; _ }) -> f = field
         | Error e ->
             QCheck2.Test.fail_reportf "corruption %S: unexpected error: %s" name (Err.message e)))

(* ------------------------------------------------------------------ *)
(* File-level corruptions                                              *)
(* ------------------------------------------------------------------ *)

let write_temp contents =
  let path = Filename.temp_file "revmax-fault" ".inst" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents);
  path

let expect_parse_error name contents =
  let path = write_temp contents in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Io.load_instance_result path with
      | Error (Err.Parse_error _) -> ()
      | Error e -> Alcotest.failf "%s: expected Parse_error, got %s" name (Err.message e)
      | Ok _ -> Alcotest.failf "%s: corrupted file accepted" name
      | exception e -> Alcotest.failf "%s: exception escaped: %s" name (Printexc.to_string e))

let test_garbled_files () =
  expect_parse_error "empty file" "";
  expect_parse_error "garbled header" "revmax-instankce 1\ndims 1 1 1 1\nend\n";
  expect_parse_error "binary garbage" "\x00\x01\xfe\xffPK\x03\x04 junk\n\x7f\x45\x4c\x46";
  expect_parse_error "short dims" "revmax-instance 1\ndims 1 1\nend\n";
  expect_parse_error "unknown record"
    "revmax-instance 1\ndims 1 1 1 1\nitem 0 0 1 1.0 1.0\nfrobnicate 3\nend\n";
  expect_parse_error "missing end" "revmax-instance 1\ndims 1 1 1 1\nitem 0 0 1 1.0 1.0\n"

(* A file that parses but carries out-of-model values is rejected by
   Instance.create_checked, not the parser — still a structured error. *)
let test_semantic_corruption_is_invalid_instance () =
  let path =
    write_temp "revmax-instance 1\ndims 1 1 1 1\nitem 0 0 1 1.0 1.0\nq 0 0 1.5\nend\n"
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Io.load_instance_result path with
      | Error (Err.Invalid_instance { field = "adoption"; _ }) -> ()
      | Error e -> Alcotest.failf "expected Invalid_instance, got %s" (Err.message e)
      | Ok _ -> Alcotest.fail "out-of-range probability accepted")

let test_truncated_files_rejected () =
  for seed = 0 to 9 do
    let inst = random_instance (Rng.create seed) in
    let path = Filename.temp_file "revmax-fault" ".inst" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Io.save_instance path inst;
        let full = In_channel.with_open_bin path In_channel.input_all in
        let n = String.length full in
        List.iter
          (fun keep ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (String.sub full 0 keep));
            match Io.load_instance_result path with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "seed %d: file truncated to %d/%d bytes accepted" seed keep n
            | exception e ->
                Alcotest.failf "seed %d: truncation escaped as %s" seed (Printexc.to_string e))
          [ n / 2; n - 2 ])
  done

(* Single-byte corruption anywhere in a valid file must never escape the
   Result type, whatever it does to the content. *)
let test_byte_flips_never_raise () =
  for seed = 0 to 29 do
    let rng = Rng.create (1000 + seed) in
    let inst = random_instance rng in
    let path = Filename.temp_file "revmax-fault" ".inst" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Io.save_instance path inst;
        let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
        let pos = Rng.int rng (Bytes.length full) in
        Bytes.set full pos (if Bytes.get full pos = 'x' then 'y' else 'x');
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc full);
        match Io.load_instance_result path with
        | Ok _ | Error _ -> ()
        | exception e ->
            Alcotest.failf "seed %d: flipped byte %d escaped as %s" seed pos
              (Printexc.to_string e))
  done

(* ------------------------------------------------------------------ *)
(* Harness faults: Runner.guarded                                      *)
(* ------------------------------------------------------------------ *)

(* Two users, two singleton classes, k = 1, capacity.(0) = 1: small enough to
   build constraint violations by hand with Strategy.add (which only checks
   range and duplicates, not Problem 1's packing constraints). *)
let two_item_instance () =
  Instance.create ~num_users:2 ~num_items:2 ~horizon:1 ~display_limit:1 ~class_of:[| 0; 1 |]
    ~capacity:[| 1; 2 |] ~saturation:[| 1.0; 1.0 |]
    ~price:[| [| 1.0 |]; [| 2.0 |] |]
    ~adoption:[ (0, 0, [| 0.5 |]); (1, 0, [| 0.5 |]); (0, 1, [| 0.5 |]) ]
    ()

let test_guarded_converts_raise () =
  match Runner.guarded ~algo:Algorithms.G_greedy (fun () -> failwith "boom") with
  | Runner.Failed { error = Err.Unexpected { msg; _ }; algo; _ } ->
      Alcotest.(check string) "algo recorded" "GG" (Algorithms.name algo);
      Alcotest.(check bool) "message preserved" true (Util.contains_substring msg "boom")
  | Runner.Failed { error; _ } ->
      Alcotest.failf "expected Unexpected, got %s" (Err.message error)
  | Runner.Completed _ -> Alcotest.fail "expected a Failed outcome"

let test_guarded_rejects_display_violation () =
  let inst = two_item_instance () in
  let s = Strategy.create inst in
  Strategy.add s (triple 0 0 1);
  Strategy.add s (triple 0 1 1);
  match Runner.guarded ~algo:Algorithms.Top_revenue (fun () -> (s, false)) with
  | Runner.Failed
      { error = Err.Invalid_strategy [ Err.Display_limit { u; time; count; limit } ]; _ } ->
      Alcotest.(check int) "witness user" 0 u;
      Alcotest.(check int) "witness time" 1 time;
      Alcotest.(check int) "witness count" 2 count;
      Alcotest.(check int) "witness limit" 1 limit
  | Runner.Failed { error; _ } ->
      Alcotest.failf "expected Display_limit, got %s" (Err.message error)
  | Runner.Completed _ -> Alcotest.fail "display violation not caught"

let test_guarded_rejects_capacity_violation () =
  let inst = two_item_instance () in
  let s = Strategy.create inst in
  Strategy.add s (triple 0 0 1);
  Strategy.add s (triple 1 0 1);
  match Runner.guarded ~algo:Algorithms.Top_revenue (fun () -> (s, false)) with
  | Runner.Failed
      { error = Err.Invalid_strategy [ Err.Capacity { item; distinct_users; capacity } ]; _ } ->
      Alcotest.(check int) "witness item" 0 item;
      Alcotest.(check int) "witness users" 2 distinct_users;
      Alcotest.(check int) "witness capacity" 1 capacity
  | Runner.Failed { error; _ } ->
      Alcotest.failf "expected Capacity, got %s" (Err.message error)
  | Runner.Completed _ -> Alcotest.fail "capacity violation not caught"

(* ------------------------------------------------------------------ *)
(* Checkpoint faults                                                   *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "revmax-ckpt" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* Run [f] with fd 1 redirected to a file; return f's value and the bytes it
   (or a checkpoint replay) wrote to stdout. *)
let with_stdout_captured f =
  let path = Filename.temp_file "revmax-stdout" ".txt" in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  let result = try Ok (Fun.protect ~finally:restore f) with e -> Error e in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  match result with Ok v -> (v, contents) | Error e -> raise e

(* Durability regression for [Io.save_atomic]: a writer SIGKILLed at any
   point before the rename must leave the previous contents of the target
   byte-identical — the temp-file-plus-fsync-plus-rename sequence never
   exposes a torn or empty target. The child is killed (a) mid-[f], before
   any flush, and (b) after [f] returned but while still inside the
   callback chain (simulated by killing from within [f] after writing
   everything) — in both cases only the invisible temp file dies. *)
let test_save_atomic_kill_leaves_target_intact () =
  with_temp_dir (fun dir ->
      Unix.mkdir dir 0o700;
      let target = Filename.concat dir "state.txt" in
      let original = "generation-1 contents\n" in
      Out_channel.with_open_bin target (fun oc -> Out_channel.output_string oc original);
      List.iter
        (fun kill_point ->
          (match Unix.fork () with
          | 0 ->
              (* child: die by SIGKILL inside the atomic save *)
              (try
                 Revmax.Io.save_atomic target (fun oc ->
                     output_string oc "generation-2 half";
                     if kill_point = `Mid_write then Unix.kill (Unix.getpid ()) Sys.sigkill;
                     output_string oc "generation-2 rest\n";
                     flush oc;
                     if kill_point = `After_write then Unix.kill (Unix.getpid ()) Sys.sigkill)
               with _ -> ());
              Stdlib.exit 0
          | pid ->
              let _, status = Unix.waitpid [] pid in
              Alcotest.(check bool) "child died of SIGKILL" true
                (status = Unix.WSIGNALED Sys.sigkill));
          let now = In_channel.with_open_bin target In_channel.input_all in
          Alcotest.(check string) "previous contents intact" original now)
        [ `Mid_write; `After_write ];
      (* stray temp files from the killed writers must not confuse loaders:
         they live under dotted names, never under the target's name *)
      Array.iter
        (fun name ->
          if name <> "state.txt" then
            Alcotest.(check bool)
              (Printf.sprintf "leftover %s is a dotted temp file" name)
              true
              (String.length name > 0 && name.[0] = '.'))
        (Sys.readdir dir);
      (* and a completed save replaces the contents atomically *)
      Revmax.Io.save_atomic target (fun oc -> output_string oc "generation-3\n");
      let now = In_channel.with_open_bin target In_channel.input_all in
      Alcotest.(check string) "completed save visible" "generation-3\n" now)

let meta = [ ("scale", "unit"); ("seed", "42") ]

let test_checkpoint_record_roundtrip () =
  with_temp_dir (fun dir ->
      let cp = Checkpoint.create ~dir ~resume:false in
      (* newlines, quotes, backslashes, control bytes, non-ASCII: everything
         the JSON escaping must survive *)
      let weird = "line one\n\ttab \"quotes\" back\\slash\ncontrol:\x00\x01 latin1:\xc3\xa9\n" in
      let id = "weird cell/with:odd chars" in
      let status, _ =
        with_stdout_captured (fun () ->
            Checkpoint.run_cell (Some cp) ~id ~meta (fun () -> print_string weird))
      in
      Alcotest.(check bool) "ran" true (status = `Ran);
      match Checkpoint.load_record cp ~id with
      | Some (Ok (meta', output)) ->
          Alcotest.(check (list (pair string string)))
            "meta roundtrips" (List.sort compare meta) (List.sort compare meta');
          Alcotest.(check string) "output roundtrips byte-for-byte" weird output
      | Some (Error e) -> Alcotest.failf "record unreadable: %s" (Err.message e)
      | None -> Alcotest.fail "record missing")

let test_checkpoint_replay_skips_rerun () =
  with_temp_dir (fun dir ->
      let cp = Checkpoint.create ~dir ~resume:false in
      let _, _ =
        with_stdout_captured (fun () ->
            Checkpoint.run_cell (Some cp) ~id:"cell" ~meta (fun () -> print_string "once\n"))
      in
      let cp' = Checkpoint.create ~dir ~resume:true in
      let ran = ref false in
      let status, out =
        with_stdout_captured (fun () ->
            Checkpoint.run_cell (Some cp') ~id:"cell" ~meta (fun () ->
                ran := true;
                print_string "twice\n"))
      in
      Alcotest.(check bool) "replayed" true (status = `Replayed);
      Alcotest.(check bool) "cell not recomputed" false !ran;
      Alcotest.(check string) "recorded bytes replayed" "once\n" out)

let test_checkpoint_corrupt_record_self_heals () =
  with_temp_dir (fun dir ->
      let cp = Checkpoint.create ~dir ~resume:false in
      let _, _ =
        with_stdout_captured (fun () ->
            Checkpoint.run_cell (Some cp) ~id:"cell" ~meta (fun () -> print_string "v1\n"))
      in
      (* simulate a crash that corrupted the record on disk *)
      Out_channel.with_open_bin
        (Checkpoint.record_path cp "cell")
        (fun oc -> Out_channel.output_string oc "{\"id\": \"cell\", trunca");
      let cp' = Checkpoint.create ~dir ~resume:true in
      let ran = ref false in
      let status, out =
        with_stdout_captured (fun () ->
            Checkpoint.run_cell (Some cp') ~id:"cell" ~meta (fun () ->
                ran := true;
                print_string "v2\n"))
      in
      Alcotest.(check bool) "cell rerun" true (status = `Ran && !ran);
      Alcotest.(check string) "fresh output" "v2\n" out;
      match Checkpoint.load_record cp' ~id:"cell" with
      | Some (Ok (_, output)) -> Alcotest.(check string) "record healed" "v2\n" output
      | _ -> Alcotest.fail "record not rewritten")

let test_checkpoint_meta_mismatch_raises () =
  with_temp_dir (fun dir ->
      let cp = Checkpoint.create ~dir ~resume:false in
      let _, _ =
        with_stdout_captured (fun () ->
            Checkpoint.run_cell (Some cp) ~id:"cell" ~meta:[ ("seed", "1") ] (fun () ->
                print_string "x\n"))
      in
      let cp' = Checkpoint.create ~dir ~resume:true in
      match
        with_stdout_captured (fun () ->
            Checkpoint.run_cell (Some cp') ~id:"cell" ~meta:[ ("seed", "2") ] (fun () ->
                print_string "y\n"))
      with
      | exception Err.Error (Err.Unexpected { msg; _ }) ->
          Alcotest.(check bool) "mismatch explained" true
            (Util.contains_substring msg "metadata mismatch")
      | exception e -> Alcotest.failf "expected Err.Error, got %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "stale metadata silently accepted")

(* The headline robustness scenario: a run killed with SIGKILL mid-cell, then
   resumed over the same directory, produces byte-identical output — completed
   cells replay, the interrupted cell reruns. *)
let test_checkpoint_kill_and_resume () =
  with_temp_dir (fun dir ->
      let cells = [ ("a", "alpha 1.25\n"); ("b", "beta 2.5\n"); ("c", "gamma 3.75\n") ] in
      let expected = String.concat "" (List.map snd cells) in
      (match Unix.fork () with
      | 0 ->
          (* child: complete cells a and b, die without warning inside c *)
          (try
             let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
             Unix.dup2 devnull Unix.stdout;
             Unix.close devnull;
             let cp = Checkpoint.create ~dir ~resume:false in
             List.iter
               (fun (id, out) ->
                 ignore
                   (Checkpoint.run_cell (Some cp) ~id ~meta (fun () ->
                        if id = "c" then begin
                          print_string "partial output never committed";
                          flush stdout;
                          Unix.kill (Unix.getpid ()) Sys.sigkill
                        end;
                        print_string out)))
               cells
           with _ -> ());
          (* only reachable if the kill failed *)
          Unix._exit 125
      | pid ->
          let _, status = Unix.waitpid [] pid in
          Alcotest.(check bool) "child died of SIGKILL" true
            (status = Unix.WSIGNALED Sys.sigkill));
      let cp = Checkpoint.create ~dir ~resume:true in
      (match Checkpoint.load_record cp ~id:"c" with
      | None -> ()
      | Some _ -> Alcotest.fail "interrupted cell must not leave a record");
      let replayed = ref [] and reran = ref [] in
      let (), out =
        with_stdout_captured (fun () ->
            List.iter
              (fun (id, cell_out) ->
                match
                  Checkpoint.run_cell (Some cp) ~id ~meta (fun () ->
                      reran := id :: !reran;
                      print_string cell_out)
                with
                | `Replayed -> replayed := id :: !replayed
                | `Ran -> ())
              cells)
      in
      Alcotest.(check (list string)) "completed cells replayed" [ "a"; "b" ] (List.rev !replayed);
      Alcotest.(check (list string)) "interrupted cell rerun" [ "c" ] (List.rev !reran);
      Alcotest.(check string) "resumed output is bit-identical" expected out)

(* Same scenario against the parallel grid executor, driven through the
   REVMAX_JOBS environment knob end-to-end: the driver is SIGKILLed while
   running the grid at REVMAX_JOBS=3 (after two cells were emitted and
   recorded), then resumed at REVMAX_JOBS=2. The resumed stdout must be
   byte-identical to an uninterrupted run — records are only ever a prefix
   of the emitted cells, whatever the jobs value. *)
let test_parallel_bench_kill_and_resume () =
  with_temp_dir (fun dir ->
      let cells =
        List.map
          (fun id ->
            ( id,
              meta,
              fun () ->
                Printf.printf "== %s ==\n" id;
                Printf.printf "%s revenue %.3f\n" id (float_of_int (String.length id) /. 3.0) ))
          [ "t1-gg"; "t1-lsg"; "fig2"; "fig3"; "tab2" ]
      in
      let expected =
        String.concat ""
          (List.map
             (fun (id, _, _) ->
               Printf.sprintf "== %s ==\n%s revenue %.3f\n" id id
                 (float_of_int (String.length id) /. 3.0))
             cells)
      in
      (match Unix.fork () with
      | 0 ->
          (try
             let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
             Unix.dup2 devnull Unix.stdout;
             Unix.close devnull;
             (* first default_jobs call in this fresh child reads the env *)
             Unix.putenv "REVMAX_JOBS" "3";
             let cp = Checkpoint.create ~dir ~resume:false in
             let on_done ~id ~status:_ ~seconds:_ =
               if id = "t1-lsg" then Unix.kill (Unix.getpid ()) Sys.sigkill
             in
             ignore (Checkpoint.run_cells (Some cp) ~on_done cells)
           with _ -> ());
          (* only reachable if the kill failed *)
          Unix._exit 125
      | pid ->
          let _, status = Unix.waitpid [] pid in
          Alcotest.(check bool) "driver died of SIGKILL" true
            (status = Unix.WSIGNALED Sys.sigkill));
      (* give orphaned cell processes time to finish writing and exit *)
      Unix.sleepf 0.3;
      (* resume under a different jobs value than the killed run *)
      Revmax_prelude.Pool.set_default_jobs 2;
      let finally () = Revmax_prelude.Pool.set_default_jobs 1 in
      Fun.protect ~finally (fun () ->
          let cp = Checkpoint.create ~dir ~resume:true in
          List.iteri
            (fun i (id, _, _) ->
              let present = Checkpoint.load_record cp ~id <> None in
              Alcotest.(check bool)
                (Printf.sprintf "record %s %s" id (if i < 2 then "kept" else "absent"))
                (i < 2) present)
            cells;
          let statuses, out =
            with_stdout_captured (fun () -> Checkpoint.run_cells (Some cp) cells)
          in
          Alcotest.(check string) "resumed output is bit-identical" expected out;
          Alcotest.(check (list string))
            "prefix replayed, rest rerun"
            [ "replayed"; "replayed"; "ran"; "ran"; "ran" ]
            (List.map (function `Ran -> "ran" | `Replayed -> "replayed") statuses)))

let () =
  Alcotest.run "fault"
    [
      ( "corruptor",
        [
          Alcotest.test_case "metamorphic: identity ok, corruptions rejected" `Quick
            test_corruptor_metamorphic;
          prop_corruptions_rejected;
        ] );
      ( "io",
        [
          Alcotest.test_case "garbled files are Parse_error" `Quick test_garbled_files;
          Alcotest.test_case "semantic corruption is Invalid_instance" `Quick
            test_semantic_corruption_is_invalid_instance;
          Alcotest.test_case "truncated files rejected" `Quick test_truncated_files_rejected;
          Alcotest.test_case "byte flips never raise" `Quick test_byte_flips_never_raise;
          Alcotest.test_case "save_atomic: SIGKILL mid-save leaves target intact" `Quick
            test_save_atomic_kill_leaves_target_intact;
        ] );
      ( "runner",
        [
          Alcotest.test_case "guarded converts raise" `Quick test_guarded_converts_raise;
          Alcotest.test_case "display violation caught" `Quick
            test_guarded_rejects_display_violation;
          Alcotest.test_case "capacity violation caught" `Quick
            test_guarded_rejects_capacity_violation;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "record roundtrip with hostile bytes" `Quick
            test_checkpoint_record_roundtrip;
          Alcotest.test_case "replay skips recomputation" `Quick test_checkpoint_replay_skips_rerun;
          Alcotest.test_case "corrupt record self-heals" `Quick
            test_checkpoint_corrupt_record_self_heals;
          Alcotest.test_case "metadata mismatch raises" `Quick test_checkpoint_meta_mismatch_raises;
          Alcotest.test_case "SIGKILL mid-run then resume" `Quick test_checkpoint_kill_and_resume;
          Alcotest.test_case "SIGKILL mid-parallel bench, resume with other REVMAX_JOBS" `Quick
            test_parallel_bench_kill_and_resume;
        ] );
    ]
