(* Parallel grid executor suite (PR 3).

   These tests fork: the parallel grid runs each fresh cell in a child
   process. OCaml 5.1's runtime permanently refuses [Unix.fork] once any
   domain has ever been spawned in the process, so they live in their own
   executable that never touches [Revmax_prelude.Pool] — the companion
   domain-level tests are in [test_parallel.ml]. Asserted here: assembled
   stdout and per-cell checkpoint records are byte-identical for every
   jobs value, progress callbacks fire in cell order, a failing cell
   raises only after the cells before it are emitted and recorded, and
   the headline crash scenario — SIGKILL mid-parallel grid, resume over
   the same directory under a different jobs value, byte-identical. *)

module Err = Revmax_prelude.Err
module Util = Revmax_prelude.Util
module Checkpoint = Revmax_experiments.Checkpoint

let jobs_grid = [ 1; 2; 4; 8 ]

let with_temp_dir f =
  let dir = Filename.temp_file "revmax-par" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let with_stdout_captured f =
  let path = Filename.temp_file "revmax-stdout" ".txt" in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  let result = try Ok (Fun.protect ~finally:restore f) with e -> Error e in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  match result with Ok v -> (v, contents) | Error e -> raise e

let meta = [ ("scale", "unit"); ("seed", "42") ]

(* Deterministic multi-line cell bodies with distinct content per cell. *)
let grid_cells =
  List.map
    (fun id ->
      ( id,
        meta,
        fun () ->
          Printf.printf "=== cell %s ===\n" id;
          for k = 1 to 3 do
            Printf.printf "%s line %d value %.3f\n" id k (float_of_int (String.length id * k) /. 7.0)
          done ))
    [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" ]

let expected_grid_output () =
  let buf = Buffer.create 256 in
  List.iter
    (fun (id, _, _) ->
      Buffer.add_string buf (Printf.sprintf "=== cell %s ===\n" id);
      for k = 1 to 3 do
        Buffer.add_string buf
          (Printf.sprintf "%s line %d value %.3f\n" id k (float_of_int (String.length id * k) /. 7.0))
      done)
    grid_cells;
  Buffer.contents buf

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_run_cells_bytes_identical () =
  let expected = expected_grid_output () in
  let reference_records = ref [] in
  List.iter
    (fun jobs ->
      with_temp_dir (fun dir ->
          let cp = Checkpoint.create ~dir ~resume:false in
          let statuses, out =
            with_stdout_captured (fun () -> Checkpoint.run_cells (Some cp) ~jobs grid_cells)
          in
          Alcotest.(check string) (Printf.sprintf "jobs=%d stdout" jobs) expected out;
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d all ran" jobs)
            true
            (List.for_all (( = ) `Ran) statuses);
          let records =
            List.map (fun (id, _, _) -> read_file (Checkpoint.record_path cp id)) grid_cells
          in
          if jobs = 1 then reference_records := records
          else
            List.iteri
              (fun i r ->
                Alcotest.(check string)
                  (Printf.sprintf "jobs=%d record %d bytes" jobs i)
                  (List.nth !reference_records i) r)
              records;
          (* resuming the same directory replays every cell byte-for-byte *)
          let cp' = Checkpoint.create ~dir ~resume:true in
          let statuses', out' =
            with_stdout_captured (fun () -> Checkpoint.run_cells (Some cp') ~jobs grid_cells)
          in
          Alcotest.(check string) (Printf.sprintf "jobs=%d replay stdout" jobs) expected out';
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d all replayed" jobs)
            true
            (List.for_all (( = ) `Replayed) statuses')))
    jobs_grid

let test_run_cells_ordered_progress () =
  with_temp_dir (fun dir ->
      let cp = Checkpoint.create ~dir ~resume:false in
      let seen = ref [] in
      let on_done ~id ~status:_ ~seconds:_ = seen := id :: !seen in
      let _, _ =
        with_stdout_captured (fun () -> Checkpoint.run_cells (Some cp) ~jobs:4 ~on_done grid_cells)
      in
      Alcotest.(check (list string))
        "on_done fires in cell order"
        (List.map (fun (id, _, _) -> id) grid_cells)
        (List.rev !seen))

let test_run_cells_failing_cell () =
  with_temp_dir (fun dir ->
      let cp = Checkpoint.create ~dir ~resume:false in
      let cells =
        [
          ("a", meta, fun () -> print_string "a ok\n");
          ("b", meta, fun () -> print_string "b ok\n");
          ("c", meta, fun () -> failwith "cell exploded");
          ("d", meta, fun () -> print_string "d ok\n");
        ]
      in
      (match
         with_stdout_captured (fun () -> Checkpoint.run_cells (Some cp) ~jobs:3 cells)
       with
      | exception Err.Error (Err.Unexpected { context; _ }) ->
          Alcotest.(check bool) "failure names the cell" true
            (Util.contains_substring context "c")
      | exception e -> Alcotest.failf "expected Err.Error, got %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "failing cell not reported");
      (* the cells before the failure were emitted and recorded *)
      Alcotest.(check string) "record a kept" "a ok\n"
        (match Checkpoint.load_record cp ~id:"a" with
        | Some (Ok (_, out)) -> out
        | _ -> "<missing>");
      Alcotest.(check string) "record b kept" "b ok\n"
        (match Checkpoint.load_record cp ~id:"b" with
        | Some (Ok (_, out)) -> out
        | _ -> "<missing>");
      Alcotest.(check bool) "no record for the failed cell" true
        (Checkpoint.load_record cp ~id:"c" = None))

(* The headline crash scenario: the grid driver is SIGKILLed mid-parallel
   run (after the second cell was emitted and recorded), then the run is
   resumed over the same directory under a different jobs value. The
   resumed output must be byte-identical to an uninterrupted sequential
   run: completed cells replay, the rest rerun. *)
let test_parallel_grid_kill_and_resume () =
  with_temp_dir (fun dir ->
      let expected = expected_grid_output () in
      (match Unix.fork () with
      | 0 ->
          (try
             let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
             Unix.dup2 devnull Unix.stdout;
             Unix.close devnull;
             let cp = Checkpoint.create ~dir ~resume:false in
             let on_done ~id ~status:_ ~seconds:_ =
               if id = "beta" then Unix.kill (Unix.getpid ()) Sys.sigkill
             in
             ignore (Checkpoint.run_cells (Some cp) ~jobs:3 ~on_done grid_cells)
           with _ -> ());
          (* only reachable if the kill failed *)
          Unix._exit 125
      | pid ->
          let _, status = Unix.waitpid [] pid in
          Alcotest.(check bool) "driver died of SIGKILL" true
            (status = Unix.WSIGNALED Sys.sigkill));
      (* give orphaned worker processes time to finish writing and exit *)
      Unix.sleepf 0.3;
      let cp = Checkpoint.create ~dir ~resume:true in
      (* records cover exactly the prefix emitted before the kill *)
      List.iteri
        (fun i (id, _, _) ->
          let present = Checkpoint.load_record cp ~id <> None in
          Alcotest.(check bool)
            (Printf.sprintf "record %s %s" id (if i < 2 then "kept" else "absent"))
            (i < 2) present)
        grid_cells;
      (* resume under a different jobs value than the killed run *)
      let statuses, out =
        with_stdout_captured (fun () -> Checkpoint.run_cells (Some cp) ~jobs:2 grid_cells)
      in
      Alcotest.(check string) "resumed output is bit-identical" expected out;
      Alcotest.(check (list string))
        "prefix replayed, rest rerun"
        [ "replayed"; "replayed"; "ran"; "ran"; "ran"; "ran" ]
        (List.map (function `Ran -> "ran" | `Replayed -> "replayed") statuses))

let () =
  Alcotest.run "parallel-grid"
    [
      ( "grid",
        [
          Alcotest.test_case "stdout and records byte-identical" `Quick
            test_run_cells_bytes_identical;
          Alcotest.test_case "ordered progress callbacks" `Quick test_run_cells_ordered_progress;
          Alcotest.test_case "failing cell raises after prefix" `Quick test_run_cells_failing_cell;
          Alcotest.test_case "SIGKILL mid-parallel grid, resume with other jobs" `Quick
            test_parallel_grid_kill_and_resume;
        ] );
    ]
