(* Tests of the experiment harness itself: configuration, dataset caching,
   the suite runner, and smoke runs of the experiment registry at quick
   scale (stdout of the experiments is irrelevant here; what matters is
   that every experiment completes and the runner enforces validity). *)

module Config = Revmax_experiments.Config
module Datasets = Revmax_experiments.Datasets
module Runner = Revmax_experiments.Runner
module Experiments = Revmax_experiments.Experiments
module Pipeline = Revmax_datagen.Pipeline
module Algorithms = Revmax.Algorithms
module Instance = Revmax.Instance

let quick = Config.of_scale ~seed:77 Config.Quick

let test_config_scales () =
  List.iter
    (fun scale ->
      let cfg = Config.of_scale scale in
      let a = Config.amazon_scale cfg and e = Config.epinions_scale cfg in
      Alcotest.(check bool) "amazon users positive" true (a.Revmax_datagen.Amazon_like.num_users > 0);
      Alcotest.(check bool) "epinions users positive" true
        (e.Revmax_datagen.Epinions_like.num_users > 0);
      Alcotest.(check bool) "sweep non-empty" true (Config.fig6_user_counts cfg <> []))
    [ Config.Quick; Config.Default; Config.Full ]

let test_config_capacity_specs () =
  let cfg = quick in
  (match Config.cap_gaussian cfg ~users:1000 with
  | Pipeline.Cap_gaussian { mean; sigma } ->
      Helpers.check_float ~eps:1e-9 "mean ratio" 220.0 mean;
      Alcotest.(check bool) "sigma positive" true (sigma > 0.0)
  | _ -> Alcotest.fail "expected gaussian");
  (match Config.cap_power cfg ~users:1000 with
  | Pipeline.Cap_power { alpha; x_min } ->
      (* Pareto mean alpha·x_min/(alpha−1) matches the Gaussian mean *)
      Helpers.check_float ~eps:1e-9 "power mean matched" 220.0 (alpha *. x_min /. (alpha -. 1.0))
  | _ -> Alcotest.fail "expected power");
  match Config.cap_uniform cfg ~users:1000 with
  | Pipeline.Cap_uniform { lo; hi } -> Alcotest.(check bool) "ordered" true (lo < hi)
  | _ -> Alcotest.fail "expected uniform"

let test_datasets_memoized () =
  let a1 = Datasets.amazon quick and a2 = Datasets.amazon quick in
  Alcotest.(check bool) "same prepared dataset object" true (a1 == a2);
  let names = List.map (fun p -> p.Pipeline.name) (Datasets.both quick) in
  Alcotest.(check (list string)) "order" [ "Amazon"; "Epinions" ] names

let test_datasets_instance_distinct_seeds () =
  let prepared = Datasets.amazon quick in
  let users = prepared.Pipeline.num_users in
  let i1 =
    Datasets.instance quick prepared ~capacity:(Config.cap_gaussian quick ~users)
      ~beta:Pipeline.Beta_uniform ()
  in
  let i2 =
    Datasets.instance quick prepared ~capacity:(Config.cap_exponential quick ~users)
      ~beta:Pipeline.Beta_uniform ()
  in
  (* different capacity specs draw different instantiation randomness *)
  let differs = ref false in
  for i = 0 to Instance.num_items i1 - 1 do
    if Instance.saturation i1 i <> Instance.saturation i2 i then differs := true
  done;
  Alcotest.(check bool) "distinct derived seeds" true !differs

let test_runner_suite_shape () =
  let prepared = Datasets.epinions quick in
  let users = prepared.Pipeline.num_users in
  let inst =
    Datasets.instance quick prepared ~capacity:(Config.cap_gaussian quick ~users)
      ~beta:(Pipeline.Beta_fixed 0.5) ()
  in
  let outcomes = Runner.run_suite ~rlg_permutations:3 ~seed:1 inst in
  Alcotest.(check int) "six algorithms" 6 (List.length outcomes);
  let results = Runner.completed outcomes in
  Alcotest.(check int) "all completed" 6 (List.length results);
  Alcotest.(check (list string)) "header order" [ "GG"; "GG-No"; "RLG"; "SLG"; "TopRev"; "TopRat" ]
    (List.map (fun r -> Algorithms.name r.Runner.algo) results);
  List.iter
    (fun r ->
      Alcotest.(check bool) "revenue non-negative" true (r.Runner.revenue >= 0.0);
      Alcotest.(check bool) "time non-negative" true (r.Runner.seconds >= 0.0);
      Alcotest.(check bool) "strategy non-empty" true (r.Runner.strategy_size > 0))
    results;
  (* GG leads the table *)
  let gg = List.hd results in
  List.iter
    (fun r -> Alcotest.(check bool) "GG top" true (gg.Runner.revenue >= r.Runner.revenue -. 1e-6))
    results

let test_registry_ids_unique () =
  let ids = List.map (fun (id, _, _) -> id) Experiments.all in
  Alcotest.(check int) "18 experiments" 18 (List.length ids);
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_run_by_id () =
  Alcotest.(check bool) "unknown id" false (Experiments.run_by_id "nope" quick);
  Alcotest.(check bool) "table1 runs" true (Experiments.run_by_id "table1" quick)

let test_smoke_fast_experiments () =
  (* the cheap experiments run end-to-end at quick scale inside the tests;
     the expensive ones are exercised by the bench executable *)
  List.iter
    (fun id -> Alcotest.(check bool) id true (Experiments.run_by_id id quick))
    [ "fig4"; "fig5"; "fig6"; "abl-heap"; "abl-exact"; "bench-greedy" ]

let () =
  Alcotest.run "experiments"
    [
      ( "config",
        [
          Alcotest.test_case "scales" `Quick test_config_scales;
          Alcotest.test_case "capacity specs" `Quick test_config_capacity_specs;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "memoized" `Slow test_datasets_memoized;
          Alcotest.test_case "derived seeds" `Slow test_datasets_instance_distinct_seeds;
        ] );
      ("runner", [ Alcotest.test_case "suite shape" `Slow test_runner_suite_shape ]);
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "run_by_id" `Slow test_run_by_id;
          Alcotest.test_case "smoke fast experiments" `Slow test_smoke_fast_experiments;
        ] );
    ]
