(* The serving-layer suite: WAL journal codec + self-heal, supervised
   retry/backoff/quarantine, deterministic chaos, crash-recovery identity
   (in-process and through the fork/SIGKILL/restart driver), degraded
   mode, wire-codec robustness and SIGPIPE hardening. *)

module Journal = Revmax_serve.Journal
module Supervisor = Revmax_serve.Supervisor
module Chaos = Revmax_serve.Chaos
module Server = Revmax_serve.Server
module Driver = Revmax_serve.Driver
module Scalability = Revmax_datagen.Scalability
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Rng = Revmax_prelude.Rng
module Err = Revmax_prelude.Err

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* the driver creates sibling "<dir>.ref" scratch directories, so tests
   hand out subdirectories of one disposable root *)
let with_temp_dir f =
  let dir = Filename.temp_file "revmax-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Chaos.disarm ();
      rm_rf dir)
    (fun () -> f dir)

let ev_adopt u i t = Journal.Adopt { u; i; t }
let ev_click u i t = Journal.Click { u; i; t }

let pp_ev = Fmt.of_to_string (Format.asprintf "%a" Journal.pp_event)
let event_t = Alcotest.testable pp_ev ( = )
let records_t = Alcotest.(list (pair int64 event_t))

let sample_events =
  [
    (1L, ev_adopt 3 7 2);
    (2L, ev_click 1 4 2);
    (3L, Journal.Cap { i = 5; delta = -2 });
    (4L, Journal.Repair);
    (5L, ev_adopt 0 0 1);
  ]

let file_size path = (Unix.stat path).Unix.st_size

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "j.wal" in
  let j, recovered = Journal.openw path in
  Alcotest.check records_t "fresh journal is empty" [] recovered;
  List.iter (fun (seq, ev) -> Journal.append j ~seq ev) sample_events;
  Journal.close j;
  let j2, recovered = Journal.openw path in
  Alcotest.check records_t "roundtrip" sample_events recovered;
  Journal.close j2

let test_journal_truncated_tail_heals () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "j.wal" in
  let j, _ = Journal.openw path in
  List.iter (fun (seq, ev) -> Journal.append j ~seq ev) sample_events;
  Journal.close j;
  (* cut the file mid-record: a torn final write *)
  let full = file_size path in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (full - 5);
  Unix.close fd;
  let j2, recovered = Journal.openw path in
  Alcotest.check records_t "torn tail dropped, prefix intact"
    (List.filteri (fun k _ -> k < 4) sample_events)
    recovered;
  (* the heal is durable and appending over it works *)
  Journal.append j2 ~seq:5L (ev_click 9 9 1);
  Journal.close j2;
  let j3, recovered = Journal.openw path in
  Alcotest.check records_t "append after heal"
    (List.filteri (fun k _ -> k < 4) sample_events @ [ (5L, ev_click 9 9 1) ])
    recovered;
  Journal.close j3

let test_journal_bit_flip_drops_suffix () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "j.wal" in
  let j, _ = Journal.openw path in
  List.iter (fun (seq, ev) -> Journal.append j ~seq ev) sample_events;
  Journal.close j;
  (* adopt/click records are 29 bytes; flip a payload byte of record 2 *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 40 Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  ignore (Unix.lseek fd 40 Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let j2, recovered = Journal.openw path in
  Alcotest.check records_t "CRC catches the flip; only the clean prefix survives"
    [ List.hd sample_events ] recovered;
  Journal.close j2

let test_journal_rotate () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "j.wal" in
  let j, _ = Journal.openw path in
  List.iter (fun (seq, ev) -> Journal.append j ~seq ev) sample_events;
  Journal.rotate j;
  Alcotest.(check int) "rotated to empty" 0 (Journal.size_bytes j);
  Journal.append j ~seq:6L (ev_adopt 1 1 1);
  Journal.close j;
  Alcotest.check records_t "only post-rotation records" [ (6L, ev_adopt 1 1 1) ]
    (Journal.events path)

let test_journal_sync_batching () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "j.wal" in
  let j, _ = Journal.openw ~sync_every:3 path in
  Journal.append j ~seq:1L (ev_click 0 0 1);
  Journal.append j ~seq:2L (ev_click 0 1 1);
  Alcotest.(check int) "two pending before the batch boundary" 2 (Journal.pending j);
  Journal.append j ~seq:3L (ev_click 0 2 1);
  Alcotest.(check int) "third append fsyncs the batch" 0 (Journal.pending j);
  Journal.append j ~seq:4L (ev_click 0 3 1);
  Journal.sync j;
  Alcotest.(check int) "explicit sync drains" 0 (Journal.pending j);
  Journal.close j

let test_journal_injected_tear_rolls_back () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "j.wal" in
  let j, _ = Journal.openw path in
  Journal.append j ~seq:1L (ev_adopt 1 2 3);
  let size_before = Journal.size_bytes j in
  Chaos.configure "seed=1;fail=journal.mid_write:1.0";
  Alcotest.check_raises "half-written record raises" (Sys_error
    "chaos: injected fault at journal.mid_write (hit 1)") (fun () ->
      Journal.append j ~seq:2L (ev_adopt 4 5 1));
  Chaos.disarm ();
  Alcotest.(check int) "failed append rolled back to the record boundary" size_before
    (Journal.size_bytes j);
  Journal.append j ~seq:2L (ev_adopt 4 5 1);
  Journal.close j;
  Alcotest.check records_t "retry after rollback leaves a clean journal"
    [ (1L, ev_adopt 1 2 3); (2L, ev_adopt 4 5 1) ]
    (Journal.events path)

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let fast_policy =
  {
    Supervisor.max_attempts = 3;
    base_delay = 0.0;
    multiplier = 2.0;
    max_delay = 0.0;
    jitter = 0.0;
    timeout = None;
    quarantine_after = 2;
    probe_every = 3;
  }

let test_supervisor_retries_then_succeeds () =
  let sup = Supervisor.create ~policy:fast_policy ~seed:0 () in
  let calls = ref 0 in
  let r =
    Supervisor.run sup ~name:"flaky" (fun _ ->
        incr calls;
        if !calls < 3 then raise (Sys_error "transient");
        "ok")
  in
  Alcotest.(check (result string reject)) "third attempt lands" (Ok "ok") r;
  Alcotest.(check int) "two retries consumed" 3 !calls;
  Alcotest.(check int) "success resets the failure streak" 0
    (Supervisor.consecutive_failures sup "flaky")

let test_supervisor_quarantine_and_probe () =
  let sup = Supervisor.create ~policy:fast_policy ~seed:0 () in
  let calls = ref 0 in
  let broken _ =
    incr calls;
    raise (Sys_error "down")
  in
  let expect_error what r =
    match r with Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what | Error (_ : Err.t) -> ()
  in
  expect_error "first" (Supervisor.run sup ~name:"dep" broken);
  Alcotest.(check bool) "not yet quarantined" false (Supervisor.quarantined sup "dep");
  expect_error "second" (Supervisor.run sup ~name:"dep" broken);
  Alcotest.(check bool) "quarantined after 2 streak failures" true
    (Supervisor.quarantined sup "dep");
  Alcotest.(check int) "6 attempts so far" 6 !calls;
  expect_error "short-circuit 1" (Supervisor.run sup ~name:"dep" broken);
  expect_error "short-circuit 2" (Supervisor.run sup ~name:"dep" broken);
  Alcotest.(check int) "quarantined calls never reach the operation" 6 !calls;
  expect_error "probe" (Supervisor.run sup ~name:"dep" broken);
  Alcotest.(check int) "every 3rd quarantined call probes" 9 !calls;
  Supervisor.reset sup "dep";
  Alcotest.(check bool) "reset lifts quarantine" false (Supervisor.quarantined sup "dep");
  let r = Supervisor.run sup ~name:"dep" (fun _ -> 42) in
  Alcotest.(check (result int reject)) "healthy after reset" (Ok 42) r

let test_supervisor_backoff_deterministic () =
  let policy = { Supervisor.default_policy with jitter = 0.5 } in
  let delays seed =
    let rng = Rng.create seed in
    List.init 8 (fun k -> Supervisor.backoff_delay policy ~rng ~attempt:(k + 1))
  in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" (delays 11) (delays 11);
  List.iter
    (fun d ->
      Alcotest.(check bool) "delay within [0, max*(1+jitter)]" true
        (d >= 0.0 && d <= policy.Supervisor.max_delay *. 1.5))
    (delays 11);
  Alcotest.(check bool) "different seeds differ somewhere" true (delays 11 <> delays 12)

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_fault_trace spec site hits =
  Chaos.configure spec;
  let faults = ref [] in
  for k = 1 to hits do
    try Chaos.point site with Sys_error _ -> faults := k :: !faults
  done;
  Chaos.disarm ();
  List.rev !faults

let test_chaos_deterministic () =
  let spec = "seed=3;fail=x.site:0.5" in
  let a = chaos_fault_trace spec "x.site" 64 in
  let b = chaos_fault_trace spec "x.site" 64 in
  Alcotest.(check (list int)) "same spec, same fault schedule" a b;
  Alcotest.(check bool) "p=0.5 faults sometimes, not always" true
    (a <> [] && List.length a < 64);
  let c = chaos_fault_trace "seed=4;fail=x.site:0.5" "x.site" 64 in
  Alcotest.(check bool) "seed changes the schedule" true (a <> c)

let test_chaos_disarmed_is_inert () =
  Chaos.disarm ();
  for _ = 1 to 100 do
    Chaos.point "journal.append"
  done;
  Alcotest.(check bool) "disarmed points never fault" true (not (Chaos.active ()))

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let small_instance ?(users = 40) () =
  let base = Scalability.with_users Scalability.default_config users in
  Scalability.generate
    { base with Scalability.num_items = users * 2; num_classes = 4; items_per_user = 10 }
    ~seed:1

let outcome_t =
  Alcotest.testable
    (fun ppf (o : Driver.outcome) ->
      Format.fprintf ppf "seq=%Ld triples=%d realized=%.17g stale=%b" o.seq
        (List.length o.triples) o.realized o.stale)
    (fun a b ->
      Int64.equal a.Driver.seq b.Driver.seq
      && a.Driver.triples = b.Driver.triples
      && Float.equal a.Driver.realized b.Driver.realized
      && Bool.equal a.Driver.stale b.Driver.stale)

let apply_all st wl =
  List.iter
    (fun ev -> match Server.apply st ev with Ok _ -> () | Error e -> Err.raise_ e)
    wl

(* Abandon a live server (no close, no final snapshot) and boot a second
   one from its directory: the WAL alone must reproduce the state. *)
let test_recovery_identity_in_process () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance () in
  let cfg =
    { (Server.default_config ~data_dir:(Filename.concat dir "d")) with Server.snapshot_every = 17 }
  in
  let wl = Driver.synth_workload inst ~seed:2 ~events:60 in
  let live = Server.create cfg inst in
  apply_all live wl;
  let expected = Driver.outcome_of_server live in
  let recovered = Server.create cfg inst in
  Alcotest.check outcome_t "crash recovery reproduces the live fold" expected
    (Driver.outcome_of_server recovered);
  Server.close recovered

let test_transient_io_faults_keep_journal_clean () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance ~users:20 () in
  let cfg =
    { (Server.default_config ~data_dir:(Filename.concat dir "d")) with Server.snapshot_every = 0 }
  in
  let wl = Driver.synth_workload inst ~seed:5 ~events:50 in
  let live = Server.create cfg inst in
  Chaos.configure "seed=9;fail=journal.append:0.3;fail=journal.mid_write:0.3";
  let accepted = ref 0 and refused = ref 0 in
  List.iter
    (fun ev ->
      match Server.apply live ev with Ok _ -> incr accepted | Error _ -> incr refused)
    wl;
  Chaos.disarm ();
  Alcotest.(check bool) "chaos at p=0.3 refused nothing the retries could save" true
    (!accepted > 0);
  (* every accepted event must be a clean, gapless journal record *)
  let seqs = List.map fst (Journal.events (Filename.concat dir "d/journal.wal")) in
  Alcotest.(check (list int64)) "journal is gapless despite injected tears"
    (List.init !accepted (fun k -> Int64.of_int (k + 1)))
    seqs;
  let expected = Driver.outcome_of_server live in
  let recovered = Server.create cfg inst in
  Alcotest.check outcome_t "recovery matches the live fold" expected
    (Driver.outcome_of_server recovered);
  Server.close recovered

let test_degraded_mode_and_repair () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance ~users:20 () in
  let cfg =
    {
      (Server.default_config ~data_dir:(Filename.concat dir "d")) with
      Server.replan_evals = Some 1;
    }
  in
  let st = Server.create cfg inst in
  (* adopt a planned pair so a (truncated) replan must run *)
  let z =
    match Strategy.to_list (Server.strategy st) with
    | z :: _ -> z
    | [] -> Alcotest.fail "initial plan is empty"
  in
  (match Server.apply st (Journal.Adopt { u = z.u; i = z.i; t = z.t }) with
  | Ok _ -> ()
  | Error e -> Err.raise_ e);
  Alcotest.(check bool) "1-evaluation replan truncates: user is stale" true
    (List.mem z.u (Server.stale_users st));
  let _, stale = Server.topk st ~u:z.u ~time:z.t ~k:3 in
  Alcotest.(check bool) "answers carry the stale flag" true stale;
  (match Server.apply st Journal.Repair with Ok _ -> () | Error e -> Err.raise_ e);
  Alcotest.(check (list int)) "repair replans unbounded and clears staleness" []
    (Server.stale_users st);
  let _, stale = Server.topk st ~u:z.u ~time:z.t ~k:3 in
  Alcotest.(check bool) "answers are fresh again" false stale;
  Server.close st

(* the global quantity budget (DESIGN.md §14) rides the serving adoption
   path for free: releases and incremental replans go through
   [Greedy.run ~allowed ~base], which treats a full quota as completion —
   the cap must hold after every event and across WAL recovery *)
let test_quantity_budget_respected_through_serving () =
  with_temp_dir @@ fun dir ->
  let plain = small_instance ~users:20 () in
  let s_plain, _ = Revmax.Greedy.run plain in
  let cap = max 1 (Strategy.size s_plain / 2) in
  let inst = Instance.with_max_total plain cap in
  let cfg = Server.default_config ~data_dir:(Filename.concat dir "d") in
  let st = Server.create cfg inst in
  Alcotest.(check bool) "initial plan within the cap" true
    (Strategy.size (Server.strategy st) <= cap);
  List.iter
    (fun ev ->
      (match Server.apply st ev with Ok _ -> () | Error e -> Err.raise_ e);
      let n = Strategy.size (Server.strategy st) in
      if n > cap then Alcotest.failf "cap %d exceeded after %a: %d" cap Journal.pp_event ev n)
    (Driver.synth_workload inst ~seed:4 ~events:40);
  (match Strategy.validate (Server.strategy st) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "final serving strategy invalid: %s" (Err.message e));
  let expected = Driver.outcome_of_server st in
  let recovered = Server.create cfg inst in
  Alcotest.check outcome_t "budgeted recovery reproduces the live fold" expected
    (Driver.outcome_of_server recovered);
  Server.close recovered

let test_corrupt_snapshot_is_typed_error () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance ~users:10 () in
  let cfg = Server.default_config ~data_dir:(Filename.concat dir "d") in
  let st = Server.create cfg inst in
  Server.close st;
  let snap = Filename.concat dir "d/snapshot.revmax" in
  Out_channel.with_open_bin snap (fun oc -> Out_channel.output_string oc "revmax-serve-snapshot 1\nseq zebra\n");
  (match Server.create cfg inst with
  | exception Err.Error (Err.Parse_error _) -> ()
  | exception e -> Alcotest.failf "wanted Parse_error, got %s" (Printexc.to_string e)
  | st2 ->
      Server.close st2;
      Alcotest.fail "corrupt snapshot silently accepted")

let test_topk_scores_and_order () =
  with_temp_dir @@ fun _dir ->
  let inst = small_instance ~users:10 () in
  let s, _ = Revmax.Greedy.run inst in
  let all = Strategy.to_list s in
  List.iter
    (fun (z : Revmax.Triple.t) ->
      let items = Server.topk_of_strategy inst s ~u:z.u ~time:z.t ~k:1000 in
      let planned =
        List.filter (fun (w : Revmax.Triple.t) -> w.u = z.u && w.t = z.t) all |> List.length
      in
      Alcotest.(check int) "every planned slot is answered" planned (List.length items);
      Alcotest.(check bool) "scores are sorted non-increasing" true
        (let rec sorted = function
           | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
           | _ -> true
         in
         sorted items);
      List.iter
        (fun (i, score) ->
          Alcotest.(check bool) "score is price × in-plan adoption probability" true
            (Float.equal score
               (Instance.price inst ~i ~time:z.t
               *. Revmax.Revenue.dynamic_probability_in s (Revmax.Triple.make ~u:z.u ~i ~t:z.t))))
        items)
    (List.filteri (fun k _ -> k < 10) all)

let test_invalid_events_refused_without_journaling () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance ~users:10 () in
  let cfg =
    { (Server.default_config ~data_dir:(Filename.concat dir "d")) with Server.snapshot_every = 0 }
  in
  let st = Server.create cfg inst in
  List.iter
    (fun ev ->
      match Server.apply st ev with
      | Ok _ -> Alcotest.failf "hostile event accepted: %a" Journal.pp_event ev
      | Error (_ : Err.t) -> ())
    [
      Journal.Adopt { u = -1; i = 0; t = 1 };
      Journal.Adopt { u = 0; i = 10_000; t = 1 };
      Journal.Click { u = 0; i = 0; t = 0 };
      Journal.Cap { i = -3; delta = 1 };
    ];
  Alcotest.(check int64) "nothing applied" 0L (Server.seq st);
  Alcotest.(check (list (pair int64 event_t))) "nothing journaled" []
    (Journal.events (Filename.concat dir "d/journal.wal"));
  Server.close st

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let reqs =
    [
      Server.Wire.Topk { u = 7; time = 3; k = 5 };
      Server.Wire.Event (ev_adopt 1 2 3);
      Server.Wire.Event (ev_click 4 5 1);
      Server.Wire.Event (Journal.Cap { i = 9; delta = -4 });
      Server.Wire.Event Journal.Repair;
      Server.Wire.Stats;
      Server.Wire.Snapshot;
      Server.Wire.Dump;
      Server.Wire.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Server.Wire.decode_request (Server.Wire.encode_request req) with
      | Ok req' -> Alcotest.(check bool) "request roundtrip" true (req = req')
      | Error msg -> Alcotest.failf "request failed to roundtrip: %s" msg)
    reqs;
  let resps =
    [
      Server.Wire.Items { stale = true; items = [ (3, 1.5); (9, 0.25) ] };
      Server.Wire.Items { stale = false; items = [] };
      Server.Wire.Ack { seq = 77L; stale = false };
      Server.Wire.Stats_r { seq = 1L; size = 2; stale = true; realized = 3.25; now = 4 };
      Server.Wire.Dump_r [ (1, 2, 3); (4, 5, 6) ];
      Server.Wire.Err_r "nope";
    ]
  in
  List.iter
    (fun resp ->
      match Server.Wire.decode_response (Server.Wire.encode_response resp) with
      | Ok resp' -> Alcotest.(check bool) "response roundtrip" true (resp = resp')
      | Error msg -> Alcotest.failf "response failed to roundtrip: %s" msg)
    resps

let test_wire_hostile_bytes_never_raise () =
  let rng = Rng.create 99 in
  for _ = 1 to 500 do
    let len = Rng.int rng 40 in
    let b = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    (match Server.Wire.decode_request b with Ok _ | Error _ -> ());
    match Server.Wire.decode_response b with Ok _ | Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Fork/kill/restart driver                                            *)
(* ------------------------------------------------------------------ *)

let check_replay name (r : Driver.report) =
  if not r.identical then
    Alcotest.failf "%s diverged:@.  expected %a@.  actual   %a" name
      (fun ppf (o : Driver.outcome) ->
        Format.fprintf ppf "seq=%Ld triples=%d realized=%.17g" o.seq (List.length o.triples)
          o.realized)
      r.expected
      (fun ppf (o : Driver.outcome) ->
        Format.fprintf ppf "seq=%Ld triples=%d realized=%.17g" o.seq (List.length o.triples)
          o.realized)
      r.actual

let test_driver_sigkill_schedule_identity () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance () in
  let cfg =
    { (Server.default_config ~data_dir:(Filename.concat dir "d")) with Server.snapshot_every = 13 }
  in
  let wl = Driver.synth_workload inst ~seed:3 ~events:70 in
  let r = Driver.run_replay ~kill_every:18 cfg inst wl in
  check_replay "kill-every-18" r;
  Alcotest.(check bool) "the schedule actually killed the child" true (r.restarts >= 3)

let test_driver_chaos_torn_write_identity () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance () in
  let cfg = Server.default_config ~data_dir:(Filename.concat dir "d") in
  let wl = Driver.synth_workload inst ~seed:4 ~events:60 in
  let r = Driver.run_replay ~chaos:"seed=7;crash=journal.mid_write:25" cfg inst wl in
  check_replay "torn-write crashes" r;
  Alcotest.(check bool) "seeded crashes fired" true (r.restarts >= 1)

let test_driver_batched_fsync_loss_is_resent () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance () in
  let cfg =
    {
      (Server.default_config ~data_dir:(Filename.concat dir "d")) with
      Server.sync_every = 8;
      snapshot_every = 0;
    }
  in
  let wl = Driver.synth_workload inst ~seed:6 ~events:50 in
  let r = Driver.run_replay ~kill_every:11 cfg inst wl in
  check_replay "acked-but-unsynced suffix resent after SIGKILL" r;
  Alcotest.(check bool) "some events needed resending" true (r.events_sent >= List.length wl)

(* ------------------------------------------------------------------ *)
(* SIGPIPE hardening                                                   *)
(* ------------------------------------------------------------------ *)

let test_client_disconnect_does_not_kill_server () =
  with_temp_dir @@ fun dir ->
  let inst = small_instance ~users:10 () in
  let cfg = Server.default_config ~data_dir:(Filename.concat dir "d") in
  let parent_sock, child_sock = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close parent_sock;
      let code =
        try
          let st = Server.create cfg inst in
          Server.serve st ~in_fd:child_sock ~out_fd:child_sock;
          Server.close st;
          0
        with _ -> 1
      in
      Stdlib.exit code
  | pid ->
      Unix.close child_sock;
      (* enough pipelined requests that the server is still writing
         responses when the client vanishes *)
      let req = Server.Wire.encode_request (Server.Wire.Dump) in
      (try
         for _ = 1 to 200 do
           Server.Wire.write_frame parent_sock req
         done
       with Unix.Unix_error _ -> ());
      Unix.close parent_sock;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "server exits cleanly after EPIPE, not by signal" true
        (status = Unix.WEXITED 0)

(* ----- Driver.percentiles_of: nearest-rank pinning vectors ----- *)

let check_pcts name xs ~p50 ~p95 ~p99 ~max =
  let got = Driver.percentiles_of xs in
  Alcotest.(check (float 0.0)) (name ^ " p50") p50 got.Driver.p50;
  Alcotest.(check (float 0.0)) (name ^ " p95") p95 got.Driver.p95;
  Alcotest.(check (float 0.0)) (name ^ " p99") p99 got.Driver.p99;
  Alcotest.(check (float 0.0)) (name ^ " max") max got.Driver.max

let test_percentiles_hand_vectors () =
  (* nearest-rank definition: value at index ⌈p·n⌉ − 1 of the sorted
     sample. Hand-computed over small vectors, exercising the boundary
     cases the integer rank must get right. *)
  check_pcts "empty" [] ~p50:0.0 ~p95:0.0 ~p99:0.0 ~max:0.0;
  (* n = 1: every percentile is the single sample *)
  check_pcts "n=1" [ 7.5 ] ~p50:7.5 ~p95:7.5 ~p99:7.5 ~max:7.5;
  (* n = 2: p50 rank ⌈1.0⌉ = 1 → the lower sample, not the upper *)
  check_pcts "n=2" [ 2.0; 1.0 ] ~p50:1.0 ~p95:2.0 ~p99:2.0 ~max:2.0;
  (* n = 10: p50 rank 5, p95 rank ⌈9.5⌉ = 10, p99 rank ⌈9.9⌉ = 10 *)
  let v10 = List.init 10 (fun i -> float_of_int (i + 1)) in
  check_pcts "n=10" v10 ~p50:5.0 ~p95:10.0 ~p99:10.0 ~max:10.0;
  (* n = 20: p95·n exactly integral — rank 19, not 20 *)
  let v20 = List.init 20 (fun i -> float_of_int (i + 1)) in
  check_pcts "n=20" v20 ~p50:10.0 ~p95:19.0 ~p99:20.0 ~max:20.0;
  (* n = 100: every pct·n integral — p50 rank 50, p95 rank 95, p99 rank 99 *)
  let v100 = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_pcts "n=100" v100 ~p50:50.0 ~p95:95.0 ~p99:99.0 ~max:100.0;
  (* n = 200: p99·n = 198 exactly — rank 198 is the 198th value *)
  let v200 = List.init 200 (fun i -> float_of_int (i + 1)) in
  check_pcts "n=200" v200 ~p50:100.0 ~p95:190.0 ~p99:198.0 ~max:200.0

let test_percentiles_sort_input () =
  (* the function sorts; feed a shuffled vector and expect sorted ranks *)
  let xs = [ 9.0; 1.0; 5.0; 3.0; 7.0; 8.0; 2.0; 6.0; 4.0; 10.0 ] in
  check_pcts "shuffled n=10" xs ~p50:5.0 ~p95:10.0 ~p99:10.0 ~max:10.0

let () =
  Alcotest.run "serve"
    [
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "truncated tail self-heals" `Quick test_journal_truncated_tail_heals;
          Alcotest.test_case "bit flip drops the suffix" `Quick test_journal_bit_flip_drops_suffix;
          Alcotest.test_case "rotation" `Quick test_journal_rotate;
          Alcotest.test_case "batched fsync accounting" `Quick test_journal_sync_batching;
          Alcotest.test_case "injected tear rolls back" `Quick
            test_journal_injected_tear_rolls_back;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "retries then succeeds" `Quick test_supervisor_retries_then_succeeds;
          Alcotest.test_case "quarantine and probe" `Quick test_supervisor_quarantine_and_probe;
          Alcotest.test_case "backoff is deterministic" `Quick
            test_supervisor_backoff_deterministic;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "fault schedule is seeded" `Quick test_chaos_deterministic;
          Alcotest.test_case "disarmed is inert" `Quick test_chaos_disarmed_is_inert;
        ] );
      ( "server",
        [
          Alcotest.test_case "in-process recovery identity" `Quick
            test_recovery_identity_in_process;
          Alcotest.test_case "transient IO faults keep the journal clean" `Quick
            test_transient_io_faults_keep_journal_clean;
          Alcotest.test_case "degraded mode and repair" `Quick test_degraded_mode_and_repair;
          Alcotest.test_case "quantity budget holds through adoption and recovery" `Quick
            test_quantity_budget_respected_through_serving;
          Alcotest.test_case "corrupt snapshot is a typed error" `Quick
            test_corrupt_snapshot_is_typed_error;
          Alcotest.test_case "topk scoring and order" `Quick test_topk_scores_and_order;
          Alcotest.test_case "hostile events refused unjournaled" `Quick
            test_invalid_events_refused_without_journaling;
        ] );
      ( "wire",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "hostile bytes never raise" `Quick
            test_wire_hostile_bytes_never_raise;
        ] );
      ( "driver",
        [
          Alcotest.test_case "SIGKILL schedule identity" `Quick
            test_driver_sigkill_schedule_identity;
          Alcotest.test_case "chaos torn-write identity" `Quick
            test_driver_chaos_torn_write_identity;
          Alcotest.test_case "batched-fsync loss is resent" `Quick
            test_driver_batched_fsync_loss_is_resent;
        ] );
      ( "sigpipe",
        [
          Alcotest.test_case "client disconnect does not kill the server" `Quick
            test_client_disconnect_does_not_kill_server;
        ] );
      ( "percentiles",
        [
          Alcotest.test_case "nearest-rank hand vectors" `Quick test_percentiles_hand_vectors;
          Alcotest.test_case "input is sorted first" `Quick test_percentiles_sort_input;
        ] );
    ]
