(* Cross-solver conformance: every registered solver's output passes the
   full Strategy.validate, the greedy selection trace never hands a
   (user, time) display slot a larger marginal later than earlier, T=1
   greedy is sanity-bounded by the exact Max-DCS optimum, and
   Strategy.validate reports every violated constraint (not just the
   first). Run it alone with `dune build @conformance`. *)

module Rng = Revmax_prelude.Rng
module Err = Revmax_prelude.Err
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Greedy = Revmax.Greedy
module Exact = Revmax.Exact
module Algorithms = Revmax.Algorithms
open Helpers

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* the registry rows the conformance sweep covers: the default suite plus
   the sharded planner at a few shard counts *)
let solvers =
  Algorithms.default_suite
  @ [ Algorithms.Sharded_greedy 2; Algorithms.Sharded_greedy 4; Algorithms.Rl_greedy 3 ]

let prop_every_solver_validates =
  QCheck2.Test.make ~name:"every solver passes Strategy.validate" ~count:40 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      List.for_all
        (fun algo ->
          let s = Algorithms.run algo inst ~seed in
          match Strategy.validate s with
          | Ok () -> Strategy.violations s = []
          | Error _ -> false)
        solvers)

(* the same sweep over the constraint-variant families: slates (position
   multipliers scale each slot's primitive probability) and global
   quantity budgets — every registered solver must come back valid there
   too, with the full multi-witness validate agreeing with [violations] *)
let prop_every_solver_validates_on_slates =
  QCheck2.Test.make ~name:"every solver passes Strategy.validate on slate instances" ~count:40
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_slate_instance rng in
      List.for_all
        (fun algo ->
          let s = Algorithms.run algo inst ~seed in
          match Strategy.validate s with
          | Ok () -> Strategy.violations s = []
          | Error _ -> false)
        solvers)

let prop_every_solver_validates_on_quantity_budgets =
  QCheck2.Test.make
    ~name:"every solver passes Strategy.validate and the cap on budgeted instances" ~count:40
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_budgeted_instance rng in
      let cap = Instance.max_total_cap inst in
      List.for_all
        (fun algo ->
          let s = Algorithms.run algo inst ~seed in
          Strategy.size s <= cap
          &&
          match Strategy.validate s with
          | Ok () -> Strategy.violations s = []
          | Error _ -> false)
        solvers)

(* Greedy selects globally best-first, so the marginals credited to one
   (user, time) display slot come out non-increasing along the trace: a
   later, larger marginal for the same slot would have been selected
   earlier. This is an empirical regularity of the selection order (the
   revenue function is not universally submodular — see the Theorem 2
   counterexample in test_core), so it runs over a fixed, deterministic
   seed range with a small slack rather than as a universal law. *)
let test_greedy_slot_marginals_non_increasing () =
  for seed = 0 to 79 do
    let rng = Rng.create seed in
    let inst = random_instance rng in
    let last_revenue = ref 0.0 in
    let last_marginal : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
    let _ =
      Greedy.run
        ~trace:(fun (pt : Greedy.trace_point) ->
          let marginal = pt.revenue -. !last_revenue in
          last_revenue := pt.revenue;
          let slot = (pt.z.Triple.u, pt.z.Triple.t) in
          (match Hashtbl.find_opt last_marginal slot with
          | Some prev when marginal > prev +. 1e-9 ->
              Alcotest.failf
                "seed %d: slot (u=%d,t=%d) got marginal %.9g after %.9g at size %d" seed
                pt.z.Triple.u pt.z.Triple.t marginal prev pt.size
          | _ -> ());
          Hashtbl.replace last_marginal slot marginal)
        inst
    in
    ()
  done

(* T=1, singleton classes, β = 1: the Max-DCS reduction is the exact
   optimum, so greedy must land in (0, opt]: never above, and nonzero
   whenever the optimum is (greedy always picks something when any
   positive-marginal triple exists). *)
let prop_t1_greedy_bounded_by_flow_optimum =
  QCheck2.Test.make ~name:"T=1 greedy revenue within (0, Max-DCS optimum]" ~count:60 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let num_users = 1 + Rng.int rng 3 and num_items = 1 + Rng.int rng 3 in
      let adoption = ref [] in
      for u = 0 to num_users - 1 do
        for i = 0 to num_items - 1 do
          if Rng.bernoulli rng 0.8 then adoption := (u, i, [| Rng.unit_float rng |]) :: !adoption
        done
      done;
      let inst =
        Instance.create ~num_users ~num_items ~horizon:1 ~display_limit:(1 + Rng.int rng 2)
          ~class_of:(Array.init num_items (fun i -> i))
          ~capacity:(Array.init num_items (fun _ -> 1 + Rng.int rng num_users))
          ~saturation:(Array.make num_items 1.0)
          ~price:(Array.init num_items (fun _ -> [| Rng.uniform_in rng 1.0 10.0 |]))
          ~adoption:!adoption ()
      in
      let s, _ = Greedy.run inst in
      let _, opt = Exact.solve_t1 inst in
      let v = Revenue.total s in
      v <= opt +. 1e-9 && ((opt <= 1e-12 && v <= 1e-12) || v > 0.0))

(* ----- Strategy.validate reports ALL violated constraints ----- *)

(* regression: validate used to stop at the first violation, so a strategy
   breaking several constraints at once reported only one witness and
   repair loops fixed one constraint per validation round *)
let test_validate_reports_all_violations () =
  let inst =
    (* 2 users, 2 singleton-class items, k = 1, q = [1; 1] *)
    Instance.create ~num_users:2 ~num_items:2 ~horizon:2 ~display_limit:1 ~class_of:[| 0; 1 |]
      ~capacity:[| 1; 1 |] ~saturation:[| 0.5; 0.5 |]
      ~price:[| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |]
      ~adoption:
        [
          (0, 0, [| 0.5; 0.5 |]);
          (0, 1, [| 0.5; 0.5 |]);
          (1, 0, [| 0.5; 0.5 |]);
          (1, 1, [| 0.5; 0.5 |]);
        ]
      ()
  in
  let s = Strategy.create inst in
  (* user 0 overflows slot (0,1); both items end up with 2 distinct users *)
  List.iter (Strategy.add s)
    [ triple 0 0 1; triple 0 1 1; triple 1 0 1; triple 1 1 2 ];
  match Strategy.validate s with
  | Ok () -> Alcotest.fail "expected an invalid strategy"
  | Error (Err.Invalid_strategy vs) ->
      let displays =
        List.filter_map (function Err.Display_limit { u; time; _ } -> Some (u, time) | _ -> None) vs
      in
      let capacities =
        List.filter_map (function Err.Capacity { item; _ } -> Some item | _ -> None) vs
      in
      Alcotest.(check (list (pair int int))) "one display witness" [ (0, 1) ] displays;
      Alcotest.(check (list int)) "both capacity witnesses" [ 0; 1 ] capacities;
      (* the rendered message names every witness *)
      let msg = Err.message (Err.Invalid_strategy vs) in
      List.iter
        (fun needle ->
          if not (Revmax_prelude.Util.contains_substring msg needle) then
            Alcotest.failf "message %S misses %S" msg needle)
        [ "3 violated constraints" ]
  | Error e -> Alcotest.failf "expected Invalid_strategy, got %s" (Err.message e)

let test_validate_single_violation_message_unchanged () =
  (* a single witness renders exactly as before the multi-witness change *)
  let inst = example1_instance 0.5 in
  let s = Strategy.create inst in
  Strategy.add s (triple 0 0 1);
  Strategy.add s (triple 0 1 1);
  match Strategy.validate s with
  | Error (Err.Invalid_strategy [ v ]) ->
      Alcotest.(check string) "singleton message"
        ("invalid strategy: " ^ Err.constraint_message v)
        (Err.message (Err.Invalid_strategy [ v ]))
  | _ -> Alcotest.fail "expected exactly one violation"

let prop_violations_consistent_with_validate =
  QCheck2.Test.make ~name:"violations = [] iff validate = Ok" ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      Strategy.violations s = [] && Strategy.validate s = Ok ())

let () =
  Alcotest.run "conformance"
    [
      ( "solver-conformance",
        [
          QCheck_alcotest.to_alcotest prop_every_solver_validates;
          QCheck_alcotest.to_alcotest prop_every_solver_validates_on_slates;
          QCheck_alcotest.to_alcotest prop_every_solver_validates_on_quantity_budgets;
          Alcotest.test_case "greedy slot marginals non-increasing" `Quick
            test_greedy_slot_marginals_non_increasing;
          QCheck_alcotest.to_alcotest prop_t1_greedy_bounded_by_flow_optimum;
        ] );
      ( "validate-witnesses",
        [
          Alcotest.test_case "all violations reported" `Quick test_validate_reports_all_violations;
          Alcotest.test_case "singleton message unchanged" `Quick
            test_validate_single_violation_message_unchanged;
          QCheck_alcotest.to_alcotest prop_violations_consistent_with_validate;
        ] );
    ]
