module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Triple = Revmax.Triple
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Simulate = Revmax.Simulate
module Capacity_oracle = Revmax.Capacity_oracle
open Helpers

(* ----- Instance ----- *)

let test_instance_accessors () =
  let inst = example4_instance () in
  Alcotest.(check int) "users" 1 (Instance.num_users inst);
  Alcotest.(check int) "items" 1 (Instance.num_items inst);
  Alcotest.(check int) "horizon" 2 (Instance.horizon inst);
  Alcotest.(check int) "k" 1 (Instance.display_limit inst);
  Alcotest.(check int) "classes" 1 (Instance.num_classes inst);
  Alcotest.(check int) "class size" 1 (Instance.class_size inst 0);
  Alcotest.(check int) "capacity" 2 (Instance.capacity inst 0);
  check_float "saturation" 0.1 (Instance.saturation inst 0);
  check_float "price t1" 1.0 (Instance.price inst ~i:0 ~time:1);
  check_float "price t2" 0.95 (Instance.price inst ~i:0 ~time:2);
  check_float "q t1" 0.5 (Instance.q inst ~u:0 ~i:0 ~time:1);
  check_float "q t2" 0.6 (Instance.q inst ~u:0 ~i:0 ~time:2);
  Alcotest.(check bool) "candidate" true (Instance.is_candidate inst ~u:0 ~i:0);
  Alcotest.(check int) "candidate triples" 2 (Instance.num_candidate_triples inst)

let test_instance_validation () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad horizon" true
    (bad (fun () ->
         ignore
           (Instance.create ~num_users:1 ~num_items:1 ~horizon:0 ~display_limit:1
              ~class_of:[| 0 |] ~capacity:[| 1 |] ~saturation:[| 1.0 |] ~price:[| [||] |]
              ~adoption:[] ())));
  Alcotest.(check bool) "bad saturation" true
    (bad (fun () ->
         ignore
           (Instance.create ~num_users:1 ~num_items:1 ~horizon:1 ~display_limit:1
              ~class_of:[| 0 |] ~capacity:[| 1 |] ~saturation:[| 1.5 |] ~price:[| [| 1.0 |] |]
              ~adoption:[] ())));
  Alcotest.(check bool) "bad adoption prob" true
    (bad (fun () ->
         ignore
           (Instance.create ~num_users:1 ~num_items:1 ~horizon:1 ~display_limit:1
              ~class_of:[| 0 |] ~capacity:[| 1 |] ~saturation:[| 1.0 |] ~price:[| [| 1.0 |] |]
              ~adoption:[ (0, 0, [| 1.2 |]) ] ())));
  Alcotest.(check bool) "duplicate adoption" true
    (bad (fun () ->
         ignore
           (Instance.create ~num_users:1 ~num_items:1 ~horizon:1 ~display_limit:1
              ~class_of:[| 0 |] ~capacity:[| 1 |] ~saturation:[| 1.0 |] ~price:[| [| 1.0 |] |]
              ~adoption:[ (0, 0, [| 0.5 |]); (0, 0, [| 0.4 |]) ] ())));
  Alcotest.(check bool) "negative price" true
    (bad (fun () ->
         ignore
           (Instance.create ~num_users:1 ~num_items:1 ~horizon:1 ~display_limit:1
              ~class_of:[| 0 |] ~capacity:[| 1 |] ~saturation:[| 1.0 |] ~price:[| [| -1.0 |] |]
              ~adoption:[] ())))

let test_instance_candidate_views () =
  let inst = example1_instance 0.4 in
  let cands = Instance.candidates inst 0 in
  Alcotest.(check int) "two candidate items" 2 (Array.length cands);
  Alcotest.(check (list int)) "class members" [ 0; 1 ]
    (List.sort compare (Instance.candidate_items_in_class inst ~u:0 ~cls:0));
  Alcotest.(check int) "positive triples" 6 (Instance.num_candidate_triples inst);
  let count = ref 0 in
  Instance.iter_candidate_triples inst (fun _ q ->
      incr count;
      check_float "q value" 0.4 q);
  Alcotest.(check int) "iterated all" 6 !count

let test_saturation_disabled_view () =
  let inst = example4_instance () in
  let inst' = Instance.with_saturation_disabled inst in
  check_float "disabled" 1.0 (Instance.saturation inst' 0);
  check_float "original untouched" 0.1 (Instance.saturation inst 0)

(* ----- Strategy ----- *)

let test_strategy_add_remove () =
  let inst = example1_instance 0.4 in
  let s = Strategy.create inst in
  let z1 = triple 0 0 1 and z2 = triple 0 1 2 in
  Strategy.add s z1;
  Strategy.add s z2;
  Alcotest.(check int) "size" 2 (Strategy.size s);
  Alcotest.(check bool) "mem" true (Strategy.mem s z1);
  Strategy.remove s z1;
  Alcotest.(check bool) "removed" false (Strategy.mem s z1);
  Alcotest.(check int) "size after remove" 1 (Strategy.size s);
  Alcotest.check_raises "duplicate add" (Invalid_argument "Strategy.add: duplicate triple")
    (fun () ->
      Strategy.add s z2);
  Alcotest.check_raises "absent remove" (Invalid_argument "Strategy.remove: absent triple")
    (fun () -> Strategy.remove s z1)

(* regression for the old filter-based removal: removing a triple must drop
   exactly its chain slot, keep the rest of the chain intact, and leave the
   cached aggregates equal to a freshly-built strategy's *)
let test_strategy_remove_exactly_one () =
  let inst = example1_instance 0.4 in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 1 2; triple 0 0 3 ] in
  Strategy.remove s (triple 0 1 2);
  Alcotest.(check (list string)) "chain keeps the others" [ "(0, 0, 1)"; "(0, 0, 3)" ]
    (List.map Triple.to_string (Strategy.chain s ~u:0 ~cls:0));
  Alcotest.(check int) "chain size" 2 (Strategy.chain_size s ~u:0 ~cls:0);
  let fresh = Strategy.of_list inst [ triple 0 0 1; triple 0 0 3 ] in
  check_float ~eps:1e-12 "caches match a fresh build" (Revenue.total_incremental fresh)
    (Revenue.total_incremental s);
  (* draining the chain removes its entry entirely *)
  Strategy.remove s (triple 0 0 1);
  Strategy.remove s (triple 0 0 3);
  Alcotest.(check int) "drained chain gone" 0 (Strategy.chain_size s ~u:0 ~cls:0);
  check_float ~eps:1e-12 "empty revenue" 0.0 (Revenue.total_incremental s);
  (* re-adding after the churn reproduces a fresh strategy's revenue *)
  Strategy.add s (triple 0 1 2);
  check_float ~eps:1e-12 "rebuilds cleanly"
    (Revenue.total (Strategy.of_list inst [ triple 0 1 2 ]))
    (Revenue.total_incremental s)

(* regression for the uncleared vacated tail slot: after [Chain.remove]
   shifts the suffix left, the old boundary slot beyond [len] must be reset
   to the dummy/0.0 state so a subsequent re-insert at that boundary can
   never alias stale per-triple data. Exercised through remove → re-insert
   at the exact old boundary, compared field-by-field against a fresh
   build. *)
let test_chain_remove_clears_tail () =
  let module Chain = Revmax.Chain in
  let inst = example1_instance 0.4 in
  let z1 = triple 0 0 1 and z2 = triple 0 1 2 and z3 = triple 0 0 3 in
  let c = Chain.create inst in
  List.iter (Chain.insert c) [ z1; z2; z3 ];
  (* removing the middle triple shifts z3 left and vacates the old tail *)
  Chain.remove c z2;
  Alcotest.(check int) "length after remove" 2 (Chain.length c);
  Alcotest.(check bool) "removed triple gone" false (Chain.mem c z2);
  Alcotest.(check (list string)) "survivors in order" [ "(0, 0, 1)"; "(0, 0, 3)" ]
    (List.map Triple.to_string (Chain.to_list c));
  (* re-insert at the old boundary: index 2, exactly the vacated slot *)
  Chain.insert c z2;
  let fresh = Chain.create inst in
  List.iter (Chain.insert fresh) [ z1; z2; z3 ];
  Alcotest.(check (list string)) "re-insert restores the chain"
    (List.map Triple.to_string (Chain.to_list fresh))
    (List.map Triple.to_string (Chain.to_list c));
  List.iter
    (fun with_saturation ->
      check_float ~eps:0.0 "revenue bit-identical to fresh build"
        (Chain.revenue ~with_saturation fresh)
        (Chain.revenue ~with_saturation c);
      (* per-triple aggregates agree exactly as well *)
      Chain.iter fresh (fun z ->
          check_float ~eps:0.0 "prob bit-identical"
            (Option.get (Chain.prob ~with_saturation fresh z))
            (Option.get (Chain.prob ~with_saturation c z))))
    [ true; false ];
  (* and a probe marginal at the far boundary sees no stale state either *)
  let probe = triple 0 1 3 in
  check_float ~eps:0.0 "marginal bit-identical"
    (Chain.marginal ~with_saturation:true fresh probe)
    (Chain.marginal ~with_saturation:true c probe)

let test_strategy_chain_order () =
  let inst = example1_instance 0.4 in
  let s = Strategy.create inst in
  (* insert out of order; chain must come back time-ascending *)
  Strategy.add s (triple 0 0 3);
  Strategy.add s (triple 0 1 1);
  Strategy.add s (triple 0 0 2);
  let chain = Strategy.chain s ~u:0 ~cls:0 in
  Alcotest.(check (list int)) "ascending times" [ 1; 2; 3 ]
    (List.map (fun (z : Triple.t) -> z.t) chain);
  Alcotest.(check int) "chain size" 3 (Strategy.chain_size s ~u:0 ~cls:0)

let test_strategy_constraints () =
  let inst = example1_instance 0.4 in
  (* k = 1: two items at the same time violate the display constraint *)
  let s = Strategy.create inst in
  Strategy.add s (triple 0 0 1);
  Alcotest.(check bool) "display blocks" false (Strategy.can_add s (triple 0 1 1));
  Alcotest.(check bool) "other time fine" true (Strategy.can_add s (triple 0 1 2));
  Alcotest.(check int) "display count" 1 (Strategy.display_count s ~u:0 ~time:1);
  Alcotest.(check bool) "valid" true (Strategy.is_valid s);
  (* force a violation and check the validators *)
  Strategy.add s (triple 0 1 1);
  Alcotest.(check bool) "invalid display" false (Strategy.is_valid_display_only s);
  Alcotest.(check bool) "invalid overall" false (Strategy.is_valid s)

let test_strategy_capacity_tracking () =
  let inst =
    Instance.create ~num_users:3 ~num_items:1 ~horizon:2 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 2 |] ~saturation:[| 1.0 |]
      ~price:[| [| 1.0; 1.0 |] |]
      ~adoption:[ (0, 0, [| 0.5; 0.5 |]); (1, 0, [| 0.5; 0.5 |]); (2, 0, [| 0.5; 0.5 |]) ]
      ()
  in
  let s = Strategy.create inst in
  Strategy.add s (triple 0 0 1);
  Strategy.add s (triple 0 0 2);
  (* same user twice: only one distinct user *)
  Alcotest.(check int) "distinct users" 1 (Strategy.item_user_count s 0);
  Strategy.add s (triple 1 0 1);
  Alcotest.(check int) "two users" 2 (Strategy.item_user_count s 0);
  Alcotest.(check bool) "capacity blocks third" false (Strategy.can_add s (triple 2 0 1));
  Alcotest.(check bool) "existing user still allowed" true (Strategy.can_add s (triple 1 0 2));
  Alcotest.(check bool) "still valid" true (Strategy.is_valid s)

let test_strategy_copy_independent () =
  let inst = example1_instance 0.3 in
  let s = Strategy.create inst in
  Strategy.add s (triple 0 0 1);
  let s' = Strategy.copy s in
  Strategy.add s' (triple 0 1 2);
  Alcotest.(check int) "original unchanged" 1 (Strategy.size s);
  Alcotest.(check int) "copy grew" 2 (Strategy.size s')

let test_repeat_histogram () =
  let inst = example1_instance 0.3 in
  let s = Strategy.create inst in
  Strategy.add s (triple 0 0 1);
  Strategy.add s (triple 0 0 2);
  Strategy.add s (triple 0 1 3);
  let hist = Strategy.repeat_histogram s in
  Alcotest.(check int) "one pair once" 1 hist.(0);
  Alcotest.(check int) "one pair twice" 1 hist.(1);
  Alcotest.(check int) "none thrice" 0 hist.(2)

(* ----- Revenue: the paper's worked examples ----- *)

let test_memory_formula () =
  let chain = [ triple 0 0 1; triple 0 1 2 ] in
  check_float "M at t=3" (0.5 +. 1.0) (Revenue.memory ~chain ~time:3);
  check_float "M at t=1" 0.0 (Revenue.memory ~chain ~time:1);
  check_float "M at t=2" 1.0 (Revenue.memory ~chain ~time:2)

(* Example 1 of the paper: S = {(u,i,1), (u,j,2), (u,i,3)}, C(i) = C(j),
   all primitive probabilities a:
   qS(u,i,1) = a
   qS(u,j,2) = (1−a) · a · β^1
   qS(u,i,3) = (1−a)² · a · β^{1 + 1/2} *)
let test_example1_dynamic_probabilities () =
  let a = 0.4 in
  let inst = example1_instance a in
  let beta = Instance.saturation inst 0 in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 1 2; triple 0 0 3 ] in
  check_float "qS(u,i,1)" a (Revenue.dynamic_probability_in s (triple 0 0 1));
  check_float "qS(u,j,2)"
    ((1.0 -. a) *. a *. beta)
    (Revenue.dynamic_probability_in s (triple 0 1 2));
  check_float "qS(u,i,3)"
    ((1.0 -. a) ** 2.0 *. a *. (beta ** 1.5))
    (Revenue.dynamic_probability_in s (triple 0 0 3))

(* Example 4 / Theorem 2 non-monotonicity: Rev({(u,i,2)}) = 0.57 while
   Rev({(u,i,1),(u,i,2)}) = 0.5285 *)
let test_example4_revenues () =
  let inst = example4_instance () in
  let s_small = Strategy.of_list inst [ triple 0 0 2 ] in
  let s_large = Strategy.of_list inst [ triple 0 0 1; triple 0 0 2 ] in
  check_float ~eps:1e-12 "Rev(S)" 0.57 (Revenue.total s_small);
  check_float ~eps:1e-12 "Rev(S')" 0.5285 (Revenue.total s_large);
  Alcotest.(check bool) "non-monotone" true (Revenue.total s_large < Revenue.total s_small)

let test_same_time_competition () =
  (* two same-class items at the same time: each discounted by the other *)
  let inst =
    Instance.create ~num_users:1 ~num_items:2 ~horizon:1 ~display_limit:2 ~class_of:[| 0; 0 |]
      ~capacity:[| 1; 1 |] ~saturation:[| 1.0; 1.0 |]
      ~price:[| [| 1.0 |]; [| 1.0 |] |]
      ~adoption:[ (0, 0, [| 0.5 |]); (0, 1, [| 0.8 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 1 1 ] in
  check_float "qS(i)" (0.5 *. 0.2) (Revenue.dynamic_probability_in s (triple 0 0 1));
  check_float "qS(j)" (0.8 *. 0.5) (Revenue.dynamic_probability_in s (triple 0 1 1));
  check_float "Rev" ((0.5 *. 0.2) +. (0.8 *. 0.5)) (Revenue.total s)

let test_cross_class_independence () =
  (* items in different classes never interact *)
  let inst =
    Instance.create ~num_users:1 ~num_items:2 ~horizon:2 ~display_limit:2 ~class_of:[| 0; 1 |]
      ~capacity:[| 1; 1 |] ~saturation:[| 0.5; 0.5 |]
      ~price:[| [| 2.0; 2.0 |]; [| 3.0; 3.0 |] |]
      ~adoption:[ (0, 0, [| 0.5; 0.5 |]); (0, 1, [| 0.4; 0.4 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 1 2 ] in
  check_float "item 0 untouched" 0.5 (Revenue.dynamic_probability_in s (triple 0 0 1));
  check_float "item 1 untouched" 0.4 (Revenue.dynamic_probability_in s (triple 0 1 2));
  check_float "additive revenue" ((2.0 *. 0.5) +. (3.0 *. 0.4)) (Revenue.total s)

let test_full_saturation_beta_zero () =
  (* β = 0: any repetition within the class kills later probability *)
  let inst =
    Instance.create ~num_users:1 ~num_items:1 ~horizon:2 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 1 |] ~saturation:[| 0.0 |]
      ~price:[| [| 1.0; 1.0 |] |]
      ~adoption:[ (0, 0, [| 0.3; 0.9 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 0 2 ] in
  check_float "first unaffected" 0.3 (Revenue.dynamic_probability_in s (triple 0 0 1));
  check_float "second killed" 0.0 (Revenue.dynamic_probability_in s (triple 0 0 2))

let test_probability_of_absent_triple_is_zero () =
  let inst = example4_instance () in
  let s = Strategy.of_list inst [ triple 0 0 1 ] in
  check_float "absent triple" 0.0 (Revenue.dynamic_probability_in s (triple 0 0 2))

let test_marginal_identity_small () =
  let inst = example4_instance () in
  let s = Strategy.of_list inst [ triple 0 0 2 ] in
  let z = triple 0 0 1 in
  let m = Revenue.marginal s z in
  let s' = Strategy.of_list inst [ triple 0 0 1; triple 0 0 2 ] in
  check_float ~eps:1e-12 "marginal = Rev(S+z) − Rev(S)"
    (Revenue.total s' -. Revenue.total s)
    m;
  Alcotest.(check bool) "negative marginal here" true (m < 0.0);
  check_float "marginal of member is 0" 0.0 (Revenue.marginal s (triple 0 0 2))

(* ----- Property-based: model laws on random instances ----- *)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let prop_marginal_identity =
  QCheck2.Test.make ~name:"RevS(z) = Rev(S∪{z}) − Rev(S)" ~count:150 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      let all = candidate_triples inst in
      List.for_all
        (fun z ->
          if Strategy.mem s z then true
          else begin
            let before = Revenue.total s in
            let m = Revenue.marginal s z in
            let s' = Strategy.copy s in
            Strategy.add s' z;
            Helpers.float_eq ~eps:1e-9 (Revenue.total s' -. before) m
          end)
        all)

(* the O(L) incremental engine agrees with the naive reference oracle in
   both saturation modes, for every candidate insertion point. On an empty
   target chain both evaluators reduce to the same p·q closed form through
   the shared Chain.saturation_factor, so the agreement is required to be
   bit-exact there; elsewhere the differently-ordered sums may differ by
   rounding and 1e-9 applies. *)
let prop_incremental_marginal_matches_naive =
  QCheck2.Test.make ~name:"marginal_incremental ≈ naive marginal" ~count:150 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      List.for_all
        (fun z ->
          let chain_empty = Strategy.chain_of_triple s z = [] in
          List.for_all
            (fun with_saturation ->
              let naive = Revenue.marginal ~with_saturation s z in
              let incr = Revenue.marginal_incremental ~with_saturation s z in
              if chain_empty && not (Strategy.mem s z) then Float.equal naive incr
              else Helpers.float_eq ~eps:1e-9 naive incr)
            [ true; false ])
        (candidate_triples inst))

let prop_incremental_total_matches_naive =
  QCheck2.Test.make ~name:"total_incremental ≈ naive total" ~count:150 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      Helpers.float_eq ~eps:1e-9 (Revenue.total s) (Revenue.total_incremental s)
      && Helpers.float_eq ~eps:1e-9
           (Revenue.total ~with_saturation:false s)
           (Revenue.total_incremental ~with_saturation:false s))

(* cached chain aggregates stay consistent under arbitrary add/remove churn *)
let prop_chain_caches_survive_churn =
  QCheck2.Test.make ~name:"cached revenue survives add/remove churn" ~count:80 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = Strategy.create inst in
      let all = Array.of_list (candidate_triples inst) in
      Array.length all = 0
      ||
      let ok = ref true in
      for _ = 1 to 40 do
        let z = all.(Rng.int rng (Array.length all)) in
        if Strategy.mem s z then Strategy.remove s z
        else if Strategy.can_add s z then Strategy.add s z;
        if not (Helpers.float_eq ~eps:1e-9 (Revenue.total s) (Revenue.total_incremental s))
        then ok := false
      done;
      !ok)

let prop_probabilities_in_unit_interval =
  QCheck2.Test.make ~name:"qS(u,i,t) ∈ [0,1]" ~count:150 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      List.for_all
        (fun z ->
          let q = Revenue.dynamic_probability_in s z in
          q >= 0.0 && q <= 1.0)
        (Strategy.to_list s))

(* Lemma 1: qS(u,i,t) is non-increasing in S *)
let prop_lemma1_probability_non_increasing =
  QCheck2.Test.make ~name:"Lemma 1: qS non-increasing in S" ~count:150 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      let extra = List.filter (fun z -> not (Strategy.mem s z)) (candidate_triples inst) in
      match extra with
      | [] -> true
      | w :: _ ->
          let before = List.map (fun z -> Revenue.dynamic_probability_in s z) (Strategy.to_list s) in
          let s' = Strategy.copy s in
          Strategy.add s' w;
          List.for_all2
            (fun b z -> Revenue.dynamic_probability_in s' z <= b +. 1e-12)
            before (Strategy.to_list s))

(* Theorem 2, Case 1 of the paper's proof — the provable regime: when [z]
   comes strictly later than every same-class triple of its user in S', the
   marginal is a pure gain and shrinks with the set (Lemma 1). The general
   claim of Theorem 2 is NOT universally true — see the pinned
   counterexample below and the Theory-notes section of DESIGN.md. *)
let prop_submodularity_case1 =
  QCheck2.Test.make ~name:"submodularity when z succeeds its chain (Case 1)" ~count:150 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let all = Array.of_list (candidate_triples inst) in
      if Array.length all < 2 then true
      else begin
        Rng.shuffle rng all;
        let s = Strategy.create inst and s' = Strategy.create inst in
        Array.iteri
          (fun idx z ->
            if idx mod 3 = 0 then begin
              Strategy.add s z;
              Strategy.add s' z
            end
            else if idx mod 3 = 1 then Strategy.add s' z)
          all;
        Array.for_all
          (fun (z : Triple.t) ->
            let chain = Strategy.chain_of_triple s' z in
            let succeeds_all = List.for_all (fun (c : Triple.t) -> c.t < z.t) chain in
            Strategy.mem s' z || (not succeeds_all)
            || Revenue.marginal s z >= Revenue.marginal s' z -. 1e-9)
          all
      end)

(* Counterexample to the unrestricted Theorem 2: one item, T = 3, no
   saturation (β = 1), q = (0.5, 0.5, 1.0), p = (1, 0.1, 10).
   With S = {(u,i,3)} ⊂ S' = {(u,i,2), (u,i,3)} and z = (u,i,1):
     RevS(z)  = 0.5 − 10·1·0.5            = −4.5
     RevS'(z) = 0.5 − 0.1·0.25 − 10·0.25  = −2.025 > RevS(z).
   The cheap triple at t=2 "shields" the expensive one at t=3, so adding z
   destroys less value in the larger set — diminishing returns fail. *)
let test_theorem2_counterexample () =
  let inst =
    Instance.create ~num_users:1 ~num_items:1 ~horizon:3 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 1 |] ~saturation:[| 1.0 |]
      ~price:[| [| 1.0; 0.1; 10.0 |] |]
      ~adoption:[ (0, 0, [| 0.5; 0.5; 1.0 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 3 ] in
  let s' = Strategy.of_list inst [ triple 0 0 2; triple 0 0 3 ] in
  let z = triple 0 0 1 in
  check_float ~eps:1e-12 "RevS(z)" (-4.5) (Revenue.marginal s z);
  check_float ~eps:1e-12 "RevS'(z)" (-2.025) (Revenue.marginal s' z);
  Alcotest.(check bool) "submodularity violated on this instance" true
    (Revenue.marginal s z < Revenue.marginal s' z)

let prop_revenue_nonnegative =
  QCheck2.Test.make ~name:"Rev(S) >= 0" ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      Revenue.total s >= 0.0)

(* saturation-free view: β=1 revenue is an upper bound on the true one *)
let prop_saturation_only_hurts =
  QCheck2.Test.make ~name:"Rev with saturation <= Rev without" ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      Revenue.total s <= Revenue.total ~with_saturation:false s +. 1e-9)

(* total revenue decomposes over (user, class) chains *)
let prop_chain_decomposition =
  QCheck2.Test.make ~name:"Rev(S) = sum of chain revenues" ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      let seen = Hashtbl.create 16 in
      let by_chains =
        List.fold_left
          (fun acc (z : Triple.t) ->
            let cls = Instance.class_of inst z.i in
            let key = (z.u * Instance.num_classes inst) + cls in
            if Hashtbl.mem seen key then acc
            else begin
              Hashtbl.add seen key ();
              acc +. Revenue.chain_revenue inst (Strategy.chain s ~u:z.u ~cls)
            end)
          0.0 (Strategy.to_list s)
      in
      Helpers.float_eq ~eps:1e-9 (Revenue.total s) by_chains)

(* triples outside a chain's class never change its revenue *)
let prop_chain_isolation =
  QCheck2.Test.make ~name:"cross-class triples don't perturb a chain" ~count:100 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_classes:2 rng in
      if Instance.num_classes inst < 2 then true
      else begin
        let s = random_valid_strategy inst rng in
        match Strategy.to_list s with
        | [] -> true
        | z :: _ ->
            let cls = Instance.class_of inst z.i in
            (* add any candidate of a different class *)
            let other =
              List.find_opt
                (fun (w : Triple.t) ->
                  (not (Strategy.mem s w)) && Instance.class_of inst w.i <> cls)
                (candidate_triples inst)
            in
            (match other with
            | None -> true
            | Some w ->
                let s' = Strategy.copy s in
                (* snapshot from s' itself: the cached chain aggregates are
                   insertion-order dependent in their last float bits, so
                   exact equality is only claimed against the same chain *)
                let before =
                  List.map
                    (fun t -> Revenue.dynamic_probability_in s' t)
                    (Strategy.chain s' ~u:z.u ~cls)
                in
                Strategy.add s' w;
                let after =
                  List.map
                    (fun t -> Revenue.dynamic_probability_in s' t)
                    (Strategy.chain s' ~u:z.u ~cls)
                in
                List.for_all2 (Helpers.float_eq ~eps:0.0) before after)
      end)

(* ----- Simulation agrees with the analytic objective ----- *)

let test_simulation_unbiased_small () =
  let inst = example4_instance () in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 0 0 2 ] in
  let rng = Rng.create 77 in
  let est = Simulate.estimate_revenue s ~samples:200_000 rng in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f vs analytic %.4f" est.Revmax_stats.Mc.mean 0.5285)
    true
    (Revmax_stats.Mc.within_ci est 0.5285)

let prop_simulation_matches_revenue =
  QCheck2.Test.make ~name:"simulator mean ≈ Rev(S)" ~count:12 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance rng in
      let s = random_valid_strategy inst rng in
      let expected = Revenue.total s in
      let est = Simulate.estimate_revenue s ~samples:60_000 rng in
      Revmax_stats.Mc.within_ci est expected)

let test_simulation_exclusive_adoptions () =
  (* within one class a user adopts at most once per simulated world *)
  let inst = example1_instance 0.9 in
  let chain = [ triple 0 0 1; triple 0 1 2; triple 0 0 3 ] in
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    match Simulate.simulate_chain inst chain rng with
    | None -> ()
    | Some z -> if not (List.exists (Triple.equal z) chain) then Alcotest.fail "alien adoption"
  done

let test_run_with_stock_limits () =
  (* capacity 1, two users with adoption probability 1: only one sale *)
  let inst =
    Instance.create ~num_users:2 ~num_items:1 ~horizon:1 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 1 |] ~saturation:[| 1.0 |]
      ~price:[| [| 10.0 |] |]
      ~adoption:[ (0, 0, [| 1.0 |]); (1, 0, [| 1.0 |]) ]
      ()
  in
  (* exceed the capacity deliberately (R-REVMAX style over-recommendation) *)
  let s = Strategy.of_list inst [ triple 0 0 1; triple 1 0 1 ] in
  let report = Simulate.run_with_stock s (Rng.create 3) in
  check_float "revenue capped by stock" 10.0 report.Simulate.revenue;
  Alcotest.(check int) "one stockout" 1 report.Simulate.stockouts

(* ----- Capacity oracle ----- *)

let test_capacity_oracle_below_capacity () =
  let inst = example4_instance () in
  let s = Strategy.of_list inst [ triple 0 0 1 ] in
  check_float "B = 1 when under capacity" 1.0
    (Capacity_oracle.prob_capacity_free s (triple 0 0 1))

let test_capacity_oracle_exact_value () =
  (* capacity 1, three users recommended the item at t=1; for user 2 the
     other two are independent adopters with probability 0.5 and 0.8:
     B = Pr[at most 0 adopt] = 0.5 · 0.2 = 0.1 *)
  let inst =
    Instance.create ~num_users:3 ~num_items:1 ~horizon:1 ~display_limit:1 ~class_of:[| 0 |]
      ~capacity:[| 1 |] ~saturation:[| 1.0 |]
      ~price:[| [| 1.0 |] |]
      ~adoption:[ (0, 0, [| 0.5 |]); (1, 0, [| 0.8 |]); (2, 0, [| 0.4 |]) ]
      ()
  in
  let s = Strategy.of_list inst [ triple 0 0 1; triple 1 0 1; triple 2 0 1 ] in
  check_float ~eps:1e-12 "B_S" 0.1 (Capacity_oracle.prob_capacity_free s (triple 2 0 1))

let prop_capacity_oracle_dp_vs_mc =
  QCheck2.Test.make ~name:"B_S: exact DP ≈ Monte-Carlo" ~count:10 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let inst = random_instance ~max_users:4 ~max_items:2 rng in
      let s = random_valid_strategy inst rng in
      List.for_all
        (fun z ->
          let exact = Capacity_oracle.prob_capacity_free s z in
          let mc = Capacity_oracle.prob_capacity_free_mc s z ~samples:20_000 rng in
          Float.abs (exact -. mc) < 0.03)
        (Strategy.to_list s))

let () =
  Alcotest.run "core"
    [
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "candidate views" `Quick test_instance_candidate_views;
          Alcotest.test_case "saturation-disabled view" `Quick test_saturation_disabled_view;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "add/remove" `Quick test_strategy_add_remove;
          Alcotest.test_case "remove exactly one" `Quick test_strategy_remove_exactly_one;
          Alcotest.test_case "chain remove clears tail" `Quick test_chain_remove_clears_tail;
          Alcotest.test_case "chain order" `Quick test_strategy_chain_order;
          Alcotest.test_case "display constraint" `Quick test_strategy_constraints;
          Alcotest.test_case "capacity tracking" `Quick test_strategy_capacity_tracking;
          Alcotest.test_case "copy independence" `Quick test_strategy_copy_independent;
          Alcotest.test_case "repeat histogram" `Quick test_repeat_histogram;
        ] );
      ( "revenue",
        [
          Alcotest.test_case "memory formula" `Quick test_memory_formula;
          Alcotest.test_case "paper example 1" `Quick test_example1_dynamic_probabilities;
          Alcotest.test_case "paper example 4" `Quick test_example4_revenues;
          Alcotest.test_case "same-time competition" `Quick test_same_time_competition;
          Alcotest.test_case "cross-class independence" `Quick test_cross_class_independence;
          Alcotest.test_case "full saturation" `Quick test_full_saturation_beta_zero;
          Alcotest.test_case "absent triple" `Quick test_probability_of_absent_triple_is_zero;
          Alcotest.test_case "marginal identity (example)" `Quick test_marginal_identity_small;
        ] );
      ( "revenue-properties",
        [
          QCheck_alcotest.to_alcotest prop_marginal_identity;
          QCheck_alcotest.to_alcotest prop_incremental_marginal_matches_naive;
          QCheck_alcotest.to_alcotest prop_incremental_total_matches_naive;
          QCheck_alcotest.to_alcotest prop_chain_caches_survive_churn;
          QCheck_alcotest.to_alcotest prop_probabilities_in_unit_interval;
          QCheck_alcotest.to_alcotest prop_lemma1_probability_non_increasing;
          QCheck_alcotest.to_alcotest prop_submodularity_case1;
          Alcotest.test_case "Theorem 2 counterexample" `Quick test_theorem2_counterexample;
          QCheck_alcotest.to_alcotest prop_revenue_nonnegative;
          QCheck_alcotest.to_alcotest prop_saturation_only_hurts;
          QCheck_alcotest.to_alcotest prop_chain_decomposition;
          QCheck_alcotest.to_alcotest prop_chain_isolation;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "unbiased on example 4" `Slow test_simulation_unbiased_small;
          QCheck_alcotest.to_alcotest prop_simulation_matches_revenue;
          Alcotest.test_case "exclusive adoptions" `Quick test_simulation_exclusive_adoptions;
          Alcotest.test_case "stock limits" `Quick test_run_with_stock_limits;
        ] );
      ( "capacity_oracle",
        [
          Alcotest.test_case "under capacity" `Quick test_capacity_oracle_below_capacity;
          Alcotest.test_case "exact value" `Quick test_capacity_oracle_exact_value;
          QCheck_alcotest.to_alcotest prop_capacity_oracle_dp_vs_mc;
        ] );
    ]
