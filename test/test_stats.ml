module Special = Revmax_stats.Special
module Distribution = Revmax_stats.Distribution
module Kde = Revmax_stats.Kde
module Pb = Revmax_stats.Poisson_binomial
module Mc = Revmax_stats.Mc
module Rng = Revmax_prelude.Rng

(* ----- Special functions ----- *)

let test_erf_reference_values () =
  (* reference values from Abramowitz & Stegun *)
  List.iter
    (fun (x, expected) -> Helpers.check_float ~eps:2e-7 (Printf.sprintf "erf %g" x) expected (Special.erf x))
    [
      (0.0, 0.0);
      (0.5, 0.5204998778);
      (1.0, 0.8427007929);
      (2.0, 0.9953222650);
      (-1.0, -0.8427007929);
    ]

let test_erfc_symmetry () =
  List.iter
    (fun x ->
      Helpers.check_float ~eps:1e-7 "erf + erfc = 1" 1.0 (Special.erf x +. Special.erfc x);
      Helpers.check_float ~eps:1e-7 "erf odd" (-.Special.erf x) (Special.erf (-.x)))
    [ 0.1; 0.7; 1.3; 2.9 ]

let test_gaussian_cdf_median () =
  (* the erfc approximation carries ~1.2e-7 error, so compare at that scale *)
  Helpers.check_float ~eps:5e-7 "cdf at mean" 0.5 (Special.gaussian_cdf ~mean:3.0 ~sigma:2.0 3.0);
  Helpers.check_float ~eps:1e-6 "one sigma" 0.8413447
    (Special.gaussian_cdf ~mean:0.0 ~sigma:1.0 1.0);
  Helpers.check_float ~eps:5e-7 "sf complement" 1.0
    (Special.gaussian_cdf ~mean:1.0 ~sigma:0.5 2.0 +. Special.gaussian_sf ~mean:1.0 ~sigma:0.5 2.0)

let test_log_factorial () =
  Helpers.check_float "0!" 0.0 (Special.log_factorial 0);
  Helpers.check_float ~eps:1e-9 "5!" (log 120.0) (Special.log_factorial 5);
  (* Stirling branch vs summation at the table boundary *)
  let direct n =
    let acc = ref 0.0 in
    for i = 2 to n do
      acc := !acc +. log (float_of_int i)
    done;
    !acc
  in
  Helpers.check_float ~eps:1e-6 "300!" (direct 300) (Special.log_factorial 300)

(* ----- Distributions ----- *)

let test_distribution_cdf_monotone =
  QCheck2.Test.make ~name:"cdf is monotone and within [0,1]" ~count:200
    QCheck2.Gen.(pair (float_range (-50.0) 50.0) (float_range 0.0 10.0))
    (fun (x, dx) ->
      let dists =
        [
          Distribution.Gaussian { mean = 1.0; sigma = 2.0 };
          Distribution.Exponential { rate = 0.5 };
          Distribution.Lognormal { mu = 0.0; sigma = 1.0 };
          Distribution.Uniform { lo = -1.0; hi = 4.0 };
          Distribution.Pareto { alpha = 2.0; x_min = 1.0 };
        ]
      in
      List.for_all
        (fun d ->
          let a = Distribution.cdf d x and b = Distribution.cdf d (x +. dx) in
          a >= -1e-12 && b <= 1.0 +. 1e-12 && b >= a -. 1e-9)
        dists)

let test_distribution_sample_mean () =
  let rng = Rng.create 42 in
  let check d eps =
    let xs = Distribution.sample_n d rng 100_000 in
    Helpers.check_float ~eps
      (Format.asprintf "mean of %a" Distribution.pp d)
      (Distribution.mean d) (Revmax_prelude.Util.mean xs)
  in
  check (Distribution.Gaussian { mean = 2.0; sigma = 1.0 }) 0.02;
  check (Distribution.Exponential { rate = 2.0 }) 0.01;
  check (Distribution.Uniform { lo = 0.0; hi = 10.0 }) 0.05;
  check (Distribution.Lognormal { mu = 0.0; sigma = 0.5 }) 0.02;
  check (Distribution.Pareto { alpha = 3.0; x_min = 1.0 }) 0.02

let test_pareto_infinite_mean () =
  Alcotest.check_raises "alpha <= 1"
    (Invalid_argument "Distribution.mean: Pareto with alpha <= 1") (fun () ->
      ignore (Distribution.mean (Distribution.Pareto { alpha = 1.0; x_min = 1.0 })))

let test_distribution_sf_matches_samples () =
  let rng = Rng.create 7 in
  let d = Distribution.Gaussian { mean = 5.0; sigma = 2.0 } in
  let threshold = 6.0 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Distribution.sample d rng >= threshold then incr hits
  done;
  Helpers.check_float ~eps:0.01 "sf vs empirical"
    (Distribution.sf d threshold)
    (float_of_int !hits /. float_of_int n)

(* ----- KDE (the §6.1 price/valuation pipeline) ----- *)

let test_silverman_formula () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let n = 5.0 in
  let sigma = sqrt 2.5 in
  let expected = (4.0 *. (sigma ** 5.0) /. (3.0 *. n)) ** 0.2 in
  Helpers.check_float ~eps:1e-12 "silverman" expected (Kde.silverman_bandwidth xs)

let test_silverman_degenerate () =
  let h = Kde.silverman_bandwidth [| 3.0; 3.0; 3.0 |] in
  Alcotest.(check bool) "positive on constant sample" true (h > 0.0)

(* Regression for the degenerate-sample fallback: the bandwidth must track
   the sample's scale (1% of max magnitude, shrunk by n^(-1/5)), not an
   absolute 1e-3 floor that dwarfs tiny-magnitude data. *)
let test_silverman_degenerate_scale_relative () =
  let n = 3 in
  let shrink = float_of_int n ** -0.2 in
  (* constant sample at ordinary magnitude: 1% of |3.0| *)
  Helpers.check_float ~eps:1e-15 "constant sample" (0.03 *. shrink)
    (Kde.silverman_bandwidth [| 3.0; 3.0; 3.0 |]);
  (* tiny magnitude: fallback must shrink with the data, staying far below
     the old absolute floor of 1e-3 *)
  let h_tiny = Kde.silverman_bandwidth [| 1e-6; 1e-6; 1e-6 |] in
  Helpers.check_float ~eps:1e-22 "tiny-magnitude sample" (1e-8 *. shrink) h_tiny;
  Alcotest.(check bool) "tiny bandwidth below old floor" true (h_tiny < 1e-3);
  (* a single sample is degenerate too (no variance): 1% of its magnitude *)
  Helpers.check_float ~eps:1e-15 "single negative sample" 0.05
    (Kde.silverman_bandwidth [| -5.0 |]);
  (* all-zero sample has no scale: keeps a small absolute floor *)
  let h_zero = Kde.silverman_bandwidth [| 0.0; 0.0; 0.0 |] in
  Helpers.check_float ~eps:1e-18 "all-zero sample" (1e-3 *. shrink) h_zero;
  Alcotest.(check bool) "all-zero positive" true (h_zero > 0.0)

let test_kde_fit_degenerate_tiny () =
  (* end-to-end: a KDE over near-identical tiny values must not be flattened
     by an oversized bandwidth — the mass should stay near the data *)
  let kde = Kde.fit [| 2e-6; 2e-6; 2e-6; 2e-6 |] in
  Alcotest.(check bool) "mass concentrated near sample" true
    (Kde.cdf kde 3e-6 -. Kde.cdf kde 1e-6 > 0.99)

let test_kde_pdf_integrates_to_one () =
  let kde = Kde.fit [| 10.0; 12.0; 15.0; 11.0; 13.0 |] in
  (* trapezoidal integration over a wide support *)
  let lo = 0.0 and hi = 30.0 and steps = 3000 in
  let dx = (hi -. lo) /. float_of_int steps in
  let acc = ref 0.0 in
  for s = 0 to steps - 1 do
    let x = lo +. (float_of_int s *. dx) in
    acc := !acc +. (0.5 *. (Kde.pdf kde x +. Kde.pdf kde (x +. dx)) *. dx)
  done;
  Helpers.check_float ~eps:1e-3 "integral" 1.0 !acc

let test_kde_cdf_limits () =
  let kde = Kde.fit [| 5.0; 6.0; 7.0 |] in
  Alcotest.(check bool) "cdf small at -inf side" true (Kde.cdf kde (-100.0) < 1e-6);
  Alcotest.(check bool) "cdf near 1 at +inf side" true (Kde.cdf kde 200.0 > 1.0 -. 1e-6);
  Helpers.check_float ~eps:1e-9 "sf complement" 1.0 (Kde.cdf kde 6.0 +. Kde.sf kde 6.0)

let test_kde_moments () =
  let xs = [| 1.0; 3.0; 5.0; 7.0 |] in
  let kde = Kde.fit xs in
  Helpers.check_float ~eps:1e-12 "mean = sample mean" 4.0 (Kde.mean kde);
  let h = Kde.bandwidth kde in
  Helpers.check_float ~eps:1e-12 "variance = population var + h^2" (5.0 +. (h *. h))
    (Kde.variance kde)

let test_kde_draw_distribution () =
  let rng = Rng.create 11 in
  let xs = [| 10.0; 20.0; 30.0 |] in
  let kde = Kde.fit ~bandwidth:1.0 xs in
  let samples = Kde.draw_n kde rng 60_000 in
  Helpers.check_float ~eps:0.15 "draw mean" 20.0 (Revmax_prelude.Util.mean samples);
  (* empirical CDF at a point matches the analytic mixture CDF *)
  let at = 15.0 in
  let below = Array.fold_left (fun n x -> if x <= at then n + 1 else n) 0 samples in
  Helpers.check_float ~eps:0.01 "draw cdf" (Kde.cdf kde at)
    (float_of_int below /. float_of_int (Array.length samples))

let test_kde_gaussian_proxy () =
  let kde = Kde.fit [| 1.0; 2.0; 3.0 |] in
  match Kde.gaussian_proxy kde with
  | Distribution.Gaussian { mean; sigma } ->
      Helpers.check_float ~eps:1e-12 "proxy mean" 2.0 mean;
      Helpers.check_float ~eps:1e-12 "proxy var" (Kde.variance kde) (sigma *. sigma)
  | _ -> Alcotest.fail "proxy is not Gaussian"

(* ----- Poisson-binomial (the B_S(i,t) engine) ----- *)

let test_pb_pmf_sums_to_one =
  QCheck2.Test.make ~name:"pmf sums to 1" ~count:300
    QCheck2.Gen.(list_size (int_range 0 12) (float_bound_inclusive 1.0))
    (fun ps ->
      let pmf = Pb.pmf (Array.of_list ps) in
      Helpers.float_eq ~eps:1e-9 1.0 (Array.fold_left ( +. ) 0.0 pmf))

let test_pb_binomial_case () =
  (* equal probabilities reduce to a binomial *)
  let p = 0.3 and n = 8 in
  let pmf = Pb.pmf (Array.make n p) in
  let choose n k =
    let rec go acc i = if i > k then acc else go (acc *. float_of_int (n - i + 1) /. float_of_int i) (i + 1) in
    go 1.0 1
  in
  for k = 0 to n do
    let expected = choose n k *. (p ** float_of_int k) *. ((1.0 -. p) ** float_of_int (n - k)) in
    Helpers.check_float ~eps:1e-12 (Printf.sprintf "binomial pmf k=%d" k) expected pmf.(k)
  done

let test_pb_at_most_edges () =
  let ps = [| 0.5; 0.5 |] in
  Helpers.check_float "m < 0" 0.0 (Pb.at_most ps (-1));
  Helpers.check_float "m >= n" 1.0 (Pb.at_most ps 2);
  Helpers.check_float ~eps:1e-12 "m = 0" 0.25 (Pb.at_most ps 0);
  Helpers.check_float ~eps:1e-12 "m = 1" 0.75 (Pb.at_most ps 1);
  Helpers.check_float ~eps:1e-12 "at_least complement" 1.0
    (Pb.at_least ps 1 +. Pb.at_most ps 0)

let test_pb_at_most_matches_pmf =
  QCheck2.Test.make ~name:"truncated DP = pmf prefix sum" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 10) (float_bound_inclusive 1.0)) (int_bound 10))
    (fun (ps, m) ->
      let ps = Array.of_list ps in
      let pmf = Pb.pmf ps in
      let prefix = ref 0.0 in
      for j = 0 to min m (Array.length ps) do
        prefix := !prefix +. pmf.(j)
      done;
      let prefix = Float.min 1.0 !prefix in
      Helpers.float_eq ~eps:1e-9 prefix (Pb.at_most ps m))

let test_pb_monte_carlo_agrees () =
  let rng = Rng.create 99 in
  let ps = [| 0.2; 0.7; 0.4; 0.9; 0.1 |] in
  let exact = Pb.at_most ps 2 in
  let mc = Pb.monte_carlo_at_most ps 2 ~samples:200_000 rng in
  Helpers.check_float ~eps:0.01 "MC vs DP" exact mc

let test_pb_invalid_probability () =
  Alcotest.check_raises "p > 1"
    (Invalid_argument "Poisson_binomial: probabilities must lie in [0,1]") (fun () ->
      ignore (Pb.pmf [| 0.5; 1.5 |]))

(* ----- Monte-Carlo helper ----- *)

let test_mc_estimate () =
  let rng = Rng.create 4 in
  let e = Mc.estimate ~samples:50_000 rng (fun rng -> Rng.unit_float rng) in
  Helpers.check_float ~eps:0.01 "uniform mean" 0.5 e.Mc.mean;
  Alcotest.(check bool) "std error sane" true (e.Mc.std_error > 0.0 && e.Mc.std_error < 0.01);
  let lo, hi = Mc.ci95 e in
  Alcotest.(check bool) "ci contains mean" true (lo <= 0.5 && 0.5 <= hi);
  Alcotest.(check bool) "within_ci" true (Mc.within_ci e 0.5)

(* Pins the exact widths documented in mc.mli: [ci95] is mean ± 1.96σ and
   [within_ci] accepts exactly mean ± (4σ + 1e-12). The two intervals are
   deliberately different — ci95 is the reporting interval, within_ci the
   widened acceptance band of stochastic tests — and this test is the
   anchor keeping the .mli documentation honest. *)
let test_mc_interval_widths () =
  let e = { Mc.mean = 10.0; std_error = 0.5; samples = 100 } in
  let lo, hi = Mc.ci95 e in
  Helpers.check_float ~eps:1e-12 "ci95 lower = mean - 1.96 se" (10.0 -. (1.96 *. 0.5)) lo;
  Helpers.check_float ~eps:1e-12 "ci95 upper = mean + 1.96 se" (10.0 +. (1.96 *. 0.5)) hi;
  (* within_ci boundary: 4σ + 1e-12 from the mean is inside, beyond is out *)
  let margin = (4.0 *. 0.5) +. 1e-12 in
  Alcotest.(check bool) "mean accepted" true (Mc.within_ci e 10.0);
  Alcotest.(check bool) "at +margin accepted" true (Mc.within_ci e (10.0 +. margin));
  Alcotest.(check bool) "at -margin accepted" true (Mc.within_ci e (10.0 -. margin));
  Alcotest.(check bool) "beyond +margin rejected" false (Mc.within_ci e (10.0 +. margin +. 1e-9));
  Alcotest.(check bool) "beyond -margin rejected" false (Mc.within_ci e (10.0 -. margin -. 1e-9));
  (* the 1.96σ interval is strictly narrower than the acceptance band:
     a value at the edge of ci95 passes within_ci *)
  Alcotest.(check bool) "ci95 edge passes within_ci" true (Mc.within_ci e hi);
  (* σ = 0: the 1e-12 epsilon still absorbs float noise around the mean *)
  let exact = { Mc.mean = 3.0; std_error = 0.0; samples = 10 } in
  Alcotest.(check bool) "zero-se exact mean accepted" true (Mc.within_ci exact 3.0);
  Alcotest.(check bool) "zero-se noise absorbed" true (Mc.within_ci exact (3.0 +. 1e-13));
  Alcotest.(check bool) "zero-se real gap rejected" false (Mc.within_ci exact 3.1)

let () =
  Alcotest.run "stats"
    [
      ( "special",
        [
          Alcotest.test_case "erf reference values" `Quick test_erf_reference_values;
          Alcotest.test_case "erfc symmetry" `Quick test_erfc_symmetry;
          Alcotest.test_case "gaussian cdf" `Quick test_gaussian_cdf_median;
          Alcotest.test_case "log factorial" `Quick test_log_factorial;
        ] );
      ( "distribution",
        [
          QCheck_alcotest.to_alcotest test_distribution_cdf_monotone;
          Alcotest.test_case "sample means" `Slow test_distribution_sample_mean;
          Alcotest.test_case "pareto infinite mean" `Quick test_pareto_infinite_mean;
          Alcotest.test_case "sf vs empirical" `Slow test_distribution_sf_matches_samples;
        ] );
      ( "kde",
        [
          Alcotest.test_case "silverman formula" `Quick test_silverman_formula;
          Alcotest.test_case "silverman degenerate" `Quick test_silverman_degenerate;
          Alcotest.test_case "silverman degenerate scale-relative" `Quick
            test_silverman_degenerate_scale_relative;
          Alcotest.test_case "fit degenerate tiny magnitude" `Quick test_kde_fit_degenerate_tiny;
          Alcotest.test_case "pdf integrates to 1" `Quick test_kde_pdf_integrates_to_one;
          Alcotest.test_case "cdf limits" `Quick test_kde_cdf_limits;
          Alcotest.test_case "moments" `Quick test_kde_moments;
          Alcotest.test_case "draw distribution" `Slow test_kde_draw_distribution;
          Alcotest.test_case "gaussian proxy" `Quick test_kde_gaussian_proxy;
        ] );
      ( "poisson_binomial",
        [
          QCheck_alcotest.to_alcotest test_pb_pmf_sums_to_one;
          Alcotest.test_case "binomial case" `Quick test_pb_binomial_case;
          Alcotest.test_case "at_most edges" `Quick test_pb_at_most_edges;
          QCheck_alcotest.to_alcotest test_pb_at_most_matches_pmf;
          Alcotest.test_case "monte carlo agrees" `Slow test_pb_monte_carlo_agrees;
          Alcotest.test_case "invalid probability" `Quick test_pb_invalid_probability;
        ] );
      ( "mc",
        [
          Alcotest.test_case "estimate" `Slow test_mc_estimate;
          Alcotest.test_case "interval widths pinned" `Quick test_mc_interval_widths;
        ] );
    ]
