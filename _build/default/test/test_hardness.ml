(* Mechanical verification of Theorem 1's reduction: Restricted Timetable
   Design instances map to D-REVMAX instances whose optimal revenue crosses
   the threshold N + Υ·E exactly when a feasible timetable exists. *)

module Rng = Revmax_prelude.Rng
module Hardness = Revmax.Hardness
module Instance = Revmax.Instance

let rtd ~available ~requires =
  {
    Hardness.num_craftsmen = Array.length available;
    num_jobs = (if Array.length requires = 0 then 0 else Array.length requires.(0));
    available;
    requires;
  }

(* one 2-craftsman available at hours 1,2 who must serve two jobs *)
let tiny_feasible =
  rtd
    ~available:[| [| true; true; false |] |]
    ~requires:[| [| true; true |] |]

(* three 2-craftsmen sharing hours {1,2} all requiring both jobs: job 0
   would need three distinct hours out of two — infeasible *)
let tiny_infeasible =
  rtd
    ~available:[| [| true; true; false |]; [| true; true; false |]; [| true; true; false |] |]
    ~requires:[| [| true; true |]; [| true; true |]; [| true; true |] |]

let test_validate () =
  (match Hardness.validate tiny_feasible with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* not tight: available 2 hours but requires only 1 job *)
  let loose = rtd ~available:[| [| true; true; false |] |] ~requires:[| [| true; false |] |] in
  (match Hardness.validate loose with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected tightness violation");
  (* 1-craftsman (single available hour) is outside RTD *)
  let single = rtd ~available:[| [| true; false; false |] |] ~requires:[| [| true; false |] |] in
  match Hardness.validate single with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected availability violation"

let test_feasibility_solver () =
  Alcotest.(check bool) "tiny feasible" true (Hardness.feasible tiny_feasible);
  Alcotest.(check bool) "tiny infeasible" false (Hardness.feasible tiny_infeasible)

let test_reduction_structure () =
  let inst, threshold = Hardness.to_revmax tiny_feasible in
  (* 3 items per job + 1 expensive item; display limit 1; T = 3 *)
  Alcotest.(check int) "items" 7 (Instance.num_items inst);
  Alcotest.(check int) "horizon" 3 (Instance.horizon inst);
  Alcotest.(check int) "k" 1 (Instance.display_limit inst);
  (* N = 2 units of work, Υ = 1 unavailable hour, E = N + 1 = 3 *)
  Helpers.check_float "threshold" (2.0 +. (1.0 *. 3.0)) threshold;
  (* job item 0 of job 0 is priced 1 exactly at hour 1 *)
  Helpers.check_float "price at own hour" 1.0 (Instance.price inst ~i:0 ~time:1);
  Helpers.check_float "price elsewhere" 0.0 (Instance.price inst ~i:0 ~time:2);
  (* the expensive item is adoptable exactly at the unavailable hour 3 *)
  Helpers.check_float "expensive unavailable hour" 1.0 (Instance.q inst ~u:0 ~i:6 ~time:3);
  Helpers.check_float "expensive available hour" 0.0 (Instance.q inst ~u:0 ~i:6 ~time:1)

let test_equivalence_on_pinned_instances () =
  Alcotest.(check bool) "feasible instance crosses threshold" true
    (Hardness.equivalence_holds tiny_feasible);
  let inst, threshold = Hardness.to_revmax tiny_feasible in
  ignore inst;
  Alcotest.(check bool) "optimum reaches the bound exactly" true
    (Helpers.float_eq ~eps:1e-9 threshold (Hardness.optimal_revenue tiny_feasible))

let test_equivalence_infeasible () =
  (* 21 profitable triples: a Slow but decisive check of the ⟸ direction *)
  Alcotest.(check bool) "infeasible instance stays below threshold" true
    (Hardness.equivalence_holds tiny_infeasible)

(* random tight RTD instances with 2-hour craftsmen (kept small so the
   exponential search stays fast — the blow-up is the point of Theorem 1) *)
let random_rtd rng ~num_craftsmen ~num_jobs =
  let available =
    Array.init num_craftsmen (fun _ ->
        let skip = Rng.int rng 3 in
        Array.init 3 (fun h -> h <> skip))
  in
  let requires =
    Array.init num_craftsmen (fun _ ->
        let jobs = Rng.sample_without_replacement rng num_jobs 2 in
        let row = Array.make num_jobs false in
        Array.iter (fun b -> row.(b) <- true) jobs;
        row)
  in
  rtd ~available ~requires

let test_equivalence_random () =
  let rng = Rng.create 2014 in
  let feasible_seen = ref 0 and infeasible_seen = ref 0 in
  for _ = 1 to 25 do
    let r = random_rtd rng ~num_craftsmen:2 ~num_jobs:(2 + Rng.int rng 2) in
    if Hardness.feasible r then incr feasible_seen else incr infeasible_seen;
    if not (Hardness.equivalence_holds r) then Alcotest.fail "reduction equivalence violated"
  done;
  (* the sample must exercise at least the feasible side *)
  Alcotest.(check bool) "sampled feasible instances" true (!feasible_seen > 0)

let () =
  Alcotest.run "hardness"
    [
      ( "reduction",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "feasibility solver" `Quick test_feasibility_solver;
          Alcotest.test_case "reduction structure" `Quick test_reduction_structure;
          Alcotest.test_case "equivalence (pinned feasible)" `Quick
            test_equivalence_on_pinned_instances;
          Alcotest.test_case "equivalence (pinned infeasible)" `Slow test_equivalence_infeasible;
          Alcotest.test_case "equivalence (random)" `Slow test_equivalence_random;
        ] );
    ]
