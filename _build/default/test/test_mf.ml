module Ratings = Revmax_mf.Ratings
module Mf_model = Revmax_mf.Mf_model
module Trainer = Revmax_mf.Trainer
module Evaluate = Revmax_mf.Evaluate
module Rng = Revmax_prelude.Rng

let obs u i v = { Ratings.user = u; item = i; value = v }

(* ----- Ratings store ----- *)

let test_ratings_basic () =
  let r = Ratings.create ~num_users:3 ~num_items:2 [ obs 0 0 4.0; obs 0 1 2.0; obs 2 1 5.0 ] in
  Alcotest.(check int) "users" 3 (Ratings.num_users r);
  Alcotest.(check int) "items" 2 (Ratings.num_items r);
  Alcotest.(check int) "ratings" 3 (Ratings.num_ratings r);
  Alcotest.(check int) "user 0 count" 2 (Array.length (Ratings.by_user r 0));
  Alcotest.(check int) "user 1 count" 0 (Array.length (Ratings.by_user r 1));
  Alcotest.(check (list int)) "rated items" [ 0; 1 ] (List.sort compare (Ratings.rated_items r 0));
  let lo, hi = Ratings.value_range r in
  Helpers.check_float "min" 2.0 lo;
  Helpers.check_float "max" 5.0 hi;
  Helpers.check_float ~eps:1e-12 "global mean" (11.0 /. 3.0) (Ratings.global_mean r);
  Helpers.check_float ~eps:1e-12 "density" 0.5 (Ratings.density r)

let test_ratings_validation () =
  Alcotest.check_raises "bad id" (Invalid_argument "Ratings.create: id out of range") (fun () ->
      ignore (Ratings.create ~num_users:1 ~num_items:1 [ obs 5 0 1.0 ]))

let test_split_folds_partition () =
  let rng = Rng.create 1 in
  let observations = List.init 50 (fun n -> obs (n mod 5) (n mod 7) (float_of_int (n mod 5) +. 1.0)) in
  let r = Ratings.create ~num_users:5 ~num_items:7 observations in
  let folds = Ratings.split_folds r ~folds:5 rng in
  Alcotest.(check int) "5 folds" 5 (Array.length folds);
  let total_test = Array.fold_left (fun acc (_, test) -> acc + Ratings.num_ratings test) 0 folds in
  Alcotest.(check int) "test observations partition the data" 50 total_test;
  Array.iter
    (fun (train, test) ->
      Alcotest.(check int) "train + test = all" 50
        (Ratings.num_ratings train + Ratings.num_ratings test))
    folds

(* ----- Model ----- *)

let test_predict_clamped () =
  let rng = Rng.create 2 in
  let m =
    Mf_model.init ~num_users:2 ~num_items:2 ~factors:4 ~global_bias:3.0 ~r_min:1.0 ~r_max:5.0
      ~init_std:0.01 rng
  in
  m.Mf_model.user_bias.(0) <- 100.0;
  Helpers.check_float "clamped high" 5.0 (Mf_model.predict_clamped m 0 0);
  m.Mf_model.user_bias.(1) <- -100.0;
  Helpers.check_float "clamped low" 1.0 (Mf_model.predict_clamped m 1 0)

let test_top_n () =
  let rng = Rng.create 3 in
  let m =
    Mf_model.init ~num_users:1 ~num_items:4 ~factors:2 ~global_bias:3.0 ~r_min:1.0 ~r_max:5.0
      ~init_std:0.0 rng
  in
  m.Mf_model.item_bias.(0) <- 0.5;
  m.Mf_model.item_bias.(1) <- 1.5;
  m.Mf_model.item_bias.(2) <- -0.5;
  m.Mf_model.item_bias.(3) <- 1.0;
  let top = Mf_model.top_n m ~user:0 ~n:2 () in
  Alcotest.(check (list int)) "best two" [ 1; 3 ] (Array.to_list (Array.map fst top));
  let top_excl = Mf_model.top_n m ~user:0 ~n:2 ~exclude:[ 1 ] () in
  Alcotest.(check (list int)) "exclusion respected" [ 3; 0 ]
    (Array.to_list (Array.map fst top_excl))

(* ----- Training ----- *)

(* low-rank synthetic data the trainer must be able to fit *)
let synthetic_ratings rng ~num_users ~num_items ~per_user =
  let f = 3 in
  let vec () = Array.init f (fun _ -> Rng.gaussian rng /. sqrt (float_of_int f)) in
  let pu = Array.init num_users (fun _ -> vec ()) in
  let qi = Array.init num_items (fun _ -> vec ()) in
  let dot a b =
    let acc = ref 0.0 in
    Array.iteri (fun idx x -> acc := !acc +. (x *. b.(idx))) a;
    !acc
  in
  let observations = ref [] in
  for u = 0 to num_users - 1 do
    let items = Rng.sample_without_replacement rng num_items per_user in
    Array.iter
      (fun i ->
        let v = Revmax_prelude.Util.clamp ~lo:1.0 ~hi:5.0 (3.0 +. (1.5 *. dot pu.(u) qi.(i))) in
        observations := obs u i v :: !observations)
      items
  done;
  Ratings.create ~num_users ~num_items !observations

let test_sgd_descends () =
  let rng = Rng.create 4 in
  let data = synthetic_ratings rng ~num_users:60 ~num_items:40 ~per_user:10 in
  let _, history = Trainer.train_with_history data rng in
  let first = List.hd history and last = List.nth history (List.length history - 1) in
  Alcotest.(check bool) "RMSE decreased substantially" true
    (last.Trainer.train_rmse < 0.7 *. first.Trainer.train_rmse)

let test_train_beats_global_mean () =
  let rng = Rng.create 5 in
  let data = synthetic_ratings rng ~num_users:80 ~num_items:50 ~per_user:12 in
  let model = Trainer.train data rng in
  let rmse = Evaluate.rmse model data in
  (* the constant-mean predictor's RMSE is the value spread *)
  let mean = Ratings.global_mean data in
  let baseline =
    let acc = ref 0.0 in
    Array.iter
      (fun (o : Ratings.observation) ->
        let e = o.value -. mean in
        acc := !acc +. (e *. e))
      (Ratings.observations data);
    sqrt (!acc /. float_of_int (Ratings.num_ratings data))
  in
  Alcotest.(check bool) "fits better than the mean" true (rmse < 0.8 *. baseline)

let test_train_deterministic () =
  let data = synthetic_ratings (Rng.create 6) ~num_users:30 ~num_items:20 ~per_user:8 in
  let m1 = Trainer.train data (Rng.create 9) in
  let m2 = Trainer.train data (Rng.create 9) in
  for u = 0 to 29 do
    for i = 0 to 19 do
      Helpers.check_float ~eps:0.0 "identical predictions" (Mf_model.predict m1 u i)
        (Mf_model.predict m2 u i)
    done
  done

let test_cross_validation_reasonable () =
  let rng = Rng.create 7 in
  let data = synthetic_ratings rng ~num_users:100 ~num_items:60 ~per_user:12 in
  let cv = Evaluate.cross_validate ~folds:5 data rng in
  (* the paper reports 0.91 (Amazon) and 1.04 (Epinions) on a 1–5 scale;
     our low-noise synthetic data must land well under the scale's spread *)
  Alcotest.(check bool) "cv rmse sane" true (cv > 0.0 && cv < 1.2)

(* ----- kNN collaborative filtering ----- *)

module Knn = Revmax_mf.Knn

let test_knn_similarity_symmetric () =
  let rng = Rng.create 21 in
  let data = synthetic_ratings rng ~num_users:40 ~num_items:15 ~per_user:8 in
  let model = Knn.train data in
  for i = 0 to 14 do
    Helpers.check_float "self similarity" 1.0 (Knn.similarity model i i);
    for j = 0 to 14 do
      Helpers.check_float ~eps:0.0 "symmetry" (Knn.similarity model i j) (Knn.similarity model j i)
    done
  done

let test_knn_identical_items_similar () =
  (* two items always rated identically by the same users must be the most
     similar pair *)
  let observations =
    List.concat_map
      (fun u ->
        let v = 1.0 +. float_of_int (u mod 5) in
        [ obs u 0 v; obs u 1 v; obs u 2 (6.0 -. v) ])
      (List.init 20 (fun u -> u))
  in
  let data = Ratings.create ~num_users:20 ~num_items:3 observations in
  let model = Knn.train data in
  Alcotest.(check bool) "identical twins strongly similar" true (Knn.similarity model 0 1 > 0.5);
  Alcotest.(check bool) "anti-correlated item dissimilar" true (Knn.similarity model 0 2 < 0.0)

let test_knn_prediction_range () =
  let rng = Rng.create 22 in
  let data = synthetic_ratings rng ~num_users:50 ~num_items:20 ~per_user:10 in
  let model = Knn.train data in
  let lo, hi = Ratings.value_range data in
  for u = 0 to 49 do
    for i = 0 to 19 do
      let p = Knn.predict_clamped model u i in
      if p < lo -. 1e-9 || p > hi +. 1e-9 then Alcotest.failf "prediction %f out of range" p
    done
  done

let test_knn_beats_global_mean () =
  let rng = Rng.create 23 in
  let data = synthetic_ratings rng ~num_users:120 ~num_items:40 ~per_user:14 in
  let model = Knn.train data in
  let mean = Ratings.global_mean data in
  let knn_err = ref 0.0 and mean_err = ref 0.0 in
  Array.iter
    (fun (o : Ratings.observation) ->
      let e = o.value -. Knn.predict_clamped model o.user o.item in
      knn_err := !knn_err +. (e *. e);
      let e0 = o.value -. mean in
      mean_err := !mean_err +. (e0 *. e0))
    (Ratings.observations data);
  Alcotest.(check bool) "kNN fits better than the constant mean" true (!knn_err < !mean_err)

let test_knn_top_n () =
  let rng = Rng.create 24 in
  let data = synthetic_ratings rng ~num_users:30 ~num_items:12 ~per_user:6 in
  let model = Knn.train data in
  let top = Knn.top_n model ~user:0 ~n:5 () in
  Alcotest.(check int) "five results" 5 (Array.length top);
  let scores = Array.map snd top in
  for idx = 1 to 4 do
    if scores.(idx) > scores.(idx - 1) +. 1e-12 then Alcotest.fail "not sorted descending"
  done;
  let top_excl = Knn.top_n model ~user:0 ~n:5 ~exclude:[ fst top.(0) ] () in
  Alcotest.(check bool) "exclusion respected" true
    (Array.for_all (fun (i, _) -> i <> fst top.(0)) top_excl)

let test_knn_feeds_pipeline () =
  (* the recommender-agnostic candidate builder works with kNN predictions *)
  let rng = Rng.create 25 in
  let data = synthetic_ratings rng ~num_users:25 ~num_items:10 ~per_user:6 in
  let model = Knn.train data in
  let valuation =
    Array.init 10 (fun i ->
        Revmax_stats.Distribution.Gaussian { mean = 20.0 +. float_of_int i; sigma = 5.0 })
  in
  let price = Array.init 10 (fun i -> Array.make 3 (18.0 +. float_of_int i)) in
  let adoption, preds =
    Revmax_datagen.Pipeline.build_candidates_with ~num_users:25
      ~top_n_of:(fun u -> Knn.top_n model ~user:u ~n:4 ())
      ~valuation ~price ~r_max:5.0
  in
  Alcotest.(check int) "4 candidates per user" (25 * 4) (List.length adoption);
  Alcotest.(check int) "a rating per candidate" (25 * 4) (List.length preds);
  List.iter
    (fun (_, _, qs) ->
      Array.iter (fun q -> if q < 0.0 || q > 1.0 then Alcotest.fail "q out of range") qs)
    adoption

(* ----- content-based recommender ----- *)

module Content = Revmax_mf.Content_based

(* two feature groups; users rate their own group high and the other low *)
let grouped_data () =
  let num_items = 8 in
  let features =
    Array.init num_items (fun i -> if i < 4 then [| 1.0; 0.0 |] else [| 0.0; 1.0 |])
  in
  let observations =
    List.concat_map
      (fun u ->
        let likes_first = u mod 2 = 0 in
        [
          obs u (u mod 4) (if likes_first then 5.0 else 1.0);
          obs u (4 + (u mod 4)) (if likes_first then 1.0 else 5.0);
        ])
      (List.init 20 (fun u -> u))
  in
  (features, Ratings.create ~num_users:20 ~num_items observations)

let test_content_profiles_separate_groups () =
  let features, data = grouped_data () in
  let model = Content.train ~item_features:features data in
  (* user 0 likes group A: unseen group-A item 3 must outscore group-B item 7 *)
  Alcotest.(check bool) "group preference" true
    (Content.predict model 0 3 > Content.predict model 0 7);
  Alcotest.(check bool) "opposite user" true (Content.predict model 1 7 > Content.predict model 1 3)

let test_content_top_n_prefers_profile_group () =
  let features, data = grouped_data () in
  let model = Content.train ~item_features:features data in
  let top = Content.top_n model ~user:0 ~n:4 () in
  (* all four best recommendations come from the liked group *)
  Array.iter (fun (i, _) -> if i >= 4 then Alcotest.failf "item %d from disliked group" i) top

let test_content_prediction_range_and_cold_user () =
  let features, data = grouped_data () in
  let model = Content.train ~item_features:features data in
  for u = 0 to 19 do
    for i = 0 to 7 do
      let p = Content.predict_clamped model u i in
      if p < 1.0 -. 1e-9 || p > 5.0 +. 1e-9 then Alcotest.failf "out of range %f" p
    done
  done;
  (* a user outside the rating set falls back to baselines without crashing *)
  match Content.profile model 19 with
  | Some prof -> Alcotest.(check int) "profile dim" 2 (Array.length prof)
  | None -> Alcotest.fail "rated user must have a profile"

let test_content_validation () =
  let _, data = grouped_data () in
  (match Content.train ~item_features:[| [| 1.0 |] |] data with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "row-count mismatch accepted");
  match
    Content.train
      ~item_features:(Array.init 8 (fun i -> if i = 0 then [| 1.0 |] else [| 1.0; 2.0 |]))
      data
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch accepted"

let test_content_feeds_pipeline () =
  let rng = Rng.create 31 in
  let data = synthetic_ratings rng ~num_users:15 ~num_items:6 ~per_user:4 in
  let features = Array.init 6 (fun i -> [| float_of_int (i mod 2); float_of_int (i / 3); 1.0 |]) in
  let model = Content.train ~item_features:features data in
  let valuation =
    Array.init 6 (fun i ->
        Revmax_stats.Distribution.Gaussian { mean = 30.0 +. float_of_int i; sigma = 8.0 })
  in
  let price = Array.init 6 (fun i -> Array.make 2 (25.0 +. float_of_int i)) in
  let adoption, _ =
    Revmax_datagen.Pipeline.build_candidates_with ~num_users:15
      ~top_n_of:(fun u -> Content.top_n model ~user:u ~n:3 ())
      ~valuation ~price ~r_max:5.0
  in
  Alcotest.(check int) "3 candidates per user" (15 * 3) (List.length adoption)

let () =
  Alcotest.run "mf"
    [
      ( "ratings",
        [
          Alcotest.test_case "basic" `Quick test_ratings_basic;
          Alcotest.test_case "validation" `Quick test_ratings_validation;
          Alcotest.test_case "fold partition" `Quick test_split_folds_partition;
        ] );
      ( "model",
        [
          Alcotest.test_case "clamping" `Quick test_predict_clamped;
          Alcotest.test_case "top_n" `Quick test_top_n;
        ] );
      ( "training",
        [
          Alcotest.test_case "sgd descends" `Slow test_sgd_descends;
          Alcotest.test_case "beats global mean" `Slow test_train_beats_global_mean;
          Alcotest.test_case "deterministic" `Slow test_train_deterministic;
          Alcotest.test_case "cross validation" `Slow test_cross_validation_reasonable;
        ] );
      ( "knn",
        [
          Alcotest.test_case "similarity symmetric" `Quick test_knn_similarity_symmetric;
          Alcotest.test_case "identical items" `Quick test_knn_identical_items_similar;
          Alcotest.test_case "prediction range" `Quick test_knn_prediction_range;
          Alcotest.test_case "beats global mean" `Quick test_knn_beats_global_mean;
          Alcotest.test_case "top_n" `Quick test_knn_top_n;
          Alcotest.test_case "feeds the pipeline" `Quick test_knn_feeds_pipeline;
        ] );
      ( "content_based",
        [
          Alcotest.test_case "profiles separate groups" `Quick test_content_profiles_separate_groups;
          Alcotest.test_case "top_n prefers group" `Quick test_content_top_n_prefers_profile_group;
          Alcotest.test_case "range and cold user" `Quick test_content_prediction_range_and_cold_user;
          Alcotest.test_case "validation" `Quick test_content_validation;
          Alcotest.test_case "feeds the pipeline" `Quick test_content_feeds_pipeline;
        ] );
    ]
