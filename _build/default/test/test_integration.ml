(* End-to-end integration tests: generate a dataset through the full §6
   pipeline (ratings → MF → valuations → candidates → instance), run every
   algorithm, and check the relationships the paper's evaluation relies
   on. *)

module Rng = Revmax_prelude.Rng
module Instance = Revmax.Instance
module Strategy = Revmax.Strategy
module Revenue = Revmax.Revenue
module Simulate = Revmax.Simulate
module Greedy = Revmax.Greedy
module Local_greedy = Revmax.Local_greedy
module Baselines = Revmax.Baselines
module Algorithms = Revmax.Algorithms
module Rolling = Revmax.Rolling
module Pipeline = Revmax_datagen.Pipeline
module Amazon_like = Revmax_datagen.Amazon_like
module Epinions_like = Revmax_datagen.Epinions_like
module Scalability = Revmax_datagen.Scalability
module Evaluate = Revmax_mf.Evaluate

let amazon_instance =
  lazy
    (let prepared =
       Amazon_like.prepare
         ~scale:
           {
             Amazon_like.num_users = 60;
             num_items = 40;
             num_classes = 8;
             top_n = 12;
             horizon = 5;
             crawl_days = 25;
             ratings_per_user = 10.0;
           }
         ~seed:101 ()
     in
     ( prepared,
       Pipeline.instantiate
         ~capacity:(Pipeline.Cap_gaussian { mean = 14.0; sigma = 2.0 })
         ~beta:Pipeline.Beta_uniform ~seed:5 prepared ))

let test_pipeline_produces_consistent_instance () =
  let prepared, inst = Lazy.force amazon_instance in
  Alcotest.(check int) "users" 60 (Instance.num_users inst);
  Alcotest.(check bool) "has candidates" true (Instance.num_candidate_triples inst > 0);
  (* predicted ratings attached for every candidate pair *)
  List.iter
    (fun (u, i, _) ->
      match Instance.rating inst ~u ~i with
      | Some r -> if r < 1.0 -. 1e-9 || r > 5.0 +. 1e-9 then Alcotest.fail "rating out of scale"
      | None -> Alcotest.fail "candidate without predicted rating")
    prepared.Pipeline.ratings_pred

let test_mf_quality_on_pipeline_data () =
  let prepared, _ = Lazy.force amazon_instance in
  let rng = Rng.create 55 in
  let cv = Evaluate.cross_validate ~folds:5 prepared.Pipeline.source_ratings rng in
  (* the paper reports 0.91 on Amazon; the synthetic stand-in should land in
     a comparable band, far under the trivial predictor *)
  Alcotest.(check bool) (Printf.sprintf "cv rmse %.3f in (0, 1.3)" cv) true (cv > 0.0 && cv < 1.3)

let test_algorithm_hierarchy_end_to_end () =
  let _, inst = Lazy.force amazon_instance in
  let run algo = Revenue.total (Algorithms.run algo inst ~seed:17) in
  let gg = run Algorithms.G_greedy in
  let ggno = run Algorithms.Global_no in
  let rlg = run (Algorithms.Rl_greedy 6) in
  let slg = run Algorithms.Sl_greedy in
  let toprev = run Algorithms.Top_revenue in
  let toprat = run Algorithms.Top_rating in
  (* Figure 1's hierarchy: GG on top; greedy family beats both baselines *)
  Alcotest.(check bool) (Printf.sprintf "GG %.2f >= RLG %.2f" gg rlg) true (gg >= rlg -. 1e-6);
  Alcotest.(check bool) (Printf.sprintf "RLG %.2f >= SLG %.2f" rlg slg) true (rlg >= slg -. 1e-6);
  Alcotest.(check bool) (Printf.sprintf "GG %.2f >= GG-No %.2f" gg ggno) true (gg >= ggno -. 1e-6);
  Alcotest.(check bool) (Printf.sprintf "SLG %.2f > TopRev %.2f" slg toprev) true (slg > toprev);
  Alcotest.(check bool) (Printf.sprintf "SLG %.2f > TopRat %.2f" slg toprat) true (slg > toprat)

let test_gg_simulation_agreement_end_to_end () =
  let _, inst = Lazy.force amazon_instance in
  let s, _ = Greedy.run inst in
  let expected = Revenue.total s in
  let est = Simulate.estimate_revenue s ~samples:40_000 (Rng.create 23) in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.2f vs analytic %.2f" est.Revmax_stats.Mc.mean expected)
    true
    (Revmax_stats.Mc.within_ci est expected)

let test_all_outputs_valid_end_to_end () =
  let _, inst = Lazy.force amazon_instance in
  List.iter
    (fun algo ->
      let s = Algorithms.run algo inst ~seed:29 in
      Alcotest.(check bool) (Algorithms.name algo ^ " valid") true (Strategy.is_valid s))
    Algorithms.default_suite

let test_rolling_end_to_end () =
  let _, inst = Lazy.force amazon_instance in
  let full, _ = Greedy.run inst in
  let r2 = Rolling.run Rolling.g_greedy inst ~cutoffs:[ 2 ] in
  Alcotest.(check bool) "rolled valid" true (Strategy.is_valid r2);
  (* information loss: committing the first two steps blindly cannot help *)
  Alcotest.(check bool)
    (Printf.sprintf "rolled %.2f <= full %.2f (within 5%%)" (Revenue.total r2) (Revenue.total full))
    true
    (Revenue.total r2 <= Revenue.total full *. 1.05)

let test_epinions_end_to_end () =
  let prepared =
    Epinions_like.prepare
      ~scale:
        {
          Epinions_like.num_users = 50;
          num_items = 30;
          num_classes = 6;
          top_n = 15;
          horizon = 5;
          reports_min = 10;
          reports_max = 25;
          ratings_per_user = 1.6;
        }
      ~seed:202 ()
  in
  let inst =
    Pipeline.instantiate
      ~capacity:(Pipeline.Cap_exponential { mean = 12.0 })
      ~beta:(Pipeline.Beta_fixed 0.5) ~seed:7 prepared
  in
  let gg, _ = Greedy.run inst in
  let toprat = Baselines.top_rating inst in
  Alcotest.(check bool) "GG valid" true (Strategy.is_valid gg);
  Alcotest.(check bool) "GG beats TopRat" true (Revenue.total gg >= Revenue.total toprat)

let test_scalability_instance_runs_gg () =
  let config =
    {
      Scalability.default_config with
      Scalability.num_users = 80;
      num_items = 150;
      num_classes = 15;
      items_per_user = 25;
      horizon = 4;
    }
  in
  let inst = Scalability.generate config ~seed:303 in
  let s, stats = Greedy.run inst in
  Alcotest.(check bool) "valid" true (Strategy.is_valid s);
  Alcotest.(check bool) "made selections" true (stats.Greedy.selected > 0);
  Alcotest.(check bool) "positive revenue" true (Revenue.total s > 0.0)

let test_determinism_end_to_end () =
  let _, inst = Lazy.force amazon_instance in
  let s1, _ = Greedy.run inst in
  let s2, _ = Greedy.run inst in
  Alcotest.(check int) "same size" (Strategy.size s1) (Strategy.size s2);
  Helpers.check_float "same revenue" (Revenue.total s1) (Revenue.total s2);
  let r1, _ = Local_greedy.rl_greedy ~permutations:5 inst (Rng.create 42) in
  let r2, _ = Local_greedy.rl_greedy ~permutations:5 inst (Rng.create 42) in
  Helpers.check_float "RLG deterministic given seed" (Revenue.total r1) (Revenue.total r2)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "consistent instance" `Slow test_pipeline_produces_consistent_instance;
          Alcotest.test_case "MF quality" `Slow test_mf_quality_on_pipeline_data;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "hierarchy" `Slow test_algorithm_hierarchy_end_to_end;
          Alcotest.test_case "simulation agreement" `Slow test_gg_simulation_agreement_end_to_end;
          Alcotest.test_case "all outputs valid" `Slow test_all_outputs_valid_end_to_end;
          Alcotest.test_case "rolling" `Slow test_rolling_end_to_end;
          Alcotest.test_case "epinions pipeline" `Slow test_epinions_end_to_end;
          Alcotest.test_case "scalability instance" `Slow test_scalability_instance_runs_gg;
          Alcotest.test_case "determinism" `Slow test_determinism_end_to_end;
        ] );
    ]
