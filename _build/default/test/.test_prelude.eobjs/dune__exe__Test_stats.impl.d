test/test_stats.ml: Alcotest Array Float Format Helpers List Printf QCheck2 QCheck_alcotest Revmax_prelude Revmax_stats
