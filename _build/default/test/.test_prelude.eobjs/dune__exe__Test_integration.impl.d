test/test_integration.ml: Alcotest Helpers Lazy List Printf Revmax Revmax_datagen Revmax_mf Revmax_prelude Revmax_stats
