test/test_relaxed.mli:
