test/test_matroid.mli:
