test/helpers.ml: Alcotest Array List Revmax Revmax_prelude
