test/test_matroid.ml: Alcotest Array Hashtbl Helpers List QCheck2 QCheck_alcotest Revmax_matroid Revmax_prelude
