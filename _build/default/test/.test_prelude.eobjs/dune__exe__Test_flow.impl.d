test/test_flow.ml: Alcotest Array Helpers QCheck2 QCheck_alcotest Revmax_flow Revmax_prelude
