test/test_greedy.ml: Alcotest Array Float Helpers List QCheck2 QCheck_alcotest Revmax Revmax_prelude
