test/test_mf.ml: Alcotest Array Helpers List Revmax_datagen Revmax_mf Revmax_prelude Revmax_stats
