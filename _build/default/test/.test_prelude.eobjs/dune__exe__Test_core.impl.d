test/test_core.ml: Alcotest Array Float Hashtbl Helpers List Printf QCheck2 QCheck_alcotest Revmax Revmax_prelude Revmax_stats
