test/test_prelude.ml: Alcotest Array Fun Hashtbl Helpers List Revmax_prelude String
