test/test_mf.mli:
