test/test_greedy.mli:
