test/test_datagen.ml: Alcotest Array Helpers List Printf Revmax Revmax_datagen Revmax_mf Revmax_prelude Revmax_stats
