test/test_experiments.ml: Alcotest Helpers List Revmax Revmax_datagen Revmax_experiments
