test/test_hardness.ml: Alcotest Array Helpers Revmax Revmax_prelude
