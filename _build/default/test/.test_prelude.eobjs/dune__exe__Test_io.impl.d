test/test_io.ml: Alcotest Filename Fun Helpers List Out_channel Revmax Revmax_prelude Sys
