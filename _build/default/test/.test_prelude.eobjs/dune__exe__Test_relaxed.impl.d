test/test_relaxed.ml: Alcotest Array Float Helpers List Printf QCheck2 QCheck_alcotest Revmax Revmax_matroid Revmax_prelude Revmax_stats
