test/test_pqueue.ml: Alcotest Float Helpers List QCheck2 QCheck_alcotest Revmax_pqueue
