module Matroid = Revmax_matroid.Matroid
module Submodular = Revmax_matroid.Submodular
module Rng = Revmax_prelude.Rng

(* ----- Matroid ----- *)

let test_uniform_independence () =
  let m = Matroid.uniform ~ground:5 ~rank:2 in
  Alcotest.(check bool) "empty" true (Matroid.is_independent m []);
  Alcotest.(check bool) "size 2" true (Matroid.is_independent m [ 0; 4 ]);
  Alcotest.(check bool) "size 3" false (Matroid.is_independent m [ 0; 1; 2 ]);
  Alcotest.(check bool) "duplicate" false (Matroid.is_independent m [ 1; 1 ]);
  Alcotest.(check bool) "out of range" false (Matroid.is_independent m [ 9 ]);
  Alcotest.(check bool) "can_add" true (Matroid.can_add m [ 0 ] 1);
  Alcotest.(check bool) "can_add at rank" false (Matroid.can_add m [ 0; 1 ] 2);
  Alcotest.(check int) "rank bound" 2 (Matroid.rank_upper_bound m)

let test_partition_independence () =
  (* elements 0,1 in block 0 (bound 1); 2,3,4 in block 1 (bound 2) *)
  let m = Matroid.partition ~part_of:[| 0; 0; 1; 1; 1 |] ~bound:[| 1; 2 |] in
  Alcotest.(check bool) "ok set" true (Matroid.is_independent m [ 0; 2; 3 ]);
  Alcotest.(check bool) "block 0 overflow" false (Matroid.is_independent m [ 0; 1 ]);
  Alcotest.(check bool) "block 1 overflow" false (Matroid.is_independent m [ 2; 3; 4 ]);
  Alcotest.(check bool) "can_add block 1" true (Matroid.can_add m [ 0; 2 ] 3);
  Alcotest.(check bool) "can_add full block" false (Matroid.can_add m [ 0 ] 1);
  Alcotest.(check int) "rank bound" 3 (Matroid.rank_upper_bound m)

let test_partition_validation () =
  Alcotest.check_raises "block out of range"
    (Invalid_argument "Matroid.partition: block out of range") (fun () ->
      ignore (Matroid.partition ~part_of:[| 0; 7 |] ~bound:[| 1 |]))

let test_axioms_uniform () =
  let rng = Rng.create 3 in
  match Matroid.check_axioms (Matroid.uniform ~ground:8 ~rank:3) ~samples:200 rng with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_axioms_partition () =
  let rng = Rng.create 4 in
  let m = Matroid.partition ~part_of:[| 0; 0; 1; 1; 2; 2; 2 |] ~bound:[| 1; 2; 1 |] in
  match Matroid.check_axioms m ~samples:200 rng with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let prop_axioms_random_partitions =
  QCheck2.Test.make ~name:"random partition matroids satisfy the axioms" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let blocks = 1 + Rng.int rng 4 in
      let ground = 1 + Rng.int rng 10 in
      let part_of = Array.init ground (fun _ -> Rng.int rng blocks) in
      let bound = Array.init blocks (fun _ -> Rng.int rng 3) in
      let m = Matroid.partition ~part_of ~bound in
      match Matroid.check_axioms m ~samples:100 rng with Ok () -> true | Error _ -> false)

(* ----- Submodular maximization ----- *)

(* weighted coverage: f(S) = total weight of elements covered by chosen sets;
   submodular and monotone *)
let coverage_objective sets weights s =
  let covered = Hashtbl.create 16 in
  List.iter (fun idx -> List.iter (fun e -> Hashtbl.replace covered e ()) sets.(idx)) s;
  Hashtbl.fold (fun e () acc -> acc +. weights.(e)) covered 0.0

let test_lazy_greedy_coverage () =
  let sets = [| [ 0; 1 ]; [ 1; 2 ]; [ 3 ]; [ 0; 1; 2 ] |] in
  let weights = [| 5.0; 1.0; 4.0; 3.0 |] in
  let m = Matroid.uniform ~ground:4 ~rank:2 in
  let s, v, stats = Submodular.lazy_greedy ~matroid:m ~f:(coverage_objective sets weights) () in
  (* greedy: set 3 covers {0,1,2} = 10, then set 2 adds 3 → 13 (optimal) *)
  Helpers.check_float "value" 13.0 v;
  Alcotest.(check (list int)) "solution" [ 2; 3 ] (List.sort compare s);
  Alcotest.(check bool) "oracle calls counted" true (stats.Submodular.oracle_calls > 0)

let test_local_search_coverage () =
  let sets = [| [ 0 ]; [ 1 ]; [ 0; 1 ] |] in
  let weights = [| 2.0; 3.0 |] in
  let m = Matroid.uniform ~ground:3 ~rank:1 in
  let s, v, _ = Submodular.local_search ~matroid:m ~f:(coverage_objective sets weights) () in
  Helpers.check_float "picks the covering set" 5.0 v;
  Alcotest.(check (list int)) "solution" [ 2 ] s

(* a non-monotone submodular function: cut function of a small graph *)
let cut_value edges s =
  let inside = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace inside v ()) s;
  List.fold_left
    (fun acc (a, b, w) ->
      let ia = Hashtbl.mem inside a and ib = Hashtbl.mem inside b in
      if ia <> ib then acc +. w else acc)
    0.0 edges

let test_local_search_cut () =
  (* path graph 0-1-2 with weights 3, 5: max cut = {1} with value 8 *)
  let edges = [ (0, 1, 3.0); (1, 2, 5.0) ] in
  let m = Matroid.uniform ~ground:3 ~rank:3 in
  let s, v, _ = Submodular.local_search ~matroid:m ~f:(cut_value edges) () in
  Helpers.check_float "max cut value" 8.0 v;
  Alcotest.(check (list int)) "cut set" [ 1 ] s

let brute_force_best matroid f ground =
  let best = ref 0.0 in
  let rec go idx s =
    let v = f s in
    if v > !best then best := v;
    if idx < ground then begin
      go (idx + 1) s;
      if Matroid.can_add matroid s idx then go (idx + 1) (idx :: s)
    end
  in
  go 0 [];
  !best

let prop_local_search_quality =
  (* the 1/(4+eps) guarantee, checked against brute force on random
     non-monotone cut functions under random partition matroids *)
  QCheck2.Test.make ~name:"local search achieves >= 1/5 of optimum" ~count:40
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let ground = 3 + Rng.int rng 4 in
      let edges = ref [] in
      for a = 0 to ground - 1 do
        for b = a + 1 to ground - 1 do
          if Rng.bernoulli rng 0.6 then edges := (a, b, Rng.uniform_in rng 0.1 5.0) :: !edges
        done
      done;
      let blocks = 1 + Rng.int rng 2 in
      let m =
        Matroid.partition
          ~part_of:(Array.init ground (fun _ -> Rng.int rng blocks))
          ~bound:(Array.init blocks (fun _ -> 1 + Rng.int rng 2))
      in
      let f = cut_value !edges in
      let _, v, _ = Submodular.local_search ~eps:0.1 ~matroid:m ~f () in
      let opt = brute_force_best m f ground in
      v >= (opt /. 5.0) -. 1e-9)

let prop_greedy_feasible =
  QCheck2.Test.make ~name:"both searches return independent sets" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let ground = 2 + Rng.int rng 6 in
      let edges = ref [] in
      for a = 0 to ground - 1 do
        for b = a + 1 to ground - 1 do
          if Rng.bool rng then edges := (a, b, Rng.uniform_in rng 0.0 3.0) :: !edges
        done
      done;
      let m = Matroid.uniform ~ground ~rank:(1 + Rng.int rng ground) in
      let f = cut_value !edges in
      let s1, _, _ = Submodular.local_search ~matroid:m ~f () in
      let s2, _, _ = Submodular.lazy_greedy ~matroid:m ~f () in
      Matroid.is_independent m s1 && Matroid.is_independent m s2)

let () =
  Alcotest.run "matroid"
    [
      ( "matroid",
        [
          Alcotest.test_case "uniform independence" `Quick test_uniform_independence;
          Alcotest.test_case "partition independence" `Quick test_partition_independence;
          Alcotest.test_case "partition validation" `Quick test_partition_validation;
          Alcotest.test_case "axioms uniform" `Quick test_axioms_uniform;
          Alcotest.test_case "axioms partition" `Quick test_axioms_partition;
          QCheck_alcotest.to_alcotest prop_axioms_random_partitions;
        ] );
      ( "submodular",
        [
          Alcotest.test_case "lazy greedy coverage" `Quick test_lazy_greedy_coverage;
          Alcotest.test_case "local search coverage" `Quick test_local_search_coverage;
          Alcotest.test_case "local search max cut" `Quick test_local_search_cut;
          QCheck_alcotest.to_alcotest prop_local_search_quality;
          QCheck_alcotest.to_alcotest prop_greedy_feasible;
        ] );
    ]
